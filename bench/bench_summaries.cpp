// google-benchmark micro-benchmarks for the streaming-summary substrate:
// insert/query throughput of Misra–Gries, SpaceSaving, sticky sampling,
// GK, the compactor (algorithm A), and the Bernoulli sampler. These bound
// the per-element processing cost a site pays in each protocol.

#include <benchmark/benchmark.h>

#include "disttrack/common/random.h"
#include "disttrack/stream/zipf.h"
#include "disttrack/summaries/bernoulli_summary.h"
#include "disttrack/summaries/compactor_summary.h"
#include "disttrack/summaries/gk_summary.h"
#include "disttrack/summaries/misra_gries.h"
#include "disttrack/summaries/reservoir.h"
#include "disttrack/summaries/space_saving.h"
#include "disttrack/summaries/sticky_sampling.h"

namespace {

using namespace disttrack;
using namespace disttrack::summaries;

std::vector<uint64_t> ZipfStream(size_t n, uint64_t seed) {
  stream::ZipfGenerator zipf(100000, 1.1, seed);
  std::vector<uint64_t> out(n);
  for (auto& v : out) v = zipf.Next();
  return out;
}

std::vector<uint64_t> UniformStream(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> out(n);
  for (auto& v : out) v = rng.UniformU64(1ull << 24);
  return out;
}

void BM_MisraGriesInsert(benchmark::State& state) {
  auto data = ZipfStream(1 << 16, 3);
  for (auto _ : state) {
    MisraGries mg(static_cast<size_t>(state.range(0)));
    for (uint64_t v : data) mg.Insert(v);
    benchmark::DoNotOptimize(mg.NumCounters());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_MisraGriesInsert)->Arg(100)->Arg(1000);

void BM_SpaceSavingInsert(benchmark::State& state) {
  auto data = ZipfStream(1 << 16, 5);
  for (auto _ : state) {
    SpaceSaving ss(static_cast<size_t>(state.range(0)));
    for (uint64_t v : data) ss.Insert(v);
    benchmark::DoNotOptimize(ss.NumCounters());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_SpaceSavingInsert)->Arg(100)->Arg(1000);

void BM_StickySamplingInsert(benchmark::State& state) {
  auto data = ZipfStream(1 << 16, 7);
  for (auto _ : state) {
    StickySampling sticky(0.01, 11);
    for (uint64_t v : data) sticky.Insert(v);
    benchmark::DoNotOptimize(sticky.NumCounters());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_StickySamplingInsert);

void BM_GKInsert(benchmark::State& state) {
  auto data = UniformStream(1 << 16, 9);
  double eps = 1.0 / static_cast<double>(state.range(0));
  for (auto _ : state) {
    GKSummary gk(eps);
    for (uint64_t v : data) gk.Insert(v);
    benchmark::DoNotOptimize(gk.NumTuples());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_GKInsert)->Arg(100)->Arg(1000);

void BM_CompactorInsert(benchmark::State& state) {
  auto data = UniformStream(1 << 16, 11);
  double eps = 1.0 / static_cast<double>(state.range(0));
  for (auto _ : state) {
    CompactorSummary c(eps, 13);
    for (uint64_t v : data) c.Insert(v);
    benchmark::DoNotOptimize(c.SpaceWords());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_CompactorInsert)->Arg(100)->Arg(1000);

void BM_CompactorQuery(benchmark::State& state) {
  auto data = UniformStream(1 << 16, 15);
  CompactorSummary c(0.01, 17);
  for (uint64_t v : data) c.Insert(v);
  uint64_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.EstimateRank(q));
    q += 1 << 18;
  }
}
BENCHMARK(BM_CompactorQuery);

void BM_GKQuery(benchmark::State& state) {
  auto data = UniformStream(1 << 16, 19);
  GKSummary gk(0.01);
  for (uint64_t v : data) gk.Insert(v);
  uint64_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gk.EstimateRank(q));
    q += 1 << 18;
  }
}
BENCHMARK(BM_GKQuery);

void BM_BernoulliInsert(benchmark::State& state) {
  auto data = UniformStream(1 << 16, 21);
  for (auto _ : state) {
    BernoulliSampleSummary s(0.01, 23);
    for (uint64_t v : data) s.Insert(v);
    benchmark::DoNotOptimize(s.SampleSize());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_BernoulliInsert);

void BM_ReservoirInsert(benchmark::State& state) {
  auto data = UniformStream(1 << 16, 25);
  for (auto _ : state) {
    ReservoirSample r(1000, 27);
    for (uint64_t v : data) r.Insert(v);
    benchmark::DoNotOptimize(r.n());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_ReservoirInsert);

}  // namespace

BENCHMARK_MAIN();
