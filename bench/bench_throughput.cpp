// Throughput baseline for the three randomized trackers: elements/sec over
// uniform and skewed workloads at k in {8, 64}, plus an in-binary A/B of
// the geometric-skip fast path against the historical per-arrival
// Bernoulli path on the count tracker (n = 1e7, eps = 0.01).
//
// Writes BENCH_throughput.json (machine-readable trajectory for later PRs)
// and prints a human table.
//
// --check=PATH turns the run into a regression gate: every (problem,
// path, workload, k, n) configuration measured by this run is compared
// against the matching entry of the baseline JSON at PATH, and the
// process exits nonzero if any tracker lost more than 20% throughput.
// CI runs this against the committed BENCH_throughput.json; run it at the
// default sizes, since entries are matched on n as well.
//
// The count A/B replays the identical site stream through both engines:
//  * per_arrival — a faithful copy of the pre-fast-path ReplayImpl loop
//    (one virtual Arrive() per element, per-element checkpoint
//    arithmetic) driving the tracker with use_skip_sampling=false, i.e.
//    one Bernoulli RNG draw per arrival;
//  * skip_batched — the library's ReplayCountSites (batch delivery between
//    checkpoints into the skip-sampling event-countdown engine).
// Both produce the same checkpoint schedule and ±eps-accurate estimates,
// so the ratio isolates the delivery + sampling engine.
//
// SIMD dispatch policy: the legacy rows run under
// simd::SetDispatchMode(kForceScalar) so their numbers stay comparable
// across machines and across the pre-SIMD baselines; the simd_batched
// rows re-run the frequency skip_batched and rank grouped_batched
// configurations under kAuto, so the scalar/SIMD ratio is an in-binary
// A/B on identical streams. Every row records which dispatch actually
// ran (`simd`: 0 scalar, 1 AVX2) and --check skips rows whose recorded
// dispatch differs from this machine's, the same way thread-scaling
// rows are skipped across core counts.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "disttrack/common/simd.h"
#include "disttrack/core/tracking.h"
#include "disttrack/frequency/randomized_frequency.h"
#include "disttrack/sim/cluster.h"
#include "disttrack/sim/online.h"
#include "disttrack/sim/parallel_cluster.h"
#include "disttrack/stream/workload.h"

namespace {

using namespace disttrack;

struct BenchEntry {
  std::string problem;   // count | frequency | rank
  std::string path;      // skip_batched | per_arrival
  std::string workload;  // uniform | zipf | skewed_sites
  int k = 0;
  uint64_t n = 0;
  double eps = 0;
  double seconds = 0;
  double elements_per_sec = 0;
  double final_rel_error = 0;  // |estimate - truth| / n at the end
  // Worker-thread count of the engine under test; 0 for the serial
  // paths. Rows with threads > 1 measure thread scaling, which is only
  // comparable between machines with the same core count — --check
  // skips them when the recorded core count differs (see Cores()).
  int threads = 0;
  // Dispatch the row actually ran under: 0 scalar, 1 AVX2. Legacy rows
  // are pinned to 0 (kForceScalar); simd_batched rows report what kAuto
  // resolved to, so --check can refuse to compare a row recorded with
  // AVX2 against a run on a machine without it.
  int simd = 0;
};

// Physical parallelism of this machine, stamped into every run row so a
// later --check knows whether the thread-scaling rows are comparable.
int Cores() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

double Now() { return bench::NowSeconds(); }

// The pre-fast-path replay loop, kept verbatim as the A/B baseline: one
// virtual Arrive() per element, per-element geometric-checkpoint test.
std::vector<sim::Checkpoint> OldReplayCountSites(
    sim::CountTrackerInterface* tracker, const sim::SiteStream& sites,
    double checkpoint_factor) {
  std::vector<sim::Checkpoint> out;
  uint64_t n = 0;
  double next = 1.0;
  for (uint16_t site : sites) {
    tracker->Arrive(site);
    ++n;
    if (static_cast<double>(n) >= next) {
      out.push_back(sim::Checkpoint{n, tracker->EstimateCount(),
                                    static_cast<double>(n)});
      next = static_cast<double>(n) * checkpoint_factor;
    }
  }
  if (out.empty() || out.back().n != n) {
    out.push_back(sim::Checkpoint{n, tracker->EstimateCount(),
                                  static_cast<double>(n)});
  }
  return out;
}

// Delivers the whole workload. The fast path batches in large chunks (one
// virtual dispatch per chunk); the per-arrival path replays history: one
// virtual Arrive() per element.
template <typename Tracker, typename ArriveFn>
double DeliverTimed(Tracker* tracker, const sim::Workload& workload,
                    bool batched, ArriveFn arrive_one) {
  constexpr size_t kChunk = 1 << 16;
  double t0 = Now();
  if (batched) {
    for (size_t i = 0; i < workload.size(); i += kChunk) {
      size_t len = std::min(kChunk, workload.size() - i);
      tracker->ArriveBatch(workload.data() + i, len);
    }
  } else {
    for (const sim::Arrival& a : workload) arrive_one(tracker, a);
  }
  return Now() - t0;
}

// Best-of-`reps` timing of one configuration; returns the filled entry.
// `make` builds a fresh tracker, `run` returns (seconds, final_rel_error).
template <typename MakeFn, typename RunFn>
BenchEntry TimeConfig(const std::string& problem, const std::string& path,
                      const std::string& workload_name, int k, uint64_t n,
                      double eps, int reps, MakeFn make, RunFn run) {
  BenchEntry e;
  e.problem = problem;
  e.path = path;
  e.workload = workload_name;
  e.k = k;
  e.n = n;
  e.eps = eps;
  e.seconds = 0;
  for (int r = 0; r < reps; ++r) {
    auto tracker = make();
    auto [secs, rel_err] = run(tracker.get());
    if (r == 0 || secs < e.seconds) e.seconds = secs;
    e.final_rel_error = rel_err;  // same-seed runs agree; keep the last
  }
  e.elements_per_sec =
      e.seconds > 0 ? static_cast<double>(n) / e.seconds : 0;
  return e;
}

core::TrackerOptions Options(int k, double eps, bool skip,
                             bool shared_ladder = true,
                             bool site_grouping = true) {
  core::TrackerOptions opt;
  opt.num_sites = k;
  opt.epsilon = eps;
  opt.seed = 20260728;
  opt.use_skip_sampling = skip;
  opt.use_shared_ladder = shared_ladder;
  opt.use_site_grouping = site_grouping;
  return opt;
}

// The frequency tracker's grouped engine is opt-in through its own
// options (core::TrackerOptions leaves it off; see tracking.h), so the
// grouped_batched frequency row constructs the tracker directly.
std::unique_ptr<sim::FrequencyTrackerInterface> MakeFrequencyGrouped(
    int k, double eps) {
  frequency::RandomizedFrequencyOptions o;
  o.num_sites = k;
  o.epsilon = eps;
  o.seed = 20260728;
  o.use_site_grouping = true;
  return std::make_unique<frequency::RandomizedFrequencyTracker>(o);
}

std::unique_ptr<sim::CountTrackerInterface> MakeCount(
    const core::TrackerOptions& opt) {
  std::unique_ptr<sim::CountTrackerInterface> t;
  Status s = core::MakeCountTracker(core::Algorithm::kRandomized, opt, &t);
  if (!s.ok()) {
    std::fprintf(stderr, "MakeCountTracker: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  return t;
}

std::unique_ptr<sim::FrequencyTrackerInterface> MakeFrequency(
    const core::TrackerOptions& opt) {
  std::unique_ptr<sim::FrequencyTrackerInterface> t;
  Status s = core::MakeFrequencyTracker(core::Algorithm::kRandomized, opt, &t);
  if (!s.ok()) {
    std::fprintf(stderr, "MakeFrequencyTracker: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  return t;
}

std::unique_ptr<sim::RankTrackerInterface> MakeRank(
    const core::TrackerOptions& opt) {
  std::unique_ptr<sim::RankTrackerInterface> t;
  Status s = core::MakeRankTracker(core::Algorithm::kRandomized, opt, &t);
  if (!s.ok()) {
    std::fprintf(stderr, "MakeRankTracker: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  return t;
}

void PrintEntry(const BenchEntry& e) {
  std::printf("%-10s %-12s %-13s k=%-3d n=%-9llu %9.3fs %12.0f elem/s"
              "  rel_err=%.5f\n",
              e.problem.c_str(), e.path.c_str(), e.workload.c_str(), e.k,
              static_cast<unsigned long long>(e.n), e.seconds,
              e.elements_per_sec, e.final_rel_error);
}

void WriteJson(const std::vector<BenchEntry>& entries,
               const std::vector<std::pair<int, double>>& count_speedups,
               const std::vector<std::pair<int, double>>& rank_speedups,
               double eps, uint64_t n_count, uint64_t n_rank,
               const char* json_path) {
  std::FILE* f = std::fopen(json_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"throughput\",\n  \"cores\": %d,\n"
               "  \"runs\": [\n", Cores());
  for (size_t i = 0; i < entries.size(); ++i) {
    const BenchEntry& e = entries[i];
    std::fprintf(
        f,
        "    {\"problem\": \"%s\", \"path\": \"%s\", \"workload\": \"%s\", "
        "\"k\": %d, \"n\": %llu, \"eps\": %g, \"seconds\": %.6f, "
        "\"elements_per_sec\": %.1f, \"final_rel_error\": %.8f, "
        "\"threads\": %d, \"cores\": %d, \"simd\": %d}%s\n",
        e.problem.c_str(), e.path.c_str(), e.workload.c_str(), e.k,
        static_cast<unsigned long long>(e.n), e.eps, e.seconds,
        e.elements_per_sec, e.final_rel_error, e.threads, Cores(), e.simd,
        i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"count_ab\": [\n");
  for (size_t i = 0; i < count_speedups.size(); ++i) {
    std::fprintf(f,
                 "    {\"k\": %d, \"n\": %llu, \"eps\": %g, "
                 "\"speedup_skip_batched_vs_per_arrival\": %.2f}%s\n",
                 count_speedups[i].first,
                 static_cast<unsigned long long>(n_count), eps,
                 count_speedups[i].second,
                 i + 1 < count_speedups.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"rank_ab\": [\n");
  for (size_t i = 0; i < rank_speedups.size(); ++i) {
    std::fprintf(f,
                 "    {\"k\": %d, \"n\": %llu, \"eps\": %g, "
                 "\"speedup_shared_ladder_vs_staged\": %.2f}%s\n",
                 rank_speedups[i].first,
                 static_cast<unsigned long long>(n_rank), eps,
                 rank_speedups[i].second,
                 i + 1 < rank_speedups.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

uint64_t FlagOr(int argc, char** argv, const char* name, uint64_t fallback) {
  size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return std::strtoull(argv[i] + len + 1, nullptr, 10);
    }
  }
  return fallback;
}

const char* StringFlagOr(int argc, char** argv, const char* name,
                         const char* fallback) {
  size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return fallback;
}

// ------------------------------------------------- --check regression gate

constexpr double kCheckTolerance = 0.20;  // fail below 80% of baseline

struct BaselineEntry {
  char problem[16];
  char path[16];
  char workload[16];
  int k = 0;
  unsigned long long n = 0;
  double elements_per_sec = 0;
  int threads = 0;  // 0 on serial rows and pre-threads baselines
  int cores = 0;    // machine the baseline was recorded on; 0 = unknown
  int simd = -1;    // dispatch the row ran under; -1 = pre-SIMD baseline
};

// Parses the `runs` lines of a BENCH_throughput.json produced by
// WriteJson (one object per line; sscanf on our own fixed format).
// Rows recorded before the threads/cores fields parse with both at 0;
// rows recorded before the simd field parse with simd = -1 (unknown,
// compared unconditionally — those baselines predate every SIMD path).
std::vector<BaselineEntry> ReadBaseline(const char* json_path) {
  std::vector<BaselineEntry> out;
  std::FILE* f = std::fopen(json_path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "--check: cannot open baseline %s\n", json_path);
    std::exit(1);
  }
  char line[512];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    BaselineEntry e;
    double eps = 0, seconds = 0, rel = 0;
    int got = std::sscanf(
        line,
        " {\"problem\": \"%15[^\"]\", \"path\": \"%15[^\"]\", "
        "\"workload\": \"%15[^\"]\", \"k\": %d, \"n\": %llu, "
        "\"eps\": %lf, \"seconds\": %lf, "
        "\"elements_per_sec\": %lf, \"final_rel_error\": %lf, "
        "\"threads\": %d, \"cores\": %d, \"simd\": %d",
        e.problem, e.path, e.workload, &e.k, &e.n, &eps, &seconds,
        &e.elements_per_sec, &rel, &e.threads, &e.cores, &e.simd);
    if (got >= 8) {
      if (got < 11) {
        e.threads = 0;
        e.cores = 0;
      }
      if (got < 12) e.simd = -1;
      out.push_back(e);
    }
  }
  std::fclose(f);
  return out;
}

// Returns nonzero when the gate fails: a configuration regressed >20%,
// nothing was comparable (a vacuous gate), or a baseline row disappeared
// from the run entirely (a silently-dropped path would otherwise shrink
// the gate one row at a time). `summary_path`, when set, receives a
// markdown per-problem ratio table (CI pipes $GITHUB_STEP_SUMMARY here).
int CheckAgainstBaseline(const std::vector<BenchEntry>& entries,
                         const char* baseline_path,
                         const char* summary_path) {
  std::vector<BaselineEntry> baseline = ReadBaseline(baseline_path);
  if (baseline.empty()) {
    std::fprintf(stderr, "--check: no entries parsed from %s\n",
                 baseline_path);
    return 1;
  }
  int failures = 0;
  int compared = 0;
  // Per-problem rollup of old/new ratios, printed as a summary table on
  // success as well, so CI logs double as the throughput trajectory
  // record per commit.
  struct ProblemRoll {
    const char* name;
    double min_ratio = 1e300;
    double max_ratio = 0;
    std::string min_config;
    int rows = 0;
  };
  ProblemRoll rolls[3] = {{"count"}, {"frequency"}, {"rank"}};
  for (const BenchEntry& e : entries) {
    const BaselineEntry* match = nullptr;
    for (const BaselineEntry& b : baseline) {
      if (e.problem == b.problem && e.path == b.path &&
          e.workload == b.workload && e.k == b.k &&
          e.n == static_cast<uint64_t>(b.n)) {
        match = &b;
        break;
      }
    }
    if (match == nullptr) continue;
    // Thread-scaling rows only mean something on the machine shape they
    // were recorded on: comparing a 4-thread row from an 8-core recorder
    // against a 1-core runner gates on the hardware, not the code.
    if (match->threads > 1 && match->cores != 0 && match->cores != Cores()) {
      std::printf("check  %-10s %-14s %-13s k=%-3d skipped (baseline on "
                  "%d cores, this machine has %d)\n",
                  e.problem.c_str(), e.path.c_str(), e.workload.c_str(), e.k,
                  match->cores, Cores());
      continue;
    }
    // Same idea for vector capability: a simd_batched row recorded with
    // AVX2 dispatch would gate a non-AVX2 runner (or a scalar-forced CI
    // leg) on the hardware, not the code. Pre-SIMD baselines (simd = -1)
    // are compared unconditionally — their rows were scalar by
    // construction and the legacy rows still run force-scalar.
    if (match->simd >= 0 && match->simd != e.simd) {
      std::printf("check  %-10s %-14s %-13s k=%-3d skipped (baseline "
                  "dispatch simd=%d, this run has simd=%d)\n",
                  e.problem.c_str(), e.path.c_str(), e.workload.c_str(), e.k,
                  match->simd, e.simd);
      continue;
    }
    ++compared;
    double ratio = match->elements_per_sec > 0
                       ? e.elements_per_sec / match->elements_per_sec
                       : 0.0;
    bool regressed = ratio < 1.0 - kCheckTolerance;
    std::printf("check  %-10s %-14s %-13s k=%-3d %12.0f vs %12.0f elem/s "
                "(x%.2f)%s\n",
                e.problem.c_str(), e.path.c_str(), e.workload.c_str(), e.k,
                e.elements_per_sec, match->elements_per_sec, ratio,
                regressed ? "  REGRESSION" : "");
    if (regressed) ++failures;
    for (ProblemRoll& roll : rolls) {
      if (e.problem != roll.name) continue;
      ++roll.rows;
      roll.max_ratio = std::max(roll.max_ratio, ratio);
      if (ratio < roll.min_ratio) {
        roll.min_ratio = ratio;
        roll.min_config = e.path + "/" + e.workload + "/k=" +
                          std::to_string(e.k);
      }
    }
  }
  if (compared == 0) {
    std::fprintf(stderr,
                 "--check: no configuration of this run matches %s "
                 "(run at the baseline's sizes)\n",
                 baseline_path);
    return 1;
  }
  // Every baseline row must still be measured by this run: a path that
  // silently vanishes from the bench would otherwise drop out of the
  // gate without anyone noticing.
  int missing = 0;
  for (const BaselineEntry& b : baseline) {
    bool found = false;
    for (const BenchEntry& e : entries) {
      if (e.problem == b.problem && e.path == b.path &&
          e.workload == b.workload && e.k == b.k &&
          e.n == static_cast<uint64_t>(b.n)) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr,
                   "--check: baseline row %s/%s/%s/k=%d/n=%llu was not "
                   "measured by this run — a path disappeared\n",
                   b.problem, b.path, b.workload, b.k, b.n);
      ++missing;
    }
  }
  std::printf("\n--- throughput vs baseline (%s) ---\n", baseline_path);
  std::printf("%-10s %5s %10s %10s  %s\n", "problem", "rows", "min", "max",
              "slowest row");
  for (const ProblemRoll& roll : rolls) {
    if (roll.rows == 0) continue;
    std::printf("%-10s %5d %9.2fx %9.2fx  %s\n", roll.name, roll.rows,
                roll.min_ratio, roll.max_ratio, roll.min_config.c_str());
  }
  if (summary_path != nullptr) {
    std::FILE* f = std::fopen(summary_path, "a");
    if (f != nullptr) {
      std::fprintf(f, "### Throughput vs committed baseline\n\n");
      std::fprintf(f, "| problem | rows | min | max | slowest row |\n");
      std::fprintf(f, "|---|---|---|---|---|\n");
      for (const ProblemRoll& roll : rolls) {
        if (roll.rows == 0) continue;
        std::fprintf(f, "| %s | %d | %.2fx | %.2fx | `%s` |\n", roll.name,
                     roll.rows, roll.min_ratio, roll.max_ratio,
                     roll.min_config.c_str());
      }
      std::fprintf(f, "\n%d row(s) compared, %d regression(s), %d missing "
                   "baseline row(s).\n",
                   compared, failures, missing);
      // Grouped-vs-countdown A/B of this very run, per configuration.
      std::fprintf(f,
                   "\n### grouped_batched vs skip_batched (this run)\n\n"
                   "| problem | workload | k | grouped | skip | ratio |\n"
                   "|---|---|---|---|---|---|\n");
      for (const BenchEntry& g : entries) {
        if (g.path != "grouped_batched") continue;
        for (const BenchEntry& b : entries) {
          if (b.path == "skip_batched" && b.problem == g.problem &&
              b.workload == g.workload && b.k == g.k && b.n == g.n) {
            std::fprintf(f, "| %s | %s | %d | %.0f | %.0f | %.2fx |\n",
                         g.problem.c_str(), g.workload.c_str(), g.k,
                         g.elements_per_sec, b.elements_per_sec,
                         b.elements_per_sec > 0
                             ? g.elements_per_sec / b.elements_per_sec
                             : 0.0);
          }
        }
      }
      // Scalar-vs-SIMD A/B of this very run: each simd_batched row
      // against the force-scalar row of the same configuration
      // (frequency pairs with skip_batched, rank with grouped_batched —
      // see the path tables in main()).
      std::fprintf(f,
                   "\n### simd_batched vs force-scalar twin (this run)\n\n"
                   "| problem | workload | k | simd | scalar | ratio |\n"
                   "|---|---|---|---|---|---|\n");
      for (const BenchEntry& g : entries) {
        if (g.path != "simd_batched") continue;
        const char* twin =
            g.problem == "frequency" ? "skip_batched" : "grouped_batched";
        for (const BenchEntry& b : entries) {
          if (b.path == twin && b.problem == g.problem &&
              b.workload == g.workload && b.k == g.k && b.n == g.n) {
            std::fprintf(f, "| %s | %s | %d | %.0f | %.0f | %.2fx |\n",
                         g.problem.c_str(), g.workload.c_str(), g.k,
                         g.elements_per_sec, b.elements_per_sec,
                         b.elements_per_sec > 0
                             ? g.elements_per_sec / b.elements_per_sec
                             : 0.0);
          }
        }
      }
      std::fclose(f);
    }
  }
  if (failures > 0 || missing > 0) {
    std::fprintf(stderr,
                 "--check: %d configuration(s) regressed more than %.0f%%, "
                 "%d baseline row(s) missing, vs %s\n",
                 failures, kCheckTolerance * 100, missing, baseline_path);
    return 1;
  }
  std::printf("check PASSED: %d row(s) compared, none regressed more than "
              "%.0f%%, no baseline rows missing\n",
              compared, kCheckTolerance * 100);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const double eps = 0.01;
  const uint64_t n_count = FlagOr(argc, argv, "--n_count", 10000000);
  const uint64_t n_freq = FlagOr(argc, argv, "--n_freq", 2000000);
  const uint64_t n_rank = FlagOr(argc, argv, "--n_rank", 500000);
  const int reps = static_cast<int>(FlagOr(argc, argv, "--reps", 3));
  const char* json_path = "BENCH_throughput.json";
  const uint64_t universe = 100000;

  // Legacy rows are measured with every kernel pinned to its scalar
  // mirror (see the dispatch-policy note in the header comment); only
  // the simd_batched rows below flip to kAuto, and they restore this
  // pin before the next configuration runs.
  simd::SetDispatchMode(simd::DispatchMode::kForceScalar);

  std::vector<BenchEntry> entries;
  std::vector<std::pair<int, double>> count_speedups;
  std::vector<std::pair<int, double>> rank_speedups;

  for (int k : {8, 64}) {
    // ---- count: uniform-random and skewed site schedules, full A/B.
    // Both engines replay the identical compact site stream with the same
    // checkpoint schedule; only the delivery + sampling path differs.
    for (auto [sched, sched_name] :
         {std::pair(stream::SiteSchedule::kUniformRandom, "uniform"),
          std::pair(stream::SiteSchedule::kSkewedGeometric, "skewed_sites")}) {
      sim::SiteStream sites = stream::MakeCountSites(k, n_count, sched, 7);
      double per_arrival_secs = 0;
      struct CountPath {
        const char* name;
        bool skip;
        bool grouped;
      };
      for (const CountPath& path :
           {CountPath{"per_arrival", false, false},
            CountPath{"skip_batched", true, false},
            CountPath{"grouped_batched", true, true}}) {
        bool skip = path.skip;
        BenchEntry e = TimeConfig(
            "count", path.name, sched_name, k, n_count, eps, reps,
            [&] { return MakeCount(Options(k, eps, skip, true, path.grouped)); },
            [&](sim::CountTrackerInterface* t) {
              double t0 = Now();
              auto checkpoints =
                  skip ? sim::ReplayCountSites(t, sites, 1.5)
                       : OldReplayCountSites(t, sites, 1.5);
              double secs = Now() - t0;
              const sim::Checkpoint& last = checkpoints.back();
              double rel = last.n == 0
                               ? 0.0
                               : std::abs(last.estimate - last.truth) /
                                     static_cast<double>(last.n);
              return std::pair<double, double>(secs, rel);
            });
        PrintEntry(e);
        if (!skip) {
          per_arrival_secs = e.seconds;
        } else if (std::strcmp(path.name, "skip_batched") == 0 &&
                   std::strcmp(sched_name, "uniform") == 0) {
          count_speedups.emplace_back(k, per_arrival_secs / e.seconds);
        }
        entries.push_back(e);
      }
      // Sharded replay rows: same site stream, same checkpoint schedule
      // as skip_batched, through sim::ParallelCluster. The plan pass is
      // included in the timing (it is part of the replay).
      for (int threads : {1, 4}) {
        sim::ParallelCluster cluster(threads);
        BenchEntry e = TimeConfig(
            "count", "cluster_t" + std::to_string(threads), sched_name, k,
            n_count, eps, reps,
            [&] { return MakeCount(Options(k, eps, true)); },
            [&](sim::CountTrackerInterface* t) {
              double t0 = Now();
              auto checkpoints = cluster.ReplayCountSites(t, sites, 1.5);
              double secs = Now() - t0;
              const sim::Checkpoint& last = checkpoints.back();
              double rel = last.n == 0
                               ? 0.0
                               : std::abs(last.estimate - last.truth) /
                                     static_cast<double>(last.n);
              return std::pair<double, double>(secs, rel);
            });
        e.threads = threads;
        PrintEntry(e);
        entries.push_back(e);
      }
      // Online ingest rows: the SAME stream pushed live through
      // sim::OnlineCountSession — no plan pass, broadcast schedule
      // discovered by speculation + rollback — sampled at the same
      // checkpoint boundaries as the replay rows.
      for (int threads : {1, 4}) {
        sim::ParallelCluster cluster(threads);
        std::vector<uint64_t> bounds = sim::CheckpointCounts(n_count, 1.5);
        BenchEntry e = TimeConfig(
            "count", "online_t" + std::to_string(threads), sched_name, k,
            n_count, eps, reps,
            [&] { return MakeCount(Options(k, eps, true)); },
            [&](sim::CountTrackerInterface* t) {
              double t0 = Now();
              sim::OnlineCountSession session(&cluster, t);
              uint64_t pos = 0;
              double est = 0;
              for (uint64_t b : bounds) {
                session.PushSites(sites.data() + pos, b - pos);
                pos = b;
                est = t->EstimateCount();
              }
              double secs = Now() - t0;
              double rel = std::abs(est - static_cast<double>(n_count)) /
                           static_cast<double>(n_count);
              return std::pair<double, double>(secs, rel);
            });
        e.threads = threads;
        PrintEntry(e);
        entries.push_back(e);
      }
    }

    // ---- frequency: uniform and Zipf(1.1) items, A/B.
    for (auto [alpha, dist_name] :
         {std::pair(0.0, "uniform"), std::pair(1.1, "zipf")}) {
      sim::Workload w = stream::MakeFrequencyWorkload(
          k, n_freq, stream::SiteSchedule::kUniformRandom, universe, alpha,
          11);
      uint64_t truth = stream::ExactFrequency(w, 0);
      struct FreqPath {
        const char* name;
        bool skip;
        bool grouped;
        bool simd;
      };
      // simd_batched is the skip_batched configuration re-run under
      // kAuto dispatch (AVX2 ctrl-group probes in the counter table):
      // identical stream, identical estimates, only the kernels differ.
      for (const FreqPath& path :
           {FreqPath{"per_arrival", false, false, false},
            FreqPath{"skip_batched", true, false, false},
            FreqPath{"grouped_batched", true, true, false},
            FreqPath{"simd_batched", true, false, true}}) {
        bool skip = path.skip;
        simd::SetDispatchMode(path.simd ? simd::DispatchMode::kAuto
                                        : simd::DispatchMode::kForceScalar);
        BenchEntry e = TimeConfig(
            "frequency", path.name, dist_name, k, n_freq, eps, reps,
            [&]() -> std::unique_ptr<sim::FrequencyTrackerInterface> {
              if (path.grouped) return MakeFrequencyGrouped(k, eps);
              return MakeFrequency(Options(k, eps, skip));
            },
            [&](sim::FrequencyTrackerInterface* t) {
              double secs = DeliverTimed(
                  t, w, skip,
                  [](sim::FrequencyTrackerInterface* ft,
                     const sim::Arrival& a) { ft->Arrive(a.site, a.key); });
              double rel = n_freq == 0
                               ? 0.0
                               : std::abs(t->EstimateFrequency(0) -
                                          static_cast<double>(truth)) /
                                     static_cast<double>(n_freq);
              return std::pair<double, double>(secs, rel);
            });
        e.simd = path.simd && simd::Avx2Active() ? 1 : 0;
        PrintEntry(e);
        entries.push_back(e);
      }
      simd::SetDispatchMode(simd::DispatchMode::kForceScalar);
      // Sharded replay rows. The serial frequency rows above deliver in
      // 64K chunks without checkpoint sampling, so the cluster rows use a
      // huge checkpoint factor (start + end samples only) to compare
      // delivery engines rather than estimate-query cost.
      for (int threads : {1, 4}) {
        sim::ParallelCluster cluster(threads);
        BenchEntry e = TimeConfig(
            "frequency", "cluster_t" + std::to_string(threads), dist_name, k,
            n_freq, eps, reps,
            [&] { return MakeFrequency(Options(k, eps, true)); },
            [&](sim::FrequencyTrackerInterface* t) {
              double t0 = Now();
              auto checkpoints = cluster.ReplayFrequency(t, w, 0, 1e9);
              double secs = Now() - t0;
              const sim::Checkpoint& last = checkpoints.back();
              double rel = n_freq == 0
                               ? 0.0
                               : std::abs(last.estimate - last.truth) /
                                     static_cast<double>(n_freq);
              return std::pair<double, double>(secs, rel);
            });
        e.threads = threads;
        PrintEntry(e);
        entries.push_back(e);
      }
      // Online ingest rows: 64K live pushes (PushBoundaries, no
      // checkpoint cuts) through the rolling certified epoch, one Sync
      // at the end — the streaming analogue of the cluster rows above.
      for (int threads : {1, 4}) {
        sim::ParallelCluster cluster(threads);
        std::vector<uint64_t> bounds =
            sim::PushBoundaries(n_freq, 1 << 16, {});
        BenchEntry e = TimeConfig(
            "frequency", "online_t" + std::to_string(threads), dist_name, k,
            n_freq, eps, reps,
            [&] { return MakeFrequency(Options(k, eps, true)); },
            [&](sim::FrequencyTrackerInterface* t) {
              double t0 = Now();
              sim::OnlineKeyedSession session(&cluster, t);
              uint64_t pos = 0;
              for (uint64_t b : bounds) {
                session.Push(w.data() + pos, b - pos);
                pos = b;
              }
              session.Sync();
              double secs = Now() - t0;
              double rel = n_freq == 0
                               ? 0.0
                               : std::abs(t->EstimateFrequency(0) -
                                          static_cast<double>(truth)) /
                                     static_cast<double>(n_freq);
              return std::pair<double, double>(secs, rel);
            });
        e.threads = threads;
        PrintEntry(e);
        entries.push_back(e);
      }
    }

    // ---- rank: uniform values and Zipf(1.1)-skewed values. Three paths:
    // per_arrival (historical per-element coins + feed), staged_batched
    // (PR 2's per-level run staging, use_shared_ladder=false), and
    // skip_batched (the default shared run-merge ladder).
    for (auto [use_zipf, dist_name] :
         {std::pair(false, "uniform"), std::pair(true, "zipf")}) {
      sim::Workload w =
          use_zipf ? stream::MakeFrequencyWorkload(
                         k, n_rank, stream::SiteSchedule::kUniformRandom,
                         universe, 1.1, 13)
                   : stream::MakeRankWorkload(
                         k, n_rank, stream::SiteSchedule::kUniformRandom,
                         stream::ValueOrder::kUniformRandom, 17, 13);
      uint64_t query = use_zipf ? universe / 2 : (1ull << 16);
      uint64_t truth = stream::ExactRank(w, query);
      struct RankPath {
        const char* name;
        bool skip;
        bool shared_ladder;
        bool grouped;
        bool simd;
      };
      double staged_secs = 0;
      // simd_batched is the grouped_batched configuration re-run under
      // kAuto dispatch (register sorts, bitonic gap-merges, merge-path
      // wire export, leaf-arena flush): identical stream, bit-identical
      // estimates, only the kernels differ.
      for (const RankPath& path :
           {RankPath{"per_arrival", false, true, false, false},
            RankPath{"staged_batched", true, false, false, false},
            RankPath{"skip_batched", true, true, false, false},
            RankPath{"grouped_batched", true, true, true, false},
            RankPath{"simd_batched", true, true, true, true}}) {
        simd::SetDispatchMode(path.simd ? simd::DispatchMode::kAuto
                                        : simd::DispatchMode::kForceScalar);
        BenchEntry e = TimeConfig(
            "rank", path.name, dist_name, k, n_rank, eps, reps,
            [&] {
              return MakeRank(Options(k, eps, path.skip, path.shared_ladder,
                                      path.grouped));
            },
            [&](sim::RankTrackerInterface* t) {
              double secs = DeliverTimed(
                  t, w, path.skip,
                  [](sim::RankTrackerInterface* rt, const sim::Arrival& a) {
                    rt->Arrive(a.site, a.key);
                  });
              double rel = n_rank == 0
                               ? 0.0
                               : std::abs(t->EstimateRank(query) -
                                          static_cast<double>(truth)) /
                                     static_cast<double>(n_rank);
              return std::pair<double, double>(secs, rel);
            });
        e.simd = path.simd && simd::Avx2Active() ? 1 : 0;
        PrintEntry(e);
        if (std::strcmp(path.name, "staged_batched") == 0) {
          staged_secs = e.seconds;
        } else if (std::strcmp(path.name, "skip_batched") == 0 &&
                   std::strcmp(dist_name, "uniform") == 0) {
          rank_speedups.emplace_back(k, staged_secs / e.seconds);
        }
        entries.push_back(e);
      }
      simd::SetDispatchMode(simd::DispatchMode::kForceScalar);
      // Sharded replay rows (same sparse-sample rationale as frequency).
      for (int threads : {1, 4}) {
        sim::ParallelCluster cluster(threads);
        BenchEntry e = TimeConfig(
            "rank", "cluster_t" + std::to_string(threads), dist_name, k,
            n_rank, eps, reps,
            [&] { return MakeRank(Options(k, eps, true)); },
            [&](sim::RankTrackerInterface* t) {
              double t0 = Now();
              auto checkpoints = cluster.ReplayRank(t, w, query, 1e9);
              double secs = Now() - t0;
              const sim::Checkpoint& last = checkpoints.back();
              double rel = n_rank == 0
                               ? 0.0
                               : std::abs(last.estimate - last.truth) /
                                     static_cast<double>(n_rank);
              return std::pair<double, double>(secs, rel);
            });
        e.threads = threads;
        PrintEntry(e);
        entries.push_back(e);
      }
      // Online ingest rows (same 64K live-push shape as frequency).
      for (int threads : {1, 4}) {
        sim::ParallelCluster cluster(threads);
        std::vector<uint64_t> bounds =
            sim::PushBoundaries(n_rank, 1 << 16, {});
        BenchEntry e = TimeConfig(
            "rank", "online_t" + std::to_string(threads), dist_name, k,
            n_rank, eps, reps,
            [&] { return MakeRank(Options(k, eps, true)); },
            [&](sim::RankTrackerInterface* t) {
              double t0 = Now();
              sim::OnlineKeyedSession session(&cluster, t);
              uint64_t pos = 0;
              for (uint64_t b : bounds) {
                session.Push(w.data() + pos, b - pos);
                pos = b;
              }
              session.Sync();
              double secs = Now() - t0;
              double rel = n_rank == 0
                               ? 0.0
                               : std::abs(t->EstimateRank(query) -
                                          static_cast<double>(truth)) /
                                     static_cast<double>(n_rank);
              return std::pair<double, double>(secs, rel);
            });
        e.threads = threads;
        PrintEntry(e);
        entries.push_back(e);
      }
    }
  }

  // ---- frequency, table-bound regime: at eps = 5e-4, k = 32 the
  // sticky-counter working set (~ c/(eps sqrt(k)) entries per site, 32
  // bytes each across k sites ~ 1.4 MB) outgrows the 1 MiB cache bound,
  // so the eps-aware auto gate turns grouped delivery ON — the regime
  // where site-contiguous spans pay for the permutation. The pair of
  // rows records both engines so the gate's decision is auditable.
  {
    const int k_tb = 32;
    const double eps_tb = 5e-4;
    sim::Workload w = stream::MakeFrequencyWorkload(
        k_tb, n_freq, stream::SiteSchedule::kUniformRandom, 1 << 20, 0.0,
        17);
    uint64_t truth = stream::ExactFrequency(w, 0);
    for (bool grouped : {false, true}) {
      BenchEntry e = TimeConfig(
          "frequency", grouped ? "grouped_batched" : "skip_batched",
          "table_bound", k_tb, n_freq, eps_tb, reps,
          [&]() -> std::unique_ptr<sim::FrequencyTrackerInterface> {
            frequency::RandomizedFrequencyOptions o;
            o.num_sites = k_tb;
            o.epsilon = eps_tb;
            o.seed = 20260728;
            o.auto_site_grouping = grouped;
            auto t =
                std::make_unique<frequency::RandomizedFrequencyTracker>(o);
            if (t->grouped_delivery_enabled() != grouped) {
              std::fprintf(stderr,
                           "table_bound: auto gate decided %d, expected %d "
                           "(eps=%g k=%d)\n",
                           t->grouped_delivery_enabled() ? 1 : 0,
                           grouped ? 1 : 0, eps_tb, k_tb);
              std::exit(1);
            }
            return t;
          },
          [&](sim::FrequencyTrackerInterface* t) {
            double secs = DeliverTimed(
                t, w, true,
                [](sim::FrequencyTrackerInterface* ft, const sim::Arrival& a) {
                  ft->Arrive(a.site, a.key);
                });
            double rel = n_freq == 0
                             ? 0.0
                             : std::abs(t->EstimateFrequency(0) -
                                        static_cast<double>(truth)) /
                                   static_cast<double>(n_freq);
            return std::pair<double, double>(secs, rel);
          });
      PrintEntry(e);
      entries.push_back(e);
    }
  }

  WriteJson(entries, count_speedups, rank_speedups, eps, n_count, n_rank,
            json_path);
  for (auto [k, speedup] : count_speedups) {
    std::printf("count A/B (uniform, k=%d, n=%llu): skip_batched is %.2fx "
                "per_arrival %s\n",
                k, static_cast<unsigned long long>(n_count), speedup,
                speedup >= 5.0 ? "[>=5x OK]" : "[below 5x target]");
  }
  for (auto [k, speedup] : rank_speedups) {
    std::printf("rank A/B (uniform, k=%d, n=%llu): shared ladder is %.2fx "
                "the per-level staged feed\n",
                k, static_cast<unsigned long long>(n_rank), speedup);
  }
  std::printf("wrote %s\n", json_path);
  if (const char* baseline = StringFlagOr(argc, argv, "--check", nullptr)) {
    const char* summary = StringFlagOr(argc, argv, "--summary", nullptr);
    return CheckAgainstBaseline(entries, baseline, summary);
  }
  return 0;
}
