// Shared harness code for the experiment binaries: run a tracker over a
// workload, collect communication/space/accuracy, and print paper-style
// rows. Every bench regenerates one Table-1 row or one figure/theorem of
// the paper (see DESIGN.md §4 for the experiment index).

#ifndef DISTTRACK_BENCH_BENCH_UTIL_H_
#define DISTTRACK_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "disttrack/common/stats.h"
#include "disttrack/core/tracking.h"
#include "disttrack/sim/cluster.h"
#include "disttrack/stream/workload.h"

namespace disttrack {
namespace bench {

/// Monotonic wall-clock seconds. THE bench timer: the only sanctioned
/// clock read in the tree — scripts/check_invariants.py (rule
/// banned-source) bans time/randomness sources everywhere outside
/// common/random.* and this file, because replay must be a pure
/// function of (workload, seed).
inline double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Everything a bench needs to report about one run.
struct RunResult {
  uint64_t messages = 0;
  uint64_t words = 0;
  uint64_t broadcasts = 0;
  uint64_t downloads = 0;
  uint64_t max_site_space = 0;
  double final_abs_error = 0;   // |estimate - truth| at the end
  double worst_rel_error = 0;   // max over checkpoints of |err| / n
  uint64_t n = 0;
};

inline RunResult Collect(const sim::CommMeter& meter,
                         const sim::SpaceGauge& space,
                         const std::vector<sim::Checkpoint>& checkpoints) {
  RunResult r;
  r.messages = meter.TotalMessages();
  r.words = meter.TotalWords();
  r.broadcasts = meter.broadcast_count();
  r.downloads = meter.downloads().messages;
  r.max_site_space = space.MaxPeak();
  if (!checkpoints.empty()) {
    const auto& last = checkpoints.back();
    r.n = last.n;
    r.final_abs_error = std::fabs(last.estimate - last.truth);
    for (const auto& c : checkpoints) {
      if (c.n == 0) continue;
      double rel =
          std::fabs(c.estimate - c.truth) / static_cast<double>(c.n);
      if (rel > r.worst_rel_error) r.worst_rel_error = rel;
    }
  }
  return r;
}

/// Runs one count tracker over `workload`.
inline RunResult RunCount(core::Algorithm algorithm,
                          const core::TrackerOptions& options,
                          const sim::Workload& workload) {
  std::unique_ptr<sim::CountTrackerInterface> tracker;
  Status status = core::MakeCountTracker(algorithm, options, &tracker);
  if (!status.ok()) {
    std::fprintf(stderr, "MakeCountTracker: %s\n", status.ToString().c_str());
    return RunResult{};
  }
  auto checkpoints = sim::ReplayCount(tracker.get(), workload, 1.5);
  return Collect(tracker->meter(), tracker->space(), checkpoints);
}

/// Runs one frequency tracker; accuracy is evaluated on `query_item`.
inline RunResult RunFrequency(core::Algorithm algorithm,
                              const core::TrackerOptions& options,
                              const sim::Workload& workload,
                              uint64_t query_item) {
  std::unique_ptr<sim::FrequencyTrackerInterface> tracker;
  Status status =
      core::MakeFrequencyTracker(algorithm, options, &tracker);
  if (!status.ok()) {
    std::fprintf(stderr, "MakeFrequencyTracker: %s\n",
                 status.ToString().c_str());
    return RunResult{};
  }
  auto checkpoints =
      sim::ReplayFrequency(tracker.get(), workload, query_item, 1.5);
  return Collect(tracker->meter(), tracker->space(), checkpoints);
}

/// Runs one rank tracker; accuracy is evaluated on `query_value`.
inline RunResult RunRank(core::Algorithm algorithm,
                         const core::TrackerOptions& options,
                         const sim::Workload& workload,
                         uint64_t query_value) {
  std::unique_ptr<sim::RankTrackerInterface> tracker;
  Status status = core::MakeRankTracker(algorithm, options, &tracker);
  if (!status.ok()) {
    std::fprintf(stderr, "MakeRankTracker: %s\n", status.ToString().c_str());
    return RunResult{};
  }
  auto checkpoints =
      sim::ReplayRank(tracker.get(), workload, query_value, 1.5);
  return Collect(tracker->meter(), tracker->space(), checkpoints);
}

/// Prints a rule line, e.g. "-----".
inline void Rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Prints the standard per-run row.
inline void PrintRow(const std::string& label, const RunResult& r,
                     double eps) {
  double msgs_per_n =
      r.n == 0 ? 0 : static_cast<double>(r.messages) / static_cast<double>(r.n);
  std::printf("%-34s %12llu %12llu %9llu %11.4f %10.4f %8.4f\n",
              label.c_str(),
              static_cast<unsigned long long>(r.messages),
              static_cast<unsigned long long>(r.words),
              static_cast<unsigned long long>(r.max_site_space),
              msgs_per_n, r.worst_rel_error, eps);
}

/// Prints the standard table header matching PrintRow.
inline void PrintHeader() {
  std::printf("%-34s %12s %12s %9s %11s %10s %8s\n", "algorithm", "messages",
              "words", "space/site", "msgs/elem", "worst-rel", "eps");
  Rule();
}

}  // namespace bench
}  // namespace disttrack

#endif  // DISTTRACK_BENCH_BENCH_UTIL_H_
