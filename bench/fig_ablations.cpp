// Ablation benches for the design choices DESIGN.md §5 calls out:
//  1. estimator (1) boundary case (count): the two-branch estimator vs the
//     naive "apply the formula to absent reports" variant;
//  2. estimator (4) vs (2) (frequency): with and without the -d/p branch;
//  3. virtual-site splitting (frequency): space cap vs no cap under a
//     fully skewed stream.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "disttrack/common/stats.h"
#include "disttrack/count/randomized_count.h"
#include "disttrack/frequency/randomized_frequency.h"

namespace {

using disttrack::RunningStats;
using namespace disttrack::stream;

}  // namespace

int main() {
  std::printf("== Ablations (DESIGN.md §5) ==\n");

  // 1. Count boundary estimator, single-site stream so most sites have no
  // report — the regime where §2.1 says the naive estimator picks up a
  // Θ(1/p) bias per report-less site.
  std::printf("\n-- 1. count estimator (1): two-branch vs naive boundary --\n");
  std::printf("(k = 64, eps = 0.05, n = 20000, single-site stream, 80 "
              "trials)\n");
  {
    auto w = MakeCountWorkload(64, 20000, SiteSchedule::kSingleSite, 31);
    for (bool naive : {false, true}) {
      RunningStats err;
      for (uint64_t seed = 1; seed <= 80; ++seed) {
        disttrack::count::RandomizedCountOptions o;
        o.num_sites = 64;
        o.epsilon = 0.05;
        o.seed = seed;
        o.naive_boundary_estimator = naive;
        disttrack::count::RandomizedCountTracker tracker(o);
        for (const auto& a : w) tracker.Arrive(a.site);
        err.Add(tracker.EstimateCount() - 20000.0);
      }
      std::printf("  %-22s mean error %+9.1f   std %8.1f\n",
                  naive ? "naive (biased)" : "paper estimator (1)",
                  err.Mean(), err.StdDev());
    }
    std::printf("  -> the naive variant's bias ~ (k - 1)(1/p - 1), exactly "
                "the failure mode §2.1 explains.\n");
  }

  // 2. Frequency estimator (2) vs (4) on items sized near eps*n/sqrt(k).
  std::printf("\n-- 2. frequency estimator (2) vs (4) --\n");
  std::printf("(k = 16, eps = 0.05, 40 items of 400 copies, 80 trials)\n");
  {
    std::vector<uint64_t> counts(40, 400);
    auto w = MakePlantedFrequencyWorkload(16, counts,
                                          SiteSchedule::kUniformRandom, 37);
    for (bool naive : {false, true}) {
      RunningStats err;
      for (uint64_t seed = 1; seed <= 80; ++seed) {
        disttrack::frequency::RandomizedFrequencyOptions o;
        o.num_sites = 16;
        o.epsilon = 0.05;
        o.seed = seed;
        o.naive_boundary_estimator = naive;
        disttrack::frequency::RandomizedFrequencyTracker tracker(o);
        for (const auto& a : w) tracker.Arrive(a.site, a.key);
        err.Add(tracker.EstimateFrequency(11) - 400.0);
      }
      std::printf("  %-22s mean error %+9.1f   std %8.1f\n",
                  naive ? "estimator (2) biased" : "estimator (4) unbiased",
                  err.Mean(), err.StdDev());
    }
  }

  // 3. Virtual-site splitting: per-site space cap under full skew.
  std::printf("\n-- 3. virtual-site split: space under a fully skewed "
              "stream --\n");
  std::printf("(k = 16, eps = 0.01, 200000 distinct items at one site)\n");
  {
    for (bool split : {true, false}) {
      disttrack::frequency::RandomizedFrequencyOptions o;
      o.num_sites = 16;
      o.epsilon = 0.01;
      o.seed = 3;
      o.virtual_site_split = split;
      disttrack::frequency::RandomizedFrequencyTracker tracker(o);
      for (uint64_t i = 0; i < 200000; ++i) tracker.Arrive(0, i);
      std::printf("  split %-4s : peak space %6llu words, %6llu splits, "
                  "%8llu messages\n",
                  split ? "on" : "off",
                  static_cast<unsigned long long>(tracker.space().MaxPeak()),
                  static_cast<unsigned long long>(tracker.splits()),
                  static_cast<unsigned long long>(
                      tracker.meter().TotalMessages()));
    }
    std::printf("  -> the n̄/k restart caps space at O(p n̄/k) = "
                "O(1/(eps sqrt k)) as §3.1 claims, at negligible "
                "communication cost.\n");
  }
  return 0;
}
