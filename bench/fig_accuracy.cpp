// Accuracy experiment for Theorems 2.1 / 3.1 / 4.1: the error-coverage
// guarantee (|err| <= εn with probability >= 0.9 at a fixed time), the
// confidence-factor communication/accuracy trade-off, and the median
// booster sweep of §1.2 (all-times correctness from m independent copies).

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "disttrack/common/stats.h"

namespace {

using disttrack::CoverageWithin;
using disttrack::RunningStats;
using disttrack::core::Algorithm;
using disttrack::core::TrackerOptions;
using namespace disttrack::stream;
namespace sim = disttrack::sim;
namespace core = disttrack::core;

}  // namespace

int main() {
  const int kSites = 16;
  const double kEps = 0.02;
  const uint64_t kN = 60000;
  const int kTrials = 120;

  std::printf("== Fixed-time coverage (Theorems 2.1 / 3.1 / 4.1) ==\n");
  std::printf("(k = %d, eps = %.3f, n = %llu, %d trials; paper guarantee: "
              "coverage >= 0.9)\n\n",
              kSites, kEps, static_cast<unsigned long long>(kN), kTrials);
  std::printf("%-12s %-14s %10s %12s %12s\n", "problem", "algorithm",
              "coverage", "mean err", "std err");

  // Count.
  {
    auto w = MakeCountWorkload(kSites, kN, SiteSchedule::kUniformRandom, 3);
    for (auto algorithm : {Algorithm::kRandomized, Algorithm::kSampling}) {
      std::vector<double> errors;
      RunningStats stats;
      for (int t = 0; t < kTrials; ++t) {
        TrackerOptions o;
        o.num_sites = kSites;
        o.epsilon = kEps;
        o.seed = 100 + static_cast<uint64_t>(t);
        std::unique_ptr<sim::CountTrackerInterface> tracker;
        (void)core::MakeCountTracker(algorithm, o, &tracker);
        for (const auto& a : w) tracker->Arrive(a.site);
        double err = tracker->EstimateCount() - static_cast<double>(kN);
        errors.push_back(err);
        stats.Add(err);
      }
      std::printf("%-12s %-14s %10.3f %12.1f %12.1f\n", "count",
                  core::AlgorithmName(algorithm).c_str(),
                  CoverageWithin(errors, kEps * static_cast<double>(kN)),
                  stats.Mean(), stats.StdDev());
    }
  }

  // Frequency (planted heavy item = 25% of the stream).
  {
    std::vector<uint64_t> counts{kN / 4, kN / 8, kN / 16};
    counts.push_back(kN - counts[0] - counts[1] - counts[2]);
    auto w = MakePlantedFrequencyWorkload(kSites, counts,
                                          SiteSchedule::kUniformRandom, 5);
    for (auto algorithm : {Algorithm::kRandomized, Algorithm::kSampling}) {
      std::vector<double> errors;
      RunningStats stats;
      for (int t = 0; t < kTrials; ++t) {
        TrackerOptions o;
        o.num_sites = kSites;
        o.epsilon = kEps;
        o.seed = 200 + static_cast<uint64_t>(t);
        std::unique_ptr<sim::FrequencyTrackerInterface> tracker;
        (void)core::MakeFrequencyTracker(algorithm, o, &tracker);
        for (const auto& a : w) tracker->Arrive(a.site, a.key);
        double err =
            tracker->EstimateFrequency(0) - static_cast<double>(counts[0]);
        errors.push_back(err);
        stats.Add(err);
      }
      std::printf("%-12s %-14s %10.3f %12.1f %12.1f\n", "frequency",
                  core::AlgorithmName(algorithm).c_str(),
                  CoverageWithin(errors, kEps * static_cast<double>(w.size())),
                  stats.Mean(), stats.StdDev());
    }
  }

  // Rank (median query).
  {
    auto w = MakeRankWorkload(kSites, kN, SiteSchedule::kUniformRandom,
                              ValueOrder::kUniformRandom, 16, 7);
    const uint64_t x = 1 << 15;
    double truth = static_cast<double>(ExactRank(w, x));
    for (auto algorithm : {Algorithm::kRandomized, Algorithm::kSampling}) {
      std::vector<double> errors;
      RunningStats stats;
      for (int t = 0; t < kTrials; ++t) {
        TrackerOptions o;
        o.num_sites = kSites;
        o.epsilon = kEps;
        o.seed = 300 + static_cast<uint64_t>(t);
        std::unique_ptr<sim::RankTrackerInterface> tracker;
        (void)core::MakeRankTracker(algorithm, o, &tracker);
        for (const auto& a : w) tracker->Arrive(a.site, a.key);
        double err = tracker->EstimateRank(x) - truth;
        errors.push_back(err);
        stats.Add(err);
      }
      std::printf("%-12s %-14s %10.3f %12.1f %12.1f\n", "rank",
                  core::AlgorithmName(algorithm).c_str(),
                  CoverageWithin(errors, kEps * static_cast<double>(kN)),
                  stats.Mean(), stats.StdDev());
    }
  }

  // Confidence-factor trade-off (count): communication ~ c, error std ~ 1/c.
  std::printf("\n== Confidence factor c: accuracy vs communication "
              "(randomized count) ==\n");
  std::printf("%6s %12s %12s %10s\n", "c", "messages", "std err",
              "coverage");
  {
    auto w = MakeCountWorkload(kSites, kN, SiteSchedule::kUniformRandom, 9);
    for (double c : {1.0, 2.0, 4.0, 8.0}) {
      std::vector<double> errors;
      uint64_t messages = 0;
      for (int t = 0; t < kTrials; ++t) {
        TrackerOptions o;
        o.num_sites = kSites;
        o.epsilon = kEps;
        o.seed = 400 + static_cast<uint64_t>(t);
        o.confidence_factor = c;
        std::unique_ptr<sim::CountTrackerInterface> tracker;
        (void)core::MakeCountTracker(Algorithm::kRandomized, o, &tracker);
        for (const auto& a : w) tracker->Arrive(a.site);
        errors.push_back(tracker->EstimateCount() - static_cast<double>(kN));
        messages += tracker->meter().TotalMessages();
      }
      RunningStats stats;
      for (double e : errors) stats.Add(e);
      std::printf("%6.1f %12llu %12.1f %10.3f\n", c,
                  static_cast<unsigned long long>(messages / kTrials),
                  stats.StdDev(),
                  CoverageWithin(errors, kEps * static_cast<double>(kN)));
    }
  }

  // Median booster sweep (§1.2): worst checkpoint error over the whole run.
  std::printf("\n== Median booster (all-times correctness, §1.2) ==\n");
  std::printf("%8s %12s %16s %12s\n", "copies", "messages",
              "worst-rel (max)", "miss rate");
  {
    auto w = MakeCountWorkload(kSites, kN, SiteSchedule::kUniformRandom, 11);
    for (int copies : {1, 3, 5, 9}) {
      double worst = 0;
      int misses = 0;
      uint64_t messages = 0;
      const int kRuns = 30;
      for (int t = 0; t < kRuns; ++t) {
        TrackerOptions o;
        o.num_sites = kSites;
        o.epsilon = kEps;
        o.seed = 500 + static_cast<uint64_t>(t);
        o.median_copies = copies;
        std::unique_ptr<sim::CountTrackerInterface> tracker;
        (void)core::MakeCountTracker(Algorithm::kRandomized, o, &tracker);
        auto checkpoints = sim::ReplayCount(tracker.get(), w, 1.3);
        double run_worst = 0;
        for (const auto& cp : checkpoints) {
          if (cp.n < 2000) continue;
          double rel = std::fabs(cp.estimate - cp.truth) /
                       static_cast<double>(cp.n);
          run_worst = std::max(run_worst, rel);
        }
        worst = std::max(worst, run_worst);
        if (run_worst > kEps) ++misses;
        messages += tracker->meter().TotalMessages();
      }
      std::printf("%8d %12llu %16.4f %12.3f\n", copies,
                  static_cast<unsigned long long>(messages / kRuns), worst,
                  static_cast<double>(misses) / kRuns);
    }
  }
  std::printf("\n(Expected: std err ~ eps*n/c; booster drives the all-times "
              "miss rate toward 0 at ~copies x communication.)\n");
  return 0;
}
