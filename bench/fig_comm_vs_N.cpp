// Figure series: total communication vs stream length N at fixed k and ε.
// Every protocol in Table 1 carries a logN factor: doubling N should add a
// roughly constant number of messages per protocol (i.e., cost is linear
// in log2 N, strongly sublinear in N itself).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "disttrack/common/stats.h"

namespace {

using disttrack::LogLogSlope;
using disttrack::bench::RunCount;
using disttrack::core::Algorithm;
using disttrack::core::TrackerOptions;
using namespace disttrack::stream;

}  // namespace

int main() {
  const int kSites = 16;
  const double kEps = 0.01;
  std::printf("== Communication vs N ==  (count, k = %d, eps = %.3f)\n\n",
              kSites, kEps);
  std::printf("%12s %14s %14s %14s\n", "N", "deterministic", "randomized",
              "sampling");

  std::vector<double> log_ns;
  std::vector<std::vector<double>> series(3);
  for (int log_n = 14; log_n <= 20; log_n += 2) {
    uint64_t n = 1ull << log_n;
    auto w = MakeCountWorkload(kSites, n, SiteSchedule::kUniformRandom,
                               41 + static_cast<uint64_t>(log_n));
    TrackerOptions o;
    o.num_sites = kSites;
    o.epsilon = kEps;
    o.seed = 13;
    double det = static_cast<double>(
        RunCount(Algorithm::kDeterministic, o, w).messages);
    double rnd = static_cast<double>(
        RunCount(Algorithm::kRandomized, o, w).messages);
    double smp = static_cast<double>(
        RunCount(Algorithm::kSampling, o, w).messages);
    std::printf("%12llu %14.0f %14.0f %14.0f\n",
                static_cast<unsigned long long>(n), det, rnd, smp);
    log_ns.push_back(static_cast<double>(log_n));
    series[0].push_back(det);
    series[1].push_back(rnd);
    series[2].push_back(smp);
  }

  // Cost ~ logN means the log-log slope of messages against N itself is
  // far below 1 (a protocol forwarding a constant fraction of the stream
  // would show slope ~1). Slope in N is robust to the round-boundary
  // jitter of the randomized protocol, unlike pairwise increments.
  std::printf("\nLog-log slope of messages vs N (linear-in-N would be 1.0; "
              "logN scaling gives << 1):\n");
  const char* names[3] = {"deterministic", "randomized", "sampling"};
  std::vector<double> ns;
  for (double ln : log_ns) ns.push_back(std::exp2(ln));
  for (int s = 0; s < 3; ++s) {
    std::printf("  %-14s : %.2f\n", names[s], LogLogSlope(ns, series[s]));
  }
  return 0;
}
