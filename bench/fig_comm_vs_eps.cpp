// Figure series: total communication vs 1/ε at fixed k and N.
// Expected shapes (Table 1): deterministic and randomized tracking grow
// ~1/ε; the sampling baseline grows ~1/ε² — the reason tracking wins
// whenever k = o(1/ε²) (§1.2).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "disttrack/common/stats.h"

namespace {

using disttrack::LogLogSlope;
using disttrack::bench::RunCount;
using disttrack::bench::RunFrequency;
using disttrack::core::Algorithm;
using disttrack::core::TrackerOptions;
using namespace disttrack::stream;

}  // namespace

int main() {
  const int kSites = 16;
  const uint64_t kN = 1ull << 19;
  std::printf("== Communication vs 1/eps ==  (k = %d, N = %llu, messages)\n",
              kSites, static_cast<unsigned long long>(kN));

  std::printf("\n-- count --\n");
  std::printf("%10s %14s %14s %14s\n", "1/eps", "deterministic",
              "randomized", "sampling");
  std::vector<double> inv_eps;
  std::vector<std::vector<double>> series(3);
  for (double eps : {0.08, 0.04, 0.02, 0.01, 0.005}) {
    auto w = MakeCountWorkload(kSites, kN, SiteSchedule::kUniformRandom, 29);
    TrackerOptions o;
    o.num_sites = kSites;
    o.epsilon = eps;
    o.seed = 11;
    double det = static_cast<double>(
        RunCount(Algorithm::kDeterministic, o, w).messages);
    double rnd = static_cast<double>(
        RunCount(Algorithm::kRandomized, o, w).messages);
    double smp = static_cast<double>(
        RunCount(Algorithm::kSampling, o, w).messages);
    std::printf("%10.0f %14.0f %14.0f %14.0f\n", 1.0 / eps, det, rnd, smp);
    inv_eps.push_back(1.0 / eps);
    series[0].push_back(det);
    series[1].push_back(rnd);
    series[2].push_back(smp);
  }
  std::printf("%10s %14.2f %14.2f %14.2f   <- log-log slope "
              "(theory: 1.0 / 1.0 / 2.0)\n",
              "slope", LogLogSlope(inv_eps, series[0]),
              LogLogSlope(inv_eps, series[1]),
              LogLogSlope(inv_eps, series[2]));

  std::printf("\n-- frequency --\n");
  std::printf("%10s %14s %14s\n", "1/eps", "deterministic", "randomized");
  inv_eps.clear();
  series.assign(2, {});
  for (double eps : {0.08, 0.04, 0.02, 0.01}) {
    auto w = MakeFrequencyWorkload(kSites, 1ull << 17,
                                   SiteSchedule::kUniformRandom, 1000, 1.2,
                                   31);
    TrackerOptions o;
    o.num_sites = kSites;
    o.epsilon = eps;
    o.seed = 11;
    double det = static_cast<double>(
        RunFrequency(Algorithm::kDeterministic, o, w, 0).messages);
    double rnd = static_cast<double>(
        RunFrequency(Algorithm::kRandomized, o, w, 0).messages);
    std::printf("%10.0f %14.0f %14.0f\n", 1.0 / eps, det, rnd);
    inv_eps.push_back(1.0 / eps);
    series[0].push_back(det);
    series[1].push_back(rnd);
  }
  std::printf("%10s %14.2f %14.2f   <- log-log slope (theory: 1.0 / 1.0)\n",
              "slope", LogLogSlope(inv_eps, series[0]),
              LogLogSlope(inv_eps, series[1]));
  return 0;
}
