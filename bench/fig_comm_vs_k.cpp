// Figure series: total communication vs number of sites k, for all three
// problems and all three algorithm families on identical workloads.
// Expected shapes (Table 1): deterministic ~ k, randomized ~ √k,
// sampling ~ k-independent uploads (+ k·logN broadcast floor).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "disttrack/common/stats.h"

namespace {

using disttrack::LogLogSlope;
using disttrack::bench::RunCount;
using disttrack::bench::RunFrequency;
using disttrack::bench::RunRank;
using disttrack::core::Algorithm;
using disttrack::core::TrackerOptions;
using namespace disttrack::stream;

void PrintSeries(const char* problem, const std::vector<int>& ks,
                 const std::vector<std::vector<double>>& series) {
  std::printf("\n-- %s --\n", problem);
  std::printf("%8s %14s %14s %14s\n", "k", "deterministic", "randomized",
              "sampling");
  for (size_t i = 0; i < ks.size(); ++i) {
    std::printf("%8d %14.0f %14.0f %14.0f\n", ks[i], series[0][i],
                series[1][i], series[2][i]);
  }
  std::vector<double> kd(ks.begin(), ks.end());
  std::printf("%8s %14.2f %14.2f %14.2f   <- log-log slope "
              "(theory: 1.0 / 0.5 / ~0)\n",
              "slope", LogLogSlope(kd, series[0]), LogLogSlope(kd, series[1]),
              LogLogSlope(kd, series[2]));
}

}  // namespace

int main() {
  const std::vector<int> kKs{4, 16, 64, 256};
  std::printf("== Communication vs k ==  (messages; N and eps fixed per "
              "problem)\n");

  {  // Count: eps = 0.01, N = 2^19.
    std::vector<std::vector<double>> series(3);
    for (int k : kKs) {
      auto w = MakeCountWorkload(k, 1ull << 19, SiteSchedule::kUniformRandom,
                                 17 + static_cast<uint64_t>(k));
      TrackerOptions o;
      o.num_sites = k;
      o.epsilon = 0.01;
      o.seed = 3;
      series[0].push_back(
          static_cast<double>(RunCount(Algorithm::kDeterministic, o, w).messages));
      series[1].push_back(
          static_cast<double>(RunCount(Algorithm::kRandomized, o, w).messages));
      series[2].push_back(
          static_cast<double>(RunCount(Algorithm::kSampling, o, w).messages));
    }
    PrintSeries("count (eps = 0.01, N = 2^19)", kKs, series);
  }

  {  // Frequency: eps = 0.02, N = 2^17.
    std::vector<std::vector<double>> series(3);
    for (int k : kKs) {
      auto w = MakeFrequencyWorkload(k, 1ull << 17,
                                     SiteSchedule::kUniformRandom, 1000, 1.2,
                                     19 + static_cast<uint64_t>(k));
      TrackerOptions o;
      o.num_sites = k;
      o.epsilon = 0.02;
      o.seed = 3;
      series[0].push_back(static_cast<double>(
          RunFrequency(Algorithm::kDeterministic, o, w, 0).messages));
      series[1].push_back(static_cast<double>(
          RunFrequency(Algorithm::kRandomized, o, w, 0).messages));
      series[2].push_back(static_cast<double>(
          RunFrequency(Algorithm::kSampling, o, w, 0).messages));
    }
    PrintSeries("frequency (eps = 0.02, N = 2^17)", kKs, series);
  }

  {  // Rank: eps = 0.05, N = 2^16, 10-bit universe.
    std::vector<std::vector<double>> series(3);
    for (int k : kKs) {
      auto w = MakeRankWorkload(k, 1ull << 16, SiteSchedule::kUniformRandom,
                                ValueOrder::kUniformRandom, 10,
                                23 + static_cast<uint64_t>(k));
      TrackerOptions o;
      o.num_sites = k;
      o.epsilon = 0.05;
      o.seed = 3;
      o.universe_bits = 10;
      series[0].push_back(static_cast<double>(
          RunRank(Algorithm::kDeterministic, o, w, 512).messages));
      series[1].push_back(static_cast<double>(
          RunRank(Algorithm::kRandomized, o, w, 512).messages));
      series[2].push_back(static_cast<double>(
          RunRank(Algorithm::kSampling, o, w, 512).messages));
    }
    PrintSeries("rank (eps = 0.05, N = 2^16, 10-bit universe)", kKs, series);
    std::printf("   (note: the deterministic rank baseline is saturated at "
                "this N — its drift thresholds floor at 1 and it forwards "
                "~levels words per element, flattening its k-slope; its "
                "absolute cost is already the largest of the three.)\n");
  }
  return 0;
}
