// The §1.2 regime map: random sampling [9] costs O(1/ε²·logN) while the
// randomized tracker costs O(√k/ε·logN); sampling therefore wins exactly
// when k = Ω(1/ε²). This harness sweeps a (k, ε) grid and prints the
// winner, locating the crossover curve k ≈ 1/ε².

#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace {

using disttrack::bench::RunCount;
using disttrack::core::Algorithm;
using disttrack::core::TrackerOptions;
using namespace disttrack::stream;

}  // namespace

int main() {
  const uint64_t kN = 1ull << 18;
  std::printf("== Sampling vs randomized tracking: winner map (count, "
              "N = %llu) ==\n\n",
              static_cast<unsigned long long>(kN));
  std::printf("Cell: T = tracking wins (fewer messages), S = sampling "
              "wins; paper predicts S iff k = Omega(1/eps^2).\n\n");

  const std::vector<int> ks{4, 16, 64, 256, 1024};
  const std::vector<double> epss{0.2, 0.1, 0.05, 0.025};

  std::printf("%10s", "k \\ 1/e^2");
  for (double eps : epss) {
    std::printf(" %11.0f", 1.0 / (eps * eps));
  }
  std::printf("\n");

  for (int k : ks) {
    std::printf("%10d", k);
    for (double eps : epss) {
      auto w = MakeCountWorkload(k, kN, SiteSchedule::kUniformRandom,
                                 91 + static_cast<uint64_t>(k));
      TrackerOptions o;
      o.num_sites = k;
      o.epsilon = eps;
      o.seed = 17;
      auto tracking = RunCount(Algorithm::kRandomized, o, w);
      auto sampling = RunCount(Algorithm::kSampling, o, w);
      double ratio = static_cast<double>(sampling.messages) /
                     static_cast<double>(tracking.messages);
      std::printf("   %c %6.2f", tracking.messages <= sampling.messages
                                     ? 'T'
                                     : 'S',
                  ratio);
    }
    std::printf("\n");
  }
  std::printf("\n(Numbers are sampling/tracking message ratios; ratios < 1 "
              "mean sampling is cheaper — expected toward the bottom-left, "
              "where k exceeds 1/eps^2.)\n");
  return 0;
}
