// Lemma 2.2 / Claim A.1 / Figure 1 experiment: the 1-bit problem.
//
// s is k/2 + √k or k/2 - √k with equal probability; a coordinator that
// probes z uniformly random sites sees a hypergeometric count whose two
// conditional distributions (≈ the two normals of Figure 1) overlap almost
// completely when z = o(k). We sweep z and print the empirical success
// rate of the optimal threshold test — it stays near 1/2 until z ~ k,
// reproducing the Ω(k) probe lower bound that anchors Theorem 2.4's
// Ω(√k/ε · logN) message bound.

#include <cmath>
#include <cstdio>
#include <vector>

#include "disttrack/stream/hard_instances.h"

namespace {

namespace stream = disttrack::stream;

}  // namespace

int main() {
  const int kSites = 1024;
  const uint64_t kTrials = 4000;
  std::printf("== Lemma 2.2 / Figure 1: distinguishing s = k/2 +- sqrt(k) "
              "by probing z sites ==\n");
  std::printf("(k = %d, %llu trials per z; optimal threshold test at the "
              "density crossing)\n\n",
              kSites, static_cast<unsigned long long>(kTrials));
  std::printf("%8s %10s %14s %22s\n", "z", "z/k", "success rate",
              "theory (Phi overlap)");

  for (uint64_t z : {8ull, 32ull, 128ull, 256ull, 512ull, 768ull, 960ull,
                     1016ull}) {
    double rate = stream::OneBitSuccessRate(kSites, z, kTrials,
                                            77 + z);
    // Normal-approximation prediction: success = Phi(alpha z / sigma) with
    // alpha = 1/sqrt(k), sigma^2 = z p q (1 - z/k) (finite-population).
    double p = 0.5;
    double fpc = 1.0 - static_cast<double>(z) / kSites;
    double sigma = std::sqrt(static_cast<double>(z) * p * (1 - p) *
                             (fpc <= 0 ? 1e-6 : fpc));
    double shift = static_cast<double>(z) /
                   std::sqrt(static_cast<double>(kSites));
    double theory = 0.5 * std::erfc(-shift / (sigma * std::sqrt(2.0)));
    std::printf("%8llu %10.3f %14.3f %22.3f\n",
                static_cast<unsigned long long>(z),
                static_cast<double>(z) / kSites, rate, theory);
  }

  std::printf("\nReading: success stays near 0.5 (coin flipping) while "
              "z << k and only approaches the 0.8 requirement of "
              "Definition 2.1 when z = Theta(k) — the Omega(k) sampling "
              "bound of Claim A.1/Figure 1. Theorem 2.4 embeds one such "
              "instance in each of its 1/(2 eps sqrt(k)) subrounds x logN "
              "rounds, forcing Omega(sqrt(k)/eps logN) messages total.\n");
  return 0;
}
