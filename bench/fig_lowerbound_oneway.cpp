// Theorem 2.2 experiment: one-way protocols cannot beat Θ(k/ε·logN).
//
// We replay the hard distribution µ (case (a): everything at one uniformly
// random site; case (b): round-robin) through
//   * the trivial deterministic tracker — the optimal ONE-WAY protocol, and
//   * the randomized tracker — which uses two-way traffic (broadcasts).
// The randomized protocol's downstream traffic is reported separately,
// demonstrating that its √k advantage is bought with coordinator->site
// messages, exactly the resource Theorem 2.2 proves necessary.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "disttrack/common/stats.h"
#include "disttrack/stream/hard_instances.h"

namespace {

using disttrack::RunningStats;
using disttrack::bench::RunCount;
using disttrack::core::Algorithm;
using disttrack::core::TrackerOptions;
namespace stream = disttrack::stream;

}  // namespace

int main() {
  const int kSites = 64;
  const double kEps = 0.02;
  const uint64_t kN = 1ull << 18;
  const int kTrials = 10;

  std::printf("== Theorem 2.2: the hard distribution mu, one-way vs "
              "two-way ==\n");
  std::printf("(k = %d, eps = %.3f, N = %llu, %d draws of mu)\n\n", kSites,
              kEps, static_cast<unsigned long long>(kN), kTrials);

  RunningStats det_msgs_a, det_msgs_b, rnd_msgs_a, rnd_msgs_b, rnd_down;
  for (int t = 0; t < kTrials; ++t) {
    auto mu = stream::MakeMuInstance(kSites, kN, 1000 + static_cast<uint64_t>(t));
    TrackerOptions o;
    o.num_sites = kSites;
    o.epsilon = kEps;
    o.seed = 55 + static_cast<uint64_t>(t);
    auto det = RunCount(Algorithm::kDeterministic, o, mu.workload);
    auto rnd = RunCount(Algorithm::kRandomized, o, mu.workload);
    if (mu.single_site_case) {
      det_msgs_a.Add(static_cast<double>(det.messages));
      rnd_msgs_a.Add(static_cast<double>(rnd.messages));
    } else {
      det_msgs_b.Add(static_cast<double>(det.messages));
      rnd_msgs_b.Add(static_cast<double>(rnd.messages));
    }
    rnd_down.Add(static_cast<double>(rnd.downloads));
  }

  std::printf("%-34s %14s %14s\n", "protocol / mu case", "mean messages",
              "draws");
  std::printf("%-34s %14.0f %14llu\n", "one-way deterministic, case (a)",
              det_msgs_a.Mean(),
              static_cast<unsigned long long>(det_msgs_a.count()));
  std::printf("%-34s %14.0f %14llu\n", "one-way deterministic, case (b)",
              det_msgs_b.Mean(),
              static_cast<unsigned long long>(det_msgs_b.count()));
  std::printf("%-34s %14.0f %14llu\n", "two-way randomized, case (a)",
              rnd_msgs_a.Mean(),
              static_cast<unsigned long long>(rnd_msgs_a.count()));
  std::printf("%-34s %14.0f %14llu\n", "two-way randomized, case (b)",
              rnd_msgs_b.Mean(),
              static_cast<unsigned long long>(rnd_msgs_b.count()));
  std::printf("\nRandomized coordinator->site messages (mean): %.0f "
              "(> 0: the protocol is genuinely two-way, as Theorem 2.2 "
              "requires for any o(k/eps logN) protocol)\n",
              rnd_down.Mean());

  std::printf("\nTheory: any ONE-WAY protocol pays Omega(k/eps logN) = "
              "~%.0f-message scale on mu; the deterministic rows realize "
              "that scale, while the two-way randomized protocol stays "
              "near sqrt(k)/eps logN on both cases.\n",
              static_cast<double>(kSites) / kEps *
                  std::log2(static_cast<double>(kN)) / 8);
  return 0;
}
