// Theorem 3.2 experiment: the space–communication trade-off
// C · M = Ω(logN / ε²) for frequency tracking.
//
// We measure C (bits ~ words × 64) and M (per-site peak words) for the
// randomized frequency tracker and the sampling baseline, then compare
// the product C·M against the logN/ε² bound. The two algorithms sit at
// opposite ends of the trade-off (the paper notes sampling attains the
// other extreme: O(1) space, 1/ε²·logN communication), and both products
// must stay above the lower-bound curve.

#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace {

using disttrack::bench::RunFrequency;
using disttrack::core::Algorithm;
using disttrack::core::TrackerOptions;
using namespace disttrack::stream;

}  // namespace

int main() {
  const int kSites = 16;
  const uint64_t kN = 1ull << 18;
  std::printf("== Theorem 3.2: space x communication trade-off "
              "(frequency, k = %d, N = %llu) ==\n\n",
              kSites, static_cast<unsigned long long>(kN));
  std::printf("%8s %-12s %14s %12s %16s %16s\n", "eps", "algorithm",
              "C (words)", "M (words)", "C*M", "logN/eps^2");

  for (double eps : {0.05, 0.02, 0.01}) {
    auto w = MakeFrequencyWorkload(kSites, kN, SiteSchedule::kUniformRandom,
                                   2000, 1.2, 61);
    double bound = std::log2(static_cast<double>(kN)) / (eps * eps);
    for (auto algorithm : {Algorithm::kRandomized, Algorithm::kSampling}) {
      TrackerOptions o;
      o.num_sites = kSites;
      o.epsilon = eps;
      o.seed = 19;
      auto r = RunFrequency(algorithm, o, w, 0);
      double cm = static_cast<double>(r.words) *
                  static_cast<double>(r.max_site_space);
      std::printf("%8.3f %-12s %14llu %12llu %16.3g %16.3g%s\n", eps,
                  disttrack::core::AlgorithmName(algorithm).c_str(),
                  static_cast<unsigned long long>(r.words),
                  static_cast<unsigned long long>(r.max_site_space), cm,
                  bound, cm >= bound ? "   (>= bound, consistent)" : "  !");
    }
  }

  std::printf("\nReading: both algorithms respect C*M >= logN/eps^2 "
              "(in word units; the paper states the bound in bits, a "
              "factor-64 slack in our favor). The randomized tracker "
              "spends ~sqrt(k)/eps*logN communication at O(1/(eps sqrt k)) "
              "space; the sampling baseline spends ~1/eps^2*logN at O(1) "
              "space — the two announced extremes of the trade-off.\n");
  return 0;
}
