// Table 1, space column: measured per-site peak space (words) for all six
// algorithms across a k sweep. Expected shapes:
//   count (both):        O(1)
//   frequency [29]:      O(1/ε), flat in k
//   frequency new:       O(1/(ε√k)), shrinking in k
//   rank [29]:           O(L²/ε · ...) flat in k
//   rank new:            O(1/(ε√k) · polylog), shrinking in k
//   sampling [9]:        O(1)

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "disttrack/common/stats.h"

namespace {

using disttrack::LogLogSlope;
using disttrack::bench::RunCount;
using disttrack::bench::RunFrequency;
using disttrack::bench::RunRank;
using disttrack::core::Algorithm;
using disttrack::core::TrackerOptions;
using namespace disttrack::stream;

}  // namespace

int main() {
  const double kEps = 0.02;
  std::printf("== Table 1 space column: per-site peak words vs k "
              "(eps = %.3f) ==\n\n",
              kEps);
  std::printf("%6s %10s %10s %10s %10s %10s %10s %10s\n", "k", "cnt-det",
              "cnt-rand", "freq-det", "freq-rand", "rank-det", "rank-rand",
              "sampling");

  std::vector<double> ks, freq_rand_space, rank_rand_space;
  for (int k : {4, 16, 64, 256}) {
    auto wc = MakeCountWorkload(k, 1ull << 17, SiteSchedule::kUniformRandom,
                                71 + static_cast<uint64_t>(k));
    auto wf = MakeFrequencyWorkload(k, 1ull << 17,
                                    SiteSchedule::kUniformRandom, 2000, 1.2,
                                    73 + static_cast<uint64_t>(k));
    auto wr = MakeRankWorkload(k, 1ull << 16, SiteSchedule::kUniformRandom,
                               ValueOrder::kUniformRandom, 10,
                               79 + static_cast<uint64_t>(k));
    TrackerOptions o;
    o.num_sites = k;
    o.epsilon = kEps;
    o.seed = 23;
    o.universe_bits = 10;
    uint64_t cnt_det = RunCount(Algorithm::kDeterministic, o, wc).max_site_space;
    uint64_t cnt_rnd = RunCount(Algorithm::kRandomized, o, wc).max_site_space;
    uint64_t frq_det =
        RunFrequency(Algorithm::kDeterministic, o, wf, 0).max_site_space;
    uint64_t frq_rnd =
        RunFrequency(Algorithm::kRandomized, o, wf, 0).max_site_space;
    uint64_t rnk_det =
        RunRank(Algorithm::kDeterministic, o, wr, 512).max_site_space;
    uint64_t rnk_rnd =
        RunRank(Algorithm::kRandomized, o, wr, 512).max_site_space;
    uint64_t smp = RunCount(Algorithm::kSampling, o, wc).max_site_space;
    std::printf("%6d %10llu %10llu %10llu %10llu %10llu %10llu %10llu\n", k,
                static_cast<unsigned long long>(cnt_det),
                static_cast<unsigned long long>(cnt_rnd),
                static_cast<unsigned long long>(frq_det),
                static_cast<unsigned long long>(frq_rnd),
                static_cast<unsigned long long>(rnk_det),
                static_cast<unsigned long long>(rnk_rnd),
                static_cast<unsigned long long>(smp));
    ks.push_back(k);
    freq_rand_space.push_back(static_cast<double>(frq_rnd));
    rank_rand_space.push_back(static_cast<double>(rnk_rnd));
  }

  std::printf("\nGrowth exponents in k (log-log slope):\n");
  std::printf("  randomized frequency space : %.2f  (theory -0.5)\n",
              LogLogSlope(ks, freq_rand_space));
  std::printf("  randomized rank space      : %.2f  (theory -0.5)\n",
              LogLogSlope(ks, rank_rand_space));
  std::printf("\nCount trackers and the sampling baseline hold O(1) words "
              "regardless of k, matching Table 1.\n");
  return 0;
}
