// Table 1, count-tracking rows.
//
//   trivial:  space O(1)/site,  comm Θ(k/ε · logN)   (deterministic, 1-way)
//   new:      space O(1)/site,  comm Θ(√k/ε · logN)  (randomized, Thm 2.1)
//
// This harness replays identical workloads through both protocols across a
// k sweep and reports message counts, the measured det/rand ratio (theory:
// ~√k/c), and the empirical growth exponent of each protocol in k
// (theory: 1 for the trivial protocol, 0.5 for the randomized one).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "disttrack/common/stats.h"

namespace {

using disttrack::LogLogSlope;
using disttrack::bench::PrintHeader;
using disttrack::bench::PrintRow;
using disttrack::bench::Rule;
using disttrack::bench::RunCount;
using disttrack::core::Algorithm;
using disttrack::core::TrackerOptions;
using disttrack::stream::MakeCountWorkload;
using disttrack::stream::SiteSchedule;

}  // namespace

int main() {
  const double kEps = 0.01;
  const uint64_t kN = 1ull << 21;
  std::printf("== Table 1 / count-tracking ==  (N = %llu, eps = %.3f, "
              "uniform-random arrivals)\n\n",
              static_cast<unsigned long long>(kN), kEps);
  PrintHeader();

  std::vector<double> ks, det_msgs, rand_msgs;
  for (int k : {4, 16, 64, 256}) {
    auto w = MakeCountWorkload(k, kN, SiteSchedule::kUniformRandom,
                               1234 + static_cast<uint64_t>(k));
    TrackerOptions o;
    o.num_sites = k;
    o.epsilon = kEps;
    o.seed = 99;

    auto det = RunCount(Algorithm::kDeterministic, o, w);
    auto rnd = RunCount(Algorithm::kRandomized, o, w);
    PrintRow("trivial determ.   k=" + std::to_string(k), det, kEps);
    PrintRow("randomized (new)  k=" + std::to_string(k), rnd, kEps);
    std::printf("%-34s ratio det/rand = %.2f  (theory ~ sqrt(k)/c = %.2f)\n",
                "", static_cast<double>(det.messages) /
                        static_cast<double>(rnd.messages),
                std::sqrt(static_cast<double>(k)) / 2.0);
    Rule();
    ks.push_back(k);
    det_msgs.push_back(static_cast<double>(det.messages));
    rand_msgs.push_back(static_cast<double>(rnd.messages));
  }

  std::printf("\nGrowth exponents in k (log-log slope over the sweep):\n");
  std::printf("  trivial deterministic : %.2f   (theory 1.0)\n",
              LogLogSlope(ks, det_msgs));
  std::printf("  randomized (new)      : %.2f   (theory 0.5)\n",
              LogLogSlope(ks, rand_msgs));
  std::printf("\nSpace per site: both protocols O(1) words "
              "(see space/site column).\n");
  return 0;
}
