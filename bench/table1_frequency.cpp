// Table 1, frequency-tracking rows.
//
//   [29]: space O(1/ε)/site,      comm Θ(k/ε · logN)    (deterministic)
//   new:  space O(1/(ε√k))/site,  comm O(√k/ε · logN)   (randomized, §3)
//
// Replays a Zipf item workload through both trackers over a k sweep, and
// adds the estimator-(2) ablation of §3.1 showing the boundary bias that
// the paper's estimator (4) removes.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "disttrack/common/stats.h"
#include "disttrack/frequency/randomized_frequency.h"
#include "disttrack/stream/workload.h"

namespace {

using disttrack::LogLogSlope;
using disttrack::bench::PrintHeader;
using disttrack::bench::PrintRow;
using disttrack::bench::Rule;
using disttrack::bench::RunFrequency;
using disttrack::core::Algorithm;
using disttrack::core::TrackerOptions;
using disttrack::stream::MakeFrequencyWorkload;
using disttrack::stream::MakePlantedFrequencyWorkload;
using disttrack::stream::SiteSchedule;

}  // namespace

int main() {
  const double kEps = 0.02;
  const uint64_t kN = 1ull << 18;
  std::printf("== Table 1 / frequency-tracking ==  (N = %llu, eps = %.3f, "
              "Zipf(1.2) items)\n\n",
              static_cast<unsigned long long>(kN), kEps);
  PrintHeader();

  std::vector<double> ks, det_msgs, rand_msgs, rand_space, det_space;
  for (int k : {4, 16, 64}) {
    auto w = MakeFrequencyWorkload(k, kN, SiteSchedule::kUniformRandom, 2000,
                                   1.2, 777 + static_cast<uint64_t>(k));
    TrackerOptions o;
    o.num_sites = k;
    o.epsilon = kEps;
    o.seed = 42;
    auto det = RunFrequency(Algorithm::kDeterministic, o, w, 0);
    auto rnd = RunFrequency(Algorithm::kRandomized, o, w, 0);
    PrintRow("deterministic [29]  k=" + std::to_string(k), det, kEps);
    PrintRow("randomized (new)    k=" + std::to_string(k), rnd, kEps);
    std::printf("%-34s ratio det/rand = %.2f   space det/rand = %.2f "
                "(theory ~ sqrt(k))\n",
                "",
                static_cast<double>(det.messages) /
                    static_cast<double>(rnd.messages),
                static_cast<double>(det.max_site_space) /
                    static_cast<double>(rnd.max_site_space));
    Rule();
    ks.push_back(k);
    det_msgs.push_back(static_cast<double>(det.messages));
    rand_msgs.push_back(static_cast<double>(rnd.messages));
    det_space.push_back(static_cast<double>(det.max_site_space));
    rand_space.push_back(static_cast<double>(rnd.max_site_space));
  }

  std::printf("\nGrowth exponents in k (log-log slope):\n");
  std::printf("  deterministic comm : %.2f  (theory 1.0)\n",
              LogLogSlope(ks, det_msgs));
  std::printf("  randomized comm    : %.2f  (theory 0.5)\n",
              LogLogSlope(ks, rand_msgs));
  std::printf("  deterministic space: %.2f  (theory 0.0 — O(1/eps))\n",
              LogLogSlope(ks, det_space));
  std::printf("  randomized space   : %.2f  (theory -0.5 — O(1/(eps sqrt k)))\n",
              LogLogSlope(ks, rand_space));

  // Ablation: estimator (2) vs estimator (4) on mid-frequency items.
  std::printf("\n-- Ablation: biased estimator (2) vs unbiased (4) (§3.1) --\n");
  const int k = 16;
  std::vector<uint64_t> counts(40, 400);
  auto w = MakePlantedFrequencyWorkload(k, counts,
                                        SiteSchedule::kUniformRandom, 31);
  for (bool naive : {true, false}) {
    disttrack::RunningStats err;
    for (uint64_t seed = 0; seed < 60; ++seed) {
      disttrack::frequency::RandomizedFrequencyOptions o;
      o.num_sites = k;
      o.epsilon = 0.05;
      o.seed = seed + 1;
      o.naive_boundary_estimator = naive;
      disttrack::frequency::RandomizedFrequencyTracker tracker(o);
      for (const auto& a : w) tracker.Arrive(a.site, a.key);
      err.Add(tracker.EstimateFrequency(7) - 400.0);
    }
    std::printf("  estimator %s : mean error %+8.2f   (true f = 400)\n",
                naive ? "(2) biased  " : "(4) unbiased", err.Mean());
  }
  std::printf("  -> the (2) branch drops the -d/p correction and "
              "overestimates rare/mid items, as §3.1 predicts.\n");
  return 0;
}
