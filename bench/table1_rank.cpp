// Table 1, rank-tracking rows.
//
//   [29]: space O(1/ε · log n),   comm O(k/ε · logN · log²(1/ε))
//   new:  space O(1/(ε√k)·log^1.5), comm O(√k/ε · logN · log^1.5(1/(ε√k)))
//
// The deterministic baseline is the [29] dyadic reduction (universe_bits
// levels in place of log(1/ε)); the randomized protocol is §4's algorithm C
// over compactor summaries. Identical uniform-value workloads, k sweep.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "disttrack/common/stats.h"

namespace {

using disttrack::LogLogSlope;
using disttrack::bench::PrintHeader;
using disttrack::bench::PrintRow;
using disttrack::bench::Rule;
using disttrack::bench::RunRank;
using disttrack::core::Algorithm;
using disttrack::core::TrackerOptions;
using disttrack::stream::MakeRankWorkload;
using disttrack::stream::SiteSchedule;
using disttrack::stream::ValueOrder;

}  // namespace

int main() {
  const double kEps = 0.05;
  const uint64_t kN = 1ull << 17;
  const int kUniverseBits = 10;
  std::printf("== Table 1 / rank-tracking ==  (N = %llu, eps = %.3f, "
              "uniform values in [0, 2^%d))\n",
              static_cast<unsigned long long>(kN), kEps, kUniverseBits);
  std::printf("   deterministic [29] = dyadic reduction with L = %d levels "
              "(stands in for log(1/eps); see DESIGN.md)\n\n",
              kUniverseBits);
  PrintHeader();

  std::vector<double> ks, det_words, rand_words;
  for (int k : {4, 16, 64}) {
    auto w = MakeRankWorkload(k, kN, SiteSchedule::kUniformRandom,
                              ValueOrder::kUniformRandom, kUniverseBits,
                              555 + static_cast<uint64_t>(k));
    TrackerOptions o;
    o.num_sites = k;
    o.epsilon = kEps;
    o.seed = 7;
    o.universe_bits = kUniverseBits;
    const uint64_t query = 1ull << (kUniverseBits - 1);  // median
    auto det = RunRank(Algorithm::kDeterministic, o, w, query);
    auto rnd = RunRank(Algorithm::kRandomized, o, w, query);
    PrintRow("deterministic [29]  k=" + std::to_string(k), det, kEps);
    PrintRow("randomized (new)    k=" + std::to_string(k), rnd, kEps);
    std::printf("%-34s ratio det/rand (words) = %.2f\n", "",
                static_cast<double>(det.words) /
                    static_cast<double>(rnd.words));
    Rule();
    ks.push_back(k);
    det_words.push_back(static_cast<double>(det.words));
    rand_words.push_back(static_cast<double>(rnd.words));
  }

  std::printf("\nGrowth exponents in k (log-log slope, words):\n");
  std::printf("  deterministic [29] : %.2f  (theory 1.0 asymptotically; at "
              "bench scale its per-level drift threshold saturates at 1, "
              "so it forwards ~L words/element regardless of k — the "
              "det/rand word ratios above are the meaningful signal)\n",
              LogLogSlope(ks, det_words));
  std::printf("  randomized (new)   : %.2f  (theory 0.5)\n",
              LogLogSlope(ks, rand_words));
  std::printf("\nBoth protocols answer any rank within eps*n; worst-rel "
              "column reports the observed worst checkpoint error for the "
              "median query.\n");
  return 0;
}
