// Table 1, sampling row (Cormode–Muthukrishnan–Yi–Zhang [9]):
//   space O(1)/site, comm O(1/ε² · logN), answers all three query types.
//
// Verifies the 1/ε² communication scaling (vs 1/ε for the tracking
// protocols), the k-independence of the upload traffic, and shows the
// regime comparison of §1.2: sampling wins only when k = Ω(1/ε²).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "disttrack/common/stats.h"

namespace {

using disttrack::LogLogSlope;
using disttrack::bench::PrintHeader;
using disttrack::bench::PrintRow;
using disttrack::bench::Rule;
using disttrack::bench::RunCount;
using disttrack::core::Algorithm;
using disttrack::core::TrackerOptions;
using disttrack::stream::MakeCountWorkload;
using disttrack::stream::SiteSchedule;

}  // namespace

int main() {
  const uint64_t kN = 1ull << 19;
  std::printf("== Table 1 / sampling [9] ==  (N = %llu, count queries, "
              "uniform-random arrivals)\n\n",
              static_cast<unsigned long long>(kN));
  PrintHeader();

  // Epsilon sweep at fixed k: comm should grow ~1/eps^2.
  std::vector<double> inv_eps, msgs;
  for (double eps : {0.1, 0.05, 0.025, 0.0125}) {
    auto w = MakeCountWorkload(16, kN, SiteSchedule::kUniformRandom, 321);
    TrackerOptions o;
    o.num_sites = 16;
    o.epsilon = eps;
    o.seed = 5;
    auto r = RunCount(Algorithm::kSampling, o, w);
    PrintRow("sampling  eps=" + std::to_string(eps), r, eps);
    inv_eps.push_back(1.0 / eps);
    msgs.push_back(static_cast<double>(r.messages));
  }
  Rule();
  std::printf("\nGrowth exponent in 1/eps: %.2f  (theory 2.0; tracking "
              "protocols are 1.0)\n",
              LogLogSlope(inv_eps, msgs));

  // k sweep at fixed eps: upload traffic should be k-independent.
  std::printf("\n-- k-independence of the sample traffic (eps = 0.05) --\n");
  PrintHeader();
  std::vector<double> ks, upmsgs;
  for (int k : {4, 16, 64, 256}) {
    auto w = MakeCountWorkload(k, kN, SiteSchedule::kUniformRandom,
                               321 + static_cast<uint64_t>(k));
    TrackerOptions o;
    o.num_sites = k;
    o.epsilon = 0.05;
    o.seed = 5;
    auto r = RunCount(Algorithm::kSampling, o, w);
    PrintRow("sampling  k=" + std::to_string(k), r, 0.05);
    ks.push_back(k);
    upmsgs.push_back(static_cast<double>(r.messages - r.downloads));
  }
  Rule();
  std::printf("\nGrowth exponent of uploads in k: %.2f  (theory 0.0)\n",
              LogLogSlope(ks, upmsgs));
  std::printf("(Total messages pick up a k·logN term from level "
              "broadcasts, as the paper's hidden additive term predicts.)\n");
  return 0;
}
