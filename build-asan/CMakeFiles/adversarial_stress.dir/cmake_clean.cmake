file(REMOVE_RECURSE
  "CMakeFiles/adversarial_stress.dir/examples/adversarial_stress.cpp.o"
  "CMakeFiles/adversarial_stress.dir/examples/adversarial_stress.cpp.o.d"
  "adversarial_stress"
  "adversarial_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
