# Empty compiler generated dependencies file for adversarial_stress.
# This may be replaced when dependencies are built.
