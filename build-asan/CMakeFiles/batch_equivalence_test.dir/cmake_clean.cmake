file(REMOVE_RECURSE
  "CMakeFiles/batch_equivalence_test.dir/tests/batch_equivalence_test.cc.o"
  "CMakeFiles/batch_equivalence_test.dir/tests/batch_equivalence_test.cc.o.d"
  "batch_equivalence_test"
  "batch_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
