# Empty dependencies file for batch_equivalence_test.
# This may be replaced when dependencies are built.
