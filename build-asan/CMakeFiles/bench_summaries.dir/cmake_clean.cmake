file(REMOVE_RECURSE
  "CMakeFiles/bench_summaries.dir/bench/bench_summaries.cpp.o"
  "CMakeFiles/bench_summaries.dir/bench/bench_summaries.cpp.o.d"
  "bench_summaries"
  "bench_summaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_summaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
