# Empty compiler generated dependencies file for bench_summaries.
# This may be replaced when dependencies are built.
