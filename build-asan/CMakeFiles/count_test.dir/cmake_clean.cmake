file(REMOVE_RECURSE
  "CMakeFiles/count_test.dir/tests/count_test.cc.o"
  "CMakeFiles/count_test.dir/tests/count_test.cc.o.d"
  "count_test"
  "count_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/count_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
