file(REMOVE_RECURSE
  "CMakeFiles/counter_table_test.dir/tests/counter_table_test.cc.o"
  "CMakeFiles/counter_table_test.dir/tests/counter_table_test.cc.o.d"
  "counter_table_test"
  "counter_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counter_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
