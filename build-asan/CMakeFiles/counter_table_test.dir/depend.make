# Empty dependencies file for counter_table_test.
# This may be replaced when dependencies are built.
