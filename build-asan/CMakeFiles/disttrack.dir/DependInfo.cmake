
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/disttrack/common/random.cc" "CMakeFiles/disttrack.dir/src/disttrack/common/random.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/common/random.cc.o.d"
  "/root/repo/src/disttrack/common/stats.cc" "CMakeFiles/disttrack.dir/src/disttrack/common/stats.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/common/stats.cc.o.d"
  "/root/repo/src/disttrack/core/median_booster.cc" "CMakeFiles/disttrack.dir/src/disttrack/core/median_booster.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/core/median_booster.cc.o.d"
  "/root/repo/src/disttrack/core/quantile.cc" "CMakeFiles/disttrack.dir/src/disttrack/core/quantile.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/core/quantile.cc.o.d"
  "/root/repo/src/disttrack/core/tracking.cc" "CMakeFiles/disttrack.dir/src/disttrack/core/tracking.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/core/tracking.cc.o.d"
  "/root/repo/src/disttrack/count/coarse_tracker.cc" "CMakeFiles/disttrack.dir/src/disttrack/count/coarse_tracker.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/count/coarse_tracker.cc.o.d"
  "/root/repo/src/disttrack/count/deterministic_count.cc" "CMakeFiles/disttrack.dir/src/disttrack/count/deterministic_count.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/count/deterministic_count.cc.o.d"
  "/root/repo/src/disttrack/count/randomized_count.cc" "CMakeFiles/disttrack.dir/src/disttrack/count/randomized_count.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/count/randomized_count.cc.o.d"
  "/root/repo/src/disttrack/frequency/deterministic_frequency.cc" "CMakeFiles/disttrack.dir/src/disttrack/frequency/deterministic_frequency.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/frequency/deterministic_frequency.cc.o.d"
  "/root/repo/src/disttrack/frequency/randomized_frequency.cc" "CMakeFiles/disttrack.dir/src/disttrack/frequency/randomized_frequency.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/frequency/randomized_frequency.cc.o.d"
  "/root/repo/src/disttrack/rank/deterministic_rank.cc" "CMakeFiles/disttrack.dir/src/disttrack/rank/deterministic_rank.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/rank/deterministic_rank.cc.o.d"
  "/root/repo/src/disttrack/rank/randomized_rank.cc" "CMakeFiles/disttrack.dir/src/disttrack/rank/randomized_rank.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/rank/randomized_rank.cc.o.d"
  "/root/repo/src/disttrack/sampling/distributed_sampler.cc" "CMakeFiles/disttrack.dir/src/disttrack/sampling/distributed_sampler.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/sampling/distributed_sampler.cc.o.d"
  "/root/repo/src/disttrack/sim/cluster.cc" "CMakeFiles/disttrack.dir/src/disttrack/sim/cluster.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/sim/cluster.cc.o.d"
  "/root/repo/src/disttrack/sim/comm_meter.cc" "CMakeFiles/disttrack.dir/src/disttrack/sim/comm_meter.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/sim/comm_meter.cc.o.d"
  "/root/repo/src/disttrack/sim/space_gauge.cc" "CMakeFiles/disttrack.dir/src/disttrack/sim/space_gauge.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/sim/space_gauge.cc.o.d"
  "/root/repo/src/disttrack/stream/hard_instances.cc" "CMakeFiles/disttrack.dir/src/disttrack/stream/hard_instances.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/stream/hard_instances.cc.o.d"
  "/root/repo/src/disttrack/stream/workload.cc" "CMakeFiles/disttrack.dir/src/disttrack/stream/workload.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/stream/workload.cc.o.d"
  "/root/repo/src/disttrack/stream/zipf.cc" "CMakeFiles/disttrack.dir/src/disttrack/stream/zipf.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/stream/zipf.cc.o.d"
  "/root/repo/src/disttrack/summaries/bernoulli_summary.cc" "CMakeFiles/disttrack.dir/src/disttrack/summaries/bernoulli_summary.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/summaries/bernoulli_summary.cc.o.d"
  "/root/repo/src/disttrack/summaries/compactor_summary.cc" "CMakeFiles/disttrack.dir/src/disttrack/summaries/compactor_summary.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/summaries/compactor_summary.cc.o.d"
  "/root/repo/src/disttrack/summaries/gk_summary.cc" "CMakeFiles/disttrack.dir/src/disttrack/summaries/gk_summary.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/summaries/gk_summary.cc.o.d"
  "/root/repo/src/disttrack/summaries/misra_gries.cc" "CMakeFiles/disttrack.dir/src/disttrack/summaries/misra_gries.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/summaries/misra_gries.cc.o.d"
  "/root/repo/src/disttrack/summaries/reservoir.cc" "CMakeFiles/disttrack.dir/src/disttrack/summaries/reservoir.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/summaries/reservoir.cc.o.d"
  "/root/repo/src/disttrack/summaries/run_ladder.cc" "CMakeFiles/disttrack.dir/src/disttrack/summaries/run_ladder.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/summaries/run_ladder.cc.o.d"
  "/root/repo/src/disttrack/summaries/space_saving.cc" "CMakeFiles/disttrack.dir/src/disttrack/summaries/space_saving.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/summaries/space_saving.cc.o.d"
  "/root/repo/src/disttrack/summaries/sticky_sampling.cc" "CMakeFiles/disttrack.dir/src/disttrack/summaries/sticky_sampling.cc.o" "gcc" "CMakeFiles/disttrack.dir/src/disttrack/summaries/sticky_sampling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
