file(REMOVE_RECURSE
  "libdisttrack.a"
)
