# Empty dependencies file for disttrack.
# This may be replaced when dependencies are built.
