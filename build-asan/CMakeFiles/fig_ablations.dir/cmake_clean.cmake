file(REMOVE_RECURSE
  "CMakeFiles/fig_ablations.dir/bench/fig_ablations.cpp.o"
  "CMakeFiles/fig_ablations.dir/bench/fig_ablations.cpp.o.d"
  "fig_ablations"
  "fig_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
