# Empty compiler generated dependencies file for fig_ablations.
# This may be replaced when dependencies are built.
