file(REMOVE_RECURSE
  "CMakeFiles/fig_accuracy.dir/bench/fig_accuracy.cpp.o"
  "CMakeFiles/fig_accuracy.dir/bench/fig_accuracy.cpp.o.d"
  "fig_accuracy"
  "fig_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
