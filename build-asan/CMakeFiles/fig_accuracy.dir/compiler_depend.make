# Empty compiler generated dependencies file for fig_accuracy.
# This may be replaced when dependencies are built.
