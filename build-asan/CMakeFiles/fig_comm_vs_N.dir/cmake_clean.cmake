file(REMOVE_RECURSE
  "CMakeFiles/fig_comm_vs_N.dir/bench/fig_comm_vs_N.cpp.o"
  "CMakeFiles/fig_comm_vs_N.dir/bench/fig_comm_vs_N.cpp.o.d"
  "fig_comm_vs_N"
  "fig_comm_vs_N.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_comm_vs_N.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
