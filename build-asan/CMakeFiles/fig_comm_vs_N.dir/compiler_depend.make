# Empty compiler generated dependencies file for fig_comm_vs_N.
# This may be replaced when dependencies are built.
