file(REMOVE_RECURSE
  "CMakeFiles/fig_comm_vs_eps.dir/bench/fig_comm_vs_eps.cpp.o"
  "CMakeFiles/fig_comm_vs_eps.dir/bench/fig_comm_vs_eps.cpp.o.d"
  "fig_comm_vs_eps"
  "fig_comm_vs_eps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_comm_vs_eps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
