# Empty compiler generated dependencies file for fig_comm_vs_eps.
# This may be replaced when dependencies are built.
