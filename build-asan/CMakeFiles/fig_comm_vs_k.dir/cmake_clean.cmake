file(REMOVE_RECURSE
  "CMakeFiles/fig_comm_vs_k.dir/bench/fig_comm_vs_k.cpp.o"
  "CMakeFiles/fig_comm_vs_k.dir/bench/fig_comm_vs_k.cpp.o.d"
  "fig_comm_vs_k"
  "fig_comm_vs_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_comm_vs_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
