file(REMOVE_RECURSE
  "CMakeFiles/fig_crossover.dir/bench/fig_crossover.cpp.o"
  "CMakeFiles/fig_crossover.dir/bench/fig_crossover.cpp.o.d"
  "fig_crossover"
  "fig_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
