# Empty dependencies file for fig_crossover.
# This may be replaced when dependencies are built.
