file(REMOVE_RECURSE
  "CMakeFiles/fig_lowerbound_1bit.dir/bench/fig_lowerbound_1bit.cpp.o"
  "CMakeFiles/fig_lowerbound_1bit.dir/bench/fig_lowerbound_1bit.cpp.o.d"
  "fig_lowerbound_1bit"
  "fig_lowerbound_1bit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_lowerbound_1bit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
