# Empty dependencies file for fig_lowerbound_1bit.
# This may be replaced when dependencies are built.
