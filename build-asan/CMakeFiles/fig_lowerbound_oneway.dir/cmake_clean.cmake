file(REMOVE_RECURSE
  "CMakeFiles/fig_lowerbound_oneway.dir/bench/fig_lowerbound_oneway.cpp.o"
  "CMakeFiles/fig_lowerbound_oneway.dir/bench/fig_lowerbound_oneway.cpp.o.d"
  "fig_lowerbound_oneway"
  "fig_lowerbound_oneway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_lowerbound_oneway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
