# Empty dependencies file for fig_lowerbound_oneway.
# This may be replaced when dependencies are built.
