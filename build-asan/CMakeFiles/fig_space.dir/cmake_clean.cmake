file(REMOVE_RECURSE
  "CMakeFiles/fig_space.dir/bench/fig_space.cpp.o"
  "CMakeFiles/fig_space.dir/bench/fig_space.cpp.o.d"
  "fig_space"
  "fig_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
