# Empty compiler generated dependencies file for fig_space.
# This may be replaced when dependencies are built.
