file(REMOVE_RECURSE
  "CMakeFiles/fig_space_per_site.dir/bench/fig_space_per_site.cpp.o"
  "CMakeFiles/fig_space_per_site.dir/bench/fig_space_per_site.cpp.o.d"
  "fig_space_per_site"
  "fig_space_per_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_space_per_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
