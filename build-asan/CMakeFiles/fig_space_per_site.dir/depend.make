# Empty dependencies file for fig_space_per_site.
# This may be replaced when dependencies are built.
