file(REMOVE_RECURSE
  "CMakeFiles/frequency_summaries_test.dir/tests/frequency_summaries_test.cc.o"
  "CMakeFiles/frequency_summaries_test.dir/tests/frequency_summaries_test.cc.o.d"
  "frequency_summaries_test"
  "frequency_summaries_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequency_summaries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
