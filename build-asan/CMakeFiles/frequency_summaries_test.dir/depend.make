# Empty dependencies file for frequency_summaries_test.
# This may be replaced when dependencies are built.
