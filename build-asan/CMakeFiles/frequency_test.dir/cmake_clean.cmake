file(REMOVE_RECURSE
  "CMakeFiles/frequency_test.dir/tests/frequency_test.cc.o"
  "CMakeFiles/frequency_test.dir/tests/frequency_test.cc.o.d"
  "frequency_test"
  "frequency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
