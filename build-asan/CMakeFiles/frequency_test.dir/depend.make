# Empty dependencies file for frequency_test.
# This may be replaced when dependencies are built.
