file(REMOVE_RECURSE
  "CMakeFiles/latency_quantile_dashboard.dir/examples/latency_quantile_dashboard.cpp.o"
  "CMakeFiles/latency_quantile_dashboard.dir/examples/latency_quantile_dashboard.cpp.o.d"
  "latency_quantile_dashboard"
  "latency_quantile_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_quantile_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
