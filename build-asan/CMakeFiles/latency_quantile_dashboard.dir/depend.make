# Empty dependencies file for latency_quantile_dashboard.
# This may be replaced when dependencies are built.
