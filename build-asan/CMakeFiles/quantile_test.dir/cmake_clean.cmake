file(REMOVE_RECURSE
  "CMakeFiles/quantile_test.dir/tests/quantile_test.cc.o"
  "CMakeFiles/quantile_test.dir/tests/quantile_test.cc.o.d"
  "quantile_test"
  "quantile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
