file(REMOVE_RECURSE
  "CMakeFiles/rank_summaries_test.dir/tests/rank_summaries_test.cc.o"
  "CMakeFiles/rank_summaries_test.dir/tests/rank_summaries_test.cc.o.d"
  "rank_summaries_test"
  "rank_summaries_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rank_summaries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
