# Empty dependencies file for rank_summaries_test.
# This may be replaced when dependencies are built.
