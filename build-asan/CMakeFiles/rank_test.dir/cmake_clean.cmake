file(REMOVE_RECURSE
  "CMakeFiles/rank_test.dir/tests/rank_test.cc.o"
  "CMakeFiles/rank_test.dir/tests/rank_test.cc.o.d"
  "rank_test"
  "rank_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
