# Empty compiler generated dependencies file for rank_test.
# This may be replaced when dependencies are built.
