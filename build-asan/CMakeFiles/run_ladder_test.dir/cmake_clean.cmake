file(REMOVE_RECURSE
  "CMakeFiles/run_ladder_test.dir/tests/run_ladder_test.cc.o"
  "CMakeFiles/run_ladder_test.dir/tests/run_ladder_test.cc.o.d"
  "run_ladder_test"
  "run_ladder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_ladder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
