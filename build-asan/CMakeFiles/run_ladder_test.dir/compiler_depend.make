# Empty compiler generated dependencies file for run_ladder_test.
# This may be replaced when dependencies are built.
