file(REMOVE_RECURSE
  "CMakeFiles/sensor_fleet_monitoring.dir/examples/sensor_fleet_monitoring.cpp.o"
  "CMakeFiles/sensor_fleet_monitoring.dir/examples/sensor_fleet_monitoring.cpp.o.d"
  "sensor_fleet_monitoring"
  "sensor_fleet_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_fleet_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
