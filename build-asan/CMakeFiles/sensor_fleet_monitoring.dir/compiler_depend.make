# Empty compiler generated dependencies file for sensor_fleet_monitoring.
# This may be replaced when dependencies are built.
