file(REMOVE_RECURSE
  "CMakeFiles/skip_equivalence_test.dir/tests/skip_equivalence_test.cc.o"
  "CMakeFiles/skip_equivalence_test.dir/tests/skip_equivalence_test.cc.o.d"
  "skip_equivalence_test"
  "skip_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skip_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
