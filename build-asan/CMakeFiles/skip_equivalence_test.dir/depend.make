# Empty dependencies file for skip_equivalence_test.
# This may be replaced when dependencies are built.
