file(REMOVE_RECURSE
  "CMakeFiles/skip_sampler_test.dir/tests/skip_sampler_test.cc.o"
  "CMakeFiles/skip_sampler_test.dir/tests/skip_sampler_test.cc.o.d"
  "skip_sampler_test"
  "skip_sampler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skip_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
