# Empty compiler generated dependencies file for skip_sampler_test.
# This may be replaced when dependencies are built.
