file(REMOVE_RECURSE
  "CMakeFiles/stat_acceptance_test.dir/tests/stat_acceptance_test.cc.o"
  "CMakeFiles/stat_acceptance_test.dir/tests/stat_acceptance_test.cc.o.d"
  "stat_acceptance_test"
  "stat_acceptance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stat_acceptance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
