# Empty compiler generated dependencies file for stat_acceptance_test.
# This may be replaced when dependencies are built.
