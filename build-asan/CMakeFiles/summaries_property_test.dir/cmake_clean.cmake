file(REMOVE_RECURSE
  "CMakeFiles/summaries_property_test.dir/tests/summaries_property_test.cc.o"
  "CMakeFiles/summaries_property_test.dir/tests/summaries_property_test.cc.o.d"
  "summaries_property_test"
  "summaries_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summaries_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
