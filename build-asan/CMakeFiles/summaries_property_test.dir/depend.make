# Empty dependencies file for summaries_property_test.
# This may be replaced when dependencies are built.
