file(REMOVE_RECURSE
  "CMakeFiles/table1_count.dir/bench/table1_count.cpp.o"
  "CMakeFiles/table1_count.dir/bench/table1_count.cpp.o.d"
  "table1_count"
  "table1_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
