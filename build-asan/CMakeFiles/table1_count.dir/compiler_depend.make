# Empty compiler generated dependencies file for table1_count.
# This may be replaced when dependencies are built.
