file(REMOVE_RECURSE
  "CMakeFiles/table1_frequency.dir/bench/table1_frequency.cpp.o"
  "CMakeFiles/table1_frequency.dir/bench/table1_frequency.cpp.o.d"
  "table1_frequency"
  "table1_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
