# Empty dependencies file for table1_frequency.
# This may be replaced when dependencies are built.
