file(REMOVE_RECURSE
  "CMakeFiles/table1_rank.dir/bench/table1_rank.cpp.o"
  "CMakeFiles/table1_rank.dir/bench/table1_rank.cpp.o.d"
  "table1_rank"
  "table1_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
