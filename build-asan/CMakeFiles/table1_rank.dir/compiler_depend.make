# Empty compiler generated dependencies file for table1_rank.
# This may be replaced when dependencies are built.
