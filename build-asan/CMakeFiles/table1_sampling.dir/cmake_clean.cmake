file(REMOVE_RECURSE
  "CMakeFiles/table1_sampling.dir/bench/table1_sampling.cpp.o"
  "CMakeFiles/table1_sampling.dir/bench/table1_sampling.cpp.o.d"
  "table1_sampling"
  "table1_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
