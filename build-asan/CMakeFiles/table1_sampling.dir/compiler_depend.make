# Empty compiler generated dependencies file for table1_sampling.
# This may be replaced when dependencies are built.
