// Scenario: stress the trackers with the paper's own lower-bound
// adversaries — the distribution µ of Theorem 2.2 (all mass at one random
// site, or perfectly balanced) and the s = k/2 ± √k subround schedule of
// Theorem 2.4 — then batter the fault-tolerant runtime with seeded fault
// storms (drops, duplicates, reorders, site crashes, coordinator
// restarts) and demand bit-identical convergence to the fault-free run.
//
//   $ ./examples/adversarial_stress              # full stress + 32 storms
//   $ ./examples/adversarial_stress <seed>       # replay one storm seed
//
// On any divergence the program prints the failing FaultPlan seed and
// exits nonzero, so every failure is one command to reproduce.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>

#include "disttrack/core/tracking.h"
#include "disttrack/sim/cluster.h"
#include "disttrack/sim/robust_cluster.h"
#include "disttrack/stream/hard_instances.h"
#include "disttrack/stream/workload.h"

using disttrack::core::Algorithm;
using disttrack::core::TrackerOptions;

namespace {

struct Outcome {
  uint64_t messages = 0;
  double worst_rel = 0;
};

Outcome RunOn(const disttrack::sim::Workload& workload, Algorithm algorithm,
              uint64_t seed) {
  TrackerOptions options;
  options.num_sites = 128;
  options.epsilon = 0.02;
  options.seed = seed;
  std::unique_ptr<disttrack::sim::CountTrackerInterface> tracker;
  if (!disttrack::core::MakeCountTracker(algorithm, options, &tracker).ok()) {
    return Outcome{};
  }
  auto checkpoints = disttrack::sim::ReplayCount(tracker.get(), workload, 1.3);
  Outcome out;
  out.messages = tracker->meter().TotalMessages();
  for (const auto& c : checkpoints) {
    if (c.n < 1000) continue;
    out.worst_rel = std::max(
        out.worst_rel,
        std::fabs(c.estimate - c.truth) / static_cast<double>(c.n));
  }
  return out;
}

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// One fault storm: replays all three trackers under FaultPlan::FromSeed
/// and compares every checkpoint bitwise against the fault-free baseline.
/// Returns false (after printing the reproduction command) on divergence.
bool RunStorm(uint64_t storm_seed, bool verbose) {
  const int k = 6;
  const uint64_t n = 4000;

  struct Leg {
    const char* name;
    std::function<disttrack::sim::RobustReport(
        const disttrack::sim::RobustOptions&)>
        run;
  };

  disttrack::count::RandomizedCountOptions count_opt;
  count_opt.num_sites = k;
  count_opt.epsilon = 0.05;
  count_opt.seed = 101;
  auto count_w = disttrack::stream::MakeCountWorkload(
      k, n, disttrack::stream::SiteSchedule::kUniformRandom, 11);

  disttrack::frequency::RandomizedFrequencyOptions freq_opt;
  freq_opt.num_sites = k;
  freq_opt.epsilon = 0.1;
  freq_opt.seed = 103;
  auto freq_w = disttrack::stream::MakeFrequencyWorkload(
      k, n, disttrack::stream::SiteSchedule::kUniformRandom, 64, 1.1, 13);

  disttrack::rank::RandomizedRankOptions rank_opt;
  rank_opt.num_sites = k;
  rank_opt.epsilon = 0.1;
  rank_opt.seed = 107;
  auto rank_w = disttrack::stream::MakeRankWorkload(
      k, n, disttrack::stream::SiteSchedule::kUniformRandom,
      disttrack::stream::ValueOrder::kUniformRandom, 24, 17);

  const Leg legs[] = {
      {"count",
       [&](const disttrack::sim::RobustOptions& r) {
         return disttrack::sim::RobustReplayCount(count_opt, count_w, r);
       }},
      {"frequency",
       [&](const disttrack::sim::RobustOptions& r) {
         return disttrack::sim::RobustReplayFrequency(freq_opt, freq_w, 2, r);
       }},
      {"rank",
       [&](const disttrack::sim::RobustOptions& r) {
         return disttrack::sim::RobustReplayRank(rank_opt, rank_w, 1ull << 23,
                                                 r);
       }},
  };

  for (const Leg& leg : legs) {
    disttrack::sim::RobustOptions clean;
    auto base = leg.run(clean);
    disttrack::sim::RobustOptions storm;
    storm.plan = disttrack::sim::FaultPlan::FromSeed(storm_seed, n, k);
    auto faulty = leg.run(storm);

    const char* what = nullptr;
    if (!base.ok) what = base.error.c_str();
    if (!what && !faulty.ok) what = faulty.error.c_str();
    if (!what && faulty.checkpoints.size() != base.checkpoints.size()) {
      what = "checkpoint count mismatch";
    }
    if (!what) {
      for (size_t i = 0; i < base.checkpoints.size(); ++i) {
        if (!SameBits(faulty.checkpoints[i].estimate,
                      base.checkpoints[i].estimate) ||
            !SameBits(faulty.checkpoints[i].replica_estimate,
                      faulty.checkpoints[i].estimate)) {
          what = "estimate diverged from the fault-free run";
          break;
        }
      }
    }
    if (!what && faulty.paper_words != base.paper_words) {
      what = "paper-model word count changed under faults";
    }
    if (what) {
      std::printf(
          "FAIL %-9s storm seed %llu: %s\n"
          "  reproduce with: ./examples/adversarial_stress %llu\n",
          leg.name, static_cast<unsigned long long>(storm_seed), what,
          static_cast<unsigned long long>(storm_seed));
      return false;
    }
    if (verbose) {
      std::printf(
          "  %-9s seed %-6llu ok  (delivered %llu, deduped %llu, "
          "retransmits %llu, crashes %llu, restarts %llu)\n",
          leg.name, static_cast<unsigned long long>(storm_seed),
          static_cast<unsigned long long>(faulty.frames_delivered),
          static_cast<unsigned long long>(faulty.frames_deduped),
          static_cast<unsigned long long>(faulty.retransmissions),
          static_cast<unsigned long long>(faulty.site_recoveries),
          static_cast<unsigned long long>(faulty.coordinator_restarts));
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    // Reproduction mode: one storm seed, verbose.
    uint64_t seed = std::strtoull(argv[1], nullptr, 10);
    std::printf("Replaying fault storm seed %llu\n",
                static_cast<unsigned long long>(seed));
    return RunStorm(seed, /*verbose=*/true) ? 0 : 1;
  }

  const int kSites = 128;
  std::printf("Adversarial stress (k = %d, eps = 0.02)\n\n", kSites);

  std::printf("-- Theorem 2.2 distribution mu --\n");
  std::printf("%-10s %-16s %12s %12s\n", "case", "algorithm", "messages",
              "worst err/n");
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    auto mu = disttrack::stream::MakeMuInstance(kSites, 1u << 18, seed);
    const char* label = mu.single_site_case ? "single" : "balanced";
    for (auto algorithm :
         {Algorithm::kDeterministic, Algorithm::kRandomized}) {
      auto out = RunOn(mu.workload, algorithm, 33 + seed);
      std::printf("%-10s %-16s %12llu %12.4f\n", label,
                  disttrack::core::AlgorithmName(algorithm).c_str(),
                  static_cast<unsigned long long>(out.messages),
                  out.worst_rel);
    }
  }

  std::printf("\n-- Theorem 2.4 subround schedule (s = k/2 +- sqrt k) --\n");
  auto hard = disttrack::stream::MakeTheorem24Workload(kSites, 0.02, 12, 5);
  std::printf("(%llu elements over %llu rounds x %llu subrounds)\n",
              static_cast<unsigned long long>(hard.workload.size()),
              static_cast<unsigned long long>(hard.rounds),
              static_cast<unsigned long long>(hard.subrounds_per_round));
  std::printf("%-16s %12s %12s\n", "algorithm", "messages", "worst err/n");
  for (auto algorithm : {Algorithm::kDeterministic, Algorithm::kRandomized}) {
    auto out = RunOn(hard.workload, algorithm, 77);
    std::printf("%-16s %12llu %12.4f\n",
                disttrack::core::AlgorithmName(algorithm).c_str(),
                static_cast<unsigned long long>(out.messages),
                out.worst_rel);
  }

  std::printf("\nBoth protocols hold the 2%% error bound on every "
              "adversary. On the balanced cases the randomized protocol's "
              "sqrt(k) message advantage survives the adversary; on the "
              "all-at-one-site draw the one-way protocol is cheap for that "
              "single instance, but mu as a *distribution* is exactly what "
              "forces every one-way protocol to pay Omega(k/eps logN) in "
              "expectation (Theorem 2.2) — it cannot know in advance which "
              "case it is in. Theorem 2.4's schedule shows no correct "
              "protocol, however clever, beats Omega(sqrt(k)/eps logN).\n");

  std::printf("\n-- Fault storms (robust runtime, k = 6) --\n");
  const uint64_t kStorms = 32;
  for (uint64_t seed = 1; seed <= kStorms; ++seed) {
    if (!RunStorm(seed, /*verbose=*/false)) return 1;
  }
  std::printf(
      "%llu seeded storms (drops, duplicates, reorders, site crashes, "
      "coordinator restarts): every run bit-identical to the fault-free "
      "baseline for count, frequency, and rank.\n",
      static_cast<unsigned long long>(kStorms));
  return 0;
}
