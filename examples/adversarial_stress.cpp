// Scenario: stress the trackers with the paper's own lower-bound
// adversaries — the distribution µ of Theorem 2.2 (all mass at one random
// site, or perfectly balanced) and the s = k/2 ± √k subround schedule of
// Theorem 2.4. A protocol tuned for "typical" traffic can silently blow
// its communication budget or its error bound on exactly these inputs;
// this example shows the paper's protocols hold both.
//
//   $ ./examples/adversarial_stress

#include <cmath>
#include <cstdio>
#include <memory>

#include "disttrack/core/tracking.h"
#include "disttrack/sim/cluster.h"
#include "disttrack/stream/hard_instances.h"

using disttrack::core::Algorithm;
using disttrack::core::TrackerOptions;

namespace {

struct Outcome {
  uint64_t messages = 0;
  double worst_rel = 0;
};

Outcome RunOn(const disttrack::sim::Workload& workload, Algorithm algorithm,
              uint64_t seed) {
  TrackerOptions options;
  options.num_sites = 128;
  options.epsilon = 0.02;
  options.seed = seed;
  std::unique_ptr<disttrack::sim::CountTrackerInterface> tracker;
  if (!disttrack::core::MakeCountTracker(algorithm, options, &tracker).ok()) {
    return Outcome{};
  }
  auto checkpoints = disttrack::sim::ReplayCount(tracker.get(), workload, 1.3);
  Outcome out;
  out.messages = tracker->meter().TotalMessages();
  for (const auto& c : checkpoints) {
    if (c.n < 1000) continue;
    out.worst_rel = std::max(
        out.worst_rel,
        std::fabs(c.estimate - c.truth) / static_cast<double>(c.n));
  }
  return out;
}

}  // namespace

int main() {
  const int kSites = 128;
  std::printf("Adversarial stress (k = %d, eps = 0.02)\n\n", kSites);

  std::printf("-- Theorem 2.2 distribution mu --\n");
  std::printf("%-10s %-16s %12s %12s\n", "case", "algorithm", "messages",
              "worst err/n");
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    auto mu = disttrack::stream::MakeMuInstance(kSites, 1u << 18, seed);
    const char* label = mu.single_site_case ? "single" : "balanced";
    for (auto algorithm :
         {Algorithm::kDeterministic, Algorithm::kRandomized}) {
      auto out = RunOn(mu.workload, algorithm, 33 + seed);
      std::printf("%-10s %-16s %12llu %12.4f\n", label,
                  disttrack::core::AlgorithmName(algorithm).c_str(),
                  static_cast<unsigned long long>(out.messages),
                  out.worst_rel);
    }
  }

  std::printf("\n-- Theorem 2.4 subround schedule (s = k/2 +- sqrt k) --\n");
  auto hard = disttrack::stream::MakeTheorem24Workload(kSites, 0.02, 12, 5);
  std::printf("(%llu elements over %llu rounds x %llu subrounds)\n",
              static_cast<unsigned long long>(hard.workload.size()),
              static_cast<unsigned long long>(hard.rounds),
              static_cast<unsigned long long>(hard.subrounds_per_round));
  std::printf("%-16s %12s %12s\n", "algorithm", "messages", "worst err/n");
  for (auto algorithm : {Algorithm::kDeterministic, Algorithm::kRandomized}) {
    auto out = RunOn(hard.workload, algorithm, 77);
    std::printf("%-16s %12llu %12.4f\n",
                disttrack::core::AlgorithmName(algorithm).c_str(),
                static_cast<unsigned long long>(out.messages),
                out.worst_rel);
  }

  std::printf("\nBoth protocols hold the 2%% error bound on every "
              "adversary. On the balanced cases the randomized protocol's "
              "sqrt(k) message advantage survives the adversary; on the "
              "all-at-one-site draw the one-way protocol is cheap for that "
              "single instance, but mu as a *distribution* is exactly what "
              "forces every one-way protocol to pay Omega(k/eps logN) in "
              "expectation (Theorem 2.2) — it cannot know in advance which "
              "case it is in. Theorem 2.4's schedule shows no correct "
              "protocol, however clever, beats Omega(sqrt(k)/eps logN).\n");
  return 0;
}
