// Quickstart: track a distributed count across 64 simulated sites with the
// paper's randomized protocol, and compare against the trivial
// deterministic protocol on the same stream.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <memory>

#include "disttrack/core/tracking.h"
#include "disttrack/stream/workload.h"

using disttrack::core::Algorithm;
using disttrack::core::MakeCountTracker;
using disttrack::core::TrackerOptions;

int main() {
  // 1. Configure: 64 sites, 1% error, seeded for reproducibility.
  TrackerOptions options;
  options.num_sites = 64;
  options.epsilon = 0.01;
  options.seed = 2012;

  // 2. Build one tracker per algorithm through the factory.
  std::unique_ptr<disttrack::sim::CountTrackerInterface> randomized;
  std::unique_ptr<disttrack::sim::CountTrackerInterface> deterministic;
  if (auto s = MakeCountTracker(Algorithm::kRandomized, options, &randomized);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (auto s =
          MakeCountTracker(Algorithm::kDeterministic, options, &deterministic);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // 3. Stream: 2M elements arriving at uniformly random sites.
  auto workload = disttrack::stream::MakeCountWorkload(
      options.num_sites, 1u << 21,
      disttrack::stream::SiteSchedule::kUniformRandom, /*seed=*/42);
  for (const auto& arrival : workload) {
    randomized->Arrive(arrival.site);
    deterministic->Arrive(arrival.site);
  }

  // 4. Query the coordinator at any time; inspect the communication bill.
  std::printf("true count          : %llu\n",
              static_cast<unsigned long long>(randomized->TrueCount()));
  std::printf("randomized estimate : %.0f   (%llu messages, %llu words)\n",
              randomized->EstimateCount(),
              static_cast<unsigned long long>(
                  randomized->meter().TotalMessages()),
              static_cast<unsigned long long>(
                  randomized->meter().TotalWords()));
  std::printf("deterministic est.  : %.0f   (%llu messages, %llu words)\n",
              deterministic->EstimateCount(),
              static_cast<unsigned long long>(
                  deterministic->meter().TotalMessages()),
              static_cast<unsigned long long>(
                  deterministic->meter().TotalWords()));
  std::printf("message savings     : %.1fx\n",
              static_cast<double>(deterministic->meter().TotalMessages()) /
                  static_cast<double>(randomized->meter().TotalMessages()));
  return 0;
}
