// Scenario: a fleet of 64 battery-powered sensors reports event codes to a
// base station; radio messages are the dominant energy cost (the wireless
// sensor-network motivation of §1.1/§1.2). The base station must know, at
// all times, (a) the total number of events and (b) the frequency of every
// event code within 2% of the event total — without drowning the radio.
//
// We run the paper's randomized count and frequency trackers side by side
// with the deterministic comparators, on a bursty Zipf workload, and print
// the all-times accuracy plus the per-sensor radio bill.
//
//   $ ./examples/sensor_fleet_monitoring

#include <cmath>
#include <cstdio>
#include <memory>
#include <unordered_map>

#include "disttrack/core/tracking.h"
#include "disttrack/stream/workload.h"

using disttrack::core::Algorithm;
using disttrack::core::TrackerOptions;

int main() {
  const int kSensors = 64;
  const double kEps = 0.02;
  const uint64_t kEvents = 1u << 19;

  TrackerOptions options;
  options.num_sites = kSensors;
  options.epsilon = kEps;
  options.seed = 7;

  std::unique_ptr<disttrack::sim::FrequencyTrackerInterface> randomized;
  std::unique_ptr<disttrack::sim::FrequencyTrackerInterface> deterministic;
  if (!disttrack::core::MakeFrequencyTracker(Algorithm::kRandomized, options,
                                             &randomized)
           .ok() ||
      !disttrack::core::MakeFrequencyTracker(Algorithm::kDeterministic,
                                             options, &deterministic)
           .ok()) {
    std::fprintf(stderr, "tracker construction failed\n");
    return 1;
  }

  // Bursty arrivals (sensors wake in phases), Zipf(1.3) event codes.
  auto workload = disttrack::stream::MakeFrequencyWorkload(
      kSensors, kEvents, disttrack::stream::SiteSchedule::kBursty,
      /*universe=*/4096, /*zipf_alpha=*/1.3, /*seed=*/99);

  std::unordered_map<uint64_t, uint64_t> truth;
  uint64_t n = 0;
  double worst_rand = 0, worst_det = 0;
  for (const auto& a : workload) {
    randomized->Arrive(a.site, a.key);
    deterministic->Arrive(a.site, a.key);
    ++truth[a.key];
    ++n;
    if (n % 65536 == 0) {  // periodic dashboard refresh
      for (uint64_t code : {0ull, 1ull, 7ull}) {
        double t = static_cast<double>(truth[code]);
        worst_rand = std::max(
            worst_rand, std::fabs(randomized->EstimateFrequency(code) - t) /
                            static_cast<double>(n));
        worst_det = std::max(
            worst_det, std::fabs(deterministic->EstimateFrequency(code) - t) /
                           static_cast<double>(n));
      }
    }
  }

  std::printf("sensors=%d  events=%llu  eps=%.3f  (bursty Zipf(1.3))\n\n",
              kSensors, static_cast<unsigned long long>(n), kEps);
  std::printf("%-22s %14s %14s %16s %12s\n", "tracker", "messages", "words",
              "peak words/site", "worst err/n");
  std::printf("%-22s %14llu %14llu %16llu %12.4f\n", "randomized (paper)",
              static_cast<unsigned long long>(
                  randomized->meter().TotalMessages()),
              static_cast<unsigned long long>(randomized->meter().TotalWords()),
              static_cast<unsigned long long>(randomized->space().MaxPeak()),
              worst_rand);
  std::printf("%-22s %14llu %14llu %16llu %12.4f\n", "deterministic [29]",
              static_cast<unsigned long long>(
                  deterministic->meter().TotalMessages()),
              static_cast<unsigned long long>(
                  deterministic->meter().TotalWords()),
              static_cast<unsigned long long>(
                  deterministic->space().MaxPeak()),
              worst_det);

  std::printf("\nTop event codes (randomized tracker vs truth):\n");
  for (uint64_t code : {0ull, 1ull, 2ull, 3ull}) {
    std::printf("  code %llu : estimate %8.0f   true %8llu\n",
                static_cast<unsigned long long>(code),
                randomized->EstimateFrequency(code),
                static_cast<unsigned long long>(truth[code]));
  }
  std::printf("\nBoth meet the 2%% contract; the randomized tracker does it "
              "with fewer radio messages, ~2x fewer words on the air, and "
              "~8x less RAM per sensor — and the gaps widen as sqrt(k) "
              "with fleet size (Table 1).\n");
  return 0;
}
