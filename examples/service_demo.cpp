// End-to-end demo of the multi-process service: spawns the real
// disttrack_coordinator daemon plus k real disttrack_site processes over
// a unix-domain socket, waits for the fleet to stream the synthetic
// workload, then audits the run from a query client:
//
//   * rebuilds the effective serial order from the coordinator's grant
//     journal, replays it through an in-process serial tracker, and
//     demands the estimates match bit for bit (lockstep mode — tier A;
//     freerun settles for the paper's ε guarantee),
//   * reconciles the coordinator's §1.1 paper ledger against the serial
//     tracker's CommMeter to the message and to the word,
//   * checks the coordinator's internal wire-byte ledger: socket bytes
//     in/out must equal the sum of encoded frame sizes exactly.
//
//   $ ./examples/service_demo                          # count, k=64
//   $ ./examples/service_demo --tracker=frequency --sites=16
//   $ ./examples/service_demo --kill=3:777             # crash + recover
//
// --kill=SITE:AFTER hard-kills that site (exit 7) after AFTER arrivals
// in-process and relaunches it; recovery must go through the snapshot +
// journal catch-up path with no double counting (the audits above still
// have to pass, and the stats must show duplicates and a rejoin).

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "disttrack/count/randomized_count.h"
#include "disttrack/frequency/randomized_frequency.h"
#include "disttrack/rank/randomized_rank.h"
#include "disttrack/service/coordinator.h"
#include "disttrack/service/framing.h"
#include "disttrack/service/options.h"
#include "disttrack/service/socket.h"
#include "disttrack/sim/wire.h"

using disttrack::service::Endpoint;
using disttrack::service::FrameReader;
using disttrack::service::ServiceOptions;
using disttrack::service::TrackerKind;
using disttrack::sim::wire::Message;
using disttrack::sim::wire::MsgType;

namespace {

// kQueryStats vector layout (coordinator.cc, documented in
// docs/WIRE_PROTOCOL.md).
enum StatsIndex {
  kStatSitesDone = 0,
  kStatBytesIn = 4,
  kStatBytesOut = 5,
  kStatEncodedIn = 6,
  kStatEncodedOut = 7,
  kStatDupFrames = 11,
  kStatPaperMessages = 12,
  kStatPaperWords = 13,
  kStatBroadcasts = 14,
  kStatRejoins = 15,
  kStatLedgerOk = 17,
};

uint64_t Bits(double d) {
  uint64_t bits = 0;
  memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double FromBits(uint64_t bits) {
  double d = 0;
  memcpy(&d, &bits, sizeof(d));
  return d;
}

[[noreturn]] void Die(const std::string& what) {
  fprintf(stderr, "service_demo: FAIL: %s\n", what.c_str());
  exit(1);
}

void Check(bool ok, const std::string& what) {
  if (!ok) Die(what);
}

std::vector<std::string> FleetArgs(const ServiceOptions& options) {
  char eps[64];
  snprintf(eps, sizeof(eps), "--epsilon=%.17g", options.epsilon);
  return {
      std::string("--tracker=") + TrackerKindName(options.tracker),
      std::string("--mode=") + RunModeName(options.mode),
      "--sites=" + std::to_string(options.num_sites),
      eps,
      "--seed=" + std::to_string(options.seed),
      "--n=" + std::to_string(options.total_arrivals),
      "--universe=" + std::to_string(options.universe),
      "--grant=" + std::to_string(options.grant_max),
      "--snapshot-every=" + std::to_string(options.snapshot_every),
  };
}

pid_t Spawn(const std::string& binary, const std::vector<std::string>& args) {
  pid_t pid = fork();
  if (pid < 0) Die("fork failed");
  if (pid == 0) {
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(binary.c_str()));
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    execv(binary.c_str(), argv.data());
    fprintf(stderr, "service_demo: exec %s: %s\n", binary.c_str(),
            strerror(errno));
    _exit(127);
  }
  return pid;
}

/// Blocking query client on one connection to the coordinator.
class Client {
 public:
  explicit Client(int fd) : fd_(fd) {}
  ~Client() { close(fd_); }

  Message Ask(uint64_t kind, uint64_t b = 0) {
    Message query;
    query.type = MsgType::kQuery;
    query.a = kind;
    query.b = b;
    Send(query);
    for (;;) {
      Message msg;
      if (!Read(&msg)) Die("coordinator connection died mid-query");
      if (msg.type == MsgType::kQueryResult && msg.a == kind) return msg;
    }
  }

  void Send(const Message& msg) {
    std::vector<uint8_t> frame;
    disttrack::sim::wire::EncodeFrame(msg, 0, &frame);
    if (!disttrack::service::WriteAll(fd_, frame.data(), frame.size())) {
      Die("write to coordinator failed");
    }
  }

 private:
  bool Read(Message* msg) {
    uint8_t buf[65536];
    uint64_t seq = 0;
    for (;;) {
      switch (reader_.Next(msg, &seq)) {
        case FrameReader::Result::kFrame:
          return true;
        case FrameReader::Result::kError:
          return false;
        case FrameReader::Result::kNeed:
          break;
      }
      long n = disttrack::service::ReadSome(fd_, buf, sizeof(buf));
      if (n <= 0) return false;
      reader_.Append(buf, static_cast<size_t>(n));
    }
  }

  int fd_;
  FrameReader reader_;
};

struct SerialRun {
  std::unique_ptr<disttrack::count::RandomizedCountTracker> count;
  std::unique_ptr<disttrack::frequency::RandomizedFrequencyTracker> frequency;
  std::unique_ptr<disttrack::rank::RandomizedRankTracker> rank;

  const disttrack::sim::CommMeter& meter() const {
    if (count) return count->meter();
    if (frequency) return frequency->meter();
    return rank->meter();
  }
};

/// Replays the coordinator's grant journal through a serial tracker: the
/// journal IS the effective global arrival order in lockstep mode.
SerialRun ReplayJournal(const ServiceOptions& options,
                        const std::vector<uint64_t>& journal_pairs) {
  SerialRun run;
  switch (options.tracker) {
    case TrackerKind::kCount:
      run.count = std::make_unique<disttrack::count::RandomizedCountTracker>(
          options.CountOptions());
      break;
    case TrackerKind::kFrequency:
      run.frequency =
          std::make_unique<disttrack::frequency::RandomizedFrequencyTracker>(
              options.FrequencyOptions());
      break;
    case TrackerKind::kRank:
      run.rank = std::make_unique<disttrack::rank::RandomizedRankTracker>(
          options.RankOptions());
      break;
  }
  std::vector<uint64_t> position(static_cast<size_t>(options.num_sites), 0);
  for (size_t i = 0; i + 1 < journal_pairs.size(); i += 2) {
    int site = static_cast<int>(journal_pairs[i]);
    uint64_t length = journal_pairs[i + 1];
    for (uint64_t j = 0; j < length; ++j) {
      uint64_t key = WorkloadKey(options, site, position[site]++);
      if (run.count) run.count->Arrive(site);
      if (run.frequency) run.frequency->Arrive(site, key);
      if (run.rank) run.rank->Arrive(site, key);
    }
  }
  uint64_t replayed = 0;
  for (uint64_t p : position) replayed += p;
  Check(replayed == options.total_arrivals,
        "grant journal covers " + std::to_string(replayed) + " arrivals, want " +
            std::to_string(options.total_arrivals));
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  ServiceOptions options;
  options.num_sites = 64;
  options.total_arrivals = 200000;
  int kill_site = -1;
  uint64_t kill_after = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string error;
    if (arg.rfind("--kill=", 0) == 0) {
      if (sscanf(arg.c_str() + 7, "%d:%llu", &kill_site,
                 reinterpret_cast<unsigned long long*>(&kill_after)) != 2) {
        Die("--kill wants SITE:AFTER");
      }
      continue;
    }
    if (options.ParseFlag(arg, &error)) continue;
    Die(error.empty() ? "unknown flag: " + arg : error);
  }
  if (kill_site >= 0 && options.snapshot_every == 0) {
    options.snapshot_every = 512;  // recovery needs a snapshot to resume
  }

  // The daemon binaries live next to this one.
  std::string self = argv[0];
  size_t slash = self.rfind('/');
  std::string bindir = slash == std::string::npos ? "." : self.substr(0, slash);
  std::string coordinator_bin = bindir + "/disttrack_coordinator";
  std::string site_bin = bindir + "/disttrack_site";

  char tmpl[] = "/tmp/disttrack_demo_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  if (dir == nullptr) Die("mkdtemp failed");
  std::string sock = std::string(dir) + "/coordinator.sock";
  std::string endpoint = "unix:" + sock;

  std::vector<std::string> fleet = FleetArgs(options);
  std::vector<std::string> coord_args = fleet;
  coord_args.push_back("--listen=" + endpoint);
  pid_t coordinator_pid = Spawn(coordinator_bin, coord_args);

  auto site_args = [&](int site, bool with_crash) {
    std::vector<std::string> args = fleet;
    args.push_back("--connect=" + endpoint);
    args.push_back("--site=" + std::to_string(site));
    args.push_back("--snapshot-dir=" + std::string(dir));
    if (with_crash) {
      args.push_back("--crash-after=" + std::to_string(kill_after));
    }
    return args;
  };
  std::vector<pid_t> site_pids;
  for (int site = 0; site < options.num_sites; ++site) {
    site_pids.push_back(
        Spawn(site_bin, site_args(site, site == kill_site)));
  }

  Endpoint ep;
  std::string error;
  if (!Endpoint::Parse(endpoint, &ep, &error)) Die(error);
  int client_fd = disttrack::service::Dial(ep, 15000, &error);
  if (client_fd < 0) Die(error);
  Client client(client_fd);

  // Stream phase: poll progress, relaunching the killed site when it
  // goes down (exit code 7 is the deterministic --crash-after crash).
  bool crashed_once = false;
  uint64_t sites_done = 0;
  for (int tick = 0; tick < 3000; ++tick) {
    if (kill_site >= 0 && !crashed_once) {
      int status = 0;
      pid_t r = waitpid(site_pids[kill_site], &status, WNOHANG);
      if (r == site_pids[kill_site]) {
        Check(WIFEXITED(status) && WEXITSTATUS(status) == 7,
              "killed site exited abnormally");
        crashed_once = true;
        fprintf(stderr, "service_demo: site %d crashed, relaunching\n",
                kill_site);
        site_pids[kill_site] = Spawn(site_bin, site_args(kill_site, false));
      }
    }
    Message stats = client.Ask(disttrack::service::kQueryStats);
    sites_done = stats.values[kStatSitesDone];
    if (sites_done == static_cast<uint64_t>(options.num_sites)) break;
    usleep(100 * 1000);
  }
  Check(sites_done == static_cast<uint64_t>(options.num_sites),
        "fleet did not finish within the deadline");
  Check(kill_site < 0 || crashed_once, "--kill site never crashed");

  // Audit phase.
  Message stats = client.Ask(disttrack::service::kQueryStats);
  Message journal = client.Ask(disttrack::service::kQueryJournal);
  SerialRun serial = ReplayJournal(options, journal.values);
  const disttrack::sim::CommMeter& meter = serial.meter();

  Check(stats.values[kStatLedgerOk] == 1,
        "socket-byte ledger does not reconcile with encoded frame sizes");
  bool lockstep = options.mode == disttrack::service::RunMode::kLockstep;
  if (lockstep) {
    Check(stats.values[kStatPaperMessages] == meter.TotalMessages(),
          "paper messages: coordinator " +
              std::to_string(stats.values[kStatPaperMessages]) + " vs serial " +
              std::to_string(meter.TotalMessages()));
    Check(stats.values[kStatPaperWords] == meter.TotalWords(),
          "paper words: coordinator " +
              std::to_string(stats.values[kStatPaperWords]) + " vs serial " +
              std::to_string(meter.TotalWords()));
    Check(stats.values[kStatBroadcasts] == meter.broadcast_count(),
          "broadcast count mismatch");
  }
  if (kill_site >= 0) {
    Check(stats.values[kStatRejoins] >= 1, "no rejoin recorded after crash");
    Check(stats.values[kStatDupFrames] >= 1,
          "recovery replay produced no deduplicated frames");
  }

  // Estimates: bit-identical to the journal-order serial run (tier A).
  switch (options.tracker) {
    case TrackerKind::kCount: {
      Message result = client.Ask(disttrack::service::kQueryCount);
      double serial_est = serial.count->EstimateCount();
      if (lockstep) {
        Check(result.values[0] == Bits(serial_est),
              "count estimate is not bit-identical to the serial replay");
      }
      printf("count estimate %.1f (serial %.1f), n' = %llu\n",
             FromBits(result.values[0]), serial_est,
             static_cast<unsigned long long>(result.values[1]));
      break;
    }
    case TrackerKind::kFrequency: {
      for (uint64_t item = 0; item < 16; ++item) {
        Message result = client.Ask(disttrack::service::kQueryPoint, item);
        if (lockstep) {
          Check(result.values[0] ==
                    Bits(serial.frequency->EstimateFrequency(item)),
                "frequency estimate of hot item " + std::to_string(item) +
                    " is not bit-identical to the serial replay");
        }
      }
      Message hh =
          client.Ask(disttrack::service::kQueryHeavyHitters, Bits(0.01));
      printf("%llu heavy hitters above phi = 0.01\n",
             static_cast<unsigned long long>(hh.values.size() / 2));
      Check(hh.values.size() >= 2, "skewed stream produced no heavy hitters");
      break;
    }
    case TrackerKind::kRank: {
      for (int i = 1; i <= 8; ++i) {
        uint64_t value = options.universe / 9 * static_cast<uint64_t>(i);
        Message result = client.Ask(disttrack::service::kQueryRank, value);
        if (lockstep) {
          Check(result.values[0] == Bits(serial.rank->EstimateRank(value)),
                "rank estimate at " + std::to_string(value) +
                    " is not bit-identical to the serial replay");
        }
      }
      Message median =
          client.Ask(disttrack::service::kQueryQuantile, Bits(0.5));
      printf("median ~ %llu\n",
             static_cast<unsigned long long>(median.values[0]));
      break;
    }
  }

  // Orderly shutdown: coordinator fans kShutdown to the sites, everyone
  // exits 0.
  Message bye;
  bye.type = MsgType::kShutdown;
  client.Send(bye);
  for (int site = 0; site < options.num_sites; ++site) {
    int status = 0;
    waitpid(site_pids[site], &status, 0);
    Check(WIFEXITED(status) && WEXITSTATUS(status) == 0,
          "site " + std::to_string(site) + " exited abnormally");
  }
  int status = 0;
  waitpid(coordinator_pid, &status, 0);
  Check(WIFEXITED(status) && WEXITSTATUS(status) == 0,
        "coordinator exited abnormally");

  printf(
      "service_demo OK: %s %s, k=%d, n=%llu | paper %llu msgs / %llu words%s "
      "| wire %llu B in, %llu B out, %llu dup frames, %llu rejoins\n",
      TrackerKindName(options.tracker), RunModeName(options.mode),
      options.num_sites,
      static_cast<unsigned long long>(options.total_arrivals),
      static_cast<unsigned long long>(stats.values[kStatPaperMessages]),
      static_cast<unsigned long long>(stats.values[kStatPaperWords]),
      lockstep ? " (serial meter matches)" : "",
      static_cast<unsigned long long>(stats.values[kStatBytesIn]),
      static_cast<unsigned long long>(stats.values[kStatBytesOut]),
      static_cast<unsigned long long>(stats.values[kStatDupFrames]),
      static_cast<unsigned long long>(stats.values[kStatRejoins]));
  return 0;
}
