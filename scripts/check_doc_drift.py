#!/usr/bin/env python3
"""Doc-drift guard: fail CI when the normative docs fall behind the code.

Three cross-checks, all exact:

1. docs/WIRE_PROTOCOL.md's message-type table vs the MsgType enum in
   src/disttrack/sim/wire.h — same names, same values, nothing missing
   on either side; plus the doc's stated "Current version: N" vs
   wire::kVersion.

2. README.md's delivery-paths table vs bench/bench_throughput.cpp —
   every path row the README documents must still be a row name the
   bench emits, and every row-name family the bench emits must still be
   documented. (Thread-scaling rows are families: the bench emits
   cluster_t<N>/online_t<N>, the README writes cluster_t⟨N⟩.)

3. docs/OPERATIONS.md's exit-code table vs the service binaries — the
   set of `return N;` / `_exit(N)` codes in the coordinator main +
   Coordinator::RunUntilShutdown, and the site main +
   SiteRuntime::Run, must equal the documented (code, binary) rows
   ("both" rows must be reachable from both binaries).

No dependencies beyond the standard library; run from anywhere:

    python3 scripts/check_doc_drift.py

Also runs as part of `python3 scripts/check_invariants.py --all`.
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
WIRE_H = ROOT / "src" / "disttrack" / "sim" / "wire.h"
WIRE_DOC = ROOT / "docs" / "WIRE_PROTOCOL.md"
README = ROOT / "README.md"
BENCH = ROOT / "bench" / "bench_throughput.cpp"
OPERATIONS = ROOT / "docs" / "OPERATIONS.md"
# Exit codes flow from two layers per binary: the flag-parsing main and
# the runtime loop it tail-returns.
COORDINATOR_SOURCES = (
    ROOT / "service" / "disttrack_coordinator.cpp",
    ROOT / "src" / "disttrack" / "service" / "coordinator.cc",
)
SITE_SOURCES = (
    ROOT / "service" / "disttrack_site.cpp",
    ROOT / "src" / "disttrack" / "service" / "site_runtime.cc",
)

errors = []


def fail(msg):
    errors.append(msg)


def parse_enum_msg_types(text):
    """MsgType enum entries as {name: value} from the wire.h source."""
    m = re.search(r"enum class MsgType[^{]*\{(.*?)\};", text, re.S)
    if not m:
        fail(f"{WIRE_H}: could not find 'enum class MsgType'")
        return {}
    entries = {}
    for name, value in re.findall(r"\b(k\w+)\s*=\s*(\d+)", m.group(1)):
        entries[name] = int(value)
    if not entries:
        fail(f"{WIRE_H}: MsgType enum parsed to zero entries")
    return entries


def parse_doc_msg_types(text):
    """Type-table rows as {name: value} from WIRE_PROTOCOL.md.

    Rows look like: | 12 | `kJoin` | site → coord | ... |
    """
    entries = {}
    for value, name in re.findall(r"^\|\s*(\d+)\s*\|\s*`(k\w+)`", text, re.M):
        entries[name] = int(value)
    if not entries:
        fail(f"{WIRE_DOC}: message-type table parsed to zero rows")
    return entries


def check_wire_protocol():
    src = WIRE_H.read_text(encoding="utf-8")
    doc = WIRE_DOC.read_text(encoding="utf-8")

    code = parse_enum_msg_types(src)
    documented = parse_doc_msg_types(doc)
    for name, value in sorted(code.items(), key=lambda kv: kv[1]):
        if name not in documented:
            fail(f"{WIRE_DOC}: wire.h type {name} = {value} is undocumented")
        elif documented[name] != value:
            fail(
                f"{WIRE_DOC}: {name} documented as {documented[name]}, "
                f"wire.h says {value}"
            )
    for name, value in sorted(documented.items(), key=lambda kv: kv[1]):
        if name not in code:
            fail(
                f"{WIRE_DOC}: documents type {name} = {value}, "
                f"which wire.h does not define"
            )

    m = re.search(r"constexpr uint16_t kVersion = (\d+);", src)
    n = re.search(r"\*\*Current version: (\d+)\.\*\*", doc)
    if not m:
        fail(f"{WIRE_H}: could not find kVersion")
    if not n:
        fail(f"{WIRE_DOC}: could not find '**Current version: N.**' line")
    if m and n and m.group(1) != n.group(1):
        fail(
            f"{WIRE_DOC}: states version {n.group(1)}, "
            f"wire.h kVersion is {m.group(1)}"
        )


def parse_readme_delivery_paths(text):
    """First-column path names of the README '### Delivery paths' table."""
    m = re.search(r"### Delivery paths(.*?)\n## ", text, re.S)
    if not m:
        fail(f"{README}: could not find the '### Delivery paths' section")
        return []
    names = re.findall(r"^\|\s*`([^`]+)`\s*\|", m.group(1), re.M)
    if not names:
        fail(f"{README}: delivery-paths table parsed to zero rows")
    return names


def normalize_family(name):
    """cluster_t⟨N⟩ / cluster_t<N> / cluster_t4 -> ('cluster_t', True)."""
    m = re.match(r"^([a-z_]+_t)(?:\d+|⟨N⟩|<N>)$", name)
    if m:
        return m.group(1), True
    return name, False


def parse_bench_row_families(text):
    """Row-name families the bench emits: exact literals assigned to the
    BenchEntry path field, plus '<prefix>_t' families built with
    std::to_string(threads)."""
    families = set()
    # Exact row names: struct-literal path tables like
    # CountPath{"skip_batched", ...} and the direct Record("...") names.
    for name in re.findall(r'(?:Count|Freq|Rank)Path\{"([a-z_]+)"', text):
        families.add(name)
    # Thread families: "cluster_t" + std::to_string(threads)
    for prefix in re.findall(
        r'"([a-z_]+_t)"\s*\+\s*std::to_string\(threads\)', text
    ):
        families.add(prefix)
    if not families:
        fail(f"{BENCH}: parsed zero bench row-name families")
    return families


def check_delivery_paths():
    readme = README.read_text(encoding="utf-8")
    bench = BENCH.read_text(encoding="utf-8")

    documented = parse_readme_delivery_paths(readme)
    emitted = parse_bench_row_families(bench)

    documented_families = set()
    for name in documented:
        family, is_family = normalize_family(name)
        documented_families.add(family)
        if family not in emitted:
            kind = "family" if is_family else "row"
            fail(
                f"{README}: delivery-paths table documents {kind} `{name}`, "
                f"but bench_throughput.cpp emits no such row name"
            )
    for family in sorted(emitted):
        if family not in documented_families:
            fail(
                f"{README}: bench_throughput.cpp emits row family "
                f"'{family}', missing from the delivery-paths table"
            )


def source_exit_codes(paths):
    """All numeric `return N;` / `_exit(N)` codes across `paths`.

    In the four service sources every numeric return IS a process exit
    code (the mains tail-return the runtime loops, and the library
    files' only numeric returns are the loop results) — a property the
    check itself enforces in the cheapest way possible: a stray numeric
    return in a helper would show up as an undocumented code.
    """
    codes = set()
    for path in paths:
        text = path.read_text(encoding="utf-8")
        for code in re.findall(r"\breturn (\d+);", text):
            codes.add(int(code))
        for code in re.findall(r"\b_exit\((\d+)\)", text):
            codes.add(int(code))
    return codes


def parse_doc_exit_codes(text):
    """(code, binary) rows of the OPERATIONS.md exit-code table."""
    m = re.search(r"## Exit codes(.*?)\n## ", text, re.S)
    if not m:
        fail(f"{OPERATIONS}: could not find the '## Exit codes' section")
        return []
    rows = [(int(code), binary) for code, binary in
            re.findall(r"^\|\s*(\d+)\s*\|\s*(both|site|coordinator)\s*\|",
                       m.group(1), re.M)]
    if not rows:
        fail(f"{OPERATIONS}: exit-code table parsed to zero rows")
    return rows


def check_exit_codes():
    doc = OPERATIONS.read_text(encoding="utf-8")
    rows = parse_doc_exit_codes(doc)
    actual = {
        "coordinator": source_exit_codes(COORDINATOR_SOURCES),
        "site": source_exit_codes(SITE_SOURCES),
    }
    documented = {"coordinator": set(), "site": set()}
    for code, binary in rows:
        binaries = (["coordinator", "site"] if binary == "both"
                    else [binary])
        for b in binaries:
            documented[b].add(code)
            if code not in actual[b]:
                fail(f"{OPERATIONS}: documents exit code {code} for "
                     f"'{binary}', but the {b} sources never return it")
    for b, codes in actual.items():
        for code in sorted(codes - documented[b]):
            fail(f"{OPERATIONS}: {b} can exit with code {code}, missing "
                 f"from the exit-code table")


def run():
    """All checks; prints a report and returns a process exit code."""
    del errors[:]
    required = (WIRE_H, WIRE_DOC, README, BENCH, OPERATIONS,
                *COORDINATOR_SOURCES, *SITE_SOURCES)
    for path in required:
        if not path.exists():
            fail(f"missing file: {path}")
    if not errors:
        check_wire_protocol()
        check_delivery_paths()
        check_exit_codes()
    if errors:
        for msg in errors:
            print(f"doc-drift: {msg}", file=sys.stderr)
        print(f"doc-drift: {len(errors)} error(s)", file=sys.stderr)
        return 1
    print("doc-drift: wire-protocol table, delivery-paths table, and "
          "exit-code table all match the source")
    return 0


if __name__ == "__main__":
    sys.exit(run())
