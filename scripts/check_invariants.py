#!/usr/bin/env python3
"""Project-specific static analysis: the determinism & wire invariants.

The repo's core guarantee — estimates bit-identical to the serial driver
and §1.1 comm totals exact to the message — is enforced dynamically by
the replay/equivalence test tiers. This checker enforces the *source*
patterns those tiers depend on, so a nondeterminism bug cannot hide
until a workload happens to trigger it. It is a real lexer-aware pass
(comments and string literals never produce findings), stdlib-only.

Rules (catalog + rationale: docs/STATIC_ANALYSIS.md):

  unordered-iter   no iteration (range-for, .begin()/.cbegin(),
                   erase-loop) over std::unordered_{map,set} anywhere in
                   src/ — hash-layout order leaks into message order,
                   exports, and folds. common/ordered_drain.h is the one
                   sanctioned walk.
  banned-source    no std::random_device, rand()/srand(), time()/clock()
                   family, or std::chrono outside common/random.* and
                   the bench timer (bench/bench_util.h). Replay must be
                   a pure function of (workload, seed).
  pointer-key      no pointer-typed keys in map/set containers and no
                   raw-pointer comparisons as sort tie-breaks in src/ —
                   allocator addresses are run-to-run nondeterministic.
  wire-switch      every wire.h MsgType enumerator appears in each of
                   wire.cc's KnownType/HasVectors/PaperWordCharge
                   switches and in docs/WIRE_PROTOCOL.md's type table
                   (the frozen-wire guarantee, at the source level).
  meter-tap        in any tracker file wired for wire taps, every
                   CommMeter charge (meter_.Record*) must sit next to a
                   WireTap emit (EmitTap / tap_->OnMessage) so the §1.1
                   ledger and the frame stream cannot drift apart.
  site-check       every Arrive*/Push*/ShardArriveRun delivery entry
                   point validates its site ids (sim::CheckSiteInRange,
                   directly or via a checked helper) — the PR 4
                   abort-with-diagnostic invariant.
  simd-isolation   #include <immintrin.h> and _mm*/__m* intrinsic
                   tokens are confined to common/simd.h — every vector
                   kernel lives there behind runtime dispatch with a
                   scalar mirror, so no other file can fork scalar and
                   SIMD behavior.

Suppression: a finding is suppressed by an annotation comment on the
same line or on the comment block immediately above it:

    // disttrack-lint: allow(<rule>[,<rule>...]) -- <reason>

The reason is mandatory; annotations without one, and annotations that
suppress nothing, are themselves findings. Every suppression is counted
and listed in the run summary (and by --list-suppressions), so the
reviewed-exception surface stays visible.

Usage:

    python3 scripts/check_invariants.py              # lint rules only
    python3 scripts/check_invariants.py --all        # + doc drift + tidy
                                                     #   baseline file guard
    python3 scripts/check_invariants.py --self-test  # fixture suite
    python3 scripts/check_invariants.py --list-suppressions
"""

import argparse
import pathlib
import re
import sys
from collections import namedtuple

ROOT = pathlib.Path(__file__).resolve().parent.parent

RULES = (
    "unordered-iter",
    "banned-source",
    "pointer-key",
    "wire-switch",
    "meter-tap",
    "site-check",
    "simd-isolation",
)

# ----------------------------------------------------------------- lexer

Token = namedtuple("Token", "kind text line")  # kind: id num punct comment str

_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")
# Multi-char punctuators we must not split ('::' above all: a naive ':'
# token would make range-for colon detection ambiguous).
_PUNCT3 = ("<<=", ">>=", "...", "->*")
_PUNCT2 = ("::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
           "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=")


def tokenize(text):
    """C++ source -> Token list. Comments/strings kept as opaque tokens."""
    tokens = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                j = text.find("\n", i)
                j = n if j < 0 else j
                tokens.append(Token("comment", text[i:j], line))
                i = j
                continue
            if text[i + 1] == "*":
                j = text.find("*/", i + 2)
                j = n - 2 if j < 0 else j
                body = text[i:j + 2]
                tokens.append(Token("comment", body, line))
                line += body.count("\n")
                i = j + 2
                continue
        if c == '"' or (c == "R" and text[i:i + 2] == 'R"'):
            if c == "R":  # raw string R"delim( ... )delim"
                m = re.match(r'R"([^(\s]*)\(', text[i:])
                if m:
                    end = text.find(")" + m.group(1) + '"', i)
                    end = n if end < 0 else end + len(m.group(1)) + 2
                    body = text[i:end]
                    tokens.append(Token("str", body, line))
                    line += body.count("\n")
                    i = end
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            tokens.append(Token("str", text[i:j + 1], line))
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            tokens.append(Token("str", text[i:j + 1], line))
            i = j + 1
            continue
        if c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            tokens.append(Token("id", text[i:j], line))
            i = j
            continue
        if c.isdigit():
            j = i + 1
            while j < n and (text[j] in _ID_CONT or text[j] in ".'"):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue
        for p in _PUNCT3:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line))
                i += 3
                break
        else:
            for p in _PUNCT2:
                if text.startswith(p, i):
                    tokens.append(Token("punct", p, line))
                    i += 2
                    break
            else:
                tokens.append(Token("punct", c, line))
                i += 1
    return tokens


class SourceFile:
    """One lexed file: token stream + the significant (code-only) view."""

    def __init__(self, path, rel, text=None):
        self.path = path
        self.rel = rel
        self.text = path.read_text(encoding="utf-8") if text is None else text
        self.tokens = tokenize(self.text)
        self.code = [t for t in self.tokens if t.kind not in ("comment",)]

    def code_lines(self):
        return {t.line for t in self.code}


Finding = namedtuple("Finding", "rel line rule msg")

# ----------------------------------------------------------- annotations

_ANNOT_RE = re.compile(
    r"disttrack-lint:\s*allow\(([^)]*)\)\s*(--\s*(\S.*))?", re.S)


class Annotation:
    def __init__(self, rel, line, rules, reason, covers):
        self.rel = rel
        self.line = line          # line of the annotation comment itself
        self.rules = rules        # list of rule names
        self.reason = reason      # may be None (-> bad-annotation)
        self.covers = covers      # set of lines it suppresses
        self.used = False


def collect_annotations(src):
    """Annotations in src + bad-annotation findings.

    A trailing annotation (code earlier on the same line) covers its own
    line. A whole-line/block comment annotation covers the next line that
    carries code.
    """
    annotations, findings = [], []
    code_lines = src.code_lines()
    for idx, tok in enumerate(src.tokens):
        if tok.kind != "comment":
            continue
        m = _ANNOT_RE.search(tok.text)
        if not m:
            if "disttrack-lint" in tok.text:
                findings.append(Finding(
                    src.rel, tok.line, "bad-annotation",
                    "malformed disttrack-lint annotation (want "
                    "'disttrack-lint: allow(<rule>) -- <reason>')"))
            continue
        rules = [r.strip() for r in m.group(1).split(",") if r.strip()]
        reason = m.group(3).strip() if m.group(3) else None
        bad = [r for r in rules if r not in RULES]
        if bad:
            findings.append(Finding(
                src.rel, tok.line, "bad-annotation",
                f"unknown rule(s) {', '.join(bad)} in allow()"))
        if not reason:
            findings.append(Finding(
                src.rel, tok.line, "bad-annotation",
                "suppression without a reason ('-- <why this is safe>' "
                "is mandatory)"))
        covers = {tok.line}
        if any(t.line == tok.line for t in src.code):
            pass  # trailing comment: covers its own line only
        else:
            nxt = [ln for ln in code_lines if ln > tok.line]
            if nxt:
                covers.add(min(nxt))
        annotations.append(Annotation(src.rel, tok.line, rules,
                                      reason, covers))
    return annotations, findings

# ------------------------------------------------- rule: unordered-iter

_UNORDERED_TYPES = {"unordered_map", "unordered_set",
                    "unordered_multimap", "unordered_multiset"}


def collect_unordered_names(files):
    """Variable/member names declared with an unordered container type."""
    names = set()
    for src in files:
        code = src.code
        for i, tok in enumerate(code):
            if tok.kind != "id" or tok.text not in _UNORDERED_TYPES:
                continue
            if i + 1 >= len(code) or code[i + 1].text != "<":
                continue
            depth, j = 1, i + 2
            while j < len(code) and depth:
                if code[j].text == "<":
                    depth += 1
                elif code[j].text == ">":
                    depth -= 1
                elif code[j].text == ">>":
                    depth -= 2
                j += 1
            if j < len(code) and code[j].kind == "id":
                names.add(code[j].text)
    return names


def rule_unordered_iter(src, unordered_names):
    findings = []
    code = src.code
    for i, tok in enumerate(code):
        # x.begin( / x->begin( / x.cbegin( ... on an unordered name
        if (tok.kind == "id"
                and tok.text in ("begin", "end", "cbegin", "cend",
                                 "rbegin", "rend")
                and i >= 2 and code[i - 1].text in (".", "->")
                and code[i - 2].kind == "id"
                and code[i - 2].text in unordered_names
                and i + 1 < len(code) and code[i + 1].text == "("):
            # A lone container.end() against a find() iterator is the
            # membership idiom, not iteration; begin() is what starts a
            # walk, so only the begin family fires.
            if tok.text in ("begin", "cbegin", "rbegin"):
                findings.append(Finding(
                    src.rel, tok.line, "unordered-iter",
                    f"iteration over unordered container "
                    f"'{code[i - 2].text}' (.{tok.text}()) — hash-layout "
                    f"order is not deterministic; use "
                    f"common/ordered_drain.h"))
        # range-for over an unordered name:  for ( ... : <expr> )
        if tok.kind == "id" and tok.text == "for" and i + 1 < len(code) \
                and code[i + 1].text == "(":
            depth, j, colon = 1, i + 2, None
            while j < len(code) and depth:
                t = code[j].text
                if t == "(":
                    depth += 1
                elif t == ")":
                    depth -= 1
                elif t == ":" and depth == 1:
                    colon = j
                elif t == ";" and depth == 1:
                    colon = None  # classic for, not range-for
                    break
                j += 1
            if colon is not None:
                expr = code[colon + 1:j - 1]
                # Only a bare id-chain ending in the container counts;
                # call results (SortedItems(...), Items()) are vectors.
                if expr and expr[-1].kind == "id" \
                        and expr[-1].text in unordered_names:
                    findings.append(Finding(
                        src.rel, expr[-1].line, "unordered-iter",
                        f"range-for over unordered container "
                        f"'{expr[-1].text}' — hash-layout order is not "
                        f"deterministic; use common/ordered_drain.h"))
    return findings

# ------------------------------------------------- rule: banned-source

_BANNED_CALLS = {"rand", "srand", "time", "clock", "gettimeofday",
                 "timespec_get", "clock_gettime", "localtime", "gmtime"}
_BANNED_IDS = {"random_device"}
_BANNED_SOURCE_ALLOWLIST = {
    "src/disttrack/common/random.h",
    "src/disttrack/common/random.cc",
    "bench/bench_util.h",  # the bench timer
}


def rule_banned_source(src):
    if src.rel in _BANNED_SOURCE_ALLOWLIST:
        return []
    findings = []
    code = src.code
    for i, tok in enumerate(code):
        if tok.kind != "id":
            continue
        if tok.text in _BANNED_IDS:
            findings.append(Finding(
                src.rel, tok.line, "banned-source",
                f"'{tok.text}' is a nondeterminism source; seed a "
                f"common/random.h Rng instead"))
            continue
        if tok.text == "chrono" and i >= 2 and code[i - 1].text == "::" \
                and code[i - 2].text == "std":
            findings.append(Finding(
                src.rel, tok.line, "banned-source",
                "std::chrono outside the bench timer — replay must not "
                "read clocks"))
            continue
        if tok.text in _BANNED_CALLS and i + 1 < len(code) \
                and code[i + 1].text == "(":
            prev = code[i - 1].text if i else ""
            if prev in (".", "->"):
                continue  # member of some object, not the libc call
            if prev == "::" and (i < 2 or code[i - 2].text != "std"):
                continue  # qualified member (Foo::time), not std::
            findings.append(Finding(
                src.rel, tok.line, "banned-source",
                f"call to '{tok.text}()' — wall-clock/libc randomness "
                f"is banned outside common/random.* and the bench timer"))
    return findings

# --------------------------------------------------- rule: pointer-key

_ASSOC_TYPES = {"map", "set", "multimap", "multiset"} | _UNORDERED_TYPES


def rule_pointer_key(src):
    findings = []
    code = src.code
    for i, tok in enumerate(code):
        if tok.kind == "id" and tok.text in _ASSOC_TYPES \
                and i + 1 < len(code) and code[i + 1].text == "<":
            # first template argument, depth-1 slice up to ',' or '>'
            depth, j, arg = 1, i + 2, []
            while j < len(code) and depth:
                t = code[j].text
                if t == "<":
                    depth += 1
                elif t in (">", ">>"):
                    depth -= 2 if t == ">>" else 1
                elif t == "," and depth == 1:
                    break
                if depth:
                    arg.append(code[j])
                j += 1
            if arg and arg[-1].text == "*":
                findings.append(Finding(
                    src.rel, tok.line, "pointer-key",
                    f"pointer-typed key in std::{tok.text} — allocator "
                    f"addresses order nondeterministically; key by a "
                    f"minted id"))
        # std::sort(..., [](T* a, T* b) { return a < b; }) style
        if tok.kind == "id" and tok.text in ("sort", "stable_sort") \
                and i + 1 < len(code) and code[i + 1].text == "(":
            depth, j = 1, i + 2
            call = []
            while j < len(code) and depth:
                t = code[j].text
                if t == "(":
                    depth += 1
                elif t == ")":
                    depth -= 1
                if depth:
                    call.append(code[j])
                j += 1
            findings.extend(_pointer_comparator_findings(src, call))
    return findings


def _pointer_comparator_findings(src, call_tokens):
    """Lambda comparator with pointer params compared raw -> finding."""
    out = []
    for i, tok in enumerate(call_tokens):
        if tok.text != "[":
            continue
        # find the lambda param list ( ... )
        j = i + 1
        while j < len(call_tokens) and call_tokens[j].text != "]":
            j += 1
        if j + 1 >= len(call_tokens) or call_tokens[j + 1].text != "(":
            continue
        depth, k = 1, j + 2
        params = []
        while k < len(call_tokens) and depth:
            t = call_tokens[k].text
            if t == "(":
                depth += 1
            elif t == ")":
                depth -= 1
            if depth:
                params.append(call_tokens[k])
            k += 1
        ptr_params = set()
        for p in range(1, len(params)):
            if params[p].kind == "id" and params[p - 1].text == "*":
                ptr_params.add(params[p].text)
        if not ptr_params:
            continue
        body = call_tokens[k:]
        for b in range(1, len(body) - 1):
            if body[b].text in ("<", ">") \
                    and body[b - 1].kind == "id" \
                    and body[b - 1].text in ptr_params \
                    and body[b + 1].kind == "id" \
                    and body[b + 1].text in ptr_params:
                out.append(Finding(
                    src.rel, body[b].line, "pointer-key",
                    "raw pointer comparison as sort key — allocator "
                    "addresses are run-to-run nondeterministic"))
    return out

# --------------------------------------------------- rule: wire-switch

_WIRE_FUNCS = ("KnownType", "HasVectors", "PaperWordCharge")


def _enum_msg_types(text):
    m = re.search(r"enum class MsgType[^{]*\{(.*?)\};", text, re.S)
    if not m:
        return None
    return {name: int(value)
            for name, value in re.findall(r"\b(k\w+)\s*=\s*(\d+)",
                                          m.group(1))}


def _switch_cases_in_function(src, func_name):
    """Enumerators appearing as 'case MsgType::kX' inside func_name's body.

    Returns None if no definition of func_name is found.
    """
    code = src.code
    for i, tok in enumerate(code):
        if tok.kind != "id" or tok.text != func_name:
            continue
        if i + 1 >= len(code) or code[i + 1].text != "(":
            continue
        depth, j = 1, i + 2
        while j < len(code) and depth:
            if code[j].text == "(":
                depth += 1
            elif code[j].text == ")":
                depth -= 1
            j += 1
        if j >= len(code) or code[j].text != "{":
            continue  # a call or a declaration, not the definition
        depth, k = 1, j + 1
        cases = set()
        while k < len(code) and depth:
            t = code[k].text
            if t == "{":
                depth += 1
            elif t == "}":
                depth -= 1
            elif code[k].kind == "id" and t == "MsgType" \
                    and k + 2 < len(code) and code[k + 1].text == "::" \
                    and code[k - 1].text not in ("class",):
                # count only 'case MsgType::kX' labels
                back = k - 1
                if back >= 0 and code[back].text == "case" or (
                        back >= 1 and code[back].text == "::"
                        and code[back - 1].text == "case"):
                    cases.add(code[k + 2].text)
                elif back >= 2 and code[back].kind == "id" \
                        and code[back - 1].text == "case":
                    cases.add(code[k + 2].text)
            k += 1
        return cases
    return None


def rule_wire_switch(wire_h, wire_cc, wire_doc_text, doc_rel):
    findings = []
    enum = _enum_msg_types(wire_h.text)
    if enum is None:
        return [Finding(wire_h.rel, 1, "wire-switch",
                        "could not find 'enum class MsgType'")]
    for func in _WIRE_FUNCS:
        cases = _switch_cases_in_function(wire_cc, func)
        if cases is None:
            findings.append(Finding(
                wire_cc.rel, 1, "wire-switch",
                f"no switch-bearing definition of {func}() found"))
            continue
        for name in sorted(enum, key=enum.get):
            if name not in cases:
                findings.append(Finding(
                    wire_cc.rel, 1, "wire-switch",
                    f"MsgType::{name} (= {enum[name]}) is not handled in "
                    f"{func}() — every enumerator must appear in its "
                    f"switch"))
    documented = {name: int(value) for value, name in
                  re.findall(r"^\|\s*(\d+)\s*\|\s*`(k\w+)`",
                             wire_doc_text, re.M)}
    for name in sorted(enum, key=enum.get):
        if name not in documented:
            findings.append(Finding(
                doc_rel, 1, "wire-switch",
                f"MsgType::{name} (= {enum[name]}) missing from the "
                f"wire-protocol type table"))
        elif documented[name] != enum[name]:
            findings.append(Finding(
                doc_rel, 1, "wire-switch",
                f"MsgType::{name} documented as {documented[name]}, "
                f"wire.h says {enum[name]}"))
    return findings

# ----------------------------------------------------- rule: meter-tap

_CHARGE_RE = re.compile(r"\bRecord(Upload|UploadBulk|Download|Broadcast)\b")
_TAP_WINDOW_BEFORE = 3
_TAP_WINDOW_AFTER = 12


def rule_meter_tap(src):
    # Scope: only files that participate in the wire-tap differential.
    ids = {t.text for t in src.code if t.kind == "id"}
    if "tap_" not in ids and "set_wire_tap" not in ids:
        return []
    findings = []
    code = src.code
    tap_lines = {t.line for i, t in enumerate(code)
                 if t.kind == "id" and t.text in ("tap_", "EmitTap")}
    for i, tok in enumerate(code):
        if tok.kind != "id" or not _CHARGE_RE.match(tok.text):
            continue
        if i < 2 or code[i - 1].text not in (".", "->") \
                or not code[i - 2].text.startswith("meter"):
            continue
        lo = tok.line - _TAP_WINDOW_BEFORE
        hi = tok.line + _TAP_WINDOW_AFTER
        if not any(lo <= ln <= hi for ln in tap_lines):
            findings.append(Finding(
                src.rel, tok.line, "meter-tap",
                f"CommMeter charge ({tok.text}) with no WireTap emit "
                f"within {_TAP_WINDOW_AFTER} lines — the frame stream "
                f"and the §1.1 ledger would drift"))
    return findings

# ---------------------------------------------------- rule: site-check

_ENTRY_NAMES = {"Arrive", "ArriveBatch", "ArriveSites", "ArriveRun",
                "Push", "PushSites", "ShardArriveRun"}
# Helpers that perform the range check themselves; calling one counts.
# SiteGrouper's scatter/count methods validate every id they bucket
# (common/site_group.cc), so routing through the grouper is a check.
_CHECKED_HELPERS = {"CheckSiteInRange", "CheckArrivalSites",
                    "CheckSitesInRange", "CountSites", "ScatterBySite"}


def rule_site_check(src):
    findings = []
    code = src.code
    for i, tok in enumerate(code):
        if tok.kind != "id" or tok.text not in _ENTRY_NAMES:
            continue
        # definition shape: Class :: Name ( params ) [qualifiers] {
        if i < 2 or code[i - 1].text != "::" or code[i - 2].kind != "id":
            continue
        if i + 1 >= len(code) or code[i + 1].text != "(":
            continue
        depth, j = 1, i + 2
        params = []
        while j < len(code) and depth:
            if code[j].text == "(":
                depth += 1
            elif code[j].text == ")":
                depth -= 1
            if depth:
                params.append(code[j])
            j += 1
        while j < len(code) and code[j].text in ("const", "noexcept",
                                                 "override", "final"):
            j += 1
        if j >= len(code) or code[j].text != "{":
            continue  # declaration, not a definition
        # Entry points that don't name a site/arrival have nothing to
        # check (e.g. service-side Arrive(uint64_t key) on a fixed site).
        param_ids = {t.text for t in params if t.kind == "id"}
        if not ({"site", "sites", "arrivals"} & param_ids):
            continue
        depth, k = 1, j + 1
        body_ids = set()
        while k < len(code) and depth:
            t = code[k].text
            if t == "{":
                depth += 1
            elif t == "}":
                depth -= 1
            elif code[k].kind == "id":
                body_ids.add(t)
            k += 1
        if not (body_ids & _CHECKED_HELPERS):
            findings.append(Finding(
                src.rel, tok.line, "site-check",
                f"delivery entry point {code[i - 2].text}::{tok.text}() "
                f"has no site-id range check "
                f"(sim::CheckSiteInRange) — out-of-range ids must abort "
                f"with a diagnostic, not corrupt per-site state"))
    return findings

# ------------------------------------------------ rule: simd-isolation

# The one file allowed to hold intrinsics: every kernel there pairs an
# AVX2 body with a scalar mirror behind runtime dispatch.
_SIMD_ISOLATION_ALLOWLIST = {"src/disttrack/common/simd.h"}
_SIMD_TYPE_RE = re.compile(r"^__m\d")  # __m128i / __m256i / __m512 ...


def rule_simd_isolation(src):
    if src.rel in _SIMD_ISOLATION_ALLOWLIST:
        return []
    findings = []
    for tok in src.code:
        if tok.kind != "id":
            continue
        if tok.text.startswith("_mm") or tok.text == "immintrin" \
                or _SIMD_TYPE_RE.match(tok.text):
            findings.append(Finding(
                src.rel, tok.line, "simd-isolation",
                f"'{tok.text}' outside common/simd.h — intrinsics live "
                f"there only, each behind runtime dispatch with a scalar "
                f"mirror; call the simd:: wrapper instead"))
    return findings

# ------------------------------------------------------------- driver


def scan_files(root):
    """The lintable file set, as SourceFile objects."""
    patterns = [
        ("src", "**/*.h"), ("src", "**/*.cc"),
        ("tests", "*.cc"), ("tests", "*.h"),
        ("bench", "*.cpp"), ("bench", "*.h"),
        ("examples", "*.cpp"),
        ("service", "*.cpp"),
    ]
    files = []
    for base, pat in patterns:
        for path in sorted((root / base).glob(pat)):
            rel = path.relative_to(root).as_posix()
            if rel.startswith("tests/lint_fixture"):
                continue  # fixtures violate rules on purpose
            files.append(SourceFile(path, rel))
    return files


def run_rules(files, root, wire_paths=None):
    """All findings (pre-suppression) + the per-file annotation lists."""
    findings = []
    annotations = []
    for src in files:
        a, bad = collect_annotations(src)
        annotations.extend(a)
        findings.extend(bad)

    # Unordered-container names are scoped per translation unit: a file
    # sees its own declarations plus its same-stem header's (members a
    # .cc iterates are declared in its .h). A global pool would alias
    # same-named members of unrelated classes (an ordered 'frozen_' in
    # one file vs an unordered one in another).
    declared = {f.rel: collect_unordered_names([f])
                for f in files if f.rel.startswith("src/")}
    for src in files:
        if src.rel.startswith("src/"):
            stem = src.rel.rsplit(".", 1)[0]
            unordered_names = (declared.get(src.rel, set())
                               | declared.get(stem + ".h", set()))
            findings.extend(rule_unordered_iter(src, unordered_names))
            findings.extend(rule_pointer_key(src))
            findings.extend(rule_meter_tap(src))
            findings.extend(rule_site_check(src))
        findings.extend(rule_banned_source(src))
        findings.extend(rule_simd_isolation(src))

    if wire_paths is None:
        wire_paths = (root / "src/disttrack/sim/wire.h",
                      root / "src/disttrack/sim/wire.cc",
                      root / "docs/WIRE_PROTOCOL.md")
    wire_h_path, wire_cc_path, wire_doc_path = wire_paths
    if wire_h_path.exists() and wire_cc_path.exists():
        wire_h = next((f for f in files if f.path == wire_h_path),
                      SourceFile(wire_h_path,
                                 wire_h_path.name))
        wire_cc = next((f for f in files if f.path == wire_cc_path),
                       SourceFile(wire_cc_path, wire_cc_path.name))
        doc_text = (wire_doc_path.read_text(encoding="utf-8")
                    if wire_doc_path.exists() else "")
        doc_rel = (wire_doc_path.relative_to(root).as_posix()
                   if wire_doc_path.exists() else str(wire_doc_path))
        findings.extend(
            rule_wire_switch(wire_h, wire_cc, doc_text, doc_rel))
    return findings, annotations


def apply_suppressions(findings, annotations):
    """Split findings into (kept, suppressed); flag unused annotations."""
    by_key = {}
    for ann in annotations:
        for rule in ann.rules:
            for line in ann.covers:
                by_key.setdefault((ann.rel, line, rule), []).append(ann)
    kept, suppressed = [], []
    for f in findings:
        anns = by_key.get((f.rel, f.line, f.rule))
        if anns and f.rule != "bad-annotation":
            for ann in anns:
                ann.used = True
            suppressed.append(f)
        else:
            kept.append(f)
    for ann in annotations:
        if not ann.used and ann.reason:
            kept.append(Finding(
                ann.rel, ann.line, "bad-annotation",
                f"suppression for {', '.join(ann.rules)} matches no "
                f"finding — stale annotations must be removed"))
    return kept, suppressed


def run_lint(root, list_suppressions=False):
    files = scan_files(root)
    findings, annotations = run_rules(files, root)
    kept, suppressed = apply_suppressions(findings, annotations)
    for f in sorted(kept):
        print(f"{f.rel}:{f.line}: [{f.rule}] {f.msg}", file=sys.stderr)
    used = [a for a in annotations if a.used]
    if list_suppressions:
        for a in sorted(used, key=lambda a: (a.rel, a.line)):
            print(f"{a.rel}:{a.line}: allow({', '.join(a.rules)}) -- "
                  f"{a.reason}")
    print(f"check-invariants: {len(files)} files, "
          f"{len(kept)} finding(s), {len(suppressed)} suppressed by "
          f"{len(used)} reviewed annotation(s)")
    return 1 if kept else 0

# ---------------------------------------------------------- self-test


def _fixture_rule(stem):
    return stem.split("__")[0].replace("_", "-")


def self_test(root):
    fixture_dir = root / "tests" / "lint_fixture"
    if not fixture_dir.is_dir():
        print(f"self-test: missing {fixture_dir}", file=sys.stderr)
        return 1
    failures = []
    checked = 0

    def lint_fixture(path):
        """Run the single-file rules on one fixture as if it were src/."""
        src = SourceFile(path, "src/disttrack/" + path.name)
        findings = []
        annotations, bad = collect_annotations(src)
        findings.extend(bad)
        names = collect_unordered_names([src])
        findings.extend(rule_unordered_iter(src, names))
        findings.extend(rule_pointer_key(src))
        findings.extend(rule_meter_tap(src))
        findings.extend(rule_site_check(src))
        findings.extend(rule_banned_source(src))
        findings.extend(rule_simd_isolation(src))
        kept, suppressed = apply_suppressions(findings, annotations)
        return kept

    for path in sorted(fixture_dir.glob("*.cc")):
        stem = path.stem
        rule = _fixture_rule(stem)
        want_fail = "__fail" in stem
        kept = lint_fixture(path)
        got_rules = {f.rule for f in kept}
        checked += 1
        if want_fail and rule not in got_rules:
            failures.append(f"{path.name}: expected a {rule} finding, "
                            f"got {sorted(got_rules) or 'none'}")
        elif not want_fail and kept:
            failures.append(
                f"{path.name}: expected clean, got "
                + "; ".join(f"{f.rule}@{f.line}" for f in kept))

    for sub in sorted(fixture_dir.glob("wire_switch__*")):
        if not sub.is_dir():
            continue
        checked += 1
        wire_h = SourceFile(sub / "wire.h", f"{sub.name}/wire.h")
        wire_cc = SourceFile(sub / "wire.cc", f"{sub.name}/wire.cc")
        doc = (sub / "WIRE_PROTOCOL.md").read_text(encoding="utf-8")
        kept = rule_wire_switch(wire_h, wire_cc, doc,
                                f"{sub.name}/WIRE_PROTOCOL.md")
        if "__fail" in sub.name and not kept:
            failures.append(f"{sub.name}: expected wire-switch findings, "
                            f"got none")
        elif "__pass" in sub.name and kept:
            failures.append(f"{sub.name}: expected clean, got "
                            + "; ".join(f.msg for f in kept))

    # Every rule must have at least one failing fixture, or a rule
    # regression could never be caught.
    have_fail = {_fixture_rule(p.stem) for p in fixture_dir.glob("*__fail*")
                 if p.suffix == ".cc"}
    have_fail |= {"wire-switch"
                  for p in fixture_dir.glob("wire_switch__fail*")
                  if p.is_dir()}
    for rule in RULES:
        if rule not in have_fail:
            failures.append(f"no failing fixture exercises rule '{rule}'")

    for msg in failures:
        print(f"self-test: {msg}", file=sys.stderr)
    print(f"check-invariants self-test: {checked} fixture(s), "
          f"{len(failures)} failure(s)")
    return 1 if failures else 0

# ---------------------------------------------------------------- main


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--all", action="store_true",
                        help="also run the doc-drift guard and the "
                             "tidy-baseline file guard")
    parser.add_argument("--self-test", action="store_true",
                        help="run the tests/lint_fixture suite")
    parser.add_argument("--list-suppressions", action="store_true",
                        help="print every active suppression annotation")
    parser.add_argument("--root", type=pathlib.Path, default=ROOT)
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.root)

    rc = run_lint(args.root, list_suppressions=args.list_suppressions)

    if args.all:
        sys.path.insert(0, str(args.root / "scripts"))
        import check_doc_drift
        drift_rc = check_doc_drift.run()
        import tidy_ratchet
        tidy_rc = tidy_ratchet.verify_baseline_files(args.root)
        rc = rc or drift_rc or tidy_rc
    return rc


if __name__ == "__main__":
    sys.exit(main())
