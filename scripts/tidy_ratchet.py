#!/usr/bin/env python3
"""clang-tidy ratchet: new findings fail, shrinking the baseline passes.

The check set lives in .clang-tidy (curated: bugprone/concurrency/
performance/cert/misc-const-correctness). Rather than block on a
zero-findings bar no one will fund in one PR, the committed
tidy_baseline.json records the accepted per-(file, check) finding
counts. The gate is monotone:

  * a (file, check) count above its baseline entry fails — you added a
    finding, fix it or (rarely) re-freeze with review;
  * counts at or below the baseline pass — and when you fix findings,
    run --freeze so the baseline shrinks and the fixes can't regress.

Modes:

  --check   (default) run clang-tidy, compare against the baseline
  --freeze  run clang-tidy, rewrite the baseline from what it reports
  --prune   drop baseline entries for files that no longer exist
  --verify-files  stdlib-only staleness guard: every file named in the
            baseline must exist (CI hygiene runs this; it needs no
            clang-tidy, so it works in every environment)

Requires a compile database:  cmake -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
When clang-tidy is not installed, --check/--freeze print a SKIPPED
notice and exit 0 so local environments without LLVM aren't blocked;
CI passes --require to turn that skip into a failure.
"""

import argparse
import json
import pathlib
import re
import shutil
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE = ROOT / "tidy_baseline.json"

_TIDY_NAMES = ("clang-tidy", "clang-tidy-18", "clang-tidy-17",
               "clang-tidy-16", "clang-tidy-15", "clang-tidy-14")

# clang-tidy diagnostic line:  path:line:col: warning: text [check-name]
_DIAG_RE = re.compile(
    r"^(?P<path>[^:\s][^:]*):\d+:\d+:\s+(?:warning|error):\s.*"
    r"\[(?P<checks>[a-z0-9.,-]+)\]\s*$")


def find_clang_tidy():
    for name in _TIDY_NAMES:
        path = shutil.which(name)
        if path:
            return path
    return None


def load_baseline():
    if not BASELINE.exists():
        return {"meta": {}, "findings": {}}
    return json.loads(BASELINE.read_text(encoding="utf-8"))


def library_sources(root):
    return sorted(p for p in (root / "src" / "disttrack").rglob("*.cc"))


def run_clang_tidy(tidy, build_dir, root):
    """Per-(relpath, check) finding counts over the library sources."""
    counts = {}
    for src in library_sources(root):
        proc = subprocess.run(
            [tidy, "-p", str(build_dir), "--quiet", str(src)],
            capture_output=True, text=True)
        for line in proc.stdout.splitlines():
            m = _DIAG_RE.match(line)
            if not m:
                continue
            try:
                path = pathlib.Path(m.group("path")).resolve()
                rel = path.relative_to(root).as_posix()
            except ValueError:
                continue  # header outside the repo
            if not rel.startswith("src/disttrack/"):
                continue
            for check in m.group("checks").split(","):
                key = counts.setdefault(rel, {})
                key[check] = key.get(check, 0) + 1
    return counts


def compare(current, baseline_findings):
    """(regressions, improvements) vs the baseline."""
    regressions, improvements = [], []
    files = set(current) | set(baseline_findings)
    for rel in sorted(files):
        cur = current.get(rel, {})
        base = baseline_findings.get(rel, {})
        for check in sorted(set(cur) | set(base)):
            c, b = cur.get(check, 0), base.get(check, 0)
            if c > b:
                regressions.append((rel, check, b, c))
            elif c < b:
                improvements.append((rel, check, b, c))
    return regressions, improvements


def verify_baseline_files(root):
    """Every file the baseline references must still exist. rc 0/1."""
    if not BASELINE.exists():
        print("tidy-ratchet: no tidy_baseline.json, nothing to verify")
        return 0
    baseline = json.loads(BASELINE.read_text(encoding="utf-8"))
    stale = [rel for rel in baseline.get("findings", {})
             if not (root / rel).exists()]
    for rel in stale:
        print(f"tidy-ratchet: baseline references deleted file {rel} — "
              f"run scripts/tidy_ratchet.py --prune", file=sys.stderr)
    if not stale:
        print(f"tidy-ratchet: baseline files ok "
              f"({len(baseline.get('findings', {}))} entries)")
    return 1 if stale else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--freeze", action="store_true",
                      help="rewrite the baseline from current findings")
    mode.add_argument("--prune", action="store_true",
                      help="drop baseline entries for deleted files")
    mode.add_argument("--verify-files", action="store_true",
                      help="check baseline file references (no clang-tidy)")
    parser.add_argument("--build-dir", type=pathlib.Path,
                        default=ROOT / "build",
                        help="build tree with compile_commands.json")
    parser.add_argument("--require", action="store_true",
                        help="fail (rather than skip) if clang-tidy is "
                             "missing — CI sets this")
    args = parser.parse_args()

    if args.verify_files:
        return verify_baseline_files(ROOT)

    if args.prune:
        baseline = load_baseline()
        findings = baseline.get("findings", {})
        kept = {rel: checks for rel, checks in findings.items()
                if (ROOT / rel).exists()}
        dropped = sorted(set(findings) - set(kept))
        baseline["findings"] = kept
        BASELINE.write_text(json.dumps(baseline, indent=2, sort_keys=True)
                            + "\n", encoding="utf-8")
        for rel in dropped:
            print(f"tidy-ratchet: pruned {rel}")
        print(f"tidy-ratchet: {len(dropped)} entr(ies) pruned")
        return 0

    tidy = find_clang_tidy()
    if tidy is None:
        if args.require:
            print("tidy-ratchet: clang-tidy not found and --require set",
                  file=sys.stderr)
            return 1
        print("tidy-ratchet: SKIPPED — clang-tidy not installed "
              "(CI runs this with --require)")
        return 0

    compile_db = args.build_dir / "compile_commands.json"
    if not compile_db.exists():
        print(f"tidy-ratchet: {compile_db} missing — configure with "
              f"-DCMAKE_EXPORT_COMPILE_COMMANDS=ON", file=sys.stderr)
        return 1

    version = subprocess.run([tidy, "--version"], capture_output=True,
                             text=True).stdout.strip().splitlines()
    current = run_clang_tidy(tidy, args.build_dir, ROOT)
    total = sum(sum(c.values()) for c in current.values())

    if args.freeze:
        baseline = {
            "meta": {
                "tool": version[-1] if version else "clang-tidy",
                "note": "Accepted per-(file, check) finding counts. "
                        "New findings fail CI; fix findings and re-run "
                        "--freeze to ratchet the baseline down.",
            },
            "findings": current,
        }
        BASELINE.write_text(json.dumps(baseline, indent=2, sort_keys=True)
                            + "\n", encoding="utf-8")
        print(f"tidy-ratchet: froze baseline with {total} finding(s) in "
              f"{len(current)} file(s)")
        return 0

    baseline = load_baseline()
    regressions, improvements = compare(current,
                                        baseline.get("findings", {}))
    for rel, check, base, cur in regressions:
        print(f"tidy-ratchet: {rel}: {check}: {cur} finding(s), baseline "
              f"allows {base}", file=sys.stderr)
    for rel, check, base, cur in improvements:
        print(f"tidy-ratchet: {rel}: {check}: improved {base} -> {cur} — "
              f"run --freeze to lock it in")
    print(f"tidy-ratchet: {total} finding(s), {len(regressions)} "
          f"regression(s), {len(improvements)} improvement(s)")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
