// The coordinator daemon. Listens on a unix or tcp endpoint, accepts k
// site sessions plus any number of query clients, and runs the tracking
// protocol until a client sends kShutdown.
//
//   $ ./service/disttrack_coordinator --listen=unix:/tmp/dt.sock \
//         --tracker=count --sites=8 --n=100000 --seed=1
//
// Flags: --listen=ENDPOINT plus every shared fleet flag of
// service/options.h (--tracker --mode --sites --epsilon --seed --n
// --universe --grant --snapshot-every). The fleet flags must be
// byte-identical across the coordinator and all sites — kJoin carries a
// hash of them and mismatched sites are rejected. docs/OPERATIONS.md is
// the runbook.

#include <cstdio>
#include <string>

#include "disttrack/service/coordinator.h"
#include "disttrack/service/options.h"
#include "disttrack/service/socket.h"

int main(int argc, char** argv) {
  disttrack::service::ServiceOptions options;
  disttrack::service::Endpoint endpoint;
  bool have_endpoint = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string error;
    if (arg.rfind("--listen=", 0) == 0) {
      if (!disttrack::service::Endpoint::Parse(arg.substr(9), &endpoint,
                                               &error)) {
        fprintf(stderr, "disttrack_coordinator: %s\n", error.c_str());
        return 2;
      }
      have_endpoint = true;
      continue;
    }
    if (options.ParseFlag(arg, &error)) continue;
    fprintf(stderr, "disttrack_coordinator: %s\n",
            error.empty() ? ("unknown flag: " + arg).c_str() : error.c_str());
    return 2;
  }
  if (!have_endpoint) {
    fprintf(stderr,
            "disttrack_coordinator: --listen=unix:PATH or "
            "--listen=tcp:HOST:PORT is required\n");
    return 2;
  }

  disttrack::service::Coordinator coordinator(options);
  std::string error;
  if (!coordinator.AddListener(endpoint, &error)) {
    fprintf(stderr, "disttrack_coordinator: %s\n", error.c_str());
    return 1;
  }
  fprintf(stderr,
          "disttrack_coordinator: %s %s, %d sites, n=%llu, listening on %s\n",
          disttrack::service::TrackerKindName(options.tracker),
          disttrack::service::RunModeName(options.mode), options.num_sites,
          static_cast<unsigned long long>(options.total_arrivals),
          endpoint.ToString().c_str());
  return coordinator.RunUntilShutdown();
}
