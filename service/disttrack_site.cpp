// One site process. Connects to the coordinator, joins (or resumes from
// its snapshot under --snapshot-dir), streams its shard of the synthetic
// workload, then stays resident for other sites' rituals until the
// coordinator says kShutdown.
//
//   $ ./service/disttrack_site --connect=unix:/tmp/dt.sock --site=3 \
//         --tracker=count --sites=8 --n=100000 --seed=1
//
// Site-only flags: --connect=ENDPOINT, --site=ID,
// --snapshot-dir=DIR (with the shared --snapshot-every cadence), and
// --crash-after=N (exit(7) after N arrivals in this process — the
// recovery tests' deterministic crash). Every shared fleet flag must
// match the coordinator's (see service/options.h).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "disttrack/service/options.h"
#include "disttrack/service/site_runtime.h"
#include "disttrack/service/socket.h"

int main(int argc, char** argv) {
  disttrack::service::SiteRuntime::Config config;
  bool have_endpoint = false;
  bool have_site = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string error;
    if (arg.rfind("--connect=", 0) == 0) {
      if (!disttrack::service::Endpoint::Parse(arg.substr(10),
                                               &config.endpoint, &error)) {
        fprintf(stderr, "disttrack_site: %s\n", error.c_str());
        return 2;
      }
      have_endpoint = true;
      continue;
    }
    if (arg.rfind("--site=", 0) == 0) {
      config.site = atoi(arg.c_str() + 7);
      have_site = true;
      continue;
    }
    if (arg.rfind("--snapshot-dir=", 0) == 0) {
      config.snapshot_dir = arg.substr(15);
      continue;
    }
    if (arg.rfind("--crash-after=", 0) == 0) {
      config.crash_after = strtoull(arg.c_str() + 14, nullptr, 10);
      continue;
    }
    if (config.options.ParseFlag(arg, &error)) continue;
    fprintf(stderr, "disttrack_site: %s\n",
            error.empty() ? ("unknown flag: " + arg).c_str() : error.c_str());
    return 2;
  }
  if (!have_endpoint || !have_site) {
    fprintf(stderr,
            "disttrack_site: --connect=ENDPOINT and --site=ID are required\n");
    return 2;
  }
  if (config.site < 0 || config.site >= config.options.num_sites) {
    fprintf(stderr, "disttrack_site: --site=%d out of range for --sites=%d\n",
            config.site, config.options.num_sites);
    return 2;
  }

  disttrack::service::SiteRuntime runtime(config);
  return runtime.Run();
}
