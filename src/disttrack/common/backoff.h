// Capped exponential backoff for retransmission timers.
//
// The reliable channel in sim/transport.h retransmits an unacknowledged
// frame after DelayFor(attempt) ticks: initial, 2*initial, 4*initial, ...
// up to a hard cap. The schedule is a pure function of the attempt
// number, so a retransmitting sender is deterministic given its frame
// history — a requirement for the seeded fault-injection harness, where
// every run must be reproducible from (FaultPlan, seed) alone.

#ifndef DISTTRACK_COMMON_BACKOFF_H_
#define DISTTRACK_COMMON_BACKOFF_H_

#include <cstdint>

namespace disttrack {

/// Deterministic capped exponential backoff. No jitter by design: the
/// simulated cluster wants reproducibility, and the fault layer already
/// injects all the timing noise the tests need.
class ExponentialBackoff {
 public:
  /// `initial` is the delay (in ticks) before the first retransmission;
  /// `cap` bounds every later delay. Both are clamped to >= 1 so a
  /// misconfigured channel can never retransmit in the same tick forever.
  ExponentialBackoff(uint64_t initial, uint64_t cap)
      : initial_(initial < 1 ? 1 : initial), cap_(cap < initial_ ? initial_ : cap) {}

  ExponentialBackoff() : ExponentialBackoff(1, 64) {}

  /// Delay before retransmission number `attempt` (0-based): attempt 0 is
  /// the wait between the original send and the first retransmit.
  /// min(cap, initial * 2^attempt), overflow-safe.
  uint64_t DelayFor(uint32_t attempt) const {
    if (attempt >= 63) return cap_;
    uint64_t shifted = initial_ << attempt;
    // Detect overflow of the shift as well as exceeding the cap.
    if ((shifted >> attempt) != initial_ || shifted > cap_) return cap_;
    return shifted;
  }

  uint64_t initial() const { return initial_; }
  uint64_t cap() const { return cap_; }

 private:
  uint64_t initial_;
  uint64_t cap_;
};

}  // namespace disttrack

#endif  // DISTTRACK_COMMON_BACKOFF_H_
