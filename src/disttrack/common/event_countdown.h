// Per-site event countdowns: the shared scaffolding of the batched
// delivery engines (count, frequency, rank).
//
// While a batch is in flight, each site carries a countdown to its next
// *event* — whichever comes soonest of a coarse-tracker report, a
// skip-sampler coin success, a virtual-site split, or a leaf/chunk
// boundary, depending on the protocol. Eventless arrivals cost one
// 32-bit decrement; the deferred per-site state (exact counts, consumed
// coin failures, coarse advances) is reconciled lazily:
//
//  * when the countdown hits zero (TakeEventPrefix: the stride's
//    eventless prefix is retired in bulk, then the event arrival is
//    processed through the exact scalar path);
//  * when a broadcast fires mid-batch (Outstanding/Reconcile per site:
//    a new p invalidates scheduled coin successes, so every site's
//    consumed-but-unreconciled arrivals must be flushed first);
//  * at batch end.
//
// The countdown stores 32-bit values so the whole array stays within a
// couple of cache lines; Arm() clamps a larger true gap, which just
// schedules a harmless early reconciliation (the slow path re-derives
// every event from authoritative state, so an "event" arrival that turns
// out to be eventless is still processed exactly).

#ifndef DISTTRACK_COMMON_EVENT_COUNTDOWN_H_
#define DISTTRACK_COMMON_EVENT_COUNTDOWN_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace disttrack {

/// Countdown-to-next-event state for `k` sites. The owner drives the hot
/// loop through until() directly (one decrement per arrival) and calls
/// back into Arm/TakeEventPrefix/Reconcile at event and sync points.
class EventCountdown {
 public:
  void Resize(int num_sites) {
    until_.assign(static_cast<size_t>(num_sites), 0);
    stride_.assign(static_cast<size_t>(num_sites), 0);
  }

  /// Arms `site` with the gap (in arrivals, >= 1) to its next event,
  /// clamped to 32 bits.
  void Arm(int site, uint64_t gap) {
    uint32_t armed = static_cast<uint32_t>(
        std::min<uint64_t>(gap, std::numeric_limits<uint32_t>::max()));
    stride_[static_cast<size_t>(site)] = armed;
    until_[static_cast<size_t>(site)] = armed;
  }

  /// Arrivals consumed at `site` since it was last armed/reconciled —
  /// all eventless, none yet reflected in the owner's authoritative state.
  uint64_t Outstanding(int site) const {
    size_t i = static_cast<size_t>(site);
    return stride_[i] - until_[i];
  }

  /// Marks the outstanding arrivals of `site` reconciled (the owner has
  /// just retired them into its authoritative state).
  void Reconcile(int site) {
    size_t i = static_cast<size_t>(site);
    stride_[i] = until_[i];
  }

  /// The countdown of `site` just hit zero: returns the length of the
  /// stride's eventless prefix (stride - 1; the final arrival is the
  /// event) and zeroes the pair, so a broadcast fired while the event
  /// arrival is being processed sees nothing outstanding here.
  uint64_t TakeEventPrefix(int site) {
    size_t i = static_cast<size_t>(site);
    uint64_t prefix = stride_[i] - 1;
    stride_[i] = 0;
    until_[i] = 0;
    return prefix;
  }

  /// Raw countdown array for the hot loop: `--until()[site] == 0` tests
  /// whether this arrival is the armed event.
  uint32_t* until() { return until_.data(); }

 private:
  std::vector<uint32_t> until_;   // arrivals at site i before its next event
  std::vector<uint32_t> stride_;  // value until_[i] was last armed with
};

}  // namespace disttrack

#endif  // DISTTRACK_COMMON_EVENT_COUNTDOWN_H_
