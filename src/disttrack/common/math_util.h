// Small numeric helpers shared across protocols: the paper's floor-to-power-
// of-two operator, log helpers, and safe division.

#ifndef DISTTRACK_COMMON_MATH_UTIL_H_
#define DISTTRACK_COMMON_MATH_UTIL_H_

#include <cmath>
#include <cstdint>

namespace disttrack {

/// The paper's ⌊x⌋₂ operator: the largest power of two that is <= x.
/// Requires x >= 1 (returns 1 for x in [1, 2)).
inline uint64_t FloorPow2(double x) {
  uint64_t r = 1;
  while (static_cast<double>(r) * 2.0 <= x) r <<= 1;
  return r;
}

/// Smallest power of two >= x; requires x >= 1.
inline uint64_t CeilPow2(uint64_t x) {
  uint64_t r = 1;
  while (r < x) r <<= 1;
  return r;
}

/// True iff x is a power of two (and nonzero).
inline bool IsPow2(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Ceil of log2(x) for integer x >= 1; CeilLog2(1) == 0.
inline int CeilLog2(uint64_t x) {
  int l = 0;
  uint64_t r = 1;
  while (r < x) {
    r <<= 1;
    ++l;
  }
  return l;
}

/// Floor of log2(x) for integer x >= 1.
inline int FloorLog2(uint64_t x) {
  int l = 0;
  while (x >>= 1) ++l;
  return l;
}

/// Integer ceil division for nonnegative operands; b must be nonzero.
inline uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// x / y, or `fallback` when y == 0. Used in report generators where a
/// denominator can legitimately be zero (e.g., zero-communication runs).
inline double SafeDiv(double x, double y, double fallback = 0.0) {
  return y == 0.0 ? fallback : x / y;
}

}  // namespace disttrack

#endif  // DISTTRACK_COMMON_MATH_UTIL_H_
