// Deterministic drains for hash containers.
//
// Iterating a std::unordered_map/set visits elements in hash-layout
// order — a function of the library version, the bucket count history,
// and the insertion sequence. Any replay/estimate/emit path that walks
// one leaks that order into message sequences, exports, or folds, which
// is exactly the nondeterminism class PR 4 excised from rank's hot path.
// scripts/check_invariants.py (rule unordered-iter) therefore forbids
// iterating unordered containers anywhere in src/; these helpers are the
// one sanctioned walk. They visit the container once, then hand back
// key-sorted data, so every caller observes site-independent,
// platform-independent order.
//
// Cost is O(n log n) against the container's O(n) walk; callers are
// export/broadcast/snapshot paths where n is a summary size, not the
// stream length.

#ifndef DISTTRACK_COMMON_ORDERED_DRAIN_H_
#define DISTTRACK_COMMON_ORDERED_DRAIN_H_

#include <algorithm>
#include <utility>
#include <vector>

namespace disttrack {
namespace common {

/// Keys of an associative container, sorted ascending.
template <typename Container>
std::vector<typename Container::key_type> SortedKeys(const Container& c) {
  std::vector<typename Container::key_type> keys;
  keys.reserve(c.size());
  // The sanctioned hash-order walk: it only feeds the sort below, so the
  // order handed to callers is independent of hash layout.
  for (const auto& entry : c) keys.push_back(entry.first);
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// (key, mapped) pairs of a map-like container, sorted ascending by key.
template <typename Container>
std::vector<std::pair<typename Container::key_type,
                      typename Container::mapped_type>>
SortedItems(const Container& c) {
  std::vector<std::pair<typename Container::key_type,
                        typename Container::mapped_type>>
      items;
  items.reserve(c.size());
  // The sanctioned hash-order walk: it only feeds the sort below, so the
  // order handed to callers is independent of hash layout.
  for (const auto& entry : c) items.emplace_back(entry.first, entry.second);
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return items;
}

}  // namespace common
}  // namespace disttrack

#endif  // DISTTRACK_COMMON_ORDERED_DRAIN_H_
