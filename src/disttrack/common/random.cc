#include "disttrack/common/random.h"

#include <cmath>

namespace disttrack {

namespace {

inline uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int s) { return (x << s) | (x >> (64 - s)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : state_) lane = SplitMix64(&sm);
  // xoshiro's all-zero state is absorbing; SplitMix64 cannot produce four
  // zero lanes from any seed, but guard anyway for cheap insurance.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  // Lemire-style rejection to avoid modulo bias.
  uint64_t threshold = (-bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

uint64_t Rng::UniformRange(uint64_t lo, uint64_t hi) {
  if (lo == 0 && hi == ~0ull) return NextU64();
  return lo + UniformU64(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p >= 1.0) return true;
  if (p <= 0.0) return false;
  return NextDouble() < p;
}

bool Rng::BernoulliPow2(int log2_inv_p) {
  if (log2_inv_p <= 0) return true;
  while (log2_inv_p > 64) {
    if (NextU64() != 0) return false;
    log2_inv_p -= 64;
  }
  return (NextU64() >> (64 - log2_inv_p)) == 0;
}

uint64_t Rng::GeometricFailuresPow2(int log2_inv_p) {
  if (log2_inv_p <= 0) return 0;
  // Inversion at p = 2^-j. For j up to ~40 the double-precision CDF
  // inversion is exact to ~2^-53 relative error per draw, far below any
  // observable bias at simulation scale.
  return GeometricFailures(std::ldexp(1.0, -log2_inv_p));
}

int Rng::GeometricLevel() {
  int level = 0;
  for (;;) {
    uint64_t bits = NextU64();
    if (bits != ~0ull) {
      // Count the run of leading ones in this 64-bit block.
      while (bits & (1ull << 63)) {
        ++level;
        bits <<= 1;
      }
      return level;
    }
    level += 64;  // astronomically rare; continue the run
  }
}

uint64_t Rng::GeometricFailures(double p) {
  if (p >= 1.0) return 0;
  // Inversion: failures = floor(log(U) / log(1-p)) for U ~ Uniform(0,1].
  double u = 1.0 - NextDouble();  // in (0, 1]
  double draw = std::floor(std::log(u) / std::log1p(-p));
  if (draw < 0) return 0;
  return static_cast<uint64_t>(draw);
}

void Rng::SampleWithoutReplacement(uint64_t universe, uint64_t m,
                                   std::vector<uint32_t>* out) {
  out->clear();
  if (m == 0) return;
  std::vector<uint32_t> pool(universe);
  for (uint64_t i = 0; i < universe; ++i) pool[i] = static_cast<uint32_t>(i);
  for (uint64_t i = 0; i < m; ++i) {
    uint64_t j = i + UniformU64(universe - i);
    std::swap(pool[i], pool[j]);
  }
  out->assign(pool.begin(), pool.begin() + static_cast<long>(m));
}

}  // namespace disttrack
