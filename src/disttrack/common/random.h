// Deterministically seedable pseudo-random generator used by every
// randomized protocol in the library.
//
// We use xoshiro256** seeded through SplitMix64: fast, high quality, and —
// unlike std::mt19937_64 — identical across standard-library
// implementations, which keeps experiments reproducible everywhere.

#ifndef DISTTRACK_COMMON_RANDOM_H_
#define DISTTRACK_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace disttrack {

/// A seedable xoshiro256** PRNG with the sampling primitives the tracking
/// protocols need (Bernoulli trials, geometric levels, bounded uniforms).
///
/// Not thread-safe; each simulated site owns its own generator (or shares
/// the protocol's), which matches the paper's model of per-site private
/// random sources.
class Rng {
 public:
  /// Constructs a generator whose full state is derived from `seed` via
  /// SplitMix64. Equal seeds produce equal streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Returns the next 64 uniformly random bits.
  uint64_t NextU64();

  /// Returns a uniform draw from [0, bound). `bound` must be nonzero.
  /// Uses rejection sampling, so the result is exactly uniform.
  uint64_t UniformU64(uint64_t bound);

  /// Returns a uniform draw from [lo, hi]; requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// Returns a uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns true with probability exactly 2^-log2_inv_p, using a bitmask
  /// test on the raw 64-bit draw — no double conversion, no FP compare.
  /// The top `log2_inv_p` bits of a uniform word are a uniform
  /// `log2_inv_p`-bit integer, so they are all zero with probability
  /// exactly 2^-log2_inv_p. `log2_inv_p <= 0` returns true without
  /// consuming randomness; values >= 64 chain extra words.
  ///
  /// Every protocol in the paper flips coins at p = 1/⌊·⌋₂, i.e. 1/p is
  /// always a power of two. The trackers consume this coin process through
  /// SkipSampler (one geometric gap per success rather than one coin per
  /// arrival); BernoulliPow2 is the per-coin form of the same
  /// distribution, used as the reference in the skip-path property tests.
  bool BernoulliPow2(int log2_inv_p);

  /// GeometricFailures for success probability 2^-log2_inv_p.
  /// `log2_inv_p <= 0` returns 0.
  uint64_t GeometricFailuresPow2(int log2_inv_p);

  /// Returns the number of consecutive "heads" of a fair coin before the
  /// first "tail" — i.e., a Geometric(1/2) level, P(level >= j) = 2^-j.
  /// Used by the sampling baseline [9] for binary level sampling.
  int GeometricLevel();

  /// Returns the number of failures before the first success of a
  /// Bernoulli(p) sequence (a Geometric(p) draw counting failures).
  /// Requires 0 < p <= 1. Implemented by inversion, so it is O(1).
  uint64_t GeometricFailures(double p);

  /// Fisher–Yates-style draw of a uniformly random subset of size `m` from
  /// {0, ..., universe-1}, written into `out` (cleared first).
  /// Requires m <= universe. Cost O(universe) — intended for test/workload
  /// generation, not hot paths.
  void SampleWithoutReplacement(uint64_t universe, uint64_t m,
                                std::vector<uint32_t>* out);

  /// Copies the full 256-bit generator state into `out[0..3]`. Together
  /// with RestoreState this makes a site's private randomness part of its
  /// crash snapshot: a restored site replays exactly the coin sequence the
  /// lost execution would have drawn.
  void SaveState(uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = state_[i];
  }

  /// Restores a state captured by SaveState. The caller is responsible for
  /// never restoring the all-zero state (xoshiro's one forbidden point);
  /// SaveState can never produce it from a SplitMix64-seeded generator.
  void RestoreState(const uint64_t in[4]) {
    for (int i = 0; i < 4; ++i) state_[i] = in[i];
  }

 private:
  uint64_t state_[4];
};

}  // namespace disttrack

#endif  // DISTTRACK_COMMON_RANDOM_H_
