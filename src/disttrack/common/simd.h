// The repo's single SIMD seam: every intrinsic lives in this header, each
// kernel next to the scalar mirror that defines its semantics (enforced by
// the `simd-isolation` lint rule — see docs/STATIC_ANALYSIS.md).
//
// Dispatch contract. Kernels are compiled with per-function
// `target("avx2")` attributes, so the surrounding translation units keep
// the portable baseline ISA and one binary serves every x86-64 machine:
// the vector path is taken only when (a) the build enabled it
// (`DISTTRACK_SIMD`, default ON — compiled out entirely when OFF, making
// that build token-for-token the scalar tree), (b) cpuid reports AVX2 at
// runtime, and (c) neither the `DISTTRACK_SIMD_DISPATCH=scalar`
// environment override nor SetDispatchMode(kForceScalar) is in effect.
// The env override is how CI proves the scalar fallback on the same
// binary; SetDispatchMode is how the bench and the kernel differential
// test flip modes in-process.
//
// Determinism contract (docs/ARCHITECTURE.md "SIMD kernels & dispatch").
// Every kernel here is RNG-free and value-exact: sorted/merged uint64
// output is a pure function of the input multiset, a probe-group match is
// a pure function of the ctrl bytes, and a merge-path selection is a pure
// function of the two arrays. Flipping dispatch therefore cannot move a
// coin draw, a CommMeter charge, or an estimate by even an ulp — all SIMD
// paths stay in determinism tier A, pinned by tests/simd_kernel_test.cc
// differentials plus the existing bit-identity tiers run in both dispatch
// modes.

#ifndef DISTTRACK_COMMON_SIMD_H_
#define DISTTRACK_COMMON_SIMD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(DISTTRACK_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define DISTTRACK_SIMD_ENABLED 1
#include <immintrin.h>
#define DISTTRACK_TARGET_AVX2 __attribute__((target("avx2")))
#else
#define DISTTRACK_SIMD_ENABLED 0
#endif

namespace disttrack {
namespace simd {

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

enum class DispatchMode {
  kAuto,         // AVX2 iff compiled in, cpuid-supported, and no env override
  kForceScalar,  // scalar mirrors everywhere (bench A/B, CI fallback leg)
};

namespace internal {

inline int ComputeDispatch() {
#if DISTTRACK_SIMD_ENABLED
  const char* env = std::getenv("DISTTRACK_SIMD_DISPATCH");
  if (env != nullptr && std::strcmp(env, "scalar") == 0) return 0;
  return __builtin_cpu_supports("avx2") ? 1 : 0;
#else
  return 0;
#endif
}

// -1 = undecided, 0 = scalar, 1 = avx2. A relaxed atomic: the value is
// write-once in normal runs (bench/tests flip it only between phases).
inline std::atomic<int>& DispatchState() {
  static std::atomic<int> state{-1};
  return state;
}

}  // namespace internal

/// True when kernels will take the AVX2 path. Cheap enough to query per
/// call (one relaxed load + compare after first use).
inline bool Avx2Active() {
  int s = internal::DispatchState().load(std::memory_order_relaxed);
  if (s < 0) {
    s = internal::ComputeDispatch();
    internal::DispatchState().store(s, std::memory_order_relaxed);
  }
  return s == 1;
}

/// Bench/test hook: kForceScalar pins every kernel to its scalar mirror;
/// kAuto re-derives from the build/cpuid/env rule. Not for library code.
inline void SetDispatchMode(DispatchMode mode) {
  internal::DispatchState().store(
      mode == DispatchMode::kForceScalar ? 0 : internal::ComputeDispatch(),
      std::memory_order_relaxed);
}

/// True when the AVX2 kernels exist in this binary at all.
inline bool CompiledWithSimd() { return DISTTRACK_SIMD_ENABLED != 0; }

// ---------------------------------------------------------------------------
// Ctrl-byte group probe (CounterTable)
//
// SwissTable-style: one 32-byte load of the control mirror answers "which
// of the next 32 probe positions carry this fingerprint, and which are
// empty" as two bitmasks. The caller visits match bits below the first
// empty bit — exactly the scalar linear-probe visit order.
// ---------------------------------------------------------------------------

inline constexpr size_t kCtrlGroupWidth = 32;

struct CtrlGroup {
  uint32_t match;  // bit i: ctrl[i] == fp
  uint32_t empty;  // bit i: ctrl[i] == 0
};

inline CtrlGroup MatchCtrlGroupScalar(const uint8_t* ctrl, uint8_t fp) {
  CtrlGroup g{0, 0};
  for (uint32_t i = 0; i < kCtrlGroupWidth; ++i) {
    g.match |= static_cast<uint32_t>(ctrl[i] == fp) << i;
    g.empty |= static_cast<uint32_t>(ctrl[i] == 0) << i;
  }
  return g;
}

#if DISTTRACK_SIMD_ENABLED
DISTTRACK_TARGET_AVX2 inline CtrlGroup MatchCtrlGroupAvx2(const uint8_t* ctrl,
                                                          uint8_t fp) {
  __m256i g =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ctrl));
  uint32_t match = static_cast<uint32_t>(_mm256_movemask_epi8(
      _mm256_cmpeq_epi8(g, _mm256_set1_epi8(static_cast<char>(fp)))));
  uint32_t empty = static_cast<uint32_t>(_mm256_movemask_epi8(
      _mm256_cmpeq_epi8(g, _mm256_setzero_si256())));
  return CtrlGroup{match, empty};
}
#endif

inline CtrlGroup MatchCtrlGroup(const uint8_t* ctrl, uint8_t fp) {
#if DISTTRACK_SIMD_ENABLED
  if (Avx2Active()) return MatchCtrlGroupAvx2(ctrl, fp);
#endif
  return MatchCtrlGroupScalar(ctrl, fp);
}

// ---------------------------------------------------------------------------
// In-register sorting networks for uint64 (small_sort.h's <=16 regime)
//
// Four ymm registers hold a 4x4 matrix of sign-flipped values (AVX2 has
// only signed 64-bit compares; x ^ 2^63 order-embeds unsigned into
// signed). Column-sort + transpose yields four ascending 4-runs; bitonic
// mergers fuse them to 8 and 16. Short inputs are padded with UINT64_MAX,
// so the first n outputs are the sorted input regardless of n.
// ---------------------------------------------------------------------------

#if DISTTRACK_SIMD_ENABLED
namespace internal {

DISTTRACK_TARGET_AVX2 inline __m256i SignFlip(__m256i v) {
  return _mm256_xor_si256(
      v, _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ull)));
}

DISTTRACK_TARGET_AVX2 inline __m256i Min64(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b));
}

DISTTRACK_TARGET_AVX2 inline __m256i Max64(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(b, a, _mm256_cmpgt_epi64(a, b));
}

// Vertical compare-exchange: per lane, a <- min, b <- max.
DISTTRACK_TARGET_AVX2 inline void Coex(__m256i& a, __m256i& b) {
  __m256i lo = Min64(a, b);
  b = Max64(a, b);
  a = lo;
}

// Intra-register compare-exchange of lane pairs (0,1)(2,3).
DISTTRACK_TARGET_AVX2 inline __m256i CoexPairs(__m256i v) {
  __m256i y = _mm256_permute4x64_epi64(v, 0xB1);  // lanes 1,0,3,2
  return _mm256_blend_epi32(Min64(v, y), Max64(v, y), 0xCC);
}

// Intra-register compare-exchange of lane pairs (0,2)(1,3).
DISTTRACK_TARGET_AVX2 inline __m256i CoexHalves(__m256i v) {
  __m256i y = _mm256_permute4x64_epi64(v, 0x4E);  // lanes 2,3,0,1
  return _mm256_blend_epi32(Min64(v, y), Max64(v, y), 0xF0);
}

// Full 4-element sorting network inside one register.
DISTTRACK_TARGET_AVX2 inline __m256i Sort4(__m256i v) {
  v = CoexPairs(v);   // (0,1)(2,3)
  v = CoexHalves(v);  // (0,2)(1,3)
  __m256i y = _mm256_permute4x64_epi64(v, 0xD8);  // lanes 0,2,1,3
  return _mm256_blend_epi32(Min64(v, y), Max64(v, y), 0x30);  // (1,2)
}

// Cleans a 4-lane bitonic sequence into ascending order.
DISTTRACK_TARGET_AVX2 inline __m256i BitonicClean4(__m256i v) {
  return CoexPairs(CoexHalves(v));
}

DISTTRACK_TARGET_AVX2 inline __m256i Reverse4(__m256i v) {
  return _mm256_permute4x64_epi64(v, 0x1B);  // lanes 3,2,1,0
}

// a, b ascending 4-runs -> (a, b) one ascending 8-run.
DISTTRACK_TARGET_AVX2 inline void Merge8(__m256i& a, __m256i& b) {
  b = Reverse4(b);
  Coex(a, b);
  a = BitonicClean4(a);
  b = BitonicClean4(b);
}

// (a0,a1), (b0,b1) ascending 8-runs -> a0,a1,b0,b1 one ascending 16-run.
DISTTRACK_TARGET_AVX2 inline void Merge16(__m256i& a0, __m256i& a1,
                                          __m256i& b0, __m256i& b1) {
  __m256i r0 = Reverse4(b1);
  __m256i r1 = Reverse4(b0);
  Coex(a0, r0);
  Coex(a1, r1);
  Coex(a0, a1);
  a0 = BitonicClean4(a0);
  a1 = BitonicClean4(a1);
  Coex(r0, r1);
  b0 = BitonicClean4(r0);
  b1 = BitonicClean4(r1);
}

// 4x4 transpose of 64-bit lanes across four registers.
DISTTRACK_TARGET_AVX2 inline void Transpose4x4(__m256i& r0, __m256i& r1,
                                               __m256i& r2, __m256i& r3) {
  __m256i t0 = _mm256_unpacklo_epi64(r0, r1);
  __m256i t1 = _mm256_unpackhi_epi64(r0, r1);
  __m256i t2 = _mm256_unpacklo_epi64(r2, r3);
  __m256i t3 = _mm256_unpackhi_epi64(r2, r3);
  r0 = _mm256_permute2x128_si256(t0, t2, 0x20);
  r1 = _mm256_permute2x128_si256(t1, t3, 0x20);
  r2 = _mm256_permute2x128_si256(t0, t2, 0x31);
  r3 = _mm256_permute2x128_si256(t1, t3, 0x31);
}

DISTTRACK_TARGET_AVX2 inline void SortSmallAvx2(uint64_t* v, size_t n) {
  alignas(32) uint64_t buf[16];
  // Copy into the flipped domain; pad with +inf (flipped UINT64_MAX).
  for (size_t i = 0; i < n; ++i) buf[i] = v[i] ^ 0x8000000000000000ull;
  size_t width = n <= 8 ? 8 : 16;
  for (size_t i = n; i < width; ++i) buf[i] = 0x7FFFFFFFFFFFFFFFull;
  __m256i r0 = _mm256_load_si256(reinterpret_cast<const __m256i*>(buf));
  __m256i r1 = _mm256_load_si256(reinterpret_cast<const __m256i*>(buf + 4));
  if (width == 8) {
    r0 = Sort4(r0);
    r1 = Sort4(r1);
    Merge8(r0, r1);
  } else {
    __m256i r2 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(buf + 8));
    __m256i r3 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(buf + 12));
    // Sort the four lane-columns vertically, transpose to four ascending
    // 4-runs, then bitonic-merge 4+4 and 8+8.
    Coex(r0, r2);
    Coex(r1, r3);
    Coex(r0, r1);
    Coex(r2, r3);
    Coex(r1, r2);
    Transpose4x4(r0, r1, r2, r3);
    Merge8(r0, r1);
    Merge8(r2, r3);
    Merge16(r0, r1, r2, r3);
    _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 8), r2);
    _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 12), r3);
  }
  _mm256_store_si256(reinterpret_cast<__m256i*>(buf), r0);
  _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 4), r1);
  for (size_t i = 0; i < n; ++i) v[i] = buf[i] ^ 0x8000000000000000ull;
}

}  // namespace internal
#endif  // DISTTRACK_SIMD_ENABLED

/// Below this the scalar network beats the register sort: the vector path
/// always runs the full 16-lane network (shorter inputs pad with +inf), so
/// at n=5..8 it does 2-3x the useful work plus the out-of-line avx2 call.
/// Measured on the reference container (Xeon 2.1GHz, varied inputs):
/// 0.58x at n=5, 0.74x at n=8, 1.03x at n=12, 1.34x at n=16.
inline constexpr size_t kRegisterSortMin = 12;

/// Sorts v[0, n) ascending in registers when the AVX2 path is active and
/// kRegisterSortMin <= n <= 16; returns false (input untouched) otherwise
/// so the caller runs its scalar network. Output equals std::sort for any
/// input.
inline bool SortSmall16(uint64_t* v, size_t n) {
#if DISTTRACK_SIMD_ENABLED
  if (n >= kRegisterSortMin && n <= 16 && Avx2Active()) {
    internal::SortSmallAvx2(v, n);
    return true;
  }
#else
  (void)v;
  (void)n;
#endif
  return false;
}

// ---------------------------------------------------------------------------
// Two-array merge (run_ladder's gap-merge inner loop)
//
// Blockwise bitonic merge: a 4-lane carry of the smallest unemitted
// values is merged with a 4-block from whichever input's head is
// smaller; the low half is emitted, the high half carries. The uint64
// output multiset is sorted either way, so the result is byte-identical
// to std::merge.
// ---------------------------------------------------------------------------

inline void MergeSortedScalar(const uint64_t* a, size_t na, const uint64_t* b,
                              size_t nb, uint64_t* out) {
  size_t i = 0;
  size_t j = 0;
  while (i < na && j < nb) *out++ = a[i] <= b[j] ? a[i++] : b[j++];
  while (i < na) *out++ = a[i++];
  while (j < nb) *out++ = b[j++];
}

#if DISTTRACK_SIMD_ENABLED
namespace internal {

DISTTRACK_TARGET_AVX2 inline void MergeSortedAvx2(const uint64_t* a,
                                                  size_t na, const uint64_t* b,
                                                  size_t nb, uint64_t* out) {
  const uint64_t* pa = a;
  const uint64_t* pb = b;
  const uint64_t* ea = a + na;
  const uint64_t* eb = b + nb;
  uint64_t* po = out;
  alignas(32) uint64_t cbuf[4];
  size_t cn = 0;
  if (na >= 4 && nb >= 4) {
    __m256i va = SignFlip(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pa)));
    __m256i vb = SignFlip(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb)));
    pa += 4;
    pb += 4;
    Merge8(va, vb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(po), SignFlip(va));
    po += 4;
    __m256i carry = vb;
    while (pa + 4 <= ea && pb + 4 <= eb) {
      const uint64_t* src;
      if (*pa <= *pb) {
        src = pa;
        pa += 4;
      } else {
        src = pb;
        pb += 4;
      }
      __m256i v = SignFlip(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src)));
      Merge8(v, carry);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(po), SignFlip(v));
      po += 4;
    }
    _mm256_store_si256(reinterpret_cast<__m256i*>(cbuf), SignFlip(carry));
    cn = 4;
  }
  // Three-way scalar finish: carry (sorted) + both tails.
  size_t ci = 0;
  for (;;) {
    int which = -1;
    uint64_t best = 0;
    if (ci < cn) {
      best = cbuf[ci];
      which = 0;
    }
    if (pa < ea && (which < 0 || *pa < best)) {
      best = *pa;
      which = 1;
    }
    if (pb < eb && (which < 0 || *pb < best)) {
      best = *pb;
      which = 2;
    }
    if (which < 0) break;
    *po++ = best;
    if (which == 0) {
      ++ci;
    } else if (which == 1) {
      ++pa;
    } else {
      ++pb;
    }
  }
}

}  // namespace internal
#endif  // DISTTRACK_SIMD_ENABLED

/// Merges ascending a[0,na) and b[0,nb) into out[0, na+nb), ascending.
/// `out` must not alias the inputs. Byte-identical to std::merge output.
///
/// The 16/16 floor is measured (reference container, fresh inputs each
/// call so the branch predictor cannot memorize a merge sequence): the
/// bitonic path wins 1.3-1.6x from 16+16 up, but loses (0.60x at 8+8)
/// below it, where the call + vzeroupper overhead dominates.
inline void MergeSorted(const uint64_t* a, size_t na, const uint64_t* b,
                        size_t nb, uint64_t* out) {
#if DISTTRACK_SIMD_ENABLED
  if (Avx2Active() && na >= 16 && nb >= 16) {
    internal::MergeSortedAvx2(a, na, b, nb, out);
    return;
  }
#endif
  MergeSortedScalar(a, na, b, nb, out);
}

// ---------------------------------------------------------------------------
// Two-array merge-path selection (compactor_summary's 2-view accessor)
//
// TwoViewSelect is the classic selection: element at sorted position i of
// the merge of two ascending arrays, by binary-searching the split point.
// TwoViewSelect4 resolves four independent selections at once — the four
// binary searches advance lane-parallel with masked gathers, turning the
// accessor's dependent-load chain into overlapped lanes.
// ---------------------------------------------------------------------------

inline uint64_t TwoViewSelect(const uint64_t* A, size_t a, const uint64_t* B,
                              size_t b, size_t i) {
  size_t need = i + 1;
  size_t lo = need > b ? need - b : 0;
  size_t hi = need < a ? need : a;
  while (lo < hi) {
    size_t j = (lo + hi) / 2;
    if (A[j] < B[need - j - 1]) {
      lo = j + 1;
    } else {
      hi = j;
    }
  }
  size_t j = lo;
  if (j == 0) return B[need - 1];
  if (need == j) return A[j - 1];
  uint64_t va = A[j - 1];
  uint64_t vb = B[need - j - 1];
  return va > vb ? va : vb;
}

#if DISTTRACK_SIMD_ENABLED
namespace internal {

DISTTRACK_TARGET_AVX2 inline void TwoViewSelect4Avx2(
    const uint64_t* A, size_t a, const uint64_t* B, size_t b,
    const size_t idx[4], uint64_t* out) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i av = _mm256_set1_epi64x(static_cast<long long>(a));
  const __m256i bv = _mm256_set1_epi64x(static_cast<long long>(b));
  __m256i need = _mm256_add_epi64(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx)), one);
  // lo = max(need - b, 0); hi = min(need, a). All quantities < 2^63, so
  // signed 64-bit compares are exact.
  __m256i d = _mm256_sub_epi64(need, bv);
  __m256i lo = _mm256_and_si256(d, _mm256_cmpgt_epi64(d, zero));
  __m256i hi = _mm256_blendv_epi8(av, need, _mm256_cmpgt_epi64(av, need));
  const auto* ap = reinterpret_cast<const long long*>(A);
  const auto* bp = reinterpret_cast<const long long*>(B);
  for (;;) {
    __m256i active = _mm256_cmpgt_epi64(hi, lo);
    if (_mm256_movemask_epi8(active) == 0) break;
    __m256i j = _mm256_srli_epi64(_mm256_add_epi64(lo, hi), 1);
    __m256i bj = _mm256_sub_epi64(_mm256_sub_epi64(need, j), one);
    __m256i va = _mm256_mask_i64gather_epi64(zero, ap, j, active, 8);
    __m256i vb = _mm256_mask_i64gather_epi64(zero, bp, bj, active, 8);
    // A[j] < B[need-j-1], unsigned: compare in the sign-flipped domain.
    __m256i take = _mm256_cmpgt_epi64(SignFlip(vb), SignFlip(va));
    lo = _mm256_blendv_epi8(lo, _mm256_add_epi64(j, one),
                            _mm256_and_si256(active, take));
    hi = _mm256_blendv_epi8(hi, j, _mm256_andnot_si256(take, active));
  }
  __m256i j = lo;
  __m256i a_ok = _mm256_cmpgt_epi64(j, zero);          // j > 0
  __m256i b_ok = _mm256_cmpgt_epi64(need, j);          // need > j
  __m256i va = _mm256_mask_i64gather_epi64(
      zero, ap, _mm256_sub_epi64(j, one), a_ok, 8);
  __m256i vb = _mm256_mask_i64gather_epi64(
      zero, bp, _mm256_sub_epi64(_mm256_sub_epi64(need, j), one), b_ok, 8);
  // Inactive sides gathered 0, the unsigned minimum, so an unsigned max
  // picks the defined side (both inactive is impossible: need >= 1).
  __m256i fa = SignFlip(va);
  __m256i fb = SignFlip(vb);
  __m256i r = SignFlip(_mm256_blendv_epi8(fa, fb, _mm256_cmpgt_epi64(fb, fa)));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), r);
}

}  // namespace internal
#endif  // DISTTRACK_SIMD_ENABLED

/// Resolves out[t] = TwoViewSelect(A, a, B, b, idx[t]) for t in [0, 4).
///
/// Dispatches scalar at every size: the gather variant measured 0.35x at
/// view sizes 32-128 and 0.75x at 1024 on the reference container. Masked
/// 64-bit gathers cost ~12 cycles each there, the lane-parallel loop runs
/// to the slowest lane's convergence, and the scalar fallback's adjacent
/// queries walk nearly identical well-predicted search paths. The AVX2
/// body stays compiled and differentially tested (simd_kernel_test) so
/// the demotion is one line to revisit on wider-gather hardware.
inline void TwoViewSelect4(const uint64_t* A, size_t a, const uint64_t* B,
                           size_t b, const size_t idx[4], uint64_t* out) {
  for (int t = 0; t < 4; ++t) out[t] = TwoViewSelect(A, a, B, b, idx[t]);
}

}  // namespace simd
}  // namespace disttrack

#endif  // DISTTRACK_COMMON_SIMD_H_
