#include "disttrack/common/site_group.h"

namespace disttrack {

void SiteGrouper::BuildSpans(int num_sites, bool keyed) {
  spans_.clear();
  for (int s = 0; s < num_sites; ++s) {
    uint32_t h = hist_[static_cast<size_t>(s)];
    if (h == 0) continue;
    Span span;
    span.site = s;
    span.length = h;
    span.data = keyed ? site_keys_[static_cast<size_t>(s)].data() : nullptr;
    spans_.push_back(span);
  }
}

void SiteGrouper::CountArrivals(const sim::Arrival* arrivals, size_t count,
                                int num_sites) {
  hist_.assign(static_cast<size_t>(num_sites), 0);
  for (size_t i = 0; i < count; ++i) {
    sim::CheckSiteInRange(arrivals[i].site, num_sites);
    ++hist_[static_cast<size_t>(arrivals[i].site)];
  }
  BuildSpans(num_sites, /*keyed=*/false);
}

void SiteGrouper::CountSites(const uint16_t* sites, size_t count,
                             int num_sites) {
  hist_.assign(static_cast<size_t>(num_sites), 0);
  const unsigned k = static_cast<unsigned>(num_sites);
  for (size_t i = 0; i < count; ++i) {
    unsigned site = sites[i];
    if (site >= k) sim::CheckSiteInRange(static_cast<int>(site), num_sites);
    ++hist_[site];
  }
  BuildSpans(num_sites, /*keyed=*/false);
}

void SiteGrouper::ScatterBySite(const sim::Arrival* arrivals, size_t count,
                                int num_sites) {
  size_t k = static_cast<size_t>(num_sites);
  if (site_keys_.size() < k) site_keys_.resize(k);
  cursors_.resize(k);
  for (size_t s = 0; s < k; ++s) {
    // Seed each site's backing store with a small capacity; the rare
    // cur == end overflow below grows it geometrically, so steady-state
    // chunks scatter with no vector bookkeeping at all.
    auto& buf = site_keys_[s];
    if (buf.empty()) buf.resize(64);
    cursors_[s] = {buf.data(), buf.data() + buf.size()};
  }
  auto* cur = cursors_.data();
  for (size_t i = 0; i < count; ++i) {
    int site = arrivals[i].site;
    sim::CheckSiteInRange(site, num_sites);
    auto& c = cur[static_cast<size_t>(site)];
    if (c.first == c.second) {
      auto& buf = site_keys_[static_cast<size_t>(site)];
      size_t used = buf.size();
      buf.resize(buf.size() * 2);
      c = {buf.data() + used, buf.data() + buf.size()};
    }
    *c.first++ = arrivals[i].key;
  }
  hist_.assign(k, 0);
  for (size_t s = 0; s < k; ++s) {
    hist_[s] = static_cast<uint32_t>(
        cur[s].first - site_keys_[s].data());
  }
  BuildSpans(num_sites, /*keyed=*/true);
}

}  // namespace disttrack
