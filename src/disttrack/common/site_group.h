// Site-grouped batch delivery: the shared permutation layer of the serial
// grouped engines (count, frequency, rank).
//
// All per-arrival randomness in the paper's trackers lives in independent
// per-site coin streams, and the only cross-site coupling is the
// CoarseTracker broadcast. Inside a batch that provably contains no
// broadcast (see CoarseTracker::BatchCannotBroadcast), arrivals can
// therefore be permuted into site-contiguous spans without changing a
// single coin draw: each site still sees its own arrivals in stream order
// and consumes its private RNG at the same per-site offsets — the same
// contract sim::ParallelCluster exploits, minus the per-element plan walk.
// Processing one site's span end-to-end keeps that site's working set
// (counter table, run buffer, ladder, compactor nodes) cache-resident
// instead of thrashing k of them per cache line of the arrival stream.
//
// SiteGrouper is the reusable permutation: a stable scatter of one batch
// into per-site spans, with all scratch pooled across calls (a
// steady-state replay groups without allocating). Keyed trackers scatter
// the 8-byte keys in ONE pass over the batch (per-site pooled buffers;
// the histogram falls out of the buffer sizes, so the broadcast-safety
// check runs after the scatter and an unsafe chunk wastes only that one
// pass); the count tracker needs only the histogram — its spans are just
// counts.

#ifndef DISTTRACK_COMMON_SITE_GROUP_H_
#define DISTTRACK_COMMON_SITE_GROUP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "disttrack/sim/protocol.h"

namespace disttrack {

/// Chunk size of the grouped engines: large enough to amortize the O(k)
/// per-chunk work and the broadcast-safety check, small enough that the
/// scatter scratch (8 bytes/element keyed) stays cache-resident and an
/// unsafe chunk's countdown fallback stays fine-grained.
inline constexpr size_t kSiteGroupChunk = size_t{1} << 14;

/// Stable scatter of an arrival batch into per-site spans. One instance
/// per tracker; scratch buffers are reused across calls.
class SiteGrouper {
 public:
  /// One site's slice of the grouped batch, in that site's stream order.
  /// `data` points into pooled grouper storage (ScatterBySite only;
  /// null after the histogram-only passes) and stays valid until the
  /// next mutating call.
  struct Span {
    int site = 0;
    uint32_t length = 0;  // > 0 (empty sites produce no span)
    const uint64_t* data = nullptr;
  };

  /// Histogram + spans of a batch, payload left in place — the count
  /// tracker's whole grouping (its spans are plain counts). Aborts on
  /// out-of-range site ids (the delivery-path contract of
  /// sim::CheckSiteInRange).
  void CountArrivals(const sim::Arrival* arrivals, size_t count,
                     int num_sites);

  /// CountArrivals over a compact site stream.
  void CountSites(const uint16_t* sites, size_t count, int num_sites);

  /// One-pass keyed grouping: appends each arrival's key to its site's
  /// pooled buffer in stream order and derives histogram() and spans()
  /// from the result. Aborts on out-of-range site ids.
  void ScatterBySite(const sim::Arrival* arrivals, size_t count,
                     int num_sites);

  /// Per-site arrival counts of the last pass (num_sites entries).
  const uint32_t* histogram() const { return hist_.data(); }

  /// Spans of the last pass, ascending by site; empty sites are skipped.
  const std::vector<Span>& spans() const { return spans_; }

 private:
  // Rebuilds spans_ from hist_ (keyed spans point into site_keys_).
  void BuildSpans(int num_sites, bool keyed);

  std::vector<uint32_t> hist_;
  std::vector<Span> spans_;
  std::vector<std::vector<uint64_t>> site_keys_;  // pooled scatter buffers
  // Raw write cursors into site_keys_ (cur/end per site): the scatter
  // inner loop costs one bounds compare and two stores, no vector
  // bookkeeping.
  std::vector<std::pair<uint64_t*, uint64_t*>> cursors_;
};

}  // namespace disttrack

#endif  // DISTTRACK_COMMON_SITE_GROUP_H_
