// Geometric skip sampling (Vitter-style) for per-arrival Bernoulli(p)
// coins: instead of flipping one coin per arrival, draw the gap to the
// next success once and count arrivals down, so the expected per-arrival
// cost drops from one full RNG draw to one decrement.
//
// Exactness. For an i.i.d. Bernoulli(p) coin sequence, the number of
// failures before the first success is Geometric(p) (counting failures),
// and by independence the gaps between consecutive successes are i.i.d.
// Geometric(p). A SkipSampler therefore reproduces the success/failure
// process of per-arrival coins *exactly in distribution*: Next() returns
// true on arrival t iff t is a success index of such a sequence.
//
// Changing p mid-stream. The skip counter only encodes coins that have
// not been consumed yet, and future coins are independent of everything
// already observed. Discarding the outstanding skip and redrawing at the
// new p (Reset/ResetPow2) therefore yields a process identical in
// distribution to flipping per-arrival coins whose probability switches
// at the same point — this is what the trackers do on every p-halving
// broadcast (§2.1 / §3.1 / §4 round transitions). The alternative,
// thinning the old skip, is also exact but costs the same RNG work for
// more code; we redraw.
//
// The skip counter is itself drawn by O(1) inversion (Rng::
// GeometricFailures), so re-arming on a broadcast is cheap.

#ifndef DISTTRACK_COMMON_SKIP_SAMPLER_H_
#define DISTTRACK_COMMON_SKIP_SAMPLER_H_

#include <cstdint>

#include "disttrack/common/random.h"

namespace disttrack {

/// Counts down the gap to the next Bernoulli(p) success. Not thread-safe;
/// one instance per (site, coin channel), matching the per-site private
/// randomness of the model.
class SkipSampler {
 public:
  /// Arms the sampler for success probability 2^-log2_inv_p (the paper's
  /// p = 1/⌊·⌋₂ coins). Discards any outstanding skip.
  void ResetPow2(int log2_inv_p, Rng* rng) {
    pow2_ = true;
    log2_inv_p_ = log2_inv_p > 0 ? log2_inv_p : 0;
    skip_ = rng->GeometricFailuresPow2(log2_inv_p_);
  }

  /// Arms the sampler for a general success probability p in (0, 1].
  /// Discards any outstanding skip.
  void Reset(double p, Rng* rng) {
    pow2_ = false;
    p_ = p;
    skip_ = rng->GeometricFailures(p);
  }

  /// Consumes one arrival's coin: true iff this arrival is a success.
  /// On success the gap to the following success is redrawn.
  bool Next(Rng* rng) {
    if (skip_ > 0) {
      --skip_;
      return false;
    }
    skip_ = pow2_ ? rng->GeometricFailuresPow2(log2_inv_p_)
                  : rng->GeometricFailures(p_);
    return true;
  }

  /// Consumes `count` arrivals known to be failures in one step; requires
  /// count <= pending_skips(). Batch engines use this to retire a run of
  /// eventless arrivals without per-element Next() calls.
  void ConsumeFailures(uint64_t count) { skip_ -= count; }

  /// Arrivals that will fail before the next success (diagnostics/tests).
  uint64_t pending_skips() const { return skip_; }

 private:
  uint64_t skip_ = 0;
  int log2_inv_p_ = 0;  // pow2 mode: success probability 2^-log2_inv_p_
  double p_ = 1.0;      // general mode: success probability
  bool pow2_ = true;
};

}  // namespace disttrack

#endif  // DISTTRACK_COMMON_SKIP_SAMPLER_H_
