// Geometric skip sampling (Vitter-style) for per-arrival Bernoulli(p)
// coins: instead of flipping one coin per arrival, draw the gap to the
// next success once and count arrivals down, so the expected per-arrival
// cost drops from one full RNG draw to one decrement.
//
// Exactness. For an i.i.d. Bernoulli(p) coin sequence, the number of
// failures before the first success is Geometric(p) (counting failures),
// and by independence the gaps between consecutive successes are i.i.d.
// Geometric(p). A SkipSampler therefore reproduces the success/failure
// process of per-arrival coins *exactly in distribution*: Next() returns
// true on arrival t iff t is a success index of such a sequence.
//
// Changing p mid-stream. The skip counter only encodes coins that have
// not been consumed yet, and future coins are independent of everything
// already observed. Discarding the outstanding skip and redrawing at the
// new p (Reset/ResetPow2) therefore yields a process identical in
// distribution to flipping per-arrival coins whose probability switches
// at the same point — this is what the trackers do on every p-halving
// broadcast (§2.1 / §3.1 / §4 round transitions). The alternative,
// thinning the old skip, is also exact but costs the same RNG work for
// more code; we redraw.
//
// The skip counter is itself drawn by O(1) inversion, so re-arming on a
// broadcast is cheap. The sampler caches 1/log(1-p) at Reset time, so a
// redraw costs one uniform, one log, and one multiply — the same
// inversion Rng::GeometricFailures performs, minus its per-draw log1p
// and division (identical in distribution; the ulp-level floor
// difference between a/b and a*(1/b) is far below any observable bias).

#ifndef DISTTRACK_COMMON_SKIP_SAMPLER_H_
#define DISTTRACK_COMMON_SKIP_SAMPLER_H_

#include <cmath>
#include <cstdint>

#include "disttrack/common/random.h"

namespace disttrack {

/// Counts down the gap to the next Bernoulli(p) success. Not thread-safe;
/// one instance per (site, coin channel), matching the per-site private
/// randomness of the model.
class SkipSampler {
 public:
  /// Arms the sampler for success probability 2^-log2_inv_p (the paper's
  /// p = 1/⌊·⌋₂ coins). Discards any outstanding skip.
  void ResetPow2(int log2_inv_p, Rng* rng) {
    if (log2_inv_p <= 0) {
      inv_log_ = 0.0;  // p = 1: every draw is an immediate success
    } else if (log2_inv_p >= 64) {
      inv_log_ = 1.0 / std::log1p(-std::ldexp(1.0, -log2_inv_p));
    } else {
      inv_log_ = InvLog1mPow2Table()[log2_inv_p];
    }
    skip_ = Draw(rng);
  }

  /// Arms the sampler for a general success probability p in (0, 1].
  /// Discards any outstanding skip.
  void Reset(double p, Rng* rng) {
    inv_log_ = p >= 1.0 ? 0.0 : 1.0 / std::log1p(-p);
    skip_ = Draw(rng);
  }

  /// Consumes one arrival's coin: true iff this arrival is a success.
  /// On success the gap to the following success is redrawn.
  bool Next(Rng* rng) {
    if (skip_ > 0) {
      --skip_;
      return false;
    }
    skip_ = Draw(rng);
    return true;
  }

  /// Consumes `count` arrivals known to be failures in one step; requires
  /// count <= pending_skips(). Batch engines use this to retire a run of
  /// eventless arrivals without per-element Next() calls.
  void ConsumeFailures(uint64_t count) { skip_ -= count; }

  /// Arrivals that will fail before the next success (diagnostics/tests).
  uint64_t pending_skips() const { return skip_; }

  /// Raw state for crash snapshots. `raw_inv_log` must round-trip
  /// bit-exactly (snapshot code stores its bit pattern), because the Draw
  /// inversion multiplies by it: an ulp of drift could flip a floor and
  /// desynchronize the replayed coin stream.
  uint64_t raw_skip() const { return skip_; }
  double raw_inv_log() const { return inv_log_; }
  void RestoreRaw(uint64_t skip, double inv_log) {
    skip_ = skip;
    inv_log_ = inv_log;
  }

 private:
  // Geometric(p) failures-before-success by inversion:
  // floor(log(U) / log(1-p)) for U ~ Uniform(0, 1].
  uint64_t Draw(Rng* rng) {
    if (inv_log_ == 0.0) return 0;  // p = 1
    double u = 1.0 - rng->NextDouble();  // in (0, 1]
    double draw = std::floor(std::log(u) * inv_log_);
    return draw < 0 ? 0 : static_cast<uint64_t>(draw);
  }

  // 1 / log(1 - 2^-j) for j in [0, 64]; entry 0 is unused (p = 1).
  static const double* InvLog1mPow2Table() {
    static const double* table = [] {
      static double t[65];
      t[0] = 0.0;
      for (int j = 1; j <= 64; ++j) {
        t[j] = 1.0 / std::log1p(-std::ldexp(1.0, -j));
      }
      return t;
    }();
    return table;
  }

  uint64_t skip_ = 0;
  double inv_log_ = 0.0;  // 1/log(1-p); 0 encodes p = 1
};

}  // namespace disttrack

#endif  // DISTTRACK_COMMON_SKIP_SAMPLER_H_
