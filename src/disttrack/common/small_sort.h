// Branch-light ascending sort for the short runs the batched rank feed
// produces between events.
//
// A site's eventless run is sorted once before it enters the run-merge
// ladder, and at large k (small per-site spans) those sorts are short
// enough that std::sort's dispatch and pivot branches dominate. SortRun
// routes short inputs through data-independent compare-exchange networks
// (Batcher's merge-exchange, Knuth 5.2.2 Algorithm M — every compare
// compiles to min/max cmovs, no data-dependent branch) and everything
// longer through std::sort. The sorted output of uint64 keys is unique,
// so the algorithm choice can never change a tracker estimate.

#ifndef DISTTRACK_COMMON_SMALL_SORT_H_
#define DISTTRACK_COMMON_SMALL_SORT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "disttrack/common/simd.h"

namespace disttrack {

namespace small_sort_internal {

inline void CompareExchange(uint64_t* v, size_t i, size_t j) {
  uint64_t a = v[i];
  uint64_t b = v[j];
  v[i] = a < b ? a : b;  // cmov pair, no branch
  v[j] = a < b ? b : a;
}

// Batcher merge-exchange: a sorting network for any n, O(n log^2 n)
// data-independent compare-exchanges.
inline void NetworkSort(uint64_t* v, size_t n) {
  size_t t = 1;
  while ((size_t{1} << t) < n) ++t;  // t = ceil(log2 n), n >= 2
  size_t p = size_t{1} << (t - 1);
  while (p > 0) {
    size_t q = size_t{1} << (t - 1);
    size_t r = 0;
    size_t d = p;
    for (;;) {
      for (size_t i = 0; i + d < n; ++i) {
        if ((i & p) == r) CompareExchange(v, i, i + d);
      }
      if (q == p) break;
      d = q - p;
      q >>= 1;
      r = p;
    }
    p >>= 1;
  }
}

}  // namespace small_sort_internal

/// Sorts v[0, n) ascending; tuned for the short-run regime (see file
/// comment). Identical output to std::sort for any input. Measured on
/// the reference container, the network wins up to ~2x below 16
/// elements and std::sort wins beyond, so that is the cutover. Runs
/// 5..16 go through the AVX2 register sort (simd::SortSmall16) when the
/// vector path is dispatched — padded to a power-of-two width and sorted
/// branch-free in four ymm registers; the sorted uint64 output is unique,
/// so the route can never change a tracker estimate (tier A).
inline void SortRun(uint64_t* v, size_t n) {
  if (n < 2) return;
  if (n <= 16) {
    if (simd::SortSmall16(v, n)) return;
    small_sort_internal::NetworkSort(v, n);
  } else {
    std::sort(v, v + n);
  }
}

}  // namespace disttrack

#endif  // DISTTRACK_COMMON_SMALL_SORT_H_
