#include "disttrack/common/stats.h"

#include <algorithm>
#include <cmath>

namespace disttrack {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::Mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double RunningStats::Min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::Max() const { return count_ == 0 ? 0.0 : max_; }

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<long>(mid), v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  double lo = *std::max_element(v.begin(), v.begin() + static_cast<long>(mid));
  return (lo + hi) / 2.0;
}

double SampleQuantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  q = std::clamp(q, 0.0, 1.0);
  size_t idx = static_cast<size_t>(q * static_cast<double>(v.size() - 1) + 0.5);
  return v[idx];
}

double CoverageWithin(const std::vector<double>& errors, double bound) {
  if (errors.empty()) return 1.0;
  size_t hit = 0;
  for (double e : errors) {
    if (std::fabs(e) <= bound) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(errors.size());
}

double LogLogSlope(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  size_t n = x.size();
  for (size_t i = 0; i < n; ++i) {
    if (x[i] <= 0 || y[i] <= 0) return 0.0;
    double lx = std::log(x[i]);
    double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  double dn = static_cast<double>(n);
  double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (dn * sxy - sx * sy) / denom;
}

}  // namespace disttrack
