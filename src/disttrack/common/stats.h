// Running statistics and small sample utilities used by the experiment
// harnesses and the statistical test suite (unbiasedness / variance /
// coverage checks).

#ifndef DISTTRACK_COMMON_STATS_H_
#define DISTTRACK_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace disttrack {

/// Welford-style accumulator for mean and variance of a stream of doubles.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations added so far.
  uint64_t count() const { return count_; }

  /// Sample mean; 0 if empty.
  double Mean() const;

  /// Unbiased sample variance (n-1 denominator); 0 if fewer than two
  /// observations.
  double Variance() const;

  /// Square root of Variance().
  double StdDev() const;

  /// Smallest / largest observation; 0 if empty.
  double Min() const;
  double Max() const;

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the median of `v` (average of middle two for even sizes).
/// Copies and partially sorts; `v` may be in any order. Empty input -> 0.
double Median(std::vector<double> v);

/// Returns the q-quantile (0 <= q <= 1) of `v` by nearest-rank on a sorted
/// copy. Empty input -> 0.
double SampleQuantile(std::vector<double> v, double q);

/// Fraction of entries of `errors` with absolute value <= bound.
/// Used for "error <= eps*n with probability 0.9"-style coverage checks.
double CoverageWithin(const std::vector<double>& errors, double bound);

/// Least-squares slope of log(y) against log(x), for empirically estimating
/// polynomial growth exponents in the scaling benches. Requires positive
/// inputs of equal nonzero length; returns 0 on degenerate input.
double LogLogSlope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace disttrack

#endif  // DISTTRACK_COMMON_STATS_H_
