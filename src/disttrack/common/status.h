// Lightweight Status type for configuration validation, in the RocksDB idiom.
// The tracking hot paths never fail, so Status appears only at construction
// and option-validation boundaries; no exceptions are used.

#ifndef DISTTRACK_COMMON_STATUS_H_
#define DISTTRACK_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace disttrack {

/// A success-or-error result for configuration and construction paths.
///
/// Mirrors the rocksdb::Status idiom: cheap to copy when OK, carries a
/// message on error, and is explicitly checked by callers.
class Status {
 public:
  /// Error categories. Kept deliberately small; the library only ever fails
  /// on bad configuration or misuse of an API, never mid-stream.
  enum class Code {
    kOk = 0,
    kInvalidArgument = 1,
    kFailedPrecondition = 2,
  };

  Status() = default;

  /// Returns the OK status.
  static Status OK() { return Status(); }

  /// Returns an InvalidArgument status with the given message.
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }

  /// Returns a FailedPrecondition status with the given message.
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == Code::kOk; }

  /// The error category.
  Code code() const { return code_; }

  /// Human-readable error message; empty for OK.
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<category>: <message>" for logs and test failures.
  std::string ToString() const {
    switch (code_) {
      case Code::kOk:
        return "OK";
      case Code::kInvalidArgument:
        return "InvalidArgument: " + message_;
      case Code::kFailedPrecondition:
        return "FailedPrecondition: " + message_;
    }
    return "Unknown";
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

}  // namespace disttrack

#endif  // DISTTRACK_COMMON_STATUS_H_
