#include "disttrack/core/median_booster.h"

#include "disttrack/common/stats.h"

namespace disttrack {
namespace core {

namespace {

// Recomputes a combined meter/gauge snapshot from the copies. Boosters are
// read-mostly, so recomputing on access keeps the copies authoritative.
template <typename Copies>
void Recombine(const Copies& copies, sim::CommMeter* meter,
               sim::SpaceGauge* space) {
  meter->Reset();
  space->ClearCurrent();
  *space = sim::SpaceGauge(space->num_sites());
  for (const auto& copy : copies) {
    meter->MergeFrom(copy->meter());
    space->MergeFrom(copy->space());
  }
}

int NumSitesOf(const sim::CommMeter& meter) { return meter.num_sites(); }

}  // namespace

BoostedCountTracker::BoostedCountTracker(
    std::vector<std::unique_ptr<sim::CountTrackerInterface>> copies)
    : copies_(std::move(copies)),
      combined_meter_(copies_.empty() ? 0 : NumSitesOf(copies_[0]->meter())),
      combined_space_(copies_.empty() ? 0
                                      : copies_[0]->space().num_sites()) {}

// disttrack-lint: allow(site-check) -- pure fan-out: every underlying
// copy validates the site id at its own entry point and aborts there.
void BoostedCountTracker::Arrive(int site) {
  for (auto& copy : copies_) copy->Arrive(site);
}

// disttrack-lint: allow(site-check) -- pure fan-out: every underlying
// copy validates the site id at its own entry point and aborts there.
void BoostedCountTracker::ArriveBatch(const sim::Arrival* arrivals,
                                      size_t count) {
  for (auto& copy : copies_) copy->ArriveBatch(arrivals, count);
}

// disttrack-lint: allow(site-check) -- pure fan-out: every underlying
// copy validates the site id at its own entry point and aborts there.
void BoostedCountTracker::ArriveSites(const uint16_t* sites, size_t count) {
  for (auto& copy : copies_) copy->ArriveSites(sites, count);
}

double BoostedCountTracker::EstimateCount() const {
  std::vector<double> estimates;
  estimates.reserve(copies_.size());
  for (const auto& copy : copies_) estimates.push_back(copy->EstimateCount());
  return Median(std::move(estimates));
}

uint64_t BoostedCountTracker::TrueCount() const {
  return copies_.empty() ? 0 : copies_[0]->TrueCount();
}

const sim::CommMeter& BoostedCountTracker::meter() const {
  Recombine(copies_, &combined_meter_, &combined_space_);
  return combined_meter_;
}

const sim::SpaceGauge& BoostedCountTracker::space() const {
  Recombine(copies_, &combined_meter_, &combined_space_);
  return combined_space_;
}

BoostedFrequencyTracker::BoostedFrequencyTracker(
    std::vector<std::unique_ptr<sim::FrequencyTrackerInterface>> copies)
    : copies_(std::move(copies)),
      combined_meter_(copies_.empty() ? 0 : NumSitesOf(copies_[0]->meter())),
      combined_space_(copies_.empty() ? 0
                                      : copies_[0]->space().num_sites()) {}

// disttrack-lint: allow(site-check) -- pure fan-out: every underlying
// copy validates the site id at its own entry point and aborts there.
void BoostedFrequencyTracker::Arrive(int site, uint64_t item) {
  for (auto& copy : copies_) copy->Arrive(site, item);
}

// disttrack-lint: allow(site-check) -- pure fan-out: every underlying
// copy validates the site id at its own entry point and aborts there.
void BoostedFrequencyTracker::ArriveBatch(const sim::Arrival* arrivals,
                                          size_t count) {
  for (auto& copy : copies_) copy->ArriveBatch(arrivals, count);
}

double BoostedFrequencyTracker::EstimateFrequency(uint64_t item) const {
  std::vector<double> estimates;
  estimates.reserve(copies_.size());
  for (const auto& copy : copies_) {
    estimates.push_back(copy->EstimateFrequency(item));
  }
  return Median(std::move(estimates));
}

uint64_t BoostedFrequencyTracker::TrueCount() const {
  return copies_.empty() ? 0 : copies_[0]->TrueCount();
}

const sim::CommMeter& BoostedFrequencyTracker::meter() const {
  Recombine(copies_, &combined_meter_, &combined_space_);
  return combined_meter_;
}

const sim::SpaceGauge& BoostedFrequencyTracker::space() const {
  Recombine(copies_, &combined_meter_, &combined_space_);
  return combined_space_;
}

BoostedRankTracker::BoostedRankTracker(
    std::vector<std::unique_ptr<sim::RankTrackerInterface>> copies)
    : copies_(std::move(copies)),
      combined_meter_(copies_.empty() ? 0 : NumSitesOf(copies_[0]->meter())),
      combined_space_(copies_.empty() ? 0
                                      : copies_[0]->space().num_sites()) {}

// disttrack-lint: allow(site-check) -- pure fan-out: every underlying
// copy validates the site id at its own entry point and aborts there.
void BoostedRankTracker::Arrive(int site, uint64_t value) {
  for (auto& copy : copies_) copy->Arrive(site, value);
}

// disttrack-lint: allow(site-check) -- pure fan-out: every underlying
// copy validates the site id at its own entry point and aborts there.
void BoostedRankTracker::ArriveBatch(const sim::Arrival* arrivals,
                                     size_t count) {
  for (auto& copy : copies_) copy->ArriveBatch(arrivals, count);
}

double BoostedRankTracker::EstimateRank(uint64_t value) const {
  std::vector<double> estimates;
  estimates.reserve(copies_.size());
  for (const auto& copy : copies_) {
    estimates.push_back(copy->EstimateRank(value));
  }
  return Median(std::move(estimates));
}

uint64_t BoostedRankTracker::TrueCount() const {
  return copies_.empty() ? 0 : copies_[0]->TrueCount();
}

const sim::CommMeter& BoostedRankTracker::meter() const {
  Recombine(copies_, &combined_meter_, &combined_space_);
  return combined_meter_;
}

const sim::SpaceGauge& BoostedRankTracker::space() const {
  Recombine(copies_, &combined_meter_, &combined_space_);
  return combined_space_;
}

}  // namespace core
}  // namespace disttrack
