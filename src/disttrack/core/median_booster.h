// Median boosting (§1.2): a single protocol copy answers any one query
// within ±εn with constant probability; running m independent copies and
// answering the median is correct at all O(1/ε · logN) distinguishable
// time instances simultaneously with probability 1 - δ for
// m = O(log(logN / (δε))). These wrappers implement that construction for
// each of the three problems.

#ifndef DISTTRACK_CORE_MEDIAN_BOOSTER_H_
#define DISTTRACK_CORE_MEDIAN_BOOSTER_H_

#include <memory>
#include <vector>

#include "disttrack/sim/protocol.h"

namespace disttrack {
namespace core {

/// Runs m independent count trackers; answers the median estimate.
/// meter()/space() report the combined cost of all copies.
class BoostedCountTracker : public sim::CountTrackerInterface {
 public:
  explicit BoostedCountTracker(
      std::vector<std::unique_ptr<sim::CountTrackerInterface>> copies);

  void Arrive(int site) override;
  void ArriveBatch(const sim::Arrival* arrivals, size_t count) override;
  void ArriveSites(const uint16_t* sites, size_t count) override;
  double EstimateCount() const override;
  uint64_t TrueCount() const override;
  const sim::CommMeter& meter() const override;
  const sim::SpaceGauge& space() const override;

  size_t num_copies() const { return copies_.size(); }

 private:
  std::vector<std::unique_ptr<sim::CountTrackerInterface>> copies_;
  mutable sim::CommMeter combined_meter_;
  mutable sim::SpaceGauge combined_space_;
};

/// Runs m independent frequency trackers; answers the median estimate.
class BoostedFrequencyTracker : public sim::FrequencyTrackerInterface {
 public:
  explicit BoostedFrequencyTracker(
      std::vector<std::unique_ptr<sim::FrequencyTrackerInterface>> copies);

  void Arrive(int site, uint64_t item) override;
  void ArriveBatch(const sim::Arrival* arrivals, size_t count) override;
  double EstimateFrequency(uint64_t item) const override;
  uint64_t TrueCount() const override;
  const sim::CommMeter& meter() const override;
  const sim::SpaceGauge& space() const override;

  size_t num_copies() const { return copies_.size(); }

 private:
  std::vector<std::unique_ptr<sim::FrequencyTrackerInterface>> copies_;
  mutable sim::CommMeter combined_meter_;
  mutable sim::SpaceGauge combined_space_;
};

/// Runs m independent rank trackers; answers the median estimate.
class BoostedRankTracker : public sim::RankTrackerInterface {
 public:
  explicit BoostedRankTracker(
      std::vector<std::unique_ptr<sim::RankTrackerInterface>> copies);

  void Arrive(int site, uint64_t value) override;
  void ArriveBatch(const sim::Arrival* arrivals, size_t count) override;
  double EstimateRank(uint64_t value) const override;
  uint64_t TrueCount() const override;
  const sim::CommMeter& meter() const override;
  const sim::SpaceGauge& space() const override;

  size_t num_copies() const { return copies_.size(); }

 private:
  std::vector<std::unique_ptr<sim::RankTrackerInterface>> copies_;
  mutable sim::CommMeter combined_meter_;
  mutable sim::SpaceGauge combined_space_;
};

}  // namespace core
}  // namespace disttrack

#endif  // DISTTRACK_CORE_MEDIAN_BOOSTER_H_
