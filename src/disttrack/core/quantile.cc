#include "disttrack/core/quantile.h"

#include <algorithm>

namespace disttrack {
namespace core {

uint64_t QuantileFromRank(const sim::RankTrackerInterface& tracker,
                          double phi, uint64_t universe) {
  if (universe == 0) return 0;
  phi = std::clamp(phi, 0.0, 1.0);
  double target = phi * static_cast<double>(tracker.TrueCount());
  // Binary search for the smallest x whose inclusive rank reaches target;
  // monotonicity of EstimateRank makes this well defined.
  uint64_t lo = 0, hi = universe - 1;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (tracker.EstimateRank(mid + 1) < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<uint64_t> QuantilesFromRank(
    const sim::RankTrackerInterface& tracker, const std::vector<double>& phis,
    uint64_t universe) {
  std::vector<uint64_t> out;
  out.reserve(phis.size());
  for (double phi : phis) {
    out.push_back(QuantileFromRank(tracker, phi, universe));
  }
  return out;
}

double FrequencyFromRank(const sim::RankTrackerInterface& tracker,
                         uint64_t value) {
  double above = tracker.EstimateRank(value + 1);
  double below = tracker.EstimateRank(value);
  return above - below;
}

}  // namespace core
}  // namespace disttrack
