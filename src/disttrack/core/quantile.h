// Quantile queries on top of rank tracking (§1.3: "if we have the data
// structure for one problem, we can do a binary search to solve the
// other"). Works with any RankTrackerInterface whose EstimateRank is
// monotone in the query (true for all three rank trackers in this
// library), and implements the §1.3 remark that a probabilistic rank
// structure answers all O(log(1/ε)) binary-search probes by a union bound.

#ifndef DISTTRACK_CORE_QUANTILE_H_
#define DISTTRACK_CORE_QUANTILE_H_

#include <cstdint>
#include <vector>

#include "disttrack/sim/protocol.h"

namespace disttrack {
namespace core {

/// Smallest value x in [0, universe) with EstimateRank(x+1) >= phi * n —
/// an ε-approximate phi-quantile when the tracker answers ranks within εn.
/// `phi` is clamped to [0, 1]. O(log universe) rank queries.
uint64_t QuantileFromRank(const sim::RankTrackerInterface& tracker,
                          double phi, uint64_t universe);

/// Batched version: answers all `phis` with a shared clamp; results align
/// with the input order.
std::vector<uint64_t> QuantilesFromRank(
    const sim::RankTrackerInterface& tracker, const std::vector<double>& phis,
    uint64_t universe);

/// The §1.3 frequency-from-rank reduction helper: estimates the frequency
/// of `value` as EstimateRank(value + 1) - EstimateRank(value). Exact on a
/// duplicate-free totally ordered stream; within 2εn in general.
double FrequencyFromRank(const sim::RankTrackerInterface& tracker,
                         uint64_t value);

}  // namespace core
}  // namespace disttrack

#endif  // DISTTRACK_CORE_QUANTILE_H_
