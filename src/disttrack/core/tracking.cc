#include "disttrack/core/tracking.h"

#include <vector>

#include "disttrack/core/median_booster.h"
#include "disttrack/count/deterministic_count.h"
#include "disttrack/count/randomized_count.h"
#include "disttrack/frequency/deterministic_frequency.h"
#include "disttrack/frequency/randomized_frequency.h"
#include "disttrack/rank/deterministic_rank.h"
#include "disttrack/rank/randomized_rank.h"
#include "disttrack/sampling/distributed_sampler.h"

namespace disttrack {
namespace core {

namespace {

constexpr double kDefaultCountConfidence = 2.0;
constexpr double kDefaultFrequencyConfidence = 4.0;
constexpr double kDefaultRankConfidence = 4.0;

double ConfidenceOr(const TrackerOptions& options, double fallback) {
  return options.confidence_factor > 0 ? options.confidence_factor : fallback;
}

// Derives a distinct seed for booster copy `i`.
uint64_t CopySeed(uint64_t seed, int i) {
  return seed + 0x51ED2701FB1CD9A1ull * static_cast<uint64_t>(i + 1);
}

}  // namespace

std::string AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kDeterministic:
      return "deterministic";
    case Algorithm::kRandomized:
      return "randomized";
    case Algorithm::kSampling:
      return "sampling";
  }
  return "unknown";
}

Status TrackerOptions::Validate() const {
  if (num_sites < 1) {
    return Status::InvalidArgument("num_sites must be >= 1");
  }
  if (!(epsilon > 0.0) || epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  if (median_copies < 1) {
    return Status::InvalidArgument("median_copies must be >= 1");
  }
  if (median_copies > 1 && median_copies % 2 == 0) {
    return Status::InvalidArgument("median_copies must be odd when > 1");
  }
  if (universe_bits < 1 || universe_bits > 48) {
    return Status::InvalidArgument("universe_bits must be in [1, 48]");
  }
  if (!(sample_boost >= 1.0)) {
    return Status::InvalidArgument("sample_boost must be >= 1");
  }
  return Status::OK();
}

namespace {

// One-copy constructors, shared by the direct and boosted paths.

Status MakeOneCount(Algorithm algorithm, const TrackerOptions& options,
                    uint64_t seed,
                    std::unique_ptr<sim::CountTrackerInterface>* out) {
  switch (algorithm) {
    case Algorithm::kDeterministic: {
      count::DeterministicCountOptions o;
      o.num_sites = options.num_sites;
      o.epsilon = options.epsilon;
      if (Status s = o.Validate(); !s.ok()) return s;
      *out = std::make_unique<count::DeterministicCountTracker>(o);
      return Status::OK();
    }
    case Algorithm::kRandomized: {
      count::RandomizedCountOptions o;
      o.num_sites = options.num_sites;
      o.epsilon = options.epsilon;
      o.seed = seed;
      o.confidence_factor = ConfidenceOr(options, kDefaultCountConfidence);
      o.naive_boundary_estimator = options.naive_boundary_estimator;
      o.use_skip_sampling = options.use_skip_sampling;
      o.use_site_grouping = options.use_site_grouping;
      if (Status s = o.Validate(); !s.ok()) return s;
      *out = std::make_unique<count::RandomizedCountTracker>(o);
      return Status::OK();
    }
    case Algorithm::kSampling: {
      sampling::DistributedSamplerOptions o;
      o.num_sites = options.num_sites;
      o.epsilon = options.epsilon;
      o.seed = seed;
      o.sample_boost = options.sample_boost;
      if (Status s = o.Validate(); !s.ok()) return s;
      *out = std::make_unique<sampling::SamplingCountTracker>(o);
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown algorithm");
}

Status MakeOneFrequency(Algorithm algorithm, const TrackerOptions& options,
                        uint64_t seed,
                        std::unique_ptr<sim::FrequencyTrackerInterface>* out) {
  switch (algorithm) {
    case Algorithm::kDeterministic: {
      frequency::DeterministicFrequencyOptions o;
      o.num_sites = options.num_sites;
      o.epsilon = options.epsilon;
      if (Status s = o.Validate(); !s.ok()) return s;
      *out = std::make_unique<frequency::DeterministicFrequencyTracker>(o);
      return Status::OK();
    }
    case Algorithm::kRandomized: {
      frequency::RandomizedFrequencyOptions o;
      o.num_sites = options.num_sites;
      o.epsilon = options.epsilon;
      o.seed = seed;
      o.confidence_factor =
          ConfidenceOr(options, kDefaultFrequencyConfidence);
      o.naive_boundary_estimator = options.naive_boundary_estimator;
      o.virtual_site_split = options.virtual_site_split;
      o.use_skip_sampling = options.use_skip_sampling;
      o.use_flat_counters = options.use_flat_counters;
      // The umbrella flag feeds the eps-aware AUTO gate rather than
      // forcing the grouped engine: grouped frequency delivery measures
      // slower at cache-resident table sizes and faster once the
      // counter working set outgrows the cache, and the gate decides
      // which regime (ε, k, c) is in at construction (see
      // frequency::RandomizedFrequencyOptions::auto_site_grouping).
      // Force it via the frequency-specific options for A/B runs.
      o.auto_site_grouping = options.use_site_grouping;
      if (Status s = o.Validate(); !s.ok()) return s;
      *out = std::make_unique<frequency::RandomizedFrequencyTracker>(o);
      return Status::OK();
    }
    case Algorithm::kSampling: {
      sampling::DistributedSamplerOptions o;
      o.num_sites = options.num_sites;
      o.epsilon = options.epsilon;
      o.seed = seed;
      o.sample_boost = options.sample_boost;
      if (Status s = o.Validate(); !s.ok()) return s;
      *out = std::make_unique<sampling::SamplingFrequencyTracker>(o);
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown algorithm");
}

Status MakeOneRank(Algorithm algorithm, const TrackerOptions& options,
                   uint64_t seed,
                   std::unique_ptr<sim::RankTrackerInterface>* out) {
  switch (algorithm) {
    case Algorithm::kDeterministic: {
      rank::DeterministicRankOptions o;
      o.num_sites = options.num_sites;
      o.epsilon = options.epsilon;
      o.universe_bits = options.universe_bits;
      if (Status s = o.Validate(); !s.ok()) return s;
      *out = std::make_unique<rank::DeterministicRankTracker>(o);
      return Status::OK();
    }
    case Algorithm::kRandomized: {
      rank::RandomizedRankOptions o;
      o.num_sites = options.num_sites;
      o.epsilon = options.epsilon;
      o.seed = seed;
      o.confidence_factor = ConfidenceOr(options, kDefaultRankConfidence);
      o.use_skip_sampling = options.use_skip_sampling;
      o.use_batch_compaction = options.use_batch_compaction;
      o.use_shared_ladder = options.use_shared_ladder;
      o.use_site_grouping = options.use_site_grouping;
      if (Status s = o.Validate(); !s.ok()) return s;
      *out = std::make_unique<rank::RandomizedRankTracker>(o);
      return Status::OK();
    }
    case Algorithm::kSampling: {
      sampling::DistributedSamplerOptions o;
      o.num_sites = options.num_sites;
      o.epsilon = options.epsilon;
      o.seed = seed;
      o.sample_boost = options.sample_boost;
      if (Status s = o.Validate(); !s.ok()) return s;
      *out = std::make_unique<sampling::SamplingRankTracker>(o);
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown algorithm");
}

}  // namespace

Status MakeCountTracker(Algorithm algorithm, const TrackerOptions& options,
                        std::unique_ptr<sim::CountTrackerInterface>* out) {
  if (Status s = options.Validate(); !s.ok()) return s;
  if (options.median_copies == 1) {
    return MakeOneCount(algorithm, options, options.seed, out);
  }
  std::vector<std::unique_ptr<sim::CountTrackerInterface>> copies;
  for (int i = 0; i < options.median_copies; ++i) {
    std::unique_ptr<sim::CountTrackerInterface> copy;
    if (Status s =
            MakeOneCount(algorithm, options, CopySeed(options.seed, i), &copy);
        !s.ok()) {
      return s;
    }
    copies.push_back(std::move(copy));
  }
  *out = std::make_unique<BoostedCountTracker>(std::move(copies));
  return Status::OK();
}

Status MakeFrequencyTracker(
    Algorithm algorithm, const TrackerOptions& options,
    std::unique_ptr<sim::FrequencyTrackerInterface>* out) {
  if (Status s = options.Validate(); !s.ok()) return s;
  if (options.median_copies == 1) {
    return MakeOneFrequency(algorithm, options, options.seed, out);
  }
  std::vector<std::unique_ptr<sim::FrequencyTrackerInterface>> copies;
  for (int i = 0; i < options.median_copies; ++i) {
    std::unique_ptr<sim::FrequencyTrackerInterface> copy;
    if (Status s = MakeOneFrequency(algorithm, options,
                                    CopySeed(options.seed, i), &copy);
        !s.ok()) {
      return s;
    }
    copies.push_back(std::move(copy));
  }
  *out = std::make_unique<BoostedFrequencyTracker>(std::move(copies));
  return Status::OK();
}

Status MakeRankTracker(Algorithm algorithm, const TrackerOptions& options,
                       std::unique_ptr<sim::RankTrackerInterface>* out) {
  if (Status s = options.Validate(); !s.ok()) return s;
  if (options.median_copies == 1) {
    return MakeOneRank(algorithm, options, options.seed, out);
  }
  std::vector<std::unique_ptr<sim::RankTrackerInterface>> copies;
  for (int i = 0; i < options.median_copies; ++i) {
    std::unique_ptr<sim::RankTrackerInterface> copy;
    if (Status s =
            MakeOneRank(algorithm, options, CopySeed(options.seed, i), &copy);
        !s.ok()) {
      return s;
    }
    copies.push_back(std::move(copy));
  }
  *out = std::make_unique<BoostedRankTracker>(std::move(copies));
  return Status::OK();
}

}  // namespace core
}  // namespace disttrack
