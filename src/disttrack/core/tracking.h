// Umbrella public API: one options struct, one algorithm enum, and three
// factory functions covering every protocol in Table 1. Downstream users
// include this header and program against the sim::*TrackerInterface
// abstractions; examples/ shows typical usage.

#ifndef DISTTRACK_CORE_TRACKING_H_
#define DISTTRACK_CORE_TRACKING_H_

#include <cstdint>
#include <memory>
#include <string>

#include "disttrack/common/status.h"
#include "disttrack/sim/protocol.h"

namespace disttrack {
namespace core {

/// Which Table-1 protocol family to instantiate.
enum class Algorithm {
  kDeterministic,  ///< trivial count / [29] frequency / [29] rank
  kRandomized,     ///< the paper's §2–§4 protocols
  kSampling,       ///< continuous distributed sampling [9]
};

/// Human-readable algorithm name (for reports and logs).
std::string AlgorithmName(Algorithm algorithm);

/// Unified construction options. Fields irrelevant to a given algorithm
/// are ignored (e.g., seed for deterministic trackers).
struct TrackerOptions {
  int num_sites = 8;
  double epsilon = 0.01;
  uint64_t seed = 1;

  /// Variance head-room for the randomized protocols; <= 0 selects the
  /// per-protocol default (2 for count, 4 for frequency/rank).
  double confidence_factor = 0.0;

  /// Sample capacity multiplier for Algorithm::kSampling.
  double sample_boost = 4.0;

  /// Dyadic levels for the deterministic rank tracker (values are masked
  /// into [0, 2^universe_bits)).
  int universe_bits = 12;

  /// > 1 wraps the tracker in a median booster with this many independent
  /// copies (§1.2's all-times construction). Must be odd when > 1.
  int median_copies = 1;

  /// Ablations (DESIGN.md §5); only honored by the randomized protocols.
  bool naive_boundary_estimator = false;
  bool virtual_site_split = true;

  /// When true (default) the randomized protocols realize their
  /// per-arrival Bernoulli(p) coins with geometric skip sampling (see
  /// common/skip_sampler.h) — identical in distribution, much cheaper per
  /// arrival. False selects the historical one-RNG-draw-per-arrival path;
  /// kept for A/B benchmarking (bench_throughput) and equivalence tests.
  bool use_skip_sampling = true;

  /// When true (default) the randomized frequency tracker stores each
  /// site's sticky counter list in a flat open-addressing table
  /// (frequency/counter_table.h); false keeps the historical
  /// std::unordered_map store. Estimates are unaffected either way (the
  /// store holds no randomness); kept for A/B benchmarking.
  bool use_flat_counters = true;

  /// When true (default) the randomized rank tracker feeds batched
  /// arrivals to its compactor tree via CompactorSummary::InsertBatch —
  /// equivalent in distribution (same mean-zero ±2^level martingale, see
  /// summaries/compactor_summary.h), not bit-identical. False keeps the
  /// per-element feed for A/B benchmarking and exact-equivalence tests.
  bool use_batch_compaction = true;

  /// When true (default) the randomized rank tracker consolidates each
  /// site's sorted runs once in a shared run-merge ladder
  /// (summaries/run_ladder.h) and every tree level pulls borrowed views
  /// of the merged sequence, instead of staging and re-merging its own
  /// copy at all h+1 levels. Bit-identical estimates, communication, and
  /// rounds either way (pinned by tests/batch_equivalence_test.cc); kept
  /// for A/B benchmarking.
  bool use_shared_ladder = true;

  /// When true (default) the randomized count and rank trackers' batch
  /// delivery paths permute each chunk into site-contiguous spans
  /// whenever the chunk provably contains no coarse broadcast (see
  /// CoarseTracker::BatchCannotBroadcast) and feed whole per-site spans —
  /// cache-resident per-site state, span-level event gaps. Per-site coin
  /// streams and event positions are unchanged, so every estimate,
  /// communication word, round, and split count is bit-identical to the
  /// event-countdown engines (pinned by tests/batch_equivalence_test.cc);
  /// chunks that may broadcast fall back to those engines. False keeps
  /// the countdown engines everywhere (A/B benchmarking). For the
  /// frequency tracker this flag arms the eps-aware AUTO gate instead of
  /// forcing the engine: grouped delivery only wins once the sticky-
  /// counter working set outgrows cache residency, which is a static
  /// function of (ε, k, c), so the tracker decides at construction (see
  /// frequency::RandomizedFrequencyOptions::auto_site_grouping).
  bool use_site_grouping = true;

  Status Validate() const;
};

/// Creates a count tracker. On success `*out` owns the tracker.
Status MakeCountTracker(Algorithm algorithm, const TrackerOptions& options,
                        std::unique_ptr<sim::CountTrackerInterface>* out);

/// Creates a frequency tracker. On success `*out` owns the tracker.
Status MakeFrequencyTracker(
    Algorithm algorithm, const TrackerOptions& options,
    std::unique_ptr<sim::FrequencyTrackerInterface>* out);

/// Creates a rank tracker. On success `*out` owns the tracker.
Status MakeRankTracker(Algorithm algorithm, const TrackerOptions& options,
                       std::unique_ptr<sim::RankTrackerInterface>* out);

}  // namespace core
}  // namespace disttrack

#endif  // DISTTRACK_CORE_TRACKING_H_
