#include "disttrack/count/coarse_tracker.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "disttrack/sim/protocol.h"

namespace disttrack {
namespace count {

CoarseTracker::CoarseTracker(int num_sites, sim::CommMeter* meter)
    : meter_(meter), local_(static_cast<size_t>(num_sites)) {}

void CoarseTracker::AddObserver(BroadcastObserver observer) {
  observers_.push_back(std::move(observer));
}

uint64_t CoarseTracker::local_count(int site) const {
  if (site < 0 || site >= num_sites()) return 0;
  return local_[static_cast<size_t>(site)].count;
}

// disttrack-lint: allow(site-check) -- inner engine: CoarseTracker is only
// reachable through an owning tracker whose entry point already validated
// the site id; re-checking per arrival would tax the hot path for nothing.
void CoarseTracker::Arrive(int site) {
  SiteState& s = local_[static_cast<size_t>(site)];
  ++s.count;
  if (s.count < s.next_report) return;
  ReportAndMaybeBroadcast(site);
}

// disttrack-lint: allow(site-check) -- inner engine: see Arrive() above.
void CoarseTracker::ArriveRun(int site, uint64_t count) {
  SiteState& s = local_[static_cast<size_t>(site)];
  while (count > 0) {
    uint64_t gap = s.next_report - s.count;  // invariant: count < next_report
    if (count < gap) {
      s.count += count;
      return;
    }
    s.count += gap;
    count -= gap;
    ReportAndMaybeBroadcast(site);
  }
}

void CoarseTracker::AdvanceLocalNoReport(int site, uint64_t count) {
  SiteState& s = local_[static_cast<size_t>(site)];
  if (count >= s.next_report - s.count) {
    std::fprintf(stderr,
                 "CoarseTracker: eventless shard advance of %llu crosses "
                 "site %d's report threshold\n",
                 static_cast<unsigned long long>(count), site);
    std::abort();
  }
  s.count += count;
}

uint64_t CoarseTracker::ArriveLocal(int site) {
  SiteState& s = local_[static_cast<size_t>(site)];
  ++s.count;
  if (s.count < s.next_report) return 0;
  uint64_t delta = s.count - s.last_reported;
  s.last_reported = s.count;
  s.next_report = s.count * 2;
  return delta;
}

void CoarseTracker::ApplyDeferredReport(int site, uint64_t delta) {
  // disttrack-lint: allow(meter-tap) -- shard-fold bookkeeping: taps are
  // only installed by the serial runtimes (robust cluster, service site
  // half), never on the sharded replay path that produces deferred
  // reports, so this charge has no frame to pair with.
  meter_->RecordUpload(site, 1);
  n_prime_ += delta;
  if (n_prime_ >= std::max<uint64_t>(1, 2 * n_bar_)) {
    std::fprintf(stderr,
                 "CoarseTracker: deferred report of site %d trips the "
                 "broadcast condition — the epoch schedule is wrong\n",
                 site);
    std::abort();
  }
}

void CoarseTracker::SerializeSite(int site, std::vector<uint64_t>* out) const {
  const SiteState& s = local_[static_cast<size_t>(site)];
  out->push_back(s.count);
  out->push_back(s.next_report);
  out->push_back(s.last_reported);
}

size_t CoarseTracker::RestoreSite(int site, const uint64_t* data) {
  SiteState& s = local_[static_cast<size_t>(site)];
  s.count = data[0];
  s.next_report = data[1];
  s.last_reported = data[2];
  return 3;
}

void CoarseTracker::ReportAndMaybeBroadcast(int site) {
  SiteState& s = local_[static_cast<size_t>(site)];
  // Site -> coordinator: the local count has doubled.
  meter_->RecordUpload(site, 1);
  uint64_t delta = s.count - s.last_reported;
  n_prime_ += delta;
  s.last_reported = s.count;
  s.next_report = s.count * 2;
  if (tap_ != nullptr) {
    sim::wire::Message msg;
    msg.type = sim::wire::MsgType::kCoarseReport;
    msg.site = site;
    msg.epoch = round_;
    msg.a = delta;
    msg.paper_words = 1;
    tap_->OnMessage(std::move(msg));
  }

  // Coordinator: broadcast when n' has at least doubled since the last
  // broadcast (first broadcast at the very first report).
  if (n_prime_ >= std::max<uint64_t>(1, 2 * n_bar_)) {
    n_bar_ = n_prime_;
    ++round_;
    meter_->RecordBroadcast(1);
    if (tap_ != nullptr) {
      sim::wire::Message msg;
      msg.type = sim::wire::MsgType::kBroadcast;
      msg.site = -1;
      msg.epoch = round_;
      msg.a = round_;
      msg.b = n_bar_;
      msg.paper_words = 1;
      tap_->OnMessage(std::move(msg));
    }
    for (auto& obs : observers_) obs(round_, n_bar_);
  }
}

void EpochCertifier::Reset(const CoarseTracker& tracker) {
  sites_.resize(tracker.local_.size());
  for (size_t i = 0; i < sites_.size(); ++i) {
    const CoarseTracker::SiteState& s = tracker.local_[i];
    sites_[i] = Projection{s.count, s.next_report, s.last_reported};
  }
  n_prime_ = tracker.n_prime_;
  limit_ = 2 * tracker.n_bar_ > 1 ? 2 * tracker.n_bar_ : 1;
}

bool EpochCertifier::ExtendByHistogram(const uint32_t* histogram) {
  // Pass 1: project the chunk's final n' (per-site totals alone decide
  // it, see the header). Bail without touching anything on refusal.
  uint64_t projected = n_prime_;
  for (size_t i = 0; i < sites_.size(); ++i) {
    uint64_t h = histogram[i];
    if (h == 0) continue;
    const Projection& s = sites_[i];
    uint64_t final_count = s.count + h;
    if (final_count >= s.next_report) {
      uint64_t last_report =
          uint64_t{1} << (63 - __builtin_clzll(final_count));
      projected += last_report - s.last_reported;
      if (projected >= limit_) return false;
    }
  }
  if (projected >= limit_) return false;
  // Pass 2: commit the projections.
  for (size_t i = 0; i < sites_.size(); ++i) {
    uint64_t h = histogram[i];
    if (h == 0) continue;
    Projection& s = sites_[i];
    s.count += h;
    if (s.count >= s.next_report) {
      s.last_reported = uint64_t{1} << (63 - __builtin_clzll(s.count));
      s.next_report = s.last_reported * 2;
    }
  }
  n_prime_ = projected;
  return true;
}

size_t EpochCertifier::CommitUntilBroadcast(const sim::Arrival* arrivals,
                                            size_t count) {
  for (size_t i = 0; i < count; ++i) {
    Projection& s = sites_[static_cast<size_t>(arrivals[i].site)];
    uint64_t next = s.count + 1;
    if (next >= s.next_report) {
      uint64_t delta = next - s.last_reported;
      if (n_prime_ + delta >= limit_) return i;  // `i` not committed
      n_prime_ += delta;
      s.last_reported = next;
      s.next_report = next * 2;
    }
    s.count = next;
  }
  return count;
}

}  // namespace count
}  // namespace disttrack
