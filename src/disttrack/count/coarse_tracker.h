// The constant-factor count tracker of §2.1 ("Dealing with a decreasing p"):
// every site reports its local count when it doubles; the coordinator
// re-broadcasts the global sum n' whenever it has at least doubled since the
// last broadcast. The broadcast value n̄ satisfies n̄ <= n < 4n̄ at all
// times, divides the execution into O(logN) rounds, and costs O(k logN)
// communication in total.
//
// All three randomized trackers (count, frequency, rank) are built on this
// component: the broadcast both refreshes their sampling probability p and
// delimits their rounds.

#ifndef DISTTRACK_COUNT_COARSE_TRACKER_H_
#define DISTTRACK_COUNT_COARSE_TRACKER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "disttrack/sim/comm_meter.h"
#include "disttrack/sim/wire.h"

namespace disttrack {
namespace sim {
struct Arrival;
}  // namespace sim

namespace count {

class EpochCertifier;

/// Maintains n̄, a factor-4 approximation of n, with O(k logN) traffic.
class CoarseTracker {
 public:
  /// Invoked immediately after each broadcast, with the new round index
  /// (1-based) and the new n̄. Observers typically recompute p and perform
  /// the round-transition ritual of their protocol.
  using BroadcastObserver = std::function<void(uint64_t round, uint64_t n_bar)>;

  /// Traffic is charged to `meter` (not owned; must outlive the tracker).
  CoarseTracker(int num_sites, sim::CommMeter* meter);

  /// Registers an observer; observers fire in registration order.
  void AddObserver(BroadcastObserver observer);

  /// One element arrives at `site`; may trigger an upload and a broadcast.
  void Arrive(int site);

  /// Advances `site` by `count` arrivals in bulk, firing every report and
  /// broadcast at exactly the local counts where per-element Arrive() calls
  /// would have fired them. Reports double in spacing, so a run of m
  /// arrivals costs O(log m) work plus events — this is the coarse-tracker
  /// half of the batched fast path.
  void ArriveRun(int site, uint64_t count);

  /// Arrivals at `site` before its next report fires (always >= 1). Batch
  /// engines use this to bound how far they may advance without observing
  /// an event.
  uint64_t arrivals_until_report(int site) const {
    const SiteState& s = local_[static_cast<size_t>(site)];
    return s.next_report - s.count;
  }

  /// True iff a batch delivering `histogram[i]` arrivals to site i cannot
  /// trigger a broadcast — under ANY interleaving of the sites. This is
  /// the safety gate of the site-grouped delivery engines
  /// (common/site_group.h), and it is EXACT for carry-free batches:
  ///
  /// A site's reports fire at fixed local counts (the power-of-two
  /// doubling thresholds), so the set of reports the batch produces — and
  /// each report's n' delta — depends only on the per-site totals, never
  /// on the interleaving. The batch's final n' is therefore computable up
  /// front: each crossing site's last report value is the largest power
  /// of two <= count_i + h_i. A broadcast needs n' >= max(1, 2 n̄) at
  /// some report; n' is nondecreasing and only moves at reports, so the
  /// batch broadcasts iff the final n' reaches the threshold.
  ///
  /// `carry[i]`, when non-null, counts arrivals already delivered to
  /// site i but not yet advanced through this tracker (the rank engine
  /// buffers eventless runs across chunk boundaries); they may be fed
  /// during the batch, so a site receiving new arrivals is projected
  /// over histogram[i] + carry[i]. A site with histogram[i] == 0 is not
  /// touched by the batch at all — its carry stays unfed and is ignored.
  /// With carry the test is an upper bound (the batch may end before
  /// feeding everything), which can only cause a harmless fallback.
  bool BatchCannotBroadcast(const uint32_t* histogram,
                            const uint64_t* carry = nullptr) const {
    uint64_t projected = n_prime_;
    uint64_t limit = 2 * n_bar_ > 1 ? 2 * n_bar_ : 1;
    for (size_t i = 0; i < local_.size(); ++i) {
      uint64_t h = histogram[i];
      if (h == 0) continue;
      if (carry != nullptr) h += carry[i];
      const SiteState& s = local_[i];
      uint64_t final_count = s.count + h;
      if (final_count >= s.next_report) {
        // Largest doubling threshold reached: floor-power-of-two of the
        // final count (thresholds are 1, 2, 4, ...; counts move by 1).
        uint64_t last_report =
            uint64_t{1} << (63 - __builtin_clzll(final_count));
        projected += last_report - s.last_reported;
        if (projected >= limit) return false;
      }
    }
    return projected < limit;
  }

  // --- Sharded-replay (epoch) support ------------------------------------
  // During shard ingest a worker thread owns a site and may advance only
  // its site-local half (count / report thresholds); the coordinator half
  // (n', n̄, broadcasts, the meter) is updated at the epoch barrier by the
  // driver thread, via deferred report deltas. Safe to call concurrently
  // for DISTINCT sites only.

  /// Advances `site` by `count` arrivals known to contain no report
  /// (requires count < arrivals_until_report(site); aborts otherwise).
  void AdvanceLocalNoReport(int site, uint64_t count);

  /// One arrival at `site` during shard ingest: advances the local count
  /// and, when the report threshold is reached, updates the site-local
  /// report state and returns the n' delta the deferred report carries
  /// (0 = no report due). The caller buffers the delta and applies it via
  /// ApplyDeferredReport at the epoch barrier.
  uint64_t ArriveLocal(int site);

  /// Applies one deferred report at an epoch barrier (driver thread
  /// only): charges the upload and folds the delta into n'. Aborts if the
  /// broadcast condition fires — the parallel driver places every
  /// broadcast-triggering arrival on an epoch boundary, where it is
  /// delivered through the serial Arrive() path instead, so a deferred
  /// report can never legitimately trip it.
  void ApplyDeferredReport(int site, uint64_t delta);

  // --- Wire layer / crash recovery ---------------------------------------

  /// Installs a message tap (sim/wire.h): every coarse report and every
  /// broadcast is mirrored as a typed message. nullptr disables.
  void set_wire_tap(sim::wire::WireTap* tap) { tap_ = tap; }

  /// Serializes one site's local half (count, next_report, last_reported)
  /// into `*out` (appended). The coordinator half (n', n̄, round) is not
  /// site state and is never part of a site snapshot.
  void SerializeSite(int site, std::vector<uint64_t>* out) const;

  /// Restores a site's local half from SerializeSite output at `data`.
  /// Returns the number of words consumed.
  size_t RestoreSite(int site, const uint64_t* data);

  /// Last broadcast value (0 before the first element arrives).
  uint64_t n_bar() const { return n_bar_; }

  /// Number of broadcasts so far == current round index.
  uint64_t round() const { return round_; }

  /// The coordinator's running sum of last-reported site counts; satisfies
  /// n' <= n < 2n'.
  uint64_t n_prime() const { return n_prime_; }

  /// Exact local count of one site (site-side state).
  uint64_t local_count(int site) const;

  int num_sites() const { return static_cast<int>(local_.size()); }

 private:
  friend class EpochCertifier;

  struct SiteState {
    uint64_t count = 0;          // exact local count n_i
    uint64_t next_report = 1;    // report when count reaches this (doubles)
    uint64_t last_reported = 0;  // n'_i at the coordinator
  };

  // Slow path of Arrive(): charge the upload, refresh n', and broadcast if
  // n' has at least doubled since the last broadcast.
  void ReportAndMaybeBroadcast(int site);

  sim::CommMeter* meter_;
  sim::wire::WireTap* tap_ = nullptr;
  std::vector<SiteState> local_;
  std::vector<BroadcastObserver> observers_;
  uint64_t n_prime_ = 0;
  uint64_t n_bar_ = 0;
  uint64_t round_ = 0;
};

/// Rolling broadcast-safety certifier: the online generalization of
/// BatchCannotBroadcast for streams with no workload pre-knowledge
/// (sim/online.h). Seeded from the live tracker, it mirrors each site's
/// projected (count, next_report, last_reported) triple and the projected
/// n' over every arrival certified so far, and answers — exactly —
/// whether one more chunk can extend the current broadcast-free epoch.
/// n̄ (and with it the broadcast limit) is frozen while the epoch is open
/// by construction: an epoch ends, and the certifier is re-seeded, at
/// every broadcast.
class EpochCertifier {
 public:
  /// Seeds projections from `tracker`'s live site state. Every arrival
  /// certified before the Reset must already have been delivered (or be
  /// sitting, fully ingested, in shard sinks whose coarse deltas the
  /// projections anticipated — the fold cannot change them). O(k).
  void Reset(const CoarseTracker& tracker);

  /// Exact epoch-extension test: true iff delivering histogram[i] further
  /// arrivals to site i — on top of everything certified so far — still
  /// cannot trigger a broadcast under any interleaving; the projections
  /// then advance past the chunk. False leaves the certifier untouched.
  /// The exactness argument is BatchCannotBroadcast's, applied to the
  /// projected state: reports fire at fixed local counts, so the chunk's
  /// report set depends only on per-site totals, and n' is nondecreasing,
  /// so the final total reaching the limit is equivalent to some prefix
  /// reaching it.
  bool ExtendByHistogram(const uint32_t* histogram);

  /// Scan mode for a chunk ExtendByHistogram refused: walks the arrivals
  /// in stream order on the projected state, committing reports exactly
  /// as the serial coordinator would, and returns the index of the first
  /// arrival whose report trips the broadcast condition. That arrival is
  /// NOT committed — the caller delivers it through the serial Arrive()
  /// path (where the broadcast actually fires) and then Resets. Returns
  /// `count` if no broadcast fires (cannot happen right after a refusal).
  size_t CommitUntilBroadcast(const sim::Arrival* arrivals, size_t count);

  int num_sites() const { return static_cast<int>(sites_.size()); }

  /// Projected n' over everything certified so far (diagnostics/tests).
  uint64_t projected_n_prime() const { return n_prime_; }

 private:
  struct Projection {
    uint64_t count = 0;
    uint64_t next_report = 1;
    uint64_t last_reported = 0;
  };
  std::vector<Projection> sites_;
  uint64_t n_prime_ = 0;
  uint64_t limit_ = 1;  // max(1, 2 n̄) at the last Reset
};

}  // namespace count
}  // namespace disttrack

#endif  // DISTTRACK_COUNT_COARSE_TRACKER_H_
