#include "disttrack/count/deterministic_count.h"

#include <cmath>

namespace disttrack {
namespace count {

Status DeterministicCountOptions::Validate() const {
  if (num_sites < 1) {
    return Status::InvalidArgument("num_sites must be >= 1");
  }
  if (!(epsilon > 0.0) || epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  return Status::OK();
}

DeterministicCountTracker::DeterministicCountTracker(
    const DeterministicCountOptions& options)
    : options_(options),
      meter_(options.num_sites),
      space_(options.num_sites),
      sites_(static_cast<size_t>(options.num_sites)) {
  // Two words of per-site state: the counter and the last-reported value.
  for (int i = 0; i < options_.num_sites; ++i) space_.Set(i, 2);
}

void DeterministicCountTracker::Arrive(int site) {
  sim::CheckSiteInRange(site, options_.num_sites);
  ++n_;
  SiteState& s = sites_[static_cast<size_t>(site)];
  ++s.count;
  if (ReportDue(s)) {
    meter_.RecordUpload(site, 1);
    reported_sum_ += s.count - s.last_reported;
    s.last_reported = s.count;
  }
}

void DeterministicCountTracker::ShardEpochBegin(uint64_t arrivals_in_epoch) {
  if (shard_sinks_.empty()) {
    shard_sinks_.resize(static_cast<size_t>(options_.num_sites));
  }
  n_ += arrivals_in_epoch;
}

// disttrack-lint: allow(site-check) -- shard-internal: every id was
// validated by SiteGrouper (CheckSiteInRange aborts) before the epoch
// was partitioned onto workers; the worker replays a pre-checked span.
void DeterministicCountTracker::ShardArriveRun(int site, uint64_t count) {
  SiteState& s = sites_[static_cast<size_t>(site)];
  ShardSink& sink = shard_sinks_[static_cast<size_t>(site)];
  for (uint64_t j = 0; j < count; ++j) {
    ++s.count;
    if (ReportDue(s)) {
      ++sink.report_messages;
      sink.reported_delta += s.count - s.last_reported;
      s.last_reported = s.count;
    }
  }
}

void DeterministicCountTracker::ShardEpochEnd() {
  for (int i = 0; i < options_.num_sites; ++i) {
    ShardSink& sink = shard_sinks_[static_cast<size_t>(i)];
    if (sink.report_messages > 0) {
      meter_.RecordUploadBulk(i, sink.report_messages, sink.report_messages);
      reported_sum_ += sink.reported_delta;
      sink.report_messages = 0;
      sink.reported_delta = 0;
    }
  }
}

double DeterministicCountTracker::EstimateCount() const {
  return static_cast<double>(reported_sum_);
}

}  // namespace count
}  // namespace disttrack
