#include "disttrack/count/deterministic_count.h"

#include <cmath>

namespace disttrack {
namespace count {

Status DeterministicCountOptions::Validate() const {
  if (num_sites < 1) {
    return Status::InvalidArgument("num_sites must be >= 1");
  }
  if (!(epsilon > 0.0) || epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  return Status::OK();
}

DeterministicCountTracker::DeterministicCountTracker(
    const DeterministicCountOptions& options)
    : options_(options),
      meter_(options.num_sites),
      space_(options.num_sites),
      sites_(static_cast<size_t>(options.num_sites)) {
  // Two words of per-site state: the counter and the last-reported value.
  for (int i = 0; i < options_.num_sites; ++i) space_.Set(i, 2);
}

void DeterministicCountTracker::Arrive(int site) {
  ++n_;
  SiteState& s = sites_[static_cast<size_t>(site)];
  ++s.count;
  double threshold =
      static_cast<double>(s.last_reported) * (1.0 + options_.epsilon / 2.0);
  if (s.last_reported == 0 || static_cast<double>(s.count) >= threshold) {
    meter_.RecordUpload(site, 1);
    reported_sum_ += s.count - s.last_reported;
    s.last_reported = s.count;
  }
}

double DeterministicCountTracker::EstimateCount() const {
  return static_cast<double>(reported_sum_);
}

}  // namespace count
}  // namespace disttrack
