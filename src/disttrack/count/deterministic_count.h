// The "trivial" deterministic count tracker of §1: every site reports its
// counter whenever it has grown by a (1 + ε/2) factor, so the coordinator
// always knows every n_i within that factor and hence n within ±εn/2.
// One-way communication only; Θ(k/ε · logN) messages — optimal for
// deterministic algorithms [29]. This is the paper's primary comparator
// (Table 1, row "count-tracking trivial").

#ifndef DISTTRACK_COUNT_DETERMINISTIC_COUNT_H_
#define DISTTRACK_COUNT_DETERMINISTIC_COUNT_H_

#include <cstdint>
#include <vector>

#include "disttrack/common/status.h"
#include "disttrack/sim/protocol.h"

namespace disttrack {
namespace count {

/// Options for DeterministicCountTracker.
struct DeterministicCountOptions {
  int num_sites = 8;
  double epsilon = 0.01;

  /// Returns OK iff the options describe a valid tracker.
  Status Validate() const;
};

/// Deterministic ε-approximate count tracking; error is guaranteed (no
/// failure probability), using one-way site->coordinator traffic only.
class DeterministicCountTracker : public sim::CountTrackerInterface {
 public:
  explicit DeterministicCountTracker(const DeterministicCountOptions& options);

  void Arrive(int site) override;
  double EstimateCount() const override;
  uint64_t TrueCount() const override { return n_; }
  const sim::CommMeter& meter() const override { return meter_; }
  const sim::SpaceGauge& space() const override { return space_; }

 private:
  struct SiteState {
    uint64_t count = 0;
    uint64_t last_reported = 0;
  };

  DeterministicCountOptions options_;
  sim::CommMeter meter_;
  sim::SpaceGauge space_;
  std::vector<SiteState> sites_;
  uint64_t n_ = 0;
  uint64_t reported_sum_ = 0;
};

}  // namespace count
}  // namespace disttrack

#endif  // DISTTRACK_COUNT_DETERMINISTIC_COUNT_H_
