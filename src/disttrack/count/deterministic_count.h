// The "trivial" deterministic count tracker of §1: every site reports its
// counter whenever it has grown by a (1 + ε/2) factor, so the coordinator
// always knows every n_i within that factor and hence n within ±εn/2.
// One-way communication only; Θ(k/ε · logN) messages — optimal for
// deterministic algorithms [29]. This is the paper's primary comparator
// (Table 1, row "count-tracking trivial").

#ifndef DISTTRACK_COUNT_DETERMINISTIC_COUNT_H_
#define DISTTRACK_COUNT_DETERMINISTIC_COUNT_H_

#include <cstdint>
#include <vector>

#include "disttrack/common/status.h"
#include "disttrack/sim/protocol.h"

namespace disttrack {
namespace count {

/// Options for DeterministicCountTracker.
struct DeterministicCountOptions {
  int num_sites = 8;
  double epsilon = 0.01;

  /// Returns OK iff the options describe a valid tracker.
  Status Validate() const;
};

/// Deterministic ε-approximate count tracking; error is guaranteed (no
/// failure probability), using one-way site->coordinator traffic only.
class DeterministicCountTracker : public sim::CountTrackerInterface,
                                  private sim::CountShardIngest {
 public:
  explicit DeterministicCountTracker(const DeterministicCountOptions& options);

  void Arrive(int site) override;
  double EstimateCount() const override;
  uint64_t TrueCount() const override { return n_; }
  const sim::CommMeter& meter() const override { return meter_; }
  const sim::SpaceGauge& space() const override { return space_; }

  /// Sharded replay (sim/shard.h). The protocol is one-way — there is no
  /// coordinator -> site traffic at all — so any epoch partition is
  /// exact: per-site report decisions depend only on the site's own
  /// counter, and the coordinator's sum is order-insensitive.
  sim::CountShardIngest* shard_ingest() override { return this; }

 private:
  void ShardEpochBegin(uint64_t arrivals_in_epoch) override;
  void ShardArriveRun(int site, uint64_t count) override;
  void ShardEpochEnd() override;

  struct SiteState {
    uint64_t count = 0;
    uint64_t last_reported = 0;
  };
  // The (1 + eps/2)-growth report rule, shared by Arrive and the shard
  // run loop so the two delivery paths cannot drift apart.
  bool ReportDue(const SiteState& s) const {
    double threshold =
        static_cast<double>(s.last_reported) * (1.0 + options_.epsilon / 2.0);
    return s.last_reported == 0 || static_cast<double>(s.count) >= threshold;
  }
  struct ShardSink {
    uint64_t reported_delta = 0;
    uint64_t report_messages = 0;
  };

  DeterministicCountOptions options_;
  sim::CommMeter meter_;
  sim::SpaceGauge space_;
  std::vector<SiteState> sites_;
  std::vector<ShardSink> shard_sinks_;
  uint64_t n_ = 0;
  uint64_t reported_sum_ = 0;
};

}  // namespace count
}  // namespace disttrack

#endif  // DISTTRACK_COUNT_DETERMINISTIC_COUNT_H_
