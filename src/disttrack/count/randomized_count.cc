#include "disttrack/count/randomized_count.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "disttrack/common/math_util.h"

namespace disttrack {
namespace count {

Status RandomizedCountOptions::Validate() const {
  if (num_sites < 1) {
    return Status::InvalidArgument("num_sites must be >= 1");
  }
  if (!(epsilon > 0.0) || epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  if (!(confidence_factor >= 1.0)) {
    return Status::InvalidArgument("confidence_factor must be >= 1");
  }
  return Status::OK();
}

RandomizedCountTracker::RandomizedCountTracker(
    const RandomizedCountOptions& options)
    : options_(options),
      meter_(options.num_sites),
      space_(options.num_sites),
      sites_(static_cast<size_t>(options.num_sites)) {
  for (int i = 0; i < options_.num_sites; ++i) {
    SiteState& s = sites_[static_cast<size_t>(i)];
    s.rng =
        Rng(options_.seed * 0x9E3779B97F4A7C15ull + static_cast<uint64_t>(i));
    s.skip.ResetPow2(log2_inv_p_, &s.rng);
    // O(1) site state: counter, last report, doubling threshold, 1/p copy,
    // plus the skip countdown on the fast path.
    space_.Set(i, options_.use_skip_sampling ? 5 : 4);
  }
  coarse_ = std::make_unique<CoarseTracker>(options_.num_sites, &meter_);
  coarse_->AddObserver([this](uint64_t round, uint64_t n_bar) {
    OnBroadcast(round, n_bar);
  });
  countdown_.Resize(options_.num_sites);
}

uint64_t RandomizedCountTracker::InvPFor(uint64_t n_bar) const {
  // p = 1 while εn̄ <= c√k; afterwards 1/p = ⌊εn̄/(c√k)⌋₂ (§2.1).
  double scaled = options_.epsilon * static_cast<double>(n_bar) /
                  (options_.confidence_factor *
                   std::sqrt(static_cast<double>(options_.num_sites)));
  if (scaled <= 1.0) return 1;
  return FloorPow2(scaled);
}

double RandomizedCountTracker::p() const {
  return 1.0 / static_cast<double>(inv_p_);
}

void RandomizedCountTracker::OnBroadcast(uint64_t /*round*/, uint64_t n_bar) {
  if (grouped_chunk_active_) {
    // CoarseTracker::BatchCannotBroadcast certified this chunk; a
    // broadcast here means grouped processing already reordered arrivals
    // across it — abort instead of silently diverging from the serial
    // coin streams.
    std::fprintf(stderr,
                 "RandomizedCountTracker: broadcast inside a grouped chunk "
                 "— the broadcast-safety bound is wrong\n");
    std::abort();
  }
  uint64_t new_inv_p = InvPFor(n_bar);
  bool halved = inv_p_ < new_inv_p;
  while (inv_p_ < new_inv_p) {
    inv_p_ *= 2;
    ++log2_inv_p_;
    double p_new = 1.0 / static_cast<double>(inv_p_);
    // Re-randomization ritual, once per halving, at every site that holds a
    // report (§2.1). The broadcast that told sites the new n̄ was already
    // charged by CoarseTracker; the correction uploads are charged here.
    for (int i = 0; i < options_.num_sites; ++i) {
      SiteState& s = sites_[static_cast<size_t>(i)];
      if (s.reported == 0) continue;
      if (s.rng.Bernoulli(0.5)) continue;  // report survives the thinning
      uint64_t old_report = s.reported;
      uint64_t failures = s.rng.GeometricFailures(p_new);
      uint64_t positions_below = old_report - 1;
      uint64_t new_report =
          failures >= positions_below ? 0 : old_report - 1 - failures;
      // Coordinator-side update (the site informs the coordinator).
      meter_.RecordUpload(i, 1);
      EmitTap(sim::wire::MsgType::kCorrection, i, new_report);
      reported_sum_ -= old_report;
      --reported_count_;
      s.reported = new_report;
      if (new_report > 0) {
        reported_sum_ += new_report;
        ++reported_count_;
      }
    }
  }
  // A halved p invalidates every outstanding skip: the counters encode
  // gaps of the *old* coin process. Unconsumed coins are independent of
  // everything observed, so redrawing at the final p is exact (see
  // skip_sampler.h). One redraw after the loop covers any number of
  // halvings. Mid-batch, the countdowns scheduled from the old skips must
  // be flushed first and re-armed after.
  if (halved && options_.use_skip_sampling) {
    if (in_batch_) ResyncAllMidBatch();
    for (SiteState& s : sites_) s.skip.ResetPow2(log2_inv_p_, &s.rng);
    if (in_batch_) RearmAll();
  }
}

void RandomizedCountTracker::Report(int site) {
  SiteState& s = sites_[static_cast<size_t>(site)];
  meter_.RecordUpload(site, 1);
  if (s.reported > 0) reported_sum_ -= s.reported;
  else ++reported_count_;
  s.reported = s.count;
  reported_sum_ += s.reported;
  EmitTap(sim::wire::MsgType::kCoinReport, site, s.reported);
}

void RandomizedCountTracker::EmitTap(sim::wire::MsgType type, int site,
                                     uint64_t a) {
  if (tap_ == nullptr) return;
  sim::wire::Message msg;
  msg.type = type;
  msg.site = site;
  msg.epoch = coarse_->round();
  msg.a = a;
  msg.paper_words = 1;
  tap_->OnMessage(std::move(msg));
}

void RandomizedCountTracker::set_wire_tap(sim::wire::WireTap* tap) {
  tap_ = tap;
  coarse_->set_wire_tap(tap);
}

void RandomizedCountTracker::SerializeSiteState(
    int site, std::vector<uint64_t>* out) const {
  out->push_back(inv_p_);
  out->push_back(static_cast<uint64_t>(log2_inv_p_));
  coarse_->SerializeSite(site, out);
  const SiteState& s = sites_[static_cast<size_t>(site)];
  out->push_back(s.count);
  out->push_back(s.reported);
  out->push_back(s.skip.raw_skip());
  uint64_t inv_log_bits = 0;
  double inv_log = s.skip.raw_inv_log();
  std::memcpy(&inv_log_bits, &inv_log, sizeof(inv_log_bits));
  out->push_back(inv_log_bits);
  uint64_t rng_state[4];
  s.rng.SaveState(rng_state);
  for (uint64_t word : rng_state) out->push_back(word);
}

void RandomizedCountTracker::RestoreSiteState(
    int site, const std::vector<uint64_t>& blob) {
  size_t i = 0;
  inv_p_ = blob[i++];
  log2_inv_p_ = static_cast<int>(blob[i++]);
  i += coarse_->RestoreSite(site, blob.data() + i);
  SiteState& s = sites_[static_cast<size_t>(site)];
  s.count = blob[i++];
  s.reported = blob[i++];
  uint64_t skip = blob[i++];
  uint64_t inv_log_bits = blob[i++];
  double inv_log = 0;
  std::memcpy(&inv_log, &inv_log_bits, sizeof(inv_log));
  s.skip.RestoreRaw(skip, inv_log);
  uint64_t rng_state[4];
  for (int j = 0; j < 4; ++j) rng_state[j] = blob[i++];
  s.rng.RestoreState(rng_state);
}

void RandomizedCountTracker::BeginCrashReplay(int site) {
  crash_replay_ = true;
  replay_site_ = site;
  replay_saved_inv_p_ = inv_p_;
  replay_saved_log2_ = log2_inv_p_;
}

void RandomizedCountTracker::EndCrashReplay() {
  if (inv_p_ != replay_saved_inv_p_ || log2_inv_p_ != replay_saved_log2_) {
    std::fprintf(stderr,
                 "RandomizedCountTracker: crash replay did not re-evolve "
                 "1/p to its pre-crash value (journal is incomplete)\n");
    std::abort();
  }
  crash_replay_ = false;
  replay_site_ = -1;
}

void RandomizedCountTracker::ReplayCrashArrive(int site,
                                               const uint64_t* mid_ritual_n_bar) {
  SiteState& s = sites_[static_cast<size_t>(site)];
  ++s.count;
  uint64_t delta = coarse_->ArriveLocal(site);
  if (delta > 0) {
    EmitTap(sim::wire::MsgType::kCoarseReport, site, delta);
  }
  if (mid_ritual_n_bar != nullptr) {
    if (delta == 0) {
      std::fprintf(stderr,
                   "RandomizedCountTracker: journaled mid-arrival broadcast "
                   "at an arrival with no coarse report\n");
      std::abort();
    }
    ReplayCrashRitual(site, *mid_ritual_n_bar);
  }
  bool hit = options_.use_skip_sampling
                 ? s.skip.Next(&s.rng)
                 : s.rng.Bernoulli(1.0 / static_cast<double>(inv_p_));
  if (hit) {
    // Site half of Report(): the coordinator's aggregates already contain
    // this report from the original (pre-crash) delivery.
    s.reported = s.count;
    EmitTap(sim::wire::MsgType::kCoinReport, site, s.reported);
  }
}

void RandomizedCountTracker::ReplayCrashRitual(int site, uint64_t n_bar) {
  uint64_t new_inv_p = InvPFor(n_bar);
  bool halved = inv_p_ < new_inv_p;
  SiteState& s = sites_[static_cast<size_t>(site)];
  while (inv_p_ < new_inv_p) {
    inv_p_ *= 2;
    ++log2_inv_p_;
    double p_new = 1.0 / static_cast<double>(inv_p_);
    // Per-site half of the §2.1 ritual, with the identical draw order the
    // full OnBroadcast loop consumes for this site.
    if (s.reported != 0 && !s.rng.Bernoulli(0.5)) {
      uint64_t old_report = s.reported;
      uint64_t failures = s.rng.GeometricFailures(p_new);
      uint64_t positions_below = old_report - 1;
      s.reported = failures >= positions_below ? 0 : old_report - 1 - failures;
      EmitTap(sim::wire::MsgType::kCorrection, site, s.reported);
    }
  }
  if (halved && options_.use_skip_sampling) {
    s.skip.ResetPow2(log2_inv_p_, &s.rng);
  }
}

inline void RandomizedCountTracker::ArriveOne(int site) {
  ++n_;
  SiteState& s = sites_[static_cast<size_t>(site)];
  ++s.count;
  // The coarse tracker may broadcast here, halving p before this arrival's
  // coin is consumed — the skip redraw (or the flip below) then uses the
  // up-to-date p.
  coarse_->Arrive(site);
  if (options_.use_skip_sampling) {
    if (s.skip.Next(&s.rng)) Report(site);
  } else {
    if (s.rng.Bernoulli(1.0 / static_cast<double>(inv_p_))) Report(site);
  }
}

void RandomizedCountTracker::Arrive(int site) {
  sim::CheckSiteInRange(site, options_.num_sites);
  ArriveOne(site);
}

uint64_t RandomizedCountTracker::NextEventGap(int site) const {
  const SiteState& s = sites_[static_cast<size_t>(site)];
  return std::min(coarse_->arrivals_until_report(site),
                  s.skip.pending_skips() + 1);
}

void RandomizedCountTracker::RearmSite(int site) {
  countdown_.Arm(site, NextEventGap(site));
}

void RandomizedCountTracker::RearmAll() {
  for (int i = 0; i < options_.num_sites; ++i) RearmSite(i);
}

// Retires `consumed` arrivals at `site` that are known to be eventless:
// plain count advances and coin failures. By construction consumed is
// strictly below both the coarse-report gap and the pending skip count, so
// neither a report nor a coin success can fire here.
void RandomizedCountTracker::SyncEventless(int site, uint64_t consumed) {
  if (consumed == 0) return;
  SiteState& s = sites_[static_cast<size_t>(site)];
  s.count += consumed;
  s.skip.ConsumeFailures(consumed);
  coarse_->ArriveRun(site, consumed);
}

// Flushes every site's consumed-but-unreconciled arrivals. Called when a
// mid-batch broadcast is about to redraw the skips (the countdowns encode
// coin gaps of the old p) and at batch end.
void RandomizedCountTracker::ResyncAllMidBatch() {
  for (int i = 0; i < options_.num_sites; ++i) {
    uint64_t consumed = countdown_.Outstanding(i);
    countdown_.Reconcile(i);
    SyncEventless(i, consumed);
  }
}

// The countdown for `site` hit zero: reconcile the eventless prefix of its
// stride, then process the current arrival exactly as the scalar path
// would — coarse first (a broadcast here redraws skips before the coin is
// consumed), then the coin.
void RandomizedCountTracker::HandleEventArrival(int site) {
  // TakeEventPrefix marks the site fully reconciled before coarse is
  // touched: if this arrival broadcasts, ResyncAllMidBatch must see zero
  // outstanding arrivals here.
  SyncEventless(site, countdown_.TakeEventPrefix(site));
  SiteState& s = sites_[static_cast<size_t>(site)];
  ++s.count;
  coarse_->Arrive(site);
  if (s.skip.Next(&s.rng)) Report(site);
  RearmSite(site);
}

void RandomizedCountTracker::CountdownBatch(const sim::Arrival* arrivals,
                                            size_t count) {
  // Event-countdown engine: one decrement per eventless arrival.
  in_batch_ = true;
  RearmAll();
  uint32_t* until = countdown_.until();
  for (size_t i = 0; i < count; ++i) {
    int site = arrivals[i].site;
    sim::CheckSiteInRange(site, options_.num_sites);
    if (--until[site] == 0) HandleEventArrival(site);
  }
  ResyncAllMidBatch();
  in_batch_ = false;
}

void RandomizedCountTracker::CountdownSites(const uint16_t* sites,
                                            size_t count) {
  in_batch_ = true;
  RearmAll();
  uint32_t* until = countdown_.until();
  const unsigned num_sites = static_cast<unsigned>(options_.num_sites);
  for (size_t i = 0; i < count; ++i) {
    unsigned site = sites[i];
    if (site >= num_sites) sim::CheckSiteInRange(static_cast<int>(site),
                                                 options_.num_sites);
    if (--until[site] == 0) HandleEventArrival(static_cast<int>(site));
  }
  ResyncAllMidBatch();
  in_batch_ = false;
}

// Count arrivals carry no payload, so a site's slice of a broadcast-free
// chunk is just a number: advance counter, coin process, and coarse
// tracker in eventless bulk, replaying each event arrival (coarse report
// or coin success) through the exact scalar order. The per-site coin
// stream is consumed at the same offsets as the countdown engine, and all
// cross-site coordinator effects inside the chunk are order-insensitive
// sums (reports fold into n' and the estimator's aggregates; the
// broadcast condition provably cannot trip), so the permutation is
// bit-invisible.
void RandomizedCountTracker::GroupedRun(int site, uint64_t count) {
  SiteState& s = sites_[static_cast<size_t>(site)];
  while (count > 0) {
    uint64_t gap = NextEventGap(site);
    if (count < gap) {
      s.count += count;
      s.skip.ConsumeFailures(count);
      coarse_->ArriveRun(site, count);
      return;
    }
    uint64_t prefix = gap - 1;
    s.count += prefix;
    s.skip.ConsumeFailures(prefix);
    coarse_->ArriveRun(site, prefix);
    count -= gap;
    // The event arrival, in scalar order: coarse first, then the coin.
    ++s.count;
    coarse_->Arrive(site);
    if (s.skip.Next(&s.rng)) Report(site);
  }
}

void RandomizedCountTracker::ArriveBatch(const sim::Arrival* arrivals,
                                         size_t count) {
  if (!options_.use_skip_sampling) {
    for (size_t i = 0; i < count; ++i) {
      sim::CheckSiteInRange(arrivals[i].site, options_.num_sites);
      ArriveOne(arrivals[i].site);
    }
    return;
  }
  // n_ is advanced up front; nothing inside the batch reads it.
  n_ += count;
  if (!options_.use_site_grouping) {
    CountdownBatch(arrivals, count);
    return;
  }
  // Count arrivals cost ~1 cycle each, so the per-chunk work (histogram
  // reset, span build, safety check) is amortized over a larger chunk
  // than the keyed engines use; there is no scatter scratch to keep
  // cache-resident here.
  constexpr size_t kCountChunk = kSiteGroupChunk * 4;
  size_t pos = 0;
  while (pos < count) {
    size_t len = std::min(kCountChunk, count - pos);
    grouper_.CountArrivals(arrivals + pos, len, options_.num_sites);
    if (coarse_->BatchCannotBroadcast(grouper_.histogram())) {
      grouped_chunk_active_ = true;
      for (const SiteGrouper::Span& span : grouper_.spans()) {
        GroupedRun(span.site, span.length);
      }
      grouped_chunk_active_ = false;
    } else {
      CountdownBatch(arrivals + pos, len);
    }
    pos += len;
  }
}

void RandomizedCountTracker::ArriveSites(const uint16_t* sites,
                                         size_t count) {
  if (!options_.use_skip_sampling) {
    for (size_t i = 0; i < count; ++i) {
      sim::CheckSiteInRange(sites[i], options_.num_sites);
      ArriveOne(sites[i]);
    }
    return;
  }
  n_ += count;
  if (!options_.use_site_grouping) {
    CountdownSites(sites, count);
    return;
  }
  constexpr size_t kCountChunk = kSiteGroupChunk * 4;
  size_t pos = 0;
  while (pos < count) {
    size_t len = std::min(kCountChunk, count - pos);
    grouper_.CountSites(sites + pos, len, options_.num_sites);
    if (coarse_->BatchCannotBroadcast(grouper_.histogram())) {
      grouped_chunk_active_ = true;
      for (const SiteGrouper::Span& span : grouper_.spans()) {
        GroupedRun(span.site, span.length);
      }
      grouped_chunk_active_ = false;
    } else {
      CountdownSites(sites + pos, len);
    }
    pos += len;
  }
}

void RandomizedCountTracker::ShardEpochBegin(uint64_t arrivals_in_epoch) {
  if (shard_sinks_.empty()) {
    shard_sinks_.resize(static_cast<size_t>(options_.num_sites));
  }
  // Nothing inside a shard epoch reads n_; advancing it up front keeps
  // TrueCount() exact at the barrier, mirroring the batch engines.
  n_ += arrivals_in_epoch;
}

// One site's whole epoch slice, on a worker thread. The structure is the
// per-site projection of the serial event-countdown engine: eventless
// arrivals retire as bulk count advances + consumed coin failures, and
// each event arrival replays the exact scalar order (coarse first, then
// the coin) with coordinator effects deferred to the sink. The epoch
// schedule guarantees no broadcast can fall inside the run, so the coin
// probability is frozen and the site's RNG stream is consumed at exactly
// the serial per-site offsets.
// disttrack-lint: allow(site-check) -- shard-internal: every id was
// validated by SiteGrouper (CheckSiteInRange aborts) before the epoch
// was partitioned onto workers; the worker replays a pre-checked span.
void RandomizedCountTracker::ShardArriveRun(int site, uint64_t count) {
  SiteState& s = sites_[static_cast<size_t>(site)];
  ShardSink& sink = shard_sinks_[static_cast<size_t>(site)];
  while (count > 0) {
    uint64_t gap = NextEventGap(site);
    if (count < gap) {
      s.count += count;
      s.skip.ConsumeFailures(count);
      coarse_->AdvanceLocalNoReport(site, count);
      return;
    }
    uint64_t prefix = gap - 1;
    s.count += prefix;
    s.skip.ConsumeFailures(prefix);
    coarse_->AdvanceLocalNoReport(site, prefix);
    count -= gap;
    // The event arrival.
    ++s.count;
    if (uint64_t delta = coarse_->ArriveLocal(site)) {
      sink.coarse_deltas.push_back(delta);
    }
    if (s.skip.Next(&s.rng)) {
      // Deferred Report(site): the site-side value updates immediately,
      // the coordinator aggregates and the upload charge at the barrier.
      ++sink.report_messages;
      if (s.reported > 0) {
        sink.reported_sum_delta -= static_cast<int64_t>(s.reported);
      } else {
        ++sink.reported_count_delta;
      }
      s.reported = s.count;
      sink.reported_sum_delta += static_cast<int64_t>(s.count);
    }
  }
}

void RandomizedCountTracker::ShardEpochEnd() {
  for (int i = 0; i < options_.num_sites; ++i) {
    ShardSink& sink = shard_sinks_[static_cast<size_t>(i)];
    for (uint64_t delta : sink.coarse_deltas) {
      coarse_->ApplyDeferredReport(i, delta);
    }
    sink.coarse_deltas.clear();
    if (sink.report_messages > 0) {
      // disttrack-lint: allow(meter-tap) -- shard-fold: the serial
      // path charges and taps per message; the fold replays the
      // epoch's deferred charges in bulk, and taps never run on the
      // sharded path (only the serial runtimes install one).
      meter_.RecordUploadBulk(i, sink.report_messages, sink.report_messages);
      sink.report_messages = 0;
    }
    reported_sum_ = static_cast<uint64_t>(static_cast<int64_t>(reported_sum_) +
                                          sink.reported_sum_delta);
    reported_count_ = static_cast<uint64_t>(
        static_cast<int64_t>(reported_count_) + sink.reported_count_delta);
    sink.reported_sum_delta = 0;
    sink.reported_count_delta = 0;
  }
}

bool RandomizedCountTracker::ShardSnapshotSite(int site,
                                               std::vector<uint64_t>* out) {
  out->clear();
  SerializeSiteState(site, out);
  return true;
}

void RandomizedCountTracker::ShardRestoreSite(
    int site, const std::vector<uint64_t>& blob) {
  // The blob also reinstalls the round globals (1/p); no broadcast can
  // have fired between snapshot and restore (the trial fold refused), so
  // they are unchanged and the reinstall is a no-op.
  RestoreSiteState(site, blob);
}

bool RandomizedCountTracker::ShardTryEpochEnd() {
  uint64_t projected = coarse_->n_prime();
  for (const ShardSink& sink : shard_sinks_) {
    for (uint64_t delta : sink.coarse_deltas) projected += delta;
  }
  uint64_t limit = std::max<uint64_t>(1, 2 * coarse_->n_bar());
  if (projected >= limit) return false;
  ShardEpochEnd();
  return true;
}

void RandomizedCountTracker::ShardAbortEpoch(uint64_t arrivals) {
  n_ -= arrivals;
  for (ShardSink& sink : shard_sinks_) {
    sink.coarse_deltas.clear();
    sink.reported_sum_delta = 0;
    sink.reported_count_delta = 0;
    sink.report_messages = 0;
  }
}

double RandomizedCountTracker::EstimateCount() const {
  double inv_p = static_cast<double>(inv_p_);
  if (options_.naive_boundary_estimator) {
    // Ablation: apply n̂_i = n̄_i - 1 + 1/p to *every* site, treating a
    // missing report as n̄_i = 0. Each report-less site contributes the
    // bias (1/p - 1) the paper's two-case estimator avoids.
    double all = static_cast<double>(reported_sum_) +
                 static_cast<double>(options_.num_sites) * (inv_p - 1.0);
    return all;
  }
  return static_cast<double>(reported_sum_) +
         static_cast<double>(reported_count_) * (inv_p - 1.0);
}

}  // namespace count
}  // namespace disttrack
