#include "disttrack/count/randomized_count.h"

#include <cmath>

#include "disttrack/common/math_util.h"

namespace disttrack {
namespace count {

Status RandomizedCountOptions::Validate() const {
  if (num_sites < 1) {
    return Status::InvalidArgument("num_sites must be >= 1");
  }
  if (!(epsilon > 0.0) || epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  if (!(confidence_factor >= 1.0)) {
    return Status::InvalidArgument("confidence_factor must be >= 1");
  }
  return Status::OK();
}

RandomizedCountTracker::RandomizedCountTracker(
    const RandomizedCountOptions& options)
    : options_(options),
      meter_(options.num_sites),
      space_(options.num_sites),
      sites_(static_cast<size_t>(options.num_sites)) {
  for (int i = 0; i < options_.num_sites; ++i) {
    sites_[static_cast<size_t>(i)].rng =
        Rng(options_.seed * 0x9E3779B97F4A7C15ull + static_cast<uint64_t>(i));
    // O(1) site state: counter, last report, doubling threshold, 1/p copy.
    space_.Set(i, 4);
  }
  coarse_ = std::make_unique<CoarseTracker>(options_.num_sites, &meter_);
  coarse_->AddObserver([this](uint64_t round, uint64_t n_bar) {
    OnBroadcast(round, n_bar);
  });
}

uint64_t RandomizedCountTracker::InvPFor(uint64_t n_bar) const {
  // p = 1 while εn̄ <= c√k; afterwards 1/p = ⌊εn̄/(c√k)⌋₂ (§2.1).
  double scaled = options_.epsilon * static_cast<double>(n_bar) /
                  (options_.confidence_factor *
                   std::sqrt(static_cast<double>(options_.num_sites)));
  if (scaled <= 1.0) return 1;
  return FloorPow2(scaled);
}

double RandomizedCountTracker::p() const {
  return 1.0 / static_cast<double>(inv_p_);
}

void RandomizedCountTracker::OnBroadcast(uint64_t /*round*/, uint64_t n_bar) {
  uint64_t new_inv_p = InvPFor(n_bar);
  while (inv_p_ < new_inv_p) {
    inv_p_ *= 2;
    double p_new = 1.0 / static_cast<double>(inv_p_);
    // Re-randomization ritual, once per halving, at every site that holds a
    // report (§2.1). The broadcast that told sites the new n̄ was already
    // charged by CoarseTracker; the correction uploads are charged here.
    for (int i = 0; i < options_.num_sites; ++i) {
      SiteState& s = sites_[static_cast<size_t>(i)];
      if (s.reported == 0) continue;
      if (s.rng.Bernoulli(0.5)) continue;  // report survives the thinning
      uint64_t old_report = s.reported;
      uint64_t failures = s.rng.GeometricFailures(p_new);
      uint64_t positions_below = old_report - 1;
      uint64_t new_report =
          failures >= positions_below ? 0 : old_report - 1 - failures;
      // Coordinator-side update (the site informs the coordinator).
      meter_.RecordUpload(i, 1);
      reported_sum_ -= old_report;
      --reported_count_;
      s.reported = new_report;
      if (new_report > 0) {
        reported_sum_ += new_report;
        ++reported_count_;
      }
    }
  }
}

void RandomizedCountTracker::Arrive(int site) {
  ++n_;
  SiteState& s = sites_[static_cast<size_t>(site)];
  ++s.count;
  // The coarse tracker may broadcast here, halving p before this arrival's
  // coin is flipped — the flip below then uses the up-to-date p.
  coarse_->Arrive(site);
  double cur_p = 1.0 / static_cast<double>(inv_p_);
  if (s.rng.Bernoulli(cur_p)) {
    meter_.RecordUpload(site, 1);
    if (s.reported > 0) reported_sum_ -= s.reported;
    else ++reported_count_;
    s.reported = s.count;
    reported_sum_ += s.reported;
  }
}

double RandomizedCountTracker::EstimateCount() const {
  double inv_p = static_cast<double>(inv_p_);
  if (options_.naive_boundary_estimator) {
    // Ablation: apply n̂_i = n̄_i - 1 + 1/p to *every* site, treating a
    // missing report as n̄_i = 0. Each report-less site contributes the
    // bias (1/p - 1) the paper's two-case estimator avoids.
    double all = static_cast<double>(reported_sum_) +
                 static_cast<double>(options_.num_sites) * (inv_p - 1.0);
    return all;
  }
  return static_cast<double>(reported_sum_) +
         static_cast<double>(reported_count_) * (inv_p - 1.0);
}

}  // namespace count
}  // namespace disttrack
