// The randomized count tracker of §2.1 (Theorem 2.1).
//
// Protocol: every arrival at site i increments n_i; the site then sends the
// fresh value of n_i to the coordinator with probability p. The coordinator
// estimates each n_i by the unbiased estimator (1)
//
//      n̂_i = n̄_i - 1 + 1/p   (if a report n̄_i exists),   0 otherwise,
//
// whose variance is at most 1/p² (Lemma 2.1), and answers n̂ = Σ n̂_i.
// With p = Θ(√k / (εn)) the total variance is (εn/c)², giving error ≤ εn
// with probability ≥ 1 - 1/c² by Chebyshev.
//
// Because p must shrink as n grows, the protocol tracks n̄ (a factor-4
// approximation of n) via CoarseTracker; p = 1/⌊εn̄/(c√k)⌋₂ is recomputed
// at every broadcast, and each halving of p triggers the re-randomization
// ritual of §2.1: a site keeps its n̄_i with probability 1/2 (Bernoulli-
// process thinning), otherwise walks n̄_i down one position per failed
// Bernoulli(p_new) coin until a success or zero. After the ritual the
// system is distributed exactly as if it had always run with the new p.
//
// Communication: O(√k/ε · logN) in expectation; per-site space: O(1) words.
//
// Hot path: by default each site realizes its Bernoulli(p) coins with a
// geometric SkipSampler (skip_sampler.h), so an arrival between successes
// costs one counter decrement instead of an RNG draw + double compare;
// every p-halving redraws the outstanding skips (exact by independence of
// unconsumed coins). The per-arrival coin path survives behind
// `use_skip_sampling = false` for A/B measurement.

#ifndef DISTTRACK_COUNT_RANDOMIZED_COUNT_H_
#define DISTTRACK_COUNT_RANDOMIZED_COUNT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "disttrack/common/event_countdown.h"
#include "disttrack/common/random.h"
#include "disttrack/common/site_group.h"
#include "disttrack/common/skip_sampler.h"
#include "disttrack/common/status.h"
#include "disttrack/count/coarse_tracker.h"
#include "disttrack/sim/protocol.h"

namespace disttrack {
namespace count {

/// Options for RandomizedCountTracker.
struct RandomizedCountOptions {
  int num_sites = 8;
  double epsilon = 0.01;
  uint64_t seed = 1;

  /// Constant-factor boost c applied to p (§2.1 "Rescaling ε and p by a
  /// constant"): variance shrinks by c², communication grows by ~c.
  /// The default 2 already measures ~0.99 coverage (fig_accuracy) because
  /// the k/p² variance bound is slack by n̄ <= n and the ⌊·⌋₂ rounding.
  double confidence_factor = 2.0;

  /// Ablation switch (DESIGN.md §5): when true, uses the naive biased
  /// estimator n̂_i = n̄_i - 1 + 1/p *even when no report exists* (treating
  /// n̄_i as 0 but still adding the 1/p - 1 correction), reproducing the
  /// Θ(εn/√k)-per-site bias the paper warns about after Lemma 2.1.
  bool naive_boundary_estimator = false;

  /// When true (default), per-arrival Bernoulli(p) coins are realized by a
  /// geometric SkipSampler per site — identical in distribution (see
  /// skip_sampler.h for the argument), ~an order of magnitude cheaper per
  /// arrival. False selects the historical one-RNG-draw-per-arrival path
  /// (kept for A/B benchmarking and equivalence tests).
  bool use_skip_sampling = true;

  /// When true (default), the batch paths histogram each chunk by site
  /// and, whenever the chunk provably contains no coarse broadcast
  /// (CoarseTracker::BatchCannotBroadcast), advance every site by its
  /// whole per-chunk arrival count in one event-driven run — O(k +
  /// events) per chunk instead of a countdown decrement per element.
  /// Bit-identical to the countdown engine (per-site coin streams and
  /// event positions are site-local); unsafe chunks fall back to it.
  /// False keeps the countdown engine everywhere (A/B benchmarking).
  bool use_site_grouping = true;

  Status Validate() const;
};

/// Randomized ε-approximate count tracking (Theorem 2.1).
class RandomizedCountTracker : public sim::CountTrackerInterface,
                               private sim::CountShardIngest {
 public:
  explicit RandomizedCountTracker(const RandomizedCountOptions& options);

  void Arrive(int site) override;
  void ArriveBatch(const sim::Arrival* arrivals, size_t count) override;
  void ArriveSites(const uint16_t* sites, size_t count) override;
  double EstimateCount() const override;
  uint64_t TrueCount() const override { return n_; }
  const sim::CommMeter& meter() const override { return meter_; }
  const sim::SpaceGauge& space() const override { return space_; }

  /// Sharded replay (sim/shard.h): site workers advance count, coarse
  /// count, and the coin process site-locally, deferring reports and
  /// their traffic to per-site sinks folded at the epoch barrier. Only
  /// the skip-sampling path has the bulk coin primitives the per-site
  /// run loop needs.
  sim::CountShardIngest* shard_ingest() override {
    return options_.use_skip_sampling ? this : nullptr;
  }

  /// Current sampling probability p (1 until n̄ exceeds c√k/ε).
  double p() const;

  /// Rounds completed so far (CoarseTracker broadcasts).
  uint64_t rounds() const { return coarse_->round(); }

  // --- Wire layer / crash recovery (sim/robust_cluster.h) ----------------
  // A tap mirrors every metered message (coarse reports, coin reports,
  // p-halving corrections, broadcasts) as a typed wire::Message at the
  // §1.1 send instant; snapshots capture one site's full private state
  // (counters, report, skip countdown, RNG) so a crashed site can be
  // restored and replayed bit-identically; the ReplayCrash* calls re-run a
  // site's lost arrivals with every coordinator-side effect suppressed
  // (no n_, meter, or estimator-aggregate writes) while the site-local
  // state and RNG stream advance exactly as the lost execution did.

  void set_wire_tap(sim::wire::WireTap* tap);

  /// Count sites can snapshot between any two arrivals.
  bool SiteSnapshotReady(int /*site*/) const { return true; }

  /// Appends site `site`'s state — plus the round-scoped globals the
  /// replay needs (1/p) — to `*out`.
  void SerializeSiteState(int site, std::vector<uint64_t>* out) const;

  /// Restores SerializeSiteState output. Also installs the serialized
  /// globals; outside crash replay the caller restores a tracker at the
  /// same stream position, where they are unchanged.
  void RestoreSiteState(int site, const std::vector<uint64_t>& blob);

  /// Brackets a crash replay of `site`. Begin saves the live round
  /// globals (the snapshot will rewind them); End verifies the replayed
  /// broadcasts evolved them back to exactly the saved values.
  void BeginCrashReplay(int site);
  void EndCrashReplay();

  /// Re-delivers one lost arrival to the crashed site. `mid_ritual_n_bar`
  /// is non-null iff this arrival's coarse report triggered a broadcast in
  /// the original run; the per-site half of the round ritual is then
  /// replayed at the exact point the original run performed it.
  void ReplayCrashArrive(int site, const uint64_t* mid_ritual_n_bar);

  /// Replays the per-site half of a round ritual that fired between two
  /// of the site's arrivals (another site triggered it).
  void ReplayCrashRitual(int site, uint64_t n_bar);

 private:
  void OnBroadcast(uint64_t round, uint64_t n_bar);
  uint64_t InvPFor(uint64_t n_bar) const;
  void ArriveOne(int site);
  void Report(int site);
  void EmitTap(sim::wire::MsgType type, int site, uint64_t a);

  // --- Sharded replay (sim::CountShardIngest) ----------------------------
  void ShardEpochBegin(uint64_t arrivals_in_epoch) override;
  void ShardArriveRun(int site, uint64_t count) override;
  void ShardEpochEnd() override;

  // Speculative online surface (sim::OnlineCountSession). Snapshots reuse
  // the crash-recovery site serialization — a count site's full private
  // state is always capturable; the trial fold pre-checks the summed
  // deferred coarse deltas against the broadcast limit (exact, see
  // shard.h) before running the normal fold.
  bool ShardOnlineReady() const override {
    return options_.use_skip_sampling;
  }
  bool ShardSnapshotSite(int site, std::vector<uint64_t>* out) override;
  void ShardRestoreSite(int site, const std::vector<uint64_t>& blob) override;
  bool ShardTryEpochEnd() override;
  void ShardAbortEpoch(uint64_t arrivals) override;

  // Coordinator messages a site worker buffered during the current shard
  // epoch; folded (and cleared) by ShardEpochEnd.
  struct ShardSink {
    std::vector<uint64_t> coarse_deltas;  // deferred coarse-report deltas
    int64_t reported_sum_delta = 0;       // Σ n̄_i change from coin reports
    int64_t reported_count_delta = 0;     // |{i : n̄_i exists}| change
    uint64_t report_messages = 0;         // coin reports (1 word each)
  };
  std::vector<ShardSink> shard_sinks_;

  // --- Batched fast path -------------------------------------------------
  // The shared EventCountdown engine (common/event_countdown.h): each site
  // counts down to its next event — a coarse-tracker report or a
  // skip-sampler coin success, whichever is sooner. Events fire at exactly
  // the arrival indices where the scalar path would fire them, and the RNG
  // draw sequence is unchanged, so the batch path is bit-identical to
  // per-element Arrive() with skip sampling (tested in
  // skip_equivalence_test and batch_equivalence_test).
  // Arrivals at `site` until its next event (coarse report or coin
  // success) — the single source of truth for both the countdown engine
  // (RearmSite) and the shard run loop, so the two delivery paths cannot
  // drift apart.
  uint64_t NextEventGap(int site) const;
  void RearmSite(int site);
  void RearmAll();
  void SyncEventless(int site, uint64_t consumed);
  void HandleEventArrival(int site);
  void ResyncAllMidBatch();
  // Countdown-engine chunk bodies (the pre-grouping ArriveBatch /
  // ArriveSites loops), used directly when use_site_grouping is off and
  // as the fallback for chunks that may broadcast.
  void CountdownBatch(const sim::Arrival* arrivals, size_t count);
  void CountdownSites(const uint16_t* sites, size_t count);
  // Advances `site` by its whole slice of a certified broadcast-free
  // chunk: eventless stretches retire in bulk, events replay the scalar
  // path — the per-site projection of the countdown engine, without the
  // per-element decrement.
  void GroupedRun(int site, uint64_t count);

  RandomizedCountOptions options_;
  sim::CommMeter meter_;
  sim::SpaceGauge space_;
  std::unique_ptr<CoarseTracker> coarse_;
  sim::wire::WireTap* tap_ = nullptr;

  // Crash-replay bookkeeping (see BeginCrashReplay).
  bool crash_replay_ = false;
  int replay_site_ = -1;
  uint64_t replay_saved_inv_p_ = 0;
  int replay_saved_log2_ = 0;

  // Site-side state (O(1) words each).
  struct SiteState {
    uint64_t count = 0;     // exact n_i
    uint64_t reported = 0;  // n̄_i; 0 means "does not exist"
    SkipSampler skip;       // gap to the site's next Bernoulli(p) success
    Rng rng{0};
  };
  std::vector<SiteState> sites_;

  // Coordinator-side state.
  uint64_t inv_p_ = 1;          // 1/p, always a power of two
  int log2_inv_p_ = 0;          // log2(inv_p_), the skip samplers' argument
  uint64_t reported_sum_ = 0;   // Σ n̄_i over existing reports
  uint64_t reported_count_ = 0; // |{i : n̄_i exists}|
  uint64_t n_ = 0;              // ground truth (harness-side)

  // Batch fast-path countdowns (meaningful only while in_batch_).
  EventCountdown countdown_;
  bool in_batch_ = false;
  // Site-grouped delivery scratch + the broadcast-inside-grouped-chunk
  // abort guard (see OnBroadcast).
  SiteGrouper grouper_;
  bool grouped_chunk_active_ = false;
};

}  // namespace count
}  // namespace disttrack

#endif  // DISTTRACK_COUNT_RANDOMIZED_COUNT_H_
