// Flat open-addressing counter store for the sticky counter lists L_i of
// §3.1: a power-of-two-capacity linear-probing table of (item, count)
// pairs with a one-byte control mirror.
//
// The frequency hot path does one lookup per arrival (tracked items
// increment their counter; untracked items miss), inserts only on a
// counter-creation coin success (probability p), and bulk-clears at every
// round boundary and virtual-site split — it never erases an individual
// key. That access mix makes the classic tombstone problem of open
// addressing disappear: Clear() re-zeroes the one-byte control mirror
// with a memset, which empties every slot at once, and the linear-probe
// invariant ("a live chain is never interrupted by an empty slot") holds
// within each epoch because nothing is ever deleted inside one.
//
// Probes are served by the control mirror: ctrl_[i] is 0 when slot i is
// empty, else a 7-bit fingerprint of the occupant's hash (high bit set so
// it is never 0). A miss — the overwhelmingly common case, since only
// ~c/(ε√k) items are tracked per site — costs a multiply and one byte
// load instead of a 16-byte slot inspection; the payload slot is read
// only on a fingerprint match. Because the mirror is the single source
// of liveness, a fingerprint match already implies the slot was written
// after the last Clear(): slots carry no epoch tag, stay a cache-aligned
// 16 bytes, and the n̄/k split threshold amortizes the memset to well
// under a byte per arrival. (An epoch counter survives for diagnostics
// only.)
//
// Slots carry the full 64-bit key, so 0 and UINT64_MAX are ordinary keys
// (occupancy is decided by the control byte, not a sentinel key). Probing
// starts from a Fibonacci hash of the key (multiply by the 64-bit golden
// ratio, keep the top bits), which scatters adjacent item ids — the
// common case in Zipf workloads — across the table.

// SIMD probing (PR 10): the control mirror carries a mirrored tail of
// kCtrlGroupWidth bytes past the capacity (ctrl_[cap + j] == ctrl_[j mod
// cap]), so a whole probe group can be inspected with one unaligned
// 32-byte load — simd::MatchCtrlGroup answers "which positions match the
// fingerprint / which are empty" as bitmasks, and the probe visits match
// bits below the first empty bit: the exact scalar visit order, ~32 probe
// positions per load instead of one. Group probes are used ONLY on the
// bulk run path (GroupRun), which is compiled as one per-function
// target("avx2") region so the group matcher inlines and the SSE<->AVX
// transition (vzeroupper) is paid once per run. Single-key Find() stays
// scalar always: at 1/2 load the miss chain is ~1.5 one-byte control
// loads, which an out-of-line vector call cannot beat (measured 0.75x).
// The grouped path is runtime-dispatched (simd::Avx2Active(), cached per
// table); the scalar walk below remains the reference and the non-AVX2
// fallback. Counters are exact integers either way, so probe strategy
// can never shift an estimate, a coin, or a meter total (tier A).

#ifndef DISTTRACK_FREQUENCY_COUNTER_TABLE_H_
#define DISTTRACK_FREQUENCY_COUNTER_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "disttrack/common/simd.h"

namespace disttrack {
namespace frequency {

/// Open-addressing uint64 -> uint64 counter map with bulk Clear().
/// Grows at 1/2 load (linear-probe miss chains stay ~1.5 probes); never
/// shrinks (the per-round population is capped near p * n_bar / k by the
/// virtual-site split, so capacity stabilizes).
class CounterTable {
 public:
  CounterTable() { Rebuild(kMinCapacity); }

  /// Pointer to the live counter of `key`, or nullptr if untracked.
  /// The pointer is valid until the next Insert() or Clear().
  /// Always the scalar probe — see the header comment for why a lone
  /// lookup never goes through the vector group matcher.
  uint64_t* Find(uint64_t key) { return FindScalar(key); }

  const uint64_t* Find(uint64_t key) const {
    return const_cast<CounterTable*>(this)->Find(key);
  }

  /// ++counter of `key` iff it is tracked — the eventless-arrival path.
  void IncrementIfTracked(uint64_t key) {
    if (uint64_t* value = Find(key)) ++*value;
  }

  /// IncrementIfTracked over a whole eventless run (the site-grouped hot
  /// loop). The table invariants (mask, control base) are hoisted out of
  /// the loop, the run is walked in four independent lanes so the
  /// hash → control-byte → slot dependency chains of four keys overlap
  /// in the pipeline, and a run of equal adjacent keys — bursty
  /// workloads delivered site-contiguously — is hashed once per lane and
  /// served from the previous probe's counter pointer. No inserts happen
  /// inside an eventless run, so counter pointers stay valid across it.
  void IncrementTrackedRun(const uint64_t* keys, size_t count) {
#if DISTTRACK_SIMD_ENABLED
    if (simd_) {
      GroupRun(keys, count);
      return;
    }
#endif
    size_t quarter = count / 4;
    if (quarter >= 8) {
      LaneRun(keys, keys + quarter, keys + 2 * quarter, keys + 3 * quarter,
              quarter);
      keys += 4 * quarter;
      count -= 4 * quarter;
    }
    uint64_t last_key = 0;
    uint64_t* last_value = nullptr;
    bool have_last = false;
    for (size_t i = 0; i < count; ++i) {
      uint64_t key = keys[i];
      if (have_last && key == last_key) {
        if (last_value != nullptr) ++*last_value;
        continue;
      }
      last_value = Find(key);
      if (last_value != nullptr) ++*last_value;
      last_key = key;
      have_last = true;
    }
  }

  /// Starts tracking `key` at `value`. `key` must not be live (callers
  /// only insert after a Find() miss).
  void Insert(uint64_t key, uint64_t value) {
    if (size_ + 1 > slots_.size() / 2) Grow();
    uint64_t h = Mix(key);
    size_t idx = h >> shift_;
    while (ctrl_[idx] != 0) idx = (idx + 1) & mask_;
    SetCtrl(idx, Fingerprint(h));
    slots_[idx] = Slot{key, value};
    ++size_;
  }

  /// Drops every counter (round boundary / virtual-site split): the
  /// control mirror is re-zeroed at a byte per slot, which empties every
  /// payload slot at once. Capacity is retained.
  void Clear() {
    ++epoch_;
    std::memset(ctrl_.data(), 0, ctrl_.size());
    size_ = 0;
  }

  /// Invokes fn(key, value) for every live counter, in table (probe)
  /// order. The order is deterministic for a fixed insertion history but
  /// not meaningful; snapshot serialization is the intended caller, and
  /// restoring via Insert() in any order rebuilds an observably identical
  /// table (lookups and increments do not depend on physical layout).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (ctrl_[i] != 0) fn(slots_[i].key, slots_[i].value);
    }
  }

  /// Live counters in the current epoch.
  size_t size() const { return size_; }

  size_t capacity() const { return slots_.size(); }

  /// Current epoch (diagnostics/tests; advances on every Clear()).
  uint64_t epoch() const { return epoch_; }

 private:
  struct Slot {
    uint64_t key = 0;
    uint64_t value = 0;
  };

  static constexpr size_t kMinCapacity = 16;

  static uint64_t Mix(uint64_t key) {
    return key * 0x9E3779B97F4A7C15ull;
  }

  // 7 hash bits immediately below the index bits currently in use (the
  // index keeps the top 64 - shift_ bits), high bit set so occupied != 0.
  // Taking them relative to shift_ keeps the fingerprint independent of
  // the home bucket at every capacity — same-bucket key collisions stay
  // rejectable by the one-byte mirror.
  uint8_t Fingerprint(uint64_t h) const {
    return static_cast<uint8_t>((h >> (shift_ - 8)) | 0x80u);
  }

  // Scalar reference probe: one control byte per step, first fingerprint
  // match with a key hit before the first empty wins.
  uint64_t* FindScalar(uint64_t key) {
    uint64_t h = Mix(key);
    size_t idx = h >> shift_;
    uint8_t fp = Fingerprint(h);
    for (;;) {
      uint8_t c = ctrl_[idx];
      if (c == 0) return nullptr;
      if (c == fp) {
        Slot& slot = slots_[idx];
        if (slot.key == key) return &slot.value;
      }
      idx = (idx + 1) & mask_;
    }
  }

#if DISTTRACK_SIMD_ENABLED
  // Grouped probe: 32 control bytes per load via the mirrored tail.
  // Match bits below the first empty bit are visited in ascending
  // position order — the scalar probe's visit order exactly — so both
  // probes return the same slot. When the group width exceeds the
  // capacity (cap 16), positions past it alias earlier slots through the
  // index mask; harmless, because a half-loaded table always has an
  // empty within the first `capacity` positions.
  //
  // Compiled target("avx2") so the group matcher inlines here (no
  // per-probe call or ISA transition); only GroupRun — itself an avx2
  // region, entered only when Avx2Active() — may call it.
  DISTTRACK_TARGET_AVX2 uint64_t* FindGrouped(uint64_t key) {
    uint64_t h = Mix(key);
    size_t idx = h >> shift_;
    uint8_t fp = Fingerprint(h);
    for (;;) {
      simd::CtrlGroup g = simd::MatchCtrlGroupAvx2(ctrl_.data() + idx, fp);
      uint32_t candidates = g.match;
      if (g.empty != 0) {
        candidates &= g.empty ^ (g.empty - 1);  // bits below first empty
      }
      while (candidates != 0) {
        size_t slot =
            (idx + static_cast<unsigned>(__builtin_ctz(candidates))) & mask_;
        if (slots_[slot].key == key) return &slots_[slot].value;
        candidates &= candidates - 1;
      }
      if (g.empty != 0) return nullptr;
      idx = (idx + simd::kCtrlGroupWidth) & mask_;
    }
  }

  // Grouped-probe eventless run: key hashes are precomputed a fixed
  // distance ahead so the control and slot cache lines are in flight
  // before their probe issues, and a burst of equal adjacent keys is
  // served from the previous probe's counter pointer (same dedup as the
  // scalar walk — no inserts happen inside an eventless run). The whole
  // run is one avx2 region: vzeroupper once at exit, not per key.
  DISTTRACK_TARGET_AVX2 void GroupRun(const uint64_t* keys, size_t count) {
    constexpr size_t kPrefetchAhead = 8;
    uint64_t last_key = 0;
    uint64_t* last_value = nullptr;
    bool have_last = false;
    for (size_t i = 0; i < count; ++i) {
      if (i + kPrefetchAhead < count) {
        size_t pidx = Mix(keys[i + kPrefetchAhead]) >> shift_;
        __builtin_prefetch(ctrl_.data() + pidx, 0, 1);
        __builtin_prefetch(slots_.data() + pidx, 0, 1);
      }
      uint64_t key = keys[i];
      if (have_last && key == last_key) {
        if (last_value != nullptr) ++*last_value;
        continue;
      }
      last_value = FindGrouped(key);
      if (last_value != nullptr) ++*last_value;
      last_key = key;
      have_last = true;
    }
  }
#endif  // DISTTRACK_SIMD_ENABLED

  // Writes a control byte and keeps the mirrored tail in lockstep (for
  // capacity < group width the mirror wraps more than once).
  void SetCtrl(size_t idx, uint8_t fp) {
    ctrl_[idx] = fp;
    size_t capacity = slots_.size();
    for (size_t m = capacity + idx; m < capacity + simd::kCtrlGroupWidth;
         m += capacity) {
      ctrl_[m] = fp;
    }
  }

  // Four-lane walk over [a, a+n) ∪ [b, b+n) ∪ [c, c+n) ∪ [d, d+n): the
  // loop body carries four independent probe chains, which is what lets
  // the out-of-order core overlap their latencies. Each lane keeps the
  // key-run dedup of the scalar loop.
  void LaneRun(const uint64_t* a, const uint64_t* b, const uint64_t* c,
               const uint64_t* d, size_t n) {
    uint64_t lk0 = 0, lk1 = 0, lk2 = 0, lk3 = 0;
    uint64_t *lv0 = nullptr, *lv1 = nullptr, *lv2 = nullptr, *lv3 = nullptr;
    bool h0 = false, h1 = false, h2 = false, h3 = false;
    for (size_t i = 0; i < n; ++i) {
      uint64_t k0 = a[i], k1 = b[i], k2 = c[i], k3 = d[i];
      if (h0 && k0 == lk0) {
        if (lv0 != nullptr) ++*lv0;
      } else {
        lv0 = Find(k0);
        if (lv0 != nullptr) ++*lv0;
        lk0 = k0;
        h0 = true;
      }
      if (h1 && k1 == lk1) {
        if (lv1 != nullptr) ++*lv1;
      } else {
        lv1 = Find(k1);
        if (lv1 != nullptr) ++*lv1;
        lk1 = k1;
        h1 = true;
      }
      if (h2 && k2 == lk2) {
        if (lv2 != nullptr) ++*lv2;
      } else {
        lv2 = Find(k2);
        if (lv2 != nullptr) ++*lv2;
        lk2 = k2;
        h2 = true;
      }
      if (h3 && k3 == lk3) {
        if (lv3 != nullptr) ++*lv3;
      } else {
        lv3 = Find(k3);
        if (lv3 != nullptr) ++*lv3;
        lk3 = k3;
        h3 = true;
      }
    }
  }

  void Rebuild(size_t capacity) {
    slots_.assign(capacity, Slot{});
    // The group-probe tail mirrors the first bytes past the capacity so a
    // group load never wraps; zeros are self-consistent.
    ctrl_.assign(capacity + simd::kCtrlGroupWidth, 0);
    mask_ = capacity - 1;
    shift_ = 64;
    while ((size_t{1} << (64 - shift_)) < capacity) --shift_;
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    std::vector<uint8_t> old_ctrl = std::move(ctrl_);
    Rebuild(old.size() * 2);
    for (size_t i = 0; i < old.size(); ++i) {
      if (old_ctrl[i] == 0) continue;  // empty this epoch
      const Slot& slot = old[i];
      uint64_t h = Mix(slot.key);
      size_t idx = h >> shift_;
      while (ctrl_[idx] != 0) idx = (idx + 1) & mask_;
      SetCtrl(idx, Fingerprint(h));
      slots_[idx] = slot;
    }
  }

  std::vector<Slot> slots_;
  std::vector<uint8_t> ctrl_;  // 0 = empty, else fingerprint (liveness);
                               // capacity + kCtrlGroupWidth bytes, tail
                               // mirroring the head (SetCtrl)
  size_t mask_ = 0;
  int shift_ = 64;       // IndexFor keeps the top log2(capacity) bits
  size_t size_ = 0;      // live slots in the current epoch
  uint64_t epoch_ = 1;   // diagnostics: number of bulk clears + 1
#if DISTTRACK_SIMD_ENABLED
  // Run-path dispatch, cached at construction (tables are rebuilt per
  // tracker / per bench rep, so mode flips take effect at the next one).
  bool simd_ = simd::Avx2Active();
#endif
};

}  // namespace frequency
}  // namespace disttrack

#endif  // DISTTRACK_FREQUENCY_COUNTER_TABLE_H_
