// Flat open-addressing counter store for the sticky counter lists L_i of
// §3.1: a power-of-two-capacity linear-probing table of (item, count)
// pairs with epoch-tagged slots and a one-byte control mirror.
//
// The frequency hot path does one lookup per arrival (tracked items
// increment their counter; untracked items miss), inserts only on a
// counter-creation coin success (probability p), and bulk-clears at every
// round boundary and virtual-site split — it never erases an individual
// key. That access mix makes the classic tombstone problem of open
// addressing disappear: Clear() bumps the epoch, turning every live slot
// back into an empty one without touching it, and the linear-probe
// invariant ("a live chain is never interrupted by an empty slot") holds
// within each epoch because nothing is ever deleted inside one.
//
// Probes are served by the control mirror: ctrl_[i] is 0 when slot i is
// empty in the current epoch, else a 7-bit fingerprint of the occupant's
// hash (high bit set so it is never 0). A miss — the overwhelmingly
// common case, since only ~c/(ε√k) items are tracked per site — costs a
// multiply and one byte load instead of a 24-byte slot inspection; the
// payload slot is read only on a fingerprint match. The mirror is the
// epoch's materialization at one byte per slot: Clear() zeroes it with a
// memset, which the n̄/k split threshold amortizes to well under a byte
// per arrival, while the payload slots keep their epoch tags (authorita-
// tive liveness, consulted on fingerprint matches and during growth).
//
// Slots carry the full 64-bit key, so 0 and UINT64_MAX are ordinary keys
// (occupancy is decided by the epoch tag and control byte, not a sentinel
// key). Probing starts from a Fibonacci hash of the key (multiply by the
// 64-bit golden ratio, keep the top bits), which scatters adjacent item
// ids — the common case in Zipf workloads — across the table.

#ifndef DISTTRACK_FREQUENCY_COUNTER_TABLE_H_
#define DISTTRACK_FREQUENCY_COUNTER_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace disttrack {
namespace frequency {

/// Open-addressing uint64 -> uint64 counter map with bulk Clear().
/// Grows at 1/2 load (linear-probe miss chains stay ~1.5 probes); never
/// shrinks (the per-round population is capped near p * n_bar / k by the
/// virtual-site split, so capacity stabilizes).
class CounterTable {
 public:
  CounterTable() { Rebuild(kMinCapacity); }

  /// Pointer to the live counter of `key`, or nullptr if untracked.
  /// The pointer is valid until the next Insert() or Clear().
  uint64_t* Find(uint64_t key) {
    uint64_t h = Mix(key);
    size_t idx = h >> shift_;
    uint8_t fp = Fingerprint(h);
    for (;;) {
      uint8_t c = ctrl_[idx];
      if (c == 0) return nullptr;
      if (c == fp) {
        Slot& slot = slots_[idx];
        if (slot.key == key && slot.epoch == epoch_) return &slot.value;
      }
      idx = (idx + 1) & mask_;
    }
  }

  const uint64_t* Find(uint64_t key) const {
    return const_cast<CounterTable*>(this)->Find(key);
  }

  /// ++counter of `key` iff it is tracked — the eventless-arrival path.
  void IncrementIfTracked(uint64_t key) {
    if (uint64_t* value = Find(key)) ++*value;
  }

  /// Starts tracking `key` at `value`. `key` must not be live (callers
  /// only insert after a Find() miss).
  void Insert(uint64_t key, uint64_t value) {
    if (size_ + 1 > slots_.size() / 2) Grow();
    uint64_t h = Mix(key);
    size_t idx = h >> shift_;
    while (ctrl_[idx] != 0) idx = (idx + 1) & mask_;
    ctrl_[idx] = Fingerprint(h);
    slots_[idx] = Slot{key, value, epoch_};
    ++size_;
  }

  /// Drops every counter (round boundary / virtual-site split): the epoch
  /// advance empties all payload slots at once; the control mirror is
  /// re-zeroed at a byte per slot. Capacity is retained.
  void Clear() {
    ++epoch_;
    std::memset(ctrl_.data(), 0, ctrl_.size());
    size_ = 0;
  }

  /// Live counters in the current epoch.
  size_t size() const { return size_; }

  size_t capacity() const { return slots_.size(); }

  /// Current epoch (diagnostics/tests; advances on every Clear()).
  uint64_t epoch() const { return epoch_; }

 private:
  struct Slot {
    uint64_t key = 0;
    uint64_t value = 0;
    uint64_t epoch = 0;  // live iff == table epoch (which starts at 1)
  };

  static constexpr size_t kMinCapacity = 16;

  static uint64_t Mix(uint64_t key) {
    return key * 0x9E3779B97F4A7C15ull;
  }

  // 7 hash bits immediately below the index bits currently in use (the
  // index keeps the top 64 - shift_ bits), high bit set so occupied != 0.
  // Taking them relative to shift_ keeps the fingerprint independent of
  // the home bucket at every capacity — same-bucket key collisions stay
  // rejectable by the one-byte mirror.
  uint8_t Fingerprint(uint64_t h) const {
    return static_cast<uint8_t>((h >> (shift_ - 8)) | 0x80u);
  }

  void Rebuild(size_t capacity) {
    slots_.assign(capacity, Slot{});
    ctrl_.assign(capacity, 0);
    mask_ = capacity - 1;
    shift_ = 64;
    while ((size_t{1} << (64 - shift_)) < capacity) --shift_;
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    Rebuild(old.size() * 2);
    for (const Slot& slot : old) {
      if (slot.epoch != epoch_) continue;  // stale epochs stay behind
      uint64_t h = Mix(slot.key);
      size_t idx = h >> shift_;
      while (ctrl_[idx] != 0) idx = (idx + 1) & mask_;
      ctrl_[idx] = Fingerprint(h);
      slots_[idx] = slot;
    }
  }

  std::vector<Slot> slots_;
  std::vector<uint8_t> ctrl_;  // 0 = empty this epoch, else fingerprint
  size_t mask_ = 0;
  int shift_ = 64;       // IndexFor keeps the top log2(capacity) bits
  size_t size_ = 0;      // live slots in the current epoch
  uint64_t epoch_ = 1;   // fresh slots (epoch 0) read as empty
};

}  // namespace frequency
}  // namespace disttrack

#endif  // DISTTRACK_FREQUENCY_COUNTER_TABLE_H_
