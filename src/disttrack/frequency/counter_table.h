// Flat open-addressing counter store for the sticky counter lists L_i of
// §3.1: a power-of-two-capacity linear-probing table of (item, count)
// pairs with a one-byte control mirror.
//
// The frequency hot path does one lookup per arrival (tracked items
// increment their counter; untracked items miss), inserts only on a
// counter-creation coin success (probability p), and bulk-clears at every
// round boundary and virtual-site split — it never erases an individual
// key. That access mix makes the classic tombstone problem of open
// addressing disappear: Clear() re-zeroes the one-byte control mirror
// with a memset, which empties every slot at once, and the linear-probe
// invariant ("a live chain is never interrupted by an empty slot") holds
// within each epoch because nothing is ever deleted inside one.
//
// Probes are served by the control mirror: ctrl_[i] is 0 when slot i is
// empty, else a 7-bit fingerprint of the occupant's hash (high bit set so
// it is never 0). A miss — the overwhelmingly common case, since only
// ~c/(ε√k) items are tracked per site — costs a multiply and one byte
// load instead of a 16-byte slot inspection; the payload slot is read
// only on a fingerprint match. Because the mirror is the single source
// of liveness, a fingerprint match already implies the slot was written
// after the last Clear(): slots carry no epoch tag, stay a cache-aligned
// 16 bytes, and the n̄/k split threshold amortizes the memset to well
// under a byte per arrival. (An epoch counter survives for diagnostics
// only.)
//
// Slots carry the full 64-bit key, so 0 and UINT64_MAX are ordinary keys
// (occupancy is decided by the control byte, not a sentinel key). Probing
// starts from a Fibonacci hash of the key (multiply by the 64-bit golden
// ratio, keep the top bits), which scatters adjacent item ids — the
// common case in Zipf workloads — across the table.

#ifndef DISTTRACK_FREQUENCY_COUNTER_TABLE_H_
#define DISTTRACK_FREQUENCY_COUNTER_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace disttrack {
namespace frequency {

/// Open-addressing uint64 -> uint64 counter map with bulk Clear().
/// Grows at 1/2 load (linear-probe miss chains stay ~1.5 probes); never
/// shrinks (the per-round population is capped near p * n_bar / k by the
/// virtual-site split, so capacity stabilizes).
class CounterTable {
 public:
  CounterTable() { Rebuild(kMinCapacity); }

  /// Pointer to the live counter of `key`, or nullptr if untracked.
  /// The pointer is valid until the next Insert() or Clear().
  uint64_t* Find(uint64_t key) {
    uint64_t h = Mix(key);
    size_t idx = h >> shift_;
    uint8_t fp = Fingerprint(h);
    for (;;) {
      uint8_t c = ctrl_[idx];
      if (c == 0) return nullptr;
      if (c == fp) {
        Slot& slot = slots_[idx];
        if (slot.key == key) return &slot.value;
      }
      idx = (idx + 1) & mask_;
    }
  }

  const uint64_t* Find(uint64_t key) const {
    return const_cast<CounterTable*>(this)->Find(key);
  }

  /// ++counter of `key` iff it is tracked — the eventless-arrival path.
  void IncrementIfTracked(uint64_t key) {
    if (uint64_t* value = Find(key)) ++*value;
  }

  /// IncrementIfTracked over a whole eventless run (the site-grouped hot
  /// loop). The table invariants (mask, control base) are hoisted out of
  /// the loop, the run is walked in four independent lanes so the
  /// hash → control-byte → slot dependency chains of four keys overlap
  /// in the pipeline, and a run of equal adjacent keys — bursty
  /// workloads delivered site-contiguously — is hashed once per lane and
  /// served from the previous probe's counter pointer. No inserts happen
  /// inside an eventless run, so counter pointers stay valid across it.
  void IncrementTrackedRun(const uint64_t* keys, size_t count) {
    size_t quarter = count / 4;
    if (quarter >= 8) {
      LaneRun(keys, keys + quarter, keys + 2 * quarter, keys + 3 * quarter,
              quarter);
      keys += 4 * quarter;
      count -= 4 * quarter;
    }
    uint64_t last_key = 0;
    uint64_t* last_value = nullptr;
    bool have_last = false;
    for (size_t i = 0; i < count; ++i) {
      uint64_t key = keys[i];
      if (have_last && key == last_key) {
        if (last_value != nullptr) ++*last_value;
        continue;
      }
      last_value = Find(key);
      if (last_value != nullptr) ++*last_value;
      last_key = key;
      have_last = true;
    }
  }

  /// Starts tracking `key` at `value`. `key` must not be live (callers
  /// only insert after a Find() miss).
  void Insert(uint64_t key, uint64_t value) {
    if (size_ + 1 > slots_.size() / 2) Grow();
    uint64_t h = Mix(key);
    size_t idx = h >> shift_;
    while (ctrl_[idx] != 0) idx = (idx + 1) & mask_;
    ctrl_[idx] = Fingerprint(h);
    slots_[idx] = Slot{key, value};
    ++size_;
  }

  /// Drops every counter (round boundary / virtual-site split): the
  /// control mirror is re-zeroed at a byte per slot, which empties every
  /// payload slot at once. Capacity is retained.
  void Clear() {
    ++epoch_;
    std::memset(ctrl_.data(), 0, ctrl_.size());
    size_ = 0;
  }

  /// Invokes fn(key, value) for every live counter, in table (probe)
  /// order. The order is deterministic for a fixed insertion history but
  /// not meaningful; snapshot serialization is the intended caller, and
  /// restoring via Insert() in any order rebuilds an observably identical
  /// table (lookups and increments do not depend on physical layout).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] != 0) fn(slots_[i].key, slots_[i].value);
    }
  }

  /// Live counters in the current epoch.
  size_t size() const { return size_; }

  size_t capacity() const { return slots_.size(); }

  /// Current epoch (diagnostics/tests; advances on every Clear()).
  uint64_t epoch() const { return epoch_; }

 private:
  struct Slot {
    uint64_t key = 0;
    uint64_t value = 0;
  };

  static constexpr size_t kMinCapacity = 16;

  static uint64_t Mix(uint64_t key) {
    return key * 0x9E3779B97F4A7C15ull;
  }

  // 7 hash bits immediately below the index bits currently in use (the
  // index keeps the top 64 - shift_ bits), high bit set so occupied != 0.
  // Taking them relative to shift_ keeps the fingerprint independent of
  // the home bucket at every capacity — same-bucket key collisions stay
  // rejectable by the one-byte mirror.
  uint8_t Fingerprint(uint64_t h) const {
    return static_cast<uint8_t>((h >> (shift_ - 8)) | 0x80u);
  }

  // Four-lane walk over [a, a+n) ∪ [b, b+n) ∪ [c, c+n) ∪ [d, d+n): the
  // loop body carries four independent probe chains, which is what lets
  // the out-of-order core overlap their latencies. Each lane keeps the
  // key-run dedup of the scalar loop.
  void LaneRun(const uint64_t* a, const uint64_t* b, const uint64_t* c,
               const uint64_t* d, size_t n) {
    uint64_t lk0 = 0, lk1 = 0, lk2 = 0, lk3 = 0;
    uint64_t *lv0 = nullptr, *lv1 = nullptr, *lv2 = nullptr, *lv3 = nullptr;
    bool h0 = false, h1 = false, h2 = false, h3 = false;
    for (size_t i = 0; i < n; ++i) {
      uint64_t k0 = a[i], k1 = b[i], k2 = c[i], k3 = d[i];
      if (h0 && k0 == lk0) {
        if (lv0 != nullptr) ++*lv0;
      } else {
        lv0 = Find(k0);
        if (lv0 != nullptr) ++*lv0;
        lk0 = k0;
        h0 = true;
      }
      if (h1 && k1 == lk1) {
        if (lv1 != nullptr) ++*lv1;
      } else {
        lv1 = Find(k1);
        if (lv1 != nullptr) ++*lv1;
        lk1 = k1;
        h1 = true;
      }
      if (h2 && k2 == lk2) {
        if (lv2 != nullptr) ++*lv2;
      } else {
        lv2 = Find(k2);
        if (lv2 != nullptr) ++*lv2;
        lk2 = k2;
        h2 = true;
      }
      if (h3 && k3 == lk3) {
        if (lv3 != nullptr) ++*lv3;
      } else {
        lv3 = Find(k3);
        if (lv3 != nullptr) ++*lv3;
        lk3 = k3;
        h3 = true;
      }
    }
  }

  void Rebuild(size_t capacity) {
    slots_.assign(capacity, Slot{});
    ctrl_.assign(capacity, 0);
    mask_ = capacity - 1;
    shift_ = 64;
    while ((size_t{1} << (64 - shift_)) < capacity) --shift_;
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    std::vector<uint8_t> old_ctrl = std::move(ctrl_);
    Rebuild(old.size() * 2);
    for (size_t i = 0; i < old.size(); ++i) {
      if (old_ctrl[i] == 0) continue;  // empty this epoch
      const Slot& slot = old[i];
      uint64_t h = Mix(slot.key);
      size_t idx = h >> shift_;
      while (ctrl_[idx] != 0) idx = (idx + 1) & mask_;
      ctrl_[idx] = Fingerprint(h);
      slots_[idx] = slot;
    }
  }

  std::vector<Slot> slots_;
  std::vector<uint8_t> ctrl_;  // 0 = empty, else fingerprint (liveness)
  size_t mask_ = 0;
  int shift_ = 64;       // IndexFor keeps the top log2(capacity) bits
  size_t size_ = 0;      // live slots in the current epoch
  uint64_t epoch_ = 1;   // diagnostics: number of bulk clears + 1
};

}  // namespace frequency
}  // namespace disttrack

#endif  // DISTTRACK_FREQUENCY_COUNTER_TABLE_H_
