#include "disttrack/frequency/deterministic_frequency.h"

#include <algorithm>
#include <cmath>

#include "disttrack/common/ordered_drain.h"

namespace disttrack {
namespace frequency {

Status DeterministicFrequencyOptions::Validate() const {
  if (num_sites < 1) {
    return Status::InvalidArgument("num_sites must be >= 1");
  }
  if (!(epsilon > 0.0) || epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  return Status::OK();
}

DeterministicFrequencyTracker::DeterministicFrequencyTracker(
    const DeterministicFrequencyOptions& options)
    : options_(options),
      meter_(options.num_sites),
      space_(options.num_sites),
      sites_(static_cast<size_t>(options.num_sites)),
      sketch_capacity_(static_cast<size_t>(
          std::ceil(4.0 / options.epsilon))) {
  for (auto& s : sites_) {
    s.sketch = std::make_unique<summaries::MisraGries>(sketch_capacity_);
  }
  coarse_ = std::make_unique<count::CoarseTracker>(options_.num_sites,
                                                   &meter_);
  coarse_->AddObserver([this](uint64_t round, uint64_t n_bar) {
    OnBroadcast(round, n_bar);
  });
}

void DeterministicFrequencyTracker::UpdateSpace(int site) {
  const SiteState& s = sites_[static_cast<size_t>(site)];
  // The site stores the sketch plus the last-reported values it mirrors.
  space_.Set(site, s.sketch->SpaceWords() + 2 * s.mirror.size() + 2);
}

void DeterministicFrequencyTracker::MaybeReport(int site, uint64_t item) {
  SiteState& s = sites_[static_cast<size_t>(site)];
  uint64_t current = s.sketch->Estimate(item);
  auto it = s.mirror.find(item);
  uint64_t reported = it == s.mirror.end() ? 0 : it->second;
  uint64_t drift =
      current >= reported ? current - reported : reported - current;
  if (drift < drift_threshold_) return;

  // Site -> coordinator: (item, new counter value).
  meter_.RecordUpload(site, 2);
  live_totals_[item] +=
      static_cast<int64_t>(current) - static_cast<int64_t>(reported);
  if (current == 0) {
    if (it != s.mirror.end()) s.mirror.erase(it);
  } else if (it == s.mirror.end()) {
    s.mirror.emplace(item, current);
  } else {
    it->second = current;
  }
}

void DeterministicFrequencyTracker::SweepAfterDecrement(int site) {
  SiteState& s = sites_[static_cast<size_t>(site)];
  // A decrement-all event changed every tracked counter; also, counters may
  // have been evicted entirely. Check every mirrored or tracked item once,
  // in item order: the sweep emits site->coordinator reports, so its visit
  // order is message order and must not depend on the mirror's hash layout.
  std::vector<uint64_t> to_check = common::SortedKeys(s.mirror);
  for (const auto& [item, _] : s.sketch->Items()) to_check.push_back(item);
  std::sort(to_check.begin(), to_check.end());
  to_check.erase(std::unique(to_check.begin(), to_check.end()),
                 to_check.end());
  for (uint64_t item : to_check) MaybeReport(site, item);
}

void DeterministicFrequencyTracker::Arrive(int site, uint64_t item) {
  sim::CheckSiteInRange(site, options_.num_sites);
  ++n_;
  coarse_->Arrive(site);
  SiteState& s = sites_[static_cast<size_t>(site)];
  uint64_t dec_before = s.sketch->UndercountBound();
  s.sketch->Insert(item);
  if (s.sketch->UndercountBound() != dec_before) {
    s.decrement_events_seen = s.sketch->UndercountBound();
    SweepAfterDecrement(site);
  } else {
    MaybeReport(site, item);
  }
  UpdateSpace(site);
}

void DeterministicFrequencyTracker::FlushSite(int site) {
  SiteState& s = sites_[static_cast<size_t>(site)];
  // Report every item whose mirror is stale, so the completed round is
  // recorded exactly as the sketch saw it.
  std::vector<uint64_t> to_check = common::SortedKeys(s.mirror);
  for (const auto& [item, _] : s.sketch->Items()) to_check.push_back(item);
  std::sort(to_check.begin(), to_check.end());
  to_check.erase(std::unique(to_check.begin(), to_check.end()),
                 to_check.end());
  for (uint64_t item : to_check) {
    uint64_t current = s.sketch->Estimate(item);
    auto it = s.mirror.find(item);
    uint64_t reported = it == s.mirror.end() ? 0 : it->second;
    if (current == reported) continue;
    meter_.RecordUpload(site, 2);
    live_totals_[item] +=
        static_cast<int64_t>(current) - static_cast<int64_t>(reported);
  }
  s.mirror.clear();
  s.sketch->Clear();
  s.decrement_events_seen = 0;
}

void DeterministicFrequencyTracker::OnBroadcast(uint64_t /*round*/,
                                                uint64_t n_bar) {
  // Close the previous round: flush all sites, fold live totals into the
  // frozen per-item sums, and open a fresh round with the new threshold.
  for (int i = 0; i < options_.num_sites; ++i) FlushSite(i);
  // Item-order fold (the additions commute, but draining in hash order
  // would still leak layout into frozen_'s growth history for free).
  for (const auto& [item, total] : common::SortedItems(live_totals_)) {
    if (total > 0) frozen_[item] += static_cast<uint64_t>(total);
  }
  live_totals_.clear();
  double t = options_.epsilon * static_cast<double>(n_bar) /
             (4.0 * static_cast<double>(options_.num_sites));
  drift_threshold_ = std::max<uint64_t>(1, static_cast<uint64_t>(t));
  for (int i = 0; i < options_.num_sites; ++i) UpdateSpace(i);
}

double DeterministicFrequencyTracker::EstimateFrequency(uint64_t item) const {
  double est = 0;
  auto fit = frozen_.find(item);
  if (fit != frozen_.end()) est += static_cast<double>(fit->second);
  auto lit = live_totals_.find(item);
  if (lit != live_totals_.end()) est += static_cast<double>(lit->second);
  return est;
}

}  // namespace frequency
}  // namespace disttrack
