// Deterministic heavy-hitter tracking (Yi–Zhang [29]) — Table 1's
// "frequency-tracking [29]" row: O(1/ε) words per site, Θ(k/ε · logN)
// communication, deterministic ±εn error on every item.
//
// Construction (the upper bound of [29] with explicit constants):
//  * CoarseTracker splits the run into O(logN) rounds with fixed n̄;
//  * each site keeps a Misra–Gries sketch of its round-local substream
//    (capacity 4/ε, so the sketch undercount is ≤ εn_i/4 per site-round);
//  * the coordinator mirrors each site's counters; a site re-reports a
//    counter whenever it drifts by T = max(1, ⌊εn̄/(4k)⌋) from the mirror,
//    so unreported drift is < k·T ≤ εn̄/4 ≤ εn/4 globally;
//  * at a round boundary every site flushes its final counters exactly and
//    clears, so completed rounds contribute sketch error only.
// Total error < εn/4 (drift) + εn/2 (sketch, summed over rounds: Σ εn_r/4
// with round sizes ≤ 2 n_r geometric) ≤ εn. Reports per round: every
// report pays T drift out of ≤ 6n̄ total counter movement, i.e. O(k/ε).

#ifndef DISTTRACK_FREQUENCY_DETERMINISTIC_FREQUENCY_H_
#define DISTTRACK_FREQUENCY_DETERMINISTIC_FREQUENCY_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "disttrack/common/status.h"
#include "disttrack/count/coarse_tracker.h"
#include "disttrack/sim/protocol.h"
#include "disttrack/summaries/misra_gries.h"

namespace disttrack {
namespace frequency {

/// Options for DeterministicFrequencyTracker.
struct DeterministicFrequencyOptions {
  int num_sites = 8;
  double epsilon = 0.01;

  Status Validate() const;
};

/// Deterministic ε-approximate frequency tracking [29].
class DeterministicFrequencyTracker : public sim::FrequencyTrackerInterface {
 public:
  explicit DeterministicFrequencyTracker(
      const DeterministicFrequencyOptions& options);

  void Arrive(int site, uint64_t item) override;
  double EstimateFrequency(uint64_t item) const override;
  uint64_t TrueCount() const override { return n_; }
  const sim::CommMeter& meter() const override { return meter_; }
  const sim::SpaceGauge& space() const override { return space_; }

  uint64_t rounds() const { return coarse_->round(); }

 private:
  struct SiteState {
    std::unique_ptr<summaries::MisraGries> sketch;
    // Coordinator's mirror of this site's counters (indexed here for O(1)
    // drift checks; semantically it lives at both ends of the channel).
    std::unordered_map<uint64_t, uint64_t> mirror;
    uint64_t decrement_events_seen = 0;
  };

  void OnBroadcast(uint64_t round, uint64_t n_bar);
  void MaybeReport(int site, uint64_t item);
  void SweepAfterDecrement(int site);
  void FlushSite(int site);
  void UpdateSpace(int site);

  DeterministicFrequencyOptions options_;
  sim::CommMeter meter_;
  sim::SpaceGauge space_;
  std::unique_ptr<count::CoarseTracker> coarse_;
  std::vector<SiteState> sites_;

  // Coordinator state: completed rounds folded into `frozen_`, plus the sum
  // of live mirrors for the current round in `live_totals_`.
  std::unordered_map<uint64_t, uint64_t> frozen_;
  std::unordered_map<uint64_t, int64_t> live_totals_;

  uint64_t drift_threshold_ = 1;
  size_t sketch_capacity_;
  uint64_t n_ = 0;
};

}  // namespace frequency
}  // namespace disttrack

#endif  // DISTTRACK_FREQUENCY_DETERMINISTIC_FREQUENCY_H_
