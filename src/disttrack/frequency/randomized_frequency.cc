#include "disttrack/frequency/randomized_frequency.h"

#include <algorithm>
#include <cmath>

#include "disttrack/common/math_util.h"

namespace disttrack {
namespace frequency {

Status RandomizedFrequencyOptions::Validate() const {
  if (num_sites < 1) {
    return Status::InvalidArgument("num_sites must be >= 1");
  }
  if (!(epsilon > 0.0) || epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  if (!(confidence_factor >= 1.0)) {
    return Status::InvalidArgument("confidence_factor must be >= 1");
  }
  return Status::OK();
}

RandomizedFrequencyTracker::RandomizedFrequencyTracker(
    const RandomizedFrequencyOptions& options)
    : options_(options),
      meter_(options.num_sites),
      space_(options.num_sites),
      sites_(static_cast<size_t>(options.num_sites)) {
  for (int i = 0; i < options_.num_sites; ++i) {
    SiteState& s = sites_[static_cast<size_t>(i)];
    s.instance = next_instance_++;
    s.rng = Rng(options_.seed * 0xA24BAED4963EE407ull +
                static_cast<uint64_t>(i));
    s.counter_skip.ResetPow2(log2_inv_p_, &s.rng);
    s.sample_skip.ResetPow2(log2_inv_p_, &s.rng);
    UpdateSpace(i);
  }
  coarse_ = std::make_unique<count::CoarseTracker>(options_.num_sites,
                                                   &meter_);
  coarse_->AddObserver([this](uint64_t round, uint64_t n_bar) {
    OnBroadcast(round, n_bar);
  });
}

uint64_t RandomizedFrequencyTracker::InvPFor(uint64_t n_bar) const {
  double scaled = options_.epsilon * static_cast<double>(n_bar) /
                  (options_.confidence_factor *
                   std::sqrt(static_cast<double>(options_.num_sites)));
  if (scaled <= 1.0) return 1;
  return FloorPow2(scaled);
}

double RandomizedFrequencyTracker::LiveEstimate(const ItemAgg& agg) const {
  double inv_p = static_cast<double>(inv_p_);
  double est = 0;
  for (const auto& [instance, cbar] : agg.cbar) {
    est += static_cast<double>(cbar) - 2.0 + 2.0 * inv_p;
  }
  if (!options_.naive_boundary_estimator) {
    for (const auto& [instance, d] : agg.d_no_counter) {
      est -= static_cast<double>(d) * inv_p;
    }
  }
  return est;
}

void RandomizedFrequencyTracker::FoldRound() {
  for (const auto& [item, agg] : live_) {
    double est = LiveEstimate(agg);
    if (est != 0.0) frozen_[item] += est;
  }
  live_.clear();
}

void RandomizedFrequencyTracker::OnBroadcast(uint64_t /*round*/,
                                             uint64_t n_bar) {
  // Freeze the completed round with its own p, then restart from scratch
  // with the new parameters (§3.1 "Dealing with a decreasing p").
  FoldRound();
  inv_p_ = InvPFor(n_bar);
  log2_inv_p_ = FloorLog2(inv_p_);
  split_threshold_ = std::max<uint64_t>(
      1, n_bar / static_cast<uint64_t>(options_.num_sites));
  for (int i = 0; i < options_.num_sites; ++i) {
    SiteState& s = sites_[static_cast<size_t>(i)];
    s.counters.clear();
    s.round_arrivals = 0;
    s.instance = next_instance_++;
    if (options_.use_skip_sampling) {
      // The new p invalidates outstanding skips (they encode old-p coin
      // gaps); redrawing is exact by independence of unconsumed coins.
      s.counter_skip.ResetPow2(log2_inv_p_, &s.rng);
      s.sample_skip.ResetPow2(log2_inv_p_, &s.rng);
    }
    UpdateSpace(i);
  }
}

void RandomizedFrequencyTracker::UpdateSpace(int site) {
  const SiteState& s = sites_[static_cast<size_t>(site)];
  // Counter list (item, value pairs) plus O(1) fixed state: instance id,
  // round arrival counter, 1/p copy, split threshold, and the two skip
  // countdowns.
  space_.Set(site, 2 * s.counters.size() + 6);
}

inline void RandomizedFrequencyTracker::ArriveOne(int site, uint64_t item) {
  ++n_;
  coarse_->Arrive(site);
  SiteState& s = sites_[static_cast<size_t>(site)];

  // Virtual-site split: the (n̄/k + 1)-th element of a round starts a fresh
  // copy of the algorithm at this site (§3.1). p is unchanged, so the skip
  // counters stay valid across the split.
  if (options_.virtual_site_split &&
      s.round_arrivals >= split_threshold_) {
    meter_.RecordUpload(site, 1);  // split notification
    s.counters.clear();
    s.instance = next_instance_++;
    s.round_arrivals = 0;
    ++splits_;
    UpdateSpace(site);
  }
  ++s.round_arrivals;

  // Each arrival consumes exactly one coin per channel: the counter
  // channel decides re-report (item tracked) or creation (item untracked);
  // the sampling channel decides forwarding (d_ij). Skip counters realize
  // the same two coin sequences with one decrement per miss.
  bool counter_hit, sample_hit;
  if (options_.use_skip_sampling) {
    counter_hit = s.counter_skip.Next(&s.rng);
    sample_hit = s.sample_skip.Next(&s.rng);
  } else {
    double cur_p = 1.0 / static_cast<double>(inv_p_);
    counter_hit = s.rng.Bernoulli(cur_p);
    sample_hit = s.rng.Bernoulli(cur_p);
  }

  // Counter-list channel. The find is only needed to route a hit and to
  // increment an existing counter; misses on untracked items touch no
  // coordinator state.
  auto it = s.counters.find(item);
  if (it != s.counters.end()) {
    ++it->second;
    if (counter_hit) {
      meter_.RecordUpload(site, 2);
      live_[item].cbar[s.instance] = it->second;
    }
  } else if (counter_hit) {
    s.counters.emplace(item, 1);
    meter_.RecordUpload(site, 2);
    ItemAgg& agg = live_[item];
    agg.cbar[s.instance] = 1;
    agg.d_no_counter.erase(s.instance);  // d is superseded by the counter
    UpdateSpace(site);  // the counter set grew; splits/rounds handle shrink
  }

  // Independent simple-random-sampling channel (d_ij).
  if (sample_hit) {
    meter_.RecordUpload(site, 1);
    ItemAgg& agg = live_[item];
    if (agg.cbar.find(s.instance) == agg.cbar.end()) {
      agg.d_no_counter[s.instance] += 1;
    }
  }
}

void RandomizedFrequencyTracker::Arrive(int site, uint64_t item) {
  ArriveOne(site, item);
}

void RandomizedFrequencyTracker::ArriveBatch(const sim::Arrival* arrivals,
                                             size_t count) {
  for (size_t i = 0; i < count; ++i) {
    ArriveOne(arrivals[i].site, arrivals[i].key);
  }
}

double RandomizedFrequencyTracker::EstimateFrequency(uint64_t item) const {
  double est = 0;
  auto fit = frozen_.find(item);
  if (fit != frozen_.end()) est += fit->second;
  auto lit = live_.find(item);
  if (lit != live_.end()) est += LiveEstimate(lit->second);
  return est;
}

}  // namespace frequency
}  // namespace disttrack
