#include "disttrack/frequency/randomized_frequency.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "disttrack/common/math_util.h"
#include "disttrack/common/ordered_drain.h"

namespace disttrack {
namespace frequency {

Status RandomizedFrequencyOptions::Validate() const {
  if (num_sites < 1) {
    return Status::InvalidArgument("num_sites must be >= 1");
  }
  if (!(epsilon > 0.0) || epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  if (!(confidence_factor >= 1.0)) {
    return Status::InvalidArgument("confidence_factor must be >= 1");
  }
  return Status::OK();
}

RandomizedFrequencyTracker::RandomizedFrequencyTracker(
    const RandomizedFrequencyOptions& options)
    : options_(options),
      meter_(options.num_sites),
      space_(options.num_sites),
      sites_(static_cast<size_t>(options.num_sites)) {
  for (int i = 0; i < options_.num_sites; ++i) {
    SiteState& s = sites_[static_cast<size_t>(i)];
    s.instance = NewInstanceId(i, &s);
    s.rng = Rng(options_.seed * 0xA24BAED4963EE407ull +
                static_cast<uint64_t>(i));
    s.counter_skip.ResetPow2(log2_inv_p_, &s.rng);
    s.sample_skip.ResetPow2(log2_inv_p_, &s.rng);
    UpdateSpace(i);
  }
  coarse_ = std::make_unique<count::CoarseTracker>(options_.num_sites,
                                                   &meter_);
  coarse_->AddObserver([this](uint64_t round, uint64_t n_bar) {
    OnBroadcast(round, n_bar);
  });
  countdown_.Resize(options_.num_sites);
  // Resolve the grouped-delivery decision (see the options): forced on,
  // or auto-selected when the projected aggregate counter working set —
  // k sites × ~c/(ε√k) live entries × one 16-byte slot at ~0.5 load —
  // cannot stay cache-resident under interleaved delivery. The grouped
  // engine needs the skip + flat-counter fast paths either way.
  grouped_enabled_ = options_.use_site_grouping;
  if (!grouped_enabled_ && options_.auto_site_grouping &&
      options_.use_skip_sampling && options_.use_flat_counters) {
    double per_site_entries =
        options_.confidence_factor /
        (options_.epsilon * std::sqrt(static_cast<double>(options_.num_sites)));
    double aggregate_bytes =
        static_cast<double>(options_.num_sites) * per_site_entries * 32.0;
    grouped_enabled_ =
        aggregate_bytes >
        static_cast<double>(options_.grouped_cache_bound_bytes);
  }
}

uint64_t RandomizedFrequencyTracker::InvPFor(uint64_t n_bar) const {
  double scaled = options_.epsilon * static_cast<double>(n_bar) /
                  (options_.confidence_factor *
                   std::sqrt(static_cast<double>(options_.num_sites)));
  if (scaled <= 1.0) return 1;
  return FloorPow2(scaled);
}

double RandomizedFrequencyTracker::LiveEstimate(const ItemAgg& agg) const {
  double inv_p = static_cast<double>(inv_p_);
  double est = 0;
  for (const InstanceAgg& inst : agg.instances) {
    if (inst.cbar > 0) {
      est += static_cast<double>(inst.cbar) - 2.0 + 2.0 * inv_p;
    } else if (!options_.naive_boundary_estimator) {
      est -= static_cast<double>(inst.d) * inv_p;
    }
  }
  return est;
}

RandomizedFrequencyTracker::ItemAgg& RandomizedFrequencyTracker::LiveAgg(
    uint64_t item) {
  if (uint64_t* slot = live_index_.Find(item)) {
    return live_arena_[static_cast<size_t>(*slot - 1)];
  }
  if (live_used_ == live_arena_.size()) live_arena_.emplace_back();
  ItemAgg& agg = live_arena_[live_used_];
  agg.item = item;
  live_index_.Insert(item, static_cast<uint64_t>(++live_used_));
  return agg;
}

const RandomizedFrequencyTracker::ItemAgg*
RandomizedFrequencyTracker::FindLiveAgg(uint64_t item) const {
  const uint64_t* slot = live_index_.Find(item);
  if (slot == nullptr) return nullptr;
  return &live_arena_[static_cast<size_t>(*slot - 1)];
}

void RandomizedFrequencyTracker::FoldRound() {
  for (size_t i = 0; i < live_used_; ++i) {
    ItemAgg& agg = live_arena_[i];
    double est = LiveEstimate(agg);
    if (est != 0.0) {
      if (uint64_t* slot = frozen_.Find(agg.item)) {
        double acc;
        std::memcpy(&acc, slot, sizeof(acc));
        acc += est;
        std::memcpy(slot, &acc, sizeof(acc));
      } else {
        uint64_t bits;
        std::memcpy(&bits, &est, sizeof(bits));
        frozen_.Insert(agg.item, bits);
      }
    }
    agg.instances.clear();  // recycle the arena entry's allocation
  }
  live_used_ = 0;
  live_index_.Clear();
}

size_t RandomizedFrequencyTracker::CounterCount(const SiteState& s) const {
  return options_.use_flat_counters ? s.counters.size()
                                    : s.legacy_counters.size();
}

void RandomizedFrequencyTracker::ClearCounters(SiteState* s) {
  if (options_.use_flat_counters) {
    s->counters.Clear();
  } else {
    s->legacy_counters.clear();
  }
}

void RandomizedFrequencyTracker::OnBroadcast(uint64_t /*round*/,
                                             uint64_t n_bar) {
  if (grouped_chunk_active_) {
    // CoarseTracker::BatchCannotBroadcast certified this chunk; a
    // broadcast here means grouped processing already reordered arrivals
    // across it — abort instead of silently diverging from the serial
    // coin streams.
    std::fprintf(stderr,
                 "RandomizedFrequencyTracker: broadcast inside a grouped "
                 "chunk — the broadcast-safety bound is wrong\n");
    std::abort();
  }
  // Mid-batch, the outstanding eventless arrivals belong to the closing
  // round: flush them into the authoritative per-site state before the
  // round ritual discards it.
  if (in_batch_) ResyncAllMidBatch();
  // Freeze the completed round with its own p, then restart from scratch
  // with the new parameters (§3.1 "Dealing with a decreasing p").
  FoldRound();
  inv_p_ = InvPFor(n_bar);
  log2_inv_p_ = FloorLog2(inv_p_);
  split_threshold_ = std::max<uint64_t>(
      1, n_bar / static_cast<uint64_t>(options_.num_sites));
  for (int i = 0; i < options_.num_sites; ++i) {
    SiteState& s = sites_[static_cast<size_t>(i)];
    ClearCounters(&s);
    s.round_arrivals = 0;
    s.instance = NewInstanceId(i, &s);
    if (options_.use_skip_sampling) {
      // The new p invalidates outstanding skips (they encode old-p coin
      // gaps); redrawing is exact by independence of unconsumed coins.
      s.counter_skip.ResetPow2(log2_inv_p_, &s.rng);
      s.sample_skip.ResetPow2(log2_inv_p_, &s.rng);
    }
    UpdateSpace(i);
  }
  if (in_batch_) RearmAll();
}

void RandomizedFrequencyTracker::UpdateSpace(int site) {
  const SiteState& s = sites_[static_cast<size_t>(site)];
  // Counter list (item, value pairs) plus O(1) fixed state: instance id,
  // round arrival counter, 1/p copy, split threshold, and the two skip
  // countdowns. The flat table is charged at its live population — the
  // algorithm's state — not its physical capacity.
  space_.Set(site, 2 * CounterCount(s) + 6);
}

// Serial coordinator port: effects apply in place, exactly the historical
// inline behavior (including a coarse broadcast firing mid-arrival). Also
// the grouped-chunk port: inside a certified broadcast-free chunk every
// direct effect is order-insensitive across sites — coarse reports and
// traffic fold into commutative sums, and the ItemAgg instance lists are
// canonically ordered (see ForInstance), so site-grouped application
// reproduces the serial coordinator state bit for bit.
struct RandomizedFrequencyTracker::DirectPort {
  RandomizedFrequencyTracker* t;
  void CoarseArrive(int site) { t->coarse_->Arrive(site); }
  void SplitNotify(int site) {
    t->meter_.RecordUpload(site, 1);
    ++t->splits_;
    t->EmitTap(sim::wire::MsgType::kSplitNotice, site, 0, 0, 0, 1);
  }
  void CounterReport(int site, uint64_t item, uint64_t instance,
                     uint64_t value) {
    t->meter_.RecordUpload(site, 2);
    t->LiveAgg(item).ForInstance(instance).cbar = value;
    t->EmitTap(sim::wire::MsgType::kCounterReport, site, item, instance,
               value, 2);
  }
  void SampleForward(int site, uint64_t item, uint64_t instance) {
    t->meter_.RecordUpload(site, 1);
    InstanceAgg& agg = t->LiveAgg(item).ForInstance(instance);
    if (agg.cbar == 0) agg.d += 1;
    t->EmitTap(sim::wire::MsgType::kSampleForward, site, item, instance, 0,
               1);
  }
};

// Crash-replay coordinator port: the site-local half of every arrival runs
// unchanged (counters, splits, coins, instance minting), every wire frame
// is re-emitted with identical content, and every coordinator-side effect
// — meter charges, split counter, live aggregation — is suppressed: the
// coordinator already received these messages from the pre-crash
// execution, and the replica dedups the re-emitted frames by sequence
// number.
struct RandomizedFrequencyTracker::ReplayPort {
  RandomizedFrequencyTracker* t;
  const uint64_t* mid_n_bar;
  void CoarseArrive(int site) {
    uint64_t delta = t->coarse_->ArriveLocal(site);
    if (delta > 0) {
      t->EmitTap(sim::wire::MsgType::kCoarseReport, site, delta, 0, 0, 1);
    }
    if (mid_n_bar != nullptr) {
      if (delta == 0) {
        std::fprintf(stderr,
                     "RandomizedFrequencyTracker: journaled mid-arrival "
                     "broadcast at an arrival with no coarse report\n");
        std::abort();
      }
      t->ReplayCrashRitual(site, *mid_n_bar);
      mid_n_bar = nullptr;
    }
  }
  void SplitNotify(int site) {
    t->EmitTap(sim::wire::MsgType::kSplitNotice, site, 0, 0, 0, 1);
  }
  void CounterReport(int site, uint64_t item, uint64_t instance,
                     uint64_t value) {
    t->EmitTap(sim::wire::MsgType::kCounterReport, site, item, instance,
               value, 2);
  }
  void SampleForward(int site, uint64_t item, uint64_t instance) {
    t->EmitTap(sim::wire::MsgType::kSampleForward, site, item, instance, 0,
               1);
  }
};

// Shard coordinator port: every effect becomes a message in the site's
// sink, applied by ShardEpochEnd with per-site order preserved (cross-
// site order is immaterial; see DirectPort). The epoch schedule
// guarantees no broadcast can fire inside a run, so the deferred coarse
// report carries only its n' delta.
struct RandomizedFrequencyTracker::ShardPort {
  RandomizedFrequencyTracker* t;
  std::vector<ShardMsg>* sink;
  void CoarseArrive(int site) {
    if (uint64_t delta = t->coarse_->ArriveLocal(site)) {
      sink->push_back(ShardMsg{ShardMsg::kCoarseReport, site, 0, 0, delta});
    }
  }
  void SplitNotify(int site) {
    sink->push_back(ShardMsg{ShardMsg::kSplit, site, 0, 0, 0});
  }
  void CounterReport(int site, uint64_t item, uint64_t instance,
                     uint64_t value) {
    sink->push_back(
        ShardMsg{ShardMsg::kCounterReport, site, item, instance, value});
  }
  void SampleForward(int site, uint64_t item, uint64_t instance) {
    sink->push_back(ShardMsg{ShardMsg::kSample, site, item, instance, 0});
  }
};

template <typename Port>
inline void RandomizedFrequencyTracker::ProcessArrivalImpl(int site,
                                                           uint64_t item,
                                                           Port& port) {
  port.CoarseArrive(site);
  SiteState& s = sites_[static_cast<size_t>(site)];

  // Virtual-site split: the (n̄/k + 1)-th element of a round starts a fresh
  // copy of the algorithm at this site (§3.1). p is unchanged, so the skip
  // counters stay valid across the split.
  if (options_.virtual_site_split &&
      s.round_arrivals >= split_threshold_) {
    port.SplitNotify(site);
    ClearCounters(&s);
    s.instance = NewInstanceId(site, &s);
    s.round_arrivals = 0;
    UpdateSpace(site);
  }
  ++s.round_arrivals;

  // Each arrival consumes exactly one coin per channel: the counter
  // channel decides re-report (item tracked) or creation (item untracked);
  // the sampling channel decides forwarding (d_ij). Skip counters realize
  // the same two coin sequences with one decrement per miss.
  bool counter_hit, sample_hit;
  if (options_.use_skip_sampling) {
    counter_hit = s.counter_skip.Next(&s.rng);
    sample_hit = s.sample_skip.Next(&s.rng);
  } else {
    double cur_p = 1.0 / static_cast<double>(inv_p_);
    counter_hit = s.rng.Bernoulli(cur_p);
    sample_hit = s.rng.Bernoulli(cur_p);
  }

  // Counter-list channel. The probe is only needed to route a hit and to
  // increment an existing counter; misses on untracked items touch no
  // coordinator state.
  uint64_t fresh_value = 0;
  bool tracked;
  if (options_.use_flat_counters) {
    if (uint64_t* value = s.counters.Find(item)) {
      tracked = true;
      fresh_value = ++*value;
    } else {
      tracked = false;
    }
  } else {
    auto it = s.legacy_counters.find(item);
    tracked = it != s.legacy_counters.end();
    if (tracked) fresh_value = ++it->second;
  }
  if (tracked) {
    if (counter_hit) {
      port.CounterReport(site, item, s.instance, fresh_value);
    }
  } else if (counter_hit) {
    if (options_.use_flat_counters) {
      s.counters.Insert(item, 1);
    } else {
      s.legacy_counters.emplace(item, 1);
    }
    // Setting cbar supersedes any sampled copies d of this instance: the
    // estimator reads d only while cbar == 0.
    port.CounterReport(site, item, s.instance, 1);
    UpdateSpace(site);  // the counter set grew; splits/rounds handle shrink
  }

  // Independent simple-random-sampling channel (d_ij).
  if (sample_hit) {
    port.SampleForward(site, item, s.instance);
  }
}

inline void RandomizedFrequencyTracker::ProcessArrival(int site,
                                                       uint64_t item) {
  DirectPort port{this};
  ProcessArrivalImpl(site, item, port);
}

inline void RandomizedFrequencyTracker::ArriveOne(int site, uint64_t item) {
  ++n_;
  ProcessArrival(site, item);
}

void RandomizedFrequencyTracker::Arrive(int site, uint64_t item) {
  sim::CheckSiteInRange(site, options_.num_sites);
  ArriveOne(site, item);
}

void RandomizedFrequencyTracker::EnsureSinks() {
  if (shard_sinks_.empty()) {
    shard_sinks_.resize(static_cast<size_t>(options_.num_sites));
  }
}

void RandomizedFrequencyTracker::ShardEpochBegin(uint64_t arrivals_in_epoch) {
  EnsureSinks();
  // Nothing inside a shard epoch reads n_ (mirrors the batch engines).
  n_ += arrivals_in_epoch;
}

// One site's span: the per-site projection of the serial event-countdown
// engine. Eventless arrivals pay one batched tracked-counter walk and
// retire in bulk (exactly SyncEventless); each event arrival replays the
// scalar ProcessArrival logic with coordinator effects routed through
// `port`.
template <typename Port>
void RandomizedFrequencyTracker::RunSiteSpan(int site, const uint64_t* keys,
                                             size_t count, Port& port) {
  SiteState& s = sites_[static_cast<size_t>(site)];
  size_t pos = 0;
  while (pos < count) {
    uint64_t gap = NextEventGap(site);
    uint64_t eventless =
        std::min<uint64_t>(gap - 1, static_cast<uint64_t>(count - pos));
    if (eventless > 0) {
      s.counters.IncrementTrackedRun(keys + pos,
                                     static_cast<size_t>(eventless));
      s.round_arrivals += eventless;
      s.counter_skip.ConsumeFailures(eventless);
      s.sample_skip.ConsumeFailures(eventless);
      coarse_->AdvanceLocalNoReport(site, eventless);
      pos += static_cast<size_t>(eventless);
    }
    if (pos >= count) break;
    ProcessArrivalImpl(site, keys[pos], port);
    ++pos;
  }
}

// One site's epoch slice on a worker thread; see RunSiteSpan.
// disttrack-lint: allow(site-check) -- shard-internal: every id was
// validated by SiteGrouper (CheckSiteInRange aborts) before the epoch
// was partitioned onto workers; the worker replays a pre-checked span.
void RandomizedFrequencyTracker::ShardArriveRun(int site,
                                                const uint64_t* keys,
                                                const uint32_t* /*global_index*/,
                                                size_t count) {
  ShardPort port{this, &shard_sinks_[static_cast<size_t>(site)]};
  RunSiteSpan(site, keys, count, port);
}

void RandomizedFrequencyTracker::ShardEpochEnd() { FoldSinkMessages(); }

void RandomizedFrequencyTracker::FoldSinkMessages() {
  // Apply each site's sink in site order, preserving per-site message
  // order. Cross-site order is immaterial: coarse deltas, split counts,
  // and traffic fold into commutative sums, and the per-item instance
  // lists are canonically ordered (ForInstance), so no global-index
  // merge is needed to reproduce the serial coordinator state bit for
  // bit.
  for (auto& sink : shard_sinks_) {
    for (const ShardMsg& m : sink) {
      int site = static_cast<int>(m.site);
      switch (m.kind) {
        case ShardMsg::kCoarseReport:
          coarse_->ApplyDeferredReport(site, m.value);
          break;
        case ShardMsg::kSplit:
          // disttrack-lint: allow(meter-tap) -- shard-fold: deferred
          // charges replayed at the barrier; taps never run on the
          // sharded path (only the serial runtimes install one).
          meter_.RecordUpload(site, 1);
          ++splits_;
          break;
        case ShardMsg::kCounterReport:
          // disttrack-lint: allow(meter-tap) -- shard-fold: see kSplit.
          meter_.RecordUpload(site, 2);
          LiveAgg(m.item).ForInstance(m.instance).cbar = m.value;
          break;
        case ShardMsg::kSample: {
          InstanceAgg& agg = LiveAgg(m.item).ForInstance(m.instance);
          // disttrack-lint: allow(meter-tap) -- shard-fold: see kSplit.
          meter_.RecordUpload(site, 1);
          if (agg.cbar == 0) agg.d += 1;
          break;
        }
      }
    }
    sink.clear();
  }
}

uint64_t RandomizedFrequencyTracker::NextEventGap(int site) const {
  const SiteState& s = sites_[static_cast<size_t>(site)];
  // Next event: the sooner of the two skip channels' successes, the
  // coarse-tracker report, and (when enabled) the virtual-site split.
  uint64_t gap = std::min(coarse_->arrivals_until_report(site),
                          std::min(s.counter_skip.pending_skips(),
                                   s.sample_skip.pending_skips()) +
                              1);
  if (options_.virtual_site_split) {
    // The split fires on the arrival that *begins* past the threshold, so
    // the gap to it is one beyond the remaining headroom.
    uint64_t split_gap = s.round_arrivals < split_threshold_
                             ? split_threshold_ - s.round_arrivals + 1
                             : 1;
    gap = std::min(gap, split_gap);
  }
  return gap;
}

void RandomizedFrequencyTracker::RearmSite(int site) {
  countdown_.Arm(site, NextEventGap(site));
}

void RandomizedFrequencyTracker::RearmAll() {
  for (int i = 0; i < options_.num_sites; ++i) RearmSite(i);
}

// Retires `consumed` arrivals at `site` that are known to be eventless:
// round-arrival advances, coin failures on both channels, and plain coarse
// count advances. By construction consumed is strictly below every event
// gap, so neither a coin success, a split, nor a coarse report can fire
// here. (Tracked-item counter increments happened inline at arrival time;
// they carry no randomness and touch no coordinator state.)
void RandomizedFrequencyTracker::SyncEventless(int site, uint64_t consumed) {
  if (consumed == 0) return;
  SiteState& s = sites_[static_cast<size_t>(site)];
  s.round_arrivals += consumed;
  s.counter_skip.ConsumeFailures(consumed);
  s.sample_skip.ConsumeFailures(consumed);
  coarse_->ArriveRun(site, consumed);
}

void RandomizedFrequencyTracker::ResyncAllMidBatch() {
  for (int i = 0; i < options_.num_sites; ++i) {
    uint64_t consumed = countdown_.Outstanding(i);
    countdown_.Reconcile(i);
    SyncEventless(i, consumed);
  }
}

// The countdown for `site` hit zero: reconcile the eventless prefix of its
// stride, then process the current arrival exactly as the scalar path
// would — coarse first (a broadcast here redraws skips before the coins
// are consumed), then the coins and store updates.
void RandomizedFrequencyTracker::HandleEventArrival(int site, uint64_t item) {
  SyncEventless(site, countdown_.TakeEventPrefix(site));
  ProcessArrival(site, item);
  RearmSite(site);
}

template <bool kFlat>
void RandomizedFrequencyTracker::RunBatch(const sim::Arrival* arrivals,
                                          size_t count) {
  // Event-countdown engine: an eventless arrival costs one decrement plus
  // one counter-store probe. n_ is advanced up front; nothing inside the
  // batch reads it.
  n_ += count;
  in_batch_ = true;
  RearmAll();
  uint32_t* until = countdown_.until();
  for (size_t i = 0; i < count; ++i) {
    int site = arrivals[i].site;
    sim::CheckSiteInRange(site, options_.num_sites);
    uint64_t item = arrivals[i].key;
    if (--until[site] == 0) {
      HandleEventArrival(site, item);
    } else {
      // Tracked items must count every arrival; only reports are coin-
      // gated, so the eventless path is probe + maybe-increment.
      if constexpr (kFlat) {
        sites_[static_cast<size_t>(site)].counters.IncrementIfTracked(item);
      } else {
        auto& store = sites_[static_cast<size_t>(site)].legacy_counters;
        auto it = store.find(item);
        if (it != store.end()) ++it->second;
      }
    }
  }
  ResyncAllMidBatch();
  in_batch_ = false;
}

void RandomizedFrequencyTracker::ArriveBatch(const sim::Arrival* arrivals,
                                             size_t count) {
  if (!options_.use_skip_sampling) {
    // The historical coin path draws per arrival; there is no countdown to
    // run, so batch delivery degenerates to the scalar loop.
    for (size_t i = 0; i < count; ++i) {
      sim::CheckSiteInRange(arrivals[i].site, options_.num_sites);
      ArriveOne(arrivals[i].site, arrivals[i].key);
    }
    return;
  }
  if (!options_.use_flat_counters) {
    RunBatch<false>(arrivals, count);
    return;
  }
  if (!grouped_enabled_) {
    RunBatch<true>(arrivals, count);
    return;
  }
  // Site-grouped delivery: a chunk certified broadcast-free is permuted
  // into site-contiguous spans, each walked against its site's counter
  // table in one cache-resident pass, with coordinator effects applied
  // directly — order-insensitive across sites inside such a chunk thanks
  // to the canonical ItemAgg instance order (see DirectPort), so the
  // grouped path stays bit-identical without buffering a single message.
  // Chunks that may broadcast run through the countdown engine unchanged.
  size_t pos = 0;
  while (pos < count) {
    size_t len = std::min(kSiteGroupChunk, count - pos);
    grouper_.ScatterBySite(arrivals + pos, len, options_.num_sites);
    if (coarse_->BatchCannotBroadcast(grouper_.histogram())) {
      n_ += len;
      grouped_chunk_active_ = true;
      DirectPort port{this};
      for (const SiteGrouper::Span& span : grouper_.spans()) {
        RunSiteSpan(span.site, span.data, span.length, port);
      }
      grouped_chunk_active_ = false;
    } else {
      RunBatch<true>(arrivals + pos, len);
    }
    pos += len;
  }
}

double RandomizedFrequencyTracker::EstimateFrequency(uint64_t item) const {
  double est = 0;
  if (const uint64_t* slot = frozen_.Find(item)) {
    double acc;
    std::memcpy(&acc, slot, sizeof(acc));
    est += acc;
  }
  if (const ItemAgg* agg = FindLiveAgg(item)) est += LiveEstimate(*agg);
  return est;
}

void RandomizedFrequencyTracker::EmitTap(sim::wire::MsgType type, int site,
                                         uint64_t a, uint64_t b, uint64_t c,
                                         uint64_t words) {
  if (tap_ == nullptr) return;
  sim::wire::Message msg;
  msg.type = type;
  msg.site = site;
  msg.epoch = coarse_->round();
  msg.a = a;
  msg.b = b;
  msg.c = c;
  msg.paper_words = words;
  tap_->OnMessage(std::move(msg));
}

void RandomizedFrequencyTracker::set_wire_tap(sim::wire::WireTap* tap) {
  tap_ = tap;
  coarse_->set_wire_tap(tap);
}

void RandomizedFrequencyTracker::SerializeSiteState(
    int site, std::vector<uint64_t>* out) const {
  out->push_back(inv_p_);
  out->push_back(static_cast<uint64_t>(log2_inv_p_));
  out->push_back(split_threshold_);
  coarse_->SerializeSite(site, out);
  const SiteState& s = sites_[static_cast<size_t>(site)];
  out->push_back(s.instance);
  out->push_back(s.instance_seq);
  out->push_back(s.round_arrivals);
  for (const SkipSampler* skip : {&s.counter_skip, &s.sample_skip}) {
    out->push_back(skip->raw_skip());
    uint64_t bits = 0;
    double inv_log = skip->raw_inv_log();
    std::memcpy(&bits, &inv_log, sizeof(bits));
    out->push_back(bits);
  }
  uint64_t rng_state[4];
  s.rng.SaveState(rng_state);
  for (uint64_t word : rng_state) out->push_back(word);
  // The sticky counter list. Physical table order is not meaningful;
  // restore rebuilds by Insert, which yields an observably identical
  // store regardless of layout.
  if (options_.use_flat_counters) {
    out->push_back(s.counters.size());
    s.counters.ForEach([out](uint64_t key, uint64_t value) {
      out->push_back(key);
      out->push_back(value);
    });
  } else {
    out->push_back(s.legacy_counters.size());
    for (const auto& kv : common::SortedItems(s.legacy_counters)) {
      out->push_back(kv.first);
      out->push_back(kv.second);
    }
  }
}

void RandomizedFrequencyTracker::RestoreSiteState(
    int site, const std::vector<uint64_t>& blob) {
  size_t i = 0;
  inv_p_ = blob[i++];
  log2_inv_p_ = static_cast<int>(blob[i++]);
  split_threshold_ = blob[i++];
  i += coarse_->RestoreSite(site, blob.data() + i);
  SiteState& s = sites_[static_cast<size_t>(site)];
  s.instance = blob[i++];
  s.instance_seq = static_cast<uint32_t>(blob[i++]);
  s.round_arrivals = blob[i++];
  for (SkipSampler* skip : {&s.counter_skip, &s.sample_skip}) {
    uint64_t raw_skip = blob[i++];
    uint64_t bits = blob[i++];
    double inv_log = 0;
    std::memcpy(&inv_log, &bits, sizeof(inv_log));
    skip->RestoreRaw(raw_skip, inv_log);
  }
  uint64_t rng_state[4];
  for (int j = 0; j < 4; ++j) rng_state[j] = blob[i++];
  s.rng.RestoreState(rng_state);
  ClearCounters(&s);
  uint64_t counters = blob[i++];
  for (uint64_t j = 0; j < counters; ++j) {
    uint64_t key = blob[i++];
    uint64_t value = blob[i++];
    if (options_.use_flat_counters) {
      s.counters.Insert(key, value);
    } else {
      s.legacy_counters.emplace(key, value);
    }
  }
  UpdateSpace(site);
}

void RandomizedFrequencyTracker::BeginCrashReplay(int site) {
  crash_replay_ = true;
  replay_site_ = site;
  replay_saved_inv_p_ = inv_p_;
  replay_saved_log2_ = log2_inv_p_;
  replay_saved_split_threshold_ = split_threshold_;
}

void RandomizedFrequencyTracker::EndCrashReplay() {
  if (inv_p_ != replay_saved_inv_p_ || log2_inv_p_ != replay_saved_log2_ ||
      split_threshold_ != replay_saved_split_threshold_) {
    std::fprintf(stderr,
                 "RandomizedFrequencyTracker: crash replay did not re-evolve "
                 "the round parameters to their pre-crash values\n");
    std::abort();
  }
  crash_replay_ = false;
  replay_site_ = -1;
}

void RandomizedFrequencyTracker::ReplayCrashArrive(
    int site, uint64_t item, const uint64_t* mid_ritual_n_bar) {
  ReplayPort port{this, mid_ritual_n_bar};
  ProcessArrivalImpl(site, item, port);
}

void RandomizedFrequencyTracker::ReplayCrashRitual(int site, uint64_t n_bar) {
  // Per-site half of OnBroadcast, with the identical draw order. The
  // coordinator half (FoldRound) already ran in the original execution
  // and its result is intact.
  inv_p_ = InvPFor(n_bar);
  log2_inv_p_ = FloorLog2(inv_p_);
  split_threshold_ = std::max<uint64_t>(
      1, n_bar / static_cast<uint64_t>(options_.num_sites));
  SiteState& s = sites_[static_cast<size_t>(site)];
  ClearCounters(&s);
  s.round_arrivals = 0;
  s.instance = NewInstanceId(site, &s);
  if (options_.use_skip_sampling) {
    s.counter_skip.ResetPow2(log2_inv_p_, &s.rng);
    s.sample_skip.ResetPow2(log2_inv_p_, &s.rng);
  }
  UpdateSpace(site);
}

}  // namespace frequency
}  // namespace disttrack
