// The randomized frequency tracker of §3.1 (Theorem 3.1).
//
// Per round (n̄ fixed by CoarseTracker), with p = 1/⌊εn̄/(c√k)⌋₂:
//  * each site keeps a sticky counter list L_i: an arriving item j without
//    a counter starts one with probability p (the creation is reported to
//    the coordinator, value 1); a tracked item increments its counter and
//    re-reports the fresh value with probability p;
//  * independently, every arrival is forwarded with probability p (the
//    simple-random-sampling channel d_ij);
//  * a site that has received more than n̄/k elements in the round notifies
//    the coordinator, clears its memory, and continues as a fresh "virtual
//    site", capping its space at O(p·n̄/k) = O(1/(ε√k)) words;
//  * at a round boundary all sites clear and the round's estimates freeze.
//
// The coordinator estimates the round's contribution of (instance i, item
// j) by the unbiased estimator (4):
//      f̂'_ij = c̄_ij - 2 + 2/p    if a counter report c̄_ij exists,
//              -d_ij / p          otherwise,
// whose variance is O(1/p²) (Lemma 3.1), and sums over instances & rounds.
// Note the second branch: when no counter exists the *negative* sampled
// count corrects the boundary bias of the naive estimator (2), which the
// `naive_boundary_estimator` ablation reinstates.
//
// Hot path: the sticky counter list is a flat open-addressing table
// (counter_table.h) — one Fibonacci-hash probe per arrival instead of an
// unordered_map find — and batched delivery runs on the shared
// EventCountdown engine: between events (coin successes on either
// channel, coarse reports, virtual-site splits) an arrival costs one
// countdown decrement plus the table probe, with the two skip channels,
// the round-arrival counter, and the coarse tracker reconciled in bulk at
// each event. Both fast paths keep their historical counterparts
// reachable (`use_skip_sampling`, `use_flat_counters`) for A/B runs; the
// batch engine consumes the RNG exactly as per-element Arrive() does, so
// batch-vs-scalar is bit-identical (batch_equivalence_test).

#ifndef DISTTRACK_FREQUENCY_RANDOMIZED_FREQUENCY_H_
#define DISTTRACK_FREQUENCY_RANDOMIZED_FREQUENCY_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "disttrack/common/event_countdown.h"
#include "disttrack/common/random.h"
#include "disttrack/common/site_group.h"
#include "disttrack/common/skip_sampler.h"
#include "disttrack/common/status.h"
#include "disttrack/count/coarse_tracker.h"
#include "disttrack/frequency/counter_table.h"
#include "disttrack/sim/protocol.h"

namespace disttrack {
namespace frequency {

/// Options for RandomizedFrequencyTracker.
struct RandomizedFrequencyOptions {
  int num_sites = 8;
  double epsilon = 0.01;
  uint64_t seed = 1;

  /// Constant-factor boost applied to p (variance /c², communication ~×c).
  double confidence_factor = 4.0;

  /// Ablation (DESIGN.md §5): use the biased estimator (2) — contribute 0
  /// instead of -d_ij/p when no counter exists.
  bool naive_boundary_estimator = false;

  /// Ablation: disable the n̄/k virtual-site split (space may then grow to
  /// O(p·n̄) = O(√k/ε) at a site receiving the whole stream).
  bool virtual_site_split = true;

  /// When true (default), the two per-arrival Bernoulli(p) coins (counter
  /// channel and sampling channel) are realized by two geometric
  /// SkipSamplers per site — identical in distribution, redrawn on every
  /// round broadcast — and ArriveBatch runs the event-countdown engine.
  /// False selects the historical per-arrival coin path.
  bool use_skip_sampling = true;

  /// When true (default), each site's sticky counter list is the flat
  /// open-addressing CounterTable; false keeps the historical
  /// std::unordered_map store for A/B runs. The store holds no
  /// randomness, so the choice never changes estimates.
  bool use_flat_counters = true;

  /// When true (requires the two fast paths above), ArriveBatch permutes
  /// each chunk into site-contiguous spans whenever the chunk provably
  /// contains no coarse broadcast and walks each span against that
  /// site's counter table in one batched pass (table invariants hoisted,
  /// four-lane probe pipelining, key-run dedup); coordinator effects
  /// apply directly (the canonical ItemAgg instance order makes
  /// cross-site application order immaterial), so estimates,
  /// communication, rounds, and splits are bit-identical to the
  /// event-countdown engine — which remains the fallback for chunks that
  /// may broadcast.
  ///
  /// Default FALSE, unlike count and rank: on the reference container
  /// the per-site tables the split threshold allows are small enough to
  /// be cache-resident even interleaved, so the scatter pass buys no
  /// probe locality and costs ~5-10% net (the grouped_batched bench rows
  /// record the A/B). The engine is bit-identical and fully tested; true
  /// forces it on regardless of table size (A/B runs).
  bool use_site_grouping = false;

  /// Eps-aware auto gate for the grouped engine (applies only when
  /// use_site_grouping is false, i.e. not forced). The expected live
  /// sticky-counter population per site per round is ~c/(ε√k) entries —
  /// a pure function of (ε, k, c), since the split threshold n̄/k and
  /// 1/p = ⌊εn̄/(c√k)⌋₂ both scale with n̄ — so whether the k interleaved
  /// tables fit in cache is decidable at construction. When the
  /// projected aggregate working set crosses kGroupedCacheBoundBytes the
  /// grouped engine is selected automatically (that is exactly the
  /// regime where the scatter pass buys probe locality; the bench's
  /// table-bound frequency configuration records the win). False
  /// disables the gate, keeping grouped delivery purely manual.
  bool auto_site_grouping = true;

  /// Cache-residency bound of the auto gate: aggregate projected counter
  /// working set (bytes) above which grouped delivery wins. Default 1
  /// MiB — an L2's worth; the working set must miss per probe before the
  /// scatter pass pays for itself.
  size_t grouped_cache_bound_bytes = size_t{1} << 20;

  Status Validate() const;
};

/// Randomized ε-approximate frequency tracking (Theorem 3.1).
class RandomizedFrequencyTracker : public sim::FrequencyTrackerInterface,
                                   private sim::KeyedShardIngest {
 public:
  explicit RandomizedFrequencyTracker(
      const RandomizedFrequencyOptions& options);

  void Arrive(int site, uint64_t item) override;
  void ArriveBatch(const sim::Arrival* arrivals, size_t count) override;
  double EstimateFrequency(uint64_t item) const override;
  uint64_t TrueCount() const override { return n_; }
  const sim::CommMeter& meter() const override { return meter_; }
  const sim::SpaceGauge& space() const override { return space_; }

  /// Sharded replay (sim/shard.h): site workers run counters, splits, and
  /// both coin channels site-locally; every coordinator effect (coarse
  /// reports, split notices, counter re-reports, sampled copies) is
  /// buffered per site and folded at the epoch barrier. Per-site message
  /// order is preserved, and cross-site order cannot matter: coarse
  /// reports and traffic are commutative sums, and the per-item instance
  /// lists are canonically ordered (see ItemAgg::ForInstance) — so the
  /// coordinator's aggregation state evolves bit-identically to the
  /// serial execution without global-index bookkeeping.
  sim::KeyedShardIngest* shard_ingest() override {
    return options_.use_skip_sampling && options_.use_flat_counters ? this
                                                                    : nullptr;
  }

  /// Current sampling probability p.
  double p() const { return 1.0 / static_cast<double>(inv_p_); }

  uint64_t rounds() const { return coarse_->round(); }

  /// Number of virtual-site splits performed so far (diagnostics).
  uint64_t splits() const { return splits_; }

  /// True when batch delivery runs the site-grouped engine — forced via
  /// use_site_grouping or auto-selected by the eps-aware cache gate
  /// (diagnostics/tests; resolved once at construction).
  bool grouped_delivery_enabled() const { return grouped_enabled_; }

  // --- Wire layer / crash recovery (sim/robust_cluster.h) ----------------
  // Mirrors the count tracker's API: a tap emits every metered message as
  // a typed wire::Message; site snapshots capture the sticky counter
  // list, both skip channels, the instance id mint, and the RNG; the
  // ReplayCrash* calls re-run lost arrivals through a coordinator-
  // suppressed port (frames re-emitted, no meter/aggregation writes).

  void set_wire_tap(sim::wire::WireTap* tap);

  /// Frequency sites can snapshot between any two arrivals.
  bool SiteSnapshotReady(int /*site*/) const { return true; }

  void SerializeSiteState(int site, std::vector<uint64_t>* out) const;
  void RestoreSiteState(int site, const std::vector<uint64_t>& blob);

  void BeginCrashReplay(int site);
  void EndCrashReplay();

  /// Re-delivers one lost arrival. `mid_ritual_n_bar` non-null iff the
  /// arrival's coarse report triggered a broadcast in the original run.
  void ReplayCrashArrive(int site, uint64_t item,
                         const uint64_t* mid_ritual_n_bar);

  /// Per-site half of a round transition another site triggered.
  void ReplayCrashRitual(int site, uint64_t n_bar);

 private:
  struct SiteState {
    uint64_t instance = 0;      // current virtual-site id (globally unique)
    uint32_t instance_seq = 0;  // per-site sequence the id is minted from
    uint64_t round_arrivals = 0;
    CounterTable counters;  // L_i (use_flat_counters, the default)
    std::unordered_map<uint64_t, uint64_t> legacy_counters;  // A/B store
    // One skip channel per independent per-arrival coin: the counter
    // channel (create-or-re-report) and the sampling channel (d_ij).
    SkipSampler counter_skip;
    SkipSampler sample_skip;
    Rng rng{0};
  };

  // Coordinator-side per-(round,item) aggregation. An item is touched by
  // very few instances per round (a handful of sites/virtual sites win a
  // coin for it), so the per-instance state is a short vector with linear
  // scans rather than the two hash tables a map-of-maps would cost on
  // every newly sampled item. ItemAggs live in a pooled arena indexed by
  // a CounterTable (item -> arena slot) that is bulk-cleared at round
  // boundaries with the arena recycled, so a steady-state round performs
  // no coordinator-side allocation at all.
  struct InstanceAgg {
    uint64_t instance = 0;
    uint64_t cbar = 0;  // last reported counter value; 0 = no counter yet
                        // (reports are always >= 1, so 0 is unambiguous)
    uint64_t d = 0;     // sampled copies, used only while cbar == 0
  };
  struct ItemAgg {
    uint64_t item = 0;
    // Kept sorted by instance id. Instance ids are site-minted
    // ((site << 32) | per-site sequence), so the sorted order is a pure
    // function of the instance SET — the order coordinator messages
    // arrive in (stream order, site-grouped order, shard-barrier order)
    // can no longer influence the estimator's floating-point summation
    // order. That canonical order is what lets the grouped engine apply
    // counter reports and samples directly instead of re-serializing
    // them by global arrival index (cbar and d stay exact per instance
    // because all of an instance's messages come from its own site, in
    // that site's stream order).
    std::vector<InstanceAgg> instances;

    InstanceAgg& ForInstance(uint64_t instance) {
      size_t lo = 0;
      size_t hi = instances.size();
      while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (instances[mid].instance < instance) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo < instances.size() && instances[lo].instance == instance) {
        return instances[lo];
      }
      instances.insert(instances.begin() + static_cast<long>(lo),
                       InstanceAgg{instance, 0, 0});
      return instances[lo];
    }
  };

  void OnBroadcast(uint64_t round, uint64_t n_bar);
  void FoldRound();
  ItemAgg& LiveAgg(uint64_t item);
  const ItemAgg* FindLiveAgg(uint64_t item) const;
  double LiveEstimate(const ItemAgg& agg) const;
  uint64_t InvPFor(uint64_t n_bar) const;
  void UpdateSpace(int site);
  void ArriveOne(int site, uint64_t item);
  // Everything ArriveOne does except ++n_ (the batch engine advances n_
  // up front): coarse arrival, split check, coins, store updates.
  void ProcessArrival(int site, uint64_t item);
  // The shared protocol logic of ProcessArrival, parameterized over how
  // coordinator effects are delivered: DirectPort applies them in place
  // (the serial path), ShardPort defers them to the site's message sink
  // (sharded replay). Site-local state is mutated identically either way.
  template <typename Port>
  void ProcessArrivalImpl(int site, uint64_t item, Port& port);
  // Mints the next virtual-site instance id for `site` (site-unique ids
  // keep id assignment schedule-independent under sharded replay).
  uint64_t NewInstanceId(int site, SiteState* s) {
    return (static_cast<uint64_t>(site) << 32) |
           static_cast<uint64_t>(s->instance_seq++);
  }
  size_t CounterCount(const SiteState& s) const;
  void ClearCounters(SiteState* s);

  // --- Sharded replay (sim::KeyedShardIngest) ----------------------------
  void ShardEpochBegin(uint64_t arrivals_in_epoch) override;
  void ShardArriveRun(int site, const uint64_t* keys,
                      const uint32_t* global_index, size_t count) override;
  void ShardEpochEnd() override;
  // Cross-site application order is immaterial (canonical instance
  // order; commutative sums elsewhere), so the driver need not
  // materialize per-site global-index arrays.
  bool wants_global_indices() const override { return false; }
  // Online ingest support (sim::OnlineKeyedSession certifies rolling
  // epochs against this tracker's broadcast state).
  count::CoarseTracker* shard_coarse() override { return coarse_.get(); }

  // One deferred coordinator message (shard ingest only; grouped chunks
  // apply effects directly). No serialization key is needed: per-site
  // order is preserved by the sinks themselves, and cross-site order is
  // immaterial (commutative sums + the canonical instance order).
  struct ShardMsg {
    enum Kind : uint8_t {
      kCoarseReport,   // value = deferred n' delta
      kSplit,          // virtual-site split notice
      kCounterReport,  // item/instance, value = fresh counter value
      kSample,         // item/instance, one sampled copy (d channel)
    };
    Kind kind = kCoarseReport;
    int32_t site = 0;  // full site id (num_sites is only bounded below)
    uint64_t item = 0;
    uint64_t instance = 0;
    uint64_t value = 0;
  };
  struct DirectPort;
  struct ShardPort;
  struct ReplayPort;
  std::vector<std::vector<ShardMsg>> shard_sinks_;  // one sink per site

  void EmitTap(sim::wire::MsgType type, int site, uint64_t a, uint64_t b,
               uint64_t c, uint64_t words);

  // The per-site span loop shared by shard ingest and grouped delivery:
  // eventless stretches pay one batched table walk and retire in bulk;
  // each event arrival replays ProcessArrivalImpl through `port`.
  template <typename Port>
  void RunSiteSpan(int site, const uint64_t* keys, size_t count, Port& port);
  // Applies the per-site message sinks — the coordinator half of a
  // shard-epoch barrier (the only caller: grouped chunks buffer nothing
  // and apply effects directly through DirectPort). Per-site order is
  // preserved; cross-site order cannot matter (see ShardMsg).
  void FoldSinkMessages();
  void EnsureSinks();

  // Batched fast path on the shared EventCountdown engine; see
  // common/event_countdown.h for the reconciliation contract.
  template <bool kFlat>
  void RunBatch(const sim::Arrival* arrivals, size_t count);
  // Arrivals at `site` until its next event (coin success on either
  // channel, coarse report, or virtual-site split) — the single source
  // of truth for the countdown engine and the shard run loop.
  uint64_t NextEventGap(int site) const;
  void RearmSite(int site);
  void RearmAll();
  void SyncEventless(int site, uint64_t consumed);
  void HandleEventArrival(int site, uint64_t item);
  void ResyncAllMidBatch();

  RandomizedFrequencyOptions options_;
  sim::CommMeter meter_;
  sim::SpaceGauge space_;
  std::unique_ptr<count::CoarseTracker> coarse_;
  std::vector<SiteState> sites_;
  sim::wire::WireTap* tap_ = nullptr;

  // Crash-replay bookkeeping (see BeginCrashReplay).
  bool crash_replay_ = false;
  int replay_site_ = -1;
  uint64_t replay_saved_inv_p_ = 0;
  int replay_saved_log2_ = 0;
  uint64_t replay_saved_split_threshold_ = 0;

  // Current round: item -> (arena slot + 1) in live_index_; the arena
  // entries [0, live_used_) are this round's ItemAggs.
  CounterTable live_index_;
  std::vector<ItemAgg> live_arena_;
  size_t live_used_ = 0;
  // Completed rounds: item -> Σ round estimates, a flat CounterTable with
  // the double accumulator bit-cast into the uint64 payload (the table
  // never interprets values). Folding a round touches every live item
  // once, so the map op is the fold's hot instruction — the flat probe
  // replaced an unordered_map node walk.
  CounterTable frozen_;

  uint64_t inv_p_ = 1;
  int log2_inv_p_ = 0;            // log2(inv_p_), the skip samplers' argument
  uint64_t split_threshold_ = 1;  // n̄/k
  uint64_t splits_ = 0;
  uint64_t n_ = 0;

  EventCountdown countdown_;
  bool in_batch_ = false;
  // Site-grouped delivery scratch + the broadcast-inside-grouped-chunk
  // abort guard (see OnBroadcast).
  SiteGrouper grouper_;
  bool grouped_chunk_active_ = false;
  // Resolved grouped-delivery decision (forced || auto gate), fixed at
  // construction.
  bool grouped_enabled_ = false;
};

}  // namespace frequency
}  // namespace disttrack

#endif  // DISTTRACK_FREQUENCY_RANDOMIZED_FREQUENCY_H_
