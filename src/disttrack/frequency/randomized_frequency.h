// The randomized frequency tracker of §3.1 (Theorem 3.1).
//
// Per round (n̄ fixed by CoarseTracker), with p = 1/⌊εn̄/(c√k)⌋₂:
//  * each site keeps a sticky counter list L_i: an arriving item j without
//    a counter starts one with probability p (the creation is reported to
//    the coordinator, value 1); a tracked item increments its counter and
//    re-reports the fresh value with probability p;
//  * independently, every arrival is forwarded with probability p (the
//    simple-random-sampling channel d_ij);
//  * a site that has received more than n̄/k elements in the round notifies
//    the coordinator, clears its memory, and continues as a fresh "virtual
//    site", capping its space at O(p·n̄/k) = O(1/(ε√k)) words;
//  * at a round boundary all sites clear and the round's estimates freeze.
//
// The coordinator estimates the round's contribution of (instance i, item
// j) by the unbiased estimator (4):
//      f̂'_ij = c̄_ij - 2 + 2/p    if a counter report c̄_ij exists,
//              -d_ij / p          otherwise,
// whose variance is O(1/p²) (Lemma 3.1), and sums over instances & rounds.
// Note the second branch: when no counter exists the *negative* sampled
// count corrects the boundary bias of the naive estimator (2), which the
// `naive_boundary_estimator` ablation reinstates.

#ifndef DISTTRACK_FREQUENCY_RANDOMIZED_FREQUENCY_H_
#define DISTTRACK_FREQUENCY_RANDOMIZED_FREQUENCY_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "disttrack/common/random.h"
#include "disttrack/common/skip_sampler.h"
#include "disttrack/common/status.h"
#include "disttrack/count/coarse_tracker.h"
#include "disttrack/sim/protocol.h"

namespace disttrack {
namespace frequency {

/// Options for RandomizedFrequencyTracker.
struct RandomizedFrequencyOptions {
  int num_sites = 8;
  double epsilon = 0.01;
  uint64_t seed = 1;

  /// Constant-factor boost applied to p (variance /c², communication ~×c).
  double confidence_factor = 4.0;

  /// Ablation (DESIGN.md §5): use the biased estimator (2) — contribute 0
  /// instead of -d_ij/p when no counter exists.
  bool naive_boundary_estimator = false;

  /// Ablation: disable the n̄/k virtual-site split (space may then grow to
  /// O(p·n̄) = O(√k/ε) at a site receiving the whole stream).
  bool virtual_site_split = true;

  /// When true (default), the two per-arrival Bernoulli(p) coins (counter
  /// channel and sampling channel) are realized by two geometric
  /// SkipSamplers per site — identical in distribution, redrawn on every
  /// round broadcast. False selects the historical per-arrival coin path.
  bool use_skip_sampling = true;

  Status Validate() const;
};

/// Randomized ε-approximate frequency tracking (Theorem 3.1).
class RandomizedFrequencyTracker : public sim::FrequencyTrackerInterface {
 public:
  explicit RandomizedFrequencyTracker(
      const RandomizedFrequencyOptions& options);

  void Arrive(int site, uint64_t item) override;
  void ArriveBatch(const sim::Arrival* arrivals, size_t count) override;
  double EstimateFrequency(uint64_t item) const override;
  uint64_t TrueCount() const override { return n_; }
  const sim::CommMeter& meter() const override { return meter_; }
  const sim::SpaceGauge& space() const override { return space_; }

  /// Current sampling probability p.
  double p() const { return 1.0 / static_cast<double>(inv_p_); }

  uint64_t rounds() const { return coarse_->round(); }

  /// Number of virtual-site splits performed so far (diagnostics).
  uint64_t splits() const { return splits_; }

 private:
  struct SiteState {
    uint64_t instance = 0;  // current virtual-site id (globally unique)
    uint64_t round_arrivals = 0;
    std::unordered_map<uint64_t, uint64_t> counters;  // L_i
    // One skip channel per independent per-arrival coin: the counter
    // channel (create-or-re-report) and the sampling channel (d_ij).
    SkipSampler counter_skip;
    SkipSampler sample_skip;
    Rng rng{0};
  };

  // Coordinator-side per-(round,item) aggregation.
  struct ItemAgg {
    // instance -> last reported counter value c̄.
    std::unordered_map<uint64_t, uint64_t> cbar;
    // instance -> sampled copies d (kept only while no counter exists).
    std::unordered_map<uint64_t, uint64_t> d_no_counter;
  };

  void OnBroadcast(uint64_t round, uint64_t n_bar);
  void FoldRound();
  double LiveEstimate(const ItemAgg& agg) const;
  uint64_t InvPFor(uint64_t n_bar) const;
  void UpdateSpace(int site);
  void ArriveOne(int site, uint64_t item);

  RandomizedFrequencyOptions options_;
  sim::CommMeter meter_;
  sim::SpaceGauge space_;
  std::unique_ptr<count::CoarseTracker> coarse_;
  std::vector<SiteState> sites_;

  std::unordered_map<uint64_t, ItemAgg> live_;   // current round
  std::unordered_map<uint64_t, double> frozen_;  // completed rounds

  uint64_t inv_p_ = 1;
  int log2_inv_p_ = 0;            // log2(inv_p_), the skip samplers' argument
  uint64_t split_threshold_ = 1;  // n̄/k
  uint64_t next_instance_ = 0;
  uint64_t splits_ = 0;
  uint64_t n_ = 0;
};

}  // namespace frequency
}  // namespace disttrack

#endif  // DISTTRACK_FREQUENCY_RANDOMIZED_FREQUENCY_H_
