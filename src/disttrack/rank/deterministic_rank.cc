#include "disttrack/rank/deterministic_rank.h"

namespace disttrack {
namespace rank {

Status DeterministicRankOptions::Validate() const {
  if (num_sites < 1) {
    return Status::InvalidArgument("num_sites must be >= 1");
  }
  if (!(epsilon > 0.0) || epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  if (universe_bits < 1 || universe_bits > 48) {
    return Status::InvalidArgument("universe_bits must be in [1, 48]");
  }
  return Status::OK();
}

DeterministicRankTracker::DeterministicRankTracker(
    const DeterministicRankOptions& options)
    : options_(options),
      mask_(options.universe_bits >= 64
                ? ~0ull
                : (1ull << options.universe_bits) - 1) {
  frequency::DeterministicFrequencyOptions freq_options;
  freq_options.num_sites = options_.num_sites;
  double levels = static_cast<double>(options_.universe_bits);
  freq_options.epsilon = options_.epsilon / (levels * levels);
  core_ = std::make_unique<frequency::DeterministicFrequencyTracker>(
      freq_options);
}

void DeterministicRankTracker::Arrive(int site, uint64_t value) {
  sim::CheckSiteInRange(site, options_.num_sites);
  ++n_;
  value &= mask_;
  for (int g = 0; g < options_.universe_bits; ++g) {
    core_->Arrive(site, Encode(g, value >> g));
  }
}

double DeterministicRankTracker::EstimateRank(uint64_t value) const {
  // Queries at or beyond the top of the universe ask for the rank of
  // everything: answer with the two level-(U-1) halves of the domain.
  if ((value >> options_.universe_bits) != 0) {
    int top = options_.universe_bits - 1;
    return core_->EstimateFrequency(Encode(top, 0)) +
           core_->EstimateFrequency(Encode(top, 1));
  }
  // Dyadic decomposition of [0, value): one interval per set bit.
  double est = 0;
  uint64_t prefix = 0;
  for (int g = options_.universe_bits - 1; g >= 0; --g) {
    if ((value >> g) & 1) {
      est += core_->EstimateFrequency(Encode(g, prefix >> g));
      prefix += (1ull << g);
    }
  }
  return est;
}

}  // namespace rank
}  // namespace disttrack
