// Deterministic rank/quantile tracking (Yi–Zhang [29]) — Table 1's
// "rank-tracking [29]" row: O(k/ε·logN·L²) communication where L plays the
// role of log(1/ε).
//
// [29] reduces rank tracking to heavy-hitter tracking over a hierarchy of
// dyadic intervals: rank(x) = Σ counts of the ≤ L dyadic intervals that
// decompose [0, x). We implement that reduction directly over a bounded
// value universe of `universe_bits` bits (DESIGN.md documents this as a
// faithful-shape substitution): every arrival inserts one item per level g
// — the interval id (value >> g) tagged with g — into a single
// DeterministicFrequencyTracker run at error ε/L², so each interval count
// is off by ≤ εn/L and any rank query by ≤ εn, deterministically.

#ifndef DISTTRACK_RANK_DETERMINISTIC_RANK_H_
#define DISTTRACK_RANK_DETERMINISTIC_RANK_H_

#include <cstdint>
#include <memory>

#include "disttrack/common/status.h"
#include "disttrack/frequency/deterministic_frequency.h"
#include "disttrack/sim/protocol.h"

namespace disttrack {
namespace rank {

/// Options for DeterministicRankTracker.
struct DeterministicRankOptions {
  int num_sites = 8;
  double epsilon = 0.05;

  /// Values live in [0, 2^universe_bits); also the number of dyadic levels
  /// L. Must be in [1, 48].
  int universe_bits = 12;

  Status Validate() const;
};

/// Deterministic ε-approximate rank tracking over a bounded universe.
class DeterministicRankTracker : public sim::RankTrackerInterface {
 public:
  explicit DeterministicRankTracker(const DeterministicRankOptions& options);

  /// `value` is masked into the universe.
  void Arrive(int site, uint64_t value) override;
  double EstimateRank(uint64_t value) const override;
  uint64_t TrueCount() const override { return n_; }
  const sim::CommMeter& meter() const override { return core_->meter(); }
  const sim::SpaceGauge& space() const override { return core_->space(); }

 private:
  static uint64_t Encode(int level, uint64_t interval) {
    return (static_cast<uint64_t>(level) << 58) | interval;
  }

  DeterministicRankOptions options_;
  std::unique_ptr<frequency::DeterministicFrequencyTracker> core_;
  uint64_t mask_;
  uint64_t n_ = 0;
};

}  // namespace rank
}  // namespace disttrack

#endif  // DISTTRACK_RANK_DETERMINISTIC_RANK_H_
