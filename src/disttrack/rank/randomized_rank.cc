#include "disttrack/rank/randomized_rank.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "disttrack/common/math_util.h"
#include "disttrack/common/small_sort.h"

namespace disttrack {
namespace rank {

Status RandomizedRankOptions::Validate() const {
  if (num_sites < 1) {
    return Status::InvalidArgument("num_sites must be >= 1");
  }
  if (!(epsilon > 0.0) || epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  if (!(confidence_factor >= 1.0)) {
    return Status::InvalidArgument("confidence_factor must be >= 1");
  }
  return Status::OK();
}

RandomizedRankTracker::RandomizedRankTracker(
    const RandomizedRankOptions& options)
    : options_(options),
      meter_(options.num_sites),
      space_(options.num_sites),
      sites_(static_cast<size_t>(options.num_sites)),
      pending_uploads_(static_cast<size_t>(options.num_sites)) {
  for (int i = 0; i < options_.num_sites; ++i) {
    SiteState& s = sites_[static_cast<size_t>(i)];
    s.rng = Rng(options_.seed * 0x8CB92BA72F3D8DD7ull +
                static_cast<uint64_t>(i));
    StartFreshInstance(&s);
  }
  coarse_ = std::make_unique<count::CoarseTracker>(options_.num_sites,
                                                   &meter_);
  coarse_->AddObserver([this](uint64_t round, uint64_t n_bar) {
    OnBroadcast(round, n_bar);
  });
  countdown_.Resize(options_.num_sites);
}

double RandomizedRankTracker::LevelEps(int level) const {
  double hh = std::max(1, height_);
  return std::pow(2.0, -level) / std::sqrt(hh);
}

void RandomizedRankTracker::RecomputeRoundParams(uint64_t n_bar) {
  double root_k = std::sqrt(static_cast<double>(options_.num_sites));
  inv_p_ = std::max(1.0, options_.epsilon * static_cast<double>(n_bar) /
                             (options_.confidence_factor * root_k));
  chunk_size_ = std::max<uint64_t>(
      1, n_bar / static_cast<uint64_t>(options_.num_sites));
  block_size_ = std::max<uint64_t>(1, static_cast<uint64_t>(inv_p_));
  block_size_ = std::min(block_size_, chunk_size_);
  num_leaves_ = static_cast<uint32_t>(CeilDiv(chunk_size_, block_size_));
  height_ = CeilLog2(num_leaves_);
}

std::unique_ptr<summaries::CompactorSummary> RandomizedRankTracker::
    AcquireNode(SiteState* s, int level) {
  uint64_t seed = s->rng.NextU64();
  auto& pool = s->pool[static_cast<size_t>(level)];
  if (!pool.empty()) {
    auto node = std::move(pool.back());
    pool.pop_back();
    node->Reset(seed);
    return node;
  }
  return std::make_unique<summaries::CompactorSummary>(LevelEps(level), seed);
}

void RandomizedRankTracker::StartFreshInstance(SiteState* s) {
  s->arrivals_in_chunk = 0;
  s->arrivals_in_leaf = 0;
  s->current_leaf = 0;
  s->nodes_ready = false;
  s->pull_slack = 0;
  // Any armed leaf seed dies with the instance — exactly as a discarded
  // level-0 node (whose creation had consumed the same draw) would.
  s->leaf_seed_armed = false;
  size_t levels = static_cast<size_t>(height_) + 1;
  if (s->pool.size() != levels) {
    // The round's tree shape changed, and with it LevelEps and every
    // summary capacity: pooled nodes are the wrong size, drop them.
    s->pool.clear();
    s->pool.resize(levels);
    s->nodes.clear();
  } else {
    // Recycle still-active node objects — their contents are already
    // covered (shipped summaries / frozen residuals) and Reset() empties
    // them on reuse.
    for (size_t l = 0; l < s->nodes.size(); ++l) {
      if (s->nodes[l] != nullptr) {
        s->pool[l].push_back(std::move(s->nodes[l]));
      }
    }
    s->nodes.clear();
  }
  s->nodes.resize(levels);
  if (options_.use_shared_ladder) {
    // Round and chunk boundaries discard in-flight tree state (completed
    // leaves are covered by shipped summaries, the tail by its frozen
    // samples); unpulled ladder data goes with it.
    s->ladder.Reset(levels);
  }
  if (crash_replay_ && detached_replay_) {
    // Detached site process: no journaled instances to walk and nothing
    // is ever stored into idata in replay mode, so one scratch instance
    // serves every round/chunk transition (keeps the long-lived site at
    // O(1) instance memory).
    if (s->owned_instances.empty()) s->owned_instances.emplace_back();
    s->idata = &s->owned_instances.back();
    s->idata->inv_p = inv_p_;
  } else if (crash_replay_) {
    // The coordinator-side instance storage survived the crash: advance
    // the replay cursor through the instances the original execution
    // created instead of appending duplicates.
    ++replay_cursor_;
    if (replay_cursor_ >= s->owned_instances.size()) {
      std::fprintf(stderr,
                   "RandomizedRankTracker: crash replay created more "
                   "instances than the original execution\n");
      std::abort();
    }
    s->idata = &s->owned_instances[replay_cursor_];
    if (s->idata->inv_p != inv_p_) {
      std::fprintf(stderr,
                   "RandomizedRankTracker: crash replay diverged — "
                   "instance %zu round p mismatch\n", replay_cursor_);
      std::abort();
    }
  } else {
    s->owned_instances.emplace_back();
    s->idata = &s->owned_instances.back();
    s->idata->inv_p = inv_p_;
  }
  if (options_.use_skip_sampling) {
    // Rounds change p, which invalidates outstanding skips; chunk
    // boundaries don't, but a redraw is exact either way (independence of
    // unconsumed coins) and keeps the transition logic in one place.
    s->tail_skip.Reset(1.0 / inv_p_, &s->rng);
  }
}

void RandomizedRankTracker::OnBroadcast(uint64_t /*round*/, uint64_t n_bar) {
  if (grouped_chunk_active_) {
    // CoarseTracker::BatchCannotBroadcast certified this chunk; a
    // broadcast here means site-grouped processing already reordered
    // arrivals across it, so the replay silently diverged — abort loudly.
    std::fprintf(stderr,
                 "RandomizedRankTracker: broadcast inside a grouped chunk "
                 "— the broadcast-safety bound is wrong\n");
    std::abort();
  }
  // Mid-batch, every site's buffered eventless run belongs to the closing
  // round: feed it into the current nodes (which the restart below then
  // discards, exactly as the scalar path discards mid-leaf state — those
  // arrivals stay covered by the frozen residual samples).
  if (in_batch_) FlushBufferedRuns();
  // Completed leaves of the closing round are already covered by shipped
  // summaries, and the in-progress tails stay covered by their frozen
  // residual samples; sites just restart with fresh parameters.
  RecomputeRoundParams(n_bar);
  for (int i = 0; i < options_.num_sites; ++i) {
    StartFreshInstance(&sites_[static_cast<size_t>(i)]);
    UpdateSpace(i);
  }
  if (in_batch_) RearmAll();
}

RandomizedRankTracker::StoredSummary RandomizedRankTracker::TakeStored(
    SiteState* s) {
  if (s->stored_pool.empty()) return StoredSummary{};
  StoredSummary stored = std::move(s->stored_pool.back());
  s->stored_pool.pop_back();
  stored.values.clear();
  stored.segments.clear();
  return stored;
}

void RandomizedRankTracker::RecycleStored(SiteState* s,
                                          StoredSummary&& stored) {
  if (s->stored_pool.size() < 256) {
    s->stored_pool.push_back(std::move(stored));
  }
}

void RandomizedRankTracker::Upload(int site, uint64_t words) {
  if (crash_replay_) return;  // the pre-crash execution already charged it
  if (shard_mode_) {
    ShardSink& sink = shard_sinks_[static_cast<size_t>(site)];
    ++sink.messages;
    sink.words += std::max<uint64_t>(1, words);
  } else if (defer_uploads_) {
    // Plain batch in flight: accumulate and post in bulk at batch end.
    PendingUpload& pending = pending_uploads_[static_cast<size_t>(site)];
    ++pending.messages;
    pending.words += std::max<uint64_t>(1, words);
  } else {
    // disttrack-lint: allow(meter-tap) -- charge-helper: every caller
    // pairs this charge with its own frame emit (EmitSummaryFrame /
    // EmitResidualFrame immediately at the call site); the helper
    // itself has no message payload to tap.
    meter_.RecordUpload(site, words);
  }
}

void RandomizedRankTracker::FlushDeferredUploads() {
  for (int i = 0; i < options_.num_sites; ++i) {
    PendingUpload& pending = pending_uploads_[static_cast<size_t>(i)];
    if (pending.messages == 0) continue;
    // disttrack-lint: allow(meter-tap) -- batch-fold: the scalar path
    // charges per message; this replays one batch's deferred per-site
    // charges in bulk with max(1, payload) already applied, and the
    // deferral is off whenever a tap or replay needs per-message order.
    meter_.RecordUploadBulk(i, pending.messages, pending.words);
    pending.messages = 0;
    pending.words = 0;
  }
}

void RandomizedRankTracker::CoarseArriveOne(int site) {
  if (crash_replay_) {
    // Site-local coarse advance, frame re-emission, and — when the
    // journal says this arrival's report triggered a broadcast — the
    // per-site half of the round ritual, at the exact point the original
    // execution performed it (before this arrival's value feeds the
    // tree). No n', meter, or round writes: the coordinator kept those.
    uint64_t delta = coarse_->ArriveLocal(site);
    if (delta > 0 && tap_ != nullptr) {
      sim::wire::Message msg;
      msg.type = sim::wire::MsgType::kCoarseReport;
      msg.site = site;
      msg.epoch = coarse_->round();
      msg.a = delta;
      msg.paper_words = 1;
      tap_->OnMessage(std::move(msg));
    }
    if (replay_mid_n_bar_ != nullptr) {
      if (delta == 0) {
        std::fprintf(stderr,
                     "RandomizedRankTracker: journaled mid-arrival "
                     "broadcast at an arrival with no coarse report\n");
        std::abort();
      }
      uint64_t n_bar = *replay_mid_n_bar_;
      replay_mid_n_bar_ = nullptr;
      ReplayCrashRitual(site, n_bar);
    }
    return;
  }
  if (shard_mode_) {
    if (uint64_t delta = coarse_->ArriveLocal(site)) {
      shard_sinks_[static_cast<size_t>(site)].coarse_deltas.push_back(delta);
    }
  } else {
    coarse_->Arrive(site);
  }
}

void RandomizedRankTracker::FlushNode(int site, SiteState* s, int level,
                                      uint32_t node_start,
                                      uint32_t end_leaf) {
  s->nodes_ready = false;
  if (level == 0 && options_.use_shared_ladder &&
      options_.use_batch_compaction) {
    // Node-less leaf flush: cascade the leaf window straight from the
    // borrowed ladder views into the wire buffer with the armed seed's
    // coins — no node ingest, no Reset, no pool churn. Identical stored
    // content, serialized words, and RNG stream as the node-based flush.
    size_t total = s->ladder.Pull(0, &s->view_scratch);
    s->leaf_seed_armed = false;  // consumed (or dropped) with this leaf
    if (total == 0) return;
    if (tap_ == nullptr && !crash_replay_) {
      // Arena flush: the summary compacts straight into the instance's
      // shared leaf arena (CompactSortedViewsToWire appends; segment
      // ends are absolute) and is addressed by a LeafRef — no
      // per-summary vectors, no pool churn, O(1) chunk-end prune. Taps
      // and replay keep the StoredSummary path below so wire frames stay
      // byte-for-byte identical.
      InstanceData& data = *s->idata;
      auto values_begin = static_cast<uint32_t>(data.leaf_values.size());
      auto seg_begin = static_cast<uint32_t>(data.leaf_segments.size());
      uint64_t words = summaries::CompactSortedViewsToWire(
          LevelEps(0), s->leaf_seed, s->view_scratch.data(),
          s->view_scratch.size(), total, &s->leaf_scratch,
          &s->leaf_scratch2, &data.leaf_values, &data.leaf_segments);
      data.leaf_refs.push_back(
          LeafRef{node_start, end_leaf, values_begin, seg_begin,
                  static_cast<uint32_t>(data.leaf_segments.size())});
      Upload(site, words);
      return;
    }
    StoredSummary stored = TakeStored(s);
    stored.first_leaf = node_start;
    stored.end_leaf = end_leaf;
    uint64_t words = summaries::CompactSortedViewsToWire(
        LevelEps(0), s->leaf_seed, s->view_scratch.data(),
        s->view_scratch.size(), total, &s->leaf_scratch, &s->leaf_scratch2,
        &stored.values, &stored.segments);
    Upload(site, words);
    EmitSummaryFrame(site, stored, words);
    if (crash_replay_) {
      RecycleStored(s, std::move(stored));  // original already stored it
    } else {
      s->idata->summaries.push_back(std::move(stored));
    }
    return;
  }
  auto& node = s->nodes[static_cast<size_t>(level)];
  if (node == nullptr) return;
  if (options_.use_shared_ladder) {
    // Drain the node's remaining ladder window and export in one fused
    // step: a final sub-threshold window merges straight from the
    // borrowed ladder storage into the wire buffer, never materializing
    // in the node (which is pooled and Reset() right after). Same stored
    // content and serialized words as pull-then-export, one to two full
    // copies cheaper per flush.
    size_t total =
        s->ladder.Pull(static_cast<size_t>(level), &s->view_scratch);
    if (node->m() == 0 && total == 0) {
      s->pool[static_cast<size_t>(level)].push_back(std::move(node));
      return;
    }
    StoredSummary stored = TakeStored(s);
    stored.first_leaf = node_start;
    stored.end_leaf = end_leaf;
    uint64_t words = node->InsertViewsAndExport(
        s->view_scratch.data(), s->view_scratch.size(), total,
        &stored.values, &stored.segments);
    Upload(site, words);
    EmitSummaryFrame(site, stored, words);
    if (crash_replay_) {
      RecycleStored(s, std::move(stored));
    } else {
      s->idata->summaries.push_back(std::move(stored));
    }
    s->pool[static_cast<size_t>(level)].push_back(std::move(node));
    return;
  }
  if (node->m() == 0) {
    s->pool[static_cast<size_t>(level)].push_back(std::move(node));
    return;
  }
  // Site -> coordinator: the serialized summary.
  uint64_t words = node->SerializedWords();
  Upload(site, words);

  StoredSummary stored = TakeStored(s);
  stored.first_leaf = node_start;
  stored.end_leaf = end_leaf;
  node->ExportLevels(&stored.values, &stored.segments);
  EmitSummaryFrame(site, stored, words);
  if (crash_replay_) {
    RecycleStored(s, std::move(stored));
  } else {
    s->idata->summaries.push_back(std::move(stored));
  }
  s->pool[static_cast<size_t>(level)].push_back(std::move(node));
}

void RandomizedRankTracker::UpdateSpace(int site) {
  const SiteState& s = sites_[static_cast<size_t>(site)];
  uint64_t words = 9;  // counters, ids, round parameters, skip countdown
  for (const auto& node : s.nodes) {
    if (node != nullptr) words += node->SpaceWords();
  }
  // The ladder buffers at most the largest level's pull window — the
  // staging memory it removed from the h+1 nodes, charged once.
  words += s.ladder.SpaceWords();
  space_.Set(site, words);
}

void RandomizedRankTracker::EnsureNodes(SiteState* s) {
  if (s->nodes_ready) return;
  for (int level = 0; level <= height_; ++level) {
    if (level == 0 && options_.use_batch_compaction) {
      // Node-less leaf flush: draw the seed at exactly the site-RNG
      // position node creation used to draw it; the direct leaf export
      // consumes it.
      if (!s->leaf_seed_armed) {
        s->leaf_seed = s->rng.NextU64();
        s->leaf_seed_armed = true;
      }
      continue;
    }
    auto& node = s->nodes[static_cast<size_t>(level)];
    if (node == nullptr) node = AcquireNode(s, level);
  }
  s->nodes_ready = true;
}

void RandomizedRankTracker::PumpLevels(SiteState* s, uint64_t appended) {
  // pull_slack under-estimates the appends remaining before the first
  // level trips (pulls and flushes only shrink buffers, so the bound only
  // gets more conservative); while it stays positive the level scan is
  // skipped.
  if (appended < s->pull_slack) {
    s->pull_slack -= appended;
    return;
  }
  // Exact feeds pull exactly when staging the same data would have
  // tripped the level's compaction threshold, so both paths compact the
  // identical multiset at the identical points and stay bit-identical
  // (the singleton granularity makes the trigger exact).
  //
  // The batched feed instead defers every level to dyadic pull quanta,
  // min(2^level * b, top capacity): fewer, larger compactions — the same
  // mean-zero ±2^level martingale steps of the batched-compaction
  // argument, with strictly fewer of them — which takes the per-run
  // cascade overhead off the short-run regime where events arrive every
  // O(b) elements. Two structural effects matter as much as the count:
  // cursors come to rest only at nested dyadic leaf boundaries (or the
  // top-capacity cadence), so the boundaries they pin in the ladder
  // coincide instead of fragmenting every higher window, and a level
  // whose whole node window fits in one quantum ingests it as a single
  // consolidated run. The top level still pulls at its own capacity, so
  // the ladder's footprint stays at the one window it already buffers.
  const bool lazy = options_.use_batch_compaction;
  // Under the lazy feed, level 0 has no node and no pump cadence: its
  // quantum equals the leaf length, so its pulls land exactly on leaf
  // boundaries, where FlushNode drains the window itself (the node-less
  // direct export). Skipping it here also lifts pull_slack from <= one
  // leaf to the level-1 quantum, halving the scans.
  const int first_level = lazy ? 1 : 0;
  if (first_level > height_) {
    s->pull_slack = ~uint64_t{0};
    return;
  }
  const uint64_t top_capacity =
      s->nodes[static_cast<size_t>(height_)]->buffer_capacity();
  uint64_t slack = ~uint64_t{0};
  for (int level = first_level; level <= height_; ++level) {
    uint64_t pending = s->ladder.pending(static_cast<size_t>(level));
    auto& node = s->nodes[static_cast<size_t>(level)];
    uint64_t capacity = node->buffer_capacity();
    uint64_t quantum = 1;
    if (lazy) {
      quantum = level < 40 ? block_size_ << level : top_capacity;
      quantum = std::min(quantum, top_capacity);
    }
    uint64_t owned = node->level0_size();
    uint64_t threshold =
        std::max(quantum, capacity > owned ? capacity - owned : 1);
    if (pending >= threshold) {
      size_t total =
          s->ladder.Pull(static_cast<size_t>(level), &s->view_scratch);
      node->InsertSortedViews(s->view_scratch.data(), s->view_scratch.size(),
                              total);
      pending = 0;
      owned = node->level0_size();
      threshold =
          std::max(quantum, capacity > owned ? capacity - owned : 1);
    }
    slack = std::min(slack, threshold - pending);
  }
  s->pull_slack = slack;
}

inline void RandomizedRankTracker::ProcessArrival(int site, uint64_t value) {
  CoarseArriveOne(site);
  SiteState& s = sites_[static_cast<size_t>(site)];

  if (chunk_size_ == 1) {
    // Degenerate early-round geometry (n̄ < ~2k): one leaf, one node, one
    // element per instance. The tree would build the identical
    // single-item summary at far higher cost; ship it directly. The
    // tail-channel coin is still consumed (p = 1 here, so the forward
    // always fires and its sample is immediately covered by the shipped
    // summary — exactly what the node path's leaf-completion prune does).
    bool fwd = options_.use_skip_sampling ? s.tail_skip.Next(&s.rng)
                                          : s.rng.Bernoulli(1.0 / inv_p_);
    if (fwd) {
      Upload(site, 2);
      EmitResidualFrame(site, 0, value);
    }
    Upload(site, 3);  // single-item summary: value + header
    StoredSummary stored = TakeStored(&s);
    stored.first_leaf = 0;
    stored.end_leaf = 1;
    stored.values.push_back(value);
    stored.segments.emplace_back(1, 1);
    EmitSummaryFrame(site, stored, 3);
    if (crash_replay_) {
      RecycleStored(&s, std::move(stored));
    } else {
      s.idata->summaries.push_back(std::move(stored));
    }
    StartFreshInstance(&s);
    return;
  }

  // Feed the active node at every level of algorithm C's tree.
  if (options_.use_shared_ladder) {
    // One append serves all levels: the value lands in the ladder as a
    // one-element straggler run and each level pulls it when its own
    // compaction threshold comes due.
    EnsureNodes(&s);
    s.ladder.AppendValue(value);
    PumpLevels(&s, 1);
    s.ladder.Consolidate();
  } else {
    for (int level = 0; level <= height_; ++level) {
      auto& node = s.nodes[static_cast<size_t>(level)];
      if (node == nullptr) node = AcquireNode(&s, level);
      node->Insert(value);
    }
  }

  bool completes_leaf = s.arrivals_in_leaf + 1 >= block_size_ ||
                        s.arrivals_in_chunk + 1 >= chunk_size_;

  // In-progress tail channel: forward with probability p, tagged with the
  // leaf index.
  bool forward = options_.use_skip_sampling
                     ? s.tail_skip.Next(&s.rng)
                     : s.rng.Bernoulli(1.0 / inv_p_);
  if (forward) {
    Upload(site, 2);
    EmitResidualFrame(site, s.current_leaf, value);
    // A sample of a leaf this very arrival completes would be dropped by
    // the completion prune below before any estimate can read it; charge
    // the upload but skip the vector churn. (The frame still travels: the
    // coordinator replica stores it and prunes it on the covering
    // summary's arrival — same estimator-visible range.)
    if (!completes_leaf && !crash_replay_) {
      s.idata->residuals.push_back(ResidualSample{s.current_leaf, value});
    }
  }

  ++s.arrivals_in_leaf;
  ++s.arrivals_in_chunk;
  bool chunk_done = s.arrivals_in_chunk >= chunk_size_;
  bool leaf_done = s.arrivals_in_leaf >= block_size_ || chunk_done;

  if (leaf_done) {
    // Space watermark, sampled at every fourth leaf boundary plus the
    // chunk end rather than per arrival or per leaf (the nodes are at
    // their fullest right before a flush, and the per-site peak comes
    // from the top node late in the chunk, so the coarser cadence keeps
    // the recorded peak while dropping most full node scans). Intra-leaf
    // compactor transients are bounded by the same O(1/eps_l) capacity
    // the boundary reading shows.
    if ((s.current_leaf & 3u) == 3u || chunk_done) UpdateSpace(site);
    uint32_t completed_end = s.current_leaf + 1;
    for (int level = 0; level <= height_; ++level) {
      uint32_t node_start = (s.current_leaf >> level) << level;
      uint32_t node_end = std::min<uint32_t>(
          node_start + (1u << level), num_leaves_);
      if (completed_end == node_end || chunk_done) {
        if (chunk_done && level < height_) {
          // Every node completes at the chunk's last leaf, and the
          // top-level summary (shipped below) covers the whole chunk —
          // the coordinator would discard the lower summaries on arrival
          // (see the dyadic-cover pruning after this loop), so don't
          // build or ship them. The estimate is unchanged and the
          // communication strictly drops. Unpulled ladder data for these
          // levels dies with the instance reset below.
          auto& node = s.nodes[static_cast<size_t>(level)];
          if (node != nullptr) {
            s.pool[static_cast<size_t>(level)].push_back(std::move(node));
            s.nodes_ready = false;
          }
        } else {
          // The window-closing arrival was appended above, so the
          // cursor drain fused into FlushNode hands the node exactly its
          // leaf range.
          FlushNode(site, &s, level, node_start, completed_end);
        }
      }
    }
    // Completed leaves are now covered by summaries: their tail samples
    // are redundant and dropped (the paper's estimator only uses samples
    // from the in-progress block). Residuals arrive in leaf order, so the
    // drop is a constant-time advance of the live-range offset.
    auto& residuals = s.idata->residuals;
    size_t& begin = s.idata->residual_begin;
    while (begin < residuals.size() &&
           residuals[begin].leaf < completed_end) {
      ++begin;
    }
    if (chunk_done) {
      // The top-level summary now covers the whole chunk; lower summaries
      // are redundant for the dyadic cover and are dropped.
      auto& data = *s.idata;
      auto top = std::find_if(data.summaries.begin(), data.summaries.end(),
                              [completed_end](const StoredSummary& stored) {
                                return stored.first_leaf == 0 &&
                                       stored.end_leaf == completed_end;
                              });
      if (top != data.summaries.end()) {
        StoredSummary keep = std::move(*top);
        for (auto& dropped : data.summaries) {
          RecycleStored(&s, std::move(dropped));
        }
        data.summaries.clear();
        data.summaries.push_back(std::move(keep));
        // Every arena leaf summary is covered by the kept top summary;
        // the whole prune is three O(1) clears. (When the top summary
        // itself lives in the arena — height 0 — the find_if above
        // misses and the single covering ref stays.)
        data.leaf_values.clear();
        data.leaf_segments.clear();
        data.leaf_refs.clear();
      }
      StartFreshInstance(&s);
    } else {
      ++s.current_leaf;
      s.arrivals_in_leaf = 0;
    }
  }
}

inline void RandomizedRankTracker::ArriveOne(int site, uint64_t value) {
  ++n_;
  ProcessArrival(site, value);
}

void RandomizedRankTracker::Arrive(int site, uint64_t value) {
  sim::CheckSiteInRange(site, options_.num_sites);
  ArriveOne(site, value);
}

void RandomizedRankTracker::ShardEpochBegin(uint64_t arrivals_in_epoch) {
  if (shard_sinks_.empty()) {
    shard_sinks_.resize(static_cast<size_t>(options_.num_sites));
  }
  // Nothing inside a shard epoch reads n_ (mirrors the batch engine).
  n_ += arrivals_in_epoch;
  shard_mode_ = true;
}

// One site's epoch slice on a worker thread: the per-site projection of
// the serial event-countdown engine. The site's run boundaries are the
// same in both executions — its own events (leaf/chunk completions,
// coarse reports) plus the epoch ends, which are exactly the points where
// the serial engine resyncs (checkpoint batch ends and broadcasts) — so
// the sort/ladder/compaction schedule, and with it the site's RNG
// consumption, is identical and the replay stays bit-exact.
// disttrack-lint: allow(site-check) -- shard-internal: every id was
// validated by SiteGrouper (CheckSiteInRange aborts) before the epoch
// was partitioned onto workers; the worker replays a pre-checked span.
void RandomizedRankTracker::ShardArriveRun(int site, const uint64_t* keys,
                                           const uint32_t* /*global_index*/,
                                           size_t count) {
  SiteState& s = sites_[static_cast<size_t>(site)];
  size_t pos = 0;
  while (pos < count) {
    uint64_t gap = NextEventGap(site);
    uint64_t eventless =
        std::min<uint64_t>(gap - 1, static_cast<uint64_t>(count - pos));
    if (eventless > 0) {
      s.run.assign(keys + pos, keys + pos + eventless);
      FeedRun(site, &s.run, eventless);
      s.run.clear();
      pos += static_cast<size_t>(eventless);
    }
    if (pos >= count) break;
    ProcessArrival(site, keys[pos]);
    ++pos;
  }
}

void RandomizedRankTracker::ShardEpochEnd() {
  shard_mode_ = false;
  for (int i = 0; i < options_.num_sites; ++i) {
    ShardSink& sink = shard_sinks_[static_cast<size_t>(i)];
    for (uint64_t delta : sink.coarse_deltas) {
      coarse_->ApplyDeferredReport(i, delta);
    }
    sink.coarse_deltas.clear();
    if (sink.messages > 0) {
      // disttrack-lint: allow(meter-tap) -- shard-fold: the serial
      // path charges and taps per message; the fold replays the
      // epoch's deferred charges in bulk, and taps never run on the
      // sharded path (only the serial runtimes install one).
      meter_.RecordUploadBulk(i, sink.messages, sink.words);
      sink.messages = 0;
      sink.words = 0;
    }
  }
}

uint64_t RandomizedRankTracker::NextEventGap(int site) const {
  const SiteState& s = sites_[static_cast<size_t>(site)];
  // Next event: the arrival that completes the current leaf (or chunk —
  // its boundary coincides with a leaf boundary via leaf_done) or the
  // next coarse report. Tail-channel coin successes are not events: the
  // whole run sits in one leaf, so FeedRun walks the skip chain through
  // the buffered values itself — same draws at the same arrivals, same
  // residuals, with runs twice as long.
  uint64_t gap = std::min(block_size_ - s.arrivals_in_leaf,
                          chunk_size_ - s.arrivals_in_chunk);
  gap = std::min(gap, coarse_->arrivals_until_report(site));
  // The countdown would clamp a larger stride anyway; clamping here keeps
  // the shard run loop cutting runs at the same arrivals.
  return std::min<uint64_t>(gap, std::numeric_limits<uint32_t>::max());
}

void RandomizedRankTracker::RearmSite(int site) {
  // The site's run buffer may already hold eventless arrivals carried
  // over from a grouped chunk of the same batch; they count against the
  // gap (the authoritative counters advance only when the run is fed).
  countdown_.Arm(site, NextEventGap(site) -
                           sites_[static_cast<size_t>(site)].run.size());
}

void RandomizedRankTracker::RearmAll() {
  for (int i = 0; i < options_.num_sites; ++i) RearmSite(i);
}

// Retires `count` buffered arrivals at `site` that are known to be
// eventless: every active tree level absorbs the run in one InsertBatch,
// the leaf/chunk counters advance, the tail coins are consumed failures,
// and the coarse tracker advances in bulk. By construction count is
// strictly below every event gap, so no leaf completes, no tail forward
// fires, and no coarse report (hence no broadcast) can fire here.
void RandomizedRankTracker::FeedRun(int site, std::vector<uint64_t>* run,
                                    uint64_t count) {
  if (count == 0) return;
  uint64_t* values = run->data();
  SiteState& s = sites_[static_cast<size_t>(site)];
  // Tail channel: walk the skip chain through the run in arrival order
  // (values are still unsorted here). Every coin lands at the same
  // arrival with the same RNG draws as the per-arrival path; successes
  // are mid-leaf by construction (leaf boundaries are events), so each
  // forwarded sample joins the residual pool.
  {
    uint64_t pos = 0;
    for (;;) {
      uint64_t skips = s.tail_skip.pending_skips();
      if (pos + skips >= count) {
        s.tail_skip.ConsumeFailures(count - pos);
        break;
      }
      pos += skips;
      s.tail_skip.ConsumeFailures(skips);
      s.tail_skip.Next(&s.rng);  // skip exhausted: success + redraw
      Upload(site, 2);
      EmitResidualFrame(site, s.current_leaf, values[pos]);
      s.idata->residuals.push_back(
          ResidualSample{s.current_leaf, values[pos]});
      ++pos;
    }
  }
  // Every level of the tree absorbs the same run, so sort it once, in
  // place (the buffer is discarded right after). With the shared ladder
  // the run is then also copied and consolidated once, and each level
  // pulls borrowed views of the merged sequence at its own compaction
  // cadence; the staging path instead hands every level its own copy to
  // re-merge. Short runs (large k, dense events) go through the
  // branch-light small-run sorter; the sorted result is identical.
  SortRun(values, static_cast<size_t>(count));
  if (options_.use_shared_ladder) {
    EnsureNodes(&s);
    // Callers hand over exactly the run (the event arrival was popped),
    // so the buffer moves into the ladder instead of being copied.
    s.ladder.AppendSortedVector(run);
    PumpLevels(&s, count);
    s.ladder.Consolidate();
  } else {
    for (int level = 0; level <= height_; ++level) {
      auto& node = s.nodes[static_cast<size_t>(level)];
      if (node == nullptr) node = AcquireNode(&s, level);
      node->InsertSortedBatch(values, static_cast<size_t>(count));
    }
  }
  s.arrivals_in_leaf += count;
  s.arrivals_in_chunk += count;
  // Tail coins were consumed by the walk above. The run is strictly below
  // every event gap, so on the shard path the coarse advance cannot cross
  // the site's report threshold.
  if (shard_mode_) {
    coarse_->AdvanceLocalNoReport(site, count);
  } else {
    coarse_->ArriveRun(site, count);
  }
}

void RandomizedRankTracker::FlushBufferedRuns() {
  for (int i = 0; i < options_.num_sites; ++i) {
    SiteState& s = sites_[static_cast<size_t>(i)];
    FeedRun(i, &s.run, s.run.size());
    s.run.clear();
  }
}

// The countdown for `site` hit zero: its run buffer holds the buffered
// eventless arrivals (possibly carried over from earlier chunks of the
// batch) plus the event arrival's value. Feed the eventless prefix in
// bulk, clear the buffer (a broadcast fired by the event arrival must see
// nothing outstanding here), then process the event arrival exactly as
// the scalar path would.
void RandomizedRankTracker::HandleEventArrival(int site) {
  countdown_.TakeEventPrefix(site);
  SiteState& s = sites_[static_cast<size_t>(site)];
  uint64_t event_value = s.run.back();
  s.run.pop_back();  // the buffer now holds exactly the eventless prefix
  FeedRun(site, &s.run, s.run.size());
  s.run.clear();
  ProcessArrival(site, event_value);
  RearmSite(site);
}

void RandomizedRankTracker::CountdownChunk(const sim::Arrival* arrivals,
                                           size_t count) {
  // Event-countdown engine: an eventless arrival costs one decrement plus
  // one buffered value. Buffered runs carry across chunk boundaries; the
  // batch-end flush reconciles them.
  in_batch_ = true;
  RearmAll();
  uint32_t* until = countdown_.until();
  for (size_t i = 0; i < count; ++i) {
    int site = arrivals[i].site;
    sim::CheckSiteInRange(site, options_.num_sites);
    sites_[static_cast<size_t>(site)].run.push_back(arrivals[i].key);
    if (--until[site] == 0) HandleEventArrival(site);
  }
  in_batch_ = false;
}

// One site's span of a certified broadcast-free chunk. Mirrors the
// countdown engine's per-site projection exactly: eventless arrivals
// accumulate in the site's run buffer (fed at the next event or the
// batch-end flush — the same boundaries the countdown engine feeds at,
// so the ladder/compaction schedule and the site's RNG consumption are
// identical), and each event arrival replays the scalar path.
void RandomizedRankTracker::GroupedSpan(int site, const uint64_t* keys,
                                        size_t count) {
  SiteState& s = sites_[static_cast<size_t>(site)];
  size_t pos = 0;
  while (pos < count) {
    // Arrivals until the site's next event, net of what is already
    // buffered (the authoritative counters advance only at feed time).
    uint64_t to_event = NextEventGap(site) - s.run.size();
    uint64_t avail = count - pos;
    if (avail < to_event) {
      s.run.insert(s.run.end(), keys + pos, keys + pos + avail);
      return;
    }
    s.run.insert(s.run.end(), keys + pos, keys + pos + (to_event - 1));
    pos += static_cast<size_t>(to_event);
    uint64_t event_value = keys[pos - 1];
    FeedRun(site, &s.run, s.run.size());
    s.run.clear();
    ProcessArrival(site, event_value);
  }
}

void RandomizedRankTracker::ArriveBatch(const sim::Arrival* arrivals,
                                        size_t count) {
  if (!options_.use_skip_sampling || !options_.use_batch_compaction) {
    // Per-element feed: the historical path (and the only exact one when
    // tail coins are drawn per arrival).
    for (size_t i = 0; i < count; ++i) {
      sim::CheckSiteInRange(arrivals[i].site, options_.num_sites);
      ArriveOne(arrivals[i].site, arrivals[i].key);
    }
    return;
  }
  // n_ is advanced up front; nothing inside the batch reads it.
  n_ += count;
  // Amortize the per-leaf meter charges: no tap or replay is attached
  // (shard epochs never enter here), so message order inside the batch is
  // unobservable and the charges fold into one bulk post per site.
  defer_uploads_ = tap_ == nullptr && !crash_replay_;
  if (!options_.use_site_grouping) {
    CountdownChunk(arrivals, count);
  } else {
    // Site-grouped delivery: chunks certified broadcast-free are permuted
    // into site-contiguous spans and fed span-at-a-time (cache-resident
    // per-site state); chunks that may broadcast run through the countdown
    // engine unchanged. Either way runs feed at the same boundaries, so
    // the two engines interleave bit-identically.
    size_t pos = 0;
    while (pos < count) {
      size_t len = std::min(kSiteGroupChunk, count - pos);
      grouper_.ScatterBySite(arrivals + pos, len, options_.num_sites);
      // Eventless runs buffered from earlier chunks of this batch have not
      // advanced the coarse tracker yet; this chunk's events may feed them
      // through it, so they count against the broadcast projection.
      run_carry_.resize(static_cast<size_t>(options_.num_sites));
      for (int i = 0; i < options_.num_sites; ++i) {
        run_carry_[static_cast<size_t>(i)] =
            sites_[static_cast<size_t>(i)].run.size();
      }
      if (coarse_->BatchCannotBroadcast(grouper_.histogram(),
                                        run_carry_.data())) {
        grouped_chunk_active_ = true;
        for (const SiteGrouper::Span& span : grouper_.spans()) {
          GroupedSpan(span.site, span.data, span.length);
        }
        grouped_chunk_active_ = false;
      } else {
        CountdownChunk(arrivals + pos, len);
      }
      pos += len;
    }
  }
  FlushBufferedRuns();
  defer_uploads_ = false;
  FlushDeferredUploads();
}

double RandomizedRankTracker::SummaryRankBelow(const StoredSummary& summary,
                                               uint64_t x) {
  uint64_t below = 0;
  uint32_t begin = 0;
  for (const auto& [weight, end] : summary.segments) {
    auto first = summary.values.begin() + begin;
    auto last = summary.values.begin() + end;
    below += weight * static_cast<uint64_t>(std::lower_bound(first, last, x) -
                                            first);
    begin = end;
  }
  return static_cast<double>(below);
}

double RandomizedRankTracker::LeafRankBelow(const InstanceData& data,
                                            const LeafRef& ref, uint64_t x) {
  // Arena-resident twin of SummaryRankBelow: the ref's segment slice
  // carries absolute end offsets into the shared value array.
  uint64_t below = 0;
  uint32_t begin = ref.values_begin;
  for (uint32_t si = ref.seg_begin; si < ref.seg_end; ++si) {
    const auto& [weight, end] = data.leaf_segments[si];
    auto first = data.leaf_values.begin() + begin;
    auto last = data.leaf_values.begin() + end;
    below += weight * static_cast<uint64_t>(std::lower_bound(first, last, x) -
                                            first);
    begin = end;
  }
  return static_cast<double>(below);
}

double RandomizedRankTracker::EstimateRank(uint64_t value) const {
  double est = 0;
  for (const SiteState& site_state : sites_) {
    for (const InstanceData& data : site_state.owned_instances) {
      // Greedy maximal dyadic cover of the completed-leaf prefix, over
      // the owned summaries and the arena leaf refs together. Refs are
      // in leaf order, so they are consumed by one monotone index; on a
      // range tie the ref wins, matching the StoredSummary-only scan
      // (which kept the level-0 summary, pushed first) so both storage
      // layouts sum the identical ranges in the identical order.
      uint32_t cursor = 0;
      size_t ref_i = 0;
      for (;;) {
        const StoredSummary* best = nullptr;
        for (const StoredSummary& stored : data.summaries) {
          if (stored.first_leaf == cursor &&
              (best == nullptr || stored.end_leaf > best->end_leaf)) {
            best = &stored;
          }
        }
        while (ref_i < data.leaf_refs.size() &&
               data.leaf_refs[ref_i].first_leaf < cursor) {
          ++ref_i;
        }
        const LeafRef* ref = ref_i < data.leaf_refs.size() &&
                                     data.leaf_refs[ref_i].first_leaf ==
                                         cursor
                                 ? &data.leaf_refs[ref_i]
                                 : nullptr;
        if (ref != nullptr &&
            (best == nullptr || ref->end_leaf >= best->end_leaf)) {
          est += LeafRankBelow(data, *ref, value);
          cursor = ref->end_leaf;
          continue;
        }
        if (best == nullptr) break;
        est += SummaryRankBelow(*best, value);
        cursor = best->end_leaf;
      }
      // In-progress tail: unbiased sample estimate at this round's p.
      uint64_t below = 0;
      for (size_t i = data.residual_begin; i < data.residuals.size(); ++i) {
        if (data.residuals[i].value < value) ++below;
      }
      est += static_cast<double>(below) * data.inv_p;
    }
  }
  return est;
}

// --- Wire layer / crash recovery -----------------------------------------

void RandomizedRankTracker::EmitSummaryFrame(int site,
                                             const StoredSummary& stored,
                                             uint64_t words) {
  if (tap_ == nullptr) return;
  sim::wire::Message msg;
  msg.type = sim::wire::MsgType::kRankSummary;
  msg.site = site;
  msg.epoch = coarse_->round();
  msg.a = stored.first_leaf;
  msg.b = stored.end_leaf;
  msg.values = stored.values;
  msg.segments = stored.segments;
  msg.paper_words = words;
  tap_->OnMessage(std::move(msg));
}

void RandomizedRankTracker::EmitResidualFrame(int site, uint32_t leaf,
                                              uint64_t value) {
  if (tap_ == nullptr) return;
  sim::wire::Message msg;
  msg.type = sim::wire::MsgType::kRankResidual;
  msg.site = site;
  msg.epoch = coarse_->round();
  msg.a = leaf;
  msg.b = value;
  msg.paper_words = 2;
  tap_->OnMessage(std::move(msg));
}

void RandomizedRankTracker::set_wire_tap(sim::wire::WireTap* tap) {
  tap_ = tap;
  coarse_->set_wire_tap(tap);
}

bool RandomizedRankTracker::SiteSnapshotReady(int site) const {
  const SiteState& s = sites_[static_cast<size_t>(site)];
  // At a chunk boundary the instance is fresh: no partial leaves, no
  // live nodes, no unpulled ladder data, no armed leaf seed — the site's
  // whole private state is the round parameters, the coarse counters,
  // and the RNG/skip streams. `run` holds batch-engine carry that only
  // exists mid-ArriveBatch; the robust driver feeds scalar arrivals.
  return s.arrivals_in_chunk == 0 && s.run.empty();
}

void RandomizedRankTracker::SerializeSiteState(
    int site, std::vector<uint64_t>* out) const {
  if (!SiteSnapshotReady(site)) {
    std::fprintf(stderr,
                 "RandomizedRankTracker: snapshot of site %d requested "
                 "mid-chunk\n", site);
    std::abort();
  }
  const SiteState& s = sites_[static_cast<size_t>(site)];
  uint64_t bits = 0;
  std::memcpy(&bits, &inv_p_, sizeof(bits));
  out->push_back(bits);
  out->push_back(chunk_size_);
  out->push_back(block_size_);
  out->push_back(num_leaves_);
  out->push_back(static_cast<uint64_t>(height_));
  coarse_->SerializeSite(site, out);
  out->push_back(s.owned_instances.size() - 1);
  out->push_back(s.tail_skip.raw_skip());
  double inv_log = s.tail_skip.raw_inv_log();
  std::memcpy(&bits, &inv_log, sizeof(bits));
  out->push_back(bits);
  uint64_t rng_state[4];
  s.rng.SaveState(rng_state);
  for (uint64_t word : rng_state) out->push_back(word);
}

void RandomizedRankTracker::RestoreSiteState(
    int site, const std::vector<uint64_t>& blob) {
  if (blob.size() != 15) {
    std::fprintf(stderr, "RandomizedRankTracker: bad snapshot blob size\n");
    std::abort();
  }
  const uint64_t* data = blob.data();
  std::memcpy(&inv_p_, &data[0], sizeof(inv_p_));
  chunk_size_ = data[1];
  block_size_ = data[2];
  num_leaves_ = static_cast<uint32_t>(data[3]);
  height_ = static_cast<int>(data[4]);
  coarse_->RestoreSite(site, data + 5);
  size_t instance_index = static_cast<size_t>(data[8]);
  SiteState& s = sites_[static_cast<size_t>(site)];
  double inv_log;
  std::memcpy(&inv_log, &data[10], sizeof(inv_log));
  s.tail_skip.RestoreRaw(data[9], inv_log);
  s.rng.RestoreState(data + 11);
  // Rebuild the (empty-at-snapshot) derived state for the restored
  // round's tree shape.
  s.arrivals_in_chunk = 0;
  s.arrivals_in_leaf = 0;
  s.current_leaf = 0;
  size_t levels = static_cast<size_t>(height_) + 1;
  s.nodes.clear();
  s.nodes.resize(levels);
  s.pool.clear();
  s.pool.resize(levels);
  s.nodes_ready = false;
  s.pull_slack = 0;
  s.leaf_seed_armed = false;
  s.ladder.Reset(levels);
  s.run.clear();
  if (instance_index >= s.owned_instances.size()) {
    std::fprintf(stderr,
                 "RandomizedRankTracker: snapshot instance index out of "
                 "range\n");
    std::abort();
  }
  replay_cursor_ = instance_index;
  s.idata = &s.owned_instances[instance_index];
}

void RandomizedRankTracker::BeginCrashReplay(int site) {
  std::memcpy(&replay_saved_inv_p_bits_, &inv_p_,
              sizeof(replay_saved_inv_p_bits_));
  replay_saved_chunk_size_ = chunk_size_;
  replay_saved_block_size_ = block_size_;
  replay_saved_num_leaves_ = num_leaves_;
  replay_saved_height_ = height_;
  crash_replay_ = true;
  replay_site_ = site;
  replay_mid_n_bar_ = nullptr;
}

void RandomizedRankTracker::EndCrashReplay() {
  uint64_t bits = 0;
  std::memcpy(&bits, &inv_p_, sizeof(bits));
  if (bits != replay_saved_inv_p_bits_ ||
      chunk_size_ != replay_saved_chunk_size_ ||
      block_size_ != replay_saved_block_size_ ||
      num_leaves_ != replay_saved_num_leaves_ ||
      height_ != replay_saved_height_) {
    std::fprintf(stderr,
                 "RandomizedRankTracker: crash replay did not restore the "
                 "round parameters\n");
    std::abort();
  }
  SiteState& s = sites_[static_cast<size_t>(replay_site_)];
  if (replay_cursor_ + 1 != s.owned_instances.size() ||
      s.idata != &s.owned_instances[replay_cursor_]) {
    std::fprintf(stderr,
                 "RandomizedRankTracker: crash replay instance cursor out "
                 "of step\n");
    std::abort();
  }
  crash_replay_ = false;
  replay_site_ = -1;
}

void RandomizedRankTracker::ReplayCrashArrive(
    int site, uint64_t value, const uint64_t* mid_ritual_n_bar) {
  replay_mid_n_bar_ = mid_ritual_n_bar;
  ProcessArrival(site, value);
  if (replay_mid_n_bar_ != nullptr) {
    std::fprintf(stderr,
                 "RandomizedRankTracker: journaled mid-arrival broadcast "
                 "was not consumed\n");
    std::abort();
  }
}

void RandomizedRankTracker::ReplayCrashRitual(int site, uint64_t n_bar) {
  // Per-site half of OnBroadcast: new round parameters, fresh instance
  // (cursor-advancing during replay), skip redraw — identical RNG draws.
  // The coordinator half (round counter, broadcast charge, other sites'
  // restarts) already happened in the pre-crash execution.
  RecomputeRoundParams(n_bar);
  StartFreshInstance(&sites_[static_cast<size_t>(site)]);
  UpdateSpace(site);
}

}  // namespace rank
}  // namespace disttrack
