#include "disttrack/rank/randomized_rank.h"

#include <algorithm>
#include <cmath>

#include "disttrack/common/math_util.h"

namespace disttrack {
namespace rank {

Status RandomizedRankOptions::Validate() const {
  if (num_sites < 1) {
    return Status::InvalidArgument("num_sites must be >= 1");
  }
  if (!(epsilon > 0.0) || epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  if (!(confidence_factor >= 1.0)) {
    return Status::InvalidArgument("confidence_factor must be >= 1");
  }
  return Status::OK();
}

RandomizedRankTracker::RandomizedRankTracker(
    const RandomizedRankOptions& options)
    : options_(options),
      meter_(options.num_sites),
      space_(options.num_sites),
      sites_(static_cast<size_t>(options.num_sites)) {
  for (int i = 0; i < options_.num_sites; ++i) {
    SiteState& s = sites_[static_cast<size_t>(i)];
    s.rng = Rng(options_.seed * 0x8CB92BA72F3D8DD7ull +
                static_cast<uint64_t>(i));
    StartFreshInstance(&s);
  }
  coarse_ = std::make_unique<count::CoarseTracker>(options_.num_sites,
                                                   &meter_);
  coarse_->AddObserver([this](uint64_t round, uint64_t n_bar) {
    OnBroadcast(round, n_bar);
  });
}

double RandomizedRankTracker::LevelEps(int level) const {
  double hh = std::max(1, height_);
  return std::pow(2.0, -level) / std::sqrt(hh);
}

void RandomizedRankTracker::RecomputeRoundParams(uint64_t n_bar) {
  double root_k = std::sqrt(static_cast<double>(options_.num_sites));
  inv_p_ = std::max(1.0, options_.epsilon * static_cast<double>(n_bar) /
                             (options_.confidence_factor * root_k));
  chunk_size_ = std::max<uint64_t>(
      1, n_bar / static_cast<uint64_t>(options_.num_sites));
  block_size_ = std::max<uint64_t>(1, static_cast<uint64_t>(inv_p_));
  block_size_ = std::min(block_size_, chunk_size_);
  num_leaves_ = static_cast<uint32_t>(CeilDiv(chunk_size_, block_size_));
  height_ = CeilLog2(num_leaves_);
}

void RandomizedRankTracker::StartFreshInstance(SiteState* s) {
  s->instance = next_instance_++;
  s->arrivals_in_chunk = 0;
  s->arrivals_in_leaf = 0;
  s->current_leaf = 0;
  s->nodes.clear();
  s->nodes.resize(static_cast<size_t>(height_) + 1);
  instances_[s->instance].inv_p = inv_p_;
  if (options_.use_skip_sampling) {
    // Rounds change p, which invalidates outstanding skips; chunk
    // boundaries don't, but a redraw is exact either way (independence of
    // unconsumed coins) and keeps the transition logic in one place.
    s->tail_skip.Reset(1.0 / inv_p_, &s->rng);
  }
}

void RandomizedRankTracker::OnBroadcast(uint64_t /*round*/, uint64_t n_bar) {
  // Completed leaves of the closing round are already covered by shipped
  // summaries, and the in-progress tails stay covered by their frozen
  // residual samples; sites just restart with fresh parameters.
  RecomputeRoundParams(n_bar);
  for (int i = 0; i < options_.num_sites; ++i) {
    StartFreshInstance(&sites_[static_cast<size_t>(i)]);
    UpdateSpace(i);
  }
}

void RandomizedRankTracker::FlushNode(int site, SiteState* s, int level,
                                      uint32_t node_start,
                                      uint32_t end_leaf) {
  auto& node = s->nodes[static_cast<size_t>(level)];
  if (node == nullptr || node->m() == 0) {
    node.reset();
    return;
  }
  // Site -> coordinator: the serialized summary.
  meter_.RecordUpload(site, node->SerializedWords());

  StoredSummary stored;
  stored.first_leaf = node_start;
  stored.end_leaf = end_leaf;
  auto items = node->Items();
  std::sort(items.begin(), items.end());
  stored.values.reserve(items.size());
  stored.weight_prefix.reserve(items.size());
  uint64_t acc = 0;
  for (const auto& [value, weight] : items) {
    stored.values.push_back(value);
    acc += weight;
    stored.weight_prefix.push_back(acc);
  }
  instances_[s->instance].summaries.push_back(std::move(stored));
  node.reset();
}

void RandomizedRankTracker::UpdateSpace(int site) {
  const SiteState& s = sites_[static_cast<size_t>(site)];
  uint64_t words = 9;  // counters, ids, round parameters, skip countdown
  for (const auto& node : s.nodes) {
    if (node != nullptr) words += node->SpaceWords();
  }
  space_.Set(site, words);
}

inline void RandomizedRankTracker::ArriveOne(int site, uint64_t value) {
  ++n_;
  coarse_->Arrive(site);
  SiteState& s = sites_[static_cast<size_t>(site)];

  // Feed the active node at every level of algorithm C's tree.
  for (int level = 0; level <= height_; ++level) {
    auto& node = s.nodes[static_cast<size_t>(level)];
    if (node == nullptr) {
      node = std::make_unique<summaries::CompactorSummary>(LevelEps(level),
                                                           s.rng.NextU64());
    }
    node->Insert(value);
  }

  // In-progress tail channel: forward with probability p, tagged with the
  // leaf index.
  bool forward = options_.use_skip_sampling
                     ? s.tail_skip.Next(&s.rng)
                     : s.rng.Bernoulli(1.0 / inv_p_);
  if (forward) {
    meter_.RecordUpload(site, 2);
    instances_[s.instance].residuals.push_back(
        ResidualSample{s.current_leaf, value});
  }

  ++s.arrivals_in_leaf;
  ++s.arrivals_in_chunk;
  bool chunk_done = s.arrivals_in_chunk >= chunk_size_;
  bool leaf_done = s.arrivals_in_leaf >= block_size_ || chunk_done;

  if (leaf_done) {
    // Space watermark, sampled at leaf boundaries rather than per arrival
    // (the nodes are at their fullest right before the flush, so this
    // keeps the recorded peak while dropping a full node scan per
    // arrival). Intra-leaf compactor transients are bounded by the same
    // O(1/eps_l) capacity the boundary reading shows.
    UpdateSpace(site);
    uint32_t completed_end = s.current_leaf + 1;
    for (int level = 0; level <= height_; ++level) {
      uint32_t node_start = (s.current_leaf >> level) << level;
      uint32_t node_end = std::min<uint32_t>(
          node_start + (1u << level), num_leaves_);
      if (completed_end == node_end || chunk_done) {
        FlushNode(site, &s, level, node_start, completed_end);
      }
    }
    // Completed leaves are now covered by summaries: their tail samples
    // are redundant and dropped (the paper's estimator only uses samples
    // from the in-progress block).
    auto& residuals = instances_[s.instance].residuals;
    residuals.erase(
        std::remove_if(residuals.begin(), residuals.end(),
                       [completed_end](const ResidualSample& r) {
                         return r.leaf < completed_end;
                       }),
        residuals.end());
    if (chunk_done) {
      // The top-level summary now covers the whole chunk; lower summaries
      // are redundant for the dyadic cover and are dropped.
      auto& data = instances_[s.instance];
      auto top = std::find_if(data.summaries.begin(), data.summaries.end(),
                              [completed_end](const StoredSummary& stored) {
                                return stored.first_leaf == 0 &&
                                       stored.end_leaf == completed_end;
                              });
      if (top != data.summaries.end()) {
        StoredSummary keep = std::move(*top);
        data.summaries.clear();
        data.summaries.push_back(std::move(keep));
      }
      StartFreshInstance(&s);
    } else {
      ++s.current_leaf;
      s.arrivals_in_leaf = 0;
    }
  }
}

void RandomizedRankTracker::Arrive(int site, uint64_t value) {
  ArriveOne(site, value);
}

void RandomizedRankTracker::ArriveBatch(const sim::Arrival* arrivals,
                                        size_t count) {
  for (size_t i = 0; i < count; ++i) {
    ArriveOne(arrivals[i].site, arrivals[i].key);
  }
}

double RandomizedRankTracker::SummaryRankBelow(const StoredSummary& summary,
                                               uint64_t x) {
  auto it = std::lower_bound(summary.values.begin(), summary.values.end(), x);
  if (it == summary.values.begin()) return 0.0;
  size_t idx = static_cast<size_t>(it - summary.values.begin());
  return static_cast<double>(summary.weight_prefix[idx - 1]);
}

double RandomizedRankTracker::EstimateRank(uint64_t value) const {
  double est = 0;
  for (const auto& [id, data] : instances_) {
    // Greedy maximal dyadic cover of the completed-leaf prefix.
    uint32_t cursor = 0;
    for (;;) {
      const StoredSummary* best = nullptr;
      for (const StoredSummary& stored : data.summaries) {
        if (stored.first_leaf == cursor &&
            (best == nullptr || stored.end_leaf > best->end_leaf)) {
          best = &stored;
        }
      }
      if (best == nullptr) break;
      est += SummaryRankBelow(*best, value);
      cursor = best->end_leaf;
    }
    // In-progress tail: unbiased sample estimate at this round's p.
    uint64_t below = 0;
    for (const ResidualSample& r : data.residuals) {
      if (r.value < value) ++below;
    }
    est += static_cast<double>(below) * data.inv_p;
  }
  return est;
}

}  // namespace rank
}  // namespace disttrack
