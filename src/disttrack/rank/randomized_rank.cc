#include "disttrack/rank/randomized_rank.h"

#include <algorithm>
#include <cmath>

#include "disttrack/common/math_util.h"

namespace disttrack {
namespace rank {

Status RandomizedRankOptions::Validate() const {
  if (num_sites < 1) {
    return Status::InvalidArgument("num_sites must be >= 1");
  }
  if (!(epsilon > 0.0) || epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  if (!(confidence_factor >= 1.0)) {
    return Status::InvalidArgument("confidence_factor must be >= 1");
  }
  return Status::OK();
}

RandomizedRankTracker::RandomizedRankTracker(
    const RandomizedRankOptions& options)
    : options_(options),
      meter_(options.num_sites),
      space_(options.num_sites),
      sites_(static_cast<size_t>(options.num_sites)) {
  for (int i = 0; i < options_.num_sites; ++i) {
    SiteState& s = sites_[static_cast<size_t>(i)];
    s.rng = Rng(options_.seed * 0x8CB92BA72F3D8DD7ull +
                static_cast<uint64_t>(i));
    StartFreshInstance(&s);
  }
  coarse_ = std::make_unique<count::CoarseTracker>(options_.num_sites,
                                                   &meter_);
  coarse_->AddObserver([this](uint64_t round, uint64_t n_bar) {
    OnBroadcast(round, n_bar);
  });
  countdown_.Resize(options_.num_sites);
}

double RandomizedRankTracker::LevelEps(int level) const {
  double hh = std::max(1, height_);
  return std::pow(2.0, -level) / std::sqrt(hh);
}

void RandomizedRankTracker::RecomputeRoundParams(uint64_t n_bar) {
  double root_k = std::sqrt(static_cast<double>(options_.num_sites));
  inv_p_ = std::max(1.0, options_.epsilon * static_cast<double>(n_bar) /
                             (options_.confidence_factor * root_k));
  chunk_size_ = std::max<uint64_t>(
      1, n_bar / static_cast<uint64_t>(options_.num_sites));
  block_size_ = std::max<uint64_t>(1, static_cast<uint64_t>(inv_p_));
  block_size_ = std::min(block_size_, chunk_size_);
  num_leaves_ = static_cast<uint32_t>(CeilDiv(chunk_size_, block_size_));
  height_ = CeilLog2(num_leaves_);
}

std::unique_ptr<summaries::CompactorSummary> RandomizedRankTracker::
    AcquireNode(SiteState* s, int level) {
  uint64_t seed = s->rng.NextU64();
  auto& pool = s->pool[static_cast<size_t>(level)];
  if (!pool.empty()) {
    auto node = std::move(pool.back());
    pool.pop_back();
    node->Reset(seed);
    return node;
  }
  return std::make_unique<summaries::CompactorSummary>(LevelEps(level), seed);
}

void RandomizedRankTracker::StartFreshInstance(SiteState* s) {
  s->instance = next_instance_++;
  s->arrivals_in_chunk = 0;
  s->arrivals_in_leaf = 0;
  s->current_leaf = 0;
  size_t levels = static_cast<size_t>(height_) + 1;
  if (s->pool.size() != levels) {
    // The round's tree shape changed, and with it LevelEps and every
    // summary capacity: pooled nodes are the wrong size, drop them.
    s->pool.clear();
    s->pool.resize(levels);
    s->nodes.clear();
  } else {
    // Recycle still-active node objects — their contents are already
    // covered (shipped summaries / frozen residuals) and Reset() empties
    // them on reuse.
    for (size_t l = 0; l < s->nodes.size(); ++l) {
      if (s->nodes[l] != nullptr) {
        s->pool[l].push_back(std::move(s->nodes[l]));
      }
    }
    s->nodes.clear();
  }
  s->nodes.resize(levels);
  instances_[s->instance].inv_p = inv_p_;
  if (options_.use_skip_sampling) {
    // Rounds change p, which invalidates outstanding skips; chunk
    // boundaries don't, but a redraw is exact either way (independence of
    // unconsumed coins) and keeps the transition logic in one place.
    s->tail_skip.Reset(1.0 / inv_p_, &s->rng);
  }
}

void RandomizedRankTracker::OnBroadcast(uint64_t /*round*/, uint64_t n_bar) {
  // Mid-batch, every site's buffered eventless run belongs to the closing
  // round: feed it into the current nodes (which the restart below then
  // discards, exactly as the scalar path discards mid-leaf state — those
  // arrivals stay covered by the frozen residual samples).
  if (in_batch_) ResyncAllMidBatch();
  // Completed leaves of the closing round are already covered by shipped
  // summaries, and the in-progress tails stay covered by their frozen
  // residual samples; sites just restart with fresh parameters.
  RecomputeRoundParams(n_bar);
  for (int i = 0; i < options_.num_sites; ++i) {
    StartFreshInstance(&sites_[static_cast<size_t>(i)]);
    UpdateSpace(i);
  }
  if (in_batch_) RearmAll();
}

void RandomizedRankTracker::FlushNode(int site, SiteState* s, int level,
                                      uint32_t node_start,
                                      uint32_t end_leaf) {
  auto& node = s->nodes[static_cast<size_t>(level)];
  if (node == nullptr) return;
  if (node->m() == 0) {
    s->pool[static_cast<size_t>(level)].push_back(std::move(node));
    return;
  }
  // Site -> coordinator: the serialized summary.
  meter_.RecordUpload(site, node->SerializedWords());

  StoredSummary stored;
  stored.first_leaf = node_start;
  stored.end_leaf = end_leaf;
  node->ExportLevels(&stored.values, &stored.segments);
  instances_[s->instance].summaries.push_back(std::move(stored));
  s->pool[static_cast<size_t>(level)].push_back(std::move(node));
}

void RandomizedRankTracker::UpdateSpace(int site) {
  const SiteState& s = sites_[static_cast<size_t>(site)];
  uint64_t words = 9;  // counters, ids, round parameters, skip countdown
  for (const auto& node : s.nodes) {
    if (node != nullptr) words += node->SpaceWords();
  }
  space_.Set(site, words);
}

inline void RandomizedRankTracker::ProcessArrival(int site, uint64_t value) {
  coarse_->Arrive(site);
  SiteState& s = sites_[static_cast<size_t>(site)];

  if (chunk_size_ == 1) {
    // Degenerate early-round geometry (n̄ < ~2k): one leaf, one node, one
    // element per instance. The tree would build the identical
    // single-item summary at far higher cost; ship it directly. The
    // tail-channel coin is still consumed (p = 1 here, so the forward
    // always fires and its sample is immediately covered by the shipped
    // summary — exactly what the node path's leaf-completion prune does).
    bool fwd = options_.use_skip_sampling ? s.tail_skip.Next(&s.rng)
                                          : s.rng.Bernoulli(1.0 / inv_p_);
    if (fwd) meter_.RecordUpload(site, 2);
    meter_.RecordUpload(site, 3);  // single-item summary: value + header
    StoredSummary stored;
    stored.first_leaf = 0;
    stored.end_leaf = 1;
    stored.values.push_back(value);
    stored.segments.emplace_back(1, 1);
    instances_[s.instance].summaries.push_back(std::move(stored));
    StartFreshInstance(&s);
    return;
  }

  // Feed the active node at every level of algorithm C's tree.
  for (int level = 0; level <= height_; ++level) {
    auto& node = s.nodes[static_cast<size_t>(level)];
    if (node == nullptr) node = AcquireNode(&s, level);
    node->Insert(value);
  }

  bool completes_leaf = s.arrivals_in_leaf + 1 >= block_size_ ||
                        s.arrivals_in_chunk + 1 >= chunk_size_;

  // In-progress tail channel: forward with probability p, tagged with the
  // leaf index.
  bool forward = options_.use_skip_sampling
                     ? s.tail_skip.Next(&s.rng)
                     : s.rng.Bernoulli(1.0 / inv_p_);
  if (forward) {
    meter_.RecordUpload(site, 2);
    // A sample of a leaf this very arrival completes would be dropped by
    // the completion prune below before any estimate can read it; charge
    // the upload but skip the vector churn.
    if (!completes_leaf) {
      instances_[s.instance].residuals.push_back(
          ResidualSample{s.current_leaf, value});
    }
  }

  ++s.arrivals_in_leaf;
  ++s.arrivals_in_chunk;
  bool chunk_done = s.arrivals_in_chunk >= chunk_size_;
  bool leaf_done = s.arrivals_in_leaf >= block_size_ || chunk_done;

  if (leaf_done) {
    // Space watermark, sampled at leaf boundaries rather than per arrival
    // (the nodes are at their fullest right before the flush, so this
    // keeps the recorded peak while dropping a full node scan per
    // arrival). Intra-leaf compactor transients are bounded by the same
    // O(1/eps_l) capacity the boundary reading shows.
    UpdateSpace(site);
    uint32_t completed_end = s.current_leaf + 1;
    for (int level = 0; level <= height_; ++level) {
      uint32_t node_start = (s.current_leaf >> level) << level;
      uint32_t node_end = std::min<uint32_t>(
          node_start + (1u << level), num_leaves_);
      if (completed_end == node_end || chunk_done) {
        if (chunk_done && level < height_) {
          // Every node completes at the chunk's last leaf, and the
          // top-level summary (shipped below) covers the whole chunk —
          // the coordinator would discard the lower summaries on arrival
          // (see the dyadic-cover pruning after this loop), so don't
          // build or ship them. The estimate is unchanged and the
          // communication strictly drops.
          auto& node = s.nodes[static_cast<size_t>(level)];
          if (node != nullptr) {
            s.pool[static_cast<size_t>(level)].push_back(std::move(node));
          }
        } else {
          FlushNode(site, &s, level, node_start, completed_end);
        }
      }
    }
    // Completed leaves are now covered by summaries: their tail samples
    // are redundant and dropped (the paper's estimator only uses samples
    // from the in-progress block).
    auto& residuals = instances_[s.instance].residuals;
    residuals.erase(
        std::remove_if(residuals.begin(), residuals.end(),
                       [completed_end](const ResidualSample& r) {
                         return r.leaf < completed_end;
                       }),
        residuals.end());
    if (chunk_done) {
      // The top-level summary now covers the whole chunk; lower summaries
      // are redundant for the dyadic cover and are dropped.
      auto& data = instances_[s.instance];
      auto top = std::find_if(data.summaries.begin(), data.summaries.end(),
                              [completed_end](const StoredSummary& stored) {
                                return stored.first_leaf == 0 &&
                                       stored.end_leaf == completed_end;
                              });
      if (top != data.summaries.end()) {
        StoredSummary keep = std::move(*top);
        data.summaries.clear();
        data.summaries.push_back(std::move(keep));
      }
      StartFreshInstance(&s);
    } else {
      ++s.current_leaf;
      s.arrivals_in_leaf = 0;
    }
  }
}

inline void RandomizedRankTracker::ArriveOne(int site, uint64_t value) {
  ++n_;
  ProcessArrival(site, value);
}

void RandomizedRankTracker::Arrive(int site, uint64_t value) {
  ArriveOne(site, value);
}

void RandomizedRankTracker::RearmSite(int site) {
  SiteState& s = sites_[static_cast<size_t>(site)];
  // Next event: the arrival that completes the current leaf (or chunk —
  // its boundary coincides with a leaf boundary via leaf_done), the next
  // tail-channel coin success, or the next coarse report.
  uint64_t gap = std::min(block_size_ - s.arrivals_in_leaf,
                          chunk_size_ - s.arrivals_in_chunk);
  gap = std::min(gap, s.tail_skip.pending_skips() + 1);
  gap = std::min(gap, coarse_->arrivals_until_report(site));
  countdown_.Arm(site, gap);
}

void RandomizedRankTracker::RearmAll() {
  for (int i = 0; i < options_.num_sites; ++i) RearmSite(i);
}

// Retires `count` buffered arrivals at `site` that are known to be
// eventless: every active tree level absorbs the run in one InsertBatch,
// the leaf/chunk counters advance, the tail coins are consumed failures,
// and the coarse tracker advances in bulk. By construction count is
// strictly below every event gap, so no leaf completes, no tail forward
// fires, and no coarse report (hence no broadcast) can fire here.
void RandomizedRankTracker::FeedRun(int site, uint64_t* values,
                                    uint64_t count) {
  if (count == 0) return;
  SiteState& s = sites_[static_cast<size_t>(site)];
  // Every level of the tree absorbs the same run, so sort it once, in
  // place (the buffer is discarded right after), and let each summary
  // stage it as a single pre-sorted segment instead of paying height+1
  // independent sorts.
  std::sort(values, values + count);
  for (int level = 0; level <= height_; ++level) {
    auto& node = s.nodes[static_cast<size_t>(level)];
    if (node == nullptr) node = AcquireNode(&s, level);
    node->InsertSortedBatch(values, static_cast<size_t>(count));
  }
  s.arrivals_in_leaf += count;
  s.arrivals_in_chunk += count;
  s.tail_skip.ConsumeFailures(count);
  coarse_->ArriveRun(site, count);
}

void RandomizedRankTracker::ResyncAllMidBatch() {
  for (int i = 0; i < options_.num_sites; ++i) {
    uint64_t consumed = countdown_.Outstanding(i);
    countdown_.Reconcile(i);
    SiteState& s = sites_[static_cast<size_t>(i)];
    FeedRun(i, s.run.data(), consumed);
    s.run.clear();
  }
}

// The countdown for `site` hit zero: its run buffer holds the stride's
// eventless prefix plus the event arrival's value. Feed the prefix in
// bulk, clear the buffer (a broadcast fired by the event arrival must see
// nothing outstanding here), then process the event arrival exactly as
// the scalar path would.
void RandomizedRankTracker::HandleEventArrival(int site) {
  uint64_t prefix = countdown_.TakeEventPrefix(site);
  SiteState& s = sites_[static_cast<size_t>(site)];
  uint64_t event_value = s.run.back();
  FeedRun(site, s.run.data(), prefix);
  s.run.clear();
  ProcessArrival(site, event_value);
  RearmSite(site);
}

void RandomizedRankTracker::ArriveBatch(const sim::Arrival* arrivals,
                                        size_t count) {
  if (!options_.use_skip_sampling || !options_.use_batch_compaction) {
    // Per-element feed: the historical path (and the only exact one when
    // tail coins are drawn per arrival).
    for (size_t i = 0; i < count; ++i) {
      ArriveOne(arrivals[i].site, arrivals[i].key);
    }
    return;
  }
  // Event-countdown engine: an eventless arrival costs one decrement plus
  // one buffered value. n_ is advanced up front; nothing inside the batch
  // reads it.
  n_ += count;
  in_batch_ = true;
  RearmAll();
  uint32_t* until = countdown_.until();
  for (size_t i = 0; i < count; ++i) {
    int site = arrivals[i].site;
    sites_[static_cast<size_t>(site)].run.push_back(arrivals[i].key);
    if (--until[site] == 0) HandleEventArrival(site);
  }
  ResyncAllMidBatch();
  in_batch_ = false;
}

double RandomizedRankTracker::SummaryRankBelow(const StoredSummary& summary,
                                               uint64_t x) {
  uint64_t below = 0;
  uint32_t begin = 0;
  for (const auto& [weight, end] : summary.segments) {
    auto first = summary.values.begin() + begin;
    auto last = summary.values.begin() + end;
    below += weight * static_cast<uint64_t>(std::lower_bound(first, last, x) -
                                            first);
    begin = end;
  }
  return static_cast<double>(below);
}

double RandomizedRankTracker::EstimateRank(uint64_t value) const {
  double est = 0;
  for (const auto& [id, data] : instances_) {
    // Greedy maximal dyadic cover of the completed-leaf prefix.
    uint32_t cursor = 0;
    for (;;) {
      const StoredSummary* best = nullptr;
      for (const StoredSummary& stored : data.summaries) {
        if (stored.first_leaf == cursor &&
            (best == nullptr || stored.end_leaf > best->end_leaf)) {
          best = &stored;
        }
      }
      if (best == nullptr) break;
      est += SummaryRankBelow(*best, value);
      cursor = best->end_leaf;
    }
    // In-progress tail: unbiased sample estimate at this round's p.
    uint64_t below = 0;
    for (const ResidualSample& r : data.residuals) {
      if (r.value < value) ++below;
    }
    est += static_cast<double>(below) * data.inv_p;
  }
  return est;
}

}  // namespace rank
}  // namespace disttrack
