// The randomized rank tracker of §4 (Theorem 4.1).
//
// Per round (n̄ fixed by CoarseTracker):
//  * every site slices its round-local stream into chunks of n̄/k elements,
//    each processed by one instance of algorithm C;
//  * algorithm C splits its chunk into blocks (leaves) of b = εn̄/(c√k)
//    elements and builds a balanced binary tree of height h over them in
//    arrival order; each node v at level ℓ runs one instance of algorithm A
//    (CompactorSummary) at error parameter 2^-ℓ/√h over D(v), shipped to
//    the coordinator the moment v's leaf range completes;
//  * independently every arrival is forwarded with probability
//    p = c√k/(εn̄), tagged with its leaf index (the in-progress tail
//    channel).
//
// The coordinator answers rank(x) per instance by the maximal dyadic cover
// of the completed-leaf prefix (≤ h shipped node summaries, unbiased with
// variance b²/h each) plus (sampled tail count)/p for the in-progress leaf
// (variance ≤ b/p = b²). Per instance the variance is O(b²); with ≤ 4k
// instances per round and geometrically decaying past rounds the total is
// O((εn/c)²), i.e. error ≤ εn with probability ≥ 1 - O(1/c²).
//
// At a round boundary sites simply clear: completed leaves are already
// covered by shipped summaries and the in-progress tail stays covered by
// its frozen samples (scaled by that round's p), so no flush is needed.
//
// Hot path: ArriveBatch buffers each site's values and runs the shared
// EventCountdown engine — between events (leaf/chunk boundaries, coarse
// reports; tail-channel coins are walked through the buffered run in
// place, same draws at the same arrivals) a site's run is sorted once and
// moved into the site's shared run-merge ladder (summaries/run_ladder.h),
// which consolidates runs exactly once. Every tree level owns a ladder
// cursor and pulls borrowed views of the merged sequence when its
// compaction comes due — at dyadic leaf quanta under the batched feed
// (fewer, larger compactions; same martingale argument), at the exact
// staging thresholds under the exact feed (bit-identical to per-level
// staging). Batched compaction is equivalent in distribution, not
// bit-identical, to the per-element feed (see the DESIGN note in
// summaries/compactor_summary.h); the historical paths stay reachable via
// `use_batch_compaction = false` and `use_shared_ladder = false`.

#ifndef DISTTRACK_RANK_RANDOMIZED_RANK_H_
#define DISTTRACK_RANK_RANDOMIZED_RANK_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "disttrack/common/event_countdown.h"
#include "disttrack/common/random.h"
#include "disttrack/common/site_group.h"
#include "disttrack/common/skip_sampler.h"
#include "disttrack/common/status.h"
#include "disttrack/count/coarse_tracker.h"
#include "disttrack/sim/protocol.h"
#include "disttrack/sim/wire.h"
#include "disttrack/summaries/compactor_summary.h"
#include "disttrack/summaries/run_ladder.h"

namespace disttrack {
namespace rank {

/// Options for RandomizedRankTracker.
struct RandomizedRankOptions {
  int num_sites = 8;
  double epsilon = 0.01;
  uint64_t seed = 1;

  /// Constant-factor boost: shrinks the block size and raises p by c,
  /// cutting the variance by c² at ~c× the communication.
  double confidence_factor = 4.0;

  /// When true (default), the per-arrival Bernoulli(p) tail-channel coin is
  /// realized by a geometric SkipSampler per site (redrawn at every round
  /// boundary, where p changes). False selects the historical per-arrival
  /// coin path. Note the rank p is not rounded to a power of two, so the
  /// sampler runs in general-p mode.
  bool use_skip_sampling = true;

  /// When true (default), ArriveBatch feeds each site's eventless runs to
  /// the compactor tree via CompactorSummary::InsertBatch (one call per
  /// level per run) on the event-countdown engine. Equivalent in
  /// distribution to the per-element feed — batched compaction's error
  /// increments are the same mean-zero ±2^level martingale steps, just
  /// fewer of them (DESIGN note in summaries/compactor_summary.h). False
  /// keeps the historical per-element feed for A/B runs.
  bool use_batch_compaction = true;

  /// When true (default), each site consolidates its sorted runs once in
  /// a shared RunLadder and every tree level pulls borrowed views of the
  /// merged sequence at its own compaction cadence, instead of staging
  /// and re-merging its own copy of every run at all h+1 levels. Each
  /// level still compacts the identical element multiset at the identical
  /// fill thresholds with the identical coin sequence, so estimates,
  /// communication, and rounds are bit-identical to the per-level staging
  /// path under BOTH feeds (pinned by tests/batch_equivalence_test.cc);
  /// only the merge work is shared. False keeps the historical per-level
  /// staging for A/B runs.
  bool use_shared_ladder = true;

  /// When true (default), ArriveBatch permutes each chunk into
  /// site-contiguous spans (common/site_group.h) whenever the chunk
  /// provably contains no coarse broadcast, and feeds whole spans per
  /// site — same per-site coin streams, same event boundaries, so the
  /// grouped path is bit-identical to the event-countdown path (pinned
  /// by tests/batch_equivalence_test.cc). Chunks that may broadcast fall
  /// back to the countdown engine. False keeps the countdown engine for
  /// every chunk (A/B benchmarking).
  bool use_site_grouping = true;

  Status Validate() const;
};

/// Randomized ε-approximate rank tracking (Theorem 4.1).
class RandomizedRankTracker : public sim::RankTrackerInterface,
                              private sim::KeyedShardIngest {
 public:
  explicit RandomizedRankTracker(const RandomizedRankOptions& options);

  void Arrive(int site, uint64_t value) override;
  void ArriveBatch(const sim::Arrival* arrivals, size_t count) override;
  double EstimateRank(uint64_t value) const override;
  uint64_t TrueCount() const override { return n_; }
  const sim::CommMeter& meter() const override { return meter_; }
  const sim::SpaceGauge& space() const override { return space_; }

  /// Sharded replay (sim/shard.h). Rank coordinator state is naturally
  /// site-partitioned — every instance of algorithm C belongs to exactly
  /// one site, and shipped summaries / residual samples only ever join
  /// the shipping site's own instances — so site workers write their
  /// instances directly and defer only the coarse reports and the
  /// traffic charges (order-insensitive sums) to the epoch barrier.
  /// Supported on the batched skip-sampling feed, whose run-at-a-time
  /// processing the per-site driver reuses; the per-element historical
  /// paths fall back to serial replay.
  sim::KeyedShardIngest* shard_ingest() override {
    return options_.use_skip_sampling && options_.use_batch_compaction
               ? this
               : nullptr;
  }

  /// Element-forwarding probability p of the current round.
  double p() const { return 1.0 / inv_p_; }

  uint64_t rounds() const { return coarse_->round(); }

  /// Tree height of algorithm C in the current round.
  int height() const { return height_; }

  /// Leaf block size b of the current round.
  uint64_t block_size() const { return block_size_; }

  // --- Wire layer / crash recovery (sim/robust_cluster.h) ----------------
  // Mirrors the count tracker's API: a tap emits every metered message
  // (coarse reports, node-summary exports, tail-channel residual
  // forwards, broadcasts) as a typed wire::Message; site snapshots
  // capture the round parameters and the RNG/skip streams; the
  // ReplayCrash* calls re-run lost arrivals with every coordinator-side
  // effect (meter, instance storage) suppressed while frames are
  // re-emitted with identical payloads.

  void set_wire_tap(sim::wire::WireTap* tap);

  /// Rank snapshots are only consistent at chunk boundaries, where the
  /// site holds no partially built tree (nodes and ladder empty, leaf
  /// seed unarmed) and its whole private state is the round parameters
  /// plus the coarse counters and the RNG/skip streams. The robust
  /// driver polls until this returns true.
  bool SiteSnapshotReady(int site) const;

  void SerializeSiteState(int site, std::vector<uint64_t>* out) const;
  void RestoreSiteState(int site, const std::vector<uint64_t>& blob);

  void BeginCrashReplay(int site);
  void EndCrashReplay();

  /// Re-delivers one lost arrival. `mid_ritual_n_bar` non-null iff the
  /// arrival's coarse report triggered a broadcast in the original run.
  void ReplayCrashArrive(int site, uint64_t value,
                         const uint64_t* mid_ritual_n_bar);

  /// Per-site half of a round transition another site triggered.
  void ReplayCrashRitual(int site, uint64_t n_bar);

  /// Detached-site mode (service/): the tracker lives in a site process
  /// and runs in crash replay permanently — the coordinator's instance
  /// storage is a remote replica, so there is no pre-crash instance
  /// journal for the replay cursor to walk. Instance transitions then
  /// reuse one scratch InstanceData (replay mode never stores summaries
  /// or residuals into it) instead of cursor-advancing. Set before
  /// BeginCrashReplay.
  void set_detached_replay(bool detached) { detached_replay_ = detached; }

 private:
  // A node summary shipped to the coordinator: the compactor's levels as
  // one flat value array partitioned into ascending segments by
  // (weight, end offset) descriptors — one binary search per segment
  // answers a rank query, and building it is a straight copy of the
  // summary's already-sorted levels (no merge or comparison sort, two
  // allocations total).
  struct StoredSummary {
    uint32_t first_leaf = 0;
    uint32_t end_leaf = 0;
    std::vector<uint64_t> values;
    std::vector<std::pair<uint64_t, uint32_t>> segments;
  };

  struct ResidualSample {
    uint32_t leaf;
    uint64_t value;
  };

  // One leaf summary stored in the instance's shared arena (below): a
  // slice of leaf_values / leaf_segments instead of an owned
  // StoredSummary. Refs land in leaf order, so the estimator's dyadic
  // cover advances through them monotonically.
  struct LeafRef {
    uint32_t first_leaf;
    uint32_t end_leaf;
    uint32_t values_begin;
    uint32_t seg_begin;
    uint32_t seg_end;
  };

  // Everything the coordinator holds for one instance of algorithm C.
  struct InstanceData {
    std::vector<StoredSummary> summaries;
    std::vector<ResidualSample> residuals;
    // Residuals land in leaf order, so pruning completed leaves is just
    // advancing this offset — the estimator reads [residual_begin, end).
    size_t residual_begin = 0;
    double inv_p = 1.0;  // 1/p of the instance's round
    // Leaf-summary arena (node-less flush, no tap/replay): every level-0
    // summary of the instance appends to these two flat vectors —
    // segment ends are absolute offsets into leaf_values — and is
    // addressed by a LeafRef. One leaf flush then costs two amortized
    // appends instead of two per-summary vector allocations, and the
    // chunk-end prune of all covered leaves is three O(1) clears.
    std::vector<uint64_t> leaf_values;
    std::vector<std::pair<uint64_t, uint32_t>> leaf_segments;
    std::vector<LeafRef> leaf_refs;
  };


  struct SiteState {
    InstanceData* idata = nullptr;  // cached &owned_instances.back()
    // Coordinator-side storage for every instance of algorithm C this
    // site has started, in chunk order (a deque: stable addresses for
    // idata). Written only by the owning site — during shard ingest the
    // site's worker appends summaries/residuals directly — and read by
    // the estimator between epochs. Site-major iteration keeps the
    // estimate's summation order deterministic and schedule-independent
    // (the old global unordered_map iterated in hash order).
    std::deque<InstanceData> owned_instances;
    uint64_t arrivals_in_chunk = 0;
    uint64_t arrivals_in_leaf = 0;
    uint32_t current_leaf = 0;
    // nodes[l] is the active level-l node's summary (lazily created).
    std::vector<std::unique_ptr<summaries::CompactorSummary>> nodes;
    // pool[l]: retired level-l summaries awaiting reuse. Tree nodes are
    // short-lived (one per dyadic range per chunk), so recycling their
    // buffer allocations takes node turnover off the hot path; pools are
    // dropped whenever the round's tree height (and with it LevelEps)
    // changes.
    std::vector<std::vector<std::unique_ptr<summaries::CompactorSummary>>>
        pool;
    SkipSampler tail_skip;  // gap to the next tail-channel forward
    Rng rng{0};
    std::vector<summaries::RunView> view_scratch;  // ladder pull scratch
    std::vector<StoredSummary> stored_pool;        // recycled buffers
    // Batch-engine run buffer: values delivered to this site since its
    // last event/reconciliation, in arrival order (delivery-engine state,
    // not protocol state — the values are the stream itself).
    std::vector<uint64_t> run;
    // Shared run-merge ladder (use_shared_ladder): the site's sorted runs
    // consolidated once, with one pull cursor per tree level. Reset with
    // the instance.
    summaries::RunLadder ladder;
    // True while every level's node exists (EnsureNodes fast-exit);
    // cleared whenever a node is flushed, dropped, or the instance
    // restarts.
    bool nodes_ready = false;
    // Node-less leaf flush (batched feed + shared ladder): level 0 keeps
    // no CompactorSummary at all — EnsureNodes draws the seed the node
    // creation used to draw, at the same site-RNG position, and the
    // flush cascades the leaf window straight from the ladder to the
    // wire (summaries::CompactSortedViewsToWire) with those coins.
    uint64_t leaf_seed = 0;
    bool leaf_seed_armed = false;
    // Multi-view merge scratch pair for CompactSortedViewsToWire.
    std::vector<uint64_t> leaf_scratch;
    std::vector<uint64_t> leaf_scratch2;
    // Lower bound on the appends until some level's next pull threshold;
    // PumpLevels skips its level scan while the bound stays positive.
    uint64_t pull_slack = 0;
  };

  void OnBroadcast(uint64_t round, uint64_t n_bar);
  void ArriveOne(int site, uint64_t value);
  // Everything ArriveOne does except ++n_ (the batch engine advances n_
  // up front): coarse arrival, tree feed, tail coin, leaf bookkeeping.
  void ProcessArrival(int site, uint64_t value);

  // Batched fast path on the shared EventCountdown engine; see
  // common/event_countdown.h for the reconciliation contract.
  // Arrivals at `site` until its next event (leaf/chunk completion or
  // coarse report), clamped to the countdown's 32-bit stride — the
  // single source of truth for the countdown engine and the shard run
  // loop, so their run boundaries (and with them the site's RNG
  // consumption) cannot drift apart.
  uint64_t NextEventGap(int site) const;
  void RearmSite(int site);
  void RearmAll();
  // Feeds the `count` buffered eventless values in `run` (== the whole
  // buffer; sorted in place, and moved into the ladder when it is on —
  // callers get back a recycled buffer either way).
  void FeedRun(int site, std::vector<uint64_t>* run, uint64_t count);
  void HandleEventArrival(int site);
  // Feeds every site's buffered eventless run into the tree. Called when
  // a mid-batch broadcast is about to restart the instances and at batch
  // end — the two points where the per-element execution would also have
  // everything reconciled.
  void FlushBufferedRuns();
  // One chunk through the event-countdown engine (buffered runs carry
  // across chunk boundaries; the final flush happens at batch end).
  void CountdownChunk(const sim::Arrival* arrivals, size_t count);
  // One site's span of a broadcast-free grouped chunk: buffers eventless
  // arrivals into the site's run (deferring the feed to the next event or
  // the batch end, exactly like the countdown engine) and processes event
  // arrivals through the scalar path.
  void GroupedSpan(int site, const uint64_t* keys, size_t count);
  std::unique_ptr<summaries::CompactorSummary> AcquireNode(SiteState* s,
                                                           int level);
  // Shared-ladder plumbing. EnsureNodes creates any missing level node in
  // level order (same seed-draw order as the staging path's lazy
  // creation); PumpLevels pulls every level whose fill reached its
  // compaction threshold; FlushNode drains a completing node's remaining
  // window itself (fused with the export).
  void EnsureNodes(SiteState* s);
  void PumpLevels(SiteState* s, uint64_t appended);
  // StoredSummary buffer pool (per site): flushes run at leaf cadence,
  // so recycling the vectors the chunk-end prune discards keeps
  // allocation off the flush path.
  StoredSummary TakeStored(SiteState* s);
  void RecycleStored(SiteState* s, StoredSummary&& stored);
  void RecomputeRoundParams(uint64_t n_bar);
  void StartFreshInstance(SiteState* s);
  void FlushNode(int site, SiteState* s, int level, uint32_t node_start,
                 uint32_t end_leaf);
  double LevelEps(int level) const;
  void UpdateSpace(int site);
  void EmitSummaryFrame(int site, const StoredSummary& stored,
                        uint64_t words);
  void EmitResidualFrame(int site, uint32_t leaf, uint64_t value);
  static double SummaryRankBelow(const StoredSummary& summary, uint64_t x);
  // SummaryRankBelow over an arena-resident leaf summary.
  static double LeafRankBelow(const InstanceData& data, const LeafRef& ref,
                              uint64_t x);
  // Posts the batch's deferred per-site upload charges in one
  // RecordUploadBulk per site (see pending_uploads_).
  void FlushDeferredUploads();

  // --- Sharded replay (sim::KeyedShardIngest) ----------------------------
  void ShardEpochBegin(uint64_t arrivals_in_epoch) override;
  void ShardArriveRun(int site, const uint64_t* keys,
                      const uint32_t* global_index, size_t count) override;
  void ShardEpochEnd() override;
  // All deferred coordinator effects are order-insensitive sums; the
  // driver need not materialize global indices.
  bool wants_global_indices() const override { return false; }
  // Online ingest support (sim::OnlineKeyedSession certifies rolling
  // epochs against this tracker's broadcast state).
  count::CoarseTracker* shard_coarse() override { return coarse_.get(); }
  // Site->coordinator upload: charged to the meter directly on the serial
  // paths, accumulated in the site's sink during shard ingest.
  void Upload(int site, uint64_t words);
  // One coarse arrival: the serial paths go through CoarseTracker::Arrive
  // (which may broadcast); shard ingest advances site-locally and defers
  // the report delta (the epoch schedule keeps broadcasts on boundaries).
  void CoarseArriveOne(int site);

  struct ShardSink {
    std::vector<uint64_t> coarse_deltas;
    uint64_t messages = 0;  // deferred uploads
    uint64_t words = 0;     // with max(1, payload) applied per message
  };

  RandomizedRankOptions options_;
  sim::CommMeter meter_;
  sim::SpaceGauge space_;
  std::unique_ptr<count::CoarseTracker> coarse_;
  std::vector<SiteState> sites_;
  std::vector<ShardSink> shard_sinks_;
  bool shard_mode_ = false;
  sim::wire::WireTap* tap_ = nullptr;

  // Batched upload amortization: while a plain ArriveBatch runs (no tap,
  // no replay, no shard epoch — the modes with their own per-message or
  // per-epoch accounting), Upload() accumulates (messages, charged
  // words) per site here and the batch end posts one RecordUploadBulk
  // per site. Meter totals at every public observation point (queries
  // only happen between batches) are identical to per-message charging.
  struct PendingUpload {
    uint64_t messages = 0;
    uint64_t words = 0;  // with max(1, payload) applied per message
  };
  bool defer_uploads_ = false;
  std::vector<PendingUpload> pending_uploads_;

  // Crash-replay bookkeeping (see BeginCrashReplay). The cursor walks
  // the crashed site's pre-existing owned_instances as the replay
  // re-creates them — replayed StartFreshInstance calls advance it
  // instead of appending, so the coordinator-side instance storage is
  // never duplicated.
  bool crash_replay_ = false;
  bool detached_replay_ = false;
  int replay_site_ = -1;
  size_t replay_cursor_ = 0;
  const uint64_t* replay_mid_n_bar_ = nullptr;
  uint64_t replay_saved_inv_p_bits_ = 0;
  uint64_t replay_saved_chunk_size_ = 0;
  uint64_t replay_saved_block_size_ = 0;
  uint32_t replay_saved_num_leaves_ = 0;
  int replay_saved_height_ = 0;

  // Round parameters.
  double inv_p_ = 1.0;
  uint64_t chunk_size_ = 1;
  uint64_t block_size_ = 1;
  uint32_t num_leaves_ = 1;
  int height_ = 0;

  uint64_t n_ = 0;

  EventCountdown countdown_;
  bool in_batch_ = false;
  // Site-grouped delivery (use_site_grouping): pooled permutation scratch
  // plus a guard that turns a broadcast inside a supposedly
  // broadcast-free grouped chunk into a loud abort instead of a silent
  // equivalence break.
  SiteGrouper grouper_;
  bool grouped_chunk_active_ = false;
  // Per-site buffered-run sizes handed to the broadcast-safety check
  // (scratch, refilled per chunk).
  std::vector<uint64_t> run_carry_;
};

}  // namespace rank
}  // namespace disttrack

#endif  // DISTTRACK_RANK_RANDOMIZED_RANK_H_
