#include "disttrack/sampling/distributed_sampler.h"

#include <algorithm>
#include <cmath>

namespace disttrack {
namespace sampling {

Status DistributedSamplerOptions::Validate() const {
  if (num_sites < 1) {
    return Status::InvalidArgument("num_sites must be >= 1");
  }
  if (!(epsilon > 0.0) || epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  if (!(sample_boost >= 1.0)) {
    return Status::InvalidArgument("sample_boost must be >= 1");
  }
  return Status::OK();
}

DistributedSampler::DistributedSampler(
    const DistributedSamplerOptions& options)
    : options_(options),
      meter_(options.num_sites),
      space_(options.num_sites),
      capacity_(static_cast<size_t>(
          std::ceil(options.sample_boost / (options.epsilon * options.epsilon)))) {
  site_rng_.reserve(static_cast<size_t>(options_.num_sites));
  for (int i = 0; i < options_.num_sites; ++i) {
    site_rng_.emplace_back(options_.seed * 0xD1B54A32D192ED03ull +
                           static_cast<uint64_t>(i));
    // A site stores only the current level j (plus its PRNG).
    space_.Set(i, 2);
  }
}

void DistributedSampler::Arrive(int site, uint64_t value) {
  sim::CheckSiteInRange(site, static_cast<int>(site_rng_.size()));
  ++n_;
  int elem_level = site_rng_[static_cast<size_t>(site)].GeometricLevel();
  if (elem_level < level_) return;  // filtered at the site, no traffic

  // Site -> coordinator: the element value and its level.
  meter_.RecordUpload(site, 2);
  sample_.push_back(Element{value, elem_level});

  // Coordinator: advance the level while the sample overflows; each
  // advance halves the sample in expectation and is broadcast so sites can
  // tighten their send filter.
  while (sample_.size() > 2 * capacity_) {
    ++level_;
    auto keep_end = std::remove_if(
        sample_.begin(), sample_.end(),
        [this](const Element& e) { return e.level < level_; });
    sample_.erase(keep_end, sample_.end());
    meter_.RecordBroadcast(1);
  }
}

double DistributedSampler::EstimateCount() const {
  return static_cast<double>(sample_.size()) *
         std::pow(2.0, static_cast<double>(level_));
}

double DistributedSampler::EstimateFrequency(uint64_t item) const {
  uint64_t hits = 0;
  for (const Element& e : sample_) {
    if (e.value == item) ++hits;
  }
  return static_cast<double>(hits) * std::pow(2.0, level_);
}

double DistributedSampler::EstimateRank(uint64_t x) const {
  uint64_t below = 0;
  for (const Element& e : sample_) {
    if (e.value < x) ++below;
  }
  return static_cast<double>(below) * std::pow(2.0, level_);
}

}  // namespace sampling
}  // namespace disttrack
