// Continuous distributed sampling (Cormode–Muthukrishnan–Yi–Zhang [9]) —
// Table 1's "sampling" row and the paper's standing comparator (§1.2).
//
// Binary Bernoulli level sampling: each arriving element independently
// draws a level ~ Geometric(1/2); a site forwards the element iff its level
// reaches the current global level j, so the coordinator holds a
// Bernoulli(2^-j) sample of the union stream. When the sample outgrows its
// capacity the coordinator advances j, subsamples in place, and broadcasts
// the new level. With capacity Θ(1/ε²) every count/frequency/rank query is
// answered within ±εn with constant probability, using O(1/ε² · logN)
// total communication and O(1) words per site.

#ifndef DISTTRACK_SAMPLING_DISTRIBUTED_SAMPLER_H_
#define DISTTRACK_SAMPLING_DISTRIBUTED_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "disttrack/common/random.h"
#include "disttrack/common/status.h"
#include "disttrack/sim/protocol.h"

namespace disttrack {
namespace sampling {

/// Options for DistributedSampler.
struct DistributedSamplerOptions {
  int num_sites = 8;
  double epsilon = 0.01;
  uint64_t seed = 1;

  /// Sample capacity multiplier: target sample size is
  /// ceil(sample_boost / epsilon²); 4 gives std-dev ≤ εn/2 per query.
  double sample_boost = 4.0;

  Status Validate() const;
};

/// The [9] protocol; answers all three query types from one sample.
class DistributedSampler {
 public:
  explicit DistributedSampler(const DistributedSamplerOptions& options);

  /// One element with payload `value` (item id or orderable value) arrives
  /// at `site`.
  void Arrive(int site, uint64_t value);

  /// Unbiased estimate of n.
  double EstimateCount() const;

  /// Unbiased estimate of the frequency of `item`.
  double EstimateFrequency(uint64_t item) const;

  /// Unbiased estimate of |{y : y < x}|.
  double EstimateRank(uint64_t x) const;

  uint64_t TrueCount() const { return n_; }
  const sim::CommMeter& meter() const { return meter_; }
  const sim::SpaceGauge& space() const { return space_; }

  /// Current global sampling level j (inclusion probability 2^-j).
  int level() const { return level_; }

  /// Current coordinator-side sample size.
  size_t SampleSize() const { return sample_.size(); }

  /// Target capacity (the sample is subsampled when it exceeds 2x this).
  size_t capacity() const { return capacity_; }

 private:
  struct Element {
    uint64_t value;
    int level;
  };

  DistributedSamplerOptions options_;
  sim::CommMeter meter_;
  sim::SpaceGauge space_;
  std::vector<Rng> site_rng_;
  std::vector<Element> sample_;
  size_t capacity_;
  int level_ = 0;
  uint64_t n_ = 0;
};

/// Adapter: DistributedSampler as a CountTrackerInterface.
class SamplingCountTracker : public sim::CountTrackerInterface {
 public:
  explicit SamplingCountTracker(const DistributedSamplerOptions& options)
      : sampler_(options) {}
  void Arrive(int site) override { sampler_.Arrive(site, 0); }
  double EstimateCount() const override { return sampler_.EstimateCount(); }
  uint64_t TrueCount() const override { return sampler_.TrueCount(); }
  const sim::CommMeter& meter() const override { return sampler_.meter(); }
  const sim::SpaceGauge& space() const override { return sampler_.space(); }

 private:
  DistributedSampler sampler_;
};

/// Adapter: DistributedSampler as a FrequencyTrackerInterface.
class SamplingFrequencyTracker : public sim::FrequencyTrackerInterface {
 public:
  explicit SamplingFrequencyTracker(const DistributedSamplerOptions& options)
      : sampler_(options) {}
  void Arrive(int site, uint64_t item) override {
    sampler_.Arrive(site, item);
  }
  double EstimateFrequency(uint64_t item) const override {
    return sampler_.EstimateFrequency(item);
  }
  uint64_t TrueCount() const override { return sampler_.TrueCount(); }
  const sim::CommMeter& meter() const override { return sampler_.meter(); }
  const sim::SpaceGauge& space() const override { return sampler_.space(); }

 private:
  DistributedSampler sampler_;
};

/// Adapter: DistributedSampler as a RankTrackerInterface.
class SamplingRankTracker : public sim::RankTrackerInterface {
 public:
  explicit SamplingRankTracker(const DistributedSamplerOptions& options)
      : sampler_(options) {}
  void Arrive(int site, uint64_t value) override {
    sampler_.Arrive(site, value);
  }
  double EstimateRank(uint64_t value) const override {
    return sampler_.EstimateRank(value);
  }
  uint64_t TrueCount() const override { return sampler_.TrueCount(); }
  const sim::CommMeter& meter() const override { return sampler_.meter(); }
  const sim::SpaceGauge& space() const override { return sampler_.space(); }

 private:
  DistributedSampler sampler_;
};

}  // namespace sampling
}  // namespace disttrack

#endif  // DISTTRACK_SAMPLING_DISTRIBUTED_SAMPLER_H_
