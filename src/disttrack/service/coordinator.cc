#include "disttrack/service/coordinator.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

namespace disttrack {
namespace service {

namespace {

using sim::wire::Message;
using sim::wire::MsgType;

/// Stop reading a connection whose unsent output exceeds this.
constexpr size_t kBackpressureBytes = 4u << 20;

uint64_t Bits(double d) {
  uint64_t bits = 0;
  memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

Coordinator::Coordinator(const ServiceOptions& options)
    : options_(options),
      options_hash_(options.Hash()),
      sessions_(static_cast<size_t>(options.num_sites)) {
  switch (options_.tracker) {
    case TrackerKind::kCount:
      count_replica_ =
          std::make_unique<sim::CountReplica>(options_.CountOptions());
      break;
    case TrackerKind::kFrequency:
      frequency_replica_ = std::make_unique<sim::FrequencyReplica>(
          options_.FrequencyOptions());
      break;
    case TrackerKind::kRank:
      rank_replica_ =
          std::make_unique<sim::RankReplica>(options_.RankOptions());
      break;
  }
}

Coordinator::~Coordinator() {
  for (int fd : listeners_) close(fd);
  for (auto& conn : conns_) {
    if (!conn->closed) close(conn->fd);
  }
}

bool Coordinator::AddListener(const Endpoint& endpoint, std::string* error) {
  int fd = Listen(endpoint, error);
  if (fd < 0) return false;
  SetNonBlocking(fd, true);
  listeners_.push_back(fd);
  return true;
}

void Coordinator::AdoptConnection(int fd) {
  SetNonBlocking(fd, true);
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conns_.push_back(std::move(conn));
}

uint64_t Coordinator::site_position(int site) const {
  return sessions_[static_cast<size_t>(site)].position;
}

bool Coordinator::AllSitesDone() const {
  for (const Session& s : sessions_) {
    if (!s.done) return false;
  }
  return true;
}

bool Coordinator::ShutdownComplete() const {
  if (!shutting_down_) return false;
  for (const Session& s : sessions_) {
    if (s.conn != nullptr) return false;
  }
  return true;
}

uint64_t Coordinator::PendingOutBytes() const {
  uint64_t total = 0;
  for (const auto& conn : conns_) {
    if (!conn->closed) total += conn->pending();
  }
  return total;
}

// --- Output path ----------------------------------------------------------

void Coordinator::AppendOut(Conn* conn, const std::vector<uint8_t>& bytes) {
  conn->out.insert(conn->out.end(), bytes.begin(), bytes.end());
  stats_.frames_out += 1;
  stats_.encoded_out += bytes.size();
}

void Coordinator::AppendUnseq(Conn* conn, const Message& msg) {
  std::vector<uint8_t> frame;
  sim::wire::EncodeFrame(msg, 0, &frame);
  AppendOut(conn, frame);
}

void Coordinator::StageDown(int site, Message msg) {
  Session& s = sessions_[static_cast<size_t>(site)];
  s.down_journal.push_back(msg);
  std::vector<uint8_t> frame;
  s.down.Stage(msg, 0, &frame);
  if (s.conn != nullptr) AppendOut(s.conn, frame);
  // Disconnected: the journal keeps the frame; FinishJoin re-stages the
  // suffix past the site's watermark when it comes back.
}

void Coordinator::TryWrite(Conn* conn) {
  while (conn->pending() > 0) {
    ssize_t n = write(conn->fd, conn->out.data() + conn->out_off,
                      conn->pending());
    if (n > 0) {
      stats_.bytes_out += static_cast<uint64_t>(n);
      conn->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    CloseConn(conn);
    return;
  }
  conn->out.clear();
  conn->out_off = 0;
  if (conn->close_after_drain) CloseConn(conn);
}

void Coordinator::CloseConn(Conn* conn) {
  if (conn->closed) return;
  close(conn->fd);
  conn->closed = true;
  if (conn->site >= 0) {
    Session& s = sessions_[static_cast<size_t>(conn->site)];
    if (s.conn == conn) {
      s.conn = nullptr;
      // TCP delivered in order, so nothing can be parked in the reorder
      // buffer; clear it anyway so a replayed prefix starts clean.
      s.up.Reset(s.up.watermark());
    }
  }
}

// --- Session establishment ------------------------------------------------

void Coordinator::FinishJoin(Conn* conn, const Message& join,
                             const Message& hello) {
  uint64_t status = 0;
  int site = join.site;
  Session* s = nullptr;
  if (site < 0 || site >= options_.num_sites) {
    status = 2;  // site id out of range
  } else {
    s = &sessions_[static_cast<size_t>(site)];
    if (join.b != options_hash_) {
      status = 1;  // fleet options mismatch
    } else if (s->conn != nullptr) {
      status = 3;  // duplicate live connection for this site
    } else if (hello.b > s->down_journal.size()) {
      status = 4;  // watermark from the future: corrupt snapshot
    }
    // A fresh (non-resume) join for a site the coordinator has already
    // counted frames from is fine: deterministic replay from position 0
    // regenerates the identical frames at the identical sequence numbers,
    // and the dedup watermark swallows every one the coordinator already
    // applied — a snapshot only shortens the replay, it isn't needed for
    // correctness (docs/OPERATIONS.md, recovery matrix).
  }

  uint64_t resend_count =
      (status == 0 && s != nullptr) ? s->down_journal.size() - hello.b : 0;
  Message ack;
  ack.type = MsgType::kJoinAck;
  ack.site = site;
  ack.a = status;
  ack.b = (s != nullptr) ? s->up.watermark() : 0;
  ack.c = resend_count;
  AppendUnseq(conn, ack);
  if (status != 0) {
    conn->close_after_drain = true;
    TryWrite(conn);
    return;
  }

  conn->site = site;
  s->conn = conn;
  if (s->ever_joined) stats_.rejoins += 1;
  s->ever_joined = true;

  // Catch-up re-blast: every journaled downlink frame the site has not
  // applied, re-staged in order at its original sequence number. This
  // necessarily includes every grant and broadcast decision the resumed
  // replay will block on — decisions are emitted after the reports that
  // trigger them, so their seqs all exceed the snapshot's watermark.
  s->down.Reset(hello.b + 1);
  for (size_t j = hello.b; j < s->down_journal.size(); ++j) {
    std::vector<uint8_t> frame;
    s->down.Stage(s->down_journal[j], 0, &frame);
    stats_.resend_frames += 1;
    stats_.resend_bytes += frame.size();
    AppendOut(conn, frame);
  }
  TryWrite(conn);
}

// --- Scheduler ------------------------------------------------------------

void Coordinator::Grant(int site, uint64_t want) {
  order_journal_.push_back(GrantEntry{site, want});
  Message grant;
  grant.type = MsgType::kGrant;
  grant.site = site;
  grant.a = want;
  grant.b = ++grant_ordinal_;
  StageDown(site, grant);
}

void Coordinator::TrySchedule() {
  if (options_.mode == RunMode::kFreerun) return;  // granted at request
  // Lockstep: one grant in flight fleet-wide. If the grantee's connection
  // died mid-run, the floor stays held until it resumes and finishes at
  // its original journal position (consistency over availability).
  while (active_site_ == -1 && !want_queue_.empty()) {
    GrantEntry next = want_queue_.front();
    want_queue_.pop_front();
    active_site_ = next.site;
    Grant(next.site, next.length);
  }
}

// --- Delivered uplink frames ----------------------------------------------

void Coordinator::DecideCoarse(int site, const Message& report,
                               uint64_t up_seq) {
  stats_.decisions += 1;
  if (decider_.ApplyReport(report.a)) {
    Message broadcast;
    broadcast.type = MsgType::kBroadcast;
    broadcast.site = -1;
    broadcast.epoch = decider_.round;
    broadcast.a = decider_.round;
    broadcast.b = decider_.n_bar;
    broadcast.paper_words = 1;
    stats_.broadcasts += 1;
    stats_.paper_messages += static_cast<uint64_t>(options_.num_sites);
    stats_.paper_words +=
        sim::wire::PaperWordCharge(broadcast, options_.num_sites);
    for (int target = 0; target < options_.num_sites; ++target) {
      Message copy = broadcast;
      copy.c = (target == site) ? up_seq : 0;
      StageDown(target, copy);
    }
  } else {
    Message quiet;
    quiet.type = MsgType::kNoBroadcast;
    quiet.site = site;
    quiet.a = up_seq;
    StageDown(site, quiet);
  }
}

void Coordinator::ApplyDelivered(int site, Message msg, uint64_t up_seq) {
  uint64_t charge = sim::wire::PaperWordCharge(msg, options_.num_sites);
  if (charge > 0) {
    // A delivered data-plane frame is exactly one §1.1 upload; replays
    // of journaled frames never reach here (sequence dedup).
    stats_.paper_messages += 1;
    stats_.paper_words += charge;
  }
  if (count_replica_) count_replica_->Apply(msg);
  if (frequency_replica_) frequency_replica_->Apply(msg);
  if (rank_replica_) rank_replica_->Apply(msg);

  Session& s = sessions_[static_cast<size_t>(site)];
  switch (msg.type) {
    case MsgType::kCoarseReport:
      DecideCoarse(site, msg, up_seq);
      break;
    case MsgType::kGrantRequest:
      if (msg.a == 0) {
        s.done = true;
      } else if (options_.mode == RunMode::kFreerun) {
        Grant(site, msg.a);
      } else {
        want_queue_.push_back(GrantEntry{site, msg.a});
        TrySchedule();
      }
      break;
    case MsgType::kGrantDone:
      s.position = msg.a;
      if (active_site_ == site) {
        active_site_ = -1;
        TrySchedule();
      }
      break;
    case MsgType::kRitualAck:
      stats_.rituals_acked += 1;
      break;
    default:
      break;  // estimator frames: replica apply above was the whole job
  }
}

void Coordinator::HandleSiteFrame(Conn* conn, Message msg, uint64_t seq) {
  Session& s = sessions_[static_cast<size_t>(conn->site)];
  if (msg.type == MsgType::kAck) {
    s.down.Ack(msg.a);
    return;
  }
  if (msg.type == MsgType::kJoin || msg.type == MsgType::kHello) return;
  uint64_t before = s.up.watermark();
  std::vector<Message> delivered;
  s.up.Accept(seq, std::move(msg), &delivered);
  for (size_t i = 0; i < delivered.size(); ++i) {
    ApplyDelivered(conn->site, std::move(delivered[i]), before + 1 + i);
  }
}

// --- Queries --------------------------------------------------------------

sim::wire::Message Coordinator::Query(const Message& query) const {
  Message result;
  result.type = MsgType::kQueryResult;
  result.site = -1;
  result.a = query.a;
  result.b = query.b;
  uint64_t n_prime = decider_.n_prime;
  switch (query.a) {
    case kQueryCount: {
      double est = 0;
      if (count_replica_) est = count_replica_->Estimate(0);
      result.values = {Bits(est), n_prime, decider_.round};
      break;
    }
    case kQueryPoint:
      if (frequency_replica_) {
        result.values = {Bits(frequency_replica_->Estimate(query.b))};
      }
      break;
    case kQueryHeavyHitters:
      if (frequency_replica_) {
        double phi = 0;
        uint64_t bits = query.b;
        memcpy(&phi, &bits, sizeof(phi));
        double threshold = phi * static_cast<double>(n_prime);
        for (const auto& [item, est] : frequency_replica_->ItemEstimates()) {
          if (est >= threshold) {
            result.values.push_back(item);
            result.values.push_back(Bits(est));
          }
        }
      }
      break;
    case kQueryRank:
      if (rank_replica_) {
        result.values = {Bits(rank_replica_->Estimate(query.b))};
      }
      break;
    case kQueryQuantile:
      if (rank_replica_) {
        double phi = 0;
        uint64_t bits = query.b;
        memcpy(&phi, &bits, sizeof(phi));
        double target = phi * static_cast<double>(n_prime);
        uint64_t lo = 0, hi = options_.universe;
        while (lo < hi) {
          uint64_t mid = lo + (hi - lo) / 2;
          if (rank_replica_->Estimate(mid) < target) lo = mid + 1;
          else hi = mid;
        }
        result.values = {lo, Bits(rank_replica_->Estimate(lo))};
      }
      break;
    case kQueryStats: {
      uint64_t sites_done = 0, dup_frames = 0;
      for (const Session& s : sessions_) {
        if (s.done) ++sites_done;
        dup_frames += s.up.duplicates();
      }
      uint64_t pending_out = PendingOutBytes();
      uint64_t ledger_ok =
          (stats_.bytes_in == stats_.encoded_in &&
           stats_.bytes_out + pending_out == stats_.encoded_out)
              ? 1
              : 0;
      result.values = {sites_done,
                       static_cast<uint64_t>(options_.num_sites),
                       stats_.frames_in,
                       stats_.frames_out,
                       stats_.bytes_in,
                       stats_.bytes_out,
                       stats_.encoded_in,
                       stats_.encoded_out,
                       pending_out,
                       stats_.resend_frames,
                       stats_.resend_bytes,
                       dup_frames,
                       stats_.paper_messages,
                       stats_.paper_words,
                       stats_.broadcasts,
                       stats_.rejoins,
                       stats_.decisions,
                       ledger_ok};
      break;
    }
    case kQueryJournal:
      for (const GrantEntry& entry : order_journal_) {
        result.values.push_back(static_cast<uint64_t>(entry.site));
        result.values.push_back(entry.length);
      }
      break;
    default:
      break;  // unknown kind: empty result, c = 0
  }
  result.c = result.values.size();
  return result;
}

void Coordinator::AnswerQuery(Conn* conn, const Message& query) {
  AppendUnseq(conn, Query(query));
  TryWrite(conn);
}

void Coordinator::BeginShutdown() {
  if (shutting_down_) return;
  shutting_down_ = true;
  for (int site = 0; site < options_.num_sites; ++site) {
    Message bye;
    bye.type = MsgType::kShutdown;
    bye.site = site;
    bye.a = 0;
    StageDown(site, bye);
  }
}

// --- Frame dispatch -------------------------------------------------------

void Coordinator::HandleFrame(Conn* conn, Message msg, uint64_t seq) {
  ++handled_in_round_;
  stats_.frames_in += 1;
  stats_.encoded_in += sim::wire::EncodedSize(msg);

  if (conn->site >= 0) {
    HandleSiteFrame(conn, std::move(msg), seq);
    return;
  }
  // Unidentified connection: the first frame decides what it is.
  switch (msg.type) {
    case MsgType::kJoin:
      conn->join = msg;
      conn->has_join = true;
      break;
    case MsgType::kHello:
      if (conn->has_join) FinishJoin(conn, conn->join, msg);
      break;
    case MsgType::kQuery:
      conn->is_client = true;
      AnswerQuery(conn, msg);
      break;
    case MsgType::kShutdown:
      conn->is_client = true;
      BeginShutdown();
      break;
    case MsgType::kAck:
      break;
    default:
      CloseConn(conn);
      break;
  }
}

// --- Event loop -----------------------------------------------------------

int Coordinator::PollOnce(int timeout_ms) {
  handled_in_round_ = 0;

  std::vector<pollfd> fds;
  fds.reserve(listeners_.size() + conns_.size());
  for (int fd : listeners_) fds.push_back(pollfd{fd, POLLIN, 0});
  std::vector<Conn*> polled;
  for (auto& conn : conns_) {
    if (conn->closed) continue;
    short events = 0;
    if (conn->pending() < kBackpressureBytes) events |= POLLIN;
    if (conn->pending() > 0) events |= POLLOUT;
    fds.push_back(pollfd{conn->fd, events, 0});
    polled.push_back(conn.get());
  }

  int ready = poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0 && errno != EINTR) return -1;

  for (size_t i = 0; i < listeners_.size(); ++i) {
    if ((fds[i].revents & POLLIN) == 0) continue;
    for (;;) {
      int fd = accept(listeners_[i], nullptr, nullptr);
      if (fd < 0) break;
      AdoptConnection(fd);
    }
  }

  uint8_t buf[65536];
  for (size_t i = 0; i < polled.size(); ++i) {
    Conn* conn = polled[i];
    short revents = fds[listeners_.size() + i].revents;
    if (conn->closed || revents == 0) continue;
    if (revents & (POLLOUT | POLLERR | POLLHUP)) TryWrite(conn);
    if (conn->closed || (revents & POLLIN) == 0) continue;

    bool eof = false;
    for (;;) {
      long n = ReadSome(conn->fd, buf, sizeof(buf));
      if (n == -2) break;  // drained
      if (n <= 0) {
        eof = true;
        break;
      }
      stats_.bytes_in += static_cast<uint64_t>(n);
      conn->reader.Append(buf, static_cast<size_t>(n));
    }
    for (;;) {
      Message msg;
      uint64_t seq = 0;
      FrameReader::Result r = conn->reader.Next(&msg, &seq);
      if (r == FrameReader::Result::kNeed) break;
      if (r == FrameReader::Result::kError) {
        eof = true;
        break;
      }
      HandleFrame(conn, std::move(msg), seq);
      if (conn->closed) break;
    }
    if (conn->closed) continue;
    if (eof) {
      CloseConn(conn);
      continue;
    }
    // Ack whatever the reads advanced, then push responses out now —
    // a site may be parked on one of these frames.
    if (conn->site >= 0) {
      Session& s = sessions_[static_cast<size_t>(conn->site)];
      Message ack;
      ack.type = MsgType::kAck;
      ack.site = conn->site;
      ack.a = s.up.watermark();
      AppendUnseq(conn, ack);
    }
    TryWrite(conn);
  }

  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [](const std::unique_ptr<Conn>& c) {
                                return c->closed;
                              }),
               conns_.end());
  return handled_in_round_;
}

int Coordinator::RunUntilShutdown() {
  while (!ShutdownComplete()) {
    if (PollOnce(100) < 0) return 1;
  }
  return 0;
}

}  // namespace service
}  // namespace disttrack
