// The coordinator daemon: k tracker site-halves behind sockets, one
// non-blocking poll() event loop (tentpole of the service PR).
//
// The coordinator owns the global protocol state the sites must agree
// on: the coarse threshold (one CoarseMirror decides every broadcast),
// the estimator replicas (sim/replica.h — rebuilt from delivered frames
// alone, bit-identical to the serial tracker's coordinator half), the
// lockstep admission scheduler with its grant order journal, and the
// per-site reliable channels with their downlink journals for reconnect
// catch-up. Queries (current count / heavy hitters / quantiles / stats /
// order journal) are answered from the replicas at any time, including
// mid-stream.
//
// Event loop contract: the loop never blocks on any one connection —
// reads are non-blocking and framed by FrameReader, writes buffer and
// drain on POLLOUT, and a site whose output buffer exceeds the
// backpressure cap simply stops being read until it drains. A site
// parked on a broadcast decision is unblocked by the ordinary write
// path; the coordinator never needs to wait for it.
//
// Fault model (docs/OPERATIONS.md): a site connection dying mid-grant
// stalls the lockstep scheduler — no other site is granted until the
// crashed site resumes and completes its run at its original journal
// position. That trades availability for the tier-A bit-identity
// guarantee; freerun mode keeps granting and settles for ε-accuracy.

#ifndef DISTTRACK_SERVICE_COORDINATOR_H_
#define DISTTRACK_SERVICE_COORDINATOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "disttrack/service/framing.h"
#include "disttrack/service/options.h"
#include "disttrack/service/socket.h"
#include "disttrack/sim/replica.h"
#include "disttrack/sim/transport.h"
#include "disttrack/sim/wire.h"

namespace disttrack {
namespace service {

/// kQuery.a values (parameters in kQuery.b; doubles bit-cast to u64).
enum QueryKind : uint64_t {
  kQueryCount = 0,         ///< -> [est bits, n', round]
  kQueryPoint = 1,         ///< b = item -> [est bits]       (frequency)
  kQueryHeavyHitters = 2,  ///< b = phi bits -> item/est-bit pairs with
                           ///< est >= phi * n'               (frequency)
  kQueryRank = 3,          ///< b = value -> [est bits]       (rank)
  kQueryQuantile = 4,      ///< b = phi bits -> [value, est bits]  (rank)
  kQueryStats = 5,         ///< -> fixed stats vector (see Stats::ToValues)
  kQueryJournal = 6,       ///< -> grant order journal as site/len pairs
};

class Coordinator {
 public:
  /// Wire/paper ledgers. The paper channel mirrors CommMeter §1.1
  /// semantics exactly: one message + max(1, words) words per delivered
  /// uplink data frame, k messages + k words per derived broadcast;
  /// duplicates (crash replays) and service-plane frames charge nothing.
  struct Stats {
    uint64_t frames_in = 0, frames_out = 0;
    uint64_t bytes_in = 0, bytes_out = 0;      ///< socket read()/write()
    uint64_t encoded_in = 0, encoded_out = 0;  ///< Σ wire::EncodedSize
    uint64_t resend_frames = 0, resend_bytes = 0;  ///< rejoin re-blasts
    uint64_t paper_messages = 0, paper_words = 0;
    uint64_t broadcasts = 0, decisions = 0;
    uint64_t rejoins = 0, rituals_acked = 0;
  };

  explicit Coordinator(const ServiceOptions& options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  bool AddListener(const Endpoint& endpoint, std::string* error);

  /// Takes ownership of an already-connected socket (tests connect a
  /// socketpair end; the daemon main only uses listeners).
  void AdoptConnection(int fd);

  /// One poll() round: accept, read, frame, handle, write. Returns the
  /// number of frames handled, or -1 on poll failure.
  int PollOnce(int timeout_ms);

  /// Daemon main loop: poll until a client kShutdown has been fanned out
  /// and every site connection has drained and closed.
  int RunUntilShutdown();

  bool ShutdownComplete() const;
  bool AllSitesDone() const;
  const Stats& stats() const { return stats_; }
  uint64_t site_position(int site) const;

  /// Answers a query in-process (same code path as the wire API).
  sim::wire::Message Query(const sim::wire::Message& query) const;

 private:
  struct Conn {
    int fd = -1;
    FrameReader reader;
    std::vector<uint8_t> out;
    size_t out_off = 0;
    int site = -1;  ///< joined site id, -1 until kJoin completes
    bool is_client = false;
    bool has_join = false;
    sim::wire::Message join;
    bool close_after_drain = false;
    bool closed = false;
    size_t pending() const { return out.size() - out_off; }
  };

  struct Session {
    Conn* conn = nullptr;
    sim::ReliableReceiver up;
    sim::ReliableSender down;
    std::vector<sim::wire::Message> down_journal;  ///< seq i+1 at index i
    uint64_t position = 0;
    bool ever_joined = false;
    bool done = false;
  };

  struct GrantEntry {
    int site = 0;
    uint64_t length = 0;
  };

  void HandleFrame(Conn* conn, sim::wire::Message msg, uint64_t seq);
  void HandleSiteFrame(Conn* conn, sim::wire::Message msg, uint64_t seq);
  void ApplyDelivered(int site, sim::wire::Message msg, uint64_t up_seq);
  void DecideCoarse(int site, const sim::wire::Message& report,
                    uint64_t up_seq);
  void FinishJoin(Conn* conn, const sim::wire::Message& join,
                  const sim::wire::Message& hello);
  void TrySchedule();
  void Grant(int site, uint64_t want);
  void AnswerQuery(Conn* conn, const sim::wire::Message& query);
  void BeginShutdown();

  /// Journals + stages one sequenced downlink frame for `site`.
  void StageDown(int site, sim::wire::Message msg);
  void AppendOut(Conn* conn, const std::vector<uint8_t>& bytes);
  void AppendUnseq(Conn* conn, const sim::wire::Message& msg);
  void TryWrite(Conn* conn);
  void CloseConn(Conn* conn);
  uint64_t PendingOutBytes() const;

  ServiceOptions options_;
  uint64_t options_hash_ = 0;

  std::vector<int> listeners_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::vector<Session> sessions_;

  // Broadcast decisions: one mirror, fed every delivered coarse report in
  // coordinator arrival order (the replicas keep their own copies).
  sim::CoarseMirror decider_;
  std::unique_ptr<sim::CountReplica> count_replica_;
  std::unique_ptr<sim::FrequencyReplica> frequency_replica_;
  std::unique_ptr<sim::RankReplica> rank_replica_;

  // Lockstep admission: FIFO of pending wants, at most one grant in
  // flight fleet-wide. active_site_ == -1 means the floor is free.
  std::deque<GrantEntry> want_queue_;
  int active_site_ = -1;
  uint64_t grant_ordinal_ = 0;
  std::vector<GrantEntry> order_journal_;

  bool shutting_down_ = false;
  int handled_in_round_ = 0;
  Stats stats_;
};

}  // namespace service
}  // namespace disttrack

#endif  // DISTTRACK_SERVICE_COORDINATOR_H_
