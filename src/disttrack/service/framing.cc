#include "disttrack/service/framing.h"

namespace disttrack {
namespace service {

void FrameReader::Append(const uint8_t* data, size_t size) {
  // Compact lazily: only when the consumed prefix dominates the buffer,
  // so steady-state appends are O(bytes) amortized.
  if (off_ > 4096 && off_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(off_));
    off_ = 0;
  }
  buf_.insert(buf_.end(), data, data + size);
}

FrameReader::Result FrameReader::Next(sim::wire::Message* msg, uint64_t* seq) {
  if (!error_.empty()) return Result::kError;
  size_t avail = buf_.size() - off_;
  if (avail < sim::wire::kHeaderBytes) return Result::kNeed;
  const uint8_t* head = buf_.data() + off_;
  size_t frame_size = sim::wire::PeekFrameSize(head, avail);
  if (frame_size == 0) {
    error_ = "stream desync: bytes do not open a known frame";
    return Result::kError;
  }
  if (avail < frame_size) return Result::kNeed;
  if (!sim::wire::DecodeFrame(head, frame_size, msg, seq)) {
    error_ = "stream desync: frame failed payload/CRC validation";
    return Result::kError;
  }
  off_ += frame_size;
  return Result::kFrame;
}

}  // namespace service
}  // namespace disttrack
