// Stream reassembly for wire frames read off a socket (tentpole of the
// service PR).
//
// TCP hands the receiver arbitrary byte runs: a frame may arrive split at
// any byte boundary, or coalesced with its neighbors. FrameReader buffers
// the stream and cuts it back into frames using the frozen header prefix
// (wire::kHeaderBytes bytes are always enough to learn a frame's full
// length — see wire::PeekFrameSize), then validates each candidate with
// wire::DecodeFrame (payload shape + CRC). Decoding is byte-identical to
// the in-memory path: the same DecodeFrame sees the same bytes
// (tests/service_framing_test.cc sweeps every split point).
//
// A stream that desyncs (bad magic / unknown version / CRC mismatch) is
// unrecoverable by design — frames carry no resync marker — so the reader
// latches a permanent error and the connection must be dropped; the
// reliable-channel layer above recovers by reconnect + retransmit.

#ifndef DISTTRACK_SERVICE_FRAMING_H_
#define DISTTRACK_SERVICE_FRAMING_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "disttrack/sim/wire.h"

namespace disttrack {
namespace service {

class FrameReader {
 public:
  /// Feeds `size` raw stream bytes into the reassembly buffer.
  void Append(const uint8_t* data, size_t size);

  /// Result of one extraction attempt.
  enum class Result {
    kFrame,  ///< *msg / *seq filled with the next complete frame
    kNeed,   ///< no complete frame buffered yet
    kError,  ///< stream desynced (permanent; see error())
  };

  /// Extracts the next complete frame, if any.
  Result Next(sim::wire::Message* msg, uint64_t* seq);

  /// Bytes buffered but not yet consumed as frames.
  size_t buffered() const { return buf_.size() - off_; }

  /// Nonempty after Result::kError.
  const std::string& error() const { return error_; }

 private:
  std::vector<uint8_t> buf_;
  size_t off_ = 0;  // consumed prefix of buf_
  std::string error_;
};

}  // namespace service
}  // namespace disttrack

#endif  // DISTTRACK_SERVICE_FRAMING_H_
