#include "disttrack/service/options.h"

#include <cstdio>
#include <cstring>

namespace disttrack {
namespace service {

namespace {

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ull;
  }
  return h;
}

uint64_t DoubleBits(double d) {
  uint64_t bits = 0;
  memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// SplitMix64: the repo's standard stateless mixer.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

bool ParseU64(const std::string& value, uint64_t* out) {
  if (value.empty()) return false;
  char* end = nullptr;
  unsigned long long v = strtoull(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

uint64_t ServiceOptions::Hash() const {
  uint64_t h = 0xCBF29CE484222325ull;
  h = Fnv1a(h, static_cast<uint64_t>(tracker));
  h = Fnv1a(h, static_cast<uint64_t>(mode));
  h = Fnv1a(h, static_cast<uint64_t>(num_sites));
  h = Fnv1a(h, DoubleBits(epsilon));
  h = Fnv1a(h, seed);
  h = Fnv1a(h, total_arrivals);
  h = Fnv1a(h, universe);
  h = Fnv1a(h, grant_max);
  return h;
}

count::RandomizedCountOptions ServiceOptions::CountOptions() const {
  count::RandomizedCountOptions o;
  o.num_sites = num_sites;
  o.epsilon = epsilon;
  o.seed = seed;
  return o;
}

frequency::RandomizedFrequencyOptions ServiceOptions::FrequencyOptions()
    const {
  frequency::RandomizedFrequencyOptions o;
  o.num_sites = num_sites;
  o.epsilon = epsilon;
  o.seed = seed;
  return o;
}

rank::RandomizedRankOptions ServiceOptions::RankOptions() const {
  rank::RandomizedRankOptions o;
  o.num_sites = num_sites;
  o.epsilon = epsilon;
  o.seed = seed;
  return o;
}

bool ServiceOptions::ParseFlag(const std::string& arg, std::string* error) {
  size_t eq = arg.find('=');
  if (arg.rfind("--", 0) != 0 || eq == std::string::npos) return false;
  std::string name = arg.substr(2, eq - 2);
  std::string value = arg.substr(eq + 1);
  uint64_t u = 0;
  if (name == "tracker") {
    if (value == "count") tracker = TrackerKind::kCount;
    else if (value == "frequency") tracker = TrackerKind::kFrequency;
    else if (value == "rank") tracker = TrackerKind::kRank;
    else { *error = "unknown --tracker: " + value; return false; }
    return true;
  }
  if (name == "mode") {
    if (value == "lockstep") mode = RunMode::kLockstep;
    else if (value == "freerun") mode = RunMode::kFreerun;
    else { *error = "unknown --mode: " + value; return false; }
    return true;
  }
  if (name == "sites") {
    if (!ParseU64(value, &u) || u == 0 || u > 4096) {
      *error = "bad --sites: " + value;
      return false;
    }
    num_sites = static_cast<int>(u);
    return true;
  }
  if (name == "epsilon") {
    epsilon = strtod(value.c_str(), nullptr);
    if (epsilon <= 0 || epsilon >= 1) { *error = "bad --epsilon"; return false; }
    return true;
  }
  if (name == "seed") { return ParseU64(value, &seed) || ((*error = "bad --seed"), false); }
  if (name == "n") {
    return ParseU64(value, &total_arrivals) || ((*error = "bad --n"), false);
  }
  if (name == "universe") {
    if (!ParseU64(value, &universe) || universe == 0) {
      *error = "bad --universe";
      return false;
    }
    return true;
  }
  if (name == "grant") {
    if (!ParseU64(value, &grant_max) || grant_max == 0) {
      *error = "bad --grant";
      return false;
    }
    return true;
  }
  if (name == "snapshot-every") {
    return ParseU64(value, &snapshot_every) ||
           ((*error = "bad --snapshot-every"), false);
  }
  return false;
}

const char* TrackerKindName(TrackerKind kind) {
  switch (kind) {
    case TrackerKind::kCount: return "count";
    case TrackerKind::kFrequency: return "frequency";
    case TrackerKind::kRank: return "rank";
  }
  return "?";
}

const char* RunModeName(RunMode mode) {
  return mode == RunMode::kLockstep ? "lockstep" : "freerun";
}

uint64_t ShardSize(const ServiceOptions& options, int site) {
  uint64_t k = static_cast<uint64_t>(options.num_sites);
  uint64_t base = options.total_arrivals / k;
  uint64_t rem = options.total_arrivals % k;
  return base + (static_cast<uint64_t>(site) < rem ? 1 : 0);
}

uint64_t WorkloadKey(const ServiceOptions& options, int site, uint64_t index) {
  uint64_t r = Mix(options.seed ^ Mix(static_cast<uint64_t>(site) * 0x9E37ull +
                                      1) ^ (index * 0xA24BAED4963EE407ull));
  if (options.tracker == TrackerKind::kFrequency) {
    // Skewed: 3/4 of arrivals on a 16-item hot set, the rest uniform.
    if ((r >> 32) % 4 != 0) return (r & 0xF);
    return r % options.universe;
  }
  return r % options.universe;
}

// --- Snapshot files -------------------------------------------------------

namespace {
constexpr uint64_t kSnapshotMagic = 0x44545353ull;  // "DTSS"
constexpr uint64_t kSnapshotVersion = 1;

uint64_t SnapshotChecksum(const std::vector<uint64_t>& words) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (uint64_t w : words) h = Fnv1a(h, w);
  return h;
}
}  // namespace

std::string SnapshotPath(const std::string& dir, int site) {
  return dir + "/site_" + std::to_string(site) + ".snap";
}

bool WriteSnapshotFile(const std::string& path, const SiteSnapshot& snapshot,
                       std::string* error) {
  std::vector<uint64_t> words;
  words.push_back(kSnapshotMagic);
  words.push_back(kSnapshotVersion);
  words.push_back(snapshot.options_hash);
  words.push_back(static_cast<uint64_t>(snapshot.site));
  words.push_back(snapshot.site_arrivals);
  words.push_back(snapshot.up_next_seq);
  words.push_back(snapshot.down_watermark);
  words.push_back(snapshot.blob.size());
  words.insert(words.end(), snapshot.blob.begin(), snapshot.blob.end());
  words.push_back(SnapshotChecksum(
      std::vector<uint64_t>(words.begin(), words.end())));

  std::string tmp = path + ".tmp";
  FILE* f = fopen(tmp.c_str(), "wb");
  if (f == nullptr) { *error = "open " + tmp + " failed"; return false; }
  size_t wrote = fwrite(words.data(), sizeof(uint64_t), words.size(), f);
  bool ok = wrote == words.size() && fflush(f) == 0;
  ok = (fclose(f) == 0) && ok;
  if (!ok || rename(tmp.c_str(), path.c_str()) != 0) {
    *error = "write/rename " + path + " failed";
    remove(tmp.c_str());
    return false;
  }
  return true;
}

bool ReadSnapshotFile(const std::string& path, uint64_t expected_hash,
                      SiteSnapshot* out) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::vector<uint64_t> words;
  uint64_t w = 0;
  while (fread(&w, sizeof(w), 1, f) == 1) words.push_back(w);
  fclose(f);
  if (words.size() < 9) return false;
  uint64_t check = words.back();
  words.pop_back();
  if (SnapshotChecksum(words) != check) return false;
  if (words[0] != kSnapshotMagic || words[1] != kSnapshotVersion) return false;
  if (words[2] != expected_hash) return false;
  uint64_t blob_len = words[7];
  if (words.size() != 8 + blob_len) return false;
  out->options_hash = words[2];
  out->site = static_cast<int>(words[3]);
  out->site_arrivals = words[4];
  out->up_next_seq = words[5];
  out->down_watermark = words[6];
  out->blob.assign(words.begin() + 8, words.end());
  return true;
}

}  // namespace service
}  // namespace disttrack
