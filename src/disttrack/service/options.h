// Shared configuration for the multi-process service: one ServiceOptions
// struct drives the coordinator daemon, every site process, and the demo
// parent. All three parse the same flags and must agree — kJoin carries
// OptionsHash() and the coordinator rejects a mismatched site, so a fleet
// can never silently mix epsilons or seeds.
//
// The synthetic workload is defined HERE, not shipped: site i derives its
// own arrival keys from (seed, i, index) with a stateless mixer, and the
// demo parent re-derives the same keys when it rebuilds the effective
// serial order from the coordinator's run journal. Deterministic input
// from three integers is what makes the distributed-vs-serial
// differential possible without moving the workload over the wire.

#ifndef DISTTRACK_SERVICE_OPTIONS_H_
#define DISTTRACK_SERVICE_OPTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "disttrack/count/randomized_count.h"
#include "disttrack/frequency/randomized_frequency.h"
#include "disttrack/rank/randomized_rank.h"

namespace disttrack {
namespace service {

enum class TrackerKind : uint64_t { kCount = 0, kFrequency = 1, kRank = 2 };

enum class RunMode : uint64_t {
  /// The coordinator serializes execution into granted runs: exactly one
  /// site advances at a time, and the journaled grant order IS the
  /// effective global arrival order. Estimates are bit-identical to a
  /// serial tracker replaying that order (determinism tier A).
  kLockstep = 0,
  /// Sites stream concurrently, pausing only for per-report broadcast
  /// decisions. The effective interleaving is scheduling-dependent, so
  /// the guarantee is the paper's ε-accuracy, not bit-equality
  /// (determinism tier C; docs/ARCHITECTURE.md).
  kFreerun = 1,
};

struct ServiceOptions {
  TrackerKind tracker = TrackerKind::kCount;
  RunMode mode = RunMode::kLockstep;
  int num_sites = 8;
  double epsilon = 0.05;
  uint64_t seed = 1;
  uint64_t total_arrivals = 100000;  ///< across all sites
  uint64_t universe = 1 << 20;       ///< key / value domain
  uint64_t grant_max = 2048;         ///< lockstep run size cap
  uint64_t snapshot_every = 0;       ///< site arrivals between snapshots
                                     ///< (0 = no snapshots)

  /// FNV-1a over every field that must match fleet-wide (kJoin.b).
  uint64_t Hash() const;

  count::RandomizedCountOptions CountOptions() const;
  frequency::RandomizedFrequencyOptions FrequencyOptions() const;
  rank::RandomizedRankOptions RankOptions() const;

  /// Parses one `--name=value` service flag into `*this`; false if the
  /// flag is not a service option (caller handles or rejects it).
  bool ParseFlag(const std::string& arg, std::string* error);
};

const char* TrackerKindName(TrackerKind kind);
const char* RunModeName(RunMode mode);

/// Arrivals assigned to `site`: an even split of total_arrivals with the
/// remainder spread over the lowest site ids.
uint64_t ShardSize(const ServiceOptions& options, int site);

/// The `index`-th key (frequency item / rank value / ignored for count)
/// of site `site`'s shard. Stateless: mixes (seed, site, index). The
/// frequency stream is skewed — 3/4 of arrivals land on a 16-item hot
/// set — so heavy hitters exist for the query API to find; rank values
/// are uniform over the universe.
uint64_t WorkloadKey(const ServiceOptions& options, int site, uint64_t index);

// --- Site snapshot files --------------------------------------------------
// A site's durable state between crashes: tracker blob (SerializeSiteState
// output, which includes the round-scoped globals) plus the channel
// cursors needed to splice back into the coordinator's sequence space.
// Written atomically (tmp + rename); a torn write is detected by the
// trailing checksum and treated as no-snapshot (fresh start).

struct SiteSnapshot {
  uint64_t options_hash = 0;
  int site = -1;
  uint64_t site_arrivals = 0;   ///< arrivals absorbed into the blob
  uint64_t up_next_seq = 1;     ///< uplink sender cursor at the snapshot
  uint64_t down_watermark = 0;  ///< downlink frames applied at the snapshot
  std::vector<uint64_t> blob;   ///< tracker SerializeSiteState output
};

/// Default snapshot path for a site under `dir`.
std::string SnapshotPath(const std::string& dir, int site);

bool WriteSnapshotFile(const std::string& path, const SiteSnapshot& snapshot,
                       std::string* error);

/// False if the file is missing, torn, or from a different options hash
/// (all three mean "start fresh").
bool ReadSnapshotFile(const std::string& path, uint64_t expected_hash,
                      SiteSnapshot* out);

}  // namespace service
}  // namespace disttrack

#endif  // DISTTRACK_SERVICE_OPTIONS_H_
