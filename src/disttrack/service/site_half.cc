#include "disttrack/service/site_half.h"

#include "disttrack/count/randomized_count.h"
#include "disttrack/frequency/randomized_frequency.h"
#include "disttrack/rank/randomized_rank.h"

namespace disttrack {
namespace service {

namespace {

class CountHalf : public SiteHalf {
 public:
  CountHalf(const ServiceOptions& options, int site)
      : tracker_(options.CountOptions()), site_(site) {
    tracker_.BeginCrashReplay(site_);
  }
  void set_wire_tap(sim::wire::WireTap* tap) override {
    tracker_.set_wire_tap(tap);
  }
  void Arrive(uint64_t /*key*/) override {
    tracker_.ReplayCrashArrive(site_, nullptr);
  }
  void ApplyRitual(uint64_t n_bar) override {
    tracker_.ReplayCrashRitual(site_, n_bar);
  }
  bool SnapshotReady() const override {
    return tracker_.SiteSnapshotReady(site_);
  }
  void Serialize(std::vector<uint64_t>* out) const override {
    tracker_.SerializeSiteState(site_, out);
  }
  void Restore(const std::vector<uint64_t>& blob) override {
    tracker_.RestoreSiteState(site_, blob);
  }

 private:
  count::RandomizedCountTracker tracker_;
  int site_;
};

class FrequencyHalf : public SiteHalf {
 public:
  FrequencyHalf(const ServiceOptions& options, int site)
      : tracker_(options.FrequencyOptions()), site_(site) {
    tracker_.BeginCrashReplay(site_);
  }
  void set_wire_tap(sim::wire::WireTap* tap) override {
    tracker_.set_wire_tap(tap);
  }
  void Arrive(uint64_t key) override {
    tracker_.ReplayCrashArrive(site_, key, nullptr);
  }
  void ApplyRitual(uint64_t n_bar) override {
    tracker_.ReplayCrashRitual(site_, n_bar);
  }
  bool SnapshotReady() const override {
    return tracker_.SiteSnapshotReady(site_);
  }
  void Serialize(std::vector<uint64_t>* out) const override {
    tracker_.SerializeSiteState(site_, out);
  }
  void Restore(const std::vector<uint64_t>& blob) override {
    tracker_.RestoreSiteState(site_, blob);
  }

 private:
  frequency::RandomizedFrequencyTracker tracker_;
  int site_;
};

class RankHalf : public SiteHalf {
 public:
  RankHalf(const ServiceOptions& options, int site)
      : tracker_(options.RankOptions()), site_(site) {
    tracker_.set_detached_replay(true);
    tracker_.BeginCrashReplay(site_);
  }
  void set_wire_tap(sim::wire::WireTap* tap) override {
    tracker_.set_wire_tap(tap);
  }
  void Arrive(uint64_t key) override {
    tracker_.ReplayCrashArrive(site_, key, nullptr);
  }
  void ApplyRitual(uint64_t n_bar) override {
    tracker_.ReplayCrashRitual(site_, n_bar);
  }
  bool SnapshotReady() const override {
    return tracker_.SiteSnapshotReady(site_);
  }
  void Serialize(std::vector<uint64_t>* out) const override {
    tracker_.SerializeSiteState(site_, out);
  }
  void Restore(const std::vector<uint64_t>& blob) override {
    tracker_.RestoreSiteState(site_, blob);
  }

 private:
  rank::RandomizedRankTracker tracker_;
  int site_;
};

}  // namespace

std::unique_ptr<SiteHalf> SiteHalf::Create(const ServiceOptions& options,
                                           int site) {
  switch (options.tracker) {
    case TrackerKind::kCount:
      return std::make_unique<CountHalf>(options, site);
    case TrackerKind::kFrequency:
      return std::make_unique<FrequencyHalf>(options, site);
    case TrackerKind::kRank:
      return std::make_unique<RankHalf>(options, site);
  }
  return nullptr;
}

}  // namespace service
}  // namespace disttrack
