// The site half of a tracker, as a kind-erased adapter over the three
// tracker classes' crash-replay seam.
//
// A site process hosts a real tracker but drives exactly one site of it,
// in crash-replay mode permanently: ReplayCrashArrive advances only
// site-local state (counters, RNG/skip streams, coarse thresholds) and
// re-emits every protocol frame through the wire tap, while every
// coordinator-side effect (n', rounds, meter, estimator aggregates) is
// suppressed — those live in the coordinator's replicas (sim/replica.h).
// Round rituals arrive from outside as ApplyRitual calls, either
// mid-arrival (from inside the tap, for the site's own triggering report
// — the trackers emit the coarse report *before* consuming any
// p-dependent randomness, so a reentrant ritual lands at the exact
// program point the serial execution performs it) or between arrivals
// (another site triggered the round).
//
// This is the same seam the fault harness replays crashes through, which
// is what makes the distributed execution comparable to the serial
// tracker bit for bit (robust_cluster.h proves the seam; the service
// demo and tests/service_*.cc prove the daemon).

#ifndef DISTTRACK_SERVICE_SITE_HALF_H_
#define DISTTRACK_SERVICE_SITE_HALF_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "disttrack/service/options.h"
#include "disttrack/sim/wire.h"

namespace disttrack {
namespace service {

class SiteHalf {
 public:
  /// Builds the tracker for options.tracker and enters permanent replay
  /// mode for `site` (rank trackers in detached-replay mode).
  static std::unique_ptr<SiteHalf> Create(const ServiceOptions& options,
                                          int site);
  virtual ~SiteHalf() = default;

  /// Installs the frame sink. Every protocol message of this site is
  /// delivered to the tap at its §1.1 send instant, including frames
  /// emitted from inside ApplyRitual (thinning corrections).
  virtual void set_wire_tap(sim::wire::WireTap* tap) = 0;

  /// One arrival of this site's stream (key: item / value / ignored).
  virtual void Arrive(uint64_t key) = 0;

  /// Per-site half of the round ritual for a broadcast carrying n̄.
  /// Callable between arrivals or reentrantly from the tap's
  /// kCoarseReport delivery (see header comment).
  virtual void ApplyRitual(uint64_t n_bar) = 0;

  virtual bool SnapshotReady() const = 0;
  virtual void Serialize(std::vector<uint64_t>* out) const = 0;
  virtual void Restore(const std::vector<uint64_t>& blob) = 0;
};

}  // namespace service
}  // namespace disttrack

#endif  // DISTTRACK_SERVICE_SITE_HALF_H_
