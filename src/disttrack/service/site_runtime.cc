#include "disttrack/service/site_runtime.h"

#include <unistd.h>

#include <cstdio>

namespace disttrack {
namespace service {

namespace {
using sim::wire::Message;
using sim::wire::MsgType;
}  // namespace

SiteRuntime::SiteRuntime(const Config& config)
    : config_(config), options_hash_(config.options.Hash()) {
  half_ = SiteHalf::Create(config_.options, config_.site);
  half_->set_wire_tap(this);
}

void SiteRuntime::Fail(const std::string& what) {
  if (!failed_) {
    failed_ = true;
    fail_reason_ = what;
  }
}

void SiteRuntime::StageUp(const Message& msg, uint64_t* seq_out) {
  std::vector<uint8_t> frame;
  uint64_t seq = up_send_.Stage(msg, 0, &frame);
  outbuf_.insert(outbuf_.end(), frame.begin(), frame.end());
  if (seq_out != nullptr) *seq_out = seq;
}

void SiteRuntime::SendUnseq(const Message& msg) {
  sim::wire::EncodeFrame(msg, 0, &outbuf_);
}

bool SiteRuntime::Flush() {
  if (failed_) return false;
  if (down_recv_.watermark() != last_acked_) {
    Message ack;
    ack.type = MsgType::kAck;
    ack.site = config_.site;
    ack.a = down_recv_.watermark();
    SendUnseq(ack);
    last_acked_ = down_recv_.watermark();
  }
  if (outbuf_.empty()) return true;
  if (!WriteAll(fd_, outbuf_.data(), outbuf_.size())) {
    Fail("write to coordinator failed");
    return false;
  }
  outbuf_.clear();
  return true;
}

bool SiteRuntime::ReadFrame(Message* msg, uint64_t* seq) {
  uint8_t buf[65536];
  for (;;) {
    switch (reader_.Next(msg, seq)) {
      case FrameReader::Result::kFrame:
        return true;
      case FrameReader::Result::kError:
        Fail("downlink " + reader_.error());
        return false;
      case FrameReader::Result::kNeed:
        break;
    }
    long n = ReadSome(fd_, buf, sizeof(buf));
    if (n == 0) {
      Fail("coordinator closed the connection");
      return false;
    }
    if (n < 0) {
      Fail("read from coordinator failed");
      return false;
    }
    reader_.Append(buf, static_cast<size_t>(n));
  }
}

bool SiteRuntime::HandleDown(Message msg, uint64_t seq, uint64_t waiting_seq,
                             bool* resolved) {
  if (msg.type == MsgType::kAck) {
    up_send_.Ack(msg.a);
    return true;
  }
  if (msg.type == MsgType::kJoinAck) return true;  // late duplicate
  // Every other downlink frame is sequenced. Delivered messages come out
  // of the receiver in contiguous sequence order, so the i-th delivery of
  // this batch has sequence watermark_before + 1 + i (needed for
  // kRitualAck, which names the broadcast's downlink seq).
  uint64_t before = down_recv_.watermark();
  std::vector<Message> delivered;
  down_recv_.Accept(seq, std::move(msg), &delivered);
  for (size_t i = 0; i < delivered.size(); ++i) {
    Message& d = delivered[i];
    uint64_t dseq = before + 1 + i;
    switch (d.type) {
      case MsgType::kGrant:
        pending_grants_.push_back(d.a);
        break;
      case MsgType::kBroadcast: {
        round_ = d.a;
        half_->ApplyRitual(d.b);
        Message ritual_ack;
        ritual_ack.type = MsgType::kRitualAck;
        ritual_ack.site = config_.site;
        ritual_ack.epoch = round_;
        ritual_ack.a = dseq;
        ritual_ack.b = position_;
        StageUp(ritual_ack, nullptr);
        if (waiting_seq != 0 && d.c == waiting_seq && resolved != nullptr) {
          *resolved = true;
        }
        break;
      }
      case MsgType::kNoBroadcast:
        if (waiting_seq != 0 && d.a == waiting_seq && resolved != nullptr) {
          *resolved = true;
        } else {
          Fail("unexpected kNoBroadcast for uplink seq " +
               std::to_string(d.a));
          return false;
        }
        break;
      case MsgType::kShutdown:
        shutdown_ = true;
        break;
      default:
        Fail("unexpected downlink frame type " +
             std::to_string(static_cast<int>(d.type)));
        return false;
    }
  }
  return true;
}

bool SiteRuntime::AwaitDecision(uint64_t report_seq) {
  bool resolved = false;
  while (!resolved && !shutdown_ && !failed_) {
    Message msg;
    uint64_t seq = 0;
    if (!ReadFrame(&msg, &seq)) return false;
    if (!HandleDown(std::move(msg), seq, report_seq, &resolved)) return false;
  }
  return !failed_;
}

void SiteRuntime::OnMessage(Message&& msg) {
  if (failed_ || shutdown_) return;
  msg.epoch = round_;
  bool is_report = msg.type == MsgType::kCoarseReport;
  uint64_t seq = 0;
  StageUp(msg, &seq);
  if (is_report) {
    // The tracker is parked at its §1.1 send point: flush the report and
    // block until the coordinator's decision. A positive decision applies
    // the ritual reentrantly from HandleDown before this returns.
    if (!Flush()) return;
    AwaitDecision(seq);
  }
}

void SiteRuntime::MaybeSnapshot() {
  if (config_.snapshot_dir.empty() || config_.options.snapshot_every == 0) {
    return;
  }
  if (position_ - last_snapshot_pos_ < config_.options.snapshot_every) return;
  if (!half_->SnapshotReady()) return;  // retry at the next run boundary
  SiteSnapshot snap;
  snap.options_hash = options_hash_;
  snap.site = config_.site;
  snap.site_arrivals = position_;
  snap.up_next_seq = up_send_.next_seq();
  snap.down_watermark = down_recv_.watermark();
  half_->Serialize(&snap.blob);
  std::string error;
  if (!WriteSnapshotFile(SnapshotPath(config_.snapshot_dir, config_.site),
                         snap, &error)) {
    fprintf(stderr, "site %d: snapshot failed: %s\n", config_.site,
            error.c_str());
    return;  // non-fatal: recovery just replays from the previous one
  }
  last_snapshot_pos_ = position_;
}

bool SiteRuntime::Join(std::string* error) {
  Message join;
  join.type = MsgType::kJoin;
  join.site = config_.site;
  join.a = resumed_ ? 1 : 0;
  join.b = options_hash_;
  join.c = position_;
  SendUnseq(join);

  Message hello;
  hello.type = MsgType::kHello;
  hello.site = config_.site;
  hello.a = up_send_.next_seq();
  hello.b = down_recv_.watermark();
  SendUnseq(hello);
  if (!Flush()) {
    *error = fail_reason_;
    return false;
  }

  for (;;) {
    Message msg;
    uint64_t seq = 0;
    if (!ReadFrame(&msg, &seq)) {
      *error = fail_reason_;
      return false;
    }
    if (msg.type == MsgType::kAck) {
      up_send_.Ack(msg.a);
      continue;
    }
    if (msg.type != MsgType::kJoinAck) {
      *error = "expected kJoinAck, got frame type " +
               std::to_string(static_cast<int>(msg.type));
      return false;
    }
    if (msg.a != 0) {
      *error = "coordinator rejected join, status " + std::to_string(msg.a);
      return false;
    }
    return true;
  }
}

int SiteRuntime::Run() {
  // Resume from the latest snapshot, if one matches this fleet's options.
  if (!config_.snapshot_dir.empty()) {
    SiteSnapshot snap;
    if (ReadSnapshotFile(SnapshotPath(config_.snapshot_dir, config_.site),
                         options_hash_, &snap) &&
        snap.site == config_.site) {
      half_->Restore(snap.blob);
      up_send_.Reset(snap.up_next_seq);
      down_recv_.Reset(snap.down_watermark);
      last_acked_ = snap.down_watermark;
      position_ = snap.site_arrivals;
      last_snapshot_pos_ = position_;
      resumed_ = true;
    }
  }

  std::string error;
  fd_ = config_.connected_fd >= 0 ? config_.connected_fd
                                  : Dial(config_.endpoint, 10000, &error);
  if (fd_ < 0) {
    fprintf(stderr, "site %d: %s\n", config_.site, error.c_str());
    return 3;
  }
  if (!Join(&error)) {
    fprintf(stderr, "site %d: %s\n", config_.site, error.c_str());
    close(fd_);
    return 2;
  }

  const uint64_t shard = ShardSize(config_.options, config_.site);
  while (position_ < shard && !shutdown_ && !failed_) {
    MaybeSnapshot();
    uint64_t want = shard - position_;
    if (want > config_.options.grant_max) want = config_.options.grant_max;
    Message request;
    request.type = MsgType::kGrantRequest;
    request.site = config_.site;
    request.a = want;
    StageUp(request, nullptr);
    if (!Flush()) break;

    while (pending_grants_.empty() && !shutdown_ && !failed_) {
      Message msg;
      uint64_t seq = 0;
      if (!ReadFrame(&msg, &seq)) break;
      if (!HandleDown(std::move(msg), seq, 0, nullptr)) break;
      if (!Flush()) break;  // ritual acks / corrections staged mid-wait
    }
    if (shutdown_ || failed_) break;
    uint64_t granted = pending_grants_.front();
    pending_grants_.pop_front();

    for (uint64_t i = 0; i < granted && !shutdown_ && !failed_; ++i) {
      if (config_.crash_after != 0 &&
          arrivals_in_process_ >= config_.crash_after) {
        _exit(7);  // hard crash: no flush, no snapshot, no goodbye
      }
      half_->Arrive(WorkloadKey(config_.options, config_.site, position_));
      ++position_;
      ++arrivals_in_process_;
    }
    if (shutdown_ || failed_) break;
    Message done;
    done.type = MsgType::kGrantDone;
    done.site = config_.site;
    done.a = position_;
    StageUp(done, nullptr);
    if (!Flush()) break;
  }

  if (!shutdown_ && !failed_) {
    MaybeSnapshot();
    // End of stream: tell the coordinator, then stay resident — rituals
    // triggered by other sites still need this site's thinning draws.
    Message eof;
    eof.type = MsgType::kGrantRequest;
    eof.site = config_.site;
    eof.a = 0;
    StageUp(eof, nullptr);
    Flush();
    while (!shutdown_ && !failed_) {
      Message msg;
      uint64_t seq = 0;
      if (!ReadFrame(&msg, &seq)) break;
      if (!HandleDown(std::move(msg), seq, 0, nullptr)) break;
      if (!Flush()) break;
    }
  }

  if (failed_) {
    fprintf(stderr, "site %d: %s\n", config_.site, fail_reason_.c_str());
    close(fd_);
    return 3;
  }
  Flush();
  close(fd_);
  return 0;
}

}  // namespace service
}  // namespace disttrack
