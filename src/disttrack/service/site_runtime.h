// The site process: one tracker site behind a socket (tentpole of the
// service PR).
//
// A SiteRuntime connects to the coordinator daemon, joins (or resumes)
// its session, and then drives its shard of the synthetic workload
// through a SiteHalf. Every frame the tracker emits goes through a
// ReliableSender (uplink sequence numbers + dedup on reconnect); every
// downlink frame goes through a ReliableReceiver. The socket is blocking
// — a site has exactly one thing to wait for at a time:
//
//   * a kGrant before it may run (lockstep admission),
//   * the kBroadcast / kNoBroadcast decision for a coarse report it just
//     sent (the tracker is parked inside the wire tap at the exact
//     program point the serial tracker runs the ritual, so a broadcast
//     decision applies the ritual reentrantly — see site_half.h),
//   * after its stream ends, rituals triggered by other sites, until
//     kShutdown.
//
// Crash recovery: at run boundaries the site writes an atomic snapshot
// (tracker blob + channel cursors). On restart it restores the snapshot,
// rejoins with the resume flag, and replays forward: regenerated uplink
// frames carry their original sequence numbers (the coordinator drops
// them as duplicates — this is the no-double-counting mechanism), and the
// coordinator re-blasts every downlink frame past the snapshot's
// watermark, which re-delivers every grant and decision the replay will
// block on, in the original order. docs/OPERATIONS.md walks through the
// recovery matrix.

#ifndef DISTTRACK_SERVICE_SITE_RUNTIME_H_
#define DISTTRACK_SERVICE_SITE_RUNTIME_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "disttrack/service/framing.h"
#include "disttrack/service/options.h"
#include "disttrack/service/site_half.h"
#include "disttrack/service/socket.h"
#include "disttrack/sim/transport.h"
#include "disttrack/sim/wire.h"

namespace disttrack {
namespace service {

class SiteRuntime : public sim::wire::WireTap {
 public:
  struct Config {
    ServiceOptions options;
    int site = 0;
    Endpoint endpoint;
    std::string snapshot_dir;  ///< empty = snapshots off
    uint64_t crash_after = 0;  ///< _exit(7) after this many arrivals in
                               ///< this process (0 = never); simulates a
                               ///< hard crash for the recovery tests
    int connected_fd = -1;     ///< already-connected socket to use instead
                               ///< of dialing `endpoint` (fork-based tests)
  };

  explicit SiteRuntime(const Config& config);

  /// Runs the site to completion. Exit codes: 0 orderly shutdown,
  /// 2 join rejected by the coordinator, 3 transport failure.
  int Run();

  /// WireTap: receives every frame the tracker emits. Coarse reports
  /// block here until the coordinator's decision arrives.
  void OnMessage(sim::wire::Message&& msg) override;

  uint64_t position() const { return position_; }

 private:
  bool Join(std::string* error);
  void StageUp(const sim::wire::Message& msg, uint64_t* seq_out);
  void SendUnseq(const sim::wire::Message& msg);
  bool Flush();
  bool ReadFrame(sim::wire::Message* msg, uint64_t* seq);
  /// Routes one raw downlink frame; `waiting_seq` != 0 while parked on a
  /// coarse-report decision (matching kBroadcast.c / kNoBroadcast.a
  /// resolves the wait).
  bool HandleDown(sim::wire::Message msg, uint64_t seq, uint64_t waiting_seq,
                  bool* resolved);
  bool AwaitDecision(uint64_t report_seq);
  void MaybeSnapshot();
  void Fail(const std::string& what);

  Config config_;
  uint64_t options_hash_ = 0;
  std::unique_ptr<SiteHalf> half_;

  int fd_ = -1;
  FrameReader reader_;
  std::vector<uint8_t> outbuf_;
  sim::ReliableSender up_send_;
  sim::ReliableReceiver down_recv_;
  uint64_t last_acked_ = 0;  ///< downlink watermark last advertised

  uint64_t position_ = 0;           ///< arrivals absorbed (ever)
  uint64_t arrivals_in_process_ = 0;  ///< arrivals since this exec
  uint64_t last_snapshot_pos_ = 0;
  uint64_t round_ = 0;  ///< latest broadcast round seen (epoch stamp)
  std::deque<uint64_t> pending_grants_;
  bool resumed_ = false;
  bool shutdown_ = false;
  bool failed_ = false;
  std::string fail_reason_;
};

}  // namespace service
}  // namespace disttrack

#endif  // DISTTRACK_SERVICE_SITE_RUNTIME_H_
