#include "disttrack/service/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

namespace disttrack {
namespace service {

namespace {

void SleepMs(int ms) {
  struct timespec ts;
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
  nanosleep(&ts, nullptr);
}

bool FillUnixAddr(const std::string& path, sockaddr_un* addr,
                  std::string* error) {
  if (path.size() + 1 > sizeof(addr->sun_path)) {
    *error = "unix socket path too long: " + path;
    return false;
  }
  memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

int DialOnce(const Endpoint& ep, std::string* error) {
  if (ep.is_unix) {
    sockaddr_un addr;
    if (!FillUnixAddr(ep.path, &addr, error)) return -1;
    int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      *error = std::string("socket: ") + strerror(errno);
      return -1;
    }
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      *error = std::string("connect ") + ep.path + ": " + strerror(errno);
      close(fd);
      return -1;
    }
    return fd;
  }
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  const char* host = ep.path.empty() ? "127.0.0.1" : ep.path.c_str();
  if (inet_pton(AF_INET, host, &addr.sin_addr) != 1) {
    *error = std::string("tcp host must be a dotted IPv4 address: ") + host;
    return -1;
  }
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + strerror(errno);
    return -1;
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = std::string("connect ") + ep.ToString() + ": " + strerror(errno);
    close(fd);
    return -1;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

bool Endpoint::Parse(const std::string& text, Endpoint* out,
                     std::string* error) {
  if (text.rfind("unix:", 0) == 0) {
    out->is_unix = true;
    out->path = text.substr(5);
    out->port = 0;
    if (out->path.empty()) {
      *error = "unix endpoint needs a path: " + text;
      return false;
    }
    return true;
  }
  if (text.rfind("tcp:", 0) == 0) {
    std::string rest = text.substr(4);
    size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      *error = "tcp endpoint needs HOST:PORT: " + text;
      return false;
    }
    out->is_unix = false;
    out->path = rest.substr(0, colon);
    long port = strtol(rest.c_str() + colon + 1, nullptr, 10);
    if (port <= 0 || port > 65535) {
      *error = "bad tcp port in: " + text;
      return false;
    }
    out->port = static_cast<uint16_t>(port);
    return true;
  }
  *error = "endpoint must start with unix: or tcp: — got " + text;
  return false;
}

std::string Endpoint::ToString() const {
  if (is_unix) return "unix:" + path;
  return "tcp:" + (path.empty() ? std::string("127.0.0.1") : path) + ":" +
         std::to_string(port);
}

int Listen(const Endpoint& ep, std::string* error) {
  int fd = -1;
  if (ep.is_unix) {
    sockaddr_un addr;
    if (!FillUnixAddr(ep.path, &addr, error)) return -1;
    unlink(ep.path.c_str());
    fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      *error = std::string("socket: ") + strerror(errno);
      return -1;
    }
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      *error = std::string("bind ") + ep.path + ": " + strerror(errno);
      close(fd);
      return -1;
    }
  } else {
    fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      *error = std::string("socket: ") + strerror(errno);
      return -1;
    }
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(ep.port);
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      *error = std::string("bind port ") + std::to_string(ep.port) + ": " +
               strerror(errno);
      close(fd);
      return -1;
    }
  }
  if (listen(fd, 128) != 0) {
    *error = std::string("listen: ") + strerror(errno);
    close(fd);
    return -1;
  }
  return fd;
}

int Dial(const Endpoint& ep, int timeout_ms, std::string* error) {
  int waited = 0;
  for (;;) {
    std::string attempt_error;
    int fd = DialOnce(ep, &attempt_error);
    if (fd >= 0) return fd;
    if (waited >= timeout_ms) {
      *error = attempt_error + " (gave up after " + std::to_string(waited) +
               "ms)";
      return -1;
    }
    SleepMs(50);
    waited += 50;
  }
}

bool SetNonBlocking(int fd, bool nonblocking) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  if (nonblocking) flags |= O_NONBLOCK;
  else flags &= ~O_NONBLOCK;
  return fcntl(fd, F_SETFL, flags) == 0;
}

bool WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = write(fd, data + sent, size - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

long ReadSome(int fd, uint8_t* buf, size_t cap) {
  for (;;) {
    ssize_t n = read(fd, buf, cap);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -2;
    return -1;
  }
}

}  // namespace service
}  // namespace disttrack
