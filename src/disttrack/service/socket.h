// Thin POSIX socket helpers for the coordinator daemon and site
// processes: TCP for the cross-host path, Unix-domain stream sockets as
// the same-host fast path. Everything returns plain fds so the
// coordinator's poll loop and the sites' blocking loops share one
// vocabulary; error reporting is errno-based via the *error out-param.

#ifndef DISTTRACK_SERVICE_SOCKET_H_
#define DISTTRACK_SERVICE_SOCKET_H_

#include <cstdint>
#include <string>

namespace disttrack {
namespace service {

/// A listen/dial address. Text forms:
///   unix:/path/to/socket     Unix-domain stream socket
///   tcp:HOST:PORT            TCP (HOST ignored for Listen: binds 0.0.0.0)
struct Endpoint {
  bool is_unix = true;
  std::string path;  ///< socket path (unix) or host (tcp)
  uint16_t port = 0;

  static bool Parse(const std::string& text, Endpoint* out,
                    std::string* error);
  std::string ToString() const;
};

/// Creates a listening socket (backlog 128). Unix paths are unlinked
/// first so a stale socket file never blocks a restart. Returns -1 and
/// fills *error on failure.
int Listen(const Endpoint& ep, std::string* error);

/// Connects to `ep`, retrying with 50ms sleeps for up to `timeout_ms`
/// while the coordinator is still coming up. Returns -1 on timeout.
int Dial(const Endpoint& ep, int timeout_ms, std::string* error);

/// O_NONBLOCK toggle; true on success.
bool SetNonBlocking(int fd, bool nonblocking);

/// Blocking write of the whole buffer (EINTR-safe). False on error.
bool WriteAll(int fd, const uint8_t* data, size_t size);

/// One read() of at most `cap` bytes (EINTR-safe). Returns bytes read,
/// 0 on orderly EOF, -1 on error, -2 on EAGAIN (nonblocking fd only).
long ReadSome(int fd, uint8_t* buf, size_t cap);

}  // namespace service
}  // namespace disttrack

#endif  // DISTTRACK_SERVICE_SOCKET_H_
