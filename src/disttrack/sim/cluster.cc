#include "disttrack/sim/cluster.h"

namespace disttrack {
namespace sim {

namespace {

// Shared geometric-checkpoint replay skeleton. `deliver` pushes one arrival;
// `sample` returns the (estimate, truth) pair at the current time.
template <typename DeliverFn, typename SampleFn>
std::vector<Checkpoint> ReplayImpl(const Workload& workload,
                                   double checkpoint_factor, DeliverFn deliver,
                                   SampleFn sample) {
  if (checkpoint_factor <= 1.0) checkpoint_factor = 1.5;
  std::vector<Checkpoint> out;
  uint64_t n = 0;
  double next = 1.0;
  for (const Arrival& a : workload) {
    deliver(a);
    ++n;
    if (static_cast<double>(n) >= next) {
      auto [est, truth] = sample();
      out.push_back(Checkpoint{n, est, truth});
      next = static_cast<double>(n) * checkpoint_factor;
    }
  }
  if (out.empty() || out.back().n != n) {
    auto [est, truth] = sample();
    out.push_back(Checkpoint{n, est, truth});
  }
  return out;
}

}  // namespace

std::vector<Checkpoint> ReplayCount(CountTrackerInterface* tracker,
                                    const Workload& workload,
                                    double checkpoint_factor) {
  uint64_t n = 0;
  return ReplayImpl(
      workload, checkpoint_factor,
      [&](const Arrival& a) {
        tracker->Arrive(a.site);
        ++n;
      },
      [&]() {
        return std::pair<double, double>(tracker->EstimateCount(),
                                         static_cast<double>(n));
      });
}

std::vector<Checkpoint> ReplayFrequency(FrequencyTrackerInterface* tracker,
                                        const Workload& workload,
                                        uint64_t query_item,
                                        double checkpoint_factor) {
  uint64_t freq = 0;
  return ReplayImpl(
      workload, checkpoint_factor,
      [&](const Arrival& a) {
        tracker->Arrive(a.site, a.key);
        if (a.key == query_item) ++freq;
      },
      [&]() {
        return std::pair<double, double>(tracker->EstimateFrequency(query_item),
                                         static_cast<double>(freq));
      });
}

std::vector<Checkpoint> ReplayRank(RankTrackerInterface* tracker,
                                   const Workload& workload,
                                   uint64_t query_value,
                                   double checkpoint_factor) {
  uint64_t rank = 0;
  return ReplayImpl(
      workload, checkpoint_factor,
      [&](const Arrival& a) {
        tracker->Arrive(a.site, a.key);
        if (a.key < query_value) ++rank;
      },
      [&]() {
        return std::pair<double, double>(tracker->EstimateRank(query_value),
                                         static_cast<double>(rank));
      });
}

}  // namespace sim
}  // namespace disttrack
