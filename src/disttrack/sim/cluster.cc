#include "disttrack/sim/cluster.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace disttrack {
namespace sim {

namespace {

void CheckCheckpointFactor(double checkpoint_factor) {
  if (!(checkpoint_factor > 1.0)) {
    std::fprintf(stderr,
                 "Replay: checkpoint_factor must be > 1.0, got %f\n",
                 checkpoint_factor);
    std::abort();
  }
}

// Shared geometric-checkpoint replay skeleton. `deliver_batch` pushes a
// contiguous run of arrivals (element indices [begin, end)) in order;
// `sample` returns the (estimate, truth) pair at the current time.
// Batching just delivers the arrivals between consecutive checkpoints of
// the shared CheckpointCounts schedule in one call.
template <typename DeliverBatchFn, typename SampleFn>
std::vector<Checkpoint> ReplayImpl(uint64_t total, double checkpoint_factor,
                                   DeliverBatchFn deliver_batch,
                                   SampleFn sample) {
  std::vector<uint64_t> schedule = CheckpointCounts(total, checkpoint_factor);
  std::vector<Checkpoint> out;
  out.reserve(schedule.size());
  uint64_t delivered = 0;
  for (uint64_t target : schedule) {
    if (target > delivered) deliver_batch(delivered, target);
    delivered = target;
    auto [est, truth] = sample();
    out.push_back(Checkpoint{delivered, est, truth});
  }
  return out;
}

}  // namespace

std::vector<uint64_t> CheckpointCounts(uint64_t total,
                                       double checkpoint_factor) {
  CheckCheckpointFactor(checkpoint_factor);
  // This is the historical per-arrival schedule exactly: deliver to the
  // first n with n >= next (never past the stream end), sample there, and
  // multiply. The only delivery boundary that is not a sample is the
  // stream end when it falls short of `next`; the trailing final-sample
  // rule folds it into the schedule anyway, so "delivery boundaries" and
  // "checkpoints" coincide.
  std::vector<uint64_t> out;
  uint64_t n = 0;
  double next = 1.0;
  while (n < total) {
    uint64_t target = static_cast<uint64_t>(std::ceil(next));
    target = std::max(target, n + 1);
    target = std::min(target, total);
    n = target;
    if (static_cast<double>(n) >= next) {
      out.push_back(n);
      next = static_cast<double>(n) * checkpoint_factor;
    }
  }
  if (out.empty() || out.back() != total) out.push_back(total);
  return out;
}

std::vector<uint64_t> PushBoundaries(uint64_t total, uint64_t max_push,
                                     const std::vector<uint64_t>& checkpoints) {
  if (max_push == 0) {
    std::fprintf(stderr, "disttrack: PushBoundaries max_push must be > 0\n");
    std::abort();
  }
  std::vector<uint64_t> out;
  uint64_t pos = 0;
  size_t ci = 0;
  while (pos < total) {
    while (ci < checkpoints.size() && checkpoints[ci] <= pos) ++ci;
    uint64_t next = pos + max_push;
    if (ci < checkpoints.size() && checkpoints[ci] < next) {
      next = checkpoints[ci];
    }
    if (next > total) next = total;
    out.push_back(next);
    pos = next;
  }
  return out;
}

std::vector<Checkpoint> ReplayCount(CountTrackerInterface* tracker,
                                    const Workload& workload,
                                    double checkpoint_factor) {
  uint64_t n = 0;
  return ReplayImpl(
      workload.size(), checkpoint_factor,
      [&](uint64_t begin, uint64_t end) {
        tracker->ArriveBatch(workload.data() + begin, end - begin);
        n += end - begin;
      },
      [&]() {
        return std::pair<double, double>(tracker->EstimateCount(),
                                         static_cast<double>(n));
      });
}

std::vector<Checkpoint> ReplayCountSites(CountTrackerInterface* tracker,
                                         const SiteStream& sites,
                                         double checkpoint_factor) {
  uint64_t n = 0;
  return ReplayImpl(
      sites.size(), checkpoint_factor,
      [&](uint64_t begin, uint64_t end) {
        tracker->ArriveSites(sites.data() + begin, end - begin);
        n += end - begin;
      },
      [&]() {
        return std::pair<double, double>(tracker->EstimateCount(),
                                         static_cast<double>(n));
      });
}

std::vector<Checkpoint> ReplayFrequency(FrequencyTrackerInterface* tracker,
                                        const Workload& workload,
                                        uint64_t query_item,
                                        double checkpoint_factor) {
  uint64_t freq = 0;
  return ReplayImpl(
      workload.size(), checkpoint_factor,
      [&](uint64_t begin, uint64_t end) {
        tracker->ArriveBatch(workload.data() + begin, end - begin);
        for (uint64_t i = begin; i < end; ++i) {
          if (workload[i].key == query_item) ++freq;
        }
      },
      [&]() {
        return std::pair<double, double>(tracker->EstimateFrequency(query_item),
                                         static_cast<double>(freq));
      });
}

std::vector<Checkpoint> ReplayRank(RankTrackerInterface* tracker,
                                   const Workload& workload,
                                   uint64_t query_value,
                                   double checkpoint_factor) {
  uint64_t rank = 0;
  return ReplayImpl(
      workload.size(), checkpoint_factor,
      [&](uint64_t begin, uint64_t end) {
        tracker->ArriveBatch(workload.data() + begin, end - begin);
        for (uint64_t i = begin; i < end; ++i) {
          if (workload[i].key < query_value) ++rank;
        }
      },
      [&]() {
        return std::pair<double, double>(tracker->EstimateRank(query_value),
                                         static_cast<double>(rank));
      });
}

}  // namespace sim
}  // namespace disttrack
