// Replay driver: feeds a recorded workload into a tracker and samples the
// estimate at checkpoints. This is the "cluster" of the simulation — all k
// sites plus the coordinator advance in arrival order, exactly as in the
// instant-communication model of §1.1.

#ifndef DISTTRACK_SIM_CLUSTER_H_
#define DISTTRACK_SIM_CLUSTER_H_

#include <cstdint>
#include <vector>

#include "disttrack/sim/protocol.h"

namespace disttrack {
namespace sim {

/// A full recorded input: the adversary's arrival sequence. (The Arrival
/// struct itself lives in protocol.h next to the ArriveBatch interface.)
using Workload = std::vector<Arrival>;

/// A count-only recorded input: arrivals carry no key, so the compact
/// 2-byte site id per element is the natural record (8x less memory
/// traffic than Workload when replaying the count fast path).
using SiteStream = std::vector<uint16_t>;

/// Estimate-vs-truth sample taken mid-replay.
struct Checkpoint {
  uint64_t n = 0;        ///< ground-truth count at the sample time
  double estimate = 0;   ///< tracker's answer
  double truth = 0;      ///< ground-truth answer to the sampled query
};

/// The geometric checkpoint schedule every replay driver follows: the
/// ascending arrival counts at which an estimate is sampled. A checkpoint
/// lands on the first n with n >= next, where next starts at 1 and
/// becomes n * checkpoint_factor after each checkpoint; the final element
/// is always `total` (a single n = 0 entry when the workload is empty).
/// Shared by the serial Replay* drivers and sim::ParallelCluster so both
/// sample at identical points. Aborts if checkpoint_factor <= 1.
std::vector<uint64_t> CheckpointCounts(uint64_t total,
                                       double checkpoint_factor);

/// Push schedule for the online sessions (sim/online.h): the ascending
/// cut positions splitting [0, total) into pushes of at most `max_push`
/// arrivals that ALSO cut at every entry of `checkpoints` (ascending,
/// e.g. CheckpointCounts output). Cutting at the checkpoints keeps
/// estimate reads between pushes and lines the rank tracker's per-site
/// run cuts up with the serial checkpoint replay, so online-vs-replay
/// comparisons stay bit-identical (see sim/online.h). The final entry is
/// always `total`; empty when total == 0. Aborts if max_push == 0.
std::vector<uint64_t> PushBoundaries(uint64_t total, uint64_t max_push,
                                     const std::vector<uint64_t>& checkpoints);

/// Replays a count workload, sampling EstimateCount() every time n grows by
/// `checkpoint_factor` (>1) past the previous checkpoint, and once at the
/// end. Returns the checkpoints in order.
///
/// Arrivals between checkpoints are delivered through ArriveBatch, so a
/// tracker pays one virtual dispatch per checkpoint interval, not per
/// element. All Replay* drivers abort with a diagnostic if
/// `checkpoint_factor` <= 1.0 (such a schedule would checkpoint after
/// every element forever; the old behavior of silently substituting 1.5
/// masked caller bugs).
std::vector<Checkpoint> ReplayCount(CountTrackerInterface* tracker,
                                    const Workload& workload,
                                    double checkpoint_factor = 1.5);

/// ReplayCount over a compact site stream (delivered via ArriveSites).
std::vector<Checkpoint> ReplayCountSites(CountTrackerInterface* tracker,
                                         const SiteStream& sites,
                                         double checkpoint_factor = 1.5);

/// Replays a frequency workload, sampling EstimateFrequency(query_item) on
/// the same geometric schedule.
std::vector<Checkpoint> ReplayFrequency(FrequencyTrackerInterface* tracker,
                                        const Workload& workload,
                                        uint64_t query_item,
                                        double checkpoint_factor = 1.5);

/// Replays a rank workload, sampling EstimateRank(query_value) on the same
/// geometric schedule. `truth` at each checkpoint is the exact rank of
/// query_value among the elements delivered so far.
std::vector<Checkpoint> ReplayRank(RankTrackerInterface* tracker,
                                   const Workload& workload,
                                   uint64_t query_value,
                                   double checkpoint_factor = 1.5);

}  // namespace sim
}  // namespace disttrack

#endif  // DISTTRACK_SIM_CLUSTER_H_
