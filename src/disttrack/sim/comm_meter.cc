#include "disttrack/sim/comm_meter.h"

#include <algorithm>

namespace disttrack {
namespace sim {

CommMeter::CommMeter(int num_sites)
    : num_sites_(num_sites),
      site_upload_messages_(static_cast<size_t>(std::max(num_sites, 0)), 0) {}

void CommMeter::RecordUpload(int site, uint64_t words) {
  uploads_.messages += 1;
  uploads_.words += std::max<uint64_t>(1, words);
  if (site >= 0 && site < num_sites_) {
    site_upload_messages_[static_cast<size_t>(site)] += 1;
  }
}

void CommMeter::RecordUploadBulk(int site, uint64_t messages,
                                 uint64_t words) {
  uploads_.messages += messages;
  uploads_.words += words;
  if (site >= 0 && site < num_sites_) {
    site_upload_messages_[static_cast<size_t>(site)] += messages;
  }
}

void CommMeter::RecordDownload(int /*site*/, uint64_t words) {
  downloads_.messages += 1;
  downloads_.words += std::max<uint64_t>(1, words);
}

void CommMeter::RecordBroadcast(uint64_t words) {
  broadcast_count_ += 1;
  downloads_.messages += static_cast<uint64_t>(num_sites_);
  downloads_.words +=
      static_cast<uint64_t>(num_sites_) * std::max<uint64_t>(1, words);
}

void CommMeter::RecordWireFrame(uint64_t bytes) {
  wire_.frames += 1;
  wire_.bytes += bytes;
}

void CommMeter::RecordRetransmit(uint64_t bytes) {
  retransmit_.frames += 1;
  retransmit_.bytes += bytes;
}

void CommMeter::RecordWireOverhead(uint64_t bytes) {
  wire_overhead_.frames += 1;
  wire_overhead_.bytes += bytes;
}

uint64_t CommMeter::TotalMessages() const {
  return uploads_.messages + downloads_.messages;
}

uint64_t CommMeter::TotalWords() const {
  return uploads_.words + downloads_.words;
}

uint64_t CommMeter::SiteUploadMessages(int site) const {
  if (site < 0 || site >= num_sites_) return 0;
  return site_upload_messages_[static_cast<size_t>(site)];
}

void CommMeter::MergeFrom(const CommMeter& other) {
  uploads_.messages += other.uploads_.messages;
  uploads_.words += other.uploads_.words;
  downloads_.messages += other.downloads_.messages;
  downloads_.words += other.downloads_.words;
  wire_.frames += other.wire_.frames;
  wire_.bytes += other.wire_.bytes;
  retransmit_.frames += other.retransmit_.frames;
  retransmit_.bytes += other.retransmit_.bytes;
  wire_overhead_.frames += other.wire_overhead_.frames;
  wire_overhead_.bytes += other.wire_overhead_.bytes;
  broadcast_count_ += other.broadcast_count_;
  size_t shared =
      std::min(site_upload_messages_.size(), other.site_upload_messages_.size());
  for (size_t i = 0; i < shared; ++i) {
    site_upload_messages_[i] += other.site_upload_messages_[i];
  }
}

void CommMeter::Reset() {
  uploads_ = TrafficTally{};
  downloads_ = TrafficTally{};
  wire_ = WireTally{};
  retransmit_ = WireTally{};
  wire_overhead_ = WireTally{};
  broadcast_count_ = 0;
  std::fill(site_upload_messages_.begin(), site_upload_messages_.end(), 0);
}

}  // namespace sim
}  // namespace disttrack
