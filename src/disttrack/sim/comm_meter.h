// Communication accounting for the distributed tracking model (paper §1.1).
//
// The model charges by messages and words: any integer < N or stream element
// is one word, and a broadcast from the coordinator to all k sites costs k
// messages. Every protocol routes its traffic through a CommMeter so that
// the experiment harnesses measure exactly the quantity the paper bounds.

#ifndef DISTTRACK_SIM_COMM_METER_H_
#define DISTTRACK_SIM_COMM_METER_H_

#include <cstdint>
#include <vector>

namespace disttrack {
namespace sim {

/// Tallies of one direction of traffic.
struct TrafficTally {
  uint64_t messages = 0;
  uint64_t words = 0;
};

/// Tallies of framed wire traffic (sim/wire.h). Separate from the paper's
/// message/word tallies: frames carry headers, CRCs, acks, and
/// retransmissions the §1.1 model does not charge, so the wire channels
/// keep the paper-comparable numbers clean under fault injection.
struct WireTally {
  uint64_t frames = 0;
  uint64_t bytes = 0;
};

/// Meters all traffic between the coordinator and the k sites.
///
/// Word counts follow §1.1: a counter value, an element, a probability
/// level, etc. each cost one word; a message carrying w payload words is
/// charged w words and one message (empty control messages charge one
/// message, zero words... we charge max(1, payload) words so that "pure
/// signal" messages are not free in word terms either).
class CommMeter {
 public:
  explicit CommMeter(int num_sites);

  /// Site -> coordinator message with `words` payload words.
  void RecordUpload(int site, uint64_t words);

  /// `messages` site -> coordinator messages carrying `words` charged
  /// words in total. Used by the shard-ingest barriers to fold a whole
  /// epoch's deferred per-site charges in one call; the caller applies
  /// the max(1, payload)-per-message rule when accumulating.
  void RecordUploadBulk(int site, uint64_t messages, uint64_t words);

  /// Coordinator -> single site message with `words` payload words.
  void RecordDownload(int site, uint64_t words);

  /// Coordinator -> all sites. Charged `num_sites` messages and
  /// `num_sites * words` words, per §1.1 ("broadcasting a message costs k
  /// times the communication for a single message").
  void RecordBroadcast(uint64_t words);

  /// Total messages across both directions, including broadcast fan-out.
  uint64_t TotalMessages() const;

  /// Total words across both directions, including broadcast fan-out.
  uint64_t TotalWords() const;

  /// Direction-level tallies.
  const TrafficTally& uploads() const { return uploads_; }
  const TrafficTally& downloads() const { return downloads_; }

  /// Number of RecordBroadcast calls (before fan-out multiplication).
  uint64_t broadcast_count() const { return broadcast_count_; }

  /// First transmission of a framed data message (either direction).
  void RecordWireFrame(uint64_t bytes);

  /// Retransmission of a framed data message: sender backoff resends,
  /// fault-injected duplicates, and coordinator-restart re-sends all land
  /// here so the first-transmission channel stays paper-comparable.
  void RecordRetransmit(uint64_t bytes);

  /// Transport control frames (acks, hello) — pure overhead of the
  /// reliability layer, charged to neither data channel.
  void RecordWireOverhead(uint64_t bytes);

  const WireTally& wire() const { return wire_; }
  const WireTally& retransmit() const { return retransmit_; }
  const WireTally& wire_overhead() const { return wire_overhead_; }

  /// Convenience for the satellite accounting tests.
  uint64_t retransmit_bytes() const { return retransmit_.bytes; }

  /// Per-site upload message counts (used by skew experiments).
  uint64_t SiteUploadMessages(int site) const;

  int num_sites() const { return num_sites_; }

  /// Zeroes every tally.
  void Reset();

  /// Adds every tally of `other` into this meter (used by boosters that run
  /// several independent protocol copies and report combined traffic).
  void MergeFrom(const CommMeter& other);

 private:
  int num_sites_;
  TrafficTally uploads_;
  TrafficTally downloads_;
  WireTally wire_;
  WireTally retransmit_;
  WireTally wire_overhead_;
  uint64_t broadcast_count_ = 0;
  std::vector<uint64_t> site_upload_messages_;
};

}  // namespace sim
}  // namespace disttrack

#endif  // DISTTRACK_SIM_COMM_METER_H_
