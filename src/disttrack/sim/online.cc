#include "disttrack/sim/online.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace disttrack {
namespace sim {

namespace {

// Upper bound on one internally processed chunk: SiteGrouper histograms
// and span lengths are 32-bit, so oversized pushes are sliced before
// grouping (slicing only adds run cuts at the slice boundaries, which is
// the documented push-boundary semantics anyway).
constexpr size_t kMaxChunk = size_t{1} << 30;

}  // namespace

// --------------------------------------------------------------------------
// OnlineCountSession

OnlineCountSession::OnlineCountSession(ParallelCluster* cluster,
                                       CountTrackerInterface* tracker)
    : cluster_(cluster),
      tracker_(tracker),
      ingest_(tracker->shard_ingest()),
      num_sites_(tracker->meter().num_sites()) {
  if (ingest_ != nullptr && !ingest_->ShardOnlineReady()) ingest_ = nullptr;
  if (ingest_ != nullptr) {
    snapshots_.resize(static_cast<size_t>(num_sites_));
  }
}

void OnlineCountSession::PushSites(const uint16_t* sites, size_t count) {
  if (count == 0) return;
  if (ingest_ == nullptr) {
    tracker_->ArriveSites(sites, count);
    return;
  }
  cluster_->replay_threads_ =
      cluster_->auto_threads_ ? std::min(cluster_->threads_, num_sites_)
                              : cluster_->threads_;
  while (count > 0) {
    size_t len = std::min(count, kMaxChunk);
    // Speculate: snapshot the touched sites, run the push as one shard
    // epoch, and let the trial fold decide whether it was broadcast-free
    // (it almost always is — broadcasts are O(k logN) over the whole
    // stream).
    grouper_.CountSites(sites, len, num_sites_);
    const std::vector<SiteGrouper::Span>& spans = grouper_.spans();
    for (const SiteGrouper::Span& span : spans) {
      ingest_->ShardSnapshotSite(span.site,
                                 &snapshots_[static_cast<size_t>(span.site)]);
    }
    ingest_->ShardEpochBegin(len);
    cluster_->RunEpochTasks(
        static_cast<int>(spans.size()), len, [&](int task) {
          const SiteGrouper::Span& span = spans[static_cast<size_t>(task)];
          ingest_->ShardArriveRun(span.site, span.length);
        });
    if (!ingest_->ShardTryEpochEnd()) {
      // The push would broadcast. Unwind the speculation — restore every
      // touched site's private state (counters, skip countdown, RNG,
      // coarse half), drop the sinks, rewind the truth advance — and
      // re-deliver the push serially, where reports and the broadcast
      // ritual run exactly as the reference execution.
      for (const SiteGrouper::Span& span : spans) {
        ingest_->ShardRestoreSite(span.site,
                                  snapshots_[static_cast<size_t>(span.site)]);
      }
      ingest_->ShardAbortEpoch(len);
      ++rollbacks_;
      tracker_->ArriveSites(sites, len);
    }
    sites += len;
    count -= len;
  }
}

// --------------------------------------------------------------------------
// OnlineKeyedSession

OnlineKeyedSession::OnlineKeyedSession(ParallelCluster* cluster,
                                       FrequencyTrackerInterface* tracker)
    : cluster_(cluster),
      frequency_(tracker),
      ingest_(tracker->shard_ingest()),
      num_sites_(tracker->meter().num_sites()) {
  coarse_ = ingest_ != nullptr ? ingest_->shard_coarse() : nullptr;
  if (coarse_ == nullptr) ingest_ = nullptr;
  if (ingest_ != nullptr) certifier_.Reset(*coarse_);
}

OnlineKeyedSession::OnlineKeyedSession(ParallelCluster* cluster,
                                       RankTrackerInterface* tracker)
    : cluster_(cluster),
      rank_(tracker),
      ingest_(tracker->shard_ingest()),
      num_sites_(tracker->meter().num_sites()) {
  coarse_ = ingest_ != nullptr ? ingest_->shard_coarse() : nullptr;
  if (coarse_ == nullptr) ingest_ = nullptr;
  if (ingest_ != nullptr) certifier_.Reset(*coarse_);
}

void OnlineKeyedSession::SerialArrive(int site, uint64_t key) {
  if (frequency_ != nullptr) {
    frequency_->Arrive(site, key);
  } else {
    rank_->Arrive(site, key);
  }
}

void OnlineKeyedSession::SerialBatch(const Arrival* arrivals, size_t count) {
  if (frequency_ != nullptr) {
    frequency_->ArriveBatch(arrivals, count);
  } else {
    rank_->ArriveBatch(arrivals, count);
  }
}

// disttrack-lint: allow(site-check) -- both branches validate downstream:
// the serial fallback enters the tracker's ArriveBatch (which checks),
// and PushImpl routes every chunk through SiteGrouper::ScatterBySite.
void OnlineKeyedSession::Push(const Arrival* arrivals, size_t count) {
  if (count == 0) return;
  if (ingest_ == nullptr) {
    SerialBatch(arrivals, count);
    return;
  }
  cluster_->replay_threads_ =
      cluster_->auto_threads_ ? std::min(cluster_->threads_, num_sites_)
                              : cluster_->threads_;
  while (count > 0) {
    size_t len = std::min(count, kMaxChunk);
    PushImpl(arrivals, len);
    arrivals += len;
    count -= len;
  }
}

void OnlineKeyedSession::PushImpl(const Arrival* arrivals, size_t count) {
  while (count > 0) {
    // ScatterBySite also validates site ids (abort on out-of-range),
    // upholding the shared delivery-path contract.
    grouper_.ScatterBySite(arrivals, count, num_sites_);
    if (certifier_.ExtendByHistogram(grouper_.histogram())) {
      // Certified broadcast-free: the whole remainder extends the open
      // epoch. Sinks keep accumulating — no barrier until a broadcast or
      // a Sync(), so consecutive certified pushes never stall the pool.
      ingest_->ShardEpochBegin(count);
      epoch_open_ = true;
      const std::vector<SiteGrouper::Span>& spans = grouper_.spans();
      cluster_->RunEpochTasks(
          static_cast<int>(spans.size()), count, [&](int task) {
            const SiteGrouper::Span& span = spans[static_cast<size_t>(task)];
            ingest_->ShardArriveRun(span.site, span.data, nullptr,
                                    span.length);
          });
      return;
    }
    // The chunk broadcasts somewhere. Locate the exact arrival by
    // replaying the coordinator law on the projected state, ingest the
    // certified prefix as the epoch's final extension, fold, deliver the
    // broadcast arrival serially (ritual/round logic unchanged), and
    // start a fresh epoch on the remainder.
    size_t boundary = certifier_.CommitUntilBroadcast(arrivals, count);
    if (boundary >= count) {
      std::fprintf(stderr,
                   "OnlineKeyedSession: refused chunk has no broadcast "
                   "arrival — the certifier is inconsistent\n");
      std::abort();
    }
    if (boundary > 0) {
      grouper_.ScatterBySite(arrivals, boundary, num_sites_);
      ingest_->ShardEpochBegin(boundary);
      epoch_open_ = true;
      const std::vector<SiteGrouper::Span>& spans = grouper_.spans();
      cluster_->RunEpochTasks(
          static_cast<int>(spans.size()), boundary, [&](int task) {
            const SiteGrouper::Span& span = spans[static_cast<size_t>(task)];
            ingest_->ShardArriveRun(span.site, span.data, nullptr,
                                    span.length);
          });
    }
    if (epoch_open_) {
      ingest_->ShardEpochEnd();
      epoch_open_ = false;
    }
    SerialArrive(arrivals[boundary].site, arrivals[boundary].key);
    ++epoch_splits_;
    certifier_.Reset(*coarse_);
    arrivals += boundary + 1;
    count -= boundary + 1;
  }
}

void OnlineKeyedSession::Sync() {
  if (!epoch_open_) return;
  ingest_->ShardEpochEnd();
  epoch_open_ = false;
}

}  // namespace sim
}  // namespace disttrack
