// Online parallel ingest: live streaming without the replay plan pass.
//
// sim::ParallelCluster is a *replay* engine — its coordinator pre-pass
// needs the entire workload up front to place every broadcast on an
// epoch boundary. The paper's model (§1.1) has no such luxury: sites
// observe arrivals as they happen. The sessions below serve that case.
// Arrivals are pushed in chunks of any size, with NO workload
// pre-knowledge, and the broadcast schedule is discovered on the fly:
//
//   OnlineCountSession   speculate-and-certify-after. Every push runs as
//     its own shard epoch on the worker pool; the trial fold
//     (CountShardIngest::ShardTryEpochEnd) then checks — exactly, from
//     the buffered coarse deltas alone — whether the push would have
//     broadcast. Almost every push cannot (broadcasts are O(k logN) in
//     total) and folds normally; a push that would broadcast is unwound
//     via the per-site snapshots taken before the speculation (PR 6's
//     crash-recovery serialization) and re-delivered serially, where the
//     broadcast machinery runs unchanged. Estimates are current after
//     every push.
//
//   OnlineKeyedSession   certify-ahead with a rolling epoch. Keyed sites
//     cannot snapshot mid-run (rank's leaf machinery) — so instead of
//     speculating, each push is first certified against a
//     count::EpochCertifier: the rolling extension of
//     CoarseTracker::BatchCannotBroadcast over per-site running totals.
//     A certified push joins the OPEN epoch (sinks keep accumulating
//     across pushes; no barrier per push); a refused push is split at
//     the exact broadcast arrival — found by replaying the coordinator
//     law on the certifier's projected state — into a final certified
//     extension, a fold, the serial delivery of the broadcast arrival,
//     and a fresh epoch. Estimates require a Sync() (epoch barrier)
//     first.
//
// Determinism: both sessions are bit-identical to delivering the same
// pushes through the serial ArriveBatch/ArriveSites drivers, at every
// thread count — the same invariants the replay engine is pinned by
// (per-site RNG streams consumed at per-site offsets, broadcasts on
// boundaries, order-insensitive sink folds). For the rank tracker the
// usual caveat applies: batched compaction is distribution-equivalent
// (not bit-equal) across different PUSH BOUNDARIES, because push
// boundaries cut per-site runs; identical push boundaries give identical
// bits (pinned by tests/parallel_cluster_test.cc, with the KS tier
// covering boundary-insensitive equivalence).
//
// Trackers without shard support (per-arrival coin paths, deterministic
// baselines, the sampling tracker) transparently fall back to serial
// delivery — still a correct online execution, just unsharded
// (sharded() reports which engine runs).

#ifndef DISTTRACK_SIM_ONLINE_H_
#define DISTTRACK_SIM_ONLINE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "disttrack/common/site_group.h"
#include "disttrack/count/coarse_tracker.h"
#include "disttrack/sim/cluster.h"
#include "disttrack/sim/parallel_cluster.h"
#include "disttrack/sim/protocol.h"

namespace disttrack {
namespace sim {

/// Streaming ingest for a count tracker. Borrows `cluster`'s worker pool
/// (neither is owned; both must outlive the session; drive everything
/// from one thread). Estimates are current after every push.
class OnlineCountSession {
 public:
  OnlineCountSession(ParallelCluster* cluster, CountTrackerInterface* tracker);

  /// Delivers `count` arrivals (site ids, stream order) — one shard
  /// epoch on the pool, or serial fallback. Aborts on out-of-range ids.
  void PushSites(const uint16_t* sites, size_t count);
  void PushSites(const SiteStream& sites) {
    PushSites(sites.data(), sites.size());
  }

  /// True when pushes run the sharded engine (false: serial fallback).
  bool sharded() const { return ingest_ != nullptr; }

  /// Pushes unwound and re-delivered serially because they broadcast
  /// (diagnostics; grows O(k logN) over a session's lifetime).
  uint64_t rollbacks() const { return rollbacks_; }

 private:
  ParallelCluster* cluster_;
  CountTrackerInterface* tracker_;
  CountShardIngest* ingest_;  // null = serial fallback
  SiteGrouper grouper_;
  std::vector<std::vector<uint64_t>> snapshots_;  // pooled, indexed by site
  uint64_t rollbacks_ = 0;
  int num_sites_;
};

/// Streaming ingest for a keyed (frequency or rank) tracker. Pushes
/// extend a rolling shard epoch; call Sync() before reading estimates.
class OnlineKeyedSession {
 public:
  OnlineKeyedSession(ParallelCluster* cluster,
                     FrequencyTrackerInterface* tracker);
  OnlineKeyedSession(ParallelCluster* cluster, RankTrackerInterface* tracker);

  /// Delivers `count` keyed arrivals in stream order. Aborts on
  /// out-of-range site ids.
  void Push(const Arrival* arrivals, size_t count);
  void Push(const Workload& workload) {
    Push(workload.data(), workload.size());
  }

  /// Epoch barrier: folds the open epoch so estimates may be read.
  /// Cheap when nothing is open; pushing may resume afterwards.
  void Sync();

  /// True when pushes run the sharded engine (false: serial fallback).
  bool sharded() const { return ingest_ != nullptr; }

  /// Broadcast arrivals located and delivered serially mid-push
  /// (diagnostics; equals the tracker's round count gained under this
  /// session when every arrival flows through it).
  uint64_t epoch_splits() const { return epoch_splits_; }

 private:
  // The tracker-agnostic core; `serial_arrive` / `serial_batch` bind the
  // concrete interface's delivery entry points.
  void PushImpl(const Arrival* arrivals, size_t count);
  void SerialArrive(int site, uint64_t key);
  void SerialBatch(const Arrival* arrivals, size_t count);

  ParallelCluster* cluster_;
  FrequencyTrackerInterface* frequency_ = nullptr;
  RankTrackerInterface* rank_ = nullptr;
  KeyedShardIngest* ingest_;          // null = serial fallback
  count::CoarseTracker* coarse_ = nullptr;
  count::EpochCertifier certifier_;
  SiteGrouper grouper_;
  bool epoch_open_ = false;
  uint64_t epoch_splits_ = 0;
  int num_sites_;
};

}  // namespace sim
}  // namespace disttrack

#endif  // DISTTRACK_SIM_ONLINE_H_
