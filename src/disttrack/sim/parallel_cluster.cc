#include "disttrack/sim/parallel_cluster.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <thread>

namespace disttrack {
namespace sim {

// ------------------------------------------------------------ worker pool

// threads_ - 1 persistent workers plus the calling thread; tasks are
// handed out via an atomic cursor, and the start/done hand-offs go
// through one mutex + two condvars, which also establishes the
// happens-before edges the epoch barriers rely on.
class ParallelCluster::Pool {
 public:
  explicit Pool(int workers) {
    threads_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_start_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  void Run(int num_tasks, const std::function<void(int)>& fn) {
    if (num_tasks <= 0) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      fn_ = &fn;
      num_tasks_ = num_tasks;
      next_task_.store(0, std::memory_order_relaxed);
      active_ = static_cast<int>(threads_.size());
      ++generation_;
    }
    cv_start_.notify_all();
    Drain(fn, num_tasks);
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return active_ == 0; });
    fn_ = nullptr;
  }

 private:
  void Drain(const std::function<void(int)>& fn, int num_tasks) {
    for (;;) {
      int task = next_task_.fetch_add(1, std::memory_order_relaxed);
      if (task >= num_tasks) break;
      fn(task);
    }
  }

  void WorkerLoop() {
    uint64_t seen = 0;
    for (;;) {
      const std::function<void(int)>* fn = nullptr;
      int num_tasks = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_start_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
        if (shutdown_) return;
        seen = generation_;
        fn = fn_;
        num_tasks = num_tasks_;
      }
      Drain(*fn, num_tasks);
      {
        std::lock_guard<std::mutex> lock(mu_);
        --active_;
      }
      cv_done_.notify_one();
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* fn_ = nullptr;
  std::atomic<int> next_task_{0};
  int num_tasks_ = 0;
  int active_ = 0;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
};

// ------------------------------------------------------------------- plan

// The coordinator-only pre-pass product: every epoch boundary, the
// per-site slice offsets at each boundary, the per-site key shards, and
// the ground-truth curve. Owned as reusable scratch by the cluster so
// steady-state replays plan without allocating.
struct ParallelCluster::Plan {
  // One epoch barrier. `pos` is a global arrival index for broadcast
  // stops (the arrival at `pos` is delivered serially after the barrier)
  // and an arrival count for checkpoint stops (sample once `pos` arrivals
  // are in). boundary_site >= 0 identifies a broadcast stop.
  struct Stop {
    uint64_t pos = 0;
    int boundary_site = -1;
  };
  int num_sites = 0;
  uint64_t total = 0;
  std::vector<Stop> stops;
  // Row b: for each site, its arrival count among global indices
  // [0, stops[b].pos) — the slice end of the epoch closing at stop b.
  std::vector<uint64_t> snapshots;
  std::vector<uint64_t> site_total;
  // Ground truth at each checkpoint stop, in stop order (count replays
  // use the arrival count itself and leave this empty).
  std::vector<double> checkpoint_truth;
  // Per-site shards (keyed replays only): the site's arrivals in stream
  // order, plus their global indices when the ingest asks for them.
  std::vector<std::vector<uint64_t>> site_keys;
  std::vector<std::vector<uint32_t>> site_indices;

  // Sliced-count-planner scratch, pooled with the plan so steady-state
  // multi-threaded count replays do not allocate either.
  struct ReportEvent {
    uint64_t pos;
    uint64_t ordinal;
    int site;
  };
  std::vector<uint64_t> slice_hist;
  std::vector<uint64_t> slice_start;
  std::vector<std::vector<ReportEvent>> slice_events;
  std::vector<std::pair<size_t, size_t>> stop_runs;
  // Sliced-keyed-planner scratch (per-slice truth tallies and their
  // prefix, plus each stop's checkpoint ordinal).
  std::vector<uint64_t> slice_truth;
  std::vector<uint64_t> slice_truth_start;
  std::vector<int> stop_ckpt;

  void Reset(int k) {
    num_sites = k;
    total = 0;
    stops.clear();
    snapshots.clear();
    site_total.assign(static_cast<size_t>(k), 0);
    checkpoint_truth.clear();
    if (site_keys.size() != static_cast<size_t>(k)) {
      site_keys.resize(static_cast<size_t>(k));
      site_indices.resize(static_cast<size_t>(k));
    }
    for (auto& v : site_keys) v.clear();
    for (auto& v : site_indices) v.clear();
  }
};

namespace {

void CheckShardableSize(uint64_t total) {
  if (total > std::numeric_limits<uint32_t>::max()) {
    std::fprintf(stderr,
                 "ParallelCluster: workload of %llu elements exceeds the "
                 "32-bit global-index limit of the shard planner\n",
                 static_cast<unsigned long long>(total));
    std::abort();
  }
}

// The CoarseTracker coordinator evolution every randomized tracker
// drives, reduced to its deterministic skeleton: a site's report fires
// on its 2^j-th arrival and carries n' delta 2^(j-1) (1 for the first),
// and a report whose delta tips n' past max(1, 2 n̄) broadcasts.
uint64_t CoarseReportDelta(uint64_t ordinal) {
  return ordinal == 1 ? 1 : ordinal / 2;
}

// Smallest power-of-two report ordinal strictly greater than `count`.
uint64_t NextReportOrdinal(uint64_t count) {
  if (count == 0) return 1;
  return uint64_t{1} << (64 - __builtin_clzll(count));
}

}  // namespace

ParallelCluster::Plan* ParallelCluster::PreparePlan(int num_sites) {
  if (plan_scratch_ == nullptr) plan_scratch_ = std::make_unique<Plan>();
  plan_scratch_->Reset(num_sites);
  return plan_scratch_.get();
}

// The shared serial coordinator walk: replicates the CoarseTracker
// evolution exactly (no randomness is involved, so the broadcast arrival
// indices — the points where coordinator state feeds back into every
// site — are known before replay starts) and snapshots per-site counts
// at every stop. `at_checkpoint` fires right after a checkpoint stop is
// recorded; `per_arrival(i, site)` fires for every arrival in order.
template <typename SiteAt, typename AtCheckpoint, typename PerArrival>
void ParallelCluster::CoordinatorWalk(SiteAt site_at, uint64_t total,
                                      int num_sites,
                                      double checkpoint_factor, Plan* plan,
                                      AtCheckpoint at_checkpoint,
                                      PerArrival per_arrival) {
  std::vector<uint64_t> checkpoints =
      CheckpointCounts(total, checkpoint_factor);
  size_t next_checkpoint = 0;
  plan->total = total;
  size_t k = static_cast<size_t>(num_sites);
  std::vector<uint64_t> count(k, 0);
  std::vector<uint64_t> next_report(k, 1);
  std::vector<uint64_t> last_reported(k, 0);
  uint64_t n_prime = 0;
  uint64_t n_bar = 0;

  auto snapshot = [&] {
    plan->snapshots.insert(plan->snapshots.end(), count.begin(), count.end());
  };

  for (uint64_t i = 0; i <= total; ++i) {
    if (next_checkpoint < checkpoints.size() &&
        checkpoints[next_checkpoint] == i) {
      plan->stops.push_back(Plan::Stop{i, -1});
      snapshot();
      at_checkpoint();
      ++next_checkpoint;
    }
    if (i == total) break;
    int site = site_at(i);
    CheckSiteInRange(site, num_sites);
    size_t s = static_cast<size_t>(site);
    if (count[s] + 1 >= next_report[s]) {
      // This arrival makes the site report; does the report broadcast?
      uint64_t reported = count[s] + 1;
      uint64_t delta = reported - last_reported[s];
      if (n_prime + delta >= std::max<uint64_t>(1, 2 * n_bar)) {
        // Broadcast: the epoch ends here, before this arrival.
        plan->stops.push_back(Plan::Stop{i, site});
        snapshot();
        n_bar = n_prime + delta;
      }
      n_prime += delta;
      last_reported[s] = reported;
      next_report[s] = reported * 2;
    }
    ++count[s];
    per_arrival(i, site);
  }
  plan->site_total = std::move(count);
}

// Fused single-pass count planner: the coordinator walk with no
// per-arrival payload.
template <typename SiteAt>
void ParallelCluster::BuildCountPlanSerial(SiteAt site_at, uint64_t total,
                                           int num_sites,
                                           double checkpoint_factor,
                                           Plan* plan) {
  CoordinatorWalk(site_at, total, num_sites, checkpoint_factor, plan,
                  [] {}, [](uint64_t, int) {});
}

// Sliced parallel count planner: the identical plan from two short
// parallel passes (per-slice site histograms, then exact report
// positions given each slice's start counts), a tiny serial walk over
// the ~k log(n/k) report events, and one parallel partial scan per
// stop-bearing slice for the snapshots. Without this, the serial
// coordinator pre-pass is the Amdahl bottleneck of the count replay
// (whose epoch work is event-driven and near-free).
template <typename SiteAt>
void ParallelCluster::BuildCountPlanSliced(SiteAt site_at, uint64_t total,
                                           int num_sites,
                                           double checkpoint_factor,
                                           Plan* plan) {
  std::vector<uint64_t> checkpoints =
      CheckpointCounts(total, checkpoint_factor);
  plan->total = total;
  size_t k = static_cast<size_t>(num_sites);
  int num_slices = std::max(1, replay_threads_ * 8);
  uint64_t slice_len =
      std::max<uint64_t>(1, (total + num_slices - 1) / num_slices);
  num_slices = static_cast<int>((total + slice_len - 1) / slice_len);
  if (num_slices == 0) num_slices = 1;
  auto slice_begin = [&](int j) {
    return std::min(total, static_cast<uint64_t>(j) * slice_len);
  };

  // Pass A (parallel): per-slice site histograms, with validation.
  std::vector<uint64_t>& hist = plan->slice_hist;
  hist.assign(static_cast<size_t>(num_slices) * k, 0);
  RunTasks(num_slices, [&](int j) {
    uint64_t* h = hist.data() + static_cast<size_t>(j) * k;
    uint64_t end = slice_begin(j + 1);
    for (uint64_t i = slice_begin(j); i < end; ++i) {
      int site = site_at(i);
      CheckSiteInRange(site, num_sites);
      ++h[static_cast<size_t>(site)];
    }
  });
  // Exclusive prefix over slices: start[j*k + s] = site s's count before
  // slice j.
  std::vector<uint64_t>& start = plan->slice_start;
  start.assign(static_cast<size_t>(num_slices) * k, 0);
  for (int j = 1; j < num_slices; ++j) {
    const uint64_t* prev_start = start.data() + static_cast<size_t>(j - 1) * k;
    const uint64_t* prev_hist = hist.data() + static_cast<size_t>(j - 1) * k;
    uint64_t* cur = start.data() + static_cast<size_t>(j) * k;
    for (size_t s = 0; s < k; ++s) cur[s] = prev_start[s] + prev_hist[s];
  }
  for (size_t s = 0; s < k; ++s) {
    size_t last = static_cast<size_t>(num_slices - 1) * k + s;
    plan->site_total[s] = start[last] + hist[last];
  }

  // Pass B (parallel): exact global positions of every coarse report
  // (each site's 2^j-th arrival). Slice-local event lists concatenate
  // into a globally index-sorted sequence.
  using ReportEvent = Plan::ReportEvent;
  std::vector<std::vector<ReportEvent>>& slice_events = plan->slice_events;
  if (slice_events.size() < static_cast<size_t>(num_slices)) {
    slice_events.resize(static_cast<size_t>(num_slices));
  }
  for (auto& v : slice_events) v.clear();
  RunTasks(num_slices, [&](int j) {
    std::vector<uint64_t> cnt(start.begin() + static_cast<size_t>(j) * k,
                              start.begin() + static_cast<size_t>(j) * k + k);
    std::vector<uint64_t> target(k);
    for (size_t s = 0; s < k; ++s) target[s] = NextReportOrdinal(cnt[s]);
    auto& events = slice_events[static_cast<size_t>(j)];
    uint64_t end = slice_begin(j + 1);
    for (uint64_t i = slice_begin(j); i < end; ++i) {
      size_t s = static_cast<size_t>(site_at(i));
      if (++cnt[s] == target[s]) {
        events.push_back(ReportEvent{i, cnt[s], static_cast<int>(s)});
        target[s] *= 2;
      }
    }
  });

  // Serial walk of the event sequence: replicate the broadcast condition
  // and merge in the checkpoint schedule (a checkpoint at count c
  // samples before arrival c is delivered, so it precedes a broadcast
  // whose arrival index equals c).
  size_t next_checkpoint = 0;
  uint64_t n_prime = 0;
  uint64_t n_bar = 0;
  auto flush_checkpoints_through = [&](uint64_t pos) {
    while (next_checkpoint < checkpoints.size() &&
           checkpoints[next_checkpoint] <= pos) {
      plan->stops.push_back(Plan::Stop{checkpoints[next_checkpoint], -1});
      ++next_checkpoint;
    }
  };
  for (int j = 0; j < num_slices; ++j) {
    for (const ReportEvent& ev : slice_events[static_cast<size_t>(j)]) {
      uint64_t delta = CoarseReportDelta(ev.ordinal);
      if (n_prime + delta >= std::max<uint64_t>(1, 2 * n_bar)) {
        flush_checkpoints_through(ev.pos);
        plan->stops.push_back(Plan::Stop{ev.pos, ev.site});
        n_bar = n_prime + delta;
      }
      n_prime += delta;
    }
  }
  flush_checkpoints_through(total);

  // Snapshots (parallel): group stops by the slice containing their
  // position; each stop-bearing slice is scanned once, resolving all its
  // stops in order. Rows are preallocated, so workers write disjoint
  // ranges.
  plan->snapshots.assign(plan->stops.size() * k, 0);
  std::vector<std::pair<size_t, size_t>>& runs = plan->stop_runs;
  runs.clear();  // stop-index ranges
  auto slice_of = [&](uint64_t pos) {
    return pos >= total ? num_slices - 1 : static_cast<int>(pos / slice_len);
  };
  for (size_t b = 0; b < plan->stops.size();) {
    size_t e = b + 1;
    while (e < plan->stops.size() &&
           slice_of(plan->stops[e].pos) == slice_of(plan->stops[b].pos)) {
      ++e;
    }
    runs.emplace_back(b, e);
    b = e;
  }
  RunTasks(static_cast<int>(runs.size()), [&](int r) {
    auto [b_begin, b_end] = runs[static_cast<size_t>(r)];
    int j = slice_of(plan->stops[b_begin].pos);
    std::vector<uint64_t> cnt(start.begin() + static_cast<size_t>(j) * k,
                              start.begin() + static_cast<size_t>(j) * k + k);
    uint64_t i = slice_begin(j);
    for (size_t b = b_begin; b < b_end; ++b) {
      uint64_t pos = plan->stops[b].pos;
      for (; i < pos; ++i) {
        ++cnt[static_cast<size_t>(site_at(i))];
      }
      std::copy(cnt.begin(), cnt.end(), plan->snapshots.begin() + b * k);
    }
  });
}

// Fused single-pass keyed planner: the coordinator walk, with each
// arrival also scattered into its site's key shard (plus its global
// index when the ingest wants it) and folded into the truth curve.
template <bool kWantIndices, typename TruthTerm>
void ParallelCluster::BuildKeyedPlan(const Workload& workload, int num_sites,
                                     double checkpoint_factor,
                                     TruthTerm truth_term, Plan* plan) {
  uint64_t truth = 0;
  CoordinatorWalk(
      [&](uint64_t i) { return workload[i].site; }, workload.size(),
      num_sites, checkpoint_factor, plan,
      [&] { plan->checkpoint_truth.push_back(static_cast<double>(truth)); },
      [&](uint64_t i, int site) {
        const Arrival& a = workload[i];
        size_t s = static_cast<size_t>(site);
        plan->site_keys[s].push_back(a.key);
        if (kWantIndices) {
          plan->site_indices[s].push_back(static_cast<uint32_t>(i));
        }
        truth += truth_term(a.key);
      });
}

// Sliced parallel keyed planner: the identical plan from parallel
// passes — per-slice site histograms fused with the truth tally, a
// parallel scatter into exactly-sized per-site shards, the same tiny
// serial report-event walk as the count planner, and one partial scan
// per stop-bearing slice resolving snapshots and checkpoint truth.
// Removes the serial plan pass as the Amdahl bottleneck of keyed
// replays, exactly as the sliced count planner did for count.
template <bool kWantIndices, typename TruthTerm>
void ParallelCluster::BuildKeyedPlanSliced(const Workload& workload,
                                           int num_sites,
                                           double checkpoint_factor,
                                           TruthTerm truth_term, Plan* plan) {
  uint64_t total = workload.size();
  std::vector<uint64_t> checkpoints =
      CheckpointCounts(total, checkpoint_factor);
  plan->total = total;
  size_t k = static_cast<size_t>(num_sites);
  int num_slices = std::max(1, replay_threads_ * 8);
  uint64_t slice_len =
      std::max<uint64_t>(1, (total + num_slices - 1) / num_slices);
  num_slices = static_cast<int>((total + slice_len - 1) / slice_len);
  if (num_slices == 0) num_slices = 1;
  auto slice_begin = [&](int j) {
    return std::min(total, static_cast<uint64_t>(j) * slice_len);
  };

  // Pass A (parallel): per-slice site histograms + truth tallies, with
  // validation.
  std::vector<uint64_t>& hist = plan->slice_hist;
  hist.assign(static_cast<size_t>(num_slices) * k, 0);
  std::vector<uint64_t>& slice_truth = plan->slice_truth;
  slice_truth.assign(static_cast<size_t>(num_slices), 0);
  RunTasks(num_slices, [&](int j) {
    uint64_t* h = hist.data() + static_cast<size_t>(j) * k;
    uint64_t truth = 0;
    uint64_t end = slice_begin(j + 1);
    for (uint64_t i = slice_begin(j); i < end; ++i) {
      const Arrival& a = workload[i];
      CheckSiteInRange(a.site, num_sites);
      ++h[static_cast<size_t>(a.site)];
      truth += truth_term(a.key);
    }
    slice_truth[static_cast<size_t>(j)] = truth;
  });
  // Exclusive prefixes over slices: per-site starts, totals, truth.
  std::vector<uint64_t>& start = plan->slice_start;
  start.assign(static_cast<size_t>(num_slices) * k, 0);
  for (int j = 1; j < num_slices; ++j) {
    const uint64_t* prev_start = start.data() + static_cast<size_t>(j - 1) * k;
    const uint64_t* prev_hist = hist.data() + static_cast<size_t>(j - 1) * k;
    uint64_t* cur = start.data() + static_cast<size_t>(j) * k;
    for (size_t s = 0; s < k; ++s) cur[s] = prev_start[s] + prev_hist[s];
  }
  for (size_t s = 0; s < k; ++s) {
    size_t last = static_cast<size_t>(num_slices - 1) * k + s;
    plan->site_total[s] = start[last] + hist[last];
  }
  std::vector<uint64_t>& truth_start = plan->slice_truth_start;
  truth_start.assign(static_cast<size_t>(num_slices), 0);
  for (int j = 1; j < num_slices; ++j) {
    truth_start[static_cast<size_t>(j)] =
        truth_start[static_cast<size_t>(j - 1)] +
        slice_truth[static_cast<size_t>(j - 1)];
  }
  // Exactly-sized shards, so slice workers write disjoint ranges.
  for (size_t s = 0; s < k; ++s) {
    plan->site_keys[s].resize(plan->site_total[s]);
    if (kWantIndices) plan->site_indices[s].resize(plan->site_total[s]);
  }

  // Pass B (parallel): scatter each slice into the shards at its running
  // per-site offsets, and record the exact global position of every
  // coarse report (each site's 2^j-th arrival).
  using ReportEvent = Plan::ReportEvent;
  std::vector<std::vector<ReportEvent>>& slice_events = plan->slice_events;
  if (slice_events.size() < static_cast<size_t>(num_slices)) {
    slice_events.resize(static_cast<size_t>(num_slices));
  }
  for (auto& v : slice_events) v.clear();
  RunTasks(num_slices, [&](int j) {
    std::vector<uint64_t> cnt(start.begin() + static_cast<size_t>(j) * k,
                              start.begin() + static_cast<size_t>(j) * k + k);
    std::vector<uint64_t> target(k);
    for (size_t s = 0; s < k; ++s) target[s] = NextReportOrdinal(cnt[s]);
    auto& events = slice_events[static_cast<size_t>(j)];
    uint64_t end = slice_begin(j + 1);
    for (uint64_t i = slice_begin(j); i < end; ++i) {
      const Arrival& a = workload[i];
      size_t s = static_cast<size_t>(a.site);
      plan->site_keys[s][cnt[s]] = a.key;
      if (kWantIndices) {
        plan->site_indices[s][cnt[s]] = static_cast<uint32_t>(i);
      }
      if (++cnt[s] == target[s]) {
        events.push_back(ReportEvent{i, cnt[s], static_cast<int>(s)});
        target[s] *= 2;
      }
    }
  });

  // Serial walk of the report events: replicate the broadcast condition
  // and merge in the checkpoint schedule (a checkpoint at count c samples
  // before arrival c is delivered, so it precedes a broadcast whose
  // arrival index equals c).
  size_t next_checkpoint = 0;
  uint64_t n_prime = 0;
  uint64_t n_bar = 0;
  auto flush_checkpoints_through = [&](uint64_t pos) {
    while (next_checkpoint < checkpoints.size() &&
           checkpoints[next_checkpoint] <= pos) {
      plan->stops.push_back(Plan::Stop{checkpoints[next_checkpoint], -1});
      ++next_checkpoint;
    }
  };
  for (int j = 0; j < num_slices; ++j) {
    for (const ReportEvent& ev : slice_events[static_cast<size_t>(j)]) {
      uint64_t delta = CoarseReportDelta(ev.ordinal);
      if (n_prime + delta >= std::max<uint64_t>(1, 2 * n_bar)) {
        flush_checkpoints_through(ev.pos);
        plan->stops.push_back(Plan::Stop{ev.pos, ev.site});
        n_bar = n_prime + delta;
      }
      n_prime += delta;
    }
  }
  flush_checkpoints_through(total);

  // Pass C (parallel): group stops by containing slice; each stop-bearing
  // slice is scanned once, resolving its stops' per-site snapshots and —
  // for checkpoint stops — the truth prefix, in order.
  std::vector<int>& stop_ckpt = plan->stop_ckpt;
  stop_ckpt.assign(plan->stops.size(), -1);
  int num_ckpt = 0;
  for (size_t b = 0; b < plan->stops.size(); ++b) {
    if (plan->stops[b].boundary_site < 0) stop_ckpt[b] = num_ckpt++;
  }
  plan->checkpoint_truth.assign(static_cast<size_t>(num_ckpt), 0.0);
  plan->snapshots.assign(plan->stops.size() * k, 0);
  std::vector<std::pair<size_t, size_t>>& runs = plan->stop_runs;
  runs.clear();
  auto slice_of = [&](uint64_t pos) {
    return pos >= total ? num_slices - 1 : static_cast<int>(pos / slice_len);
  };
  for (size_t b = 0; b < plan->stops.size();) {
    size_t e = b + 1;
    while (e < plan->stops.size() &&
           slice_of(plan->stops[e].pos) == slice_of(plan->stops[b].pos)) {
      ++e;
    }
    runs.emplace_back(b, e);
    b = e;
  }
  RunTasks(static_cast<int>(runs.size()), [&](int r) {
    auto [b_begin, b_end] = runs[static_cast<size_t>(r)];
    int j = slice_of(plan->stops[b_begin].pos);
    std::vector<uint64_t> cnt(start.begin() + static_cast<size_t>(j) * k,
                              start.begin() + static_cast<size_t>(j) * k + k);
    uint64_t truth = truth_start[static_cast<size_t>(j)];
    uint64_t i = slice_begin(j);
    for (size_t b = b_begin; b < b_end; ++b) {
      uint64_t pos = plan->stops[b].pos;
      for (; i < pos; ++i) {
        const Arrival& a = workload[i];
        ++cnt[static_cast<size_t>(a.site)];
        truth += truth_term(a.key);
      }
      std::copy(cnt.begin(), cnt.end(), plan->snapshots.begin() + b * k);
      if (stop_ckpt[b] >= 0) {
        plan->checkpoint_truth[static_cast<size_t>(stop_ckpt[b])] =
            static_cast<double>(truth);
      }
    }
  });
}

// ---------------------------------------------------------------- driver

ParallelCluster::ParallelCluster(int threads)
    : threads_(threads <= 0
                   ? std::max(1u, std::thread::hardware_concurrency())
                   : threads),
      auto_threads_(threads <= 0),
      replay_threads_(threads_) {}

ParallelCluster::~ParallelCluster() = default;

void ParallelCluster::RunTasks(int num_tasks,
                               const std::function<void(int)>& fn) {
  if (replay_threads_ == 1 || num_tasks <= 1) {
    for (int i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  if (pool_ == nullptr) pool_ = std::make_unique<Pool>(threads_ - 1);
  pool_->Run(num_tasks, fn);
}

void ParallelCluster::RunEpochTasks(int num_tasks, uint64_t epoch_len,
                                    const std::function<void(int)>& fn) {
  if (epoch_len < 2048 * static_cast<uint64_t>(replay_threads_)) {
    for (int i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  RunTasks(num_tasks, fn);
}

namespace {

// Shared epoch loop. `run_epoch(begin_row, end_row, epoch_len)` delivers
// one epoch's per-site slices through the shard handle (begin/end are
// per-site offset rows); `boundary(stop)` delivers a broadcast arrival
// serially; `sample(stop, checkpoint_index)` reads the estimate.
template <typename EpochBody, typename BoundaryFn, typename SampleFn>
std::vector<Checkpoint> RunPlanLoop(const ParallelCluster::Plan* plan_ptr,
                                    EpochBody run_epoch, BoundaryFn boundary,
                                    SampleFn sample) {
  const auto& plan = *plan_ptr;
  size_t k = static_cast<size_t>(plan.num_sites);
  std::vector<uint64_t> cur(k, 0);
  std::vector<Checkpoint> out;
  uint64_t delivered = 0;
  size_t checkpoint_index = 0;
  for (size_t b = 0; b < plan.stops.size(); ++b) {
    const auto& stop = plan.stops[b];
    const uint64_t* snap = plan.snapshots.data() + b * k;
    uint64_t epoch_len = stop.pos - delivered;
    if (epoch_len > 0) run_epoch(cur.data(), snap, epoch_len);
    std::copy(snap, snap + k, cur.begin());
    if (stop.boundary_site >= 0) {
      boundary(stop);
      ++cur[static_cast<size_t>(stop.boundary_site)];
      delivered = stop.pos + 1;
    } else {
      out.push_back(sample(stop, checkpoint_index));
      ++checkpoint_index;
      delivered = stop.pos;
    }
  }
  return out;
}

}  // namespace

std::vector<Checkpoint> ParallelCluster::DriveCountPlan(
    CountTrackerInterface* tracker, CountShardIngest* ingest, Plan* plan) {
  int num_sites = plan->num_sites;
  std::vector<int> task_sites(static_cast<size_t>(num_sites));
  auto run_epoch = [&](const uint64_t* begin, const uint64_t* end,
                       uint64_t epoch_len) {
    int tasks = 0;
    for (int s = 0; s < num_sites; ++s) {
      if (end[s] > begin[s]) task_sites[static_cast<size_t>(tasks++)] = s;
    }
    ingest->ShardEpochBegin(epoch_len);
    RunEpochTasks(tasks, epoch_len, [&](int t) {
      int s = task_sites[static_cast<size_t>(t)];
      ingest->ShardArriveRun(s, end[s] - begin[s]);
    });
    ingest->ShardEpochEnd();
  };
  auto boundary = [&](const Plan::Stop& stop) {
    tracker->Arrive(stop.boundary_site);
  };
  auto sample = [&](const Plan::Stop& stop, size_t) {
    return Checkpoint{stop.pos, tracker->EstimateCount(),
                      static_cast<double>(stop.pos)};
  };
  return RunPlanLoop(plan, run_epoch, boundary, sample);
}

template <typename Tracker, typename EstimateFn>
std::vector<Checkpoint> ParallelCluster::DriveKeyedPlan(
    Tracker* tracker, KeyedShardIngest* ingest, bool want_indices,
    const Workload& workload, EstimateFn estimate, Plan* plan) {
  int num_sites = plan->num_sites;
  std::vector<int> task_sites(static_cast<size_t>(num_sites));
  auto run_epoch = [&](const uint64_t* begin, const uint64_t* end,
                       uint64_t epoch_len) {
    int tasks = 0;
    for (int s = 0; s < num_sites; ++s) {
      if (end[s] > begin[s]) task_sites[static_cast<size_t>(tasks++)] = s;
    }
    ingest->ShardEpochBegin(epoch_len);
    RunEpochTasks(tasks, epoch_len, [&](int t) {
      size_t s = static_cast<size_t>(task_sites[static_cast<size_t>(t)]);
      const uint32_t* idx =
          want_indices ? plan->site_indices[s].data() + begin[s] : nullptr;
      ingest->ShardArriveRun(static_cast<int>(s),
                             plan->site_keys[s].data() + begin[s], idx,
                             end[s] - begin[s]);
    });
    ingest->ShardEpochEnd();
  };
  auto boundary = [&](const Plan::Stop& stop) {
    tracker->Arrive(stop.boundary_site, workload[stop.pos].key);
  };
  auto sample = [&](const Plan::Stop& stop, size_t checkpoint_index) {
    return Checkpoint{stop.pos, estimate(),
                      plan->checkpoint_truth[checkpoint_index]};
  };
  return RunPlanLoop(plan, run_epoch, boundary, sample);
}

std::vector<Checkpoint> ParallelCluster::ReplayCountSites(
    CountTrackerInterface* tracker, const SiteStream& sites,
    double checkpoint_factor) {
  CountShardIngest* ingest = tracker->shard_ingest();
  if (ingest == nullptr) {
    last_replay_sharded_ = false;
    return sim::ReplayCountSites(tracker, sites, checkpoint_factor);
  }
  last_replay_sharded_ = true;
  int num_sites = tracker->meter().num_sites();
  replay_threads_ = auto_threads_ ? std::min(threads_, num_sites) : threads_;
  Plan* plan = PreparePlan(num_sites);
  auto site_at = [&](uint64_t i) { return static_cast<int>(sites[i]); };
  if (replay_threads_ > 1) {
    BuildCountPlanSliced(site_at, sites.size(), num_sites, checkpoint_factor,
                         plan);
  } else {
    BuildCountPlanSerial(site_at, sites.size(), num_sites, checkpoint_factor,
                         plan);
  }
  return DriveCountPlan(tracker, ingest, plan);
}

std::vector<Checkpoint> ParallelCluster::ReplayCount(
    CountTrackerInterface* tracker, const Workload& workload,
    double checkpoint_factor) {
  CountShardIngest* ingest = tracker->shard_ingest();
  if (ingest == nullptr) {
    last_replay_sharded_ = false;
    return sim::ReplayCount(tracker, workload, checkpoint_factor);
  }
  last_replay_sharded_ = true;
  int num_sites = tracker->meter().num_sites();
  replay_threads_ = auto_threads_ ? std::min(threads_, num_sites) : threads_;
  Plan* plan = PreparePlan(num_sites);
  auto site_at = [&](uint64_t i) { return workload[i].site; };
  if (replay_threads_ > 1) {
    BuildCountPlanSliced(site_at, workload.size(), num_sites,
                         checkpoint_factor, plan);
  } else {
    BuildCountPlanSerial(site_at, workload.size(), num_sites,
                         checkpoint_factor, plan);
  }
  return DriveCountPlan(tracker, ingest, plan);
}

std::vector<Checkpoint> ParallelCluster::ReplayFrequency(
    FrequencyTrackerInterface* tracker, const Workload& workload,
    uint64_t query_item, double checkpoint_factor) {
  KeyedShardIngest* ingest = tracker->shard_ingest();
  if (ingest == nullptr) {
    last_replay_sharded_ = false;
    return sim::ReplayFrequency(tracker, workload, query_item,
                                checkpoint_factor);
  }
  last_replay_sharded_ = true;
  CheckShardableSize(workload.size());
  int num_sites = tracker->meter().num_sites();
  replay_threads_ = auto_threads_ ? std::min(threads_, num_sites) : threads_;
  Plan* plan = PreparePlan(num_sites);
  bool want_indices = ingest->wants_global_indices();
  auto truth_term = [&](uint64_t key) {
    return key == query_item ? uint64_t{1} : uint64_t{0};
  };
  if (replay_threads_ > 1) {
    if (want_indices) {
      BuildKeyedPlanSliced<true>(workload, num_sites, checkpoint_factor,
                                 truth_term, plan);
    } else {
      BuildKeyedPlanSliced<false>(workload, num_sites, checkpoint_factor,
                                  truth_term, plan);
    }
  } else if (want_indices) {
    BuildKeyedPlan<true>(workload, num_sites, checkpoint_factor, truth_term,
                         plan);
  } else {
    BuildKeyedPlan<false>(workload, num_sites, checkpoint_factor, truth_term,
                          plan);
  }
  return DriveKeyedPlan(
      tracker, ingest, want_indices, workload,
      [&] { return tracker->EstimateFrequency(query_item); }, plan);
}

std::vector<Checkpoint> ParallelCluster::ReplayRank(
    RankTrackerInterface* tracker, const Workload& workload,
    uint64_t query_value, double checkpoint_factor) {
  KeyedShardIngest* ingest = tracker->shard_ingest();
  if (ingest == nullptr) {
    last_replay_sharded_ = false;
    return sim::ReplayRank(tracker, workload, query_value, checkpoint_factor);
  }
  last_replay_sharded_ = true;
  CheckShardableSize(workload.size());
  int num_sites = tracker->meter().num_sites();
  replay_threads_ = auto_threads_ ? std::min(threads_, num_sites) : threads_;
  Plan* plan = PreparePlan(num_sites);
  bool want_indices = ingest->wants_global_indices();
  auto truth_term = [&](uint64_t key) {
    return key < query_value ? uint64_t{1} : uint64_t{0};
  };
  if (replay_threads_ > 1) {
    if (want_indices) {
      BuildKeyedPlanSliced<true>(workload, num_sites, checkpoint_factor,
                                 truth_term, plan);
    } else {
      BuildKeyedPlanSliced<false>(workload, num_sites, checkpoint_factor,
                                  truth_term, plan);
    }
  } else if (want_indices) {
    BuildKeyedPlan<true>(workload, num_sites, checkpoint_factor, truth_term,
                         plan);
  } else {
    BuildKeyedPlan<false>(workload, num_sites, checkpoint_factor, truth_term,
                          plan);
  }
  return DriveKeyedPlan(tracker, ingest, want_indices, workload,
                        [&] { return tracker->EstimateRank(query_value); },
                        plan);
}

}  // namespace sim
}  // namespace disttrack
