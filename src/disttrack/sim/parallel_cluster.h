// Sharded multi-threaded replay: the parallel counterpart of the serial
// Replay* drivers in cluster.h.
//
// The paper's model (§1.1) is k independent sites talking to one
// coordinator, which makes a recorded workload embarrassingly parallel
// *between* coordinator interactions: sites only couple through the
// CoarseTracker broadcasts (p-halvings / round advances) every randomized
// protocol hangs off. Those broadcasts are a deterministic function of the
// site schedule alone — a site reports when its local count doubles, the
// coordinator re-broadcasts when the reported sum doubles, no randomness
// involved — so a cheap coordinator-only pre-pass over the site ids finds
// the exact global arrival index of every broadcast before replay starts.
//
// ParallelCluster turns each such index, plus every checkpoint of the
// shared CheckpointCounts schedule, into an *epoch barrier*:
//
//   plan      one pass over the workload: per-site shards (keys + global
//             indices), the coarse broadcast schedule, per-site slice
//             offsets at every boundary, and the ground-truth curve;
//   epoch     worker threads advance each site's slice through the
//             tracker's shard-ingest handle (sim/shard.h) — site-local
//             state only, coordinator messages buffered per site;
//   barrier   the driver thread folds the buffered messages in global
//             arrival order, then delivers the broadcast-triggering
//             arrival itself through the plain serial Arrive() path (so
//             the ritual/round logic runs unchanged), or samples a
//             checkpoint.
//
// Within an epoch every quantity a site reads (p, thresholds, round
// geometry) is frozen, and each site consumes its private RNG stream at
// exactly the per-site offsets of the serial execution. The replay is
// therefore deterministic given the seed, independent of the thread
// count, and bit-identical to the serial drivers for the randomized
// count, frequency, and rank trackers as well as the deterministic count
// tracker (pinned by tests/parallel_cluster_test.cc). Trackers without a
// shard-ingest handle (per-arrival coin paths, median boosters, the
// sampling baseline) transparently fall back to the serial driver.

#ifndef DISTTRACK_SIM_PARALLEL_CLUSTER_H_
#define DISTTRACK_SIM_PARALLEL_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "disttrack/sim/cluster.h"
#include "disttrack/sim/protocol.h"

namespace disttrack {
namespace sim {

class OnlineCountSession;
class OnlineKeyedSession;

/// A thread-pool replay engine; one instance owns `threads` worker
/// threads (threads == 1 runs everything on the calling thread) and can
/// replay any number of workloads sequentially. Not itself thread-safe:
/// drive it from one thread.
///
/// Replay is not the only mode: the online sessions of sim/online.h
/// borrow this pool to ingest live pushes with no workload pre-knowledge
/// (no plan pass) — see OnlineCountSession / OnlineKeyedSession.
class ParallelCluster {
 public:
  /// Pass as `threads` to size the pool from the hardware. The heuristic:
  /// threads = max(1, std::thread::hardware_concurrency()), further
  /// clamped per replay to the tracker's site count — a site is the unit
  /// of epoch parallelism (at most one thread may touch it), so workers
  /// beyond k can never be scheduled, and the clamp also keeps the
  /// sliced planners from over-slicing small-k replays.
  static constexpr int kAutoThreads = 0;

  /// `threads` <= 0 selects kAutoThreads; otherwise the exact worker
  /// count. Workers are lazily started on the first sharded replay.
  explicit ParallelCluster(int threads);
  ~ParallelCluster();

  ParallelCluster(const ParallelCluster&) = delete;
  ParallelCluster& operator=(const ParallelCluster&) = delete;

  /// Parallel counterparts of the serial drivers (same checkpoint
  /// schedule, same Checkpoint contract). Aborts on out-of-range site
  /// ids, like every delivery path. Falls back to the serial driver when
  /// `tracker->shard_ingest()` is null.
  std::vector<Checkpoint> ReplayCount(CountTrackerInterface* tracker,
                                      const Workload& workload,
                                      double checkpoint_factor = 1.5);
  std::vector<Checkpoint> ReplayCountSites(CountTrackerInterface* tracker,
                                           const SiteStream& sites,
                                           double checkpoint_factor = 1.5);
  std::vector<Checkpoint> ReplayFrequency(FrequencyTrackerInterface* tracker,
                                          const Workload& workload,
                                          uint64_t query_item,
                                          double checkpoint_factor = 1.5);
  std::vector<Checkpoint> ReplayRank(RankTrackerInterface* tracker,
                                     const Workload& workload,
                                     uint64_t query_value,
                                     double checkpoint_factor = 1.5);

  int threads() const { return threads_; }

  /// True iff the last Replay* call actually ran the sharded engine
  /// (false = serial fallback). Diagnostics/tests.
  bool last_replay_sharded() const { return last_replay_sharded_; }

  /// The pre-pass product (epoch barriers, per-site slices, truth curve);
  /// public only so the implementation's free helpers can name it.
  struct Plan;

 private:
  class Pool;

  // The online sessions drive epochs through RunEpochTasks without a
  // plan; they are part of this engine's surface, just stateful.
  friend class OnlineCountSession;
  friend class OnlineKeyedSession;

  // Runs `fn(task)` for task in [0, num_tasks) across the workers (inline
  // when threads_ == 1); returns after all tasks completed.
  void RunTasks(int num_tasks, const std::function<void(int)>& fn);

  // RunTasks for one epoch's site slices: epochs shorter than ~2K
  // arrivals per thread (the broadcast-dense stream prefix) run inline —
  // the pool hand-off would cost more than the work.
  void RunEpochTasks(int num_tasks, uint64_t epoch_len,
                     const std::function<void(int)>& fn);

  // Returns the reusable plan scratch, cleared for a fresh replay of
  // `num_sites` sites (buffers keep their capacity, so steady-state
  // replays plan without allocating).
  Plan* PreparePlan(int num_sites);

  // The shared serial coordinator walk: replicates the CoarseTracker
  // report/broadcast evolution over the site schedule in one pass,
  // pushing stops + snapshots into the plan, and invoking the hooks at
  // each checkpoint stop / recorded arrival (the keyed planner scatters
  // keys and accumulates truth there; the count planner passes no-ops).
  // The only other encodings of the report/broadcast law are the sliced
  // planner's constant-folded form and CoarseTracker itself.
  template <typename SiteAt, typename AtCheckpoint, typename PerArrival>
  void CoordinatorWalk(SiteAt site_at, uint64_t total, int num_sites,
                       double checkpoint_factor, Plan* plan,
                       AtCheckpoint at_checkpoint, PerArrival per_arrival);

  // Count planners: the single fused coordinator walk (threads == 1) and
  // the sliced parallel variant (two short parallel passes + a tiny
  // serial event walk). Both produce the identical plan.
  template <typename SiteAt>
  void BuildCountPlanSerial(SiteAt site_at, uint64_t total, int num_sites,
                            double checkpoint_factor, Plan* plan);
  template <typename SiteAt>
  void BuildCountPlanSliced(SiteAt site_at, uint64_t total, int num_sites,
                            double checkpoint_factor, Plan* plan);

  // Keyed planners: the single fused coordinator walk (one thread) and
  // the sliced parallel variant — per-slice site/truth histograms, a
  // parallel scatter into preallocated per-site shards, a tiny serial
  // report-event walk, and one partial scan per stop-bearing slice for
  // snapshots + checkpoint truth. Both produce the identical plan; the
  // sliced one removes the serial plan pass as the Amdahl bottleneck of
  // keyed replays, the same way the sliced count planner did for count.
  template <bool kWantIndices, typename TruthTerm>
  void BuildKeyedPlan(const Workload& workload, int num_sites,
                      double checkpoint_factor, TruthTerm truth_term,
                      Plan* plan);
  template <bool kWantIndices, typename TruthTerm>
  void BuildKeyedPlanSliced(const Workload& workload, int num_sites,
                            double checkpoint_factor, TruthTerm truth_term,
                            Plan* plan);

  // Plan executors, shared by the Replay* entry points: walk the stops,
  // dispatch each epoch's per-site slices to the shard handle, deliver
  // broadcast arrivals serially, sample checkpoints.
  std::vector<Checkpoint> DriveCountPlan(CountTrackerInterface* tracker,
                                         CountShardIngest* ingest,
                                         Plan* plan);
  template <typename Tracker, typename EstimateFn>
  std::vector<Checkpoint> DriveKeyedPlan(Tracker* tracker,
                                         KeyedShardIngest* ingest,
                                         bool want_indices,
                                         const Workload& workload,
                                         EstimateFn estimate, Plan* plan);

  int threads_;
  bool auto_threads_ = false;
  // threads_ clamped to the current replay's site count under
  // kAutoThreads (set at each Replay* entry); drives planner selection,
  // slicing, and the inline-epoch threshold. The pool itself is sized
  // once from threads_ — surplus workers simply find no tasks.
  int replay_threads_ = 1;
  bool last_replay_sharded_ = false;
  std::unique_ptr<Pool> pool_;
  std::unique_ptr<Plan> plan_scratch_;
};

}  // namespace sim
}  // namespace disttrack

#endif  // DISTTRACK_SIM_PARALLEL_CLUSTER_H_
