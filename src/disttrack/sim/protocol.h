// Abstract interfaces for the three continuous tracking problems (§1.2).
//
// Every concrete protocol — deterministic, randomized, or sampling-based —
// implements one of these, so experiment harnesses, boosters, and examples
// are written once against the interface.
//
// The simulation contract mirrors the model of §1.1: Arrive() delivers one
// stream element to a site; all communication triggered by that arrival
// completes (instantly) before Arrive() returns; estimates may be read at
// any time between arrivals.

#ifndef DISTTRACK_SIM_PROTOCOL_H_
#define DISTTRACK_SIM_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "disttrack/sim/comm_meter.h"
#include "disttrack/sim/shard.h"
#include "disttrack/sim/space_gauge.h"

namespace disttrack {
namespace sim {

/// One stream arrival: an element (item id or value, unused for counting)
/// delivered to a site.
struct Arrival {
  int site = 0;
  uint64_t key = 0;
};

/// Aborts with a diagnostic unless `site` is a valid site id. An id >= k
/// would index per-site state out of bounds, so every replay delivery
/// path validates before touching tracker state (same contract as the
/// checkpoint_factor check in sim/cluster.cc).
inline void CheckSiteInRange(int site, int num_sites) {
  if (site < 0 || site >= num_sites) {
    std::fprintf(stderr,
                 "disttrack: arrival site %d out of range [0, %d)\n", site,
                 num_sites);
    std::abort();
  }
}

/// Count-tracking (§2): maintain n = Σ nᵢ within ±εn.
class CountTrackerInterface {
 public:
  virtual ~CountTrackerInterface() = default;

  /// One element arrives at `site` (0-based, < num_sites).
  virtual void Arrive(int site) = 0;

  /// Delivers `count` arrivals in order. Semantically identical to calling
  /// Arrive() once per element; exists so that replay loops pay one virtual
  /// dispatch per batch instead of per element, and so that trackers with a
  /// cheap inlinable per-element path (skip sampling) can expose it.
  virtual void ArriveBatch(const Arrival* arrivals, size_t count) {
    int k = meter().num_sites();
    for (size_t i = 0; i < count; ++i) {
      CheckSiteInRange(arrivals[i].site, k);
      Arrive(arrivals[i].site);
    }
  }

  /// Batched delivery of a pure site stream. Count arrivals carry no key,
  /// so a 2-byte site id is the natural arrival record — an 8x smaller
  /// stream than Arrival[], which matters once the tracker's per-element
  /// work drops below memory-streaming cost (the skip-sampling fast path
  /// does). Semantically identical to Arrive(sites[i]) in order.
  virtual void ArriveSites(const uint16_t* sites, size_t count) {
    int k = meter().num_sites();
    for (size_t i = 0; i < count; ++i) {
      CheckSiteInRange(sites[i], k);
      Arrive(sites[i]);
    }
  }

  /// Per-site parallel ingest handle (see sim/shard.h), or nullptr when
  /// the tracker (or its current option set) does not support sharded
  /// replay — sim::ParallelCluster then falls back to the serial driver.
  virtual CountShardIngest* shard_ingest() { return nullptr; }

  /// The coordinator's current estimate n̂ of the global count.
  virtual double EstimateCount() const = 0;

  /// Ground-truth n, maintained by the harness side for evaluation only.
  virtual uint64_t TrueCount() const = 0;

  /// Communication spent so far.
  virtual const CommMeter& meter() const = 0;

  /// Per-site working-space watermark.
  virtual const SpaceGauge& space() const = 0;
};

/// Frequency-tracking (§3): maintain every item frequency within ±εn.
class FrequencyTrackerInterface {
 public:
  virtual ~FrequencyTrackerInterface() = default;

  /// One copy of `item` arrives at `site`.
  virtual void Arrive(int site, uint64_t item) = 0;

  /// Batched Arrive(); see CountTrackerInterface::ArriveBatch.
  virtual void ArriveBatch(const Arrival* arrivals, size_t count) {
    int k = meter().num_sites();
    for (size_t i = 0; i < count; ++i) {
      CheckSiteInRange(arrivals[i].site, k);
      Arrive(arrivals[i].site, arrivals[i].key);
    }
  }

  /// Per-site parallel ingest handle; see CountTrackerInterface.
  virtual KeyedShardIngest* shard_ingest() { return nullptr; }

  /// The coordinator's estimate f̂ⱼ of item `item`'s global frequency.
  /// May be negative for rare items (the unbiased estimator (4) of §3.1).
  virtual double EstimateFrequency(uint64_t item) const = 0;

  /// Ground-truth n (total arrivals), for evaluation.
  virtual uint64_t TrueCount() const = 0;

  virtual const CommMeter& meter() const = 0;
  virtual const SpaceGauge& space() const = 0;
};

/// Rank-tracking (§4): maintain the rank of any x within ±εn.
/// Values live in a totally ordered integer universe; rank(x) counts
/// elements strictly smaller than x (duplicates allowed by the harness and
/// counted with multiplicity).
class RankTrackerInterface {
 public:
  virtual ~RankTrackerInterface() = default;

  /// One element with value `value` arrives at `site`.
  virtual void Arrive(int site, uint64_t value) = 0;

  /// Batched Arrive(); see CountTrackerInterface::ArriveBatch.
  virtual void ArriveBatch(const Arrival* arrivals, size_t count) {
    int k = meter().num_sites();
    for (size_t i = 0; i < count; ++i) {
      CheckSiteInRange(arrivals[i].site, k);
      Arrive(arrivals[i].site, arrivals[i].key);
    }
  }

  /// Per-site parallel ingest handle; see CountTrackerInterface.
  virtual KeyedShardIngest* shard_ingest() { return nullptr; }

  /// The coordinator's estimate of |{y in stream : y < value}|.
  virtual double EstimateRank(uint64_t value) const = 0;

  /// Ground-truth n (total arrivals), for evaluation.
  virtual uint64_t TrueCount() const = 0;

  virtual const CommMeter& meter() const = 0;
  virtual const SpaceGauge& space() const = 0;
};

}  // namespace sim
}  // namespace disttrack

#endif  // DISTTRACK_SIM_PROTOCOL_H_
