// Coordinator-side estimator replicas, rebuilt from delivered wire frames
// alone (extracted from the fault harness in robust_cluster.cc so the
// multi-process service coordinator can host the same mirrors).
//
// Each replica consumes the exact frame stream a tracker's WireTap emits
// and reproduces the coordinator half of the estimator bit for bit: the
// fault harness (robust_cluster.h) proves the property differentially at
// every checkpoint, and the service daemon (service/coordinator.h) serves
// its snapshot query API from these same classes. Delivery contract: per
// site frames arrive in FIFO order and exactly once — the reliable
// channel layer (transport.h) provides both under faults, and the TCP
// sessions of the service provide them natively plus sequence-number
// dedup across reconnects.

#ifndef DISTTRACK_SIM_REPLICA_H_
#define DISTTRACK_SIM_REPLICA_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "disttrack/common/math_util.h"
#include "disttrack/count/randomized_count.h"
#include "disttrack/frequency/randomized_frequency.h"
#include "disttrack/rank/randomized_rank.h"
#include "disttrack/sim/wire.h"

namespace disttrack {
namespace sim {

/// Coordinator half of CoarseTracker, rebuilt from delivered coarse
/// reports alone. The kBroadcast frames the coordinator fans out are
/// *not* applied — deriving the broadcast from the report that triggered
/// it keeps the replica independent of cross-link delivery order (the
/// downlink copy races the uplink report under faults).
struct CoarseMirror {
  uint64_t n_prime = 0;
  uint64_t n_bar = 0;
  uint64_t round = 0;

  /// Applies one coarse report delta; true iff it triggers a broadcast
  /// (same condition as CoarseTracker::ReportAndMaybeBroadcast).
  bool ApplyReport(uint64_t delta) {
    n_prime += delta;
    if (n_prime >= std::max<uint64_t>(1, 2 * n_bar)) {
      n_bar = n_prime;
      ++round;
      return true;
    }
    return false;
  }
};

// --- Count replica --------------------------------------------------------
// Mirrors the coordinator state of RandomizedCountTracker: 1/p and the
// (sum, count) aggregates over existing reports. Reports and p-halving
// corrections arrive as frames; inv_p evolves at derived broadcasts with
// the same doubling loop the tracker runs, so the estimator expression is
// evaluated on bit-identical operands.

class CountReplica {
 public:
  explicit CountReplica(const count::RandomizedCountOptions& options)
      : options_(options),
        reported_(static_cast<size_t>(options.num_sites), 0) {}

  void Apply(const wire::Message& msg) {
    switch (msg.type) {
      case wire::MsgType::kCoarseReport:
        if (coarse_.ApplyReport(msg.a)) {
          uint64_t new_inv_p = InvPFor(coarse_.n_bar);
          while (inv_p_ < new_inv_p) inv_p_ *= 2;
        }
        break;
      case wire::MsgType::kCoinReport: {
        uint64_t& rep = reported_[static_cast<size_t>(msg.site)];
        if (rep > 0) reported_sum_ -= rep;
        else ++reported_count_;
        rep = msg.a;
        reported_sum_ += rep;
        break;
      }
      case wire::MsgType::kCorrection: {
        // Emitted only for sites holding a report (§2.1 thinning ritual).
        uint64_t& rep = reported_[static_cast<size_t>(msg.site)];
        reported_sum_ -= rep;
        --reported_count_;
        rep = msg.a;
        if (rep > 0) {
          reported_sum_ += rep;
          ++reported_count_;
        }
        break;
      }
      default:
        break;
    }
  }

  double Estimate(uint64_t /*query*/) const {
    double inv_p = static_cast<double>(inv_p_);
    if (options_.naive_boundary_estimator) {
      return static_cast<double>(reported_sum_) +
             static_cast<double>(options_.num_sites) * (inv_p - 1.0);
    }
    return static_cast<double>(reported_sum_) +
           static_cast<double>(reported_count_) * (inv_p - 1.0);
  }

  uint64_t round() const { return coarse_.round; }
  uint64_t n_bar() const { return coarse_.n_bar; }
  uint64_t n_prime() const { return coarse_.n_prime; }

 private:
  uint64_t InvPFor(uint64_t n_bar) const {
    double scaled = options_.epsilon * static_cast<double>(n_bar) /
                    (options_.confidence_factor *
                     std::sqrt(static_cast<double>(options_.num_sites)));
    if (scaled <= 1.0) return 1;
    return FloorPow2(scaled);
  }

  count::RandomizedCountOptions options_;
  CoarseMirror coarse_;
  uint64_t inv_p_ = 1;
  std::vector<uint64_t> reported_;
  uint64_t reported_sum_ = 0;
  uint64_t reported_count_ = 0;
};

// --- Frequency replica ----------------------------------------------------
// Mirrors the coordinator aggregation of RandomizedFrequencyTracker: the
// live per-(item, instance) counters of the current round plus the frozen
// per-item accumulator of completed rounds. Instance lists stay sorted by
// the site-minted instance id — the tracker's own canonical order — so
// the floating-point summation order matches regardless of delivery
// schedule; rounds fold at derived broadcasts with the closing round's p.

class FrequencyReplica {
 public:
  explicit FrequencyReplica(
      const frequency::RandomizedFrequencyOptions& options)
      : options_(options) {}

  void Apply(const wire::Message& msg) {
    switch (msg.type) {
      case wire::MsgType::kCoarseReport:
        if (coarse_.ApplyReport(msg.a)) {
          FoldRound();  // with the closing round's inv_p_
          inv_p_ = InvPFor(coarse_.n_bar);
        }
        break;
      case wire::MsgType::kCounterReport:
        ForInstance(&live_[msg.a], msg.b)->cbar = msg.c;
        break;
      case wire::MsgType::kSampleForward: {
        InstanceAgg* agg = ForInstance(&live_[msg.a], msg.b);
        if (agg->cbar == 0) agg->d += 1;
        break;
      }
      case wire::MsgType::kSplitNotice:
        // Site-side bookkeeping only: the split mints a fresh instance id,
        // which future counter/sample frames carry.
        break;
      default:
        break;
    }
  }

  double Estimate(uint64_t item) const {
    double est = 0;
    auto frozen = frozen_.find(item);
    if (frozen != frozen_.end()) est += frozen->second;
    auto live = live_.find(item);
    if (live != live_.end()) est += LiveEstimate(live->second);
    return est;
  }

  /// Every item the replica has state for, with its current estimate
  /// (evaluated through the same Estimate() path a point query uses).
  /// Serves the coordinator's heavy-hitters query: callers filter by
  /// threshold phi * n-hat themselves.
  std::vector<std::pair<uint64_t, double>> ItemEstimates() const {
    std::vector<std::pair<uint64_t, double>> out;
    out.reserve(frozen_.size() + live_.size());
    for (const auto& [item, est] : frozen_) {
      (void)est;
      out.emplace_back(item, Estimate(item));
    }
    for (const auto& [item, agg] : live_) {
      (void)agg;
      if (frozen_.find(item) == frozen_.end()) {
        out.emplace_back(item, Estimate(item));
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  uint64_t round() const { return coarse_.round; }
  uint64_t n_bar() const { return coarse_.n_bar; }
  uint64_t n_prime() const { return coarse_.n_prime; }

 private:
  struct InstanceAgg {
    uint64_t instance = 0;
    uint64_t cbar = 0;
    uint64_t d = 0;
  };
  struct ItemAgg {
    std::vector<InstanceAgg> instances;  // sorted by instance id
  };

  static InstanceAgg* ForInstance(ItemAgg* agg, uint64_t instance) {
    auto it = std::lower_bound(
        agg->instances.begin(), agg->instances.end(), instance,
        [](const InstanceAgg& a, uint64_t id) { return a.instance < id; });
    if (it != agg->instances.end() && it->instance == instance) return &*it;
    it = agg->instances.insert(it, InstanceAgg{instance, 0, 0});
    return &*it;
  }

  double LiveEstimate(const ItemAgg& agg) const {
    double inv_p = static_cast<double>(inv_p_);
    double est = 0;
    for (const InstanceAgg& inst : agg.instances) {
      if (inst.cbar > 0) {
        est += static_cast<double>(inst.cbar) - 2.0 + 2.0 * inv_p;
      } else if (!options_.naive_boundary_estimator) {
        est -= static_cast<double>(inst.d) * inv_p;
      }
    }
    return est;
  }

  void FoldRound() {
    // Per-item accumulation only — iteration order across items cannot
    // influence any single item's frozen value.
    for (const auto& [item, agg] : live_) {
      double est = LiveEstimate(agg);
      if (est != 0.0) frozen_[item] += est;
    }
    live_.clear();
  }

  uint64_t InvPFor(uint64_t n_bar) const {
    double scaled = options_.epsilon * static_cast<double>(n_bar) /
                    (options_.confidence_factor *
                     std::sqrt(static_cast<double>(options_.num_sites)));
    if (scaled <= 1.0) return 1;
    return FloorPow2(scaled);
  }

  frequency::RandomizedFrequencyOptions options_;
  CoarseMirror coarse_;
  uint64_t inv_p_ = 1;
  std::map<uint64_t, ItemAgg> live_;
  std::map<uint64_t, double> frozen_;
};

// --- Rank replica ---------------------------------------------------------
// Mirrors the coordinator storage of RandomizedRankTracker: per site, the
// instances of algorithm C in stream order, each holding its shipped
// summaries, its live residual window, and its round's 1/p. Per-site FIFO
// delivery gives the replica the tracker's own ordering guarantees: a
// chunk's frames arrive in leaf order, and the coarse report that opens a
// round precedes the round's first summary. Instances are opened lazily
// at their first frame — an instance the tracker created but never fed
// contributes exactly +0.0 to the estimate, so skipping it is FP-safe —
// and closed by the round's derived broadcast or by the chunk-completing
// top summary (first_leaf == 0, end_leaf == num_leaves), which also
// triggers the tracker's drop-covered-summaries prune.

class RankReplica {
 public:
  explicit RankReplica(const rank::RandomizedRankOptions& options)
      : options_(options),
        sites_(static_cast<size_t>(options.num_sites)) {}

  void Apply(const wire::Message& msg) {
    switch (msg.type) {
      case wire::MsgType::kCoarseReport:
        if (coarse_.ApplyReport(msg.a)) {
          RecomputeRoundParams(coarse_.n_bar);
          for (Site& site : sites_) site.open = false;
        }
        break;
      case wire::MsgType::kRankSummary: {
        Site& site = sites_[static_cast<size_t>(msg.site)];
        Instance& inst = Open(&site);
        StoredSummary stored;
        stored.first_leaf = static_cast<uint32_t>(msg.a);
        stored.end_leaf = static_cast<uint32_t>(msg.b);
        stored.values = msg.values;
        stored.segments = msg.segments;
        uint32_t end_leaf = stored.end_leaf;
        inst.summaries.push_back(std::move(stored));
        // Completed leaves are covered: drop their residual samples
        // (mirrors the tracker's leaf-completion prune; residuals arrive
        // in leaf order on the site's FIFO).
        while (inst.residual_begin < inst.residuals.size() &&
               inst.residuals[inst.residual_begin].leaf < end_leaf) {
          ++inst.residual_begin;
        }
        if (stored_covers_chunk(inst.summaries.back())) {
          // Chunk done: keep only the top summary (the tracker's
          // dyadic-cover prune) and close the instance — the next frame
          // from this site opens the successor.
          auto top = std::find_if(
              inst.summaries.begin(), inst.summaries.end(),
              [this](const StoredSummary& s) {
                return s.first_leaf == 0 && s.end_leaf == num_leaves_;
              });
          StoredSummary keep = std::move(*top);
          inst.summaries.clear();
          inst.summaries.push_back(std::move(keep));
          site.open = false;
        }
        break;
      }
      case wire::MsgType::kRankResidual: {
        Site& site = sites_[static_cast<size_t>(msg.site)];
        Open(&site).residuals.push_back(
            ResidualSample{static_cast<uint32_t>(msg.a), msg.b});
        break;
      }
      default:
        break;
    }
  }

  double Estimate(uint64_t value) const {
    // Exact mirror of RandomizedRankTracker::EstimateRank: site-major,
    // instances in stream order, greedy maximal dyadic cover, residual
    // window at the instance's own p.
    double est = 0;
    for (const Site& site : sites_) {
      for (const Instance& data : site.instances) {
        uint32_t cursor = 0;
        for (;;) {
          const StoredSummary* best = nullptr;
          for (const StoredSummary& stored : data.summaries) {
            if (stored.first_leaf == cursor &&
                (best == nullptr || stored.end_leaf > best->end_leaf)) {
              best = &stored;
            }
          }
          if (best == nullptr) break;
          est += SummaryRankBelow(*best, value);
          cursor = best->end_leaf;
        }
        uint64_t below = 0;
        for (size_t i = data.residual_begin; i < data.residuals.size(); ++i) {
          if (data.residuals[i].value < value) ++below;
        }
        est += static_cast<double>(below) * data.inv_p;
      }
    }
    return est;
  }

  uint64_t round() const { return coarse_.round; }
  uint64_t n_bar() const { return coarse_.n_bar; }
  uint64_t n_prime() const { return coarse_.n_prime; }

 private:
  struct StoredSummary {
    uint32_t first_leaf = 0;
    uint32_t end_leaf = 0;
    std::vector<uint64_t> values;
    std::vector<std::pair<uint64_t, uint32_t>> segments;
  };
  struct ResidualSample {
    uint32_t leaf = 0;
    uint64_t value = 0;
  };
  struct Instance {
    std::vector<StoredSummary> summaries;
    std::vector<ResidualSample> residuals;
    size_t residual_begin = 0;
    double inv_p = 1.0;
  };
  struct Site {
    std::vector<Instance> instances;
    bool open = false;
  };

  bool stored_covers_chunk(const StoredSummary& stored) const {
    return stored.first_leaf == 0 && stored.end_leaf == num_leaves_;
  }

  Instance& Open(Site* site) {
    if (!site->open) {
      site->instances.emplace_back();
      site->instances.back().inv_p = inv_p_;
      site->open = true;
    }
    return site->instances.back();
  }

  void RecomputeRoundParams(uint64_t n_bar) {
    // Same expressions as RandomizedRankTracker::RecomputeRoundParams so
    // inv_p matches bit for bit.
    double root_k = std::sqrt(static_cast<double>(options_.num_sites));
    inv_p_ = std::max(1.0, options_.epsilon * static_cast<double>(n_bar) /
                               (options_.confidence_factor * root_k));
    chunk_size_ = std::max<uint64_t>(
        1, n_bar / static_cast<uint64_t>(options_.num_sites));
    uint64_t block = std::max<uint64_t>(1, static_cast<uint64_t>(inv_p_));
    block = std::min(block, chunk_size_);
    num_leaves_ = static_cast<uint32_t>(CeilDiv(chunk_size_, block));
  }

  static double SummaryRankBelow(const StoredSummary& summary, uint64_t x) {
    uint64_t below = 0;
    uint32_t begin = 0;
    for (const auto& [weight, end] : summary.segments) {
      auto first = summary.values.begin() + begin;
      auto last = summary.values.begin() + end;
      below += weight * static_cast<uint64_t>(
                            std::lower_bound(first, last, x) - first);
      begin = end;
    }
    return static_cast<double>(below);
  }

  rank::RandomizedRankOptions options_;
  CoarseMirror coarse_;
  double inv_p_ = 1.0;
  uint64_t chunk_size_ = 1;
  uint32_t num_leaves_ = 1;
  std::vector<Site> sites_;
};

}  // namespace sim
}  // namespace disttrack

#endif  // DISTTRACK_SIM_REPLICA_H_
