#include "disttrack/sim/robust_cluster.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>

#include "disttrack/common/math_util.h"
#include "disttrack/sim/replica.h"

namespace disttrack {
namespace sim {

namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Frame-content equality for the crash-replay cross-check. The epoch tag
/// is excluded on purpose: a replayed frame is re-stamped with the
/// *current* round (the coordinator kept the round state through the
/// site's crash), while the journaled original carries the round at its
/// first emission. Everything the estimators consume must match exactly.
bool SameMessageIgnoringEpoch(const wire::Message& a, const wire::Message& b) {
  return a.type == b.type && a.site == b.site && a.a == b.a && a.b == b.b &&
         a.c == b.c && a.paper_words == b.paper_words &&
         a.values == b.values && a.segments == b.segments;
}

// --- Tracker adapters -----------------------------------------------------

struct CountAdapter {
  using Tracker = count::RandomizedCountTracker;
  using Options = count::RandomizedCountOptions;
  using Replica = CountReplica;
  static void Deliver(Tracker* t, const Arrival& a) { t->Arrive(a.site); }
  static double Estimate(const Tracker& t, uint64_t) {
    return t.EstimateCount();
  }
  static void ReplayArrive(Tracker* t, int site, uint64_t /*key*/,
                           const uint64_t* mid_n_bar) {
    t->ReplayCrashArrive(site, mid_n_bar);
  }
  static void ReplayRitual(Tracker* t, int site, uint64_t n_bar) {
    t->ReplayCrashRitual(site, n_bar);
  }
  static void Truth(const Arrival&, uint64_t, uint64_t* acc) { ++*acc; }
};

struct FrequencyAdapter {
  using Tracker = frequency::RandomizedFrequencyTracker;
  using Options = frequency::RandomizedFrequencyOptions;
  using Replica = FrequencyReplica;
  static void Deliver(Tracker* t, const Arrival& a) {
    t->Arrive(a.site, a.key);
  }
  static double Estimate(const Tracker& t, uint64_t query) {
    return t.EstimateFrequency(query);
  }
  static void ReplayArrive(Tracker* t, int site, uint64_t key,
                           const uint64_t* mid_n_bar) {
    t->ReplayCrashArrive(site, key, mid_n_bar);
  }
  static void ReplayRitual(Tracker* t, int site, uint64_t n_bar) {
    t->ReplayCrashRitual(site, n_bar);
  }
  static void Truth(const Arrival& a, uint64_t query, uint64_t* acc) {
    if (a.key == query) ++*acc;
  }
};

struct RankAdapter {
  using Tracker = rank::RandomizedRankTracker;
  using Options = rank::RandomizedRankOptions;
  using Replica = RankReplica;
  static void Deliver(Tracker* t, const Arrival& a) {
    t->Arrive(a.site, a.key);
  }
  static double Estimate(const Tracker& t, uint64_t query) {
    return t.EstimateRank(query);
  }
  static void ReplayArrive(Tracker* t, int site, uint64_t key,
                           const uint64_t* mid_n_bar) {
    t->ReplayCrashArrive(site, key, mid_n_bar);
  }
  static void ReplayRitual(Tracker* t, int site, uint64_t n_bar) {
    t->ReplayCrashRitual(site, n_bar);
  }
  static void Truth(const Arrival& a, uint64_t query, uint64_t* acc) {
    if (a.key < query) ++*acc;
  }
};

// --- Engine ---------------------------------------------------------------

// Per-site channel topology (link ids are site * 4 + kind):
//   kind 0  up_data    site -> coordinator   data frames
//   kind 1  up_ack     coordinator -> site   cumulative acks for up_data
//   kind 2  down_data  coordinator -> site   broadcast frames
//   kind 3  down_ack   site -> coordinator   cumulative acks for down_data
// Data links carry reliable channels (ReliableSender / ReliableReceiver);
// ack links are fire-and-forget (a lost ack is recovered by the next ack
// or by the sender's retransmit). The backoff's initial delay must exceed
// the 2-tick send+ack round trip, or a fault-free run would retransmit.
constexpr int kUpData = 0;
constexpr int kUpAck = 1;
constexpr int kDownData = 2;
constexpr int kDownAck = 3;
constexpr uint64_t kBackoffInitial = 4;
constexpr uint64_t kBackoffCap = 64;

template <typename Adapter>
class Engine : public wire::WireTap {
 public:
  Engine(const typename Adapter::Options& options, const Workload& workload,
         uint64_t query, const RobustOptions& robust)
      : options_(options),
        workload_(workload),
        query_(query),
        robust_(robust),
        plan_(robust.plan),
        k_(options.num_sites),
        tracker_(options),
        replica_(options),
        meter_(options.num_sites),
        site_count_(static_cast<size_t>(k_), 0),
        key_log_(static_cast<size_t>(k_)),
        up_journal_(static_cast<size_t>(k_)),
        down_journal_(static_cast<size_t>(k_)),
        snapshots_(static_cast<size_t>(k_)),
        snapshot_pending_(static_cast<size_t>(k_), 0) {
    if (plan_.snapshot_every == 0) plan_.snapshot_every = 1;
    links_.reserve(static_cast<size_t>(k_) * 4);
    for (int s = 0; s < k_; ++s) {
      for (int kind = 0; kind < 4; ++kind) {
        links_.emplace_back(&plan_, static_cast<uint64_t>(s * 4 + kind));
      }
    }
    ExponentialBackoff backoff(kBackoffInitial, kBackoffCap);
    up_send_.assign(static_cast<size_t>(k_), ReliableSender(backoff));
    down_send_.assign(static_cast<size_t>(k_), ReliableSender(backoff));
    up_recv_.assign(static_cast<size_t>(k_), ReliableReceiver());
    down_recv_.assign(static_cast<size_t>(k_), ReliableReceiver());
    tracker_.set_wire_tap(this);
  }

  RobustReport Run() {
    for (int s = 0; s < k_; ++s) TakeSnapshot(s);

    std::vector<FaultPlan::SiteCrash> crashes = plan_.site_crashes;
    std::stable_sort(crashes.begin(), crashes.end(),
                     [](const FaultPlan::SiteCrash& a,
                        const FaultPlan::SiteCrash& b) {
                       return a.global_arrival < b.global_arrival;
                     });
    std::vector<uint64_t> restarts = plan_.coordinator_restarts;
    std::sort(restarts.begin(), restarts.end());
    for (const auto& crash : crashes) {
      if (crash.site < 0 || crash.site >= k_) {
        return Abort("fault plan crashes an out-of-range site");
      }
    }

    std::vector<uint64_t> schedule =
        CheckpointCounts(workload_.size(), robust_.checkpoint_factor);
    size_t crash_idx = 0;
    size_t restart_idx = 0;
    size_t ckpt_idx = 0;
    uint64_t truth = 0;

    for (uint64_t g = 0; g < workload_.size() && report_.ok; ++g) {
      while (crash_idx < crashes.size() &&
             crashes[crash_idx].global_arrival == g && report_.ok) {
        CrashAndRecover(crashes[crash_idx].site);
        ++crash_idx;
      }
      while (restart_idx < restarts.size() && restarts[restart_idx] == g &&
             report_.ok) {
        RestartCoordinator();
        ++restart_idx;
      }
      if (!report_.ok) break;

      const Arrival& arrival = workload_[g];
      current_site_ = arrival.site;
      ++site_count_[static_cast<size_t>(arrival.site)];
      key_log_[static_cast<size_t>(arrival.site)].push_back(arrival.key);
      arrival_paper_words_ = 0;
      uint64_t words_before = tracker_.meter().TotalWords();

      Adapter::Deliver(&tracker_, arrival);
      Pump();
      if (!report_.ok) break;

      if (tracker_.meter().TotalWords() - words_before !=
          arrival_paper_words_) {
        return Abort("frame word charges diverged from the paper meter");
      }
      if (replica_.round() != broadcast_records_.size()) {
        return Abort("replica round diverged after quiescence");
      }
      Adapter::Truth(arrival, query_, &truth);

      int s = arrival.site;
      if (site_count_[static_cast<size_t>(s)] % plan_.snapshot_every == 0) {
        snapshot_pending_[static_cast<size_t>(s)] = 1;
      }
      if (snapshot_pending_[static_cast<size_t>(s)] &&
          tracker_.SiteSnapshotReady(s)) {
        TakeSnapshot(s);
        snapshot_pending_[static_cast<size_t>(s)] = 0;
      }

      if (ckpt_idx < schedule.size() && schedule[ckpt_idx] == g + 1) {
        double est = Adapter::Estimate(tracker_, query_);
        double rep = replica_.Estimate(query_);
        if (!SameBits(est, rep)) {
          return Abort("replica estimate diverged from tracker");
        }
        report_.checkpoints.push_back(RobustCheckpoint{
            g + 1, est, rep, static_cast<double>(truth)});
        ++ckpt_idx;
      }
    }

    Finish();
    return std::move(report_);
  }

  // WireTap: the tracker hands over each metered message at its §1.1 send
  // instant; stage it on the reliable channel and offer it to the link.
  void OnMessage(wire::Message&& msg) override {
    if (!report_.ok) return;
    if (msg.site < 0) {
      if (recovering_) {
        Fail("crash replay emitted a broadcast");
        return;
      }
      arrival_paper_words_ += wire::PaperWordCharge(msg, k_);
      broadcast_records_.push_back(
          BroadcastRecord{msg.a, msg.b, current_site_, site_count_});
      for (int s = 0; s < k_; ++s) {
        std::vector<uint8_t> frame;
        down_send_[static_cast<size_t>(s)].Stage(msg, now_, &frame);
        down_journal_[static_cast<size_t>(s)].push_back(msg);
        meter_.RecordWireFrame(frame.size());
        uint64_t dup = links_[LinkId(s, kDownData)].Send(std::move(frame),
                                                         now_);
        if (dup) meter_.RecordRetransmit(dup);
      }
      return;
    }
    int s = msg.site;
    std::vector<uint8_t> frame;
    uint64_t seq = up_send_[static_cast<size_t>(s)].Stage(msg, now_, &frame);
    if (recovering_) {
      // A replayed frame re-uses its original sequence number (the sender
      // was reset to the snapshot's next_seq and the replay regenerates
      // the identical frame sequence); it must match the journaled
      // original and is charged as recovery retransmission.
      const auto& journal = up_journal_[static_cast<size_t>(s)];
      if (seq > journal.size() ||
          !SameMessageIgnoringEpoch(msg, journal[static_cast<size_t>(seq) -
                                                 1])) {
        Fail("crash replay re-emitted a frame that differs from the journal");
        return;
      }
      meter_.RecordRetransmit(frame.size());
    } else {
      arrival_paper_words_ += wire::PaperWordCharge(msg, k_);
      meter_.RecordWireFrame(frame.size());
    }
    uint64_t dup = links_[LinkId(s, kUpData)].Send(std::move(frame), now_);
    if (dup) meter_.RecordRetransmit(dup);
  }

 private:
  struct BroadcastRecord {
    uint64_t round = 0;
    uint64_t n_bar = 0;
    int trigger_site = -1;
    // site_pos[i]: arrivals site i had completed or begun when the
    // broadcast fired. The driver increments site_count before Arrive, so
    // for the trigger site this counts the in-progress arrival.
    std::vector<uint64_t> site_pos;
  };

  struct SiteSnapshot {
    std::vector<uint64_t> blob;
    uint64_t site_arrivals = 0;
    uint64_t up_next_seq = 1;
    uint64_t down_watermark = 0;
    size_t broadcast_count = 0;
  };

  size_t LinkId(int site, int kind) const {
    return static_cast<size_t>(site) * 4 + static_cast<size_t>(kind);
  }

  void Fail(const char* what) {
    if (!report_.ok) return;
    report_.ok = false;
    report_.error = what;
  }

  RobustReport Abort(const char* what) {
    Fail(what);
    Finish();
    return std::move(report_);
  }

  void Finish() {
    report_.wire_bytes = meter_.wire().bytes;
    report_.retransmit_bytes = meter_.retransmit().bytes;
    report_.overhead_bytes = meter_.wire_overhead().bytes;
    report_.link_bytes_offered = 0;
    for (const FaultyLink& link : links_) {
      report_.link_bytes_offered += link.bytes_offered();
    }
    report_.retransmissions = 0;
    for (int s = 0; s < k_; ++s) {
      report_.retransmissions +=
          up_send_[static_cast<size_t>(s)].retransmissions() +
          down_send_[static_cast<size_t>(s)].retransmissions();
      report_.frames_deduped +=
          up_recv_[static_cast<size_t>(s)].duplicates() +
          down_recv_[static_cast<size_t>(s)].duplicates();
    }
    report_.paper_words = tracker_.meter().TotalWords();
    report_.paper_messages = tracker_.meter().TotalMessages();
    if (report_.ok &&
        report_.link_bytes_offered !=
            report_.wire_bytes + report_.retransmit_bytes +
                report_.overhead_bytes) {
      Fail("link bytes diverged from meter frame accounting");
    }
  }

  void SendControl(int site, int kind, wire::MsgType type, uint64_t a) {
    wire::Message msg;
    msg.type = type;
    msg.site = site;
    msg.a = a;
    std::vector<uint8_t> frame;
    wire::EncodeFrame(msg, 0, &frame);
    meter_.RecordWireOverhead(frame.size());
    uint64_t dup = links_[LinkId(site, kind)].Send(std::move(frame), now_);
    if (dup) meter_.RecordWireOverhead(dup);
  }

  void ApplyUplink(int site, const wire::Message& msg) {
    auto& journal = up_journal_[static_cast<size_t>(site)];
    journal.push_back(msg);
    global_journal_.push_back(msg);
    uint64_t round_before = replica_.round();
    replica_.Apply(msg);
    if (replica_.round() != round_before) {
      // Derived broadcast: cross-check against the tap-side record.
      if (replica_.round() != round_before + 1 ||
          replica_.round() > broadcast_records_.size()) {
        Fail("replica derived a broadcast the tracker never performed");
        return;
      }
      const BroadcastRecord& rec =
          broadcast_records_[static_cast<size_t>(replica_.round()) - 1];
      if (rec.round != replica_.round() || rec.n_bar != replica_.n_bar()) {
        Fail("replica broadcast diverged from the tracker's");
      }
    }
  }

  void Pump() {
    std::vector<std::vector<uint8_t>> frames;
    std::vector<wire::Message> delivered;
    uint64_t start = now_;
    while (report_.ok) {
      ++now_;
      for (int s = 0; s < k_ && report_.ok; ++s) {
        for (int kind = 0; kind < 4; ++kind) {
          frames.clear();
          if (!links_[LinkId(s, kind)].Deliver(now_, &frames)) continue;
          for (auto& raw : frames) {
            wire::Message msg;
            uint64_t seq = 0;
            if (!wire::DecodeFrame(raw.data(), raw.size(), &msg, &seq)) {
              Fail("undecodable frame on a fault-injected link");
              break;
            }
            switch (kind) {
              case kUpData: {
                if (msg.type == wire::MsgType::kHello) break;
                delivered.clear();
                up_recv_[static_cast<size_t>(s)].Accept(seq, std::move(msg),
                                                        &delivered);
                for (const wire::Message& m : delivered) ApplyUplink(s, m);
                report_.frames_delivered += delivered.size();
                SendControl(s, kUpAck, wire::MsgType::kAck,
                            up_recv_[static_cast<size_t>(s)].watermark());
                break;
              }
              case kUpAck:
                up_send_[static_cast<size_t>(s)].Ack(msg.a);
                break;
              case kDownData: {
                if (msg.type == wire::MsgType::kHello) break;
                delivered.clear();
                down_recv_[static_cast<size_t>(s)].Accept(
                    seq, std::move(msg), &delivered);
                uint64_t wm =
                    down_recv_[static_cast<size_t>(s)].watermark();
                uint64_t base = wm - delivered.size();
                for (size_t i = 0; i < delivered.size(); ++i) {
                  // The site applies nothing (the tracker already ran the
                  // broadcast ritual in place); verify the frame matches
                  // the coordinator's journal copy bit for bit.
                  const auto& journal =
                      down_journal_[static_cast<size_t>(s)];
                  size_t idx = static_cast<size_t>(base + i);
                  if (idx >= journal.size() ||
                      !SameMessageIgnoringEpoch(delivered[i],
                                                journal[idx]) ||
                      delivered[i].epoch != journal[idx].epoch) {
                    Fail("delivered broadcast diverged from the journal");
                    break;
                  }
                }
                report_.frames_delivered += delivered.size();
                SendControl(s, kDownAck, wire::MsgType::kAck, wm);
                break;
              }
              case kDownAck:
                down_send_[static_cast<size_t>(s)].Ack(msg.a);
                break;
            }
            if (!report_.ok) break;
          }
        }
        frames.clear();
        if (up_send_[static_cast<size_t>(s)].DueRetransmits(now_, &frames)) {
          for (auto& raw : frames) {
            meter_.RecordRetransmit(raw.size());
            uint64_t dup =
                links_[LinkId(s, kUpData)].Send(std::move(raw), now_);
            if (dup) meter_.RecordRetransmit(dup);
          }
        }
        frames.clear();
        if (down_send_[static_cast<size_t>(s)].DueRetransmits(now_,
                                                              &frames)) {
          for (auto& raw : frames) {
            meter_.RecordRetransmit(raw.size());
            uint64_t dup =
                links_[LinkId(s, kDownData)].Send(std::move(raw), now_);
            if (dup) meter_.RecordRetransmit(dup);
          }
        }
      }
      if (!report_.ok) break;
      bool idle = true;
      for (const FaultyLink& link : links_) idle = idle && link.idle();
      for (int s = 0; s < k_ && idle; ++s) {
        idle = up_send_[static_cast<size_t>(s)].idle() &&
               down_send_[static_cast<size_t>(s)].idle();
      }
      if (idle) break;
      if (now_ - start > robust_.tick_cap) {
        Fail("transport failed to quiesce within the tick cap");
        break;
      }
    }
  }

  void TakeSnapshot(int site) {
    SiteSnapshot& snap = snapshots_[static_cast<size_t>(site)];
    snap.blob.clear();
    tracker_.SerializeSiteState(site, &snap.blob);
    snap.site_arrivals = site_count_[static_cast<size_t>(site)];
    snap.up_next_seq = up_send_[static_cast<size_t>(site)].next_seq();
    snap.down_watermark = down_recv_[static_cast<size_t>(site)].watermark();
    snap.broadcast_count = broadcast_records_.size();
  }

  void CrashAndRecover(int site) {
    const SiteSnapshot& snap = snapshots_[static_cast<size_t>(site)];
    ++report_.site_recoveries;
    recovering_ = true;

    // The crash wipes the site's volatile state: tracker-side private
    // state back to the snapshot, uplink sender soft state (unacked
    // buffer + next seq), downlink delivery watermark. Coordinator-side
    // state — the journal, the replica, the uplink dedup watermark —
    // survives by design; dedup is what makes the replay idempotent.
    tracker_.BeginCrashReplay(site);
    tracker_.RestoreSiteState(site, snap.blob);
    up_send_[static_cast<size_t>(site)].Reset(snap.up_next_seq);
    down_recv_[static_cast<size_t>(site)].Reset(snap.down_watermark);

    // Reconnect handshake: watermark exchange, pure transport overhead.
    SendControl(site, kUpData, wire::MsgType::kHello, snap.up_next_seq - 1);
    SendControl(site, kDownData, wire::MsgType::kHello,
                down_journal_[static_cast<size_t>(site)].size());

    // Re-deliver the broadcasts the site lost, from the coordinator's
    // journal, with their original sequence numbers.
    const auto& down_journal = down_journal_[static_cast<size_t>(site)];
    uint64_t live_next =
        down_send_[static_cast<size_t>(site)].next_seq();
    if (live_next != down_journal.size() + 1) {
      Fail("down channel sequence diverged from the journal");
      return;
    }
    down_send_[static_cast<size_t>(site)].Reset(snap.down_watermark + 1);
    for (uint64_t seq = snap.down_watermark + 1; seq <= down_journal.size();
         ++seq) {
      std::vector<uint8_t> frame;
      down_send_[static_cast<size_t>(site)].Stage(
          down_journal[static_cast<size_t>(seq) - 1], now_, &frame);
      meter_.RecordRetransmit(frame.size());
      uint64_t dup =
          links_[LinkId(site, kDownData)].Send(std::move(frame), now_);
      if (dup) meter_.RecordRetransmit(dup);
    }
    Pump();
    if (!report_.ok) return;
    if (down_recv_[static_cast<size_t>(site)].watermark() !=
        down_journal.size()) {
      Fail("crashed site failed to catch up on broadcasts");
      return;
    }

    // Replay the site's lost arrivals, interleaved with the round rituals
    // other sites' broadcasts imposed on it, in original order. Every
    // frame the replay re-emits is content-checked against the journal
    // (OnMessage) and deduplicated by the coordinator's receiver.
    size_t rec_idx = snap.broadcast_count;
    const size_t rec_end = broadcast_records_.size();
    const auto& keys = key_log_[static_cast<size_t>(site)];
    const uint64_t j_end = site_count_[static_cast<size_t>(site)];
    for (uint64_t j = snap.site_arrivals; j < j_end && report_.ok; ++j) {
      while (rec_idx < rec_end &&
             broadcast_records_[rec_idx].trigger_site != site &&
             broadcast_records_[rec_idx]
                     .site_pos[static_cast<size_t>(site)] <= j) {
        Adapter::ReplayRitual(&tracker_, site,
                              broadcast_records_[rec_idx].n_bar);
        ++rec_idx;
      }
      const uint64_t* mid = nullptr;
      uint64_t mid_n_bar = 0;
      if (rec_idx < rec_end &&
          broadcast_records_[rec_idx].trigger_site == site &&
          broadcast_records_[rec_idx]
                  .site_pos[static_cast<size_t>(site)] == j + 1) {
        mid_n_bar = broadcast_records_[rec_idx].n_bar;
        mid = &mid_n_bar;
        ++rec_idx;
      }
      Adapter::ReplayArrive(&tracker_, site,
                            keys[static_cast<size_t>(j)], mid);
      Pump();
    }
    if (!report_.ok) return;
    while (rec_idx < rec_end &&
           broadcast_records_[rec_idx].trigger_site != site &&
           broadcast_records_[rec_idx]
                   .site_pos[static_cast<size_t>(site)] <= j_end) {
      Adapter::ReplayRitual(&tracker_, site,
                            broadcast_records_[rec_idx].n_bar);
      ++rec_idx;
    }
    if (rec_idx != rec_end) {
      Fail("crash replay left journaled broadcasts unapplied");
      return;
    }
    tracker_.EndCrashReplay();
    recovering_ = false;

    // The recovered state is the live state: refresh the snapshot when
    // the tracker allows it so later crashes replay from here.
    if (tracker_.SiteSnapshotReady(site)) {
      TakeSnapshot(site);
      snapshot_pending_[static_cast<size_t>(site)] = 0;
    }
  }

  void RestartCoordinator() {
    ++report_.coordinator_restarts;
    double before = replica_.Estimate(query_);
    // Soft state dies; the epoch journal is the persistent store. Rebuild
    // the replica by re-applying the journal in original delivery order,
    // and re-derive the channel positions from the per-site journals.
    replica_ = typename Adapter::Replica(options_);
    for (const wire::Message& msg : global_journal_) replica_.Apply(msg);
    for (int s = 0; s < k_; ++s) {
      up_recv_[static_cast<size_t>(s)].Reset(
          up_journal_[static_cast<size_t>(s)].size());
      down_send_[static_cast<size_t>(s)].Reset(
          down_journal_[static_cast<size_t>(s)].size() + 1);
      SendControl(s, kDownData, wire::MsgType::kHello,
                  down_journal_[static_cast<size_t>(s)].size());
    }
    Pump();
    if (!report_.ok) return;
    double after = replica_.Estimate(query_);
    if (!SameBits(before, after)) {
      Fail("journal rebuild diverged from the live replica");
      return;
    }
    if (replica_.round() != broadcast_records_.size()) {
      Fail("rebuilt replica round diverged");
    }
  }

  typename Adapter::Options options_;
  const Workload& workload_;
  uint64_t query_;
  RobustOptions robust_;
  FaultPlan plan_;
  int k_;

  typename Adapter::Tracker tracker_;
  typename Adapter::Replica replica_;
  CommMeter meter_;  // wire channels only; the tracker's meter stays §1.1

  std::vector<FaultyLink> links_;
  std::vector<ReliableSender> up_send_;
  std::vector<ReliableSender> down_send_;
  std::vector<ReliableReceiver> up_recv_;
  std::vector<ReliableReceiver> down_recv_;

  uint64_t now_ = 0;
  int current_site_ = -1;
  bool recovering_ = false;
  uint64_t arrival_paper_words_ = 0;

  std::vector<uint64_t> site_count_;
  std::vector<std::vector<uint64_t>> key_log_;
  std::vector<std::vector<wire::Message>> up_journal_;    // by seq - 1
  std::vector<std::vector<wire::Message>> down_journal_;  // by seq - 1
  std::vector<wire::Message> global_journal_;  // delivery order
  std::vector<BroadcastRecord> broadcast_records_;
  std::vector<SiteSnapshot> snapshots_;
  std::vector<char> snapshot_pending_;

  RobustReport report_;
};

}  // namespace

RobustReport RobustReplayCount(const count::RandomizedCountOptions& options,
                               const Workload& workload,
                               const RobustOptions& robust) {
  return Engine<CountAdapter>(options, workload, 0, robust).Run();
}

RobustReport RobustReplayFrequency(
    const frequency::RandomizedFrequencyOptions& options,
    const Workload& workload, uint64_t query_item,
    const RobustOptions& robust) {
  return Engine<FrequencyAdapter>(options, workload, query_item, robust)
      .Run();
}

RobustReport RobustReplayRank(const rank::RandomizedRankOptions& options,
                              const Workload& workload, uint64_t query_value,
                              const RobustOptions& robust) {
  return Engine<RankAdapter>(options, workload, query_value, robust).Run();
}

}  // namespace sim
}  // namespace disttrack
