// Fault-injected replay harness (tentpole of the robustness PR).
//
// The serial sim (cluster.h) delivers coordinator traffic as direct
// calls under the perfectly reliable channels of §1.1. This harness runs
// the same trackers with every protocol message *also* routed as a
// versioned wire frame (sim/wire.h) through fault-injected links
// (sim/transport.h):
//
//   - the tracker stays authoritative: its scalar Arrive() path runs
//     unchanged and its CommMeter keeps the paper's word counts;
//   - a WireTap mirrors every metered message as a frame the instant the
//     §1.1 model would send it; frames travel per-site reliable channels
//     (sequence numbers, acks, capped-exponential-backoff retransmits)
//     over FaultyLinks that drop / duplicate / reorder / delay;
//   - a coordinator-side replica rebuilds the estimator state *from the
//     delivered frames alone* — it must match the tracker's estimate bit
//     for bit at every checkpoint, which is the differential proof that
//     any fault schedule with eventual delivery converges to the
//     fault-free execution;
//   - site crashes restore the site from its last snapshot and replay its
//     lost arrivals (ReplayCrash* tracker hooks); every re-emitted frame
//     must byte-match the journaled original (modulo the epoch tag, which
//     is re-stamped at the current round) and is deduplicated by sequence
//     number at the coordinator — no double counting;
//   - coordinator restarts discard the replica and rebuild it from the
//     epoch journal; the rebuilt estimate must be bit-identical.
//
// Time is a logical tick counter: after every arrival the engine pumps
// all links to quiescence (everything delivered and acked), realizing the
// §1.1 contract even under faults. Everything is deterministic from
// (options, workload, FaultPlan).
//
// Byte accounting (tests assert exact equality):
//   sum of FaultyLink::bytes_offered over all links
//     == wire.bytes (first transmissions)
//      + retransmit.bytes (backoff resends, fault duplicates, crash
//        recovery and re-delivery traffic)
//      + wire_overhead.bytes (acks, hello handshakes)
// on the harness's own CommMeter (the tracker's meter stays pure §1.1).

#ifndef DISTTRACK_SIM_ROBUST_CLUSTER_H_
#define DISTTRACK_SIM_ROBUST_CLUSTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "disttrack/count/randomized_count.h"
#include "disttrack/frequency/randomized_frequency.h"
#include "disttrack/rank/randomized_rank.h"
#include "disttrack/sim/cluster.h"
#include "disttrack/sim/transport.h"

namespace disttrack {
namespace sim {

struct RobustOptions {
  FaultPlan plan;

  /// Geometric checkpoint schedule factor (shared with cluster.h).
  double checkpoint_factor = 1.5;

  /// Abort bound on one quiescence pump. A correct run quiesces in a few
  /// ticks per arrival; hitting the cap means frames stopped making
  /// progress (a transport bug, not a fault — faults always retransmit).
  uint64_t tick_cap = 1000000;
};

struct RobustCheckpoint {
  uint64_t n = 0;
  double estimate = 0;          ///< authoritative tracker
  double replica_estimate = 0;  ///< rebuilt from delivered frames
  double truth = 0;
};

struct RobustReport {
  std::vector<RobustCheckpoint> checkpoints;

  uint64_t frames_delivered = 0;  ///< in-order data frames applied
  uint64_t frames_deduped = 0;    ///< duplicates dropped by seq dedup
  uint64_t retransmissions = 0;   ///< backoff retransmits (both directions)
  uint64_t site_recoveries = 0;
  uint64_t coordinator_restarts = 0;

  uint64_t wire_bytes = 0;        ///< first transmissions of data frames
  uint64_t retransmit_bytes = 0;  ///< resends, duplicates, recovery traffic
  uint64_t overhead_bytes = 0;    ///< acks + hellos
  uint64_t link_bytes_offered = 0;

  /// Paper-model traffic of the authoritative tracker (must be identical
  /// to a fault-free run: faults live below the §1.1 model).
  uint64_t paper_words = 0;
  uint64_t paper_messages = 0;

  bool ok = true;
  std::string error;
};

/// Runs `workload` through a RandomizedCountTracker under `robust.plan`.
RobustReport RobustReplayCount(const count::RandomizedCountOptions& options,
                               const Workload& workload,
                               const RobustOptions& robust);

/// Same for frequency tracking of `query_item`.
RobustReport RobustReplayFrequency(
    const frequency::RandomizedFrequencyOptions& options,
    const Workload& workload, uint64_t query_item,
    const RobustOptions& robust);

/// Same for rank tracking of `query_value`.
RobustReport RobustReplayRank(const rank::RandomizedRankOptions& options,
                              const Workload& workload, uint64_t query_value,
                              const RobustOptions& robust);

}  // namespace sim
}  // namespace disttrack

#endif  // DISTTRACK_SIM_ROBUST_CLUSTER_H_
