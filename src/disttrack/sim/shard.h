// Per-site shard ingest: the parallel replay surface of a tracker.
//
// The paper's model (§1.1) is k independent sites that communicate only
// with the coordinator, so a recorded workload can be sharded by site and
// advanced on worker threads as long as every coordinator interaction is
// deferred to a synchronization point. A tracker that supports this
// exposes a shard-ingest handle (see the shard_ingest() hooks in
// protocol.h); sim::ParallelCluster drives it with the following contract:
//
//   ShardEpochBegin(m)   once per epoch, from the driver thread, with the
//                        number of arrivals the epoch will deliver;
//   ShardArriveRun(...)  concurrently, AT MOST ONE THREAD PER SITE, each
//                        call covering that site's arrivals of the epoch
//                        in stream order. The tracker may touch only that
//                        site's state plus per-site scratch; anything
//                        destined for the coordinator (reports, sampled
//                        elements, summaries, traffic charges) is buffered
//                        in per-site sinks;
//   ShardEpochEnd()      once, from the driver thread, after all runs of
//                        the epoch returned: the buffered messages are
//                        applied to coordinator state in global arrival
//                        order, exactly as the serial path would have.
//
// Epoch boundaries are chosen by the driver so that every coordinator ->
// site event (a CoarseTracker broadcast: p-halving, round advance) falls
// ON a boundary: the triggering arrival itself is delivered between
// epochs through the plain serial Arrive() path. Within an epoch the
// round parameters every site reads (p, thresholds) are therefore frozen,
// sites consume their private RNG streams at exactly the per-site arrival
// offsets of the serial execution, and the replay is deterministic given
// the seed — independent of the thread count and bit-identical to the
// serial drivers (pinned by tests/parallel_cluster_test.cc).
//
// Estimates may only be read between epochs (after ShardEpochEnd).

#ifndef DISTTRACK_SIM_SHARD_H_
#define DISTTRACK_SIM_SHARD_H_

#include <cstddef>
#include <cstdint>

namespace disttrack {
namespace sim {

/// Shard ingest for count trackers: arrivals carry no key, so a site's
/// epoch slice is just an arrival count.
class CountShardIngest {
 public:
  virtual ~CountShardIngest() = default;
  virtual void ShardEpochBegin(uint64_t arrivals_in_epoch) = 0;
  /// Delivers `count` arrivals at `site` (the site's whole epoch slice).
  /// Concurrent across sites; at most one thread touches a given site.
  virtual void ShardArriveRun(int site, uint64_t count) = 0;
  virtual void ShardEpochEnd() = 0;
};

/// Shard ingest for keyed trackers (frequency items / rank values).
/// `keys[i]` is the i-th element the site receives in the epoch, in
/// stream order; `global_index[i]` is its position in the full recorded
/// workload (used to re-serialize buffered coordinator messages — an
/// implementation that buffers only order-insensitive aggregates may
/// ignore it).
class KeyedShardIngest {
 public:
  virtual ~KeyedShardIngest() = default;
  virtual void ShardEpochBegin(uint64_t arrivals_in_epoch) = 0;
  virtual void ShardArriveRun(int site, const uint64_t* keys,
                              const uint32_t* global_index,
                              size_t count) = 0;
  virtual void ShardEpochEnd() = 0;
  /// False when the implementation buffers only order-insensitive
  /// aggregates and never reads `global_index` — the driver then skips
  /// materializing the per-site index arrays and passes nullptr.
  virtual bool wants_global_indices() const { return true; }
};

}  // namespace sim
}  // namespace disttrack

#endif  // DISTTRACK_SIM_SHARD_H_
