// Per-site shard ingest: the parallel replay surface of a tracker.
//
// The paper's model (§1.1) is k independent sites that communicate only
// with the coordinator, so a recorded workload can be sharded by site and
// advanced on worker threads as long as every coordinator interaction is
// deferred to a synchronization point. A tracker that supports this
// exposes a shard-ingest handle (see the shard_ingest() hooks in
// protocol.h); sim::ParallelCluster drives it with the following contract:
//
//   ShardEpochBegin(m)   once per epoch, from the driver thread, with the
//                        number of arrivals the epoch will deliver;
//   ShardArriveRun(...)  concurrently, AT MOST ONE THREAD PER SITE, each
//                        call covering that site's arrivals of the epoch
//                        in stream order. The tracker may touch only that
//                        site's state plus per-site scratch; anything
//                        destined for the coordinator (reports, sampled
//                        elements, summaries, traffic charges) is buffered
//                        in per-site sinks;
//   ShardEpochEnd()      once, from the driver thread, after all runs of
//                        the epoch returned: the buffered messages are
//                        applied to coordinator state in global arrival
//                        order, exactly as the serial path would have.
//
// Epoch boundaries are chosen by the driver so that every coordinator ->
// site event (a CoarseTracker broadcast: p-halving, round advance) falls
// ON a boundary: the triggering arrival itself is delivered between
// epochs through the plain serial Arrive() path. Within an epoch the
// round parameters every site reads (p, thresholds) are therefore frozen,
// sites consume their private RNG streams at exactly the per-site arrival
// offsets of the serial execution, and the replay is deterministic given
// the seed — independent of the thread count and bit-identical to the
// serial drivers (pinned by tests/parallel_cluster_test.cc).
//
// An epoch may span several ShardEpochBegin calls before its End: the
// online sessions (sim/online.h) extend an open epoch push by push, and
// each Begin(m) only announces m further arrivals (advancing the ground
// truth) while the sinks keep accumulating. Every implementation's Begin
// is idempotent apart from that advance.
//
// Estimates may only be read between epochs (after ShardEpochEnd).

#ifndef DISTTRACK_SIM_SHARD_H_
#define DISTTRACK_SIM_SHARD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace disttrack {

namespace count {
class CoarseTracker;
}  // namespace count

namespace sim {

/// Shard ingest for count trackers: arrivals carry no key, so a site's
/// epoch slice is just an arrival count.
///
/// The Shard*Site / ShardTryEpochEnd / ShardAbortEpoch group is the
/// speculative online surface (sim::OnlineCountSession): a push is
/// ingested as its own epoch WITHOUT knowing whether it broadcasts; the
/// trial fold refuses exactly when it would, and the session then rolls
/// the touched sites back to their pre-push snapshots and re-delivers the
/// push serially (where the broadcast machinery runs unchanged). Defaults
/// mark the surface unsupported — replay-only shard ingest.
class CountShardIngest {
 public:
  virtual ~CountShardIngest() = default;
  virtual void ShardEpochBegin(uint64_t arrivals_in_epoch) = 0;
  /// Delivers `count` arrivals at `site` (the site's whole epoch slice).
  /// Concurrent across sites; at most one thread touches a given site.
  virtual void ShardArriveRun(int site, uint64_t count) = 0;
  virtual void ShardEpochEnd() = 0;

  /// True when the speculative online hooks below are implemented.
  virtual bool ShardOnlineReady() const { return false; }
  /// Captures `site`'s full private state (clearing `*out` first) so a
  /// refused speculative epoch can be unwound. Returns false when the
  /// site cannot snapshot here (never, for trackers advertising
  /// ShardOnlineReady — count sites snapshot between any two arrivals).
  virtual bool ShardSnapshotSite(int /*site*/,
                                 std::vector<uint64_t>* /*out*/) {
    return false;
  }
  /// Restores a ShardSnapshotSite capture taken this epoch (no broadcast
  /// may have intervened — true whenever the trial fold refused).
  virtual void ShardRestoreSite(int /*site*/,
                                const std::vector<uint64_t>& /*blob*/) {}
  /// Folds the open epoch iff the buffered coordinator deltas provably
  /// cannot trip a broadcast (exact: the deferred coarse deltas ARE the
  /// epoch's reports, and n' is nondecreasing). On refusal returns false
  /// with coordinator state and sinks untouched — the caller restores
  /// site snapshots and calls ShardAbortEpoch.
  virtual bool ShardTryEpochEnd() { return false; }
  /// Unwinds a refused speculative epoch of `arrivals` arrivals: clears
  /// the sinks and rewinds the ground-truth advance of ShardEpochBegin.
  /// Site state is restored separately via ShardRestoreSite.
  virtual void ShardAbortEpoch(uint64_t /*arrivals*/) {}
};

/// Shard ingest for keyed trackers (frequency items / rank values).
/// `keys[i]` is the i-th element the site receives in the epoch, in
/// stream order; `global_index[i]` is its position in the full recorded
/// workload (used to re-serialize buffered coordinator messages — an
/// implementation that buffers only order-insensitive aggregates may
/// ignore it).
class KeyedShardIngest {
 public:
  virtual ~KeyedShardIngest() = default;
  virtual void ShardEpochBegin(uint64_t arrivals_in_epoch) = 0;
  virtual void ShardArriveRun(int site, const uint64_t* keys,
                              const uint32_t* global_index,
                              size_t count) = 0;
  virtual void ShardEpochEnd() = 0;
  /// False when the implementation buffers only order-insensitive
  /// aggregates and never reads `global_index` — the driver then skips
  /// materializing the per-site index arrays and passes nullptr.
  virtual bool wants_global_indices() const { return true; }
  /// The CoarseTracker all of the tracker's broadcasts hang off, or
  /// nullptr when online ingest is unsupported. sim::OnlineKeyedSession
  /// seeds a count::EpochCertifier from it to certify, push by push, that
  /// the open epoch stays broadcast-free (and to locate the exact
  /// broadcast arrival when it would not).
  virtual count::CoarseTracker* shard_coarse() { return nullptr; }
};

}  // namespace sim
}  // namespace disttrack

#endif  // DISTTRACK_SIM_SHARD_H_
