#include "disttrack/sim/space_gauge.h"

#include <algorithm>

namespace disttrack {
namespace sim {

SpaceGauge::SpaceGauge(int num_sites)
    : current_(static_cast<size_t>(std::max(num_sites, 0)), 0),
      peak_(static_cast<size_t>(std::max(num_sites, 0)), 0) {}

void SpaceGauge::Set(int site, uint64_t words) {
  if (site < 0 || site >= num_sites()) return;
  auto s = static_cast<size_t>(site);
  current_[s] = words;
  peak_[s] = std::max(peak_[s], words);
}

void SpaceGauge::Add(int site, uint64_t delta) {
  if (site < 0 || site >= num_sites()) return;
  auto s = static_cast<size_t>(site);
  current_[s] += delta;
  peak_[s] = std::max(peak_[s], current_[s]);
}

void SpaceGauge::Sub(int site, uint64_t delta) {
  if (site < 0 || site >= num_sites()) return;
  auto s = static_cast<size_t>(site);
  current_[s] = current_[s] >= delta ? current_[s] - delta : 0;
}

uint64_t SpaceGauge::Current(int site) const {
  if (site < 0 || site >= num_sites()) return 0;
  return current_[static_cast<size_t>(site)];
}

uint64_t SpaceGauge::Peak(int site) const {
  if (site < 0 || site >= num_sites()) return 0;
  return peak_[static_cast<size_t>(site)];
}

uint64_t SpaceGauge::MaxPeak() const {
  uint64_t m = 0;
  for (uint64_t p : peak_) m = std::max(m, p);
  return m;
}

double SpaceGauge::MeanPeak() const {
  if (peak_.empty()) return 0.0;
  double s = 0;
  for (uint64_t p : peak_) s += static_cast<double>(p);
  return s / static_cast<double>(peak_.size());
}

void SpaceGauge::ClearCurrent() {
  std::fill(current_.begin(), current_.end(), 0);
}

void SpaceGauge::MergeFrom(const SpaceGauge& other) {
  size_t shared = std::min(current_.size(), other.current_.size());
  for (size_t i = 0; i < shared; ++i) {
    current_[i] += other.current_[i];
    peak_[i] += other.peak_[i];
  }
}

}  // namespace sim
}  // namespace disttrack
