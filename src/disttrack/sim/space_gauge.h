// Per-site working-space accounting, in words, with high-watermark tracking.
//
// Table 1 of the paper bounds the space used *per site* to process its
// stream (the coordinator's memory is not the bounded resource). Protocols
// report their current footprint through a SpaceGauge after every mutation;
// experiments read the high-watermark.

#ifndef DISTTRACK_SIM_SPACE_GAUGE_H_
#define DISTTRACK_SIM_SPACE_GAUGE_H_

#include <cstdint>
#include <vector>

namespace disttrack {
namespace sim {

/// Records current and peak per-site space usage, measured in words.
class SpaceGauge {
 public:
  explicit SpaceGauge(int num_sites);

  /// Sets site `site`'s current usage to `words` and updates its peak.
  void Set(int site, uint64_t words);

  /// Adds `delta` words to site `site`'s current usage (may be negative via
  /// Sub); updates the peak.
  void Add(int site, uint64_t delta);

  /// Removes `delta` words from site `site`'s current usage (clamped at 0).
  void Sub(int site, uint64_t delta);

  /// Current usage of one site.
  uint64_t Current(int site) const;

  /// Peak usage ever observed at one site.
  uint64_t Peak(int site) const;

  /// Max peak over all sites — the quantity Table 1 bounds.
  uint64_t MaxPeak() const;

  /// Mean of the per-site peaks.
  double MeanPeak() const;

  int num_sites() const { return static_cast<int>(current_.size()); }

  /// Zeroes current values but keeps the peaks (a protocol round-reset frees
  /// memory without erasing the historical watermark).
  void ClearCurrent();

  /// Adds `other`'s current and peak values site-wise into this gauge (sum
  /// of peaks upper-bounds the peak of the sum; used by boosters running
  /// several protocol copies at each site).
  void MergeFrom(const SpaceGauge& other);

 private:
  std::vector<uint64_t> current_;
  std::vector<uint64_t> peak_;
};

}  // namespace sim
}  // namespace disttrack

#endif  // DISTTRACK_SIM_SPACE_GAUGE_H_
