#include "disttrack/sim/transport.h"

#include <algorithm>

namespace disttrack {
namespace sim {

FaultPlan FaultPlan::FromSeed(uint64_t seed, uint64_t total_arrivals,
                              int num_sites) {
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(seed ^ 0xFA0175EEDull);
  plan.drop_rate = 0.30 * rng.NextDouble();
  plan.duplicate_rate = 0.25 * rng.NextDouble();
  plan.reorder_rate = 0.40 * rng.NextDouble();
  plan.max_delay_ticks = 1 + static_cast<int>(rng.UniformU64(4));
  plan.snapshot_every = 24 + rng.UniformU64(104);

  // 1-2 site crashes in the middle half of the workload, where rounds are
  // long enough that a crash almost surely lands mid-epoch.
  if (total_arrivals >= 8 && num_sites > 0) {
    uint64_t lo = total_arrivals / 4;
    uint64_t hi = (3 * total_arrivals) / 4;
    int crashes = 1 + static_cast<int>(rng.UniformU64(2));
    for (int i = 0; i < crashes; ++i) {
      SiteCrash crash;
      crash.global_arrival = rng.UniformRange(lo, hi);
      crash.site = static_cast<int>(rng.UniformU64(
          static_cast<uint64_t>(num_sites)));
      plan.site_crashes.push_back(crash);
    }
    std::sort(plan.site_crashes.begin(), plan.site_crashes.end(),
              [](const SiteCrash& a, const SiteCrash& b) {
                return a.global_arrival < b.global_arrival;
              });
    if (rng.Bernoulli(0.5)) {
      plan.coordinator_restarts.push_back(rng.UniformRange(lo, hi));
    }
  }
  return plan;
}

FaultyLink::FaultyLink(const FaultPlan* plan, uint64_t link_id)
    : plan_(plan), rng_(plan->seed ^ (0x9E3779B97F4A7C15ull * (link_id + 1))) {}

void FaultyLink::Enqueue(std::vector<uint8_t> frame, uint64_t due) {
  InFlight inflight;
  inflight.frame = std::move(frame);
  inflight.due = due;
  inflight.order = next_order_++;
  queue_.push_back(std::move(inflight));
}

uint64_t FaultyLink::Send(std::vector<uint8_t> frame, uint64_t now) {
  uint64_t size = frame.size();
  bytes_offered_ += size;
  // Draw the full decision tuple unconditionally so the fault stream
  // consumed per frame is fixed — decisions for later frames never depend
  // on earlier outcomes, only on their position in the stream.
  bool drop = rng_.Bernoulli(plan_->drop_rate);
  bool dup = rng_.Bernoulli(plan_->duplicate_rate);
  bool late = rng_.Bernoulli(plan_->reorder_rate);
  uint64_t extra =
      plan_->max_delay_ticks > 0
          ? 1 + rng_.UniformU64(static_cast<uint64_t>(plan_->max_delay_ticks))
          : 1;
  uint64_t due = now + (late ? 1 + extra : 1);

  uint64_t duplicate_bytes = 0;
  if (!drop) {
    if (dup) {
      bytes_offered_ += size;
      duplicate_bytes = size;
      Enqueue(frame, due + 1);
    }
    Enqueue(std::move(frame), due);
  } else if (dup) {
    // The duplicate of a dropped frame still travels (independent copy).
    bytes_offered_ += size;
    duplicate_bytes = size;
    Enqueue(std::move(frame), due + 1);
  }
  return duplicate_bytes;
}

bool FaultyLink::Deliver(uint64_t now, std::vector<std::vector<uint8_t>>* out) {
  if (queue_.empty()) return false;
  std::stable_sort(queue_.begin(), queue_.end(),
                   [](const InFlight& a, const InFlight& b) {
                     if (a.due != b.due) return a.due < b.due;
                     return a.order < b.order;
                   });
  size_t taken = 0;
  while (taken < queue_.size() && queue_[taken].due <= now) ++taken;
  if (taken == 0) return false;
  for (size_t i = 0; i < taken; ++i) {
    out->push_back(std::move(queue_[i].frame));
  }
  queue_.erase(queue_.begin(), queue_.begin() + static_cast<ptrdiff_t>(taken));
  return true;
}

uint64_t ReliableSender::Stage(const wire::Message& msg, uint64_t now,
                               std::vector<uint8_t>* frame_out) {
  uint64_t seq = next_seq_++;
  frame_out->clear();
  wire::EncodeFrame(msg, seq, frame_out);
  Pending pending;
  pending.frame = *frame_out;
  pending.attempts = 0;
  pending.next_retransmit = now + backoff_.DelayFor(0);
  unacked_.emplace(seq, std::move(pending));
  return seq;
}

void ReliableSender::Ack(uint64_t cum_seq) {
  unacked_.erase(unacked_.begin(), unacked_.upper_bound(cum_seq));
}

uint64_t ReliableSender::DueRetransmits(uint64_t now,
                                        std::vector<std::vector<uint8_t>>* out) {
  uint64_t bytes = 0;
  for (auto& entry : unacked_) {
    Pending& pending = entry.second;
    if (pending.next_retransmit > now) continue;
    out->push_back(pending.frame);
    bytes += pending.frame.size();
    ++retransmissions_;
    ++pending.attempts;
    pending.next_retransmit = now + backoff_.DelayFor(pending.attempts);
  }
  return bytes;
}

bool ReliableReceiver::Accept(uint64_t seq, wire::Message msg,
                              std::vector<wire::Message>* deliver) {
  if (seq < next_expected_) {
    ++duplicates_;
    return false;
  }
  if (seq > next_expected_) {
    // Reorder buffer; a second copy of a buffered seq is also a duplicate.
    if (!reorder_.emplace(seq, std::move(msg)).second) ++duplicates_;
    return true;
  }
  deliver->push_back(std::move(msg));
  ++next_expected_;
  auto it = reorder_.begin();
  while (it != reorder_.end() && it->first == next_expected_) {
    deliver->push_back(std::move(it->second));
    ++next_expected_;
    it = reorder_.erase(it);
  }
  return true;
}

}  // namespace sim
}  // namespace disttrack
