// Injectable transport seam between the sites and the coordinator
// (tentpole of the robustness PR).
//
// The direct-call sim of cluster.h assumes the perfectly reliable
// channels of §1.1. This layer models the channels explicitly so faults
// can be injected deterministically:
//
//   FaultyLink        one directed link; applies seeded drop / duplicate /
//                     delay-reorder decisions to every frame offered;
//   ReliableSender    per-link sequence numbers + unacked buffer +
//                     capped-exponential-backoff retransmission
//                     (common/backoff.h);
//   ReliableReceiver  in-order delivery with a reorder buffer and
//                     sequence-number dedup (idempotent application);
//   FaultPlan         the full fault schedule — link fault rates, site
//                     crash points, coordinator restarts — derived
//                     deterministically from one seed.
//
// Time is a logical tick counter private to one arrival's delivery: the
// robust cluster pumps links until quiescence before the next arrival,
// which realizes the §1.1 contract ("all communication triggered by that
// arrival completes before Arrive() returns") even under faults — faults
// stretch delivery *within* an arrival but never across arrivals. That is
// the property that makes bit-identical fault recovery achievable at all.
//
// Everything here is deterministic from (plan, seed): links draw fault
// decisions from private xoshiro streams keyed by (plan seed, link id),
// backoff has no jitter, and tick advancement is lockstep.

#ifndef DISTTRACK_SIM_TRANSPORT_H_
#define DISTTRACK_SIM_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <vector>

#include "disttrack/common/backoff.h"
#include "disttrack/common/random.h"
#include "disttrack/sim/wire.h"

namespace disttrack {
namespace sim {

/// A deterministic fault schedule. Link-level faults are i.i.d. per frame
/// from per-link seeded streams; crash/restart events fire at global
/// arrival indices (processed at arrival boundaries, after the previous
/// arrival's traffic has quiesced).
struct FaultPlan {
  uint64_t seed = 0;

  double drop_rate = 0.0;       ///< P(frame lost in flight)
  double duplicate_rate = 0.0;  ///< P(frame delivered twice)
  double reorder_rate = 0.0;    ///< P(frame delayed so later frames overtake)
  int max_delay_ticks = 0;      ///< extra delivery delay drawn in [1, max]

  struct SiteCrash {
    uint64_t global_arrival = 0;  ///< crash before this 0-based arrival
    int site = 0;
  };
  std::vector<SiteCrash> site_crashes;

  /// Coordinator restarts before these 0-based global arrival indices:
  /// replica soft state is discarded and rebuilt from the epoch journal.
  std::vector<uint64_t> coordinator_restarts;

  /// Per-site snapshot cadence (every this many arrivals at the site).
  uint64_t snapshot_every = 64;

  bool HasLinkFaults() const {
    return drop_rate > 0 || duplicate_rate > 0 || reorder_rate > 0 ||
           max_delay_ticks > 0;
  }

  /// Derives a complete storm schedule from one seed: moderate random
  /// link fault rates, 1-2 site crashes in the middle half of the
  /// workload, a coordinator restart for half the seeds, and a random
  /// snapshot cadence. Deterministic: equal arguments, equal plan.
  static FaultPlan FromSeed(uint64_t seed, uint64_t total_arrivals,
                            int num_sites);
};

/// One directed link. Frames offered to Send() are (deterministically)
/// dropped, duplicated, or delayed, then delivered in (due tick, send
/// order) order. The link counts every byte actually placed on the wire —
/// including dropped frames (they were transmitted) and fault-layer
/// duplicates — so the conservation identity
///   bytes_offered == wire + retransmit + overhead (meter channels)
/// can be asserted exactly; Send() returns the duplicate bytes it added
/// so the caller can charge them to the retransmit channel.
class FaultyLink {
 public:
  /// `plan` must outlive the link. `link_id` keys this link's private
  /// fault stream (same plan + same id => same decisions).
  FaultyLink(const FaultPlan* plan, uint64_t link_id);

  /// Offers a frame at tick `now`. Returns the bytes added by a
  /// fault-layer duplicate (0 or frame size).
  uint64_t Send(std::vector<uint8_t> frame, uint64_t now);

  /// Moves every frame due at or before `now` into `*out` (appended in
  /// delivery order). Returns true if anything was delivered.
  bool Deliver(uint64_t now, std::vector<std::vector<uint8_t>>* out);

  bool idle() const { return queue_.empty(); }

  /// Total bytes offered to the wire (drops and duplicates included).
  uint64_t bytes_offered() const { return bytes_offered_; }

 private:
  struct InFlight {
    std::vector<uint8_t> frame;
    uint64_t due = 0;
    uint64_t order = 0;
  };

  void Enqueue(std::vector<uint8_t> frame, uint64_t due);

  const FaultPlan* plan_;
  Rng rng_;
  std::vector<InFlight> queue_;
  uint64_t next_order_ = 0;
  uint64_t bytes_offered_ = 0;
};

/// Sender half of a reliable directed channel: assigns sequence numbers,
/// keeps unacked frames, and schedules retransmissions on capped
/// exponential backoff.
class ReliableSender {
 public:
  explicit ReliableSender(ExponentialBackoff backoff = ExponentialBackoff())
      : backoff_(backoff) {}

  /// Assigns the next sequence number to `msg`, records the encoded frame
  /// as unacked, and returns (seq, frame bytes to transmit now).
  uint64_t Stage(const wire::Message& msg, uint64_t now,
                 std::vector<uint8_t>* frame_out);

  /// Cumulative ack: retires every pending frame with seq <= `cum_seq`.
  void Ack(uint64_t cum_seq);

  /// Appends the frames due for retransmission at `now` to `*out` and
  /// re-arms their backoff. Returns the total bytes appended.
  uint64_t DueRetransmits(uint64_t now, std::vector<std::vector<uint8_t>>* out);

  bool idle() const { return unacked_.empty(); }
  uint64_t next_seq() const { return next_seq_; }
  uint64_t retransmissions() const { return retransmissions_; }

  /// Crash/restart resets: forget soft state and continue from `seq`.
  void Reset(uint64_t next_seq) {
    next_seq_ = next_seq;
    unacked_.clear();
  }

 private:
  struct Pending {
    std::vector<uint8_t> frame;
    uint32_t attempts = 0;
    uint64_t next_retransmit = 0;
  };

  ExponentialBackoff backoff_;
  uint64_t next_seq_ = 1;
  uint64_t retransmissions_ = 0;
  std::map<uint64_t, Pending> unacked_;
};

/// Receiver half: in-order delivery with dedup. Frames below the
/// watermark are duplicates (dropped, but still acked — the ack may have
/// been lost); frames ahead of it wait in a reorder buffer.
class ReliableReceiver {
 public:
  /// Accepts a decoded frame. In-order messages (possibly draining the
  /// reorder buffer) are appended to `*deliver`; returns true if the
  /// frame was new (not a duplicate).
  bool Accept(uint64_t seq, wire::Message msg,
              std::vector<wire::Message>* deliver);

  /// Highest sequence number delivered in order (the cumulative ack).
  uint64_t watermark() const { return next_expected_ - 1; }

  uint64_t duplicates() const { return duplicates_; }
  bool idle() const { return reorder_.empty(); }

  /// Crash/restart resets: expect `watermark + 1` next, drop buffered
  /// out-of-order frames (the sender will retransmit them).
  void Reset(uint64_t watermark) {
    next_expected_ = watermark + 1;
    reorder_.clear();
  }

 private:
  uint64_t next_expected_ = 1;
  uint64_t duplicates_ = 0;
  std::map<uint64_t, wire::Message> reorder_;
};

}  // namespace sim
}  // namespace disttrack

#endif  // DISTTRACK_SIM_TRANSPORT_H_
