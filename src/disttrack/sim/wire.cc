#include "disttrack/sim/wire.h"

#include <algorithm>
#include <cstring>

namespace disttrack {
namespace sim {
namespace wire {
namespace {

// CRC-32 (reflected, polynomial 0xEDB88320), table-driven.
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int j = 0; j < 8; ++j) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

uint32_t Crc32(const uint8_t* data, size_t size) {
  const uint32_t* table = Crc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (uint16_t{p[1]} << 8));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= uint32_t{p[i]} << (8 * i);
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t{p[i]} << (8 * i);
  return v;
}

// The three per-type dispatch functions below (HasVectors, KnownType,
// PaperWordCharge) each switch over every MsgType enumerator with no
// default label: adding a type to wire.h without deciding its payload
// shape, validity range, and §1.1 charge is a -Wswitch/-Werror compile
// error here, and scripts/check_invariants.py additionally requires
// every enumerator to appear in all three switches (rule wire-switch).

bool HasVectors(MsgType type) {
  switch (type) {
    case MsgType::kRankSummary:
    case MsgType::kQueryResult:
      return true;
    case MsgType::kCoarseReport:
    case MsgType::kCoinReport:
    case MsgType::kCorrection:
    case MsgType::kBroadcast:
    case MsgType::kSplitNotice:
    case MsgType::kCounterReport:
    case MsgType::kSampleForward:
    case MsgType::kRankResidual:
    case MsgType::kAck:
    case MsgType::kHello:
    case MsgType::kJoin:
    case MsgType::kJoinAck:
    case MsgType::kGrantRequest:
    case MsgType::kGrant:
    case MsgType::kGrantDone:
    case MsgType::kNoBroadcast:
    case MsgType::kRitualAck:
    case MsgType::kQuery:
    case MsgType::kShutdown:
      return false;
  }
  return false;  // unreachable for in-range types; decode rejects the rest
}

bool KnownType(uint8_t raw_type) {
  switch (static_cast<MsgType>(raw_type)) {
    case MsgType::kCoarseReport:
    case MsgType::kCoinReport:
    case MsgType::kCorrection:
    case MsgType::kBroadcast:
    case MsgType::kSplitNotice:
    case MsgType::kCounterReport:
    case MsgType::kSampleForward:
    case MsgType::kRankSummary:
    case MsgType::kRankResidual:
    case MsgType::kAck:
    case MsgType::kHello:
    case MsgType::kJoin:
    case MsgType::kJoinAck:
    case MsgType::kGrantRequest:
    case MsgType::kGrant:
    case MsgType::kGrantDone:
    case MsgType::kNoBroadcast:
    case MsgType::kRitualAck:
    case MsgType::kQuery:
    case MsgType::kQueryResult:
    case MsgType::kShutdown:
      return true;
  }
  return false;  // any byte value not naming an enumerator
}

size_t PayloadBytes(const Message& msg) {
  size_t bytes = 3 * 8;  // a, b, c
  if (HasVectors(msg.type)) {
    bytes += 4 + msg.values.size() * 8;
    bytes += 4 + msg.segments.size() * (8 + 4);
  }
  return bytes;
}

}  // namespace

uint64_t PaperWordCharge(const Message& msg, int num_sites) {
  uint64_t per_message = std::max<uint64_t>(1, msg.paper_words);
  switch (msg.type) {
    case MsgType::kAck:
    case MsgType::kHello:
    case MsgType::kJoin:
    case MsgType::kJoinAck:
    case MsgType::kGrantRequest:
    case MsgType::kGrant:
    case MsgType::kGrantDone:
    case MsgType::kNoBroadcast:
    case MsgType::kRitualAck:
    case MsgType::kQuery:
    case MsgType::kQueryResult:
    case MsgType::kShutdown:
      return 0;  // transport / service plane: outside the §1.1 model
    case MsgType::kBroadcast:
      // One broadcast reaches all k sites; the paper charges k words.
      return per_message * static_cast<uint64_t>(num_sites);
    case MsgType::kCoarseReport:
    case MsgType::kCoinReport:
    case MsgType::kCorrection:
    case MsgType::kSplitNotice:
    case MsgType::kCounterReport:
    case MsgType::kSampleForward:
    case MsgType::kRankSummary:
    case MsgType::kRankResidual:
      return per_message;
  }
  return per_message;  // unreachable for in-range types
}

size_t EncodedSize(const Message& msg) {
  return kHeaderBytes + PayloadBytes(msg) + kCrcBytes;
}

void EncodeFrame(const Message& msg, uint64_t seq, std::vector<uint8_t>* out) {
  size_t start = out->size();
  PutU32(out, kMagic);
  PutU16(out, kVersion);
  out->push_back(static_cast<uint8_t>(msg.type));
  out->push_back(0);  // flags (reserved)
  PutU32(out, static_cast<uint32_t>(msg.site));
  PutU64(out, seq);
  PutU64(out, msg.epoch);
  PutU32(out, static_cast<uint32_t>(msg.paper_words));
  PutU32(out, static_cast<uint32_t>(PayloadBytes(msg)));
  PutU64(out, msg.a);
  PutU64(out, msg.b);
  PutU64(out, msg.c);
  if (HasVectors(msg.type)) {
    PutU32(out, static_cast<uint32_t>(msg.values.size()));
    for (uint64_t v : msg.values) PutU64(out, v);
    PutU32(out, static_cast<uint32_t>(msg.segments.size()));
    for (const auto& seg : msg.segments) {
      PutU64(out, seg.first);
      PutU32(out, seg.second);
    }
  }
  uint32_t crc = Crc32(out->data() + start, out->size() - start);
  PutU32(out, crc);
}

bool DecodeFrame(const uint8_t* data, size_t size, Message* msg,
                 uint64_t* seq) {
  if (size < kHeaderBytes + kCrcBytes) return false;
  if (GetU32(data) != kMagic) return false;
  if (GetU16(data + 4) != kVersion) return false;
  uint8_t raw_type = data[6];
  if (!KnownType(raw_type)) return false;
  uint32_t payload_bytes = GetU32(data + kHeaderBytes - 4);
  if (size != kHeaderBytes + payload_bytes + kCrcBytes) return false;
  uint32_t want_crc = GetU32(data + size - kCrcBytes);
  if (Crc32(data, size - kCrcBytes) != want_crc) return false;

  Message decoded;
  decoded.type = static_cast<MsgType>(raw_type);
  decoded.site = static_cast<int32_t>(GetU32(data + 8));
  uint64_t decoded_seq = GetU64(data + 12);
  decoded.epoch = GetU64(data + 20);
  decoded.paper_words = GetU32(data + 28);

  const uint8_t* p = data + kHeaderBytes;
  const uint8_t* end = data + size - kCrcBytes;
  if (end - p < 3 * 8) return false;
  decoded.a = GetU64(p);
  decoded.b = GetU64(p + 8);
  decoded.c = GetU64(p + 16);
  p += 3 * 8;
  if (HasVectors(decoded.type)) {
    if (end - p < 4) return false;
    uint32_t nvalues = GetU32(p);
    p += 4;
    if (static_cast<size_t>(end - p) < nvalues * 8ull + 4) return false;
    decoded.values.reserve(nvalues);
    for (uint32_t i = 0; i < nvalues; ++i, p += 8) {
      decoded.values.push_back(GetU64(p));
    }
    uint32_t nsegs = GetU32(p);
    p += 4;
    if (static_cast<size_t>(end - p) < nsegs * 12ull) return false;
    decoded.segments.reserve(nsegs);
    for (uint32_t i = 0; i < nsegs; ++i, p += 12) {
      decoded.segments.emplace_back(GetU64(p), GetU32(p + 8));
    }
  }
  if (p != end) return false;

  *msg = std::move(decoded);
  *seq = decoded_seq;
  return true;
}

size_t PeekFrameSize(const uint8_t* data, size_t size) {
  if (size < kHeaderBytes) return 0;
  if (GetU32(data) != kMagic) return 0;
  if (GetU16(data + 4) != kVersion) return 0;
  if (!KnownType(data[6])) return 0;
  uint32_t payload_bytes = GetU32(data + kHeaderBytes - 4);
  return kHeaderBytes + payload_bytes + kCrcBytes;
}

}  // namespace wire
}  // namespace sim
}  // namespace disttrack
