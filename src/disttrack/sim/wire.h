// Versioned binary framing for every protocol message the trackers
// exchange (tentpole of the robustness PR).
//
// The serial sim delivers coordinator traffic as direct calls; the paper
// only meters it (CommMeter). This header gives each of those implicit
// messages an explicit, versioned wire form:
//
//   site -> coordinator   kCoarseReport   local-count doubling report (§2.1)
//                         kCoinReport     randomized count coin report (§2.2)
//                         kCorrection     p-halving thinning correction (§2.2)
//                         kCounterReport  sticky counter report (§3.1)
//                         kSampleForward  sampled element forward (§3.1)
//                         kRankSummary    StoredSummary export (§4, alg C)
//                         kRankResidual   tail-channel residual sample (§4)
//                         kSplitNotice    virtual-site split notice (§3.2)
//   coordinator -> site   kBroadcast      n̄ broadcast / p-halving notice
//   control (either way)  kAck            cumulative ack (transport layer)
//                         kHello          reconnect handshake (watermark)
//
// The multi-process service (service/) adds a session / control / query
// plane on the same frame format (types 12..21, all charged zero paper
// words — they are operational traffic outside the §1.1 model, like
// kAck). kQueryResult is the second vector-bearing type after
// kRankSummary, which is the payload-format change behind the kVersion
// 1 -> 2 bump; the frame layout itself is unchanged.
//
// Frames are length-prefixed little-endian records with a magic, a format
// version, a per-link sequence number, an epoch tag (the coordinator
// round at emission), and a trailing CRC-32. Versioning rule: the header
// layout up to and including `payload_bytes` is frozen forever; any
// payload change bumps kVersion, and decoders reject versions they do not
// know (no silent forward parsing). Sequence numbers are per directed
// link and assigned by the transport, not by the tracker.
//
// Byte accounting: EncodedSize() is exact, so the transport can charge
// CommMeter's wire channels to the byte, and the differential harness
// asserts   link bytes == first-transmission + retransmit + ack overhead
// with equality (tests/fault_tolerance_test.cc).

#ifndef DISTTRACK_SIM_WIRE_H_
#define DISTTRACK_SIM_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace disttrack {
namespace sim {
namespace wire {

/// Frame magic ("DTW1") and the current payload-format version.
/// History: v1 = robustness PR (types 1..11); v2 = service plane (types
/// 12..21, kQueryResult carries vectors).
constexpr uint32_t kMagic = 0x44545731u;
constexpr uint16_t kVersion = 2;

/// Frozen header prefix:
///   magic u32 | version u16 | type u8 | flags u8 | site i32 | seq u64 |
///   epoch u64 | paper_words u32 | payload_bytes u32
/// `payload_bytes` sits in the last 4 header bytes, so kHeaderBytes of a
/// stream are always enough to learn the full frame length (see
/// PeekFrameSize) — the property the socket reassembly layer builds on.
constexpr size_t kHeaderBytes = 4 + 2 + 1 + 1 + 4 + 8 + 8 + 4 + 4;
constexpr size_t kCrcBytes = 4;

enum class MsgType : uint8_t {
  kCoarseReport = 1,
  kCoinReport = 2,
  kCorrection = 3,
  kBroadcast = 4,
  kSplitNotice = 5,
  kCounterReport = 6,
  kSampleForward = 7,
  kRankSummary = 8,
  kRankResidual = 9,
  kAck = 10,
  kHello = 11,

  // Service plane (daemon <-> site process / query client). Zero paper
  // words by definition: session management, flow control, and queries
  // are outside the §1.1 communication model.
  kJoin = 12,          ///< site->coord session open (flags, options hash)
  kJoinAck = 13,       ///< coord->site session accept / reject
  kGrantRequest = 14,  ///< site->coord: ask to run arrivals (0 = stream end)
  kGrant = 15,         ///< coord->site: lockstep run grant
  kGrantDone = 16,     ///< site->coord: granted run finished
  kNoBroadcast = 17,   ///< coord->site: coarse report judged quiet
  kRitualAck = 18,     ///< site->coord: broadcast ritual applied
  kQuery = 19,         ///< client->coord snapshot query
  kQueryResult = 20,   ///< coord->client query answer (vector payload)
  kShutdown = 21,      ///< orderly teardown (client->coord->sites)
};

/// One protocol message, independent of its frame encoding. The scalar
/// payload slots a/b/c are interpreted per type:
///
///   kCoarseReport   a = Δ (un-reported local count)           1 word
///   kCoinReport     a = new reported value                    1 word
///   kCorrection     a = thinned report value (may be 0)       1 word
///   kBroadcast      a = round, b = n̄                          1 word/site
///   kSplitNotice    —                                         1 word
///   kCounterReport  a = item, b = instance id, c = c̄          2 words
///   kSampleForward  a = item, b = instance id                 1 word
///   kRankSummary    a = first_leaf, b = end_leaf, + vectors   charged words
///   kRankResidual   a = leaf, b = value                       2 words
///   kAck            a = cumulative sequence number            transport-only
///   kHello          a = downlink delivery watermark           transport-only
///
/// Service plane (service/, all zero paper words):
///
///   kJoin           a = flags (bit0: resume), b = options hash,
///                   c = site position (arrivals already absorbed)
///   kJoinAck        a = status (0 = ok), b = coordinator's uplink
///                   watermark for the site, c = downlink resend count
///   kGrantRequest   a = requested arrivals (0 = end of stream)
///   kGrant          a = granted arrivals, b = grant ordinal
///   kGrantDone      a = site position after the run
///   kBroadcast (as decision) c = uplink seq of the triggering coarse
///                   report on the trigger site's copy, 0 otherwise
///   kNoBroadcast    a = uplink seq of the coarse report judged quiet
///   kRitualAck      a = downlink seq of the broadcast applied,
///                   b = site position at application
///   kQuery          a = QueryKind, b / c = kind-specific parameters
///   kQueryResult    a = QueryKind, b = echo of b, c = entry count;
///                   values = kind-specific payload (doubles bit-cast)
///   kShutdown       a = reason code (0 = orderly)
struct Message {
  MsgType type = MsgType::kCoarseReport;
  int32_t site = -1;  ///< originating (uplink) or target (downlink) site;
                      ///< -1 = coordinator broadcast
  uint64_t epoch = 0;  ///< coordinator round at emission
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  std::vector<uint64_t> values;  ///< kRankSummary / kQueryResult only
  std::vector<std::pair<uint64_t, uint32_t>> segments;  ///< kRankSummary only

  /// §1.1 word charge of this message as metered by the tracker at
  /// emission (before the max(1, words) floor and before broadcast
  /// fan-out). Carried in the frame so decode round-trips it; the word
  /// charge of a rank summary depends on its compaction path and cannot
  /// be recomputed from the stored content alone.
  uint64_t paper_words = 0;
};

/// The §1.1 charge of `msg` as CommMeter applies it: max(1, paper_words)
/// per message, times the fan-out (num_sites) for a broadcast. Control
/// frames (kAck, kHello) are transport overhead and charge zero paper
/// words — the paper's model has no retransmissions to acknowledge.
uint64_t PaperWordCharge(const Message& msg, int num_sites);

/// Exact encoded frame size in bytes.
size_t EncodedSize(const Message& msg);

/// Appends the frame for (msg, seq) to `*out` (not cleared). The frame is
/// self-delimiting and CRC-protected.
void EncodeFrame(const Message& msg, uint64_t seq, std::vector<uint8_t>* out);

/// Decodes one frame. Returns false (without touching outputs) on short
/// input, bad magic, unknown version, malformed payload, or CRC mismatch.
bool DecodeFrame(const uint8_t* data, size_t size, Message* msg,
                 uint64_t* seq);

/// Stream-reassembly probe: given at least kHeaderBytes of a byte stream,
/// returns the total length of the frame starting at `data` (header +
/// payload + CRC), or 0 if the prefix cannot open a valid frame (bad
/// magic, unknown version, type outside the table, size < kHeaderBytes).
/// A nonzero return only promises the length — DecodeFrame still
/// validates payload shape and CRC once that many bytes have arrived.
size_t PeekFrameSize(const uint8_t* data, size_t size);

/// Tracker-side emission hook. A tracker with a tap installed emits every
/// protocol message it meters through OnMessage, exactly once, at the
/// moment the §1.1 model would send it. The robust cluster installs a tap
/// that frames the message and routes it through the fault-injected
/// transport; with no tap installed the trackers behave exactly as
/// before (direct-call sim).
class WireTap {
 public:
  virtual ~WireTap() = default;
  virtual void OnMessage(Message&& msg) = 0;
};

}  // namespace wire
}  // namespace sim
}  // namespace disttrack

#endif  // DISTTRACK_SIM_WIRE_H_
