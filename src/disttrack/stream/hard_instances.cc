#include "disttrack/stream/hard_instances.h"

#include <algorithm>
#include <cmath>

namespace disttrack {
namespace stream {

MuInstance MakeMuInstance(int k, uint64_t n, uint64_t seed) {
  Rng rng(seed);
  MuInstance out;
  out.single_site_case = rng.Bernoulli(0.5);
  out.workload.reserve(n);
  if (out.single_site_case) {
    out.chosen_site =
        static_cast<int>(rng.UniformU64(static_cast<uint64_t>(k)));
    for (uint64_t t = 0; t < n; ++t) {
      out.workload.push_back({out.chosen_site, 0});
    }
  } else {
    out.chosen_site = -1;
    for (uint64_t t = 0; t < n; ++t) {
      out.workload.push_back(
          {static_cast<int>(t % static_cast<uint64_t>(k)), 0});
    }
  }
  return out;
}

OneBitInstance MakeOneBitInstance(int k, uint64_t seed) {
  Rng rng(seed);
  OneBitInstance out;
  uint64_t uk = static_cast<uint64_t>(k);
  uint64_t root = static_cast<uint64_t>(std::llround(std::sqrt(uk)));
  out.s_is_high = rng.Bernoulli(0.5);
  uint64_t base = uk / 2;
  out.s = out.s_is_high ? base + root : (base > root ? base - root : 0);
  out.s = std::min(out.s, uk);
  std::vector<uint32_t> chosen;
  rng.SampleWithoutReplacement(uk, out.s, &chosen);
  out.bits.assign(uk, 0);
  for (uint32_t i : chosen) out.bits[i] = 1;
  return out;
}

Theorem24Workload MakeTheorem24Workload(int k, double eps, uint64_t rounds,
                                        uint64_t seed) {
  Rng rng(seed);
  Theorem24Workload out;
  double rk = std::sqrt(static_cast<double>(k));
  uint64_t subrounds =
      std::max<uint64_t>(1, static_cast<uint64_t>(1.0 / (2.0 * eps * rk)));
  out.rounds = rounds;
  out.subrounds_per_round = subrounds;
  uint64_t uk = static_cast<uint64_t>(k);
  uint64_t root = static_cast<uint64_t>(std::llround(rk));
  for (uint64_t i = 0; i < rounds; ++i) {
    uint64_t per_site = 1ull << std::min<uint64_t>(i, 40);
    for (uint64_t j = 0; j < subrounds; ++j) {
      bool high = rng.Bernoulli(0.5);
      uint64_t base = uk / 2;
      uint64_t s = high ? base + root : (base > root ? base - root : 0);
      s = std::min(s, uk);
      out.subround_s_high.push_back(high ? 1 : 0);
      std::vector<uint32_t> chosen;
      rng.SampleWithoutReplacement(uk, s, &chosen);
      for (uint32_t site : chosen) {
        for (uint64_t e = 0; e < per_site; ++e) {
          out.workload.push_back({static_cast<int>(site), 0});
        }
      }
    }
  }
  return out;
}

bool ProbeAndGuessOneBit(const OneBitInstance& instance, uint64_t z,
                         Rng* rng) {
  uint64_t k = instance.bits.size();
  z = std::min(z, k);
  std::vector<uint32_t> probes;
  rng->SampleWithoutReplacement(k, z, &probes);
  uint64_t ones = 0;
  for (uint32_t site : probes) ones += instance.bits[site];
  // Optimal threshold test (Figure 1): the two hypergeometric means are
  // z*(k/2±√k)/k; decide by the midpoint z/2.
  double midpoint = static_cast<double>(z) / 2.0;
  bool guess_high = static_cast<double>(ones) > midpoint;
  if (static_cast<double>(ones) == midpoint) guess_high = rng->Bernoulli(0.5);
  return guess_high == instance.s_is_high;
}

double OneBitSuccessRate(int k, uint64_t z, uint64_t trials, uint64_t seed) {
  Rng rng(seed);
  uint64_t hits = 0;
  for (uint64_t t = 0; t < trials; ++t) {
    OneBitInstance inst = MakeOneBitInstance(k, rng.NextU64());
    if (ProbeAndGuessOneBit(inst, z, &rng)) ++hits;
  }
  return trials == 0 ? 0.0
                     : static_cast<double>(hits) / static_cast<double>(trials);
}

}  // namespace stream
}  // namespace disttrack
