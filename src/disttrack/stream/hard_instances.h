// The lower-bound constructions of the paper, implemented verbatim as
// workload generators:
//
//  * distribution µ (Theorem 2.2 / 2.3): with probability 1/2 all N
//    elements arrive at one uniformly random site, otherwise round-robin;
//  * the 1-bit problem (Definition 2.1 / Lemma 2.2): s = k/2 + √k or
//    k/2 - √k sites hold bit 1, a uniformly random subset;
//  * the Theorem 2.4 adversarial schedule: ℓ rounds of r = 1/(2ε√k)
//    subrounds, each delivering 2^i elements to each of s random sites;
//  * the sampling problem of Appendix A / Figure 1: distinguish the two
//    hypergeometric (≈ normal) distributions by probing z sites.

#ifndef DISTTRACK_STREAM_HARD_INSTANCES_H_
#define DISTTRACK_STREAM_HARD_INSTANCES_H_

#include <cstdint>
#include <vector>

#include "disttrack/common/random.h"
#include "disttrack/sim/cluster.h"

namespace disttrack {
namespace stream {

/// A draw from the hard input distribution µ of Theorem 2.2.
struct MuInstance {
  bool single_site_case = false;  ///< case (a): everything at one site
  int chosen_site = 0;            ///< the site of case (a); -1 in case (b)
  sim::Workload workload;
};

/// Samples µ: with probability 1/2 all n elements arrive at one uniformly
/// random site (case a), otherwise round-robin over the k sites (case b).
MuInstance MakeMuInstance(int k, uint64_t n, uint64_t seed);

/// One 1-bit instance (Definition 2.1): `s` is k/2 + √k or k/2 - √k with
/// equal probability; bits[i] = 1 for exactly s uniformly random sites.
struct OneBitInstance {
  uint64_t s = 0;
  bool s_is_high = false;  ///< true iff s = k/2 + √k
  std::vector<uint8_t> bits;
};

/// Samples a 1-bit instance over k sites (k >= 4 recommended so that the
/// two values of s differ).
OneBitInstance MakeOneBitInstance(int k, uint64_t seed);

/// The Theorem 2.4 adversarial count workload: ℓ rounds; round i has
/// r = max(1, 1/(2ε√k)) subrounds; each subround samples s ∈ {k/2±√k} and
/// delivers 2^i elements to each of s uniformly random sites.
/// Also records, per subround, which s was drawn (for protocols that try to
/// answer the embedded 1-bit problem).
struct Theorem24Workload {
  sim::Workload workload;
  std::vector<uint8_t> subround_s_high;  ///< per subround: s = k/2 + √k?
  uint64_t rounds = 0;
  uint64_t subrounds_per_round = 0;
};

Theorem24Workload MakeTheorem24Workload(int k, double eps, uint64_t rounds,
                                        uint64_t seed);

/// The Appendix-A sampling experiment: given a 1-bit instance, probe z
/// uniformly random distinct sites and apply the optimal threshold test of
/// Figure 1 (decide "s high" iff the number of sampled 1-bits exceeds the
/// crossing point of the two densities, here the midpoint z*s_mid/k).
/// Returns true iff the test answers correctly.
bool ProbeAndGuessOneBit(const OneBitInstance& instance, uint64_t z, Rng* rng);

/// Empirical success probability of ProbeAndGuessOneBit over `trials`
/// fresh instances; reproduces the Figure 1 separation experiment.
double OneBitSuccessRate(int k, uint64_t z, uint64_t trials, uint64_t seed);

}  // namespace stream
}  // namespace disttrack

#endif  // DISTTRACK_STREAM_HARD_INSTANCES_H_
