#include "disttrack/stream/workload.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "disttrack/stream/zipf.h"

namespace disttrack {
namespace stream {

int ScheduleSite(SiteSchedule schedule, uint64_t t, uint64_t n, int k,
                 Rng* rng) {
  if (k <= 1) return 0;
  switch (schedule) {
    case SiteSchedule::kRoundRobin:
      return static_cast<int>(t % static_cast<uint64_t>(k));
    case SiteSchedule::kUniformRandom:
      return static_cast<int>(rng->UniformU64(static_cast<uint64_t>(k)));
    case SiteSchedule::kSingleSite:
      return 0;
    case SiteSchedule::kSkewedGeometric: {
      // Site i with probability ~ 2^-(i+1); the tail collapses to site k-1.
      int level = rng->GeometricLevel();
      return level >= k ? k - 1 : level;
    }
    case SiteSchedule::kBursty: {
      // k contiguous phases: elements [i*n/k, (i+1)*n/k) all land at site i.
      uint64_t phase = n == 0 ? 0 : t * static_cast<uint64_t>(k) / n;
      return static_cast<int>(std::min<uint64_t>(phase, k - 1));
    }
  }
  return 0;
}

sim::Workload MakeCountWorkload(int k, uint64_t n, SiteSchedule schedule,
                                uint64_t seed) {
  Rng rng(seed);
  sim::Workload w;
  w.reserve(n);
  for (uint64_t t = 0; t < n; ++t) {
    w.push_back({ScheduleSite(schedule, t, n, k, &rng), 0});
  }
  return w;
}

sim::SiteStream MakeCountSites(int k, uint64_t n, SiteSchedule schedule,
                               uint64_t seed) {
  if (k < 1 || k > 65535) {
    // A larger k would silently alias sites mod 2^16; fail loudly instead.
    std::fprintf(stderr, "MakeCountSites: k must be in [1, 65535], got %d\n",
                 k);
    std::abort();
  }
  Rng rng(seed);
  sim::SiteStream sites;
  sites.reserve(n);
  for (uint64_t t = 0; t < n; ++t) {
    sites.push_back(
        static_cast<uint16_t>(ScheduleSite(schedule, t, n, k, &rng)));
  }
  return sites;
}

sim::Workload MakeFrequencyWorkload(int k, uint64_t n, SiteSchedule schedule,
                                    uint64_t universe, double zipf_alpha,
                                    uint64_t seed) {
  Rng rng(seed);
  ZipfGenerator zipf(universe, zipf_alpha, seed ^ 0xABCDEF1234567890ull);
  sim::Workload w;
  w.reserve(n);
  for (uint64_t t = 0; t < n; ++t) {
    w.push_back({ScheduleSite(schedule, t, n, k, &rng), zipf.Next()});
  }
  return w;
}

sim::Workload MakePlantedFrequencyWorkload(int k,
                                           const std::vector<uint64_t>& counts,
                                           SiteSchedule schedule,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> items;
  for (uint64_t j = 0; j < counts.size(); ++j) {
    for (uint64_t c = 0; c < counts[j]; ++c) items.push_back(j);
  }
  // Fisher–Yates shuffle so copies interleave adversarially-neutrally.
  for (uint64_t i = items.size(); i > 1; --i) {
    uint64_t j = rng.UniformU64(i);
    std::swap(items[i - 1], items[j]);
  }
  uint64_t n = items.size();
  sim::Workload w;
  w.reserve(n);
  for (uint64_t t = 0; t < n; ++t) {
    w.push_back({ScheduleSite(schedule, t, n, k, &rng), items[t]});
  }
  return w;
}

sim::Workload MakeRankWorkload(int k, uint64_t n, SiteSchedule schedule,
                               ValueOrder order, int universe_bits,
                               uint64_t seed) {
  Rng rng(seed);
  Rng vrng(seed ^ 0x1234FEDCBA098765ull);
  uint64_t universe = universe_bits >= 64 ? ~0ull : (1ull << universe_bits);
  sim::Workload w;
  w.reserve(n);
  for (uint64_t t = 0; t < n; ++t) {
    uint64_t v = 0;
    switch (order) {
      case ValueOrder::kUniformRandom:
        v = vrng.UniformU64(universe);
        break;
      case ValueOrder::kAscending:
        v = n <= 1 ? 0 : static_cast<uint64_t>(
            static_cast<double>(t) / static_cast<double>(n) *
            static_cast<double>(universe));
        break;
      case ValueOrder::kDescending:
        v = n <= 1 ? 0 : static_cast<uint64_t>(
            static_cast<double>(n - 1 - t) / static_cast<double>(n) *
            static_cast<double>(universe));
        break;
      case ValueOrder::kClustered: {
        // Four dense clusters at 1/8, 3/8, 5/8, 7/8 of the domain plus 10%
        // uniform noise.
        if (vrng.Bernoulli(0.1)) {
          v = vrng.UniformU64(universe);
        } else {
          uint64_t c = vrng.UniformU64(4);
          uint64_t center = universe / 8 + c * (universe / 4);
          uint64_t spread = std::max<uint64_t>(1, universe / 64);
          v = center - spread / 2 + vrng.UniformU64(spread);
        }
        break;
      }
    }
    if (v >= universe) v = universe - 1;
    w.push_back({ScheduleSite(schedule, t, n, k, &rng), v});
  }
  return w;
}

uint64_t ExactRank(const sim::Workload& workload, uint64_t x) {
  uint64_t r = 0;
  for (const auto& a : workload) {
    if (a.key < x) ++r;
  }
  return r;
}

uint64_t ExactFrequency(const sim::Workload& workload, uint64_t item) {
  uint64_t f = 0;
  for (const auto& a : workload) {
    if (a.key == item) ++f;
  }
  return f;
}

}  // namespace stream
}  // namespace disttrack
