// Workload generators: who receives each element (site schedules) and what
// the element is (item / value distributions).
//
// The model (§1.1) allows arbitrary, adversarially timed arrivals at
// varying per-site rates. These generators cover the natural spread used
// when evaluating tracking protocols: balanced (round-robin), random,
// fully skewed (one site), geometrically skewed rates, and bursty phases —
// plus the exact hard distributions from the lower-bound proofs (see
// hard_instances.h).

#ifndef DISTTRACK_STREAM_WORKLOAD_H_
#define DISTTRACK_STREAM_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "disttrack/common/random.h"
#include "disttrack/sim/cluster.h"

namespace disttrack {
namespace stream {

/// How arrivals are spread over the k sites.
enum class SiteSchedule {
  kRoundRobin,       ///< site t mod k receives element t (case (b) of µ)
  kUniformRandom,    ///< each element goes to an independent uniform site
  kSingleSite,       ///< all elements at site 0 (case (a) of µ, fixed site)
  kSkewedGeometric,  ///< site i receives ∝ 2^-i of the stream, randomly
  kBursty,           ///< stream split into k contiguous bursts, one per site
};

/// What values the elements carry (rank workloads).
enum class ValueOrder {
  kUniformRandom,  ///< i.i.d. uniform over the universe
  kAscending,      ///< sorted increasing (worst case for naive summaries)
  kDescending,     ///< sorted decreasing
  kClustered,      ///< a few dense clusters with uniform noise
};

/// Returns the site for element index `t` under `schedule`; `rng` supplies
/// the randomness for randomized schedules.
int ScheduleSite(SiteSchedule schedule, uint64_t t, uint64_t n, int k,
                 Rng* rng);

/// Count workload: n arrivals spread per `schedule`; keys are zero.
sim::Workload MakeCountWorkload(int k, uint64_t n, SiteSchedule schedule,
                                uint64_t seed);

/// Compact count workload: the same site sequence MakeCountWorkload(k, n,
/// schedule, seed) produces, as a 2-byte-per-element site stream (the
/// count replay fast path's native record). Requires k < 65536.
sim::SiteStream MakeCountSites(int k, uint64_t n, SiteSchedule schedule,
                               uint64_t seed);

/// Frequency workload: n arrivals; items Zipf(alpha) over `universe`.
sim::Workload MakeFrequencyWorkload(int k, uint64_t n, SiteSchedule schedule,
                                    uint64_t universe, double zipf_alpha,
                                    uint64_t seed);

/// Frequency workload with exact planted frequencies: `counts[j]` copies of
/// item j, interleaved uniformly at random, spread per `schedule`.
sim::Workload MakePlantedFrequencyWorkload(int k,
                                           const std::vector<uint64_t>& counts,
                                           SiteSchedule schedule,
                                           uint64_t seed);

/// Rank workload: n values in [0, 2^universe_bits) per `order`, spread per
/// `schedule`.
sim::Workload MakeRankWorkload(int k, uint64_t n, SiteSchedule schedule,
                               ValueOrder order, int universe_bits,
                               uint64_t seed);

/// Exact rank of `x` in `workload` (# keys < x); evaluation helper.
uint64_t ExactRank(const sim::Workload& workload, uint64_t x);

/// Exact frequency of `item` in `workload`; evaluation helper.
uint64_t ExactFrequency(const sim::Workload& workload, uint64_t item);

}  // namespace stream
}  // namespace disttrack

#endif  // DISTTRACK_STREAM_WORKLOAD_H_
