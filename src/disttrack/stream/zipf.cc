#include "disttrack/stream/zipf.h"

#include <algorithm>
#include <cmath>

namespace disttrack {
namespace stream {

ZipfGenerator::ZipfGenerator(uint64_t universe, double alpha, uint64_t seed)
    : alpha_(alpha), rng_(seed) {
  if (universe == 0) universe = 1;
  cdf_.resize(universe);
  double total = 0;
  for (uint64_t i = 0; i < universe; ++i) {
    total += std::pow(static_cast<double>(i + 1), -alpha);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

uint64_t ZipfGenerator::Next() {
  double u = rng_.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfGenerator::Probability(uint64_t item) const {
  if (item >= cdf_.size()) return 0.0;
  if (item == 0) return cdf_[0];
  return cdf_[item] - cdf_[item - 1];
}

}  // namespace stream
}  // namespace disttrack
