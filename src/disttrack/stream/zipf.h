// Zipf-distributed item generator, the standard skewed-frequency workload
// for heavy-hitter experiments (cf. the experimental study [7] cited in
// §1.2, which uses skewed real and synthetic frequency data).

#ifndef DISTTRACK_STREAM_ZIPF_H_
#define DISTTRACK_STREAM_ZIPF_H_

#include <cstdint>
#include <vector>

#include "disttrack/common/random.h"

namespace disttrack {
namespace stream {

/// Draws items from {0, ..., universe-1} with P(i) ∝ 1/(i+1)^alpha.
/// Item 0 is the most frequent. alpha = 0 degenerates to uniform.
class ZipfGenerator {
 public:
  /// Builds the inverse-CDF table. O(universe) construction, O(log u) draws.
  ZipfGenerator(uint64_t universe, double alpha, uint64_t seed);

  /// Returns the next item.
  uint64_t Next();

  /// Exact probability of item i under the distribution.
  double Probability(uint64_t item) const;

  uint64_t universe() const { return static_cast<uint64_t>(cdf_.size()); }
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  Rng rng_;
  std::vector<double> cdf_;  // cdf_[i] = P(item <= i)
};

}  // namespace stream
}  // namespace disttrack

#endif  // DISTTRACK_STREAM_ZIPF_H_
