#include "disttrack/summaries/bernoulli_summary.h"

#include <algorithm>

namespace disttrack {
namespace summaries {

BernoulliSampleSummary::BernoulliSampleSummary(double p, uint64_t seed)
    : p_(std::clamp(p, 1e-12, 1.0)), rng_(seed) {}

bool BernoulliSampleSummary::Insert(uint64_t value) {
  ++inserted_;
  if (rng_.Bernoulli(p_)) {
    sample_.push_back(value);
    return true;
  }
  return false;
}

double BernoulliSampleSummary::EstimateRank(uint64_t x) const {
  uint64_t below = 0;
  for (uint64_t v : sample_) {
    if (v < x) ++below;
  }
  return static_cast<double>(below) / p_;
}

double BernoulliSampleSummary::EstimateCount() const {
  return static_cast<double>(sample_.size()) / p_;
}

double BernoulliSampleSummary::EstimateFrequency(uint64_t value) const {
  uint64_t hits = 0;
  for (uint64_t v : sample_) {
    if (v == value) ++hits;
  }
  return static_cast<double>(hits) / p_;
}

void BernoulliSampleSummary::Clear() {
  sample_.clear();
  inserted_ = 0;
}

}  // namespace summaries
}  // namespace disttrack
