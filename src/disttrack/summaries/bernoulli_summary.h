// Plain Bernoulli(p) sample with exact storage — the "simple random
// sampling" sub-estimator the paper leans on twice: the d_ij channel of the
// frequency tracker (§3.1, estimator (4)) and the in-progress-tail channel
// of the rank tracker (§4). Estimates are unbiased with variance <= m/p.

#ifndef DISTTRACK_SUMMARIES_BERNOULLI_SUMMARY_H_
#define DISTTRACK_SUMMARIES_BERNOULLI_SUMMARY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "disttrack/common/random.h"

namespace disttrack {
namespace summaries {

/// Keeps each inserted value independently with probability p.
class BernoulliSampleSummary {
 public:
  BernoulliSampleSummary(double p, uint64_t seed);

  /// Inserts one value; returns true iff it was sampled (callers that model
  /// communication send the value to the coordinator exactly then).
  bool Insert(uint64_t value);

  /// Unbiased estimate of the number of inserted values < x.
  double EstimateRank(uint64_t x) const;

  /// Unbiased estimate of the number of insertions.
  double EstimateCount() const;

  /// Unbiased estimate of the number of insertions equal to `value`.
  double EstimateFrequency(uint64_t value) const;

  double p() const { return p_; }
  uint64_t inserted() const { return inserted_; }
  size_t SampleSize() const { return sample_.size(); }
  const std::vector<uint64_t>& sample() const { return sample_; }
  uint64_t SpaceWords() const { return sample_.size() + 2; }

  void Clear();

 private:
  double p_;
  Rng rng_;
  uint64_t inserted_ = 0;
  std::vector<uint64_t> sample_;
};

}  // namespace summaries
}  // namespace disttrack

#endif  // DISTTRACK_SUMMARIES_BERNOULLI_SUMMARY_H_
