#include "disttrack/summaries/compactor_summary.h"

#include <algorithm>
#include <cmath>

#include "disttrack/common/simd.h"

namespace disttrack {
namespace summaries {

namespace {

// Capacity from eps: s >= 2/eps keeps the martingale variance bound
// 4 m^2 / s^2 below (eps m)^2; force even so compactions conserve weight.
size_t CapacityFor(double eps) {
  if (eps <= 0) eps = 1e-9;
  double raw = std::ceil(2.0 / eps);
  auto s = static_cast<size_t>(std::min(raw, 1e9));
  if (s < 2) s = 2;
  if (s % 2 == 1) ++s;
  return s;
}

// Accessors for the virtual-cascade get contract: At(i) is element i of
// a fully sorted logical sequence, and Gather(offset, stride, count,
// out) materializes the strided slice the cascade keeps. Gather is where
// the vector work lands — the two-view accessor batches its merge-path
// selections four lanes at a time through simd::TwoViewSelect4 (masked
// gather-based binary search under AVX2 dispatch, scalar mirror
// otherwise) instead of one log-time scalar search per element. All
// routes keep the selected values exact, so dispatch can never change a
// tracker estimate (tier A).

// A bare sorted array.
struct DirectGet {
  const uint64_t* d;
  uint64_t At(size_t i) const { return d[i]; }
  void Gather(size_t offset, size_t stride, size_t count,
              uint64_t* out) const {
    for (size_t i = 0; i < count; ++i) out[i] = d[offset + i * stride];
  }
};

// The merge of two ascending arrays, read by sorted position via
// two-array selection (binary-search the split point j — elements taken
// from A among the first i+1 of the merge — O(log min(a, b)) per
// access). Equal values are interchangeable for a value array, so tie
// placement cannot matter.
struct TwoViewGet {
  const uint64_t* A;
  size_t a;
  const uint64_t* B;
  size_t b;
  uint64_t At(size_t i) const { return simd::TwoViewSelect(A, a, B, b, i); }
  void Gather(size_t offset, size_t stride, size_t count,
              uint64_t* out) const {
    size_t i = 0;
    for (; i + 4 <= count; i += 4) {
      size_t idx[4] = {offset + i * stride, offset + (i + 1) * stride,
                       offset + (i + 2) * stride,
                       offset + (i + 3) * stride};
      simd::TwoViewSelect4(A, a, B, b, idx, out + i);
    }
    for (; i < count; ++i) out[i] = At(offset + i * stride);
  }
};

// Splices one residue value `v` in at logical position `p` of an inner
// sorted sequence — the level-0 straggler a virtual cascade must still
// account for.
template <class Inner>
struct ResidueGet {
  Inner inner;
  size_t p;
  uint64_t v;
  uint64_t At(size_t i) const {
    return i < p ? inner.At(i) : (i == p ? v : inner.At(i - 1));
  }
  void Gather(size_t offset, size_t stride, size_t count,
              uint64_t* out) const {
    // Gathered indices are strictly increasing, so they split at p: a
    // prefix below it, at most one hit, and a shifted suffix above —
    // each side stays one strided inner gather.
    size_t below = 0;
    if (offset < p) {
      below = std::min(count, (p - offset + stride - 1) / stride);
    }
    if (below > 0) inner.Gather(offset, stride, below, out);
    size_t i = below;
    if (i < count && offset + i * stride == p) {
      out[i] = v;
      ++i;
    }
    if (i < count) {
      inner.Gather(offset + i * stride - 1, stride, count - i, out + i);
    }
  }
};

}  // namespace

CompactorSummary::CompactorSummary(double eps, uint64_t seed)
    : eps_(eps), capacity_(CapacityFor(eps)), rng_(seed) {
  levels_.emplace_back();
  sorted_.push_back(0);
  seg_bounds_.emplace_back();
  seg_dirty_.push_back(0);
}

void CompactorSummary::Insert(uint64_t value) {
  ++m_;
  auto& base = levels_[0];
  size_t old = base.size();
  base.push_back(value);  // staging tail; consolidated lazily
  NoteAscendingAppend(0, old);
  if (base.size() >= capacity_) Cascade();
}

void CompactorSummary::InsertBatch(const uint64_t* values, size_t count) {
  if (count == 0) return;
  m_ += count;
  auto& base = levels_[0];
  size_t old = base.size();
  base.insert(base.end(), values, values + count);
  if (count == 1) {
    NoteAscendingAppend(0, old);
  } else {
    seg_dirty_[0] = 1;  // unordered contract; consolidation re-scans
  }
  if (base.size() >= capacity_) Cascade();
}

void CompactorSummary::InsertSortedBatch(const uint64_t* values,
                                         size_t count) {
  if (count == 0) return;
  m_ += count;
  auto& base = levels_[0];
  size_t old = base.size();
  base.insert(base.end(), values, values + count);
  NoteAscendingAppend(0, old);
  if (base.size() >= capacity_) Cascade();
}

void CompactorSummary::InsertSortedViews(const RunView* views,
                                         size_t num_views, size_t total) {
  if (total == 0) return;
  m_ += total;
  size_t base_size = levels_[0].size();
  // Zero-copy ingest: whenever the window lands on a bare straggler and
  // reaches the compaction threshold, cascade virtually instead of
  // materializing it in the level-0 buffer. One view (the common
  // consolidated pull) and selection-friendly view pairs are read
  // straight from the borrowed ladder storage; other shapes pre-merge
  // the views once into scratch and cascade over that — still a full
  // pass cheaper than merge-into-base + cascade-from-base. The
  // pre-merge is only legal while the descent stays virtual (a nonempty
  // upper level would make CascadeVirtual merge through the same
  // scratch), so that shape falls back to the base path.
  if (base_size <= 1 && base_size + total >= capacity_) {
    bool selection2 =
        num_views == 2 && VirtualCascadeProfitable(base_size + total);
    bool premerge = num_views >= 2 && !selection2 &&
                    CascadeStaysVirtual(base_size + total);
    if (num_views == 1 || selection2 || premerge) {
      bool continue_normal;
      if (num_views == 1 || premerge) {
        const uint64_t* d;
        if (premerge) {
          view_merge_srcs_.clear();
          for (size_t i = 0; i < num_views; ++i) {
            if (views[i].size == 0) continue;
            view_merge_srcs_.emplace_back(views[i].data, views[i].size);
          }
          d = MergeGatheredSrcs(total);
        } else {
          d = views[0].data;
        }
        if (base_size == 0) {
          continue_normal = CascadeVirtual(DirectGet{d}, total);
        } else {
          uint64_t v = levels_[0][0];
          size_t p =
              static_cast<size_t>(std::lower_bound(d, d + total, v) - d);
          continue_normal = CascadeVirtual(
              ResidueGet<DirectGet>{DirectGet{d}, p, v}, total + 1);
        }
      } else {
        const uint64_t* A = views[0].data;
        size_t a = views[0].size;
        const uint64_t* B = views[1].data;
        size_t b = views[1].size;
        if (base_size == 0) {
          continue_normal = CascadeVirtual(TwoViewGet{A, a, B, b}, total);
        } else {
          uint64_t v = levels_[0][0];
          size_t p =
              static_cast<size_t>(std::lower_bound(A, A + a, v) - A) +
              static_cast<size_t>(std::lower_bound(B, B + b, v) - B);
          continue_normal = CascadeVirtual(
              ResidueGet<TwoViewGet>{TwoViewGet{A, a, B, b}, p, v},
              total + 1);
        }
      }
      FinishVirtualCascade(continue_normal);
      return;
    }
  }
  // Merge views + residue directly into the consolidated buffer, whether
  // or not a compaction follows — a flush's final sub-threshold window is
  // then already consolidated when ExportLevels reads it. The merge reads
  // straight from the borrowed storage: no staging copy, no re-merge.
  EnsureSorted(0);
  MergeViewsIntoBase(views, num_views, total);
  if (levels_[0].size() >= capacity_) CascadeSortedBase();
}

uint64_t CompactorSummary::InsertViewsAndExport(
    const RunView* views, size_t num_views, size_t total,
    std::vector<uint64_t>* values,
    std::vector<std::pair<uint64_t, uint32_t>>* segments) {
  values->clear();
  segments->clear();
  bool fused = false;
  if (total > 0) {
    if (levels_[0].size() + total >= capacity_) {
      // Over-threshold window: the ordinary ingest (virtual cascade and
      // friends) compacts it down; the export below then copies only the
      // survivors.
      InsertSortedViews(views, num_views, total);
    } else {
      // Sub-threshold final window: count it in and export level 0
      // straight from residue + borrowed views below. levels_[0] itself
      // never materializes the window — legal only because the caller
      // retires the summary right after the flush (see the header).
      m_ += total;
      EnsureSorted(0);
      fused = true;
    }
  }
  size_t items = 0;
  for (const auto& buf : levels_) items += buf.size();
  if (fused) items += total;
  values->reserve(items);
  if (fused) {
    auto& base = levels_[0];
    size_t out_size = base.size() + total;
    view_merge_srcs_.clear();
    if (!base.empty()) {
      view_merge_srcs_.emplace_back(base.data(), base.size());
    }
    for (size_t i = 0; i < num_views; ++i) {
      if (views[i].size == 0) continue;
      view_merge_srcs_.emplace_back(views[i].data, views[i].size);
    }
    values->resize(out_size);
    size_t nsrc = view_merge_srcs_.size();
    if (nsrc == 1) {
      std::copy(view_merge_srcs_[0].first,
                view_merge_srcs_[0].first + view_merge_srcs_[0].second,
                values->begin());
    } else if (nsrc == 2) {
      // The common flush shape (residue + consolidated window): one
      // merge pass straight into the wire buffer.
      std::merge(view_merge_srcs_[0].first,
                 view_merge_srcs_[0].first + view_merge_srcs_[0].second,
                 view_merge_srcs_[1].first,
                 view_merge_srcs_[1].first + view_merge_srcs_[1].second,
                 values->begin());
    } else {
      const uint64_t* result = MergeGatheredSrcs(out_size);
      std::copy(result, result + out_size, values->begin());
    }
    segments->emplace_back(1, static_cast<uint32_t>(values->size()));
  } else if (!levels_[0].empty()) {
    EnsureSorted(0);
    values->insert(values->end(), levels_[0].begin(), levels_[0].end());
    segments->emplace_back(1, static_cast<uint32_t>(values->size()));
  }
  size_t used = LevelsUsed();
  for (size_t level = 1; level < used; ++level) {
    if (levels_[level].empty()) continue;
    EnsureSorted(level);
    values->insert(values->end(), levels_[level].begin(),
                   levels_[level].end());
    segments->emplace_back(uint64_t{1} << level,
                           static_cast<uint32_t>(values->size()));
  }
  // Identical to SerializedWords() after a separate ingest: one word per
  // stored item plus one length header per level in use plus one.
  return static_cast<uint64_t>(items) + used + 1;
}

bool CompactorSummary::VirtualCascadeProfitable(size_t len) const {
  // Replay the descent's shape: survivors halve per virtualized level
  // until the slice drops below capacity or a nonempty level stops the
  // virtual phase with a gather. Each materialized element costs a
  // log-time merge-path selection under the two-view accessor, while the
  // copy path costs ~2 straight moves per input element — so the virtual
  // route wins once the materialized count is a small fraction of len.
  size_t level = 0;
  size_t l = len;
  size_t accessed = 0;
  while (l >= capacity_) {
    ++accessed;  // potential odd straggler at this virtual level
    l = (l & ~size_t{1}) / 2;
    ++level;
    if (level < levels_.size() && !levels_[level].empty()) break;
  }
  accessed += l;  // final slice or promotion gather
  return accessed * 8 <= len;
}

bool CompactorSummary::CascadeStaysVirtual(size_t len) const {
  size_t level = 0;
  size_t l = len;
  while (l >= capacity_) {
    l = (l & ~size_t{1}) / 2;
    ++level;
    if (level < levels_.size() && !levels_[level].empty()) return false;
  }
  return true;
}

void CompactorSummary::FinishVirtualCascade(bool continue_normal) {
  // Re-derive levels_[0] from the recorded stragglers — CascadeVirtual
  // may have grown the hierarchy, and the accessor read the old level-0
  // content until the cascade finished.
  auto& base = levels_[0];
  base.clear();
  for (const auto& [lvl, value] : straggler_scratch_) {
    if (lvl == 0) base.push_back(value);
  }
  sorted_[0] = base.size();
  seg_bounds_[0].clear();
  seg_dirty_[0] = 0;
  if (continue_normal) Cascade();
}

void CompactorSummary::CascadeSortedBase() {
  const uint64_t* data = levels_[0].data();
  bool continue_normal =
      CascadeVirtual(DirectGet{data}, levels_[0].size());
  // Collapse level 0 to its straggler last — the accessor read from it
  // until here.
  auto& base = levels_[0];
  size_t base_size = 0;
  for (const auto& [lvl, value] : straggler_scratch_) {
    if (lvl == 0) base[base_size++] = value;
  }
  base.resize(base_size);
  sorted_[0] = base_size;
  seg_bounds_[0].clear();
  seg_dirty_[0] = 0;
  if (continue_normal) Cascade();
}

// The virtual-cascade core. `get` is one of the accessors above:
// get.At(i) indexes a fully sorted sequence of `len` >= capacity
// elements that logically sits in level 0, and get.Gather materializes
// strided slices of it in bulk (vectorized for the two-view shape). Compacting
// it the element-moving way would sort-promote-merge its way up level by
// level, yet while the upper levels are empty the composition of those
// stride-2 promotions is itself a strided slice of the sorted sequence:
// promoting with offset coin c_j at virtual level j keeps exactly
// get(offset + i * 2^(j+1)) with the offset accumulating c_j * 2^j. So
// descend virtually — drawing the same per-level coins the real cascade
// would draw — and materialize only the survivors: one straggler per odd
// virtual level (recorded in straggler_scratch_; the caller owns writing
// the level-0 one) and the first sub-capacity slice. A nonempty upper
// level ends the virtual phase: the promotion due there is gathered and
// merged, and the caller finishes with the ordinary cascade (signalled by
// returning true) — bit-identical either way, since every step keeps the
// same elements the real cascade keeps.
template <class GetFn>
bool CompactorSummary::CascadeVirtual(GetFn get, size_t len) {
  size_t depth = 0;
  for (size_t l = len; l >= capacity_; l /= 2) ++depth;
  while (levels_.size() < depth + 1) {
    levels_.emplace_back();
    sorted_.push_back(0);
    seg_bounds_.emplace_back();
    seg_dirty_.push_back(0);
  }
  size_t stride = 1;
  size_t offset = 0;
  size_t level = 0;
  straggler_scratch_.clear();
  bool continue_normal = false;
  while (len >= capacity_) {
    size_t take = len & ~size_t{1};
    bool coin = rng_.Bernoulli(0.5);
    if (len > take) {
      // Odd straggler stays behind at this virtual level.
      straggler_scratch_.emplace_back(level,
                                      get.At(offset + (len - 1) * stride));
    }
    size_t promoted = take / 2;
    if (coin) offset += stride;
    stride *= 2;
    len = promoted;
    ++level;
    if (!levels_[level].empty()) {
      // Real content ahead: gather the promotion, merge, and let the
      // ordinary cascade finish from here.
      promote_buf_.resize(promoted);
      get.Gather(offset, stride, promoted, promote_buf_.data());
      EnsureSorted(level);
      auto& up = levels_[level];
      size_t up_size = up.size() + promoted;
      GrowScratch(up_size);
      simd::MergeSorted(up.data(), up.size(), promote_buf_.data(), promoted,
                        merge_buf_.data());
      up.assign(merge_buf_.data(), merge_buf_.data() + up_size);
      sorted_[level] = up_size;
      seg_bounds_[level].clear();
      seg_dirty_[level] = 0;
      continue_normal = true;
      break;
    }
  }
  if (!continue_normal && level > 0) {
    // Materialize the first sub-capacity slice into its (empty) level.
    auto& stop = levels_[level];
    stop.resize(len);
    get.Gather(offset, stride, len, stop.data());
    sorted_[level] = len;
    seg_bounds_[level].clear();
    seg_dirty_[level] = 0;
  }
  // Write the virtualized levels' stragglers (all were empty).
  for (const auto& [lvl, value] : straggler_scratch_) {
    if (lvl == 0) continue;  // caller owns level 0
    levels_[lvl].push_back(value);
    sorted_[lvl] = levels_[lvl].size();
  }
  return continue_normal;
}

void CompactorSummary::MergeViewsIntoBase(const RunView* views,
                                          size_t num_views, size_t total) {
  auto& base = levels_[0];
  size_t out_size = base.size() + total;
  // Sources: the consolidated base residue plus the borrowed views. The
  // first merge pass reads them in place; later passes ping-pong between
  // the two scratch buffers, so any view count costs one move per element
  // per ceil(log2(#sources)) passes and never stages a copy.
  view_merge_srcs_.clear();
  if (!base.empty()) view_merge_srcs_.emplace_back(base.data(), base.size());
  for (size_t i = 0; i < num_views; ++i) {
    if (views[i].size == 0) continue;
    view_merge_srcs_.emplace_back(views[i].data, views[i].size);
  }
  const uint64_t* result = MergeGatheredSrcs(out_size);
  base.assign(result, result + out_size);
  sorted_[0] = out_size;
  seg_bounds_[0].clear();
  seg_dirty_[0] = 0;
}

const uint64_t* CompactorSummary::MergeGatheredSrcs(size_t out_size) {
  size_t nsrc = view_merge_srcs_.size();
  const uint64_t* result = nullptr;
  if (nsrc == 1) {
    result = view_merge_srcs_[0].first;
  } else if (nsrc == 2) {
    GrowScratch(out_size);
    simd::MergeSorted(view_merge_srcs_[0].first, view_merge_srcs_[0].second,
                      view_merge_srcs_[1].first, view_merge_srcs_[1].second,
                      merge_buf_.data());
    result = merge_buf_.data();
  } else {
    GrowScratch(out_size);
    // First pass: merge source pairs straight into merge_buf_, recording
    // the produced run bounds; then pairwise ping-pong with the second
    // scratch until one run remains.
    if (view_merge_buf_.size() < out_size) {
      view_merge_buf_.resize(
          std::max(out_size, view_merge_buf_.size() * 2));
    }
    auto& bounds = run_bounds_;
    bounds.clear();
    bounds.push_back(0);
    uint64_t* out = merge_buf_.data();
    size_t produced = 0;
    for (size_t i = 0; i + 1 < nsrc; i += 2) {
      const auto& a = view_merge_srcs_[i];
      const auto& b = view_merge_srcs_[i + 1];
      simd::MergeSorted(a.first, a.second, b.first, b.second, out + produced);
      produced += a.second + b.second;
      bounds.push_back(produced);
    }
    if (nsrc % 2 == 1) {
      const auto& a = view_merge_srcs_[nsrc - 1];
      std::copy(a.first, a.first + a.second, out + produced);
      produced += a.second;
      bounds.push_back(produced);
    }
    uint64_t* src = merge_buf_.data();
    uint64_t* dst = view_merge_buf_.data();
    while (bounds.size() > 2) {
      size_t kept = 0;
      size_t r = 0;
      for (; r + 2 < bounds.size(); r += 2) {
        size_t lo = bounds[r], mid = bounds[r + 1], hi = bounds[r + 2];
        simd::MergeSorted(src + lo, mid - lo, src + mid, hi - mid, dst + lo);
        bounds[++kept] = hi;
      }
      if (r + 1 < bounds.size()) {
        size_t lo = bounds[r], hi = bounds[r + 1];
        std::copy(src + lo, src + hi, dst + lo);
        bounds[++kept] = hi;
      }
      bounds.resize(kept + 1);
      std::swap(src, dst);
    }
    result = src;
  }
  return result;
}

void CompactorSummary::Cascade() {
  // One pass: CompactLevel consumes the whole even prefix of a buffer, so
  // a single compaction per level suffices however far past capacity the
  // staged runs (or the promotions from below) pushed it.
  for (size_t level = 0; level < levels_.size(); ++level) {
    if (levels_[level].size() >= capacity_) CompactLevel(level);
  }
}

void CompactorSummary::NoteAscendingAppend(size_t level, size_t old_size) {
  // Appending at the tail start, or continuing ascending order, extends
  // the previous segment; otherwise a new segment starts at old_size.
  auto& buf = levels_[level];
  if (old_size > sorted_[level] && buf[old_size - 1] > buf[old_size]) {
    seg_bounds_[level].push_back(old_size);
  }
}

void CompactorSummary::EnsureSorted(size_t level) {
  auto& buf = levels_[level];
  if (sorted_[level] < buf.size()) {
    SortTail(&buf, sorted_[level],
             seg_dirty_[level] ? nullptr : &seg_bounds_[level]);
    MergeSortedTail(&buf, sorted_[level]);
    sorted_[level] = buf.size();
  }
  seg_bounds_[level].clear();
  seg_dirty_[level] = 0;
}

void CompactorSummary::SortTail(std::vector<uint64_t>* buf, size_t from,
                                const std::vector<size_t>* interior_bounds) {
  size_t len = buf->size() - from;
  uint64_t* tail = buf->data() + from;
  auto& bounds = run_bounds_;
  bounds.clear();
  bounds.push_back(0);
  if (interior_bounds != nullptr) {
    // Boundaries were tracked at append time; no detection scan needed.
    for (size_t b : *interior_bounds) bounds.push_back(b - from);
  } else {
    if (len < 8) {
      // Below run-merge overhead; note even here the tail is usually a
      // couple of sorted runs, which insertion sort handles in ~len moves.
      std::sort(tail, tail + len);
      return;
    }
    // Collect the tail's ascending-run boundaries (relative to the tail).
    for (size_t i = 1; i < len; ++i) {
      if (tail[i] < tail[i - 1]) bounds.push_back(i);
    }
  }
  bounds.push_back(len);
  if (bounds.size() == 2) return;  // single ascending run already
  // Merge adjacent runs pairwise until one remains, ping-ponging between
  // the tail and the scratch buffer — one move per element per pass, and
  // only ~log2(#runs) passes since the staged batch runs arrive sorted.
  GrowScratch(len);
  uint64_t* src = tail;
  uint64_t* dst = merge_buf_.data();
  while (bounds.size() > 2) {
    size_t out = 0;
    size_t r = 0;
    for (; r + 2 < bounds.size(); r += 2) {
      size_t lo = bounds[r], mid = bounds[r + 1], hi = bounds[r + 2];
      simd::MergeSorted(src + lo, mid - lo, src + mid, hi - mid, dst + lo);
      bounds[++out] = hi;  // overwrite in place: bounds[0] stays 0
    }
    if (r + 1 < bounds.size()) {
      // Odd run out: carry it to the destination buffer unmerged.
      size_t lo = bounds[r], hi = bounds[r + 1];
      std::copy(src + lo, src + hi, dst + lo);
      bounds[++out] = hi;
    }
    bounds.resize(out + 1);
    std::swap(src, dst);
  }
  if (src != tail) std::copy(src, src + len, tail);
}

void CompactorSummary::MergeSortedTail(std::vector<uint64_t>* buf,
                                       size_t mid) {
  if (mid == 0 || mid == buf->size()) return;
  uint64_t* data = buf->data();
  if (data[mid - 1] <= data[mid]) return;  // already in order
  if (mid <= 2) {
    // Tiny prefix — usually the post-compaction straggler: binary-insert
    // each element (one memmove, no comparison pass over the tail).
    for (size_t i = mid; i-- > 0;) {
      uint64_t v = data[i];
      uint64_t* pos = std::upper_bound(data + i + 1, data + buf->size(), v);
      std::move(data + i + 1, pos, data + i);
      *(pos - 1) = v;
    }
    return;
  }
  GrowScratch(buf->size());
  simd::MergeSorted(data, mid, data + mid, buf->size() - mid,
                    merge_buf_.data());
  buf->assign(merge_buf_.data(), merge_buf_.data() + buf->size());
}

void CompactorSummary::CompactLevel(size_t level) {
  // Grow the hierarchy first: emplace_back may reallocate `levels_`, so no
  // reference into it may be taken before this point.
  if (levels_.size() <= level + 1) {
    levels_.emplace_back();
    sorted_.push_back(0);
    seg_bounds_.emplace_back();
    seg_dirty_.push_back(0);
  }
  EnsureSorted(level);
  auto& buf = levels_[level];
  // Compact an even prefix so total weight is conserved exactly; an odd
  // straggler stays behind for the next compaction. The buffer was just
  // consolidated, so promotion is a stride-2 pass whose output is itself
  // sorted; it merges eagerly with the next level's content, keeping
  // every level above 0 permanently consolidated — upper-level
  // EnsureSorted/export calls are then no-ops, and a buffer holds at
  // most two promotions' worth before its own compaction, so the eager
  // merge touches each element a bounded number of times with none of
  // the staged-run bookkeeping.
  size_t take = buf.size() & ~size_t{1};
  if (take < 2) return;
  size_t offset = rng_.Bernoulli(0.5) ? 1 : 0;
  size_t promoted = take / 2;
  auto& up = levels_[level + 1];
  if (up.empty()) {
    up.resize(promoted);
    size_t out = 0;
    for (size_t i = offset; i < take; i += 2) up[out++] = buf[i];
  } else {
    EnsureSorted(level + 1);  // no-op except after MergeFrom
    promote_buf_.resize(promoted);
    size_t out = 0;
    for (size_t i = offset; i < take; i += 2) promote_buf_[out++] = buf[i];
    size_t up_size = up.size() + promoted;
    GrowScratch(up_size);
    simd::MergeSorted(up.data(), up.size(), promote_buf_.data(), promoted,
                      merge_buf_.data());
    up.assign(merge_buf_.data(), merge_buf_.data() + up_size);
  }
  sorted_[level + 1] = up.size();
  seg_bounds_[level + 1].clear();
  seg_dirty_[level + 1] = 0;
  // Keep any straggler (index >= take; at most one element).
  buf.erase(buf.begin(), buf.begin() + static_cast<long>(take));
  sorted_[level] = buf.size();
}

double CompactorSummary::EstimateRank(uint64_t x) const {
  double rank = 0;
  double weight = 1;
  for (const auto& buf : levels_) {
    uint64_t below = 0;
    for (uint64_t v : buf) {
      if (v < x) ++below;
    }
    rank += weight * static_cast<double>(below);
    weight *= 2;
  }
  return rank;
}

uint64_t CompactorSummary::WeightTotal() const {
  uint64_t total = 0;
  uint64_t weight = 1;
  for (const auto& buf : levels_) {
    total += weight * buf.size();
    weight *= 2;
  }
  return total;
}

uint64_t CompactorSummary::Quantile(double phi) const {
  // A summary can hold only weight-0 (empty) levels — freshly constructed,
  // Clear()ed/Reset()ed, or merged from such summaries (MergeFrom resizes
  // the level vector even when every source buffer is empty). Items() is
  // then empty (stored weights are >= 1): answer 0 without searching any
  // level.
  auto items = Items();
  if (items.empty()) return 0;
  std::sort(items.begin(), items.end());
  phi = std::clamp(phi, 0.0, 1.0);
  double target = phi * static_cast<double>(WeightTotal());
  double acc = 0;
  for (const auto& [value, weight] : items) {
    acc += static_cast<double>(weight);
    if (acc >= target) return value;
  }
  return items.back().first;
}

void CompactorSummary::MergeFrom(const CompactorSummary& other) {
  m_ += other.m_;
  if (levels_.size() < other.levels_.size()) {
    levels_.resize(other.levels_.size());
    sorted_.resize(levels_.size(), 0);
    seg_bounds_.resize(levels_.size());
    seg_dirty_.resize(levels_.size(), 0);
  }
  for (size_t level = 0; level < other.levels_.size(); ++level) {
    auto& dst = levels_[level];
    const auto& src = other.levels_[level];
    // `other`'s buffer lands on our staging tail; whatever run structure
    // it has, the next consolidation's detection scan re-finds it.
    if (!src.empty()) {
      dst.insert(dst.end(), src.begin(), src.end());
      seg_dirty_[level] = 1;
    }
  }
  for (size_t level = 0; level < levels_.size(); ++level) {
    while (levels_[level].size() >= capacity_) {
      size_t before = levels_[level].size();
      CompactLevel(level);
      if (levels_[level].size() == before) break;  // odd straggler only
    }
  }
}

std::vector<std::pair<uint64_t, uint64_t>> CompactorSummary::Items() const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  size_t total = 0;
  for (const auto& buf : levels_) total += buf.size();
  out.reserve(total);
  uint64_t weight = 1;
  for (const auto& buf : levels_) {
    for (uint64_t v : buf) out.emplace_back(v, weight);
    weight *= 2;
  }
  return out;
}

void CompactorSummary::ExportLevels(
    std::vector<uint64_t>* values,
    std::vector<std::pair<uint64_t, uint32_t>>* segments) {
  values->clear();
  segments->clear();
  size_t total = 0;
  for (const auto& buf : levels_) total += buf.size();
  values->reserve(total);
  size_t used = LevelsUsed();
  for (size_t level = 0; level < used; ++level) {
    if (levels_[level].empty()) continue;
    EnsureSorted(level);
    values->insert(values->end(), levels_[level].begin(),
                   levels_[level].end());
    segments->emplace_back(uint64_t{1} << level,
                           static_cast<uint32_t>(values->size()));
  }
}

size_t CompactorSummary::LevelsUsed() const {
  size_t used = levels_.size();
  while (used > 1 && levels_[used - 1].empty()) --used;
  return used;
}

int CompactorSummary::NumLevels() const {
  return static_cast<int>(LevelsUsed());
}

uint64_t CompactorSummary::SerializedWords() const {
  uint64_t items = 0;
  for (const auto& buf : levels_) items += buf.size();
  return items + LevelsUsed() + 1;
}

uint64_t CompactorSummary::SpaceWords() const {
  uint64_t words = 2;
  size_t used = LevelsUsed();
  for (size_t level = 0; level < used; ++level) {
    words += levels_[level].size() + 1;
  }
  return words;
}

void CompactorSummary::Clear() {
  levels_.clear();
  levels_.emplace_back();
  sorted_.assign(1, 0);
  seg_bounds_.assign(1, {});
  seg_dirty_.assign(1, 0);
  m_ = 0;
}

namespace {

// Merges `num_views` ascending views into *out (cleared first), using
// *tmp as the ping buffer. View counts here are tiny (a ladder window
// holds at most a handful of runs), so sequential merging is fine.
void MergeViewsSimple(const RunView* views, size_t num_views,
                      std::vector<uint64_t>* out, std::vector<uint64_t>* tmp) {
  out->clear();
  for (size_t i = 0; i < num_views; ++i) {
    if (views[i].size == 0) continue;
    if (out->empty()) {
      out->assign(views[i].data, views[i].data + views[i].size);
      continue;
    }
    tmp->resize(out->size() + views[i].size);
    std::merge(out->begin(), out->end(), views[i].data,
               views[i].data + views[i].size, tmp->begin());
    std::swap(*out, *tmp);
  }
}

}  // namespace

uint64_t CompactSortedViewsToWire(
    double eps, uint64_t seed, const RunView* views, size_t num_views,
    size_t total, std::vector<uint64_t>* scratch,
    std::vector<uint64_t>* scratch2, std::vector<uint64_t>* values,
    std::vector<std::pair<uint64_t, uint32_t>>* segments) {
  size_t capacity = CapacityFor(eps);
  size_t before = values->size();
  if (total < capacity) {
    // Sub-capacity window: one weight-1 segment, no compaction coins —
    // exactly the fused sub-threshold export of InsertViewsAndExport on
    // a fresh summary.
    MergeViewsSimple(views, num_views, scratch, scratch2);
    values->insert(values->end(), scratch->begin(), scratch->end());
    if (total > 0) {
      segments->emplace_back(1, static_cast<uint32_t>(values->size()));
    }
    return static_cast<uint64_t>(total) + 2;
  }
  // The virtual cascade of a fresh summary: every upper level is empty,
  // so the descent runs to the first sub-capacity slice, materializing
  // one odd straggler per virtualized level. Same coins, same kept
  // elements as CompactorSummary::CascadeVirtual, with the surviving
  // slice pulled through the accessor's bulk Gather (vectorized
  // merge-path selection for the two-view shape).
  auto run = [&](auto get) -> uint64_t {
    Rng rng(seed);
    uint64_t straggler[64];
    bool has_straggler[64] = {false};
    size_t stride = 1;
    size_t offset = 0;
    size_t level = 0;
    size_t len = total;
    while (len >= capacity) {
      size_t take = len & ~size_t{1};
      bool coin = rng.Bernoulli(0.5);
      if (len > take) {
        straggler[level] = get.At(offset + (len - 1) * stride);
        has_straggler[level] = true;
      }
      if (coin) offset += stride;
      stride *= 2;
      len = take / 2;
      ++level;
    }
    // Emit ascending levels: stragglers below, the surviving slice at
    // the stop level (which never carries a straggler).
    for (size_t l = 0; l < level; ++l) {
      if (!has_straggler[l]) continue;
      values->push_back(straggler[l]);
      segments->emplace_back(uint64_t{1} << l,
                             static_cast<uint32_t>(values->size()));
    }
    size_t out = values->size();
    values->resize(out + len);
    get.Gather(offset, stride, len, values->data() + out);
    segments->emplace_back(uint64_t{1} << level,
                           static_cast<uint32_t>(values->size()));
    // One word per item plus a length header per level in use plus one —
    // SerializedWords() of the equivalent post-ingest summary.
    return static_cast<uint64_t>(values->size() - before) + (level + 1) +
           1;
  };
  if (num_views == 1) return run(DirectGet{views[0].data});
  if (num_views == 2) {
    return run(TwoViewGet{views[0].data, views[0].size, views[1].data,
                          views[1].size});
  }
  MergeViewsSimple(views, num_views, scratch, scratch2);
  return run(DirectGet{scratch->data()});
}

void CompactorSummary::Reset(uint64_t seed) {
  rng_ = Rng(seed);
  m_ = 0;
  // clear() keeps each buffer's heap allocation; trailing (now weight-0)
  // levels are retained and skipped by the accounting helpers.
  for (auto& buf : levels_) buf.clear();
  for (auto& bounds : seg_bounds_) bounds.clear();
  sorted_.assign(levels_.size(), 0);
  seg_dirty_.assign(levels_.size(), 0);
}

}  // namespace summaries
}  // namespace disttrack
