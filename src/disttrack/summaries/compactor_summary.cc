#include "disttrack/summaries/compactor_summary.h"

#include <algorithm>
#include <cmath>

namespace disttrack {
namespace summaries {

namespace {

// Capacity from eps: s >= 2/eps keeps the martingale variance bound
// 4 m^2 / s^2 below (eps m)^2; force even so compactions conserve weight.
size_t CapacityFor(double eps) {
  if (eps <= 0) eps = 1e-9;
  double raw = std::ceil(2.0 / eps);
  auto s = static_cast<size_t>(std::min(raw, 1e9));
  if (s < 2) s = 2;
  if (s % 2 == 1) ++s;
  return s;
}

}  // namespace

CompactorSummary::CompactorSummary(double eps, uint64_t seed)
    : eps_(eps), capacity_(CapacityFor(eps)), rng_(seed) {
  levels_.emplace_back();
}

void CompactorSummary::Insert(uint64_t value) {
  ++m_;
  levels_[0].push_back(value);
  for (size_t level = 0; level < levels_.size(); ++level) {
    if (levels_[level].size() >= capacity_) CompactLevel(level);
  }
}

void CompactorSummary::CompactLevel(size_t level) {
  // Grow the hierarchy first: emplace_back may reallocate `levels_`, so no
  // reference into it may be taken before this point.
  if (levels_.size() <= level + 1) levels_.emplace_back();
  auto& buf = levels_[level];
  // Compact an even prefix so total weight is conserved exactly; an odd
  // straggler stays behind for the next compaction.
  size_t take = buf.size() & ~size_t{1};
  if (take < 2) return;
  std::sort(buf.begin(), buf.begin() + static_cast<long>(take));
  size_t offset = rng_.Bernoulli(0.5) ? 1 : 0;
  auto& up = levels_[level + 1];
  for (size_t i = offset; i < take; i += 2) up.push_back(buf[i]);
  // Keep any straggler (index >= take).
  buf.erase(buf.begin(), buf.begin() + static_cast<long>(take));
}

double CompactorSummary::EstimateRank(uint64_t x) const {
  double rank = 0;
  double weight = 1;
  for (const auto& buf : levels_) {
    uint64_t below = 0;
    for (uint64_t v : buf) {
      if (v < x) ++below;
    }
    rank += weight * static_cast<double>(below);
    weight *= 2;
  }
  return rank;
}

uint64_t CompactorSummary::WeightTotal() const {
  uint64_t total = 0;
  uint64_t weight = 1;
  for (const auto& buf : levels_) {
    total += weight * buf.size();
    weight *= 2;
  }
  return total;
}

uint64_t CompactorSummary::Quantile(double phi) const {
  auto items = Items();
  if (items.empty()) return 0;
  std::sort(items.begin(), items.end());
  phi = std::clamp(phi, 0.0, 1.0);
  double target = phi * static_cast<double>(WeightTotal());
  double acc = 0;
  for (const auto& [value, weight] : items) {
    acc += static_cast<double>(weight);
    if (acc >= target) return value;
  }
  return items.back().first;
}

void CompactorSummary::MergeFrom(const CompactorSummary& other) {
  m_ += other.m_;
  if (levels_.size() < other.levels_.size()) {
    levels_.resize(other.levels_.size());
  }
  for (size_t level = 0; level < other.levels_.size(); ++level) {
    auto& dst = levels_[level];
    const auto& src = other.levels_[level];
    dst.insert(dst.end(), src.begin(), src.end());
  }
  for (size_t level = 0; level < levels_.size(); ++level) {
    while (levels_[level].size() >= capacity_) {
      size_t before = levels_[level].size();
      CompactLevel(level);
      if (levels_[level].size() == before) break;  // odd straggler only
    }
  }
}

std::vector<std::pair<uint64_t, uint64_t>> CompactorSummary::Items() const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  uint64_t weight = 1;
  for (const auto& buf : levels_) {
    for (uint64_t v : buf) out.emplace_back(v, weight);
    weight *= 2;
  }
  return out;
}

uint64_t CompactorSummary::SerializedWords() const {
  uint64_t items = 0;
  for (const auto& buf : levels_) items += buf.size();
  return items + levels_.size() + 1;
}

uint64_t CompactorSummary::SpaceWords() const {
  uint64_t words = 2;
  for (const auto& buf : levels_) words += buf.size() + 1;
  return words;
}

void CompactorSummary::Clear() {
  levels_.clear();
  levels_.emplace_back();
  m_ = 0;
}

}  // namespace summaries
}  // namespace disttrack
