#include "disttrack/summaries/compactor_summary.h"

#include <algorithm>
#include <cmath>

namespace disttrack {
namespace summaries {

namespace {

// Capacity from eps: s >= 2/eps keeps the martingale variance bound
// 4 m^2 / s^2 below (eps m)^2; force even so compactions conserve weight.
size_t CapacityFor(double eps) {
  if (eps <= 0) eps = 1e-9;
  double raw = std::ceil(2.0 / eps);
  auto s = static_cast<size_t>(std::min(raw, 1e9));
  if (s < 2) s = 2;
  if (s % 2 == 1) ++s;
  return s;
}

}  // namespace

CompactorSummary::CompactorSummary(double eps, uint64_t seed)
    : eps_(eps), capacity_(CapacityFor(eps)), rng_(seed) {
  levels_.emplace_back();
  sorted_.push_back(0);
  seg_bounds_.emplace_back();
  seg_dirty_.push_back(0);
}

void CompactorSummary::Insert(uint64_t value) {
  ++m_;
  auto& base = levels_[0];
  size_t old = base.size();
  base.push_back(value);  // staging tail; consolidated lazily
  NoteAscendingAppend(0, old);
  if (base.size() >= capacity_) Cascade();
}

void CompactorSummary::InsertBatch(const uint64_t* values, size_t count) {
  if (count == 0) return;
  m_ += count;
  auto& base = levels_[0];
  size_t old = base.size();
  base.insert(base.end(), values, values + count);
  if (count == 1) {
    NoteAscendingAppend(0, old);
  } else {
    seg_dirty_[0] = 1;  // unordered contract; consolidation re-scans
  }
  if (base.size() >= capacity_) Cascade();
}

void CompactorSummary::InsertSortedBatch(const uint64_t* values,
                                         size_t count) {
  if (count == 0) return;
  m_ += count;
  auto& base = levels_[0];
  size_t old = base.size();
  base.insert(base.end(), values, values + count);
  NoteAscendingAppend(0, old);
  if (base.size() >= capacity_) Cascade();
}

void CompactorSummary::Cascade() {
  // One pass: CompactLevel consumes the whole even prefix of a buffer, so
  // a single compaction per level suffices however far past capacity the
  // staged runs (or the promotions from below) pushed it.
  for (size_t level = 0; level < levels_.size(); ++level) {
    if (levels_[level].size() >= capacity_) CompactLevel(level);
  }
}

void CompactorSummary::NoteAscendingAppend(size_t level, size_t old_size) {
  // Appending at the tail start, or continuing ascending order, extends
  // the previous segment; otherwise a new segment starts at old_size.
  auto& buf = levels_[level];
  if (old_size > sorted_[level] && buf[old_size - 1] > buf[old_size]) {
    seg_bounds_[level].push_back(old_size);
  }
}

void CompactorSummary::EnsureSorted(size_t level) {
  auto& buf = levels_[level];
  if (sorted_[level] < buf.size()) {
    SortTail(&buf, sorted_[level],
             seg_dirty_[level] ? nullptr : &seg_bounds_[level]);
    MergeSortedTail(&buf, sorted_[level]);
    sorted_[level] = buf.size();
  }
  seg_bounds_[level].clear();
  seg_dirty_[level] = 0;
}

void CompactorSummary::SortTail(std::vector<uint64_t>* buf, size_t from,
                                const std::vector<size_t>* interior_bounds) {
  size_t len = buf->size() - from;
  uint64_t* tail = buf->data() + from;
  auto& bounds = run_bounds_;
  bounds.clear();
  bounds.push_back(0);
  if (interior_bounds != nullptr) {
    // Boundaries were tracked at append time; no detection scan needed.
    for (size_t b : *interior_bounds) bounds.push_back(b - from);
  } else {
    if (len < 8) {
      // Below run-merge overhead; note even here the tail is usually a
      // couple of sorted runs, which insertion sort handles in ~len moves.
      std::sort(tail, tail + len);
      return;
    }
    // Collect the tail's ascending-run boundaries (relative to the tail).
    for (size_t i = 1; i < len; ++i) {
      if (tail[i] < tail[i - 1]) bounds.push_back(i);
    }
  }
  bounds.push_back(len);
  if (bounds.size() == 2) return;  // single ascending run already
  // Merge adjacent runs pairwise until one remains, ping-ponging between
  // the tail and the scratch buffer — one move per element per pass, and
  // only ~log2(#runs) passes since the staged batch runs arrive sorted.
  if (merge_buf_.size() < len) merge_buf_.resize(len);
  uint64_t* src = tail;
  uint64_t* dst = merge_buf_.data();
  while (bounds.size() > 2) {
    size_t out = 0;
    size_t r = 0;
    for (; r + 2 < bounds.size(); r += 2) {
      size_t lo = bounds[r], mid = bounds[r + 1], hi = bounds[r + 2];
      std::merge(src + lo, src + mid, src + mid, src + hi, dst + lo);
      bounds[++out] = hi;  // overwrite in place: bounds[0] stays 0
    }
    if (r + 1 < bounds.size()) {
      // Odd run out: carry it to the destination buffer unmerged.
      size_t lo = bounds[r], hi = bounds[r + 1];
      std::copy(src + lo, src + hi, dst + lo);
      bounds[++out] = hi;
    }
    bounds.resize(out + 1);
    std::swap(src, dst);
  }
  if (src != tail) std::copy(src, src + len, tail);
}

void CompactorSummary::MergeSortedTail(std::vector<uint64_t>* buf,
                                       size_t mid) {
  if (mid == 0 || mid == buf->size()) return;
  uint64_t* data = buf->data();
  if (data[mid - 1] <= data[mid]) return;  // already in order
  if (mid <= 2) {
    // Tiny prefix — usually the post-compaction straggler: binary-insert
    // each element (one memmove, no comparison pass over the tail).
    for (size_t i = mid; i-- > 0;) {
      uint64_t v = data[i];
      uint64_t* pos = std::upper_bound(data + i + 1, data + buf->size(), v);
      std::move(data + i + 1, pos, data + i);
      *(pos - 1) = v;
    }
    return;
  }
  merge_buf_.resize(buf->size());
  std::merge(buf->begin(), buf->begin() + static_cast<long>(mid),
             buf->begin() + static_cast<long>(mid), buf->end(),
             merge_buf_.begin());
  buf->swap(merge_buf_);
}

void CompactorSummary::CompactLevel(size_t level) {
  // Grow the hierarchy first: emplace_back may reallocate `levels_`, so no
  // reference into it may be taken before this point.
  if (levels_.size() <= level + 1) {
    levels_.emplace_back();
    sorted_.push_back(0);
    seg_bounds_.emplace_back();
    seg_dirty_.push_back(0);
  }
  EnsureSorted(level);
  auto& buf = levels_[level];
  // Compact an even prefix so total weight is conserved exactly; an odd
  // straggler stays behind for the next compaction. The buffer was just
  // consolidated, so promotion is a stride-2 pass whose output is itself
  // sorted — it lands on the next level's staging tail as one more run,
  // merged only when that level consolidates. Each element is fully
  // sorted exactly once per level it passes through.
  size_t take = buf.size() & ~size_t{1};
  if (take < 2) return;
  size_t offset = rng_.Bernoulli(0.5) ? 1 : 0;
  auto& up = levels_[level + 1];
  size_t up_old = up.size();
  for (size_t i = offset; i < take; i += 2) up.push_back(buf[i]);
  NoteAscendingAppend(level + 1, up_old);
  // Keep any straggler (index >= take; at most one element).
  buf.erase(buf.begin(), buf.begin() + static_cast<long>(take));
  sorted_[level] = buf.size();
}

double CompactorSummary::EstimateRank(uint64_t x) const {
  double rank = 0;
  double weight = 1;
  for (const auto& buf : levels_) {
    uint64_t below = 0;
    for (uint64_t v : buf) {
      if (v < x) ++below;
    }
    rank += weight * static_cast<double>(below);
    weight *= 2;
  }
  return rank;
}

uint64_t CompactorSummary::WeightTotal() const {
  uint64_t total = 0;
  uint64_t weight = 1;
  for (const auto& buf : levels_) {
    total += weight * buf.size();
    weight *= 2;
  }
  return total;
}

uint64_t CompactorSummary::Quantile(double phi) const {
  // A summary can hold only weight-0 (empty) levels — freshly constructed,
  // Clear()ed/Reset()ed, or merged from such summaries (MergeFrom resizes
  // the level vector even when every source buffer is empty). Items() is
  // then empty (stored weights are >= 1): answer 0 without searching any
  // level.
  auto items = Items();
  if (items.empty()) return 0;
  std::sort(items.begin(), items.end());
  phi = std::clamp(phi, 0.0, 1.0);
  double target = phi * static_cast<double>(WeightTotal());
  double acc = 0;
  for (const auto& [value, weight] : items) {
    acc += static_cast<double>(weight);
    if (acc >= target) return value;
  }
  return items.back().first;
}

void CompactorSummary::MergeFrom(const CompactorSummary& other) {
  m_ += other.m_;
  if (levels_.size() < other.levels_.size()) {
    levels_.resize(other.levels_.size());
    sorted_.resize(levels_.size(), 0);
    seg_bounds_.resize(levels_.size());
    seg_dirty_.resize(levels_.size(), 0);
  }
  for (size_t level = 0; level < other.levels_.size(); ++level) {
    auto& dst = levels_[level];
    const auto& src = other.levels_[level];
    // `other`'s buffer lands on our staging tail; whatever run structure
    // it has, the next consolidation's detection scan re-finds it.
    if (!src.empty()) {
      dst.insert(dst.end(), src.begin(), src.end());
      seg_dirty_[level] = 1;
    }
  }
  for (size_t level = 0; level < levels_.size(); ++level) {
    while (levels_[level].size() >= capacity_) {
      size_t before = levels_[level].size();
      CompactLevel(level);
      if (levels_[level].size() == before) break;  // odd straggler only
    }
  }
}

std::vector<std::pair<uint64_t, uint64_t>> CompactorSummary::Items() const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  size_t total = 0;
  for (const auto& buf : levels_) total += buf.size();
  out.reserve(total);
  uint64_t weight = 1;
  for (const auto& buf : levels_) {
    for (uint64_t v : buf) out.emplace_back(v, weight);
    weight *= 2;
  }
  return out;
}

void CompactorSummary::ExportLevels(
    std::vector<uint64_t>* values,
    std::vector<std::pair<uint64_t, uint32_t>>* segments) {
  values->clear();
  segments->clear();
  size_t total = 0;
  for (const auto& buf : levels_) total += buf.size();
  values->reserve(total);
  size_t used = LevelsUsed();
  for (size_t level = 0; level < used; ++level) {
    if (levels_[level].empty()) continue;
    EnsureSorted(level);
    values->insert(values->end(), levels_[level].begin(),
                   levels_[level].end());
    segments->emplace_back(uint64_t{1} << level,
                           static_cast<uint32_t>(values->size()));
  }
}

size_t CompactorSummary::LevelsUsed() const {
  size_t used = levels_.size();
  while (used > 1 && levels_[used - 1].empty()) --used;
  return used;
}

int CompactorSummary::NumLevels() const {
  return static_cast<int>(LevelsUsed());
}

uint64_t CompactorSummary::SerializedWords() const {
  uint64_t items = 0;
  for (const auto& buf : levels_) items += buf.size();
  return items + LevelsUsed() + 1;
}

uint64_t CompactorSummary::SpaceWords() const {
  uint64_t words = 2;
  size_t used = LevelsUsed();
  for (size_t level = 0; level < used; ++level) {
    words += levels_[level].size() + 1;
  }
  return words;
}

void CompactorSummary::Clear() {
  levels_.clear();
  levels_.emplace_back();
  sorted_.assign(1, 0);
  seg_bounds_.assign(1, {});
  seg_dirty_.assign(1, 0);
  m_ = 0;
}

void CompactorSummary::Reset(uint64_t seed) {
  rng_ = Rng(seed);
  m_ = 0;
  // clear() keeps each buffer's heap allocation; trailing (now weight-0)
  // levels are retained and skipped by the accounting helpers.
  for (auto& buf : levels_) buf.clear();
  for (auto& bounds : seg_bounds_) bounds.clear();
  sorted_.assign(levels_.size(), 0);
  seg_dirty_.assign(levels_.size(), 0);
}

}  // namespace summaries
}  // namespace disttrack
