// Randomized mergeable rank summary — the paper's "algorithm A" (§4).
//
// The rank-tracking protocol uses A as a black box with three properties
// (from [24], improved by [1] "Mergeable summaries", which the paper cites
// as the current best A):
//   1. unbiased:    E[EstimateRank(x)] equals the true rank of x;
//   2. low variance: Var[EstimateRank(x)] <= (eps * m)^2 on a stream of m;
//   3. small space:  O(1/eps * log(eps * m)) words.
//
// We implement A as a random-offset compactor hierarchy, the primitive
// behind [1]'s randomized quantile summary: buffers of capacity s per
// level; a full buffer is sorted and every other element (random even/odd
// offset) is promoted with doubled weight. Each compaction perturbs any
// fixed rank query by a mean-zero +-2^level, so errors form a martingale:
// variances add, giving Var <= 4 m^2 / s^2; s = ceil(2/eps) meets (2).
//
// DESIGN.md documents this as the one substitution in the reproduction:
// the paper quotes space O(1/eps * log^1.5(1/eps)) for A; the compactor
// gives O(1/eps * log(eps*m)), identical in all experiments' regimes.
//
// DESIGN — why batched compaction preserves the martingale argument.
// InsertBatch appends a whole run to the level-0 buffer and only then
// compacts, so a buffer can be far beyond its capacity s when its single
// compaction runs. That changes *when* compactions happen and *how many
// elements* each consumes — but not the error analysis: one compaction of
// any even number of weight-2^l elements (sort, promote every other
// element from a uniformly random even/odd offset with doubled weight)
// perturbs any fixed rank query by exactly 0 (rank below the buffer even)
// or +-2^l with probability 1/2 each (rank odd). The perturbation is
// mean-zero and bounded by 2^l *regardless of the buffer's size*, so the
// error process stays a martingale with per-step increments +-2^l; the
// variance bound Var <= sum_l 4^l * (#compactions at level l) only
// *improves*, because batching strictly reduces the number of compactions
// at every level (each level-l compaction still needs >= s/2 promotions
// to trigger the next one up, while consuming more than s elements).
// Scalar Insert and InsertBatch therefore satisfy the same unbiasedness
// and (eps*m)^2-variance guarantees — pinned distributionally by
// tests/batch_equivalence_test.cc and tests/stat_acceptance_test.cc.

#ifndef DISTTRACK_SUMMARIES_COMPACTOR_SUMMARY_H_
#define DISTTRACK_SUMMARIES_COMPACTOR_SUMMARY_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "disttrack/common/random.h"
#include "disttrack/summaries/run_ladder.h"

namespace disttrack {
namespace summaries {

/// Unbiased eps-variance rank summary over uint64 values.
class CompactorSummary {
 public:
  /// `eps` > 0 (values >= 1 are allowed and give a trivially small summary);
  /// the standard-deviation guarantee is eps * m for a stream of length m.
  CompactorSummary(double eps, uint64_t seed);

  /// Inserts one value; amortized O(log) with occasional O(s log s) sorts.
  void Insert(uint64_t value);

  /// Inserts `count` values in one step: appends the run to the level-0
  /// buffer with a single capacity check, then compacts each over-full
  /// level once (in-place sort + one promotion pass — CompactLevel always
  /// consumes the whole even prefix, so one pass per level suffices no
  /// matter how far past capacity the run pushed it). Identical guarantees
  /// to per-element Insert (see the DESIGN note above); fewer, larger
  /// compactions, so strictly less variance and far less per-element work.
  void InsertBatch(const uint64_t* values, size_t count);

  /// InsertBatch for a run already sorted ascending. This is the rank
  /// tracker's fast path: algorithm C feeds the same run to every level of
  /// its node tree, so the caller sorts once and every summary stages the
  /// run as a single pre-sorted segment — consolidation (EnsureSorted)
  /// then merges whole runs instead of comparison-sorting elements.
  void InsertSortedBatch(const uint64_t* values, size_t count);

  /// Borrowed-view InsertSortedBatch: inserts `total` values given as
  /// `num_views` ascending segments of shared storage (a RunLadder pull)
  /// that stay valid only for the duration of this call. The views are
  /// merged with the level-0 residue straight into the consolidated
  /// buffer — no staging copy, no re-merge — whether or not the
  /// compaction threshold is reached (a sub-threshold flush tail is then
  /// already consolidated when ExportLevels reads it); a single
  /// over-threshold view on a bare residue compacts without even that
  /// merge, via the virtual cascade. Produces the same level-0 sorted
  /// multiset at the same compaction points as staging the identical
  /// data, so the summary stream is bit-identical either way.
  void InsertSortedViews(const RunView* views, size_t num_views,
                         size_t total);

  /// InsertSortedViews immediately followed by an ExportLevels, fused for
  /// the rank tracker's flush path (a completing node drains its ladder
  /// window and ships at once). Two copies disappear: a sub-threshold
  /// final window is merged with the level-0 residue straight into the
  /// export array (never materialized in the summary), and an
  /// over-threshold window goes through the usual zero-copy virtual
  /// cascade before the plain export. Returns the serialized word count
  /// of the post-ingest summary (identical to SerializedWords() after a
  /// separate InsertSortedViews). The fused path can leave level 0
  /// unmaterialized, so the summary MUST be Reset() or destroyed after
  /// this call — exactly what the flush path's node pooling does.
  uint64_t InsertViewsAndExport(
      const RunView* views, size_t num_views, size_t total,
      std::vector<uint64_t>* values,
      std::vector<std::pair<uint64_t, uint32_t>>* segments);

  /// Unbiased estimate of |{y in stream : y < x}|; monotone in x.
  double EstimateRank(uint64_t x) const;

  /// Unbiased estimate of the stream length represented by the summary
  /// (exact by construction: compactions conserve total weight).
  uint64_t WeightTotal() const;

  /// Value whose estimated rank is closest to phi * m (by binary search on
  /// the stored items). Returns 0 on an empty summary.
  uint64_t Quantile(double phi) const;

  /// Folds `other` into this summary level by level (the mergeable-summary
  /// operation of [1]); both must use the same capacity for the guarantee
  /// to compose. `other` is left unchanged.
  void MergeFrom(const CompactorSummary& other);

  /// All stored (value, weight) pairs — what a site ships to the
  /// coordinator when a node of algorithm C becomes full (§4).
  std::vector<std::pair<uint64_t, uint64_t>> Items() const;

  /// Copies the summary's content as one flat ascending-per-segment value
  /// array plus (weight, end offset) segment descriptors, skipping empty
  /// levels — the wire format a site ships and the coordinator's
  /// per-segment binary-search lookup format. No comparison sort of the
  /// full item set: each level is consolidated (staged runs merged) and
  /// then copied out. Non-const only because of that consolidation.
  void ExportLevels(std::vector<uint64_t>* values,
                    std::vector<std::pair<uint64_t, uint32_t>>* segments);

  /// Words transmitted when the summary is sent: one word per stored item
  /// value plus one per-level length header.
  uint64_t SerializedWords() const;

  uint64_t m() const { return m_; }
  double eps() const { return eps_; }
  size_t buffer_capacity() const { return capacity_; }
  /// Current level-0 buffer fill (compacted straggler plus staged runs);
  /// the rank tracker's ladder pump compares it against buffer_capacity()
  /// to decide when a level is due for a pull.
  size_t level0_size() const { return levels_[0].size(); }
  /// Levels in use (through the highest nonempty buffer; >= 1). Reset()
  /// retains emptied levels for reuse, so this is not the raw buffer
  /// count.
  int NumLevels() const;
  uint64_t SpaceWords() const;

  void Clear();

  /// Clear() plus a reseed, retaining every buffer's allocated capacity.
  /// The rank tracker pools summaries across short-lived tree nodes, so a
  /// reused node costs zero allocations instead of one per level buffer.
  /// Emptied levels are retained (weight 0); the accounting helpers skip
  /// trailing empties.
  void Reset(uint64_t seed);

 private:
  // Staging invariant: every level buffer is a sorted prefix
  // [0, sorted_[l]) followed by a staging tail of appended sorted runs
  // (batch runs arrive pre-sorted; per-element Insert appends singletons;
  // promotions append the stride-2 output of a sorted buffer, itself
  // sorted). Run boundaries are tracked as they are appended
  // (seg_bounds_), except after an InsertBatch of unordered data, which
  // marks the level dirty and falls back to a detection scan. Nothing is
  // merged eagerly: EnsureSorted consolidates a level only when a
  // compaction or an export needs it, merging the tail's runs pairwise —
  // ~log2(#runs) passes where a comparison sort would do log2(n), and
  // each element is fully sorted exactly once per level.
  void EnsureSorted(size_t level);
  // Merges the consolidated level-0 buffer with `num_views` borrowed
  // ascending segments into one sorted level-0 buffer (single pass, via
  // merge_buf_). Callers consolidated level 0 first.
  void MergeViewsIntoBase(const RunView* views, size_t num_views,
                          size_t total);
  // Merges the gathered view_merge_srcs_ (ascending sources totalling
  // out_size elements) and returns the merged sequence — a source
  // pointer when only one is nonempty, merge scratch otherwise. Shared
  // by MergeViewsIntoBase and the fused flush export.
  const uint64_t* MergeGatheredSrcs(size_t out_size);
  // Grows merge_buf_ geometrically to at least `need` elements. The
  // scratch is write-before-read and never shrinks, so growth (and its
  // value-initialization pass) is amortized away instead of being paid on
  // every merge the way an exact resize or a buffer swap would pay it.
  void GrowScratch(size_t need) {
    if (merge_buf_.size() < need) {
      merge_buf_.resize(std::max(need, merge_buf_.size() * 2));
    }
  }
  void CompactLevel(size_t level);
  // Compacts every over-capacity level bottom-up, one pass.
  void Cascade();
  // Cascade for a fully consolidated over-capacity level-0 buffer (the
  // state every ladder pull produces): composes the stride-2 promotions
  // through empty upper levels into direct strided gathers, materializing
  // only stragglers and the first surviving slice — same coins, same
  // kept elements, so bit-identical to the real cascade at a fraction of
  // the moves.
  void CascadeSortedBase();
  // Accessor-based core of CascadeSortedBase, shared with the zero-copy
  // borrowed-view ingest (see the definition for the full argument).
  // Returns true when the caller must finish with the ordinary Cascade().
  template <class GetFn>
  bool CascadeVirtual(GetFn get, size_t len);
  // Re-derives level 0 from straggler_scratch_ after a CascadeVirtual and
  // finishes with the ordinary cascade when one was signalled.
  void FinishVirtualCascade(bool continue_normal);
  // True when ingesting a fully sorted logical sequence of `len` elements
  // into level 0 would descend the virtual cascade far enough that
  // random-access gathers (survivors + stragglers) beat a merge copy of
  // the whole sequence — the gate of the two-view zero-copy ingest, where
  // each access costs a binary-search merge-path selection.
  bool VirtualCascadeProfitable(size_t len) const;
  // True when ingesting `len` sorted level-0 elements would cascade all
  // the way to an empty level — i.e. CascadeVirtual would never merge
  // through the shared scratch buffers. Gates the pre-merged zero-copy
  // ingest, whose source may live in that scratch.
  bool CascadeStaysVirtual(size_t len) const;
  // Records the boundary of a tail append of `count` ascending values
  // starting at offset `old_size` of level `l` (extends the previous
  // segment when the order allows).
  void NoteAscendingAppend(size_t level, size_t old_size);
  // Merges buf's sorted halves [0, mid) and [mid, end) without the
  // per-call temporary-buffer allocation of std::inplace_merge (the
  // scratch vector is reused across calls and levels).
  void MergeSortedTail(std::vector<uint64_t>* buf, size_t mid);
  // Sorts buf's tail [from, end) by merging its ascending runs pairwise
  // with ping-pong passes through the scratch. `bounds` holds the run
  // starts in (from, end), exclusive; pass nullptr to detect them.
  void SortTail(std::vector<uint64_t>* buf, size_t from,
                const std::vector<size_t>* interior_bounds);
  size_t LevelsUsed() const;        // through the last nonempty, >= 1

  double eps_;
  size_t capacity_;  // per-level buffer capacity s (even, >= 2)
  Rng rng_;
  uint64_t m_ = 0;  // total stream length inserted (not counting merges)
  std::vector<std::vector<uint64_t>> levels_;  // levels_[i]: weight 2^i each
  std::vector<size_t> sorted_;  // per-level sorted prefix length
  // Per-level staged-segment starts (interior to the tail) and a dirty
  // flag set when unordered data was appended (bounds then unusable).
  std::vector<std::vector<size_t>> seg_bounds_;
  std::vector<uint8_t> seg_dirty_;
  std::vector<uint64_t> merge_buf_;  // MergeSortedTail / SortTail scratch
  std::vector<uint64_t> promote_buf_;  // CompactLevel promotion scratch
  std::vector<size_t> run_bounds_;   // SortTail run-boundary scratch
  // MergeViewsIntoBase scratch: gathered (pointer, length) sources and
  // the second ping-pong buffer for 3+-way merges.
  std::vector<std::pair<const uint64_t*, size_t>> view_merge_srcs_;
  std::vector<uint64_t> view_merge_buf_;
  // CascadeSortedBase scratch: (virtual level, value) odd stragglers.
  std::vector<std::pair<size_t, uint64_t>> straggler_scratch_;
};

/// Node-less leaf compaction — the rank tracker's level-0 flush path. A
/// leaf node's whole life under the batched shared-ladder feed is
/// "ingest one window, cascade once, export once, reset": this routine
/// performs exactly that without ever materializing the CompactorSummary
/// object. It cascades a fully sorted window (given as 1..n borrowed
/// ascending views totalling `total` elements; `scratch` and `scratch2`
/// merge multi-view windows) with per-level capacity derived from `eps`
/// straight into the wire format, drawing from a generator seeded with
/// `seed` exactly the per-level coins a fresh CompactorSummary ingesting
/// the same window would draw — so the shipped summary, its serialized
/// word count (the return value), and the site RNG stream are
/// bit-identical to the node-based flush it replaces. APPENDS to
/// *values / *segments (segment ends are absolute offsets into *values),
/// so one arena can accumulate many leaf summaries; callers wanting a
/// lone summary clear both first.
uint64_t CompactSortedViewsToWire(
    double eps, uint64_t seed, const RunView* views, size_t num_views,
    size_t total, std::vector<uint64_t>* scratch,
    std::vector<uint64_t>* scratch2, std::vector<uint64_t>* values,
    std::vector<std::pair<uint64_t, uint32_t>>* segments);

}  // namespace summaries
}  // namespace disttrack

#endif  // DISTTRACK_SUMMARIES_COMPACTOR_SUMMARY_H_
