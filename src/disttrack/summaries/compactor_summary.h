// Randomized mergeable rank summary — the paper's "algorithm A" (§4).
//
// The rank-tracking protocol uses A as a black box with three properties
// (from [24], improved by [1] "Mergeable summaries", which the paper cites
// as the current best A):
//   1. unbiased:    E[EstimateRank(x)] equals the true rank of x;
//   2. low variance: Var[EstimateRank(x)] <= (eps * m)^2 on a stream of m;
//   3. small space:  O(1/eps * log(eps * m)) words.
//
// We implement A as a random-offset compactor hierarchy, the primitive
// behind [1]'s randomized quantile summary: buffers of capacity s per
// level; a full buffer is sorted and every other element (random even/odd
// offset) is promoted with doubled weight. Each compaction perturbs any
// fixed rank query by a mean-zero +-2^level, so errors form a martingale:
// variances add, giving Var <= 4 m^2 / s^2; s = ceil(2/eps) meets (2).
//
// DESIGN.md documents this as the one substitution in the reproduction:
// the paper quotes space O(1/eps * log^1.5(1/eps)) for A; the compactor
// gives O(1/eps * log(eps*m)), identical in all experiments' regimes.

#ifndef DISTTRACK_SUMMARIES_COMPACTOR_SUMMARY_H_
#define DISTTRACK_SUMMARIES_COMPACTOR_SUMMARY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "disttrack/common/random.h"

namespace disttrack {
namespace summaries {

/// Unbiased eps-variance rank summary over uint64 values.
class CompactorSummary {
 public:
  /// `eps` > 0 (values >= 1 are allowed and give a trivially small summary);
  /// the standard-deviation guarantee is eps * m for a stream of length m.
  CompactorSummary(double eps, uint64_t seed);

  /// Inserts one value; amortized O(log) with occasional O(s log s) sorts.
  void Insert(uint64_t value);

  /// Unbiased estimate of |{y in stream : y < x}|; monotone in x.
  double EstimateRank(uint64_t x) const;

  /// Unbiased estimate of the stream length represented by the summary
  /// (exact by construction: compactions conserve total weight).
  uint64_t WeightTotal() const;

  /// Value whose estimated rank is closest to phi * m (by binary search on
  /// the stored items). Returns 0 on an empty summary.
  uint64_t Quantile(double phi) const;

  /// Folds `other` into this summary level by level (the mergeable-summary
  /// operation of [1]); both must use the same capacity for the guarantee
  /// to compose. `other` is left unchanged.
  void MergeFrom(const CompactorSummary& other);

  /// All stored (value, weight) pairs — what a site ships to the
  /// coordinator when a node of algorithm C becomes full (§4).
  std::vector<std::pair<uint64_t, uint64_t>> Items() const;

  /// Words transmitted when the summary is sent: one word per stored item
  /// value plus one per-level length header.
  uint64_t SerializedWords() const;

  uint64_t m() const { return m_; }
  double eps() const { return eps_; }
  size_t buffer_capacity() const { return capacity_; }
  int NumLevels() const { return static_cast<int>(levels_.size()); }
  uint64_t SpaceWords() const;

  void Clear();

 private:
  void CompactLevel(size_t level);

  double eps_;
  size_t capacity_;  // per-level buffer capacity s (even, >= 2)
  Rng rng_;
  uint64_t m_ = 0;  // total stream length inserted (not counting merges)
  std::vector<std::vector<uint64_t>> levels_;  // levels_[i]: weight 2^i each
};

}  // namespace summaries
}  // namespace disttrack

#endif  // DISTTRACK_SUMMARIES_COMPACTOR_SUMMARY_H_
