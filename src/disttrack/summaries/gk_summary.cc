#include "disttrack/summaries/gk_summary.h"

#include <algorithm>
#include <cmath>

namespace disttrack {
namespace summaries {

GKSummary::GKSummary(double eps) : eps_(std::clamp(eps, 1e-9, 0.5)) {}

void GKSummary::Insert(uint64_t value) {
  ++n_;
  // Locate the first tuple with tuple.value >= value.
  auto it = std::lower_bound(
      tuples_.begin(), tuples_.end(), value,
      [](const Tuple& t, uint64_t v) { return t.value < v; });
  uint64_t delta;
  if (it == tuples_.begin() || it == tuples_.end()) {
    delta = 0;  // new minimum or maximum: rank known exactly
  } else {
    double band = 2.0 * eps_ * static_cast<double>(n_);
    delta = band < 1.0 ? 0 : static_cast<uint64_t>(band) - 1;
  }
  tuples_.insert(it, Tuple{value, 1, delta});
  if (++inserts_since_compress_ >=
      static_cast<uint64_t>(1.0 / (2.0 * eps_)) + 1) {
    Compress();
    inserts_since_compress_ = 0;
  }
}

void GKSummary::Compress() {
  if (tuples_.size() < 3) return;
  double threshold = 2.0 * eps_ * static_cast<double>(n_);
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size());
  merged.push_back(tuples_[0]);
  // Never merge into the last tuple (keep the max exact); walk left to
  // right, folding tuple i into its successor when the capacity allows.
  for (size_t i = 1; i + 1 < tuples_.size(); ++i) {
    Tuple& prev = merged.back();
    const Tuple& cur = tuples_[i];
    // Fold prev into cur if combined uncertainty fits the band, and prev is
    // not the first tuple (keep the min exact).
    if (merged.size() > 1 &&
        static_cast<double>(prev.g + cur.g + cur.delta) <= threshold) {
      Tuple folded = cur;
      folded.g += prev.g;
      merged.back() = folded;
    } else {
      merged.push_back(cur);
    }
  }
  merged.push_back(tuples_.back());
  tuples_ = std::move(merged);
}

uint64_t GKSummary::EstimateRank(uint64_t x) const {
  // Accumulate rmin over tuples with value < x. At the first tuple with
  // value >= x, the true rank of x lies in [rmin, rmin + g + delta - 1];
  // answer the midpoint, whose error is bounded by (g + delta)/2 <= eps*n
  // by the compression invariant.
  uint64_t rmin = 0;
  for (const Tuple& t : tuples_) {
    if (t.value < x) {
      rmin += t.g;
    } else {
      uint64_t upper = rmin + t.g + t.delta;
      uint64_t hi = upper > 0 ? upper - 1 : 0;
      uint64_t mid = (rmin + hi) / 2;
      return std::min<uint64_t>(std::max(mid, rmin), n_);
    }
  }
  return n_;  // x exceeds every summarized value
}

uint64_t GKSummary::Quantile(double phi) const {
  if (tuples_.empty()) return 0;
  phi = std::clamp(phi, 0.0, 1.0);
  double target = phi * static_cast<double>(n_);
  double allowed = eps_ * static_cast<double>(n_);
  // Return the first tuple whose whole rank interval reaches the target's
  // tolerance window; the GK invariant guarantees one exists.
  uint64_t rmin = 0;
  for (const Tuple& t : tuples_) {
    rmin += t.g;
    double rmax = static_cast<double>(rmin + t.delta);
    if (rmax + allowed >= target) return t.value;
  }
  return tuples_.back().value;
}

void GKSummary::Clear() {
  tuples_.clear();
  n_ = 0;
  inserts_since_compress_ = 0;
}

}  // namespace summaries
}  // namespace disttrack
