// Greenwald–Khanna quantile summary [12] — the best deterministic streaming
// rank/quantile structure (§1.3). Used as the per-site substrate of
// deterministic rank baselines and as the reference oracle in tests.
//
// This is the standard simplified-compress variant: tuples (v, g, Δ) kept
// sorted by value; adjacent tuples merge whenever g_i + g_{i+1} + Δ_{i+1}
// <= 2εn. It preserves the εn error guarantee of the banded original with
// a slightly larger constant in space.

#ifndef DISTTRACK_SUMMARIES_GK_SUMMARY_H_
#define DISTTRACK_SUMMARIES_GK_SUMMARY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace disttrack {
namespace summaries {

/// Deterministic ε-approximate rank summary over uint64 values.
class GKSummary {
 public:
  /// `eps` in (0, 1): every rank answer is within eps * n of truth.
  explicit GKSummary(double eps);

  /// Inserts one value. Amortized O(log(1/eps) + log n) via periodic
  /// compression.
  void Insert(uint64_t value);

  /// Estimate of |{y : y < x}|, within eps*n of the true rank.
  uint64_t EstimateRank(uint64_t x) const;

  /// An element whose rank is within eps*n of floor(phi*n), phi in [0,1].
  /// Returns 0 on an empty summary.
  uint64_t Quantile(double phi) const;

  uint64_t n() const { return n_; }
  double eps() const { return eps_; }
  size_t NumTuples() const { return tuples_.size(); }
  uint64_t SpaceWords() const { return 3 * tuples_.size() + 2; }

  void Clear();

 private:
  struct Tuple {
    uint64_t value;  // sample value
    uint64_t g;      // rmin(this) - rmin(prev)
    uint64_t delta;  // rmax(this) - rmin(this)
  };

  void Compress();

  double eps_;
  uint64_t n_ = 0;
  uint64_t inserts_since_compress_ = 0;
  std::vector<Tuple> tuples_;  // sorted by value
};

}  // namespace summaries
}  // namespace disttrack

#endif  // DISTTRACK_SUMMARIES_GK_SUMMARY_H_
