#include "disttrack/summaries/misra_gries.h"

#include <algorithm>

#include "disttrack/common/ordered_drain.h"

namespace disttrack {
namespace summaries {

MisraGries::MisraGries(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  counters_.reserve(capacity_ + 1);
}

void MisraGries::Insert(uint64_t item) {
  ++n_;
  auto it = counters_.find(item);
  if (it != counters_.end()) {
    ++it->second;
    return;
  }
  if (counters_.size() < capacity_) {
    counters_.emplace(item, 1);
    return;
  }
  // Sketch full and item untracked: decrement every counter (the arriving
  // item's implicit counter of 1 is cancelled together with them).
  ++decrement_events_;
  // disttrack-lint: allow(unordered-iter) -- proof of harmlessness: every
  // counter is decremented exactly once and entries reaching zero are
  // erased; the post-sweep map state is the same set->set function for any
  // visit order, and nothing (meter, report, export) observes the order.
  for (auto iter = counters_.begin(); iter != counters_.end();) {
    if (--iter->second == 0) {
      iter = counters_.erase(iter);
    } else {
      ++iter;
    }
  }
}

uint64_t MisraGries::Estimate(uint64_t item) const {
  auto it = counters_.find(item);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<std::pair<uint64_t, uint64_t>> MisraGries::Items() const {
  // Item-id order, not hash order: DeterministicFrequencyTracker folds
  // this export into its report sweeps, so the order must be stable.
  return common::SortedItems(counters_);
}

void MisraGries::Clear() {
  counters_.clear();
  n_ = 0;
  decrement_events_ = 0;
}

}  // namespace summaries
}  // namespace disttrack
