#include "disttrack/summaries/misra_gries.h"

#include <algorithm>

namespace disttrack {
namespace summaries {

MisraGries::MisraGries(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  counters_.reserve(capacity_ + 1);
}

void MisraGries::Insert(uint64_t item) {
  ++n_;
  auto it = counters_.find(item);
  if (it != counters_.end()) {
    ++it->second;
    return;
  }
  if (counters_.size() < capacity_) {
    counters_.emplace(item, 1);
    return;
  }
  // Sketch full and item untracked: decrement every counter (the arriving
  // item's implicit counter of 1 is cancelled together with them).
  ++decrement_events_;
  for (auto iter = counters_.begin(); iter != counters_.end();) {
    if (--iter->second == 0) {
      iter = counters_.erase(iter);
    } else {
      ++iter;
    }
  }
}

uint64_t MisraGries::Estimate(uint64_t item) const {
  auto it = counters_.find(item);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<std::pair<uint64_t, uint64_t>> MisraGries::Items() const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [item, count] : counters_) out.emplace_back(item, count);
  return out;
}

void MisraGries::Clear() {
  counters_.clear();
  n_ = 0;
  decrement_events_ = 0;
}

}  // namespace summaries
}  // namespace disttrack
