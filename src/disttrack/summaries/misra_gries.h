// Misra–Gries frequent-items summary [20] — "the MG algorithm" of §1.3,
// the optimal O(1/ε)-space deterministic heavy-hitters sketch. Used as the
// per-site sketch of the deterministic frequency tracker [29].

#ifndef DISTTRACK_SUMMARIES_MISRA_GRIES_H_
#define DISTTRACK_SUMMARIES_MISRA_GRIES_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace disttrack {
namespace summaries {

/// Deterministic frequent-items sketch with `capacity` counters.
///
/// Guarantee: for every item j, f_j - n/(capacity+1) <= Estimate(j) <= f_j,
/// where n is the number of insertions. Equivalently, with capacity
/// ceil(1/eps) the undercount is at most eps*n.
class MisraGries {
 public:
  explicit MisraGries(size_t capacity);

  /// Inserts one copy of `item`. Amortized O(1).
  void Insert(uint64_t item);

  /// Lower-bound estimate of item's frequency (0 if untracked).
  uint64_t Estimate(uint64_t item) const;

  /// Exact upper bound on the undercount of any estimate: the number of
  /// decrement events so far (<= n/(capacity+1)).
  uint64_t UndercountBound() const { return decrement_events_; }

  /// Number of insertions so far.
  uint64_t n() const { return n_; }

  /// Currently tracked (item, counter) pairs, unordered.
  std::vector<std::pair<uint64_t, uint64_t>> Items() const;

  size_t NumCounters() const { return counters_.size(); }
  size_t capacity() const { return capacity_; }

  /// Working-space footprint in words (two words per live counter).
  uint64_t SpaceWords() const { return 2 * counters_.size() + 2; }

  /// Removes all counters and statistics.
  void Clear();

 private:
  size_t capacity_;
  uint64_t n_ = 0;
  uint64_t decrement_events_ = 0;
  std::unordered_map<uint64_t, uint64_t> counters_;
};

}  // namespace summaries
}  // namespace disttrack

#endif  // DISTTRACK_SUMMARIES_MISRA_GRIES_H_
