#include "disttrack/summaries/reservoir.h"

#include <algorithm>

namespace disttrack {
namespace summaries {

ReservoirSample::ReservoirSample(size_t capacity, uint64_t seed)
    : capacity_(std::max<size_t>(1, capacity)), rng_(seed) {
  sample_.reserve(capacity_);
}

void ReservoirSample::Insert(uint64_t value) {
  ++n_;
  if (sample_.size() < capacity_) {
    sample_.push_back(value);
    return;
  }
  uint64_t j = rng_.UniformU64(n_);
  if (j < capacity_) sample_[static_cast<size_t>(j)] = value;
}

double ReservoirSample::EstimateRank(uint64_t x) const {
  if (sample_.empty()) return 0.0;
  uint64_t below = 0;
  for (uint64_t v : sample_) {
    if (v < x) ++below;
  }
  return static_cast<double>(below) / static_cast<double>(sample_.size()) *
         static_cast<double>(n_);
}

double ReservoirSample::EstimateFrequency(uint64_t value) const {
  if (sample_.empty()) return 0.0;
  uint64_t hits = 0;
  for (uint64_t v : sample_) {
    if (v == value) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(sample_.size()) *
         static_cast<double>(n_);
}

uint64_t ReservoirSample::Quantile(double phi) const {
  if (sample_.empty()) return 0;
  std::vector<uint64_t> sorted = sample_;
  std::sort(sorted.begin(), sorted.end());
  phi = std::clamp(phi, 0.0, 1.0);
  size_t idx = static_cast<size_t>(phi * static_cast<double>(sorted.size()));
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

void ReservoirSample::Clear() {
  sample_.clear();
  n_ = 0;
}

}  // namespace summaries
}  // namespace disttrack
