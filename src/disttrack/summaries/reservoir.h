// Classic size-s reservoir sample (Vitter's algorithm R). The paper's §1.2
// compares all tracking problems against random sampling of size O(1/ε²)
// [25]; the reservoir provides that comparator in one-shot (streaming) form
// and is used by tests as a reference sampler.

#ifndef DISTTRACK_SUMMARIES_RESERVOIR_H_
#define DISTTRACK_SUMMARIES_RESERVOIR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "disttrack/common/random.h"

namespace disttrack {
namespace summaries {

/// Uniform without-replacement sample of fixed capacity over a stream.
class ReservoirSample {
 public:
  ReservoirSample(size_t capacity, uint64_t seed);

  /// Offers one value to the reservoir.
  void Insert(uint64_t value);

  /// Estimate of the rank of x in the stream: (fraction of sample < x) * n.
  double EstimateRank(uint64_t x) const;

  /// Estimate of the frequency of `value`: (fraction of sample == v) * n.
  double EstimateFrequency(uint64_t value) const;

  /// Element at the phi-quantile of the sample (0 on empty).
  uint64_t Quantile(double phi) const;

  uint64_t n() const { return n_; }
  size_t capacity() const { return capacity_; }
  const std::vector<uint64_t>& sample() const { return sample_; }
  uint64_t SpaceWords() const { return sample_.size() + 2; }

  void Clear();

 private:
  size_t capacity_;
  Rng rng_;
  uint64_t n_ = 0;
  std::vector<uint64_t> sample_;
};

}  // namespace summaries
}  // namespace disttrack

#endif  // DISTTRACK_SUMMARIES_RESERVOIR_H_
