#include "disttrack/summaries/run_ladder.h"

#include <algorithm>

#include "disttrack/common/simd.h"

namespace disttrack {
namespace summaries {

void RunLadder::Reset(size_t num_cursors) {
  for (auto& run : runs_) Recycle(std::move(run.values));
  runs_.clear();
  cursors_.assign(num_cursors, end_);
  cursors_at_end_ = num_cursors;
  trim_pending_ = false;
}

bool RunLadder::CursorAt(uint64_t position) const {
  for (uint64_t c : cursors_) {
    if (c == position) return true;
  }
  return false;
}

std::vector<uint64_t> RunLadder::TakeBuffer() {
  if (pool_.empty()) return {};
  std::vector<uint64_t> buffer = std::move(pool_.back());
  pool_.pop_back();
  buffer.clear();
  return buffer;
}

void RunLadder::Recycle(std::vector<uint64_t>&& buffer) {
  if (buffer.capacity() == 0) return;
  pool_.push_back(std::move(buffer));
}

void RunLadder::AppendSortedRun(const uint64_t* values, size_t count) {
  if (count == 0) return;
  // Extending the last run keeps it one segment iff order holds and no
  // cursor still expects to start a pull at the current end.
  if (cursors_at_end_ == 0 && !runs_.empty() &&
      runs_.back().values.back() <= values[0]) {
    auto& tail = runs_.back().values;
    tail.insert(tail.end(), values, values + count);
  } else {
    Run run;
    run.start = end_;
    run.values = TakeBuffer();
    run.values.assign(values, values + count);
    runs_.push_back(std::move(run));
  }
  end_ += count;
  cursors_at_end_ = 0;
}

void RunLadder::AppendSortedVector(std::vector<uint64_t>* values) {
  size_t count = values->size();
  if (count == 0) return;
  if (cursors_at_end_ == 0 && !runs_.empty() &&
      runs_.back().values.back() <= values->front()) {
    auto& tail = runs_.back().values;
    tail.insert(tail.end(), values->begin(), values->end());
    values->clear();
  } else {
    Run run;
    run.start = end_;
    run.values = std::move(*values);
    runs_.push_back(std::move(run));
    *values = TakeBuffer();
  }
  end_ += count;
  cursors_at_end_ = 0;
}

void RunLadder::AppendValue(uint64_t value) {
  AppendSortedRun(&value, 1);
}

size_t RunLadder::Pull(size_t cursor, std::vector<RunView>* views) {
  views->clear();
  uint64_t at = cursors_[cursor];
  if (at == end_) return 0;
  // Runs are position-ordered and the cursor is run-aligned (merges never
  // cross a cursor), so the window is a whole-run suffix slice.
  size_t first = runs_.size();
  while (first > 0 && runs_[first - 1].start >= at) --first;
  // Consolidate the window before handing out views: merge every adjacent
  // pair whose boundary no cursor still needs, leaving one run per
  // inter-cursor gap. The work is memoized in the ladder — every other
  // level that later pulls an overlapping window reads the already-merged
  // runs — so the deep merging is shared instead of being redone per
  // level. Consumers then see at most (#cursors in window + 1) views.
  // Cheapest adjacent pair first, so small runs coalesce among themselves
  // before touching a big neighbour (near-optimal merge volume; the
  // quadratic pair scan is over a handful of runs).
  for (;;) {
    size_t best = runs_.size();
    size_t best_cost = ~size_t{0};
    for (size_t i = first; i + 1 < runs_.size(); ++i) {
      if (CursorAt(runs_[i + 1].start)) continue;
      size_t cost = runs_[i].values.size() + runs_[i + 1].values.size();
      if (cost < best_cost) {
        best_cost = cost;
        best = i;
      }
    }
    if (best == runs_.size()) break;
    Run& a = runs_[best];
    Run& b = runs_[best + 1];
    std::vector<uint64_t> merged = TakeBuffer();
    merged.resize(a.values.size() + b.values.size());
    // Gap-merge inner loop: blockwise bitonic merge under AVX2 dispatch,
    // byte-identical output to std::merge (uint64 values are compared
    // wholesale, so stability cannot matter).
    simd::MergeSorted(a.values.data(), a.values.size(), b.values.data(),
                      b.values.size(), merged.data());
    Recycle(std::move(a.values));
    a.values = std::move(merged);
    Recycle(std::move(b.values));
    runs_.erase(runs_.begin() + static_cast<long>(best) + 1);
  }
  size_t total = 0;
  for (size_t i = first; i < runs_.size(); ++i) {
    const auto& values = runs_[i].values;
    views->push_back(RunView{values.data(), values.size()});
    total += values.size();
  }
  cursors_[cursor] = end_;
  ++cursors_at_end_;  // pending > 0 held, so it was below end_
  trim_pending_ = true;
  return total;
}

void RunLadder::Trim() {
  if (runs_.empty()) return;
  uint64_t oldest = end_;
  for (uint64_t c : cursors_) oldest = std::min(oldest, c);
  size_t keep = 0;
  while (keep < runs_.size() &&
         runs_[keep].start + runs_[keep].values.size() <= oldest) {
    Recycle(std::move(runs_[keep].values));
    ++keep;
  }
  if (keep > 0) {
    runs_.erase(runs_.begin(), runs_.begin() + static_cast<long>(keep));
  }
}

void RunLadder::MergeTail() {
  // Binary counter: fold the newest run leftward while the older
  // neighbour is no bigger, so any element is merged O(log window) times
  // and that cost is paid once for all consumers. A boundary some cursor
  // still needs to pull from stays put (the cascade retries it once the
  // cursor moves on and the counter reaches it again).
  while (runs_.size() >= 2) {
    Run& a = runs_[runs_.size() - 2];
    Run& b = runs_.back();
    if (a.values.size() > b.values.size()) break;
    if (CursorAt(b.start)) break;
    std::vector<uint64_t> merged = TakeBuffer();
    merged.resize(a.values.size() + b.values.size());
    simd::MergeSorted(a.values.data(), a.values.size(), b.values.data(),
                      b.values.size(), merged.data());
    Recycle(std::move(a.values));
    a.values = std::move(merged);
    Recycle(std::move(b.values));
    runs_.pop_back();
  }
}

void RunLadder::Consolidate() {
  // The oldest-consumed watermark only moves when some cursor pulled.
  if (trim_pending_) {
    Trim();
    trim_pending_ = false;
  }
  MergeTail();
}

uint64_t RunLadder::held() const {
  uint64_t total = 0;
  for (const auto& run : runs_) total += run.values.size();
  return total;
}

uint64_t RunLadder::SpaceWords() const {
  return held() + runs_.size() + cursors_.size();
}

}  // namespace summaries
}  // namespace disttrack
