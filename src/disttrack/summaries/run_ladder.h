// Shared per-site run-merge ladder for the rank tracker's compactor tree.
//
// Algorithm C (§4) feeds every arrival to all h+1 levels of its dyadic
// node tree. The batched hot path delivers those arrivals as sorted runs,
// and before this ladder existed each level staged its own copy of every
// run and re-merged them independently at its own compaction cadence —
// the same merge volume paid h+1 times (the profile shows it as the
// dominant rank cost). The ladder consolidates each site's runs ONCE and
// lets every level consume windows of the shared merged sequence through
// borrowed views (CompactorSummary::InsertSortedViews), so the deep
// small-run-into-big-run merging is shared and each level only merges a
// handful of pre-consolidated segments per compaction.
//
// Contract:
//  * AppendSortedRun / AppendValue add data at the logical end of the
//    stream. Runs are stored sorted; logical positions only order runs
//    against cursors, never elements within a run.
//  * One cursor per consumer (tree level). pending(c) is the element
//    count appended since cursor c last pulled. Pull(c) returns borrowed
//    views of whole runs covering exactly [cursor_c, end) and advances
//    the cursor; views stay valid until the next Append*/Consolidate/
//    Reset call.
//  * Consolidate() merges adjacent runs binary-counter style (merge when
//    the older neighbour is no bigger) and trims runs every cursor has
//    consumed. A merge never crosses a position some cursor still needs
//    to pull from, which keeps every cursor run-aligned; callers pump
//    consumers first, then consolidate, so up-to-date cursors never pin
//    the tail. Node windows therefore align with run boundaries by
//    construction — the tracker appends the window-closing event arrival
//    as a one-element straggler run before flushing the node.
//
// Space: runs older than the slowest cursor are trimmed, so the ladder
// holds at most ~max pull window (the largest level capacity) elements —
// the staging memory it removes from the h+1 compactors, paid once.

#ifndef DISTTRACK_SUMMARIES_RUN_LADDER_H_
#define DISTTRACK_SUMMARIES_RUN_LADDER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace disttrack {
namespace summaries {

/// Borrowed view of one ascending run in ladder storage.
struct RunView {
  const uint64_t* data;
  size_t size;
};

/// Sorted-run accumulator with per-consumer cursors (see file comment).
class RunLadder {
 public:
  /// Drops all buffered data and re-registers `num_cursors` consumers,
  /// all positioned at the current end (nothing pending).
  void Reset(size_t num_cursors);

  /// Appends `count` values forming one ascending run (caller sorts).
  void AppendSortedRun(const uint64_t* values, size_t count);

  /// AppendSortedRun taking ownership of the buffer — no copy unless the
  /// run extends the previous one in place. The moved-from vector comes
  /// back holding a recycled buffer, ready to refill.
  void AppendSortedVector(std::vector<uint64_t>* values);

  /// Appends a single value (a one-element run; extends the last run in
  /// place when order and cursor alignment allow).
  void AppendValue(uint64_t value);

  /// Fills `views` with segments covering [cursor, end) — whole runs, in
  /// position order — advances the cursor to end, and returns the total
  /// element count. Views are invalidated by the next mutating call.
  size_t Pull(size_t cursor, std::vector<RunView>* views);

  /// Binary-counter merge of the tail plus a trim of fully-consumed
  /// runs. Call after pulling consumers that were due (their cursors no
  /// longer pin the fresh tail).
  void Consolidate();

  /// Elements appended after `cursor`'s position.
  uint64_t pending(size_t cursor) const {
    return end_ - cursors_[cursor];
  }

  uint64_t end() const { return end_; }
  size_t num_cursors() const { return cursors_.size(); }
  size_t run_count() const { return runs_.size(); }

  /// Elements currently buffered (trimmed runs excluded).
  uint64_t held() const;

  /// Space charged to the owning site: buffered values plus one word per
  /// run header and cursor.
  uint64_t SpaceWords() const;

 private:
  struct Run {
    uint64_t start = 0;  // logical position of values.front()
    std::vector<uint64_t> values;
  };

  bool CursorAt(uint64_t position) const;
  std::vector<uint64_t> TakeBuffer();
  void Recycle(std::vector<uint64_t>&& buffer);
  void Trim();
  void MergeTail();

  std::vector<Run> runs_;  // position-ordered; front is oldest
  std::vector<uint64_t> cursors_;
  uint64_t end_ = 0;  // logical position one past the last element
  // Cursors currently positioned exactly at end_ (maintained so the
  // append fast path answers "may the last run be extended in place?"
  // without scanning): Pull moves one cursor to end_, any append moves
  // end_ past every cursor, Reset parks them all there.
  size_t cursors_at_end_ = 0;
  bool trim_pending_ = false;  // a Pull advanced a cursor since last Trim
  std::vector<std::vector<uint64_t>> pool_;  // recycled run buffers
};

}  // namespace summaries
}  // namespace disttrack

#endif  // DISTTRACK_SUMMARIES_RUN_LADDER_H_
