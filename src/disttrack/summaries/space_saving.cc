#include "disttrack/summaries/space_saving.h"

#include <algorithm>

#include "disttrack/common/ordered_drain.h"

namespace disttrack {
namespace summaries {

SpaceSaving::SpaceSaving(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  entries_.reserve(capacity_ + 1);
}

void SpaceSaving::DetachFromBucket(uint64_t item, uint64_t count) {
  auto bucket = buckets_.find(count);
  bucket->second.erase(item);
  if (bucket->second.empty()) buckets_.erase(bucket);
}

void SpaceSaving::AttachToBucket(uint64_t item, uint64_t count) {
  buckets_[count].insert(item);
}

void SpaceSaving::Insert(uint64_t item) {
  ++n_;
  auto it = entries_.find(item);
  if (it != entries_.end()) {
    DetachFromBucket(item, it->second.count);
    ++it->second.count;
    AttachToBucket(item, it->second.count);
    return;
  }
  if (entries_.size() < capacity_) {
    entries_.emplace(item, Entry{1, 0});
    AttachToBucket(item, 1);
    return;
  }
  // Evict the smallest-id minimum-count item (deterministic tie-break);
  // the newcomer inherits the evicted count as error.
  auto min_bucket = buckets_.begin();
  uint64_t min_count = min_bucket->first;
  uint64_t victim = *min_bucket->second.begin();
  DetachFromBucket(victim, min_count);
  entries_.erase(victim);
  entries_.emplace(item, Entry{min_count + 1, min_count});
  AttachToBucket(item, min_count + 1);
}

uint64_t SpaceSaving::Estimate(uint64_t item) const {
  auto it = entries_.find(item);
  if (it != entries_.end()) return it->second.count;
  return buckets_.empty() ? 0 : buckets_.begin()->first;
}

uint64_t SpaceSaving::OvercountBound(uint64_t item) const {
  auto it = entries_.find(item);
  if (it != entries_.end()) return it->second.error;
  return buckets_.empty() ? 0 : buckets_.begin()->first;
}

bool SpaceSaving::IsMonitored(uint64_t item) const {
  return entries_.find(item) != entries_.end();
}

std::vector<std::pair<uint64_t, uint64_t>> SpaceSaving::Items() const {
  // Item-id order, not hash order (see ordered_drain.h for why).
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(entries_.size());
  for (uint64_t item : common::SortedKeys(entries_)) {
    out.emplace_back(item, entries_.at(item).count);
  }
  return out;
}

void SpaceSaving::Clear() {
  entries_.clear();
  buckets_.clear();
  n_ = 0;
}

}  // namespace summaries
}  // namespace disttrack
