// SpaceSaving frequent-items summary (Metwally et al. [19]) — one of the
// optimal O(1/ε)-space alternatives to Misra–Gries cited in §1.2/§1.3.
// Included so the frequency substrate offers both over- and under-estimating
// sketches; the deterministic tracker can be configured with either.

#ifndef DISTTRACK_SUMMARIES_SPACE_SAVING_H_
#define DISTTRACK_SUMMARIES_SPACE_SAVING_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

namespace disttrack {
namespace summaries {

/// Deterministic frequent-items sketch with `capacity` monitored items.
///
/// Guarantee: f_j <= Estimate(j) <= f_j + n/capacity for monitored items,
/// and any item with f_j > n/capacity is monitored.
class SpaceSaving {
 public:
  explicit SpaceSaving(size_t capacity);

  /// Inserts one copy of `item`. O(log capacity).
  void Insert(uint64_t item);

  /// Over-estimate of `item`'s frequency. Unmonitored items return the
  /// current minimum counter (the standard conservative answer).
  uint64_t Estimate(uint64_t item) const;

  /// Upper bound on the overcount of `item`'s estimate (its inherited error
  /// if monitored, otherwise the minimum counter).
  uint64_t OvercountBound(uint64_t item) const;

  /// True iff the item currently owns a counter.
  bool IsMonitored(uint64_t item) const;

  /// Number of insertions so far.
  uint64_t n() const { return n_; }

  /// Monitored (item, counter) pairs in ascending item order.
  std::vector<std::pair<uint64_t, uint64_t>> Items() const;

  size_t NumCounters() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t SpaceWords() const { return 3 * entries_.size() + 2; }

  void Clear();

 private:
  struct Entry {
    uint64_t count = 0;
    uint64_t error = 0;
  };

  void DetachFromBucket(uint64_t item, uint64_t count);
  void AttachToBucket(uint64_t item, uint64_t count);

  size_t capacity_;
  uint64_t n_ = 0;
  std::unordered_map<uint64_t, Entry> entries_;
  // count -> items with that count. Both levels are ordered so the
  // eviction victim (smallest item id in the minimum-count bucket) is a
  // deterministic function of the insertion sequence — an unordered_set
  // here made the evicted identity depend on hash layout, i.e. on the
  // standard-library version (caught by check_invariants.py).
  std::map<uint64_t, std::set<uint64_t>> buckets_;
};

}  // namespace summaries
}  // namespace disttrack

#endif  // DISTTRACK_SUMMARIES_SPACE_SAVING_H_
