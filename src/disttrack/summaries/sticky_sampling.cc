#include "disttrack/summaries/sticky_sampling.h"

#include <algorithm>

#include "disttrack/common/ordered_drain.h"

namespace disttrack {
namespace summaries {

StickySampling::StickySampling(double p, uint64_t seed)
    : p_(std::clamp(p, 1e-12, 1.0)), rng_(seed) {}

StickySampling::InsertResult StickySampling::Insert(uint64_t item) {
  ++n_;
  auto it = counters_.find(item);
  if (it != counters_.end()) {
    ++it->second;
    return InsertResult{false, true, it->second};
  }
  if (rng_.Bernoulli(p_)) {
    counters_.emplace(item, 1);
    return InsertResult{true, true, 1};
  }
  return InsertResult{false, false, 0};
}

uint64_t StickySampling::Count(uint64_t item) const {
  auto it = counters_.find(item);
  return it == counters_.end() ? 0 : it->second;
}

double StickySampling::UnbiasedEstimate(uint64_t item) const {
  auto it = counters_.find(item);
  if (it == counters_.end()) return 0.0;
  return static_cast<double>(it->second) - 1.0 + 1.0 / p_;
}

bool StickySampling::IsTracked(uint64_t item) const {
  return counters_.find(item) != counters_.end();
}

std::vector<std::pair<uint64_t, uint64_t>> StickySampling::Items() const {
  // Item-id order, not hash order: callers fold these into reports and
  // estimate sweeps, so the export order must not depend on hash layout.
  return common::SortedItems(counters_);
}

void StickySampling::Clear() {
  counters_.clear();
  n_ = 0;
}

}  // namespace summaries
}  // namespace disttrack
