// Sticky sampling counter list (Manku–Motwani [18]) — the per-site counter
// structure L_i of the randomized frequency tracker (§3.1): an item gets a
// counter with probability p on arrival while untracked; once tracked it is
// counted exactly. Expected size O(p * n).

#ifndef DISTTRACK_SUMMARIES_STICKY_SAMPLING_H_
#define DISTTRACK_SUMMARIES_STICKY_SAMPLING_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "disttrack/common/random.h"

namespace disttrack {
namespace summaries {

/// Randomized counter list with per-arrival sampling probability p.
class StickySampling {
 public:
  /// `p` in (0, 1]; `seed` derives the private coin sequence.
  StickySampling(double p, uint64_t seed);

  /// Outcome of one insertion.
  struct InsertResult {
    bool created = false;   ///< a new counter was started by this arrival
    bool tracked = false;   ///< the item has a counter after this arrival
    uint64_t count = 0;     ///< counter value after this arrival (0 if none)
  };

  /// Inserts one copy of `item`; flips the Bernoulli(p) coin exactly once
  /// when the item is untracked (the coin that creates the counter), as in
  /// §3.1. Tracked items are counted deterministically.
  InsertResult Insert(uint64_t item);

  /// Counter value (0 if untracked). This undercounts f by the number of
  /// copies that arrived before the counter was created.
  uint64_t Count(uint64_t item) const;

  /// The unbiased frequency estimator of Lemma 2.1 applied to the counter:
  /// count - 1 + 1/p when tracked, 0 otherwise. E[estimate] = f.
  double UnbiasedEstimate(uint64_t item) const;

  bool IsTracked(uint64_t item) const;

  uint64_t n() const { return n_; }
  double p() const { return p_; }
  size_t NumCounters() const { return counters_.size(); }
  uint64_t SpaceWords() const { return 2 * counters_.size() + 2; }

  /// Tracked (item, counter) pairs, unordered.
  std::vector<std::pair<uint64_t, uint64_t>> Items() const;

  void Clear();

 private:
  double p_;
  Rng rng_;
  uint64_t n_ = 0;
  std::unordered_map<uint64_t, uint64_t> counters_;
};

}  // namespace summaries
}  // namespace disttrack

#endif  // DISTTRACK_SUMMARIES_STICKY_SAMPLING_H_
