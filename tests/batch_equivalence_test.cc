// Property tests for the batched delivery engines added with the
// frequency/rank hot-path overhaul:
//
//  * count + frequency: the event-countdown engines consume the RNG
//    exactly as per-element Arrive() does, so ArriveBatch (any chunking,
//    straddling round and virtual-site-split boundaries) must be
//    bit-identical to the scalar path — estimates, communication, round
//    counts, and split counts;
//  * rank with use_batch_compaction=false: same bit-identity;
//  * rank with batched compaction (default): fewer, larger compactions
//    are equivalent in distribution, not bit-identical — checked with a
//    two-sample Kolmogorov–Smirnov test of final-error samples against
//    the per-element feed, plus mean/variance sanity;
//  * CompactorSummary::InsertBatch vs per-element Insert: exact weight
//    conservation, and the same unbiasedness + (eps*m)^2 variance bound.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "disttrack/count/randomized_count.h"
#include "disttrack/frequency/randomized_frequency.h"
#include "disttrack/rank/randomized_rank.h"
#include "disttrack/stream/workload.h"
#include "disttrack/summaries/compactor_summary.h"
#include "test_util.h"

namespace disttrack {
namespace {

using stream::MakeCountWorkload;
using stream::MakeFrequencyWorkload;
using stream::MakeRankWorkload;
using stream::SiteSchedule;

// Two-sample Kolmogorov–Smirnov statistic sup_x |F_a(x) - F_b(x)|.
double KsStatistic(std::vector<double> a, std::vector<double> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double d = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] <= b[j]) {
      ++i;
    } else {
      ++j;
    }
    double fa = static_cast<double>(i) / static_cast<double>(a.size());
    double fb = static_cast<double>(j) / static_cast<double>(b.size());
    d = std::max(d, std::fabs(fa - fb));
  }
  return d;
}

// KS acceptance threshold c(alpha) * sqrt((n+m)/(n*m)) at alpha ~ 0.001
// (c = 1.95) — loose enough that a correct implementation fails ~1/1000
// runs, tight enough to catch a variance-breaking "optimization".
double KsThreshold(size_t n, size_t m) {
  return 1.95 * std::sqrt(static_cast<double>(n + m) /
                          static_cast<double>(n * m));
}

// Delivers `w` in ragged chunks whose sizes cycle through a progression,
// so batch boundaries straddle round broadcasts and virtual-site splits
// at arbitrary offsets.
template <typename Tracker>
void DeliverRagged(Tracker* tracker, const sim::Workload& w, size_t seed) {
  size_t i = 0;
  size_t chunk = 1 + seed % 7;
  while (i < w.size()) {
    size_t len = std::min(chunk, w.size() - i);
    tracker->ArriveBatch(w.data() + i, len);
    i += len;
    chunk = chunk * 3 + 1;
    if (chunk > 5000) chunk = 1 + (chunk % 11);
  }
}

TEST(BatchEquivalenceTest, CountRaggedBatchesBitIdenticalAcrossSeeds) {
  const int k = 8;
  const uint64_t kN = 120000;
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    auto w = MakeCountWorkload(k, kN, SiteSchedule::kUniformRandom,
                               100 + seed);
    count::RandomizedCountOptions o;
    o.num_sites = k;
    o.epsilon = 0.01;  // many p-halving broadcasts inside the stream
    o.seed = 500 + seed;
    count::RandomizedCountTracker scalar(o), batched(o);
    for (const auto& a : w) scalar.Arrive(a.site);
    DeliverRagged(&batched, w, seed);
    EXPECT_DOUBLE_EQ(batched.EstimateCount(), scalar.EstimateCount());
    EXPECT_EQ(batched.meter().TotalMessages(), scalar.meter().TotalMessages());
    EXPECT_EQ(batched.meter().TotalWords(), scalar.meter().TotalWords());
    EXPECT_EQ(batched.rounds(), scalar.rounds());
  }
}

TEST(BatchEquivalenceTest, FrequencyBatchesBitIdenticalAcrossSplits) {
  // Single-site schedule with a small epsilon: every round the one loaded
  // site blows through the n̄/k split threshold repeatedly, so batches
  // straddle both round boundaries and many virtual-site splits.
  const int k = 8;
  const uint64_t kN = 80000;
  for (uint64_t seed : {1ull, 2ull}) {
    auto w = MakeFrequencyWorkload(k, kN, SiteSchedule::kSingleSite, 500, 1.1,
                                   300 + seed);
    frequency::RandomizedFrequencyOptions o;
    o.num_sites = k;
    o.epsilon = 0.02;
    o.seed = 700 + seed;
    frequency::RandomizedFrequencyTracker scalar(o), batched(o);
    for (const auto& a : w) scalar.Arrive(a.site, a.key);
    DeliverRagged(&batched, w, seed);
    ASSERT_GT(scalar.splits(), 10u) << "workload must exercise splits";
    ASSERT_GT(scalar.rounds(), 5u) << "workload must cross rounds";
    EXPECT_EQ(batched.splits(), scalar.splits());
    EXPECT_EQ(batched.rounds(), scalar.rounds());
    for (uint64_t item = 0; item < 40; ++item) {
      ASSERT_DOUBLE_EQ(batched.EstimateFrequency(item),
                       scalar.EstimateFrequency(item))
          << "item " << item;
    }
    EXPECT_EQ(batched.meter().TotalMessages(), scalar.meter().TotalMessages());
    EXPECT_EQ(batched.meter().TotalWords(), scalar.meter().TotalWords());
  }
}

TEST(BatchEquivalenceTest, FrequencyLegacyStoreMatchesFlatStore) {
  // The counter store holds no randomness, so flat vs unordered_map must
  // not change a single estimate, under either delivery mode.
  const int k = 4;
  const uint64_t kN = 50000;
  auto w = MakeFrequencyWorkload(k, kN, SiteSchedule::kUniformRandom, 1000,
                                 1.1, 37);
  frequency::RandomizedFrequencyOptions o;
  o.num_sites = k;
  o.epsilon = 0.02;
  o.seed = 11;
  frequency::RandomizedFrequencyTracker flat(o);
  o.use_flat_counters = false;
  frequency::RandomizedFrequencyTracker legacy(o);
  DeliverRagged(&flat, w, 1);
  DeliverRagged(&legacy, w, 1);
  for (uint64_t item : {0ull, 1ull, 5ull, 99ull, 999ull}) {
    EXPECT_DOUBLE_EQ(flat.EstimateFrequency(item),
                     legacy.EstimateFrequency(item));
  }
  EXPECT_EQ(flat.meter().TotalWords(), legacy.meter().TotalWords());
  EXPECT_EQ(flat.splits(), legacy.splits());
}

TEST(BatchEquivalenceTest, RankExactFeedBatchesBitIdenticalToScalar) {
  const int k = 8;
  const uint64_t kN = 50000;
  auto w = MakeRankWorkload(k, kN, SiteSchedule::kUniformRandom,
                            stream::ValueOrder::kUniformRandom, 16, 41);
  rank::RandomizedRankOptions o;
  o.num_sites = k;
  o.epsilon = 0.02;
  o.seed = 13;
  o.use_batch_compaction = false;  // per-element feed: exact path
  rank::RandomizedRankTracker scalar(o), batched(o);
  for (const auto& a : w) scalar.Arrive(a.site, a.key);
  DeliverRagged(&batched, w, 2);
  for (uint64_t q : {100ull, 20000ull, 45000ull, 65000ull}) {
    EXPECT_DOUBLE_EQ(batched.EstimateRank(q), scalar.EstimateRank(q));
  }
  EXPECT_EQ(batched.meter().TotalMessages(), scalar.meter().TotalMessages());
  EXPECT_EQ(batched.meter().TotalWords(), scalar.meter().TotalWords());
}

TEST(BatchEquivalenceTest, RankBatchedCompactionDistributionMatchesScalar) {
  // Batched compaction reorders and coalesces compactions, so it is not
  // bit-identical; its error distribution at a fixed query must be. Two
  // samples of final errors (independent seeds), KS-tested.
  const int k = 8;
  const uint64_t kN = 20000;
  const double eps = 0.05;
  auto w = MakeRankWorkload(k, kN, SiteSchedule::kUniformRandom,
                            stream::ValueOrder::kUniformRandom, 16, 43);
  const uint64_t query = 1u << 15;
  uint64_t truth = stream::ExactRank(w, query);
  const int kTrials = 120;
  auto run = [&](bool batch_compaction, uint64_t base_seed) {
    return testing_util::CollectErrors(
        kTrials,
        [&](uint64_t seed) {
          rank::RandomizedRankOptions o;
          o.num_sites = k;
          o.epsilon = eps;
          o.seed = seed;
          o.use_batch_compaction = batch_compaction;
          rank::RandomizedRankTracker tracker(o);
          tracker.ArriveBatch(w.data(), w.size());
          return tracker.EstimateRank(query) - static_cast<double>(truth);
        },
        base_seed);
  };
  auto scalar_errors = run(false, 9000);
  auto batch_errors = run(true, 9500);
  double d = KsStatistic(scalar_errors, batch_errors);
  EXPECT_LE(d, KsThreshold(scalar_errors.size(), batch_errors.size()))
      << "batched-compaction error distribution drifted from scalar";
  // Means agree within the two-sample CLT band (4 sigma).
  double mean_gap = std::fabs(testing_util::MeanOf(scalar_errors) -
                              testing_util::MeanOf(batch_errors));
  double pooled_sd =
      std::sqrt((testing_util::VarianceOf(scalar_errors) +
                 testing_util::VarianceOf(batch_errors)) /
                kTrials);
  EXPECT_LE(mean_gap, 4.0 * pooled_sd + 1e-9);
}

// ---- shared run-merge ladder (use_shared_ladder) -------------------------

// Under the exact per-element feed (use_batch_compaction=false), routing
// every site's arrivals through the shared RunLadder must be bit-identical
// to the per-level staging path: each level pulls exactly when staging
// would have tripped its compaction threshold, the consolidated buffer
// holds the same multiset, and the coin sequences line up draw for draw.
// The workload crosses many rounds, so p-halving broadcasts land while
// the ladder holds unpulled one-element straggler runs — the reset path.
TEST(BatchEquivalenceTest, RankLadderExactFeedBitIdenticalToStagedLevels) {
  const int k = 8;
  const uint64_t kN = 60000;
  for (uint64_t seed : {1ull, 7ull, 13ull}) {
    auto w = MakeRankWorkload(k, kN, SiteSchedule::kUniformRandom,
                              stream::ValueOrder::kUniformRandom, 16,
                              100 + seed);
    rank::RandomizedRankOptions o;
    o.num_sites = k;
    o.epsilon = 0.02;
    o.seed = seed;
    o.use_batch_compaction = false;  // exact feed
    o.use_shared_ladder = true;
    rank::RandomizedRankTracker ladder(o);
    o.use_shared_ladder = false;
    rank::RandomizedRankTracker staged(o);
    // Ragged batched delivery for the ladder tracker (falls back to the
    // per-element feed, with run boundaries straddling node windows at
    // arbitrary offsets), plain scalar delivery for the staged one.
    DeliverRagged(&ladder, w, seed);
    for (const auto& a : w) staged.Arrive(a.site, a.key);
    ASSERT_GT(staged.rounds(), 10u) << "broadcasts must land mid-ladder";
    for (uint64_t q : {100ull, 9000ull, 30000ull, 65000ull}) {
      ASSERT_DOUBLE_EQ(ladder.EstimateRank(q), staged.EstimateRank(q))
          << "seed " << seed << " q " << q;
    }
    EXPECT_EQ(ladder.meter().TotalMessages(), staged.meter().TotalMessages());
    EXPECT_EQ(ladder.meter().TotalWords(), staged.meter().TotalWords());
    EXPECT_EQ(ladder.rounds(), staged.rounds());
  }
}

// Straggler-heavy variant: a large confidence factor keeps p high, so the
// tail channel fires every few arrivals and nearly every ladder append is
// the one-element straggler run of an event arrival.
TEST(BatchEquivalenceTest, RankLadderExactFeedStragglerPathBitIdentical) {
  const int k = 4;
  const uint64_t kN = 30000;
  auto w = MakeRankWorkload(k, kN, SiteSchedule::kUniformRandom,
                            stream::ValueOrder::kUniformRandom, 14, 71);
  rank::RandomizedRankOptions o;
  o.num_sites = k;
  o.epsilon = 0.05;
  o.seed = 29;
  o.confidence_factor = 16.0;  // p stays large: dense tail events
  o.use_batch_compaction = false;
  o.use_shared_ladder = true;
  rank::RandomizedRankTracker ladder(o);
  o.use_shared_ladder = false;
  rank::RandomizedRankTracker staged(o);
  for (const auto& a : w) {
    ladder.Arrive(a.site, a.key);
    staged.Arrive(a.site, a.key);
  }
  for (uint64_t q : {64ull, 4096ull, 12000ull, 20000ull}) {
    ASSERT_DOUBLE_EQ(ladder.EstimateRank(q), staged.EstimateRank(q));
  }
  EXPECT_EQ(ladder.meter().TotalWords(), staged.meter().TotalWords());
}

// The batched feed (use_batch_compaction=true) defers ladder pulls to
// dyadic quanta — fewer, larger compactions than the per-level staging
// path, so not bit-identical; the error distribution at a fixed query
// must match (same KS methodology as the batched-vs-scalar test above).
TEST(BatchEquivalenceTest, RankLadderBatchedFeedDistributionMatchesStaged) {
  const int k = 8;
  const uint64_t kN = 20000;
  const double eps = 0.05;
  auto w = MakeRankWorkload(k, kN, SiteSchedule::kUniformRandom,
                            stream::ValueOrder::kUniformRandom, 16, 47);
  const uint64_t query = 1u << 15;
  uint64_t truth = stream::ExactRank(w, query);
  const int kTrials = 120;
  auto run = [&](bool shared_ladder, uint64_t base_seed) {
    return testing_util::CollectErrors(
        kTrials,
        [&](uint64_t seed) {
          rank::RandomizedRankOptions o;
          o.num_sites = k;
          o.epsilon = eps;
          o.seed = seed;
          o.use_shared_ladder = shared_ladder;
          rank::RandomizedRankTracker tracker(o);
          tracker.ArriveBatch(w.data(), w.size());
          return tracker.EstimateRank(query) - static_cast<double>(truth);
        },
        base_seed);
  };
  auto ladder_errors = run(true, 11000);
  auto staged_errors = run(false, 11500);
  double d = KsStatistic(ladder_errors, staged_errors);
  EXPECT_LE(d, KsThreshold(ladder_errors.size(), staged_errors.size()))
      << "shared-ladder error distribution drifted from per-level staging";
  double mean_gap = std::fabs(testing_util::MeanOf(ladder_errors) -
                              testing_util::MeanOf(staged_errors));
  double pooled_sd = std::sqrt((testing_util::VarianceOf(ladder_errors) +
                                testing_util::VarianceOf(staged_errors)) /
                               kTrials);
  EXPECT_LE(mean_gap, 4.0 * pooled_sd + 1e-9);
}

// ---- site-grouped delivery (use_site_grouping) ---------------------------
//
// Inside a chunk CoarseTracker::BatchCannotBroadcast certifies, arrivals
// are permuted into site-contiguous spans; per-site coin streams and
// event positions are site-local, so the grouped engines must be
// bit-identical to the event-countdown engines — estimates to the ulp,
// communication totals, rounds, splits — for every workload shape and
// any batch chunking (including single huge batches that the engines
// chunk internally, straddling p-halving broadcasts and round/split
// boundaries).

TEST(BatchEquivalenceTest, CountGroupedBitIdenticalAcrossWorkloads) {
  const int k = 16;
  const uint64_t kN = 150000;
  for (auto sched : {SiteSchedule::kUniformRandom, SiteSchedule::kSingleSite,
                     SiteSchedule::kSkewedGeometric, SiteSchedule::kBursty}) {
    auto w = MakeCountWorkload(k, kN, sched, 901);
    count::RandomizedCountOptions o;
    o.num_sites = k;
    o.epsilon = 0.01;
    o.seed = 31;
    o.use_site_grouping = true;
    count::RandomizedCountTracker grouped(o);
    o.use_site_grouping = false;
    count::RandomizedCountTracker countdown(o);
    // One huge batch for the grouped tracker (internal chunking must
    // break at exactly the certified boundaries), ragged batches for the
    // countdown one.
    grouped.ArriveBatch(w.data(), w.size());
    DeliverRagged(&countdown, w, 3);
    ASSERT_DOUBLE_EQ(grouped.EstimateCount(), countdown.EstimateCount());
    EXPECT_EQ(grouped.meter().TotalMessages(),
              countdown.meter().TotalMessages());
    EXPECT_EQ(grouped.meter().TotalWords(), countdown.meter().TotalWords());
    EXPECT_EQ(grouped.rounds(), countdown.rounds());
  }
}

TEST(BatchEquivalenceTest, CountGroupedSiteStreamMatchesScalar) {
  const int k = 8;
  const uint64_t kN = 120000;
  auto w = MakeCountWorkload(k, kN, SiteSchedule::kUniformRandom, 77);
  sim::SiteStream sites(w.size());
  for (size_t i = 0; i < w.size(); ++i) {
    sites[i] = static_cast<uint16_t>(w[i].site);
  }
  count::RandomizedCountOptions o;
  o.num_sites = k;
  o.epsilon = 0.01;
  o.seed = 5;
  count::RandomizedCountTracker grouped(o), scalar(o);
  grouped.ArriveSites(sites.data(), sites.size());
  for (const auto& a : w) scalar.Arrive(a.site);
  EXPECT_DOUBLE_EQ(grouped.EstimateCount(), scalar.EstimateCount());
  EXPECT_EQ(grouped.meter().TotalWords(), scalar.meter().TotalWords());
}

TEST(BatchEquivalenceTest, FrequencyGroupedBitIdenticalAcrossWorkloads) {
  const int k = 8;
  const uint64_t kN = 90000;
  for (auto sched : {SiteSchedule::kUniformRandom, SiteSchedule::kSingleSite,
                     SiteSchedule::kBursty}) {
    auto w = MakeFrequencyWorkload(k, kN, sched, 400, 1.1, 311);
    frequency::RandomizedFrequencyOptions o;
    o.num_sites = k;
    o.epsilon = 0.02;  // many rounds and (single-site) many splits inside
    o.seed = 17;
    o.use_site_grouping = true;
    frequency::RandomizedFrequencyTracker grouped(o);
    o.use_site_grouping = false;
    frequency::RandomizedFrequencyTracker countdown(o), scalar(o);
    grouped.ArriveBatch(w.data(), w.size());
    DeliverRagged(&countdown, w, 5);
    for (const auto& a : w) scalar.Arrive(a.site, a.key);
    EXPECT_EQ(grouped.rounds(), scalar.rounds());
    EXPECT_EQ(grouped.splits(), scalar.splits());
    for (uint64_t item = 0; item < 50; ++item) {
      ASSERT_DOUBLE_EQ(grouped.EstimateFrequency(item),
                       scalar.EstimateFrequency(item))
          << "item " << item;
      ASSERT_DOUBLE_EQ(countdown.EstimateFrequency(item),
                       scalar.EstimateFrequency(item))
          << "item " << item;
    }
    EXPECT_EQ(grouped.meter().TotalMessages(), scalar.meter().TotalMessages());
    EXPECT_EQ(grouped.meter().TotalWords(), scalar.meter().TotalWords());
  }
}

TEST(BatchEquivalenceTest, RankGroupedDominantSiteStraddlingChunks) {
  // Regression: rank buffers eventless runs across its internal chunk
  // boundaries without advancing the coarse tracker, so the broadcast
  // certification must count the buffered carry — a dominant site whose
  // event gap straddles the chunk boundary used to trip the
  // broadcast-inside-certified-chunk abort.
  Rng site_rng(3);
  sim::Workload w;
  for (int i = 0; i < 300000; ++i) {
    int site = site_rng.UniformU64(1000) == 0
                   ? 1 + static_cast<int>(site_rng.UniformU64(3))
                   : 0;
    w.push_back(sim::Arrival{site, site_rng.UniformU64(1 << 16)});
  }
  rank::RandomizedRankOptions o;
  o.num_sites = 4;
  o.epsilon = 0.05;
  o.seed = 9;
  o.use_site_grouping = true;
  rank::RandomizedRankTracker grouped(o);
  o.use_site_grouping = false;
  rank::RandomizedRankTracker countdown(o);
  grouped.ArriveBatch(w.data(), w.size());
  countdown.ArriveBatch(w.data(), w.size());
  for (uint64_t q : {100ull, 20000ull, 50000ull}) {
    ASSERT_DOUBLE_EQ(grouped.EstimateRank(q), countdown.EstimateRank(q));
  }
  EXPECT_EQ(grouped.meter().TotalWords(), countdown.meter().TotalWords());
}

TEST(BatchEquivalenceTest, RankGroupedBitIdenticalToCountdownAcrossChunkings) {
  // The grouped rank engine buffers eventless spans across its internal
  // chunk boundaries and feeds at exactly the countdown engine's
  // boundaries (events + batch ends), so for identical ArriveBatch call
  // sequences the two engines must agree bit for bit — spans straddling
  // round broadcasts and leaf/chunk completions included.
  const int k = 8;
  const uint64_t kN = 60000;
  for (auto sched : {SiteSchedule::kUniformRandom, SiteSchedule::kSingleSite,
                     SiteSchedule::kBursty}) {
    auto w = MakeRankWorkload(k, kN, sched,
                              stream::ValueOrder::kUniformRandom, 16, 67);
    rank::RandomizedRankOptions o;
    o.num_sites = k;
    o.epsilon = 0.02;
    o.seed = 41;
    o.use_site_grouping = true;
    rank::RandomizedRankTracker grouped(o);
    o.use_site_grouping = false;
    rank::RandomizedRankTracker countdown(o);
    grouped.ArriveBatch(w.data(), w.size());
    countdown.ArriveBatch(w.data(), w.size());
    for (uint64_t q : {100ull, 9000ull, 30000ull, 65000ull}) {
      ASSERT_DOUBLE_EQ(grouped.EstimateRank(q), countdown.EstimateRank(q))
          << "q " << q;
    }
    EXPECT_EQ(grouped.meter().TotalMessages(),
              countdown.meter().TotalMessages());
    EXPECT_EQ(grouped.meter().TotalWords(), countdown.meter().TotalWords());
    EXPECT_EQ(grouped.rounds(), countdown.rounds());
  }
}

// Borrowed-view ingest vs owned staging at the summary level: one
// over-capacity sorted view into a fresh summary must reproduce
// InsertSortedBatch of the same data bit for bit (the virtual cascade
// draws the same coins and keeps the same elements).
TEST(BatchEquivalenceTest, CompactorSortedViewsMatchSortedBatchExactly) {
  Rng rng(4242);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<uint64_t> data(20 + rng.UniformU64(800));
    for (auto& v : data) v = rng.UniformU64(1 << 20);
    std::sort(data.begin(), data.end());
    uint64_t seed = 9000 + trial;
    summaries::CompactorSummary by_view(0.1, seed);
    summaries::CompactorSummary by_batch(0.1, seed);
    summaries::RunView view{data.data(), data.size()};
    by_view.InsertSortedViews(&view, 1, data.size());
    by_batch.InsertSortedBatch(data.data(), data.size());
    EXPECT_EQ(by_view.WeightTotal(), by_batch.WeightTotal());
    EXPECT_EQ(by_view.m(), by_batch.m());
    ASSERT_EQ(by_view.Items(), by_batch.Items()) << "trial " << trial;
  }
}

// Multi-view pulls conserve weight exactly and answer queries like the
// equivalent concatenated batch feed (staged under capacity, merged and
// compacted above it).
TEST(BatchEquivalenceTest, CompactorSortedViewsConserveWeight) {
  Rng rng(171);
  summaries::CompactorSummary summary(0.05, 555);
  uint64_t total = 0;
  std::vector<std::vector<uint64_t>> runs;
  std::vector<summaries::RunView> views;
  for (int round = 0; round < 40; ++round) {
    runs.clear();
    views.clear();
    size_t num_views = 1 + rng.UniformU64(6);
    size_t count = 0;
    for (size_t v = 0; v < num_views; ++v) {
      runs.emplace_back();
      size_t len = rng.UniformU64(60);
      for (size_t i = 0; i < len; ++i) {
        runs.back().push_back(rng.UniformU64(1 << 20));
      }
      std::sort(runs.back().begin(), runs.back().end());
      views.push_back(
          summaries::RunView{runs.back().data(), runs.back().size()});
      count += len;
    }
    summary.InsertSortedViews(views.data(), views.size(), count);
    total += count;
    ASSERT_EQ(summary.WeightTotal(), total);
  }
  EXPECT_EQ(summary.m(), total);
}

TEST(BatchEquivalenceTest, CompactorInsertBatchConservesWeightExactly) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    summaries::CompactorSummary batch(0.05, 1000 + trial);
    summaries::CompactorSummary scalar(0.05, 2000 + trial);
    uint64_t total = 0;
    std::vector<uint64_t> run;
    for (int r = 0; r < 50; ++r) {
      run.clear();
      uint64_t len = rng.UniformU64(200);
      for (uint64_t i = 0; i < len; ++i) run.push_back(rng.UniformU64(1u << 20));
      batch.InsertBatch(run.data(), run.size());
      for (uint64_t v : run) scalar.Insert(v);
      total += len;
    }
    EXPECT_EQ(batch.WeightTotal(), total);
    EXPECT_EQ(scalar.WeightTotal(), total);
    EXPECT_EQ(batch.m(), total);
  }
}

TEST(BatchEquivalenceTest, CompactorInsertBatchKeepsVarianceBound) {
  // Unbiasedness and Var <= (eps m)^2 must hold for the batched feed
  // exactly as for per-element Insert (the martingale increments are the
  // same mean-zero +-2^level steps; see compactor_summary.h).
  const double eps = 0.05;
  const uint64_t kM = 30000;
  const uint64_t query = 1u << 19;  // rank ~ m/2 over a 2^20 universe
  Rng data_rng(555);
  std::vector<uint64_t> data(kM);
  for (auto& v : data) v = data_rng.UniformU64(1u << 20);
  uint64_t truth = 0;
  for (uint64_t v : data) {
    if (v < query) ++truth;
  }
  for (bool batched : {false, true}) {
    auto errors = testing_util::CollectErrors(
        150,
        [&](uint64_t seed) {
          summaries::CompactorSummary c(eps, seed);
          if (batched) {
            // Runs of varying length, including ones far past capacity.
            size_t i = 0, chunk = 3;
            while (i < data.size()) {
              size_t len = std::min(chunk, data.size() - i);
              c.InsertBatch(data.data() + i, len);
              i += len;
              chunk = chunk * 2 + 1;
              if (chunk > 3000) chunk = 3;
            }
          } else {
            for (uint64_t v : data) c.Insert(v);
          }
          return c.EstimateRank(query) - static_cast<double>(truth);
        },
        4000 + (batched ? 1000 : 0));
    double bound = eps * static_cast<double>(kM);
    double sd = std::sqrt(testing_util::VarianceOf(errors));
    EXPECT_LE(std::fabs(testing_util::MeanOf(errors)),
              4.0 * sd / std::sqrt(150.0) + 1e-9)
        << "batched=" << batched;
    EXPECT_LE(testing_util::VarianceOf(errors), bound * bound)
        << "batched=" << batched;
  }
}

}  // namespace
}  // namespace disttrack
