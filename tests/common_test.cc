// Tests for disttrack/common: Rng, math utilities, running statistics.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "disttrack/common/math_util.h"
#include "disttrack/common/random.h"
#include "disttrack/common/stats.h"
#include "disttrack/common/status.h"

namespace disttrack {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
  }
}

TEST(RngTest, UniformU64IsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> buckets(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.UniformU64(10)];
  for (int b : buckets) {
    EXPECT_NEAR(b, kDraws / 10, kDraws / 10 * 0.1);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(19);
  const int kDraws = 200000;
  int heads = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / kDraws, 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerateEnds) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(0.0));
  }
}

TEST(RngTest, GeometricLevelDistribution) {
  Rng rng(29);
  const int kDraws = 200000;
  std::vector<int> level_count(20, 0);
  for (int i = 0; i < kDraws; ++i) {
    int level = rng.GeometricLevel();
    if (level < 20) ++level_count[level];
  }
  // P(level == j) = 2^-(j+1).
  EXPECT_NEAR(level_count[0], kDraws / 2.0, kDraws * 0.01);
  EXPECT_NEAR(level_count[1], kDraws / 4.0, kDraws * 0.01);
  EXPECT_NEAR(level_count[2], kDraws / 8.0, kDraws * 0.01);
}

TEST(RngTest, GeometricFailuresMean) {
  Rng rng(31);
  const double p = 0.05;
  const int kDraws = 100000;
  double sum = 0;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(rng.GeometricFailures(p));
  }
  // Mean failures = (1-p)/p = 19.
  EXPECT_NEAR(sum / kDraws, (1 - p) / p, 0.5);
}

TEST(RngTest, GeometricFailuresWithPOne) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.GeometricFailures(1.0), 0u);
}

TEST(RngTest, SampleWithoutReplacementIsASubset) {
  Rng rng(41);
  std::vector<uint32_t> out;
  rng.SampleWithoutReplacement(100, 30, &out);
  ASSERT_EQ(out.size(), 30u);
  std::vector<bool> seen(100, false);
  for (uint32_t v : out) {
    ASSERT_LT(v, 100u);
    EXPECT_FALSE(seen[v]) << "duplicate " << v;
    seen[v] = true;
  }
}

TEST(RngTest, SampleWithoutReplacementUniformMarginals) {
  Rng rng(43);
  std::vector<int> hits(20, 0);
  const int kDraws = 20000;
  std::vector<uint32_t> out;
  for (int i = 0; i < kDraws; ++i) {
    rng.SampleWithoutReplacement(20, 5, &out);
    for (uint32_t v : out) ++hits[v];
  }
  for (int h : hits) {
    EXPECT_NEAR(h, kDraws * 5 / 20, kDraws * 0.05);
  }
}

TEST(MathUtilTest, FloorPow2) {
  EXPECT_EQ(FloorPow2(1.0), 1u);
  EXPECT_EQ(FloorPow2(1.5), 1u);
  EXPECT_EQ(FloorPow2(2.0), 2u);
  EXPECT_EQ(FloorPow2(3.99), 2u);
  EXPECT_EQ(FloorPow2(4.0), 4u);
  EXPECT_EQ(FloorPow2(1023.0), 512u);
  EXPECT_EQ(FloorPow2(1024.0), 1024u);
}

TEST(MathUtilTest, CeilPow2) {
  EXPECT_EQ(CeilPow2(1), 1u);
  EXPECT_EQ(CeilPow2(2), 2u);
  EXPECT_EQ(CeilPow2(3), 4u);
  EXPECT_EQ(CeilPow2(1025), 2048u);
}

TEST(MathUtilTest, IsPow2) {
  EXPECT_TRUE(IsPow2(1));
  EXPECT_TRUE(IsPow2(64));
  EXPECT_FALSE(IsPow2(0));
  EXPECT_FALSE(IsPow2(63));
}

TEST(MathUtilTest, CeilAndFloorLog2) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(8), 3);
  EXPECT_EQ(CeilLog2(9), 4);
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(8), 3);
  EXPECT_EQ(FloorLog2(9), 3);
}

TEST(MathUtilTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 3), 4u);
  EXPECT_EQ(CeilDiv(9, 3), 3u);
  EXPECT_EQ(CeilDiv(1, 100), 1u);
}

TEST(MathUtilTest, SafeDiv) {
  EXPECT_DOUBLE_EQ(SafeDiv(10, 2), 5.0);
  EXPECT_DOUBLE_EQ(SafeDiv(10, 0, -1.0), -1.0);
}

TEST(StatsTest, RunningStatsMeanVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
}

TEST(StatsTest, RunningStatsEmptyAndSingle) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
}

TEST(StatsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(Median({5}), 5.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(StatsTest, SampleQuantile) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(SampleQuantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(SampleQuantile(v, 1.0), 10.0);
  EXPECT_NEAR(SampleQuantile(v, 0.5), 6.0, 1.0);
}

TEST(StatsTest, CoverageWithin) {
  std::vector<double> errors{-0.5, 0.2, 1.5, -2.0, 0.0};
  EXPECT_DOUBLE_EQ(CoverageWithin(errors, 1.0), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(CoverageWithin(errors, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(CoverageWithin({}, 1.0), 1.0);
}

TEST(StatsTest, LogLogSlopeRecoversExponent) {
  std::vector<double> x{2, 4, 8, 16, 32};
  std::vector<double> y;
  for (double v : x) y.push_back(3.0 * std::pow(v, 1.7));
  EXPECT_NEAR(LogLogSlope(x, y), 1.7, 1e-9);
}

TEST(StatsTest, LogLogSlopeDegenerate) {
  EXPECT_DOUBLE_EQ(LogLogSlope({1.0}, {2.0}), 0.0);
  EXPECT_DOUBLE_EQ(LogLogSlope({1, 2}, {0, 2}), 0.0);
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status bad = Status::InvalidArgument("epsilon");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(bad.ToString(), "InvalidArgument: epsilon");
  Status pre = Status::FailedPrecondition("not built");
  EXPECT_EQ(pre.code(), Status::Code::kFailedPrecondition);
  EXPECT_NE(pre.ToString().find("not built"), std::string::npos);
}

}  // namespace
}  // namespace disttrack
