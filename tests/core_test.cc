// Tests for disttrack/core: factory validation, all nine algorithm×problem
// combinations, and the median booster (§1.2's all-times construction).

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "disttrack/core/median_booster.h"
#include "disttrack/core/tracking.h"
#include "disttrack/stream/workload.h"
#include "test_util.h"

namespace disttrack {
namespace core {
namespace {

using stream::MakeCountWorkload;
using stream::SiteSchedule;

TEST(TrackerOptionsTest, Validation) {
  TrackerOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.num_sites = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = TrackerOptions{};
  o.epsilon = 1.0;
  EXPECT_FALSE(o.Validate().ok());
  o = TrackerOptions{};
  o.median_copies = 2;  // must be odd
  EXPECT_FALSE(o.Validate().ok());
  o.median_copies = 3;
  EXPECT_TRUE(o.Validate().ok());
  o = TrackerOptions{};
  o.universe_bits = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = TrackerOptions{};
  o.sample_boost = 0.0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(TrackerFactoryTest, AlgorithmNames) {
  EXPECT_EQ(AlgorithmName(Algorithm::kDeterministic), "deterministic");
  EXPECT_EQ(AlgorithmName(Algorithm::kRandomized), "randomized");
  EXPECT_EQ(AlgorithmName(Algorithm::kSampling), "sampling");
}

TEST(TrackerFactoryTest, AllCountVariantsConstructAndTrack) {
  for (auto algorithm : {Algorithm::kDeterministic, Algorithm::kRandomized,
                         Algorithm::kSampling}) {
    TrackerOptions o;
    o.num_sites = 4;
    o.epsilon = 0.1;
    std::unique_ptr<sim::CountTrackerInterface> tracker;
    ASSERT_TRUE(MakeCountTracker(algorithm, o, &tracker).ok());
    for (int i = 0; i < 5000; ++i) tracker->Arrive(i % 4);
    EXPECT_EQ(tracker->TrueCount(), 5000u);
    EXPECT_NEAR(tracker->EstimateCount(), 5000.0, 0.15 * 5000)
        << AlgorithmName(algorithm);
    EXPECT_GT(tracker->meter().TotalMessages(), 0u);
  }
}

TEST(TrackerFactoryTest, AllFrequencyVariantsConstructAndTrack) {
  for (auto algorithm : {Algorithm::kDeterministic, Algorithm::kRandomized,
                         Algorithm::kSampling}) {
    TrackerOptions o;
    o.num_sites = 4;
    o.epsilon = 0.1;
    std::unique_ptr<sim::FrequencyTrackerInterface> tracker;
    ASSERT_TRUE(MakeFrequencyTracker(algorithm, o, &tracker).ok());
    for (int i = 0; i < 9000; ++i) tracker->Arrive(i % 4, i % 3);
    EXPECT_NEAR(tracker->EstimateFrequency(0), 3000.0, 0.15 * 9000)
        << AlgorithmName(algorithm);
  }
}

TEST(TrackerFactoryTest, AllRankVariantsConstructAndTrack) {
  for (auto algorithm : {Algorithm::kDeterministic, Algorithm::kRandomized,
                         Algorithm::kSampling}) {
    TrackerOptions o;
    o.num_sites = 4;
    o.epsilon = 0.1;
    o.universe_bits = 8;
    std::unique_ptr<sim::RankTrackerInterface> tracker;
    ASSERT_TRUE(MakeRankTracker(algorithm, o, &tracker).ok());
    for (uint64_t i = 0; i < 8000; ++i) {
      tracker->Arrive(static_cast<int>(i % 4), i % 256);
    }
    EXPECT_NEAR(tracker->EstimateRank(128), 4000.0, 0.15 * 8000)
        << AlgorithmName(algorithm);
  }
}

TEST(TrackerFactoryTest, RejectsInvalidOptions) {
  TrackerOptions o;
  o.epsilon = -1;
  std::unique_ptr<sim::CountTrackerInterface> tracker;
  EXPECT_FALSE(MakeCountTracker(Algorithm::kRandomized, o, &tracker).ok());
  EXPECT_EQ(tracker, nullptr);
}

TEST(MedianBoosterTest, FactoryBuildsBoostedTracker) {
  TrackerOptions o;
  o.num_sites = 4;
  o.epsilon = 0.1;
  o.median_copies = 5;
  std::unique_ptr<sim::CountTrackerInterface> tracker;
  ASSERT_TRUE(MakeCountTracker(Algorithm::kRandomized, o, &tracker).ok());
  auto* boosted = dynamic_cast<BoostedCountTracker*>(tracker.get());
  ASSERT_NE(boosted, nullptr);
  EXPECT_EQ(boosted->num_copies(), 5u);
}

TEST(MedianBoosterTest, CombinedMeterSumsCopies) {
  TrackerOptions o;
  o.num_sites = 4;
  o.epsilon = 0.05;
  std::unique_ptr<sim::CountTrackerInterface> single;
  ASSERT_TRUE(MakeCountTracker(Algorithm::kRandomized, o, &single).ok());
  o.median_copies = 3;
  std::unique_ptr<sim::CountTrackerInterface> boosted;
  ASSERT_TRUE(MakeCountTracker(Algorithm::kRandomized, o, &boosted).ok());
  for (int i = 0; i < 20000; ++i) {
    single->Arrive(i % 4);
    boosted->Arrive(i % 4);
  }
  // Three copies cost roughly three times one copy.
  double ratio = static_cast<double>(boosted->meter().TotalMessages()) /
                 static_cast<double>(single->meter().TotalMessages());
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.5);
}

TEST(MedianBoosterTest, MedianImprovesWorstCaseCoverage) {
  // Run single vs 5-copy boosted over trials; the boosted max |error| over
  // checkpoints should rarely exceed εn, even where singles occasionally do.
  const double eps = 0.03;
  auto w = MakeCountWorkload(8, 60000, SiteSchedule::kUniformRandom, 3);
  auto worst_error = [&](int copies, uint64_t seed) {
    TrackerOptions o;
    o.num_sites = 8;
    o.epsilon = eps;
    o.seed = seed;
    o.median_copies = copies;
    std::unique_ptr<sim::CountTrackerInterface> tracker;
    EXPECT_TRUE(MakeCountTracker(Algorithm::kRandomized, o, &tracker).ok());
    auto checkpoints = sim::ReplayCount(tracker.get(), w, 1.3);
    return testing_util::MaxRelativeCheckpointError(checkpoints, 2000);
  };
  int single_misses = 0, boosted_misses = 0;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    if (worst_error(1, seed) > eps) ++single_misses;
    if (worst_error(5, seed) > eps) ++boosted_misses;
  }
  EXPECT_LE(boosted_misses, single_misses);
  EXPECT_LE(boosted_misses, 2);
}

TEST(MedianBoosterTest, FrequencyAndRankBoostersAnswerMedians) {
  TrackerOptions o;
  o.num_sites = 4;
  o.epsilon = 0.1;
  o.median_copies = 3;
  std::unique_ptr<sim::FrequencyTrackerInterface> freq;
  ASSERT_TRUE(MakeFrequencyTracker(Algorithm::kRandomized, o, &freq).ok());
  std::unique_ptr<sim::RankTrackerInterface> rank;
  ASSERT_TRUE(MakeRankTracker(Algorithm::kRandomized, o, &rank).ok());
  for (uint64_t i = 0; i < 20000; ++i) {
    freq->Arrive(static_cast<int>(i % 4), i % 5);
    rank->Arrive(static_cast<int>(i % 4), i % 1000);
  }
  EXPECT_NEAR(freq->EstimateFrequency(2), 4000.0, 0.1 * 20000);
  EXPECT_NEAR(rank->EstimateRank(500), 10000.0, 0.1 * 20000);
  EXPECT_EQ(freq->TrueCount(), 20000u);
  EXPECT_EQ(rank->TrueCount(), 20000u);
}

TEST(MedianBoosterTest, SpaceSumsAcrossCopies) {
  TrackerOptions o;
  o.num_sites = 4;
  o.epsilon = 0.05;
  o.median_copies = 3;
  std::unique_ptr<sim::CountTrackerInterface> tracker;
  ASSERT_TRUE(MakeCountTracker(Algorithm::kRandomized, o, &tracker).ok());
  for (int i = 0; i < 10000; ++i) tracker->Arrive(i % 4);
  // Three O(1) copies: still O(1), roughly 3x a single copy's 4 words.
  EXPECT_GE(tracker->space().MaxPeak(), 8u);
  EXPECT_LE(tracker->space().MaxPeak(), 24u);
}

}  // namespace
}  // namespace core
}  // namespace disttrack
